// Result-cache benchmarks: the serving-path win of internal/qcache on
// a heavy recurring query (the paper's workload analysis shows real
// logs repeat the same shapes constantly). Cells: a cache hit against
// the uncached execution it replaces (the speedup claim), the fill
// overhead a cold key pays on top of execution, concurrent duplicate
// requests collapsing onto resident entries, and serialized-body reuse
// versus re-serializing the result. Part of the bench-regression gate.
package sparqlog

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"sparqlog/internal/eval"
	"sparqlog/internal/qcache"
	"sparqlog/internal/sparql"
)

// cacheBenchQuery is deliberately heavy for a cache cell: the full
// citation table (tens of thousands of rows on the shared bench
// graph), so a hit's cost is dominated by materializing fresh rows —
// the realistic floor of serving a cached result — and comfortably
// clears the baseline gate's 15µs quantization cutoff.
const cacheBenchQuery = `PREFIX bib: <http://gmark.bib/p/>
SELECT ?p ?q WHERE { ?p bib:cites ?q }`

func BenchmarkResultCache(b *testing.B) {
	g := plannerBenchGraph(b)
	q, err := sparql.Parse(cacheBenchQuery)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	// Denominator: the plan→exec pipeline a hit skips.
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := eval.QueryContext(ctx, g.Snapshot, q, eval.Limits{})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) == 0 {
				b.Fatal("empty result")
			}
		}
	})

	b.Run("hit", func(b *testing.B) {
		b.ReportAllocs()
		c := qcache.New(g.Snapshot, qcache.Options{MinCost: -1})
		lim := eval.Limits{Results: c}
		if _, err := eval.QueryContext(ctx, g.Snapshot, q, lim); err != nil {
			b.Fatal(err)
		}
		if c.Entries() == 0 {
			b.Fatal("warm-up did not fill the cache")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := eval.QueryContext(ctx, g.Snapshot, q, lim)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Cached {
				b.Fatal("expected a cache hit")
			}
		}
	})

	// Fill: every iteration is a genuinely new key (MaxRows is part of
	// the key), so this measures execution plus lookup-miss, flight,
	// admission, and columnar encoding — the overhead a cold query pays
	// compared to the uncached cell.
	b.Run("miss-fill", func(b *testing.B) {
		b.ReportAllocs()
		c := qcache.New(g.Snapshot, qcache.Options{MinCost: -1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lim := eval.Limits{Results: c, MaxRows: eval.DefaultMaxRows + 1 + i}
			res, err := eval.QueryContext(ctx, g.Snapshot, q, lim)
			if err != nil {
				b.Fatal(err)
			}
			if res.Cached || res.CacheKey == "" {
				b.Fatal("expected a caching miss")
			}
		}
	})

	// Duplicate requests racing over one resident key: the contended
	// hit path (sharded lock + LRU touch + materialization per caller).
	b.Run("concurrent-duplicate", func(b *testing.B) {
		b.ReportAllocs()
		c := qcache.New(g.Snapshot, qcache.Options{MinCost: -1})
		lim := eval.Limits{Results: c}
		if _, err := eval.QueryContext(ctx, g.Snapshot, q, lim); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				res, err := eval.QueryContext(ctx, g.Snapshot, q, lim)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Cached && !res.Collapsed {
					b.Fatal("expected hit or collapse")
				}
			}
		})
	})

	// Serialized-body reuse against re-serializing the rows: the byte
	// slice the server writes on a repeat request in the same format.
	b.Run("body", func(b *testing.B) {
		c := qcache.New(g.Snapshot, qcache.Options{MinCost: -1})
		lim := eval.Limits{Results: c}
		res, err := eval.QueryContext(ctx, g.Snapshot, q, lim)
		if err != nil {
			b.Fatal(err)
		}
		body := serializeTSV(res.Vars, res.Rows)
		const ct = "text/tab-separated-values"
		if _, ok := c.SetBody(res.CacheKey, ct, body); !ok {
			b.Fatal("SetBody refused")
		}
		b.Run("reuse", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				got, _, ok := c.Body(res.CacheKey, ct)
				if !ok || len(got) != len(body) {
					b.Fatal("body lookup failed")
				}
			}
		})
		b.Run("serialize", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := serializeTSV(res.Vars, res.Rows); len(got) != len(body) {
					b.Fatal("serialization diverged")
				}
			}
		})
	})
}

// serializeTSV is the bench-local stand-in for the server's TSV result
// writer: header line of variables, one tab-joined line per row. The
// reuse/serialize pair measures the bytes-vs-rebuild gap, not any one
// wire format's quirks.
func serializeTSV(vars []string, rows [][]string) []byte {
	var sb strings.Builder
	sb.WriteString(strings.Join(vars, "\t"))
	sb.WriteByte('\n')
	for _, row := range rows {
		sb.WriteString(strings.Join(row, "\t"))
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// BenchmarkConcurrentCachedQueries drives a duplicate-heavy workload
// through the single-flight door from many goroutines at once — the
// stampede a popular dashboard query produces — and reports effective
// queries/s with and without the cache.
func BenchmarkConcurrentCachedQueries(b *testing.B) {
	g := plannerBenchGraph(b)
	q, err := sparql.Parse(cacheBenchQuery)
	if err != nil {
		b.Fatal(err)
	}
	const workers = 8
	run := func(b *testing.B, lim eval.Limits) {
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					defer cancel()
					if _, err := eval.QueryContext(ctx, g.Snapshot, q, lim); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		}
		b.ReportMetric(float64(workers*b.N)/b.Elapsed().Seconds(), "queries/s")
	}
	b.Run("cached", func(b *testing.B) {
		c := qcache.New(g.Snapshot, qcache.Options{MinCost: -1})
		run(b, eval.Limits{Results: c})
	})
	b.Run("uncached", func(b *testing.B) {
		run(b, eval.Limits{})
	})
}
