// Property-path benchmarks: the compiled NFA/bitset engine
// (internal/pathcomp) against the naive interpretive evaluator it
// replaced, on the graph shapes and Table-5 expression types that
// dominate endpoint logs. BenchmarkPathShapes and BenchmarkPathPairs
// are part of the bench-regression CI gate (see BENCH_BASELINE.json and
// cmd/benchdiff); the README's "Property-path evaluation" numbers come
// from these.
package sparqlog

import (
	"fmt"
	"sync"
	"testing"

	"sparqlog/internal/engine"
	"sparqlog/internal/pathcomp"
	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// pathBenchGraph is one benchmark substrate: a frozen snapshot plus a
// deterministic set of source nodes to evaluate from.
type pathBenchGraph struct {
	sn      *rdf.Snapshot
	sources []rdf.ID
}

var (
	pathGraphsOnce sync.Once
	pathGraphs     map[string]*pathBenchGraph
	pathPairsGraph *pathBenchGraph
)

// buildPathGraphs constructs the four shape graphs over predicates <a>
// and <b>:
//
//	star:  hub -a-> leaf_i, leaf_i -b-> hub          (2000 nodes)
//	chain: n_i -a-> n_{i+1}, every 8th n_i -b-> n_0  (4000 nodes)
//	cycle: 100-node a-rings, b-bridges between rings (4000 nodes)
//	grid:  40x40, a = right, b = down                (1600 nodes)
//
// and the 10k-node cyclic graph of BenchmarkPathPairs (100 a-rings of
// 100 nodes; all-pairs a* closure is 100 targets per source).
func buildPathGraphs() {
	pathGraphs = map[string]*pathBenchGraph{}
	name := func(i int) string { return fmt.Sprintf("urn:n%d", i) }

	pick := func(sn *rdf.Snapshot, names ...string) []rdf.ID {
		var ids []rdf.ID
		for _, n := range names {
			if id, ok := sn.Lookup(n); ok {
				ids = append(ids, id)
			}
		}
		return ids
	}

	{ // star
		st := rdf.NewStore()
		for i := 1; i < 2000; i++ {
			st.Add("urn:hub", "urn:a", name(i))
			st.Add(name(i), "urn:b", "urn:hub")
		}
		sn := st.Freeze()
		pathGraphs["star"] = &pathBenchGraph{sn, pick(sn, "urn:hub", name(1), name(500), name(1000))}
	}
	{ // chain
		st := rdf.NewStore()
		for i := 0; i < 3999; i++ {
			st.Add(name(i), "urn:a", name(i+1))
		}
		// Every node has a b-edge back to its 8-block head, so seq and
		// starseq have matches from any source and b-jumps create cycles.
		for i := 0; i < 4000; i++ {
			st.Add(name(i), "urn:b", name(i-i%8))
		}
		sn := st.Freeze()
		pathGraphs["chain"] = &pathBenchGraph{sn, pick(sn, name(0), name(1000), name(2000), name(3500))}
	}
	{ // cycle
		st := rdf.NewStore()
		const ring = 100
		for i := 0; i < 4000; i++ {
			next := i - i%ring + (i+1)%ring
			st.Add(name(i), "urn:a", name(next))
			if i%ring == 0 {
				st.Add(name(i), "urn:b", name((i+ring)%4000))
			}
		}
		sn := st.Freeze()
		pathGraphs["cycle"] = &pathBenchGraph{sn, pick(sn, name(0), name(150), name(2050), name(3999))}
	}
	{ // grid
		st := rdf.NewStore()
		const w = 40
		cell := func(x, y int) string { return fmt.Sprintf("urn:g%d_%d", x, y) }
		for y := 0; y < w; y++ {
			for x := 0; x < w; x++ {
				if x+1 < w {
					st.Add(cell(x, y), "urn:a", cell(x+1, y))
				}
				if y+1 < w {
					st.Add(cell(x, y), "urn:b", cell(x, y+1))
				}
			}
		}
		sn := st.Freeze()
		pathGraphs["grid"] = &pathBenchGraph{sn, pick(sn, cell(0, 0), cell(20, 20), cell(39, 0), cell(0, 39))}
	}
	{ // pairs: 10k-node cyclic graph
		st := rdf.NewStore()
		const ring = 100
		for i := 0; i < 10000; i++ {
			next := i - i%ring + (i+1)%ring
			st.Add(name(i), "urn:a", name(next))
		}
		pathPairsGraph = &pathBenchGraph{sn: st.Freeze()}
	}
}

func pathBenchSetup(b *testing.B) {
	b.Helper()
	pathGraphsOnce.Do(buildPathGraphs)
}

func parseBenchPath(b *testing.B, expr string) sparql.PathExpr {
	b.Helper()
	q, err := sparql.Parse("ASK { ?x " + expr + " ?y }")
	if err != nil {
		b.Fatal(err)
	}
	pp := q.PathPatterns()
	if len(pp) != 1 {
		b.Fatalf("%q: want one path pattern", expr)
	}
	return pp[0].Path
}

// BenchmarkPathShapes measures single-source path evaluation (the
// subject-bound case eval.path hits) for the dominant Table-5 types on
// the four graph shapes, naive vs. compiled. Each variant runs its
// production configuration: the interpreter re-walks the expression
// tree per evaluation (all it can do), the compiled engine evaluates a
// pre-compiled automaton (eval.path compiles once per pattern and
// caches per shape, so per-evaluation cost is what serving pays).
func BenchmarkPathShapes(b *testing.B) {
	pathBenchSetup(b)
	exprs := []struct{ name, expr string }{
		{"star", "<urn:a>*"},
		{"plus", "<urn:a>+"},
		{"altstar", "(<urn:a>|<urn:b>)*"},
		{"seq", "<urn:a>/<urn:b>"},
		{"starseq", "<urn:a>*/<urn:b>"},
	}
	for _, gname := range []string{"star", "chain", "cycle", "grid"} {
		g := pathGraphs[gname]
		resolve := engine.StoreResolver(g.sn)
		for _, ex := range exprs {
			p := parseBenchPath(b, ex.expr)
			b.Run(gname+"/"+ex.name+"/naive", func(b *testing.B) {
				total := 0
				for i := 0; i < b.N; i++ {
					for _, s := range g.sources {
						total += len(engine.NaiveEvalPathFrom(g.sn, s, p, resolve))
					}
				}
				if b.N > 0 && total == 0 {
					b.Fatal("benchmark evaluated to nothing")
				}
			})
			b.Run(gname+"/"+ex.name+"/compiled", func(b *testing.B) {
				cp := pathcomp.Compile(g.sn, p, pathcomp.Resolver(resolve))
				b.ResetTimer()
				total := 0
				for i := 0; i < b.N; i++ {
					for _, s := range g.sources {
						total += len(cp.From(s))
					}
				}
				if b.N > 0 && total == 0 {
					b.Fatal("benchmark evaluated to nothing")
				}
			})
		}
	}
}

// BenchmarkPathPairs measures the fully unbound case — enumerate every
// (subject, object) pair of <urn:a>* — on the 10k-node cyclic graph
// (100 rings of 100 nodes: one million pairs). This is the acceptance
// workload for the compiled engine's multi-source sweep.
func BenchmarkPathPairs(b *testing.B) {
	pathBenchSetup(b)
	g := pathPairsGraph
	resolve := engine.StoreResolver(g.sn)
	p := parseBenchPath(b, "<urn:a>*")
	const wantPairs = 10000 * 100
	b.Run("cycle10k/naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := len(engine.NaiveEvalPathPairs(g.sn, p, resolve, 0)); got != wantPairs {
				b.Fatalf("pairs = %d, want %d", got, wantPairs)
			}
		}
	})
	b.Run("cycle10k/compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := len(engine.EvalPathPairs(g.sn, p, resolve, 0)); got != wantPairs {
				b.Fatalf("pairs = %d, want %d", got, wantPairs)
			}
		}
	})
}
