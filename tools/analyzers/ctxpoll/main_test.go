package main

import (
	"fmt"
	"strings"
	"testing"
)

// TestAnalyzeTestdata runs the analyzer over the annotated fixture and
// checks that exactly the bad* functions are flagged.
func TestAnalyzeTestdata(t *testing.T) {
	findings, err := AnalyzeDirs([]string{"testdata/src"})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Func)
	}
	want := []string{"badInfinite", "badWhile", "badNested"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("flagged %v, want %v\nfindings:\n%s", got, want, joinFindings(findings))
	}
	for _, f := range findings {
		if !strings.Contains(f.String(), "never polls cancellation") {
			t.Fatalf("unexpected rendering: %s", f)
		}
		if f.Pos.Line == 0 || f.Pos.Filename == "" {
			t.Fatalf("finding without position: %+v", f)
		}
	}
}

// TestAnalyzeEnginePackages pins the production contract the CI step
// enforces: the executor and compiled-path packages are clean.
func TestAnalyzeEnginePackages(t *testing.T) {
	findings, err := AnalyzeDirs([]string{"../../../internal/pathcomp", "../../../internal/exec"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("engine packages have unpolled loops:\n%s", joinFindings(findings))
	}
}

func joinFindings(fs []Finding) string {
	var sb strings.Builder
	for _, f := range fs {
		fmt.Fprintln(&sb, f.String())
	}
	return sb.String()
}
