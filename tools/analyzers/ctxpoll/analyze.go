package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// seedPollNames are the method/function names that poll cancellation
// directly: the exec.Ctx budgeted checkpoint and raw poll, pathcomp's
// budgeted ticker, and the context.Context surface.
var seedPollNames = map[string]bool{
	"Check":    true,
	"Poll":     true,
	"tick":     true,
	"Err":      true,
	"Done":     true,
	"Deadline": true,
}

// ignoreMarker silences a finding when it appears on the loop's line
// or the line above.
const ignoreMarker = "ctxpoll:ignore"

// Finding is one suspect loop.
type Finding struct {
	Pos  token.Position
	Func string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: unbounded loop in %s never polls cancellation (add a Ctx.Check/Poll call or //ctxpoll:ignore)",
		f.Pos, f.Func)
}

// fileInfo is one parsed file plus its ignore-comment line set.
type fileInfo struct {
	file    *ast.File
	ignores map[int]bool
}

// AnalyzeDirs parses every non-test .go file under the given package
// directories (non-recursive, like a go/analysis unit) and reports
// suspect loops, ordered by position.
func AnalyzeDirs(dirs []string) ([]Finding, error) {
	fset := token.NewFileSet()
	var files []fileInfo
	for _, dir := range dirs {
		names, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, de := range names {
			name := de.Name()
			if de.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, fileInfo{file: f, ignores: ignoreLines(fset, f)})
		}
	}
	polling := pollingFunctions(files)
	var out []Finding
	for _, fi := range files {
		out = append(out, analyzeFile(fset, fi, polling)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out, nil
}

// ignoreLines collects the line numbers carrying the ignore marker.
func ignoreLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, ignoreMarker) {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

// pollingFunctions computes the name-based fixpoint: start from the
// seed names, add every analyzed function whose body calls a polling
// name, repeat until stable. Method and function names share one
// namespace — without type information a call c.Next() is attributed
// to every analyzed Next, which over-approximates reachability in the
// safe direction for this codebase (its operator methods genuinely
// poll).
func pollingFunctions(files []fileInfo) map[string]bool {
	polling := make(map[string]bool, len(seedPollNames))
	for n := range seedPollNames {
		polling[n] = true
	}
	type fn struct {
		name string
		body *ast.BlockStmt
	}
	var fns []fn
	for _, fi := range files {
		for _, d := range fi.file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fns = append(fns, fn{fd.Name.Name, fd.Body})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			if polling[f.name] {
				continue
			}
			if callsPolling(f.body, polling) {
				polling[f.name] = true
				changed = true
			}
		}
	}
	return polling
}

// callsPolling reports whether any call inside n resolves (by base
// name) to a polling function. Function-literal bodies count: a loop
// that polls through a closure it invokes still polls.
func callsPolling(n ast.Node, polling map[string]bool) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			if polling[calleeName(call)] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// calleeName extracts the base name of a call target: the selector's
// final identifier or the plain identifier, "" for computed calls.
func calleeName(call *ast.CallExpr) string {
	switch fe := call.Fun.(type) {
	case *ast.Ident:
		return fe.Name
	case *ast.SelectorExpr:
		return fe.Sel.Name
	}
	return ""
}

// analyzeFile flags the suspect loops of one file.
func analyzeFile(fset *token.FileSet, fi fileInfo, polling map[string]bool) []Finding {
	var out []Finding
	for _, d := range fi.file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(x ast.Node) bool {
			loop, ok := x.(*ast.ForStmt)
			if !ok {
				return true
			}
			if !unbounded(loop) || !doesWork(loop.Body) {
				return true
			}
			line := fset.Position(loop.Pos()).Line
			if fi.ignores[line] || fi.ignores[line-1] {
				return true
			}
			if callsPolling(loop.Body, polling) || receivesChannel(loop.Body) {
				return true
			}
			out = append(out, Finding{Pos: fset.Position(loop.Pos()), Func: funcLabel(fd)})
			return true
		})
	}
	return out
}

// unbounded reports whether the for statement's header guarantees no
// progress bound: `for {}` and the single-condition `for cond {}`
// (whose condition can stay true forever). Three-clause loops and
// range loops advance toward their header's bound.
func unbounded(loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return true
	}
	return loop.Init == nil && loop.Post == nil
}

// doesWork reports whether the loop body is substantial enough to
// matter: it performs at least one call or contains a nested loop. A
// pure arithmetic spin (no calls) is not this analyzer's business.
func doesWork(body *ast.BlockStmt) bool {
	work := false
	ast.Inspect(body, func(x ast.Node) bool {
		if work {
			return false
		}
		switch x.(type) {
		case *ast.CallExpr, *ast.ForStmt, *ast.RangeStmt:
			work = true
			return false
		}
		return true
	})
	return work
}

// receivesChannel reports whether the body blocks on a channel receive
// or select — loops structured around channel operations are paced by
// their channel, not by a poll call.
func receivesChannel(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch t := x.(type) {
		case *ast.SelectStmt:
			found = true
			return false
		case *ast.UnaryExpr:
			if t.Op == token.ARROW {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// funcLabel renders a method as Recv.Name and a function as Name.
func funcLabel(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
	}
	return fd.Name.Name
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	}
	return "?"
}
