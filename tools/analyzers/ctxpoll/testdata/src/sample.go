// Package sample is the ctxpoll self-test fixture: each loop below is
// annotated with whether the analyzer must flag it.
package sample

type ctx struct{}

func (c *ctx) Check(mask int) error { return nil }
func (c *ctx) Poll() error          { return nil }

func work()      {}
func moreWork()  {}
func otherWork() {}

// polls transitively: calls Check.
func checkpoint(c *ctx) error { return c.Check(63) }

// badInfinite must be flagged: unbounded, does work, never polls.
func badInfinite(c *ctx) {
	for {
		work()
	}
}

// badWhile must be flagged: single-condition loop, never polls.
func badWhile(c *ctx, done bool) {
	for !done {
		moreWork()
	}
}

// goodDirect polls through the Ctx method.
func goodDirect(c *ctx) {
	for {
		if err := c.Check(255); err != nil {
			return
		}
		work()
	}
}

// goodTransitive polls through a helper that polls.
func goodTransitive(c *ctx) {
	for {
		if err := checkpoint(c); err != nil {
			return
		}
		work()
	}
}

// goodBounded is a three-clause loop: bounded by its header.
func goodBounded(c *ctx) {
	for i := 0; i < 100; i++ {
		work()
	}
}

// goodRange iterates a collection.
func goodRange(c *ctx, xs []int) {
	for range xs {
		work()
	}
}

// goodChannel blocks on a receive: paced by the channel.
func goodChannel(c *ctx, ch chan int) {
	for {
		<-ch
		work()
	}
}

// goodIgnored carries the escape marker.
func goodIgnored(c *ctx) {
	//ctxpoll:ignore bounded by the caller's retry budget
	for {
		otherWork()
	}
}

// goodSpin performs no calls: not this analyzer's business.
func goodSpin(c *ctx) {
	n := 0
	for {
		n++
		if n > 10 {
			break
		}
	}
}

// badNested must be flagged: the outer loop only spins over an inner
// bounded loop and never polls.
func badNested(c *ctx) {
	for {
		for i := 0; i < 8; i++ {
			work()
		}
	}
}
