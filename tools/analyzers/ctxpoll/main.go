// Command ctxpoll is a vet-style analyzer for the executor's
// cancellation discipline: inner loops of the evaluation engine must
// poll the execution context (exec.Ctx.Check/Poll or a function that
// transitively does) or a cancelled request keeps burning CPU until
// the loop finishes on its own. The bug class is real — the serving
// path once leaked whole path searches past disconnects — so the rule
// is enforced mechanically over the packages that host such loops.
//
// A loop is suspect when it is potentially unbounded — `for { ... }`
// or a single-condition `for cond { ... }` (three-clause and range
// loops are bounded by their header) — and its body performs calls but
// never reaches a polling function. "Reaches" is a name-based
// fixpoint, the honest best available without go/types on a stdlib-only
// toolchain (the tree ships no golang.org/x/tools, so this is a plain
// CLI rather than a vettool plugin): a function polls if its body
// calls Check, Poll, Err, Done or Deadline, or any function in the
// analyzed packages whose name is known to poll.
//
// False positives are silenced with a trailing or preceding
// `//ctxpoll:ignore` comment, which should say why the loop is bounded.
//
// Usage:
//
//	go run ./tools/analyzers/ctxpoll ./internal/pathcomp ./internal/exec
//
// Exit status 1 when any finding is reported.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: ctxpoll <package-dir> ...")
		os.Exit(2)
	}
	findings, err := AnalyzeDirs(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "ctxpoll:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
