// Package qcache is a memory-bounded, snapshot-keyed query result
// cache for the serving path. It converts the paper's central workload
// observation — real SPARQL logs are massively repetitive (our own
// sparqld self-analysis sees >52% exact repeats) — into a speedup:
// repeated queries skip the plan→exec pipeline entirely.
//
// Keys are canonical query fingerprints (sparql.QueryString: variable
// renaming and prefix expansion normalized away, solution modifiers
// included), so alpha-equivalent repeats share one entry. The cache is
// bound to one immutable rdf.Snapshot at construction; callers compare
// snapshot identity on every access (the plan.Cache pattern), so a new
// snapshot invalidates implicitly — no epoch bookkeeping on the hot
// path.
//
// Entries store columnar ID tuples, not strings: one rdf.ID column per
// projected variable, resolved through the snapshot dictionary on
// materialization, with an entry-local overflow table for terms the
// dictionary does not hold (expression products). Admission is
// cost-aware — only results whose measured execution cost reaches
// Options.MinCost are stored, so the cache holds the heavy tail rather
// than microsecond point lookups — and eviction is sharded LRU under a
// byte budget. Hot entries additionally carry per-content-type
// serialized response bodies (SetBody/Body) so an HTTP hit can be a
// single Write.
//
// Invariant: cache entries are immutable once inserted and keyed by
// snapshot identity. Get materializes fresh rows on every hit; nothing
// handed out aliases mutable cache state.
package qcache

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"sparqlog/internal/rdf"
)

// Defaults for Options zero values.
const (
	// DefaultMaxBytes is the byte budget across all shards.
	DefaultMaxBytes = 64 << 20
	// DefaultMinCost is the admission threshold: results measured
	// cheaper than this are not worth a cache slot (the 1µs point
	// lookups the paper's repeat statistics are full of re-execute
	// faster than they'd be found).
	DefaultMinCost = 500 * time.Microsecond
	// DefaultShards is the lock-stripe count.
	DefaultShards = 16
)

// Options configures New. The zero value serves with the defaults
// above; negative MinCost admits every successful result (tests,
// replay experiments).
type Options struct {
	// MaxBytes is the cache-wide byte budget over entries and their
	// serialized bodies; <= 0 means DefaultMaxBytes.
	MaxBytes int64
	// MinCost is the cost-aware admission threshold: only results whose
	// measured execution took at least this long are stored. 0 means
	// DefaultMinCost; negative admits everything.
	MinCost time.Duration
	// Shards is the lock-stripe count; <= 0 means DefaultShards.
	Shards int
	// MaxEntryBytes caps one entry (rows plus bodies); <= 0 means
	// MaxBytes/8. Results larger than this are never admitted: one
	// huge answer must not evict the whole working set.
	MaxEntryBytes int64
}

// Result is a materialized query answer: the neutral shape the cache
// exchanges with the evaluator (qcache cannot import eval). Rows use
// the evaluator's conventions — aligned with Vars, "" marks unbound.
type Result struct {
	Vars []string
	Rows [][]string
	Bool bool
}

// unboundID marks an unbound cell in a stored column. rdf.IDs are
// dense dictionary indexes, so the top of the uint32 range is free.
const unboundID = ^rdf.ID(0)

// cachedBody is one serialized response representation of an entry.
type cachedBody struct {
	data []byte
	etag string
}

// entry is one cached result in columnar form. Immutable after insert
// except for the bodies map and LRU links, both guarded by the shard
// lock.
type entry struct {
	key  string
	vars []string
	// nilRows preserves the caller's nil-vs-empty Rows distinction
	// (ASK results carry nil) so a hit is byte-faithful to execution.
	nilRows bool
	boolV   bool
	nrows   int
	// cols holds one column per var, column-major; IDs below base
	// resolve through the snapshot dictionary, IDs at or above it index
	// extra (terms the dictionary does not hold), unboundID is a hole.
	cols  [][]rdf.ID
	extra []string
	cost  time.Duration
	bytes int64

	bodies     map[string]cachedBody
	prev, next *entry
}

// shard is one lock stripe: a map plus an intrusive LRU list under a
// private byte budget.
type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	head    *entry // most recently used
	tail    *entry // eviction candidate
	bytes   int64
	max     int64
}

// Cache is the result cache. Safe for concurrent use; create with New.
type Cache struct {
	sn       *rdf.Snapshot
	base     rdf.ID // sn.NumTerms(): first entry-local overflow ID
	minCost  time.Duration
	maxEntry int64
	shards   []shard

	hits      atomic.Int64
	misses    atomic.Int64
	collapsed atomic.Int64
	bodyHits  atomic.Int64
	evictions atomic.Int64
	rejected  atomic.Int64

	fmu     sync.Mutex
	flights map[string]*Flight
}

// New returns a cache bound to sn.
func New(sn *rdf.Snapshot, opts Options) *Cache {
	maxBytes := opts.MaxBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	nShards := opts.Shards
	if nShards <= 0 {
		nShards = DefaultShards
	}
	minCost := opts.MinCost
	if minCost == 0 {
		minCost = DefaultMinCost
	}
	maxEntry := opts.MaxEntryBytes
	if maxEntry <= 0 {
		maxEntry = maxBytes / 8
	}
	c := &Cache{
		sn:       sn,
		base:     rdf.ID(sn.NumTerms()),
		minCost:  minCost,
		maxEntry: maxEntry,
		shards:   make([]shard, nShards),
		flights:  make(map[string]*Flight),
	}
	perShard := maxBytes / int64(nShards)
	if perShard < 1 {
		perShard = 1
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry)
		c.shards[i].max = perShard
	}
	return c
}

// Snapshot returns the snapshot the cache is bound to. Callers holding
// a different snapshot must not consult this cache (degrade to
// uncached execution, exactly as plan.Cache degrades).
func (c *Cache) Snapshot() *rdf.Snapshot { return c.sn }

// MinCost returns the effective admission threshold.
func (c *Cache) MinCost() time.Duration { return c.minCost }

func (c *Cache) shard(key string) *shard {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return &c.shards[h.Sum64()%uint64(len(c.shards))]
}

// Get returns the materialized result under key, if cached. sn must be
// the snapshot the caller evaluates against: a mismatch is a miss by
// definition (stored IDs index a different dictionary). Rows are
// freshly materialized — the caller owns them.
func (c *Cache) Get(sn *rdf.Snapshot, key string) (Result, bool) {
	if sn != c.sn {
		c.misses.Add(1)
		return Result{}, false
	}
	sh := c.shard(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if ok {
		sh.touch(e)
	}
	sh.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return Result{}, false
	}
	c.hits.Add(1)
	return c.materialize(e), true
}

// materialize rebuilds string rows from an entry's ID columns. The
// entry is immutable, so no lock is held while resolving.
func (c *Cache) materialize(e *entry) Result {
	r := Result{Vars: e.vars, Bool: e.boolV}
	if e.nrows == 0 {
		if !e.nilRows {
			r.Rows = [][]string{}
		}
		return r
	}
	ncols := len(e.vars)
	cells := make([]string, e.nrows*ncols)
	rows := make([][]string, e.nrows)
	for i := range rows {
		row := cells[i*ncols : (i+1)*ncols : (i+1)*ncols]
		for j := 0; j < ncols; j++ {
			switch id := e.cols[j][i]; {
			case id == unboundID:
				row[j] = ""
			case id >= c.base:
				row[j] = e.extra[id-c.base]
			default:
				row[j] = c.sn.TermOf(id)
			}
		}
		rows[i] = row
	}
	r.Rows = rows
	return r
}

// Put stores a successful result under key when it clears cost-aware
// admission. It reports whether the entry is now resident (an existing
// entry under the same key also counts: the double-fill race after a
// flight resolves to the first writer). Callers must never Put errors,
// truncations, or recovered results — the cache cannot tell.
func (c *Cache) Put(sn *rdf.Snapshot, key string, r Result, cost time.Duration) bool {
	if sn != c.sn {
		return false
	}
	if cost < c.minCost {
		c.rejected.Add(1)
		return false
	}
	e := c.convert(key, r, cost)
	if e.bytes > c.maxEntry {
		c.rejected.Add(1)
		return false
	}
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.entries[key]; ok {
		return true
	}
	if !sh.makeRoom(e.bytes, nil, c) {
		c.rejected.Add(1)
		return false
	}
	sh.entries[key] = e
	sh.bytes += e.bytes
	sh.pushFront(e)
	return true
}

// convert interns a string result into columnar ID form. Terms missing
// from the snapshot dictionary (expression products, federated terms)
// go into an entry-local overflow table addressed above c.base.
func (c *Cache) convert(key string, r Result, cost time.Duration) *entry {
	e := &entry{
		key:     key,
		vars:    r.Vars,
		nilRows: r.Rows == nil,
		boolV:   r.Bool,
		nrows:   len(r.Rows),
		cost:    cost,
	}
	ncols := len(r.Vars)
	var overflow map[string]rdf.ID
	var extraBytes int64
	if ncols > 0 && e.nrows > 0 {
		e.cols = make([][]rdf.ID, ncols)
		flat := make([]rdf.ID, e.nrows*ncols)
		for j := range e.cols {
			e.cols[j] = flat[j*e.nrows : (j+1)*e.nrows]
		}
		for i, row := range r.Rows {
			for j := 0; j < ncols; j++ {
				cell := ""
				if j < len(row) {
					cell = row[j]
				}
				if cell == "" {
					e.cols[j][i] = unboundID
					continue
				}
				if id, ok := c.sn.Lookup(cell); ok {
					e.cols[j][i] = id
					continue
				}
				if overflow == nil {
					overflow = make(map[string]rdf.ID)
				}
				id, ok := overflow[cell]
				if !ok {
					id = c.base + rdf.ID(len(e.extra))
					overflow[cell] = id
					e.extra = append(e.extra, cell)
					extraBytes += int64(len(cell)) + 16
				}
				e.cols[j][i] = id
			}
		}
	}
	const entryOverhead = 256
	e.bytes = entryOverhead + int64(len(key)) +
		int64(e.nrows)*int64(ncols)*4 + extraBytes
	for _, v := range e.vars {
		e.bytes += int64(len(v))
	}
	return e
}

// makeRoom evicts from the shard's LRU tail until add fits the budget,
// never evicting pin (the entry being grown). Returns false if add can
// never fit. Caller holds sh.mu.
func (sh *shard) makeRoom(add int64, pin *entry, c *Cache) bool {
	if add > sh.max {
		return false
	}
	for sh.bytes+add > sh.max && sh.tail != nil && sh.tail != pin {
		ev := sh.tail
		sh.unlink(ev)
		delete(sh.entries, ev.key)
		sh.bytes -= ev.bytes
		c.evictions.Add(1)
	}
	return sh.bytes+add <= sh.max
}

// SetBody attaches one serialized response body (per content type) to
// a resident entry, computing its entity tag. Returns the tag and
// whether the body was stored: false when the entry is gone (evicted
// between execution and serialization) or the body would blow the
// entry cap. Bodies count against the shard budget like row data.
func (c *Cache) SetBody(key, contentType string, body []byte) (string, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		return "", false
	}
	if _, ok := e.bodies[contentType]; ok {
		return e.bodies[contentType].etag, true
	}
	add := int64(len(body)) + int64(len(contentType)) + 64
	if e.bytes+add > c.maxEntry {
		return "", false
	}
	// Evict colder entries to fit the grown entry; pin e at the front
	// first so makeRoom cannot evict it.
	sh.touch(e)
	sh.bytes -= e.bytes
	if !sh.makeRoom(e.bytes+add, e, c) {
		sh.bytes += e.bytes
		return "", false
	}
	if e.bodies == nil {
		e.bodies = make(map[string]cachedBody)
	}
	data := append([]byte(nil), body...)
	e.bodies[contentType] = cachedBody{data: data, etag: bodyETag(data)}
	e.bytes += add
	sh.bytes += e.bytes
	return e.bodies[contentType].etag, true
}

// Body returns the cached serialized body and its entity tag for one
// content type, if present.
func (c *Cache) Body(key, contentType string) ([]byte, string, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		return nil, "", false
	}
	b, ok := e.bodies[contentType]
	if !ok {
		return nil, "", false
	}
	sh.touch(e)
	c.bodyHits.Add(1)
	return b.data, b.etag, true
}

// bodyETag derives a strong entity tag from the exact serialized
// bytes: equal bodies get equal tags across restarts.
func bodyETag(body []byte) string {
	h := fnv.New64a()
	_, _ = h.Write(body)
	return fmt.Sprintf("\"%016x\"", h.Sum64())
}

// --- intrusive LRU list (shard lock held) ---

func (sh *shard) pushFront(e *entry) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) touch(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// --- counters ---

// Hits counts Get calls answered from the cache.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses counts Get calls that found nothing (snapshot mismatches
// included).
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Collapsed counts executions avoided by single-flight: followers that
// received the leader's result.
func (c *Cache) Collapsed() int64 { return c.collapsed.Load() }

// BodyHits counts serialized-body reuses (Body answered).
func (c *Cache) BodyHits() int64 { return c.bodyHits.Load() }

// Evictions counts entries dropped by the LRU byte budget.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// Rejected counts Put calls refused by admission (below MinCost or
// over the entry cap).
func (c *Cache) Rejected() int64 { return c.rejected.Load() }

// Bytes returns the current budgeted size across shards.
func (c *Cache) Bytes() int64 {
	var n int64
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].bytes
		c.shards[i].mu.Unlock()
	}
	return n
}

// Entries returns the resident entry count.
func (c *Cache) Entries() int {
	var n int
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].entries)
		c.shards[i].mu.Unlock()
	}
	return n
}
