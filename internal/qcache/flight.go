package qcache

import "context"

// Flight is one in-progress execution of a cache key. The first caller
// to Join becomes the leader and executes; concurrent callers of the
// same key become followers and Wait for the leader's result instead
// of stampeding the executor with identical work.
type Flight struct {
	done chan struct{}
	res  Result
	ok   bool
}

// Join registers interest in key's execution. The boolean reports
// leadership: the leader must execute the query and call Complete
// exactly once (also on error paths — abandoning a flight would strand
// followers until their contexts expire).
func (c *Cache) Join(key string) (*Flight, bool) {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	if f, ok := c.flights[key]; ok {
		return f, false
	}
	f := &Flight{done: make(chan struct{})}
	c.flights[key] = f
	return f, true
}

// Complete resolves the flight: followers wake with r when shareable
// is true, and fall back to executing themselves when it is false (the
// leader erred, timed out, or produced a result that must not be
// shared — a follower's own deadline and SERVICE luck may differ).
// Only the leader calls Complete.
func (c *Cache) Complete(key string, f *Flight, r Result, shareable bool) {
	c.fmu.Lock()
	// Guard against a stale flight: only remove the one we own.
	if cur, ok := c.flights[key]; ok && cur == f {
		delete(c.flights, key)
	}
	c.fmu.Unlock()
	f.res, f.ok = r, shareable
	close(f.done)
}

// Wait blocks until the leader completes or ctx expires. On a
// shareable completion it returns the leader's result (and counts one
// collapsed execution); ok=false with a nil error means the follower
// must execute the query itself.
func (f *Flight) Wait(ctx context.Context, c *Cache) (Result, bool, error) {
	select {
	case <-f.done:
		if !f.ok {
			return Result{}, false, nil
		}
		c.collapsed.Add(1)
		return f.res, true, nil
	case <-ctx.Done():
		return Result{}, false, ctx.Err()
	}
}
