package qcache

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"sparqlog/internal/rdf"
)

func testSnapshot(t *testing.T) *rdf.Snapshot {
	t.Helper()
	st := rdf.NewStore()
	for i := 0; i < 8; i++ {
		st.Add(fmt.Sprintf("<http://g/s%d>", i), "<http://g/p>", fmt.Sprintf("<http://g/o%d>", i))
	}
	return st.Freeze()
}

func TestRoundTripFidelity(t *testing.T) {
	sn := testSnapshot(t)
	c := New(sn, Options{MinCost: -1})
	cases := []struct {
		name string
		r    Result
	}{
		{"dictionary terms", Result{
			Vars: []string{"s", "o"},
			Rows: [][]string{
				{"<http://g/s0>", "<http://g/o0>"},
				{"<http://g/s1>", "<http://g/o1>"},
			},
		}},
		{"overflow terms", Result{
			Vars: []string{"x"},
			Rows: [][]string{{`"42"^^<http://www.w3.org/2001/XMLSchema#integer>`}, {"<http://g/s2>"}},
		}},
		{"unbound cells", Result{
			Vars: []string{"a", "b"},
			Rows: [][]string{{"<http://g/s0>", ""}, {"", "<http://g/o1>"}},
		}},
		{"empty select", Result{Vars: []string{"s"}, Rows: [][]string{}}},
		{"ask true", Result{Bool: true}},
		{"ask false", Result{Bool: false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			key := "k:" + tc.name
			if !c.Put(sn, key, tc.r, time.Second) {
				t.Fatal("Put refused")
			}
			got, ok := c.Get(sn, key)
			if !ok {
				t.Fatal("Get missed a resident entry")
			}
			if !reflect.DeepEqual(got, tc.r) {
				t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, tc.r)
			}
			// Rows must be fresh allocations: mutating the hit must not
			// poison the next one (immutability invariant).
			if len(got.Rows) > 0 && len(got.Rows[0]) > 0 {
				got.Rows[0][0] = "mutated"
				again, _ := c.Get(sn, key)
				if again.Rows[0][0] == "mutated" {
					t.Fatal("cache handed out aliased rows")
				}
			}
		})
	}
}

func TestSnapshotMismatchDegrades(t *testing.T) {
	sn := testSnapshot(t)
	other := testSnapshot(t)
	c := New(sn, Options{MinCost: -1})
	r := Result{Vars: []string{"s"}, Rows: [][]string{{"<http://g/s0>"}}}
	if c.Put(other, "k", r, time.Second) {
		t.Fatal("Put accepted a foreign snapshot")
	}
	if !c.Put(sn, "k", r, time.Second) {
		t.Fatal("Put refused own snapshot")
	}
	if _, ok := c.Get(other, "k"); ok {
		t.Fatal("Get answered for a foreign snapshot")
	}
	if _, ok := c.Get(sn, "k"); !ok {
		t.Fatal("Get missed own snapshot")
	}
}

func TestCostAwareAdmission(t *testing.T) {
	sn := testSnapshot(t)
	c := New(sn, Options{MinCost: time.Millisecond})
	r := Result{Vars: []string{"s"}, Rows: [][]string{{"<http://g/s0>"}}}
	if c.Put(sn, "cheap", r, 100*time.Microsecond) {
		t.Fatal("admitted a result below MinCost")
	}
	if c.Rejected() != 1 {
		t.Fatalf("Rejected = %d, want 1", c.Rejected())
	}
	if !c.Put(sn, "heavy", r, 2*time.Millisecond) {
		t.Fatal("refused a result above MinCost")
	}
	if _, ok := c.Get(sn, "cheap"); ok {
		t.Fatal("cheap result resident")
	}
	if _, ok := c.Get(sn, "heavy"); !ok {
		t.Fatal("heavy result not resident")
	}
}

func TestLRUEvictionUnderBudget(t *testing.T) {
	sn := testSnapshot(t)
	// One shard so the LRU order is global; budget fits ~4 small entries.
	c := New(sn, Options{MinCost: -1, Shards: 1, MaxBytes: 1100, MaxEntryBytes: 1 << 20})
	row := Result{Vars: []string{"s"}, Rows: [][]string{{"<http://g/s0>"}}}
	for i := 0; i < 6; i++ {
		if !c.Put(sn, fmt.Sprintf("k%d", i), row, time.Second) {
			t.Fatalf("Put k%d refused", i)
		}
	}
	if c.Evictions() == 0 {
		t.Fatal("no evictions under a budget that cannot hold all entries")
	}
	if c.Bytes() > 1100 {
		t.Fatalf("Bytes() = %d exceeds budget", c.Bytes())
	}
	// The most recent key must have survived; the oldest must be gone.
	if _, ok := c.Get(sn, "k5"); !ok {
		t.Fatal("most recent entry was evicted")
	}
	if _, ok := c.Get(sn, "k0"); ok {
		t.Fatal("oldest entry survived eviction")
	}
}

func TestLRUTouchOnGet(t *testing.T) {
	sn := testSnapshot(t)
	c := New(sn, Options{MinCost: -1, Shards: 1, MaxBytes: 1200, MaxEntryBytes: 1 << 20})
	row := Result{Vars: []string{"s"}, Rows: [][]string{{"<http://g/s0>"}}}
	for i := 0; i < 3; i++ {
		c.Put(sn, fmt.Sprintf("k%d", i), row, time.Second)
	}
	// Touch k0 so k1 becomes the eviction candidate.
	if _, ok := c.Get(sn, "k0"); !ok {
		t.Skip("budget too small for three entries; eviction already ran")
	}
	for i := 3; i < 6; i++ {
		c.Put(sn, fmt.Sprintf("k%d", i), row, time.Second)
	}
	if _, ok := c.Get(sn, "k1"); ok {
		t.Fatal("LRU candidate k1 survived while touched k0 should outlive it")
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	sn := testSnapshot(t)
	c := New(sn, Options{MinCost: -1, MaxEntryBytes: 300})
	big := Result{Vars: []string{"x"}}
	for i := 0; i < 100; i++ {
		big.Rows = append(big.Rows, []string{fmt.Sprintf("\"novel-term-%d\"", i)})
	}
	if c.Put(sn, "big", big, time.Second) {
		t.Fatal("admitted an entry above MaxEntryBytes")
	}
	if c.Rejected() == 0 {
		t.Fatal("oversize rejection not counted")
	}
}

func TestBodies(t *testing.T) {
	sn := testSnapshot(t)
	c := New(sn, Options{MinCost: -1})
	r := Result{Vars: []string{"s"}, Rows: [][]string{{"<http://g/s0>"}}}
	if _, ok := c.SetBody("absent", "application/json", []byte("{}")); ok {
		t.Fatal("SetBody succeeded for a non-resident key")
	}
	c.Put(sn, "k", r, time.Second)
	body := []byte(`{"results":1}`)
	etag, ok := c.SetBody("k", "application/json", body)
	if !ok || etag == "" {
		t.Fatalf("SetBody = %q, %v", etag, ok)
	}
	got, tag, ok := c.Body("k", "application/json")
	if !ok || tag != etag || string(got) != string(body) {
		t.Fatalf("Body = %q, %q, %v", got, tag, ok)
	}
	if _, _, ok := c.Body("k", "text/csv"); ok {
		t.Fatal("Body answered an unset content type")
	}
	// Same content type again: idempotent, keeps the first tag.
	tag2, ok := c.SetBody("k", "application/json", []byte("other"))
	if !ok || tag2 != etag {
		t.Fatalf("second SetBody = %q, want %q", tag2, etag)
	}
	if c.BodyHits() != 1 {
		t.Fatalf("BodyHits = %d, want 1", c.BodyHits())
	}
}

func TestSetBodyGrowthCannotEvictOwnEntry(t *testing.T) {
	sn := testSnapshot(t)
	c := New(sn, Options{MinCost: -1, Shards: 1, MaxBytes: 900, MaxEntryBytes: 860})
	r := Result{Vars: []string{"s"}, Rows: [][]string{{"<http://g/s0>"}}}
	c.Put(sn, "a", r, time.Second)
	c.Put(sn, "b", r, time.Second)
	// Growing a must evict b, never a itself.
	if _, ok := c.SetBody("a", "application/json", make([]byte, 400)); !ok {
		t.Fatal("SetBody refused although evicting b frees room")
	}
	if _, _, ok := c.Body("a", "application/json"); !ok {
		t.Fatal("grown entry lost its body")
	}
	if c.Bytes() > 900 {
		t.Fatalf("Bytes() = %d exceeds budget after growth", c.Bytes())
	}
}

func TestSingleFlight(t *testing.T) {
	sn := testSnapshot(t)
	c := New(sn, Options{MinCost: -1})
	f, leader := c.Join("k")
	if !leader {
		t.Fatal("first Join is not leader")
	}
	f2, leader2 := c.Join("k")
	if leader2 || f2 != f {
		t.Fatal("second Join did not follow the first flight")
	}
	r := Result{Vars: []string{"s"}, Rows: [][]string{{"<http://g/s0>"}}}
	go c.Complete("k", f, r, true)
	got, ok, err := f2.Wait(context.Background(), c)
	if err != nil || !ok || !reflect.DeepEqual(got, r) {
		t.Fatalf("Wait = %#v, %v, %v", got, ok, err)
	}
	if c.Collapsed() != 1 {
		t.Fatalf("Collapsed = %d, want 1", c.Collapsed())
	}
	// The flight is resolved; a new Join leads again.
	if _, leader := c.Join("k"); !leader {
		t.Fatal("Join after Complete did not lead")
	}
}

func TestFlightUnshareableWakesFollowers(t *testing.T) {
	sn := testSnapshot(t)
	c := New(sn, Options{MinCost: -1})
	f, _ := c.Join("k")
	go c.Complete("k", f, Result{}, false)
	_, ok, err := f.Wait(context.Background(), c)
	if err != nil || ok {
		t.Fatalf("Wait on unshareable = ok %v, err %v; want self-execute signal", ok, err)
	}
	if c.Collapsed() != 0 {
		t.Fatal("unshareable completion counted as collapsed")
	}
}

func TestFlightWaitHonorsContext(t *testing.T) {
	sn := testSnapshot(t)
	c := New(sn, Options{MinCost: -1})
	f, _ := c.Join("k")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := f.Wait(ctx, c); err == nil {
		t.Fatal("Wait returned without leader completion or context error")
	}
	c.Complete("k", f, Result{}, false) // leaders must always complete
}

func TestFlightStampede(t *testing.T) {
	sn := testSnapshot(t)
	c := New(sn, Options{MinCost: -1})
	const n = 32
	var executions, collapsed, hits int64
	var mu sync.Mutex
	r := Result{Vars: []string{"s"}, Rows: [][]string{{"<http://g/s0>"}}}

	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			if _, ok := c.Get(sn, "k"); ok {
				mu.Lock()
				hits++
				mu.Unlock()
				return
			}
			fl, leader := c.Join("k")
			if leader {
				mu.Lock()
				executions++
				mu.Unlock()
				time.Sleep(5 * time.Millisecond) // let followers pile up
				c.Complete("k", fl, r, true)
				c.Put(sn, "k", r, time.Second)
				return
			}
			if _, ok, err := fl.Wait(context.Background(), c); err != nil || !ok {
				t.Errorf("follower Wait = %v, %v", ok, err)
			}
			mu.Lock()
			collapsed++
			mu.Unlock()
		}()
	}
	start.Done()
	done.Wait()
	if executions != 1 {
		t.Fatalf("executions = %d, want exactly 1", executions)
	}
	if hits+collapsed != n-1 {
		t.Fatalf("hits %d + collapsed %d = %d, want %d", hits, collapsed, hits+collapsed, n-1)
	}
}
