// Package rdf implements an in-memory RDF triple store with dictionary
// encoding. The mutable Store is a single-writer builder: terms are
// interned to dense IDs and triples deduplicated as they arrive. Freeze
// converts the accumulated triples into an immutable Snapshot carrying
// the four index orderings (SPO, POS, OSP, PSO) as compact sorted
// posting lists; the Snapshot is safe to share across goroutines and is
// the data substrate the query engines of package engine build on
// (the chain/cycle experiment of Section 5.1, Figure 3).
package rdf

// ID is a dictionary-encoded term identifier.
type ID = uint32

// Triple is a dictionary-encoded RDF triple.
type Triple struct {
	S, P, O ID
}

// Store is the mutable builder half of the store: it interns terms to
// dense IDs and deduplicates triples. It holds no read indexes — call
// Freeze to obtain an immutable, indexed Snapshot for querying. A Store
// must not be mutated concurrently; Snapshots taken from it are
// independent of later mutation.
type Store struct {
	dict    map[string]ID
	terms   []string
	triples []Triple
	seen    map[Triple]bool
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		dict: make(map[string]ID),
		seen: make(map[Triple]bool),
	}
}

// Intern returns the ID for a term, creating it if needed.
func (s *Store) Intern(term string) ID {
	if id, ok := s.dict[term]; ok {
		return id
	}
	id := ID(len(s.terms))
	s.dict[term] = id
	s.terms = append(s.terms, term)
	return id
}

// Lookup returns the ID of a term if it is known.
func (s *Store) Lookup(term string) (ID, bool) {
	id, ok := s.dict[term]
	return id, ok
}

// TermOf returns the string form of an ID.
func (s *Store) TermOf(id ID) string {
	if int(id) < len(s.terms) {
		return s.terms[id]
	}
	return ""
}

// NumTerms returns the dictionary size.
func (s *Store) NumTerms() int { return len(s.terms) }

// Len returns the number of distinct triples.
func (s *Store) Len() int { return len(s.triples) }

// Add inserts a triple given as strings; duplicates are ignored.
func (s *Store) Add(sub, pred, obj string) {
	s.AddIDs(s.Intern(sub), s.Intern(pred), s.Intern(obj))
}

// AddIDs inserts a dictionary-encoded triple; duplicates are ignored.
func (s *Store) AddIDs(sub, pred, obj ID) {
	t := Triple{sub, pred, obj}
	if s.seen[t] {
		return
	}
	s.seen[t] = true
	s.triples = append(s.triples, t)
}

// Triples returns all stored triples in insertion order (shared backing;
// do not mutate).
func (s *Store) Triples() []Triple { return s.triples }
