// Package rdf implements an in-memory RDF triple store with dictionary
// encoding and the four index orderings (SPO, POS, OSP, PSO) that the
// query engines of package engine build on. It is the data substrate for
// the chain/cycle experiment of Section 5.1 (Figure 3).
package rdf

import "sort"

// ID is a dictionary-encoded term identifier.
type ID = uint32

// Triple is a dictionary-encoded RDF triple.
type Triple struct {
	S, P, O ID
}

// Store is an in-memory triple store. Terms are interned to dense IDs;
// triples are deduplicated; four hash-based indexes serve the access
// patterns required by index nested-loop joins.
type Store struct {
	dict    map[string]ID
	terms   []string
	triples []Triple
	seen    map[Triple]bool

	spo map[ID]map[ID][]ID // subject -> predicate -> objects
	pos map[ID]map[ID][]ID // predicate -> object -> subjects
	osp map[ID]map[ID][]ID // object -> subject -> predicates
	pso map[ID][]Triple    // predicate -> triples (scan order)

	sorted bool
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		dict: make(map[string]ID),
		seen: make(map[Triple]bool),
		spo:  make(map[ID]map[ID][]ID),
		pos:  make(map[ID]map[ID][]ID),
		osp:  make(map[ID]map[ID][]ID),
		pso:  make(map[ID][]Triple),
	}
}

// Intern returns the ID for a term, creating it if needed.
func (s *Store) Intern(term string) ID {
	if id, ok := s.dict[term]; ok {
		return id
	}
	id := ID(len(s.terms))
	s.dict[term] = id
	s.terms = append(s.terms, term)
	return id
}

// Lookup returns the ID of a term if it is known.
func (s *Store) Lookup(term string) (ID, bool) {
	id, ok := s.dict[term]
	return id, ok
}

// TermOf returns the string form of an ID.
func (s *Store) TermOf(id ID) string {
	if int(id) < len(s.terms) {
		return s.terms[id]
	}
	return ""
}

// NumTerms returns the dictionary size.
func (s *Store) NumTerms() int { return len(s.terms) }

// Len returns the number of distinct triples.
func (s *Store) Len() int { return len(s.triples) }

// Add inserts a triple given as strings; duplicates are ignored.
func (s *Store) Add(sub, pred, obj string) {
	s.AddIDs(s.Intern(sub), s.Intern(pred), s.Intern(obj))
}

// AddIDs inserts a dictionary-encoded triple; duplicates are ignored.
func (s *Store) AddIDs(sub, pred, obj ID) {
	t := Triple{sub, pred, obj}
	if s.seen[t] {
		return
	}
	s.seen[t] = true
	s.triples = append(s.triples, t)
	ins := func(m map[ID]map[ID][]ID, a, b, c ID) {
		inner, ok := m[a]
		if !ok {
			inner = make(map[ID][]ID)
			m[a] = inner
		}
		inner[b] = append(inner[b], c)
	}
	ins(s.spo, sub, pred, obj)
	ins(s.pos, pred, obj, sub)
	ins(s.osp, obj, sub, pred)
	s.pso[pred] = append(s.pso[pred], t)
	s.sorted = false
}

// Freeze sorts the posting lists, enabling binary-search membership tests.
// It is idempotent and called automatically by Has.
func (s *Store) Freeze() {
	if s.sorted {
		return
	}
	for _, m := range []map[ID]map[ID][]ID{s.spo, s.pos, s.osp} {
		for _, inner := range m {
			for k := range inner {
				lst := inner[k]
				sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
			}
		}
	}
	s.sorted = true
}

// Has reports whether the store contains the triple.
func (s *Store) Has(sub, pred, obj ID) bool {
	s.Freeze()
	inner, ok := s.spo[sub]
	if !ok {
		return false
	}
	lst := inner[pred]
	i := sort.Search(len(lst), func(i int) bool { return lst[i] >= obj })
	return i < len(lst) && lst[i] == obj
}

// Objects returns the objects of (sub, pred, ?o).
func (s *Store) Objects(sub, pred ID) []ID {
	if inner, ok := s.spo[sub]; ok {
		return inner[pred]
	}
	return nil
}

// Subjects returns the subjects of (?s, pred, obj).
func (s *Store) Subjects(pred, obj ID) []ID {
	if inner, ok := s.pos[pred]; ok {
		return inner[obj]
	}
	return nil
}

// Predicates returns the predicates of (sub, ?p, obj).
func (s *Store) Predicates(sub, obj ID) []ID {
	if inner, ok := s.osp[obj]; ok {
		return inner[sub]
	}
	return nil
}

// ScanPredicate returns all triples with the given predicate.
func (s *Store) ScanPredicate(pred ID) []Triple { return s.pso[pred] }

// PredicateCardinality returns the number of triples with the predicate.
func (s *Store) PredicateCardinality(pred ID) int { return len(s.pso[pred]) }

// Triples returns all stored triples (shared backing; do not mutate).
func (s *Store) Triples() []Triple { return s.triples }
