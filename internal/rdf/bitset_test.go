package rdf

import (
	"math/rand"
	"sort"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(200)
	if b.Count() != 0 {
		t.Fatalf("fresh bitset count = %d", b.Count())
	}
	if !b.Set(3) || !b.Set(64) || !b.Set(199) {
		t.Fatal("first Set must report newly inserted")
	}
	if b.Set(64) {
		t.Fatal("second Set of the same id must report not inserted")
	}
	for _, id := range []ID{3, 64, 199} {
		if !b.Has(id) {
			t.Errorf("Has(%d) = false after Set", id)
		}
	}
	if b.Has(5) || b.Has(1000) {
		t.Error("absent / out-of-range ids must read as absent")
	}
	if b.Set(1000) {
		t.Error("out-of-range Set must be a no-op reporting false")
	}
	if got := b.Count(); got != 3 {
		t.Errorf("Count = %d, want 3", got)
	}
	if ids := b.AppendIDs(nil); len(ids) != 3 || ids[0] != 3 || ids[1] != 64 || ids[2] != 199 {
		t.Errorf("AppendIDs = %v, want [3 64 199]", ids)
	}
	b.Unset(64)
	if b.Has(64) || b.Count() != 2 {
		t.Error("Unset did not remove the id")
	}
	b.Clear()
	if b.Count() != 0 {
		t.Error("Clear left members behind")
	}
}

func TestBitsetAgainstMap(t *testing.T) {
	const n = 513 // crosses word boundaries
	rng := rand.New(rand.NewSource(11))
	b := NewBitset(n)
	ref := map[ID]bool{}
	for i := 0; i < 2000; i++ {
		id := ID(rng.Intn(n))
		if rng.Intn(3) == 0 {
			b.Unset(id)
			delete(ref, id)
		} else {
			if b.Set(id) == ref[id] {
				t.Fatalf("Set(%d) newly-inserted report disagrees with reference", id)
			}
			ref[id] = true
		}
	}
	var want []ID
	for id := range ref {
		want = append(want, id)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := b.AppendIDs(nil)
	if len(got) != len(want) {
		t.Fatalf("cardinality %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("member %d = %d, want %d", i, got[i], want[i])
		}
	}
	if b.Count() != len(ref) {
		t.Errorf("Count = %d, want %d", b.Count(), len(ref))
	}
}

func TestSnapshotNewBitset(t *testing.T) {
	st := NewStore()
	st.Add("s", "p", "o")
	sn := st.Freeze()
	b := sn.NewBitset()
	for id := ID(0); int(id) < sn.NumTerms(); id++ {
		if !b.Set(id) {
			t.Fatalf("snapshot-sized bitset rejected in-range id %d", id)
		}
	}
}
