package rdf

import "math/bits"

// Bitset is a dense bit vector over dictionary IDs, the frontier/visited
// representation of the compiled path engine (internal/pathcomp): one bit
// per term, so membership tests and inserts are branch-free word ops and
// a breadth-first frontier touches memory linearly instead of hashing.
// Size it off the snapshot's ID bound with Snapshot.NewBitset.
type Bitset []uint64

// NewBitset returns a Bitset able to hold IDs in [0, n).
func NewBitset(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// NewBitset returns a Bitset sized to the snapshot's dictionary, so every
// term ID of the snapshot is in range.
func (sn *Snapshot) NewBitset() Bitset {
	return NewBitset(len(sn.terms))
}

// Has reports whether id is in the set. IDs past the set's capacity are
// reported absent rather than panicking, matching the zero statistics
// out-of-dictionary IDs get elsewhere.
func (b Bitset) Has(id ID) bool {
	w := int(id >> 6)
	return w < len(b) && b[w]&(1<<(id&63)) != 0
}

// Set inserts id and reports whether it was newly inserted (the
// test-and-set a BFS visited check needs). IDs past the capacity are
// ignored and reported as not inserted.
func (b Bitset) Set(id ID) bool {
	w := int(id >> 6)
	if w >= len(b) {
		return false
	}
	mask := uint64(1) << (id & 63)
	if b[w]&mask != 0 {
		return false
	}
	b[w] |= mask
	return true
}

// Unset removes id.
func (b Bitset) Unset(id ID) {
	w := int(id >> 6)
	if w < len(b) {
		b[w] &^= 1 << (id & 63)
	}
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clear empties the set in place.
func (b Bitset) Clear() {
	for i := range b {
		b[i] = 0
	}
}

// AppendIDs appends the members in ascending ID order and returns the
// extended slice.
func (b Bitset) AppendIDs(dst []ID) []ID {
	for wi, w := range b {
		base := ID(wi) << 6
		for w != 0 {
			dst = append(dst, base+ID(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}
