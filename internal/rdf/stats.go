package rdf

// Stats is the statistics block a Snapshot computes once at Freeze time,
// the way a database gathers table statistics at load: global distinct
// counts plus a per-predicate summary. The cost-based planner of
// internal/plan consumes it to estimate atom cardinalities without
// touching the indexes, so planning is O(atoms²) independent of data
// size.
//
// All fields describe the frozen triple set and never change; a Stats
// may be read from any number of goroutines.
type Stats struct {
	// Triples is the total number of distinct triples.
	Triples int
	// DistinctSubjects, DistinctPredicates and DistinctObjects count
	// terms appearing in each position at least once.
	DistinctSubjects   int
	DistinctPredicates int
	DistinctObjects    int

	// pred is indexed by term ID (dense over the dictionary; terms that
	// never appear as a predicate hold the zero summary).
	pred []PredStats
}

// PredStats summarizes one predicate's triples.
type PredStats struct {
	// Card is the number of triples with this predicate.
	Card uint32
	// Subjects and Objects are the distinct subject / object counts
	// under this predicate.
	Subjects uint32
	Objects  uint32
	// MaxSubjectFan is the largest number of objects any single subject
	// has under this predicate; MaxObjectFan mirrors it for objects.
	// They bound the error of the average-degree estimates.
	MaxSubjectFan uint32
	MaxObjectFan  uint32
}

// Predicate returns the summary for a predicate ID (zero for IDs that
// never appear in predicate position, including out-of-dictionary IDs).
func (st *Stats) Predicate(p ID) PredStats {
	if int(p) < len(st.pred) {
		return st.pred[p]
	}
	return PredStats{}
}

// computeStats derives the statistics block from the snapshot's freshly
// built indexes. Each CSR ordering is walked once, so the cost is O(n)
// on top of the index sorts Freeze already pays.
func computeStats(sn *Snapshot) *Stats {
	nTerms := len(sn.terms)
	st := &Stats{
		Triples: len(sn.triples),
		pred:    make([]PredStats, nTerms),
	}
	for p := 0; p < nTerms; p++ {
		st.pred[p].Card = sn.predOff[p+1] - sn.predOff[p]
		if st.pred[p].Card > 0 {
			st.DistinctPredicates++
		}
	}
	// SPO rows are sorted by (predicate, object): each run of one
	// predicate within a subject's row is one distinct subject for that
	// predicate, and the run length is that subject's fan-out.
	for s := 0; s < nTerms; s++ {
		preds, _ := sn.spo.row(ID(s))
		if len(preds) == 0 {
			continue
		}
		st.DistinctSubjects++
		for i := 0; i < len(preds); {
			j := i
			for j < len(preds) && preds[j] == preds[i] {
				j++
			}
			ps := &st.pred[preds[i]]
			ps.Subjects++
			if fan := uint32(j - i); fan > ps.MaxSubjectFan {
				ps.MaxSubjectFan = fan
			}
			i = j
		}
	}
	// POS rows are sorted by (object, subject): runs of one object give
	// the distinct objects and per-object fan-in of each predicate.
	for p := 0; p < nTerms; p++ {
		objs, _ := sn.pos.row(ID(p))
		for i := 0; i < len(objs); {
			j := i
			for j < len(objs) && objs[j] == objs[i] {
				j++
			}
			ps := &st.pred[p]
			ps.Objects++
			if fan := uint32(j - i); fan > ps.MaxObjectFan {
				ps.MaxObjectFan = fan
			}
			i = j
		}
	}
	for o := 0; o < nTerms; o++ {
		if subs, _ := sn.osp.row(ID(o)); len(subs) > 0 {
			st.DistinctObjects++
		}
	}
	return st
}
