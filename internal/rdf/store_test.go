package rdf

import (
	"sync"
	"testing"
)

func TestInternDedup(t *testing.T) {
	s := NewStore()
	a := s.Intern("x")
	b := s.Intern("x")
	if a != b {
		t.Error("interning must be idempotent")
	}
	if s.NumTerms() != 1 {
		t.Errorf("terms = %d, want 1", s.NumTerms())
	}
	if s.TermOf(a) != "x" {
		t.Errorf("TermOf = %q", s.TermOf(a))
	}
}

func TestAddAndLookup(t *testing.T) {
	s := NewStore()
	s.Add("s1", "p", "o1")
	s.Add("s1", "p", "o2")
	s.Add("s2", "p", "o1")
	s.Add("s1", "p", "o1") // duplicate
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	sn := s.Freeze()
	sid, _ := sn.Lookup("s1")
	pid, _ := sn.Lookup("p")
	oid, _ := sn.Lookup("o1")
	if got := len(sn.Objects(sid, pid)); got != 2 {
		t.Errorf("objects = %d, want 2", got)
	}
	if got := len(sn.Subjects(pid, oid)); got != 2 {
		t.Errorf("subjects = %d, want 2", got)
	}
	if got := len(sn.Predicates(sid, oid)); got != 1 {
		t.Errorf("predicates = %d, want 1", got)
	}
	if !sn.Has(sid, pid, oid) {
		t.Error("Has should find stored triple")
	}
	s2id, _ := sn.Lookup("s2")
	o2id, _ := sn.Lookup("o2")
	if sn.Has(s2id, pid, o2id) {
		t.Error("Has found non-existent triple")
	}
	if sn.PredicateCardinality(pid) != 3 {
		t.Errorf("predicate cardinality = %d", sn.PredicateCardinality(pid))
	}
	if sn.SubjectDegree(sid) != 2 || sn.ObjectDegree(oid) != 2 {
		t.Errorf("degrees = %d/%d, want 2/2", sn.SubjectDegree(sid), sn.ObjectDegree(oid))
	}
}

func TestSnapshotIsolation(t *testing.T) {
	s := NewStore()
	s.Add("a", "p", "b")
	sn1 := s.Freeze()
	s.Add("a", "p", "c")
	sn2 := s.Freeze()
	aid, _ := sn2.Lookup("a")
	pid, _ := sn2.Lookup("p")
	cid, _ := sn2.Lookup("c")
	if sn1.Len() != 1 || sn1.Has(aid, pid, cid) {
		t.Error("earlier snapshot must not see later mutation")
	}
	if sn2.Len() != 2 || !sn2.Has(aid, pid, cid) {
		t.Error("later snapshot must see the new triple")
	}
	if _, ok := sn1.Lookup("c"); ok {
		t.Error("earlier snapshot dictionary must not see later interning")
	}
}

func TestSnapshotEdges(t *testing.T) {
	s := NewStore()
	s.Add("a", "p", "b")
	s.Add("a", "q", "c")
	s.Add("d", "p", "b")
	sn := s.Freeze()
	aid, _ := sn.Lookup("a")
	bid, _ := sn.Lookup("b")
	preds, objs := sn.SubjectEdges(aid)
	if len(preds) != 2 || len(objs) != 2 {
		t.Fatalf("subject edges = %d/%d, want 2/2", len(preds), len(objs))
	}
	for i := range preds {
		if !sn.Has(aid, preds[i], objs[i]) {
			t.Errorf("subject edge (%d,%d) not in store", preds[i], objs[i])
		}
	}
	subs, preds2 := sn.ObjectEdges(bid)
	if len(subs) != 2 {
		t.Fatalf("object edges = %d, want 2", len(subs))
	}
	for i := range subs {
		if !sn.Has(subs[i], preds2[i], bid) {
			t.Errorf("object edge (%d,%d) not in store", subs[i], preds2[i])
		}
	}
}

func TestMissingLookups(t *testing.T) {
	s := NewStore()
	s.Add("a", "p", "b")
	sn := s.Freeze()
	if _, ok := sn.Lookup("zzz"); ok {
		t.Error("unknown term found")
	}
	if sn.Objects(99, 98) != nil {
		t.Error("objects of unknown ids should be nil")
	}
	if sn.ScanPredicate(97) != nil || sn.PredicateCardinality(97) != 0 {
		t.Error("scan of unknown predicate should be empty")
	}
	if sn.TermOf(12345) != "" {
		t.Error("unknown id must map to empty string")
	}
}

func TestScanPredicateInsertionOrder(t *testing.T) {
	s := NewStore()
	s.Add("z", "p", "y")
	s.Add("a", "q", "b")
	s.Add("a", "p", "b")
	sn := s.Freeze()
	pid, _ := sn.Lookup("p")
	scan := sn.ScanPredicate(pid)
	if len(scan) != 2 {
		t.Fatalf("scan = %d, want 2", len(scan))
	}
	if sn.TermOf(scan[0].S) != "z" || sn.TermOf(scan[1].S) != "a" {
		t.Errorf("scan order not insertion order: %v", scan)
	}
}

// TestSnapshotConcurrentReads hammers one snapshot from many goroutines;
// run with -race to verify the read path performs no mutation.
func TestSnapshotConcurrentReads(t *testing.T) {
	s := NewStore()
	for i := 0; i < 500; i++ {
		s.Add(string(rune('a'+i%17)), string(rune('p'+i%3)), string(rune('A'+i%23)))
	}
	sn := s.Freeze()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := ID((seed*31 + i) % sn.NumTerms())
				sn.Objects(id, id%7)
				sn.Subjects(id%7, id)
				sn.Predicates(id, id)
				sn.Has(id, id%7, id%11)
				sn.SubjectEdges(id)
				sn.ObjectEdges(id)
				sn.ScanPredicate(id % 7)
			}
		}(g)
	}
	wg.Wait()
}
