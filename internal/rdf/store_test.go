package rdf

import "testing"

func TestInternDedup(t *testing.T) {
	s := NewStore()
	a := s.Intern("x")
	b := s.Intern("x")
	if a != b {
		t.Error("interning must be idempotent")
	}
	if s.NumTerms() != 1 {
		t.Errorf("terms = %d, want 1", s.NumTerms())
	}
	if s.TermOf(a) != "x" {
		t.Errorf("TermOf = %q", s.TermOf(a))
	}
}

func TestAddAndLookup(t *testing.T) {
	s := NewStore()
	s.Add("s1", "p", "o1")
	s.Add("s1", "p", "o2")
	s.Add("s2", "p", "o1")
	s.Add("s1", "p", "o1") // duplicate
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	sid, _ := s.Lookup("s1")
	pid, _ := s.Lookup("p")
	oid, _ := s.Lookup("o1")
	if got := len(s.Objects(sid, pid)); got != 2 {
		t.Errorf("objects = %d, want 2", got)
	}
	if got := len(s.Subjects(pid, oid)); got != 2 {
		t.Errorf("subjects = %d, want 2", got)
	}
	if got := len(s.Predicates(sid, oid)); got != 1 {
		t.Errorf("predicates = %d, want 1", got)
	}
	if !s.Has(sid, pid, oid) {
		t.Error("Has should find stored triple")
	}
	s2id, _ := s.Lookup("s2")
	o2id, _ := s.Lookup("o2")
	if s.Has(s2id, pid, o2id) {
		t.Error("Has found non-existent triple")
	}
	if s.PredicateCardinality(pid) != 3 {
		t.Errorf("predicate cardinality = %d", s.PredicateCardinality(pid))
	}
}

func TestFreezeIdempotent(t *testing.T) {
	s := NewStore()
	s.Add("a", "p", "b")
	s.Freeze()
	s.Freeze()
	s.Add("a", "p", "c")
	aid, _ := s.Lookup("a")
	pid, _ := s.Lookup("p")
	cid, _ := s.Lookup("c")
	if !s.Has(aid, pid, cid) {
		t.Error("Has must re-freeze after mutation")
	}
}

func TestMissingLookups(t *testing.T) {
	s := NewStore()
	s.Add("a", "p", "b")
	if _, ok := s.Lookup("zzz"); ok {
		t.Error("unknown term found")
	}
	if s.Objects(99, 98) != nil {
		t.Error("objects of unknown ids should be nil")
	}
	if s.TermOf(12345) != "" {
		t.Error("unknown id must map to empty string")
	}
}
