package rdf

import (
	"bytes"
	"testing"
)

// FuzzNTriplesRoundTrip checks the writer/reader pair as an inverse on
// the store's term text: whatever three terms go into a store, writing
// it as N-Triples and reading that text back must reproduce the same
// triple set (the store is untyped text, so "same" means term-by-term
// string equality, not syntax equality).
func FuzzNTriplesRoundTrip(f *testing.F) {
	f.Add("http://ex/s", "http://ex/p", "http://ex/o")
	f.Add("_:b0", "http://ex/p", "_:b1")
	f.Add("_:c.", "urn:x", "ends.with.dot.")
	f.Add("http://ex/s", "http://ex/p", "plain literal")
	f.Add("s with space", "p\twith\ttabs", "o\nwith\nnewlines")
	f.Add("\"quoted\"", "back\\slash", "mixed \" and \\ text")
	f.Add("tag", "http://ex/label", "café \U0001F600 ünïcode")
	f.Add("30", "http://ex/age", "x^^<http://www.w3.org/2001/XMLSchema#integer>")
	f.Add("en", "http://ex/lang", "text@en")
	f.Add("", "urn:empty", "")
	f.Add("a>b://weird", "mailto:x@y", "_:label with space")
	f.Fuzz(func(t *testing.T, s, p, o string) {
		st := NewStore()
		st.Add(s, p, o)
		// A second triple reusing the terms exercises dedup and multi-line
		// output.
		st.Add(o, p, s)
		var buf bytes.Buffer
		if err := st.WriteNTriples(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		st2 := NewStore()
		if _, err := st2.ReadNTriples(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("read back: %v\noutput was:\n%s", err, buf.String())
		}
		if !sameTriples(st, st2) {
			t.Fatalf("round trip changed triples\nwrote %q %q %q\noutput:\n%s", s, p, o, buf.String())
		}
	})
}
