package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// ReadNTriples loads N-Triples-style data into the store: one triple per
// line, `<s> <p> <o> .` with IRIs in angle brackets, blank nodes as
// _:label, and literals as quoted strings. Language tags and datatype
// annotations are accepted but NOT retained — the store is untyped text,
// so `"x"@en` stores as `x`. Comment lines (#) and blank lines are
// skipped.
func (s *Store) ReadNTriples(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	n := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sub, rest, err := readTerm(line)
		if err != nil {
			return n, fmt.Errorf("rdf: line %d: %v", lineNo, err)
		}
		pred, rest, err := readTerm(rest)
		if err != nil {
			return n, fmt.Errorf("rdf: line %d: %v", lineNo, err)
		}
		obj, rest, err := readTerm(rest)
		if err != nil {
			return n, fmt.Errorf("rdf: line %d: %v", lineNo, err)
		}
		rest = strings.TrimSpace(rest)
		if rest != "." && rest != "" {
			return n, fmt.Errorf("rdf: line %d: trailing content %q", lineNo, rest)
		}
		s.Add(sub, pred, obj)
		n++
	}
	return n, sc.Err()
}

// readTerm consumes one term from the front of line, returning its store
// text and the remainder.
func readTerm(line string) (string, string, error) {
	line = strings.TrimSpace(line)
	if line == "" {
		return "", "", fmt.Errorf("unexpected end of line")
	}
	switch line[0] {
	case '<':
		end := strings.IndexByte(line, '>')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated IRI")
		}
		return line[1:end], line[end+1:], nil
	case '_':
		if !strings.HasPrefix(line, "_:") {
			return "", "", fmt.Errorf("bad blank node")
		}
		end := strings.IndexAny(line, " \t")
		if end < 0 {
			end = len(line)
		}
		label, rest := line[:end], line[end:]
		// A label cannot end with the statement terminator: in `_:c.` at
		// the end of a line (or with only whitespace after), the final
		// `.` closes the triple, not the label.
		if strings.HasSuffix(label, ".") && strings.TrimSpace(rest) == "" {
			label, rest = label[:len(label)-1], "."
		}
		return label, rest, nil
	case '"':
		// Find the closing quote, honoring escapes.
		i := 1
		var sb strings.Builder
		for i < len(line) {
			c := line[i]
			if c == '\\' && i+1 < len(line) {
				switch line[i+1] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				case '"':
					sb.WriteByte('"')
				case '\\':
					sb.WriteByte('\\')
				case 'u', 'U':
					// UCHAR escapes: \uXXXX and \UXXXXXXXX.
					digits := 4
					if line[i+1] == 'U' {
						digits = 8
					}
					hex := line[i+2:]
					if len(hex) < digits {
						return "", "", fmt.Errorf("truncated \\%c escape", line[i+1])
					}
					r, err := parseHexRune(hex[:digits])
					if err != nil {
						return "", "", err
					}
					sb.WriteRune(r)
					i += 2 + digits
					continue
				default:
					sb.WriteByte(line[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			sb.WriteByte(c)
			i++
		}
		if i >= len(line) {
			return "", "", fmt.Errorf("unterminated literal")
		}
		rest := line[i+1:]
		// Skip language tag or datatype annotation.
		if strings.HasPrefix(rest, "@") {
			end := strings.IndexAny(rest, " \t")
			if end < 0 {
				end = len(rest)
			}
			rest = rest[end:]
		} else if strings.HasPrefix(rest, "^^<") {
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return "", "", fmt.Errorf("unterminated datatype IRI")
			}
			rest = rest[end+1:]
		}
		return sb.String(), rest, nil
	}
	return "", "", fmt.Errorf("unexpected term start %q", line[0])
}

// parseHexRune decodes a fixed-width hex code point.
func parseHexRune(hex string) (rune, error) {
	var r rune
	for i := 0; i < len(hex); i++ {
		c := hex[i]
		var d rune
		switch {
		case c >= '0' && c <= '9':
			d = rune(c - '0')
		case c >= 'a' && c <= 'f':
			d = rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = rune(c-'A') + 10
		default:
			return 0, fmt.Errorf("bad hex digit %q in UCHAR escape", c)
		}
		r = r<<4 | d
	}
	if r > utf8.MaxRune || (r >= 0xD800 && r <= 0xDFFF) {
		return 0, fmt.Errorf("UCHAR escape out of range: %#x", r)
	}
	return r, nil
}

// WriteNTriples serializes the store as N-Triples, writing IRIs in angle
// brackets and everything else as plain literals (the dictionary does not
// retain term kinds, so the heuristic brackets terms that look like
// IRIs). Terms whose text cannot survive the IRI or blank-node syntax
// (embedded whitespace, angle brackets, quotes) are written as literals,
// so Write -> Read round-trips the term text exactly.
func (s *Store) WriteNTriples(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, t := range s.triples {
		if err := writeTerm(bw, s.TermOf(t.S)); err != nil {
			return err
		}
		bw.WriteByte(' ')
		if err := writeTerm(bw, s.TermOf(t.P)); err != nil {
			return err
		}
		bw.WriteByte(' ')
		if err := writeTerm(bw, s.TermOf(t.O)); err != nil {
			return err
		}
		if _, err := bw.WriteString(" .\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// termSafe reports whether the term text can be emitted verbatim inside
// IRI brackets or as a blank-node label without the reader re-tokenizing
// it differently.
func termSafe(term string, blank bool) bool {
	for i := 0; i < len(term); i++ {
		switch c := term[i]; {
		case c <= ' ' || c == 0x7f: // control chars and whitespace
			return false
		case c == '<' || c == '>' || c == '"':
			return false
		case blank && (c == '.' || c == '\\'):
			// Dots are legal mid-label but ambiguous at the boundary and
			// backslashes never un-escape; quote such labels instead.
			return false
		}
	}
	return true
}

func writeTerm(w *bufio.Writer, term string) error {
	if strings.HasPrefix(term, "_:") && termSafe(term[2:], true) {
		_, err := w.WriteString(term)
		return err
	}
	looksIRI := strings.Contains(term, "://") || strings.HasPrefix(term, "urn:") || strings.HasPrefix(term, "mailto:")
	if looksIRI && termSafe(term, false) {
		w.WriteByte('<')
		w.WriteString(term)
		return w.WriteByte('>')
	}
	w.WriteByte('"')
	for i := 0; i < len(term); i++ {
		switch c := term[i]; c {
		case '"':
			w.WriteString(`\"`)
		case '\\':
			w.WriteString(`\\`)
		case '\n':
			w.WriteString(`\n`)
		case '\r':
			w.WriteString(`\r`)
		case '\t':
			w.WriteString(`\t`)
		default:
			w.WriteByte(c)
		}
	}
	return w.WriteByte('"')
}
