package rdf

import "sort"

// Snapshot is an immutable, goroutine-shareable view of a Store's
// contents at Freeze time. The triple-nested hash indexes of the old
// store are replaced by three CSR-style orderings (SPO, POS, OSP): per
// first component, a contiguous run of the remaining two components
// sorted lexicographically, addressed by a dense offsets array. Lookups
// return subslices of the dense arrays — no allocation, no mutation, so
// any number of goroutines may query one Snapshot concurrently.
type Snapshot struct {
	dict    map[string]ID
	terms   []string
	triples []Triple // insertion order

	spo csr // subject -> (predicate, object)
	pos csr // predicate -> (object, subject)
	osp csr // object -> (subject, predicate)

	// PSO scan order: triples grouped by predicate, insertion order
	// preserved within each group.
	byPred  []Triple
	predOff []uint32

	// stats is the statistics block computed once from the indexes;
	// immutable like everything else here.
	stats *Stats
}

// csr is a compact sparse-row index: for first-component key k, rows
// off[k]:off[k+1] of the parallel arrays b and c hold the remaining two
// triple components, sorted lexicographically by (b, c).
type csr struct {
	off  []uint32
	b, c []ID
}

// row returns the (b, c) parallel slices for key a.
func (x *csr) row(a ID) ([]ID, []ID) {
	if int(a)+1 >= len(x.off) {
		return nil, nil
	}
	lo, hi := x.off[a], x.off[a+1]
	return x.b[lo:hi], x.c[lo:hi]
}

// list returns the c-values of rows with first component a and second
// component b, located by binary search within a's run.
func (x *csr) list(a, b ID) []ID {
	bs, cs := x.row(a)
	i := sort.Search(len(bs), func(i int) bool { return bs[i] >= b })
	j := i + sort.Search(len(bs[i:]), func(k int) bool { return bs[i+k] > b })
	return cs[i:j]
}

// buildCSR indexes the triples under the permutation perm, which maps a
// triple to its (first, second, third) components for this ordering.
func buildCSR(triples []Triple, nTerms int, perm func(Triple) (a, b, c ID)) csr {
	n := len(triples)
	sorted := make([]Triple, n)
	for i, t := range triples {
		a, b, c := perm(t)
		sorted[i] = Triple{a, b, c}
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].S != sorted[j].S {
			return sorted[i].S < sorted[j].S
		}
		if sorted[i].P != sorted[j].P {
			return sorted[i].P < sorted[j].P
		}
		return sorted[i].O < sorted[j].O
	})
	x := csr{
		off: make([]uint32, nTerms+1),
		b:   make([]ID, n),
		c:   make([]ID, n),
	}
	for _, t := range sorted {
		x.off[t.S+1]++
	}
	for k := 1; k <= nTerms; k++ {
		x.off[k] += x.off[k-1]
	}
	for i, t := range sorted {
		x.b[i] = t.P
		x.c[i] = t.O
	}
	return x
}

// Freeze builds an immutable Snapshot of the store's current contents.
// It may be called repeatedly; each call returns an independent Snapshot
// unaffected by later Store mutation.
func (s *Store) Freeze() *Snapshot {
	n := len(s.triples)
	nTerms := len(s.terms)
	sn := &Snapshot{
		dict:    make(map[string]ID, len(s.dict)),
		terms:   append([]string(nil), s.terms...),
		triples: append([]Triple(nil), s.triples...),
	}
	for k, v := range s.dict {
		sn.dict[k] = v
	}
	sn.spo = buildCSR(sn.triples, nTerms, func(t Triple) (ID, ID, ID) { return t.S, t.P, t.O })
	sn.pos = buildCSR(sn.triples, nTerms, func(t Triple) (ID, ID, ID) { return t.P, t.O, t.S })
	sn.osp = buildCSR(sn.triples, nTerms, func(t Triple) (ID, ID, ID) { return t.O, t.S, t.P })

	// Stable counting sort by predicate keeps insertion order within each
	// predicate's scan run.
	sn.predOff = make([]uint32, nTerms+1)
	for _, t := range sn.triples {
		sn.predOff[t.P+1]++
	}
	for k := 1; k <= nTerms; k++ {
		sn.predOff[k] += sn.predOff[k-1]
	}
	sn.byPred = make([]Triple, n)
	fill := append([]uint32(nil), sn.predOff...)
	for _, t := range sn.triples {
		sn.byPred[fill[t.P]] = t
		fill[t.P]++
	}
	sn.stats = computeStats(sn)
	return sn
}

// Stats returns the statistics block computed at Freeze time.
func (sn *Snapshot) Stats() *Stats { return sn.stats }

// Lookup returns the ID of a term if it is known.
func (sn *Snapshot) Lookup(term string) (ID, bool) {
	id, ok := sn.dict[term]
	return id, ok
}

// TermOf returns the string form of an ID.
func (sn *Snapshot) TermOf(id ID) string {
	if int(id) < len(sn.terms) {
		return sn.terms[id]
	}
	return ""
}

// NumTerms returns the dictionary size.
func (sn *Snapshot) NumTerms() int { return len(sn.terms) }

// Len returns the number of distinct triples.
func (sn *Snapshot) Len() int { return len(sn.triples) }

// Triples returns all triples in insertion order (shared backing; do not
// mutate).
func (sn *Snapshot) Triples() []Triple { return sn.triples }

// Has reports whether the snapshot contains the triple.
func (sn *Snapshot) Has(sub, pred, obj ID) bool {
	objs := sn.spo.list(sub, pred)
	i := sort.Search(len(objs), func(i int) bool { return objs[i] >= obj })
	return i < len(objs) && objs[i] == obj
}

// Objects returns the objects of (sub, pred, ?o), sorted ascending.
func (sn *Snapshot) Objects(sub, pred ID) []ID { return sn.spo.list(sub, pred) }

// Subjects returns the subjects of (?s, pred, obj), sorted ascending.
func (sn *Snapshot) Subjects(pred, obj ID) []ID { return sn.pos.list(pred, obj) }

// Predicates returns the predicates of (sub, ?p, obj), sorted ascending.
func (sn *Snapshot) Predicates(sub, obj ID) []ID { return sn.osp.list(obj, sub) }

// SubjectEdges returns the parallel (predicates, objects) slices of all
// triples with the given subject, sorted by (predicate, object).
func (sn *Snapshot) SubjectEdges(sub ID) (preds, objs []ID) { return sn.spo.row(sub) }

// ObjectEdges returns the parallel (subjects, predicates) slices of all
// triples with the given object, sorted by (subject, predicate).
func (sn *Snapshot) ObjectEdges(obj ID) (subs, preds []ID) { return sn.osp.row(obj) }

// SubjectDegree returns the number of triples with the given subject.
func (sn *Snapshot) SubjectDegree(sub ID) int {
	bs, _ := sn.spo.row(sub)
	return len(bs)
}

// ObjectDegree returns the number of triples with the given object.
func (sn *Snapshot) ObjectDegree(obj ID) int {
	bs, _ := sn.osp.row(obj)
	return len(bs)
}

// ScanPredicate returns all triples with the given predicate, in
// insertion order.
func (sn *Snapshot) ScanPredicate(pred ID) []Triple {
	if int(pred)+1 >= len(sn.predOff) {
		return nil
	}
	return sn.byPred[sn.predOff[pred]:sn.predOff[pred+1]]
}

// PredicateCardinality returns the number of triples with the predicate.
func (sn *Snapshot) PredicateCardinality(pred ID) int {
	if int(pred)+1 >= len(sn.predOff) {
		return 0
	}
	return int(sn.predOff[pred+1] - sn.predOff[pred])
}
