package rdf

import (
	"math/rand"
	"testing"
)

func TestStatsSmall(t *testing.T) {
	st := NewStore()
	// p: a->x, a->y, b->x   q: a->a
	st.Add("a", "p", "x")
	st.Add("a", "p", "y")
	st.Add("b", "p", "x")
	st.Add("a", "q", "a")
	sn := st.Freeze()
	stats := sn.Stats()

	if stats.Triples != 4 {
		t.Fatalf("Triples = %d, want 4", stats.Triples)
	}
	if stats.DistinctSubjects != 2 { // a, b
		t.Errorf("DistinctSubjects = %d, want 2", stats.DistinctSubjects)
	}
	if stats.DistinctPredicates != 2 { // p, q
		t.Errorf("DistinctPredicates = %d, want 2", stats.DistinctPredicates)
	}
	if stats.DistinctObjects != 3 { // x, y, a
		t.Errorf("DistinctObjects = %d, want 3", stats.DistinctObjects)
	}

	p, _ := sn.Lookup("p")
	ps := stats.Predicate(p)
	if ps.Card != 3 || ps.Subjects != 2 || ps.Objects != 2 {
		t.Errorf("p stats = %+v, want Card 3, Subjects 2, Objects 2", ps)
	}
	if ps.MaxSubjectFan != 2 { // a has two p-objects
		t.Errorf("p MaxSubjectFan = %d, want 2", ps.MaxSubjectFan)
	}
	if ps.MaxObjectFan != 2 { // x has two p-subjects
		t.Errorf("p MaxObjectFan = %d, want 2", ps.MaxObjectFan)
	}

	q, _ := sn.Lookup("q")
	qs := stats.Predicate(q)
	if qs.Card != 1 || qs.Subjects != 1 || qs.Objects != 1 {
		t.Errorf("q stats = %+v, want all 1", qs)
	}

	// Non-predicate and out-of-dictionary IDs report the zero summary.
	x, _ := sn.Lookup("x")
	if stats.Predicate(x) != (PredStats{}) {
		t.Errorf("non-predicate term has stats %+v", stats.Predicate(x))
	}
	if stats.Predicate(^ID(0)) != (PredStats{}) {
		t.Error("out-of-dictionary ID has nonzero stats")
	}
}

// TestStatsAgainstBruteForce cross-checks the CSR-walk statistics against
// a map-based recount on random stores.
func TestStatsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		st := NewStore()
		nNodes := 2 + rng.Intn(12)
		nPreds := 1 + rng.Intn(4)
		for i := 0; i < 5+rng.Intn(60); i++ {
			st.Add(
				string(rune('a'+rng.Intn(nNodes))),
				"p"+string(rune('0'+rng.Intn(nPreds))),
				string(rune('a'+rng.Intn(nNodes))),
			)
		}
		sn := st.Freeze()
		stats := sn.Stats()

		subs, preds, objs := map[ID]bool{}, map[ID]bool{}, map[ID]bool{}
		type pk struct{ p, t ID }
		card := map[ID]uint32{}
		sFan, oFan := map[pk]uint32{}, map[pk]uint32{}
		pSubs, pObjs := map[pk]bool{}, map[pk]bool{}
		for _, tr := range sn.Triples() {
			subs[tr.S], preds[tr.P], objs[tr.O] = true, true, true
			card[tr.P]++
			sFan[pk{tr.P, tr.S}]++
			oFan[pk{tr.P, tr.O}]++
			pSubs[pk{tr.P, tr.S}] = true
			pObjs[pk{tr.P, tr.O}] = true
		}
		if stats.DistinctSubjects != len(subs) || stats.DistinctPredicates != len(preds) || stats.DistinctObjects != len(objs) {
			t.Fatalf("trial %d: distinct S/P/O = %d/%d/%d, want %d/%d/%d", trial,
				stats.DistinctSubjects, stats.DistinctPredicates, stats.DistinctObjects,
				len(subs), len(preds), len(objs))
		}
		for p := range preds {
			got := stats.Predicate(p)
			var wantS, wantO, maxS, maxO uint32
			for k := range pSubs {
				if k.p == p {
					wantS++
					if sFan[k] > maxS {
						maxS = sFan[k]
					}
				}
			}
			for k := range pObjs {
				if k.p == p {
					wantO++
					if oFan[k] > maxO {
						maxO = oFan[k]
					}
				}
			}
			want := PredStats{Card: card[p], Subjects: wantS, Objects: wantO, MaxSubjectFan: maxS, MaxObjectFan: maxO}
			if got != want {
				t.Fatalf("trial %d: pred %d stats = %+v, want %+v", trial, p, got, want)
			}
		}
	}
}
