package rdf

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadNTriples(t *testing.T) {
	src := `
# a comment
<http://ex/a> <http://ex/p> <http://ex/b> .
<http://ex/a> <http://ex/name> "Alice" .
<http://ex/a> <http://ex/label> "tag"@en .
<http://ex/a> <http://ex/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b1 <http://ex/p> "esc\"aped\nline" .
`
	st := NewStore()
	n, err := st.ReadNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || st.Len() != 5 {
		t.Fatalf("loaded %d/%d, want 5", n, st.Len())
	}
	a, _ := st.Lookup("http://ex/a")
	name, _ := st.Lookup("http://ex/name")
	alice, ok := st.Lookup("Alice")
	if !ok || !st.Has(a, name, alice) {
		t.Error("literal triple missing")
	}
	if _, ok := st.Lookup("tag"); !ok {
		t.Error("language-tagged literal should store its lexical form")
	}
	if _, ok := st.Lookup("esc\"aped\nline"); !ok {
		t.Error("escapes should decode")
	}
}

func TestReadNTriplesErrors(t *testing.T) {
	bad := []string{
		"<http://ex/a> <http://ex/p>",
		"<http://ex/a <http://ex/p> <http://ex/b> .",
		`<http://ex/a> <http://ex/p> "unterminated .`,
		"<http://ex/a> <http://ex/p> <http://ex/b> junk",
	}
	for _, src := range bad {
		st := NewStore()
		if _, err := st.ReadNTriples(strings.NewReader(src)); err == nil {
			t.Errorf("ReadNTriples(%q) succeeded, want error", src)
		}
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	st := NewStore()
	st.Add("http://ex/s", "http://ex/p", "http://ex/o")
	st.Add("http://ex/s", "http://ex/name", "plain text")
	st.Add("_:b0", "http://ex/p", "with \"quotes\"")
	var buf bytes.Buffer
	if err := st.WriteNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := NewStore()
	n, err := st2.ReadNTriples(&buf)
	if err != nil {
		t.Fatalf("%v\noutput was:\n%s", err, buf.String())
	}
	if n != 3 || st2.Len() != 3 {
		t.Fatalf("round trip = %d triples, want 3", st2.Len())
	}
}
