package rdf

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadNTriples(t *testing.T) {
	src := `
# a comment
<http://ex/a> <http://ex/p> <http://ex/b> .
<http://ex/a> <http://ex/name> "Alice" .
<http://ex/a> <http://ex/label> "tag"@en .
<http://ex/a> <http://ex/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b1 <http://ex/p> "esc\"aped\nline" .
`
	st := NewStore()
	n, err := st.ReadNTriples(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || st.Len() != 5 {
		t.Fatalf("loaded %d/%d, want 5", n, st.Len())
	}
	sn := st.Freeze()
	a, _ := sn.Lookup("http://ex/a")
	name, _ := sn.Lookup("http://ex/name")
	alice, ok := sn.Lookup("Alice")
	if !ok || !sn.Has(a, name, alice) {
		t.Error("literal triple missing")
	}
	if _, ok := sn.Lookup("tag"); !ok {
		t.Error("language-tagged literal should store its lexical form")
	}
	if _, ok := sn.Lookup("esc\"aped\nline"); !ok {
		t.Error("escapes should decode")
	}
}

// Regression: the statement terminator must not leak into a blank-node
// label when no whitespace separates them (`_:c.` at end of line).
func TestReadNTriplesBlankNodeDot(t *testing.T) {
	for _, src := range []string{
		"<http://ex/a> <http://ex/b> _:c.",
		"<http://ex/a> <http://ex/b> _:c.  ",
		"<http://ex/a> <http://ex/b> _:c .",
	} {
		st := NewStore()
		if _, err := st.ReadNTriples(strings.NewReader(src)); err != nil {
			t.Fatalf("ReadNTriples(%q): %v", src, err)
		}
		if _, ok := st.Lookup("_:c"); !ok {
			t.Errorf("ReadNTriples(%q): label _:c missing", src)
		}
		if _, ok := st.Lookup("_:c."); ok {
			t.Errorf("ReadNTriples(%q): terminator leaked into label", src)
		}
	}
	// Dots inside a label stay in the label.
	st := NewStore()
	if _, err := st.ReadNTriples(strings.NewReader("_:a.b <http://ex/p> <http://ex/o> .\n")); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Lookup("_:a.b"); !ok {
		t.Error("interior dot must stay in the label")
	}
}

// Regression: \uXXXX and \UXXXXXXXX escapes must decode to their code
// points instead of dropping the backslash.
func TestReadNTriplesUnicodeEscapes(t *testing.T) {
	src := `<http://ex/a> <http://ex/p> "ABC \U0001F600 é" .`
	st := NewStore()
	if _, err := st.ReadNTriples(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Lookup("ABC \U0001F600 é"); !ok {
		t.Error("UCHAR escapes did not decode")
	}
	for _, bad := range []string{
		`<a> <b> "\u00G1" .`,
		`<a> <b> "\u12" .`,
		`<a> <b> "\U00110000" .`,
		`<a> <b> "\uD800" .`, // isolated surrogate half
	} {
		st := NewStore()
		if _, err := st.ReadNTriples(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadNTriples(%q) succeeded, want error", bad)
		}
	}
}

func TestReadNTriplesErrors(t *testing.T) {
	bad := []string{
		"<http://ex/a> <http://ex/p>",
		"<http://ex/a <http://ex/p> <http://ex/b> .",
		`<http://ex/a> <http://ex/p> "unterminated .`,
		"<http://ex/a> <http://ex/p> <http://ex/b> junk",
	}
	for _, src := range bad {
		st := NewStore()
		if _, err := st.ReadNTriples(strings.NewReader(src)); err == nil {
			t.Errorf("ReadNTriples(%q) succeeded, want error", src)
		}
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	st := NewStore()
	st.Add("http://ex/s", "http://ex/p", "http://ex/o")
	st.Add("http://ex/s", "http://ex/name", "plain text")
	st.Add("_:b0", "http://ex/p", "with \"quotes\"")
	st.Add("http://ex/s", "http://ex/note", "tab\there\r\nand newline")
	var buf bytes.Buffer
	if err := st.WriteNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	st2 := NewStore()
	n, err := st2.ReadNTriples(&buf)
	if err != nil {
		t.Fatalf("%v\noutput was:\n%s", err, buf.String())
	}
	if n != 4 || st2.Len() != 4 {
		t.Fatalf("round trip = %d triples, want 4", st2.Len())
	}
	if _, ok := st2.Lookup("tab\there\r\nand newline"); !ok {
		t.Error("\\r and \\t must survive the round trip")
	}
	if !sameTriples(st, st2) {
		t.Error("round trip changed the triple set")
	}
}

// sameTriples reports whether two stores hold the same triple set, term
// text by term text.
func sameTriples(a, b *Store) bool {
	if a.Len() != b.Len() {
		return false
	}
	set := make(map[[3]string]bool, a.Len())
	for _, t := range a.Triples() {
		set[[3]string{a.TermOf(t.S), a.TermOf(t.P), a.TermOf(t.O)}] = true
	}
	for _, t := range b.Triples() {
		if !set[[3]string{b.TermOf(t.S), b.TermOf(t.P), b.TermOf(t.O)}] {
			return false
		}
	}
	return true
}
