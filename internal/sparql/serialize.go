package sparql

import (
	"strconv"
	"strings"
)

// String renders the query back to SPARQL concrete syntax. The output
// round-trips through Parse to a structurally identical AST (modulo
// whitespace), which the serializer tests verify; this property lets the
// synthetic log generator feed generated queries through the exact same
// lex/parse pipeline the analyzer uses for real logs.
func (q *Query) String() string {
	var sb strings.Builder
	writeQuery(&sb, q)
	return sb.String()
}

func writeQuery(sb *strings.Builder, q *Query) {
	if q.Prologue.Base != "" {
		sb.WriteString("BASE <")
		sb.WriteString(q.Prologue.Base)
		sb.WriteString("> ")
	}
	for _, pd := range q.Prologue.Prefixes {
		sb.WriteString("PREFIX ")
		sb.WriteString(pd.Name)
		sb.WriteString(": <")
		sb.WriteString(pd.IRI)
		sb.WriteString("> ")
	}
	switch q.Type {
	case SelectQuery:
		writeSelectCore(sb, q)
	case AskQuery:
		sb.WriteString("ASK")
		writeDatasets(sb, q)
		sb.WriteByte(' ')
		writePattern(sb, q.Where)
	case ConstructQuery:
		sb.WriteString("CONSTRUCT")
		if q.ConstructWhere {
			writeDatasets(sb, q)
			sb.WriteString(" WHERE ")
			writePattern(sb, q.Where)
		} else {
			sb.WriteString(" { ")
			for i, t := range q.Template {
				if i > 0 {
					sb.WriteString(" . ")
				}
				writeTriple(sb, t)
			}
			sb.WriteString(" }")
			writeDatasets(sb, q)
			sb.WriteString(" WHERE ")
			writePattern(sb, q.Where)
		}
	case DescribeQuery:
		sb.WriteString("DESCRIBE")
		if q.DescribeStar {
			sb.WriteString(" *")
		}
		for _, t := range q.DescribeTerms {
			sb.WriteByte(' ')
			writeTerm(sb, t)
		}
		writeDatasets(sb, q)
		if q.Where != nil {
			sb.WriteString(" WHERE ")
			writePattern(sb, q.Where)
		}
	}
	writeModifiers(sb, &q.Mods)
	if q.TrailingValues != nil {
		sb.WriteByte(' ')
		writeValues(sb, q.TrailingValues)
	}
}

func writeSelectCore(sb *strings.Builder, q *Query) {
	sb.WriteString("SELECT")
	if q.Distinct {
		sb.WriteString(" DISTINCT")
	}
	if q.Reduced {
		sb.WriteString(" REDUCED")
	}
	if q.SelectStar {
		sb.WriteString(" *")
	}
	for _, it := range q.Select {
		sb.WriteByte(' ')
		if it.Expr != nil {
			sb.WriteByte('(')
			writeExpr(sb, it.Expr)
			sb.WriteString(" AS ?")
			sb.WriteString(it.Var.Value)
			sb.WriteByte(')')
		} else {
			sb.WriteByte('?')
			sb.WriteString(it.Var.Value)
		}
	}
	writeDatasets(sb, q)
	sb.WriteString(" WHERE ")
	writePattern(sb, q.Where)
}

func writeDatasets(sb *strings.Builder, q *Query) {
	for _, d := range q.Datasets {
		sb.WriteString(" FROM ")
		if d.Named {
			sb.WriteString("NAMED ")
		}
		writeTerm(sb, d.IRI)
	}
}

func writeModifiers(sb *strings.Builder, m *Modifiers) {
	if len(m.GroupBy) > 0 {
		sb.WriteString(" GROUP BY")
		for _, gk := range m.GroupBy {
			sb.WriteByte(' ')
			if gk.AsVar {
				sb.WriteByte('(')
				writeExpr(sb, gk.Expr)
				sb.WriteString(" AS ?")
				sb.WriteString(gk.Var.Value)
				sb.WriteByte(')')
			} else if te, ok := gk.Expr.(*TermExpr); ok && te.Term.Kind == TermVar {
				sb.WriteByte('?')
				sb.WriteString(te.Term.Value)
			} else {
				sb.WriteByte('(')
				writeExpr(sb, gk.Expr)
				sb.WriteByte(')')
			}
		}
	}
	if len(m.Having) > 0 {
		sb.WriteString(" HAVING")
		for _, h := range m.Having {
			sb.WriteString(" (")
			writeExpr(sb, h)
			sb.WriteByte(')')
		}
	}
	if len(m.OrderBy) > 0 {
		sb.WriteString(" ORDER BY")
		for _, ok := range m.OrderBy {
			sb.WriteByte(' ')
			if ok.Explicit {
				if ok.Desc {
					sb.WriteString("DESC(")
				} else {
					sb.WriteString("ASC(")
				}
				writeExpr(sb, ok.Expr)
				sb.WriteByte(')')
			} else if te, isTerm := ok.Expr.(*TermExpr); isTerm && te.Term.Kind == TermVar {
				sb.WriteByte('?')
				sb.WriteString(te.Term.Value)
			} else {
				sb.WriteByte('(')
				writeExpr(sb, ok.Expr)
				sb.WriteByte(')')
			}
		}
	}
	if m.HasLimit {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.FormatInt(m.Limit, 10))
	}
	if m.HasOffset {
		sb.WriteString(" OFFSET ")
		sb.WriteString(strconv.FormatInt(m.Offset, 10))
	}
}

func writePattern(sb *strings.Builder, p Pattern) {
	switch n := p.(type) {
	case nil:
		sb.WriteString("{ }")
	case *Group:
		sb.WriteString("{ ")
		for i, el := range n.Elems {
			if i > 0 {
				sb.WriteString(" . ")
			}
			writeGroupElement(sb, el)
		}
		sb.WriteString(" }")
	default:
		// A non-group at top level is wrapped for valid syntax.
		sb.WriteString("{ ")
		writeGroupElement(sb, p)
		sb.WriteString(" }")
	}
}

// PatternString serializes a single graph pattern the way it appears
// inside a group. Equal patterns serialize equally (the serializer is
// deterministic), so the string doubles as a structural comparison key.
func PatternString(p Pattern) string {
	if p == nil {
		return ""
	}
	var sb strings.Builder
	writeGroupElement(&sb, p)
	return sb.String()
}

func writeGroupElement(sb *strings.Builder, p Pattern) {
	switch n := p.(type) {
	case *TriplePattern:
		writeTriple(sb, n)
	case *PathPattern:
		writeTerm(sb, n.S)
		sb.WriteByte(' ')
		sb.WriteString(PathString(n.Path))
		sb.WriteByte(' ')
		writeTerm(sb, n.O)
	case *Group:
		writePattern(sb, n)
	case *Union:
		writeUnionOperand(sb, n.Left)
		sb.WriteString(" UNION ")
		writeUnionOperand(sb, n.Right)
	case *Optional:
		sb.WriteString("OPTIONAL ")
		writePattern(sb, n.Inner)
	case *GraphGraph:
		sb.WriteString("GRAPH ")
		writeTerm(sb, n.Name)
		sb.WriteByte(' ')
		writePattern(sb, n.Inner)
	case *MinusGraph:
		sb.WriteString("MINUS ")
		writePattern(sb, n.Inner)
	case *ServiceGraph:
		sb.WriteString("SERVICE ")
		if n.Silent {
			sb.WriteString("SILENT ")
		}
		writeTerm(sb, n.Name)
		sb.WriteByte(' ')
		writePattern(sb, n.Inner)
	case *Filter:
		sb.WriteString("FILTER (")
		writeExpr(sb, n.Constraint)
		sb.WriteByte(')')
	case *Bind:
		sb.WriteString("BIND (")
		writeExpr(sb, n.Expr)
		sb.WriteString(" AS ?")
		sb.WriteString(n.Var.Value)
		sb.WriteByte(')')
	case *InlineData:
		writeValues(sb, n)
	case *SubSelect:
		sb.WriteString("{ ")
		writeQuery(sb, n.Query)
		sb.WriteString(" }")
	}
}

// writeUnionOperand always braces union operands, as required by the
// grammar (UNION joins GroupGraphPatterns).
func writeUnionOperand(sb *strings.Builder, p Pattern) {
	switch p.(type) {
	case *Group, *Union:
		writeGroupElement(sb, p)
	default:
		sb.WriteString("{ ")
		writeGroupElement(sb, p)
		sb.WriteString(" }")
	}
}

func writeValues(sb *strings.Builder, vd *InlineData) {
	sb.WriteString("VALUES ")
	if len(vd.Vars) == 1 {
		sb.WriteByte('?')
		sb.WriteString(vd.Vars[0].Value)
	} else {
		sb.WriteByte('(')
		for i, v := range vd.Vars {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteByte('?')
			sb.WriteString(v.Value)
		}
		sb.WriteByte(')')
	}
	sb.WriteString(" { ")
	for ri, row := range vd.Rows {
		if ri > 0 {
			sb.WriteByte(' ')
		}
		if len(vd.Vars) == 1 {
			writeDataValue(sb, row, vd.Undef[ri], 0)
		} else {
			sb.WriteByte('(')
			for ci := range row {
				if ci > 0 {
					sb.WriteByte(' ')
				}
				writeDataValue(sb, row, vd.Undef[ri], ci)
			}
			sb.WriteByte(')')
		}
	}
	sb.WriteString(" }")
}

func writeDataValue(sb *strings.Builder, row []Term, undef []bool, i int) {
	if i < len(undef) && undef[i] {
		sb.WriteString("UNDEF")
		return
	}
	writeTerm(sb, row[i])
}

func writeTriple(sb *strings.Builder, t *TriplePattern) {
	writeTerm(sb, t.S)
	sb.WriteByte(' ')
	if t.P.Kind == TermIRI && t.P.Value == RDFType {
		sb.WriteByte('a')
	} else {
		writeTerm(sb, t.P)
	}
	sb.WriteByte(' ')
	writeTerm(sb, t.O)
}

func writeTerm(sb *strings.Builder, t Term) {
	switch t.Kind {
	case TermVar:
		sb.WriteByte('?')
		sb.WriteString(t.Value)
	case TermIRI:
		if t.PrefixedForm {
			sb.WriteString(t.Value)
		} else {
			sb.WriteByte('<')
			sb.WriteString(t.Value)
			sb.WriteByte('>')
		}
	case TermBlank:
		sb.WriteString("_:")
		sb.WriteString(t.Value)
	case TermLiteral:
		writeLiteral(sb, t)
	}
}

func writeLiteral(sb *strings.Builder, t Term) {
	switch t.Datatype {
	case "http://www.w3.org/2001/XMLSchema#integer",
		"http://www.w3.org/2001/XMLSchema#decimal",
		"http://www.w3.org/2001/XMLSchema#double",
		"http://www.w3.org/2001/XMLSchema#boolean":
		// Numeric and boolean literals can be written bare.
		sb.WriteString(t.Value)
		return
	}
	sb.WriteByte('"')
	for i := 0; i < len(t.Value); i++ {
		c := t.Value[i]
		switch c {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	if t.Lang != "" {
		sb.WriteByte('@')
		sb.WriteString(t.Lang)
	} else if t.Datatype != "" {
		sb.WriteString("^^<")
		sb.WriteString(t.Datatype)
		sb.WriteByte('>')
	}
}

// ExprString renders an expression in SPARQL syntax.
func ExprString(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e)
	return sb.String()
}

func writeExpr(sb *strings.Builder, e Expr) {
	switch n := e.(type) {
	case *BinaryExpr:
		writeExprOperand(sb, n.L)
		sb.WriteByte(' ')
		sb.WriteString(n.Op)
		sb.WriteByte(' ')
		writeExprOperand(sb, n.R)
	case *UnaryExpr:
		sb.WriteString(n.Op)
		writeExprOperand(sb, n.X)
	case *FuncCall:
		if n.IRICall {
			writeIRIText(sb, n.Name)
		} else {
			sb.WriteString(n.Name)
		}
		sb.WriteByte('(')
		if n.Distinct {
			sb.WriteString("DISTINCT ")
		}
		for i, a := range n.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a)
		}
		sb.WriteByte(')')
	case *AggregateExpr:
		sb.WriteString(n.Name)
		sb.WriteByte('(')
		if n.Distinct {
			sb.WriteString("DISTINCT ")
		}
		if n.Star {
			sb.WriteByte('*')
		} else {
			writeExpr(sb, n.Arg)
		}
		if n.HasSep {
			sb.WriteString(" ; SEPARATOR = \"")
			sb.WriteString(n.Separator)
			sb.WriteByte('"')
		}
		sb.WriteByte(')')
	case *ExistsExpr:
		if n.Not {
			sb.WriteString("NOT ")
		}
		sb.WriteString("EXISTS ")
		writePattern(sb, n.Pattern)
	case *TermExpr:
		writeTerm(sb, n.Term)
	case *InExpr:
		writeExprOperand(sb, n.X)
		if n.Not {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" IN (")
		for i, a := range n.List {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a)
		}
		sb.WriteByte(')')
	}
}

// writeExprOperand parenthesizes compound operands so the rendered text
// preserves the tree structure regardless of operator precedence.
func writeExprOperand(sb *strings.Builder, e Expr) {
	switch e.(type) {
	case *BinaryExpr, *InExpr:
		sb.WriteByte('(')
		writeExpr(sb, e)
		sb.WriteByte(')')
	default:
		writeExpr(sb, e)
	}
}
