package sparql

// QueryType is one of the four SPARQL query forms.
type QueryType int

// The four SPARQL query forms.
const (
	SelectQuery QueryType = iota
	AskQuery
	ConstructQuery
	DescribeQuery
)

// String returns the SPARQL keyword for the query type.
func (t QueryType) String() string {
	switch t {
	case SelectQuery:
		return "SELECT"
	case AskQuery:
		return "ASK"
	case ConstructQuery:
		return "CONSTRUCT"
	case DescribeQuery:
		return "DESCRIBE"
	}
	return "UNKNOWN"
}

// TermKind classifies RDF terms and variables appearing in patterns.
type TermKind int

// Term kinds. The paper's analysis does not distinguish IRIs, blank nodes,
// and literals (all are "constants"), but the parser preserves the kind for
// serialization fidelity and for the projection test.
const (
	TermIRI TermKind = iota
	TermVar
	TermLiteral
	TermBlank
)

// Term is an RDF term or variable in a triple pattern or expression.
type Term struct {
	Kind TermKind
	// Value is the IRI (absolute or prefixed form, as written), variable
	// name (without ? or $), literal lexical form, or blank node label.
	Value string
	// Lang is the language tag of a literal, without '@'.
	Lang string
	// Datatype is the datatype IRI of a typed literal.
	Datatype string
	// PrefixedForm records whether an IRI was written as a prefixed name.
	PrefixedForm bool
}

// RDFType is the IRI the keyword 'a' abbreviates. The parser expands 'a'
// to this IRI; the serializer contracts it back.
const RDFType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Kind == TermVar }

// IsConstant reports whether the term is an IRI, literal, or blank node.
// Following the paper (Section 5), blank nodes in query patterns behave as
// variables for structural purposes; IsConstant is the syntactic notion.
func (t Term) IsConstant() bool { return t.Kind != TermVar }

// IsNodeVar reports whether the term behaves as a variable node in the
// canonical (hyper)graph: variables and blank nodes both do.
func (t Term) IsNodeVar() bool { return t.Kind == TermVar || t.Kind == TermBlank }

// Variable constructs a variable term.
func Variable(name string) Term { return Term{Kind: TermVar, Value: name} }

// IRI constructs an IRI term.
func IRI(value string) Term { return Term{Kind: TermIRI, Value: value} }

// Literal constructs a plain literal term.
func Literal(value string) Term { return Term{Kind: TermLiteral, Value: value} }

// Pattern is a node of the SPARQL graph-pattern algebra. Implementations:
// *TriplePattern, *PathPattern, *Group, *Union, *Optional, *GraphGraph,
// *MinusGraph, *ServiceGraph, *Filter, *Bind, *InlineData, *SubSelect.
type Pattern interface {
	pattern()
}

// TriplePattern is a single subject-predicate-object pattern.
type TriplePattern struct {
	S, P, O Term
}

// PathPattern is a property-path pattern: subject, path expression, object.
type PathPattern struct {
	S    Term
	Path PathExpr
	O    Term
}

// Group is a group graph pattern: a sequence of elements joined by And,
// in source order. FILTERs, BINDs, OPTIONALs etc. appear as elements at
// the position they occurred, matching SPARQL's group-level scoping.
type Group struct {
	Elems []Pattern
}

// Union is P1 UNION P2.
type Union struct {
	Left, Right Pattern
}

// Optional wraps an OPTIONAL block; its left operand is the conjunction of
// the group elements preceding it, per the SPARQL algebra translation.
type Optional struct {
	Inner Pattern
}

// GraphGraph is GRAPH <iri-or-var> { ... }.
type GraphGraph struct {
	Name  Term
	Inner Pattern
}

// MinusGraph is MINUS { ... }.
type MinusGraph struct {
	Inner Pattern
}

// ServiceGraph is SERVICE [SILENT] <iri-or-var> { ... }.
type ServiceGraph struct {
	Silent bool
	Name   Term
	Inner  Pattern
}

// Filter is FILTER constraint.
type Filter struct {
	Constraint Expr
}

// Bind is BIND(expr AS ?var).
type Bind struct {
	Expr Expr
	Var  Term
}

// InlineData is a VALUES block.
type InlineData struct {
	Vars []Term
	// Rows holds one row per binding; UNDEF entries have Kind TermVar with
	// empty Value and Undef set in the parallel mask.
	Rows  [][]Term
	Undef [][]bool
}

// SubSelect is a subquery appearing inside a group graph pattern.
type SubSelect struct {
	Query *Query
}

func (*TriplePattern) pattern() {}
func (*PathPattern) pattern()   {}
func (*Group) pattern()         {}
func (*Union) pattern()         {}
func (*Optional) pattern()      {}
func (*GraphGraph) pattern()    {}
func (*MinusGraph) pattern()    {}
func (*ServiceGraph) pattern()  {}
func (*Filter) pattern()        {}
func (*Bind) pattern()          {}
func (*InlineData) pattern()    {}
func (*SubSelect) pattern()     {}

// Expr is a SPARQL expression node. Implementations: *BinaryExpr,
// *UnaryExpr, *FuncCall, *ExistsExpr, *TermExpr, *InExpr, *AggregateExpr.
type Expr interface {
	expr()
}

// BinaryExpr applies an infix operator: || && = != < > <= >= + - * /.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies a prefix operator: ! - +.
type UnaryExpr struct {
	Op string
	X  Expr
}

// FuncCall is a builtin call (BOUND, LANG, REGEX, ...) or a custom function
// called by IRI.
type FuncCall struct {
	// Name is the uppercased builtin keyword, or the IRI for custom calls.
	Name     string
	IRICall  bool
	Args     []Expr
	Distinct bool // e.g. COUNT(DISTINCT ...) parsed as FuncCall only for non-aggregates
}

// AggregateExpr is one of COUNT, SUM, MIN, MAX, AVG, SAMPLE, GROUP_CONCAT.
type AggregateExpr struct {
	Name      string // uppercased
	Distinct  bool
	Star      bool // COUNT(*)
	Arg       Expr
	Separator string // GROUP_CONCAT ; SEPARATOR = "..."
	HasSep    bool
}

// ExistsExpr is EXISTS { ... } or NOT EXISTS { ... }.
type ExistsExpr struct {
	Not     bool
	Pattern Pattern
}

// TermExpr wraps a term used as an expression atom.
type TermExpr struct {
	Term Term
}

// InExpr is expr [NOT] IN (e1, ..., ek).
type InExpr struct {
	X    Expr
	Not  bool
	List []Expr
}

func (*BinaryExpr) expr()    {}
func (*UnaryExpr) expr()     {}
func (*FuncCall) expr()      {}
func (*AggregateExpr) expr() {}
func (*ExistsExpr) expr()    {}
func (*TermExpr) expr()      {}
func (*InExpr) expr()        {}

// SelectItem is one projection element: a variable, or (expr AS ?var).
type SelectItem struct {
	Var  Term
	Expr Expr // nil for plain variables
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Desc     bool
	Explicit bool // ASC/DESC written explicitly
	Expr     Expr
}

// GroupKey is one GROUP BY key: an expression, optionally bound AS ?var.
type GroupKey struct {
	Expr  Expr
	Var   Term
	AsVar bool
}

// Modifiers aggregates the solution modifiers of a query.
type Modifiers struct {
	GroupBy   []GroupKey
	Having    []Expr
	OrderBy   []OrderKey
	Limit     int64
	HasLimit  bool
	Offset    int64
	HasOffset bool
}

// DatasetClause is FROM <iri> or FROM NAMED <iri>.
type DatasetClause struct {
	Named bool
	IRI   Term
}

// Prologue holds BASE and PREFIX declarations.
type Prologue struct {
	Base     string
	Prefixes []PrefixDecl
}

// PrefixDecl is PREFIX ns: <iri>.
type PrefixDecl struct {
	Name string // without trailing ':'
	IRI  string
}

// Query is a complete SPARQL query.
type Query struct {
	Prologue Prologue
	Type     QueryType

	// SELECT-specific.
	Distinct   bool
	Reduced    bool
	SelectStar bool
	Select     []SelectItem

	// DESCRIBE-specific.
	DescribeStar  bool
	DescribeTerms []Term

	// CONSTRUCT-specific.
	Template []*TriplePattern
	// ConstructWhere marks the abbreviated CONSTRUCT WHERE { ... } form.
	ConstructWhere bool

	Datasets []DatasetClause

	// Where is the query body; nil for bodyless DESCRIBE queries.
	Where Pattern

	Mods Modifiers

	// TrailingValues is the optional VALUES block after the modifiers.
	TrailingValues *InlineData
}

// HasBody reports whether the query has a WHERE pattern. Roughly 4.5% of
// the paper's corpus (bodyless DESCRIBE queries) has none.
func (q *Query) HasBody() bool { return q.Where != nil }

// Walk calls fn for every pattern node reachable from p in depth-first
// pre-order, including subquery bodies and EXISTS patterns inside filters.
// fn returning false prunes descent below the node.
func Walk(p Pattern, fn func(Pattern) bool) {
	if p == nil || !fn(p) {
		return
	}
	switch n := p.(type) {
	case *Group:
		for _, e := range n.Elems {
			Walk(e, fn)
		}
	case *Union:
		Walk(n.Left, fn)
		Walk(n.Right, fn)
	case *Optional:
		Walk(n.Inner, fn)
	case *GraphGraph:
		Walk(n.Inner, fn)
	case *MinusGraph:
		Walk(n.Inner, fn)
	case *ServiceGraph:
		Walk(n.Inner, fn)
	case *Filter:
		WalkExprPatterns(n.Constraint, fn)
	case *Bind:
		WalkExprPatterns(n.Expr, fn)
	case *SubSelect:
		if n.Query != nil && n.Query.Where != nil {
			Walk(n.Query.Where, fn)
		}
	}
}

// WalkExprPatterns descends into patterns nested inside expressions
// (EXISTS / NOT EXISTS).
func WalkExprPatterns(e Expr, fn func(Pattern) bool) {
	WalkExpr(e, func(x Expr) bool {
		if ex, ok := x.(*ExistsExpr); ok {
			Walk(ex.Pattern, fn)
		}
		return true
	})
}

// WalkExpr calls fn for every expression node reachable from e in
// depth-first pre-order. fn returning false prunes descent.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch n := e.(type) {
	case *BinaryExpr:
		WalkExpr(n.L, fn)
		WalkExpr(n.R, fn)
	case *UnaryExpr:
		WalkExpr(n.X, fn)
	case *FuncCall:
		for _, a := range n.Args {
			WalkExpr(a, fn)
		}
	case *AggregateExpr:
		WalkExpr(n.Arg, fn)
	case *InExpr:
		WalkExpr(n.X, fn)
		for _, a := range n.List {
			WalkExpr(a, fn)
		}
	}
}

// Vars returns the set of variable names occurring in the pattern,
// including inside filters, binds, and nested structures. The result map
// is keyed by variable name without the leading question mark.
func Vars(p Pattern) map[string]bool {
	out := make(map[string]bool)
	collectVars(p, out)
	return out
}

func collectVars(p Pattern, out map[string]bool) {
	Walk(p, func(n Pattern) bool {
		switch t := n.(type) {
		case *TriplePattern:
			addVar(t.S, out)
			addVar(t.P, out)
			addVar(t.O, out)
		case *PathPattern:
			addVar(t.S, out)
			addVar(t.O, out)
		case *GraphGraph:
			addVar(t.Name, out)
		case *ServiceGraph:
			addVar(t.Name, out)
		case *Filter:
			collectExprVars(t.Constraint, out)
		case *Bind:
			collectExprVars(t.Expr, out)
			addVar(t.Var, out)
		case *InlineData:
			for _, v := range t.Vars {
				addVar(v, out)
			}
		case *SubSelect:
			// A subquery only exposes its projected variables.
			if t.Query != nil {
				for v := range t.Query.ProjectedVars() {
					out[v] = true
				}
			}
			return false
		}
		return true
	})
}

// ExprVars returns the set of variable names in an expression, including
// variables inside EXISTS patterns.
func ExprVars(e Expr) map[string]bool {
	out := make(map[string]bool)
	collectExprVars(e, out)
	return out
}

func collectExprVars(e Expr, out map[string]bool) {
	WalkExpr(e, func(x Expr) bool {
		switch t := x.(type) {
		case *TermExpr:
			addVar(t.Term, out)
		case *ExistsExpr:
			collectVars(t.Pattern, out)
		}
		return true
	})
}

func addVar(t Term, out map[string]bool) {
	if t.Kind == TermVar && t.Value != "" {
		out[t.Value] = true
	}
}

// ProjectedVars returns the set of variables the query returns: for
// SELECT *, all in-scope body variables; for explicit SELECT lists, the
// listed/aliased variables; for ASK, none.
func (q *Query) ProjectedVars() map[string]bool {
	out := make(map[string]bool)
	switch q.Type {
	case SelectQuery:
		if q.SelectStar {
			if q.Where != nil {
				return Vars(q.Where)
			}
			return out
		}
		for _, it := range q.Select {
			if it.Var.Kind == TermVar {
				out[it.Var.Value] = true
			}
		}
	case DescribeQuery:
		for _, t := range q.DescribeTerms {
			if t.Kind == TermVar {
				out[t.Value] = true
			}
		}
	}
	return out
}

// Triples returns every triple pattern in the query body (including those
// nested in OPTIONAL, UNION, GRAPH, subqueries and EXISTS), in source order.
// Property-path patterns are not included; see PathPatterns.
func (q *Query) Triples() []*TriplePattern {
	var out []*TriplePattern
	Walk(q.Where, func(p Pattern) bool {
		if t, ok := p.(*TriplePattern); ok {
			out = append(out, t)
		}
		return true
	})
	return out
}

// PathPatterns returns every property-path pattern in the query body.
func (q *Query) PathPatterns() []*PathPattern {
	var out []*PathPattern
	Walk(q.Where, func(p Pattern) bool {
		if t, ok := p.(*PathPattern); ok {
			out = append(out, t)
		}
		return true
	})
	return out
}
