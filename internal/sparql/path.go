package sparql

import "strings"

// PathExpr is a SPARQL 1.1 property-path expression: a regular expression
// over IRIs with inversion (^) and negated property sets (!).
// Implementations: *PathIRI, *PathInverse, *PathSeq, *PathAlt, *PathMod,
// *PathNeg.
type PathExpr interface {
	path()
}

// PathIRI is an atomic path: a single predicate IRI (or the keyword 'a').
type PathIRI struct {
	IRI string
}

// PathInverse is ^elt: follow an edge in reverse direction.
type PathInverse struct {
	X PathExpr
}

// PathSeq is p1 / p2 / ... / pk.
type PathSeq struct {
	Parts []PathExpr
}

// PathAlt is p1 | p2 | ... | pk.
type PathAlt struct {
	Parts []PathExpr
}

// PathMod applies a repetition modifier: '*', '+', or '?'.
type PathMod struct {
	X   PathExpr
	Mod byte
}

// PathNeg is a negated property set !(iri1 | ^iri2 | ...). Elements are
// *PathIRI or *PathInverse of *PathIRI.
type PathNeg struct {
	Set []PathExpr
}

func (*PathIRI) path()     {}
func (*PathInverse) path() {}
func (*PathSeq) path()     {}
func (*PathAlt) path()     {}
func (*PathMod) path()     {}
func (*PathNeg) path()     {}

// PathString renders a path expression in SPARQL syntax with minimal
// parenthesization.
func PathString(p PathExpr) string {
	var sb strings.Builder
	writePath(&sb, p, 0)
	return sb.String()
}

// Precedence levels: alt(1) < seq(2) < inverse/mod(3) < atom(4).
func pathPrec(p PathExpr) int {
	switch p.(type) {
	case *PathAlt:
		return 1
	case *PathSeq:
		return 2
	case *PathInverse, *PathMod:
		return 3
	default:
		return 4
	}
}

func writePath(sb *strings.Builder, p PathExpr, parent int) {
	prec := pathPrec(p)
	paren := prec < parent
	if paren {
		sb.WriteByte('(')
	}
	switch n := p.(type) {
	case *PathIRI:
		writeIRIText(sb, n.IRI)
	case *PathInverse:
		sb.WriteByte('^')
		writePath(sb, n.X, 4)
	case *PathSeq:
		for i, part := range n.Parts {
			if i > 0 {
				sb.WriteByte('/')
			}
			writePath(sb, part, 3)
		}
	case *PathAlt:
		for i, part := range n.Parts {
			if i > 0 {
				sb.WriteByte('|')
			}
			writePath(sb, part, 2)
		}
	case *PathMod:
		writePath(sb, n.X, 4)
		sb.WriteByte(n.Mod)
	case *PathNeg:
		sb.WriteByte('!')
		if len(n.Set) == 1 {
			writePath(sb, n.Set[0], 4)
		} else {
			sb.WriteByte('(')
			for i, part := range n.Set {
				if i > 0 {
					sb.WriteByte('|')
				}
				writePath(sb, part, 2)
			}
			sb.WriteByte(')')
		}
	}
	if paren {
		sb.WriteByte(')')
	}
}

func writeIRIText(sb *strings.Builder, iri string) {
	if iri == RDFType {
		sb.WriteString("a")
		return
	}
	if strings.Contains(iri, "://") || strings.HasPrefix(iri, "urn:") || strings.HasPrefix(iri, "mailto:") {
		sb.WriteByte('<')
		sb.WriteString(iri)
		sb.WriteByte('>')
		return
	}
	if strings.Contains(iri, ":") {
		sb.WriteString(iri) // prefixed form, as written
		return
	}
	sb.WriteByte('<')
	sb.WriteString(iri)
	sb.WriteByte('>')
}

// IsTrivialPath reports whether the path is one of the two forms the paper
// excludes from the navigational analysis: !a ("follow an edge not labeled
// a") and ^a ("follow an a-edge in reverse"). Plain IRIs never reach the
// path classifier because the parser folds them into triple patterns.
func IsTrivialPath(p PathExpr) bool {
	switch n := p.(type) {
	case *PathNeg:
		if len(n.Set) != 1 {
			return false
		}
		_, ok := n.Set[0].(*PathIRI)
		return ok
	case *PathInverse:
		_, ok := n.X.(*PathIRI)
		return ok
	}
	return false
}
