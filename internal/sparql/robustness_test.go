package sparql

import (
	"math/rand"
	"testing"
)

// TestParserRobustnessUnderMutation is a lightweight fuzz: random byte
// edits of valid queries must never panic the lexer or parser — they
// either parse or return a SyntaxError.
func TestParserRobustnessUnderMutation(t *testing.T) {
	seeds := []string{
		"SELECT * WHERE { ?s ?p ?o }",
		"PREFIX ex: <http://ex/> SELECT DISTINCT ?s WHERE { ?s ex:p ?o FILTER(?o > 3) } LIMIT 5",
		`ASK { ?x <a>/<b>* ?y . ?y <c> "lit"@en }`,
		"CONSTRUCT { ?s <p> ?o } WHERE { { ?s <a> ?o } UNION { ?s <b> ?o } }",
		"SELECT (COUNT(*) AS ?n) WHERE { GRAPH ?g { ?s ?p ?o } } GROUP BY ?g HAVING (COUNT(*) > 1)",
		"SELECT ?x WHERE { ?x <p> [ <q> ( 1 2 3 ) ] OPTIONAL { ?x <r> _:b } }",
	}
	rng := rand.New(rand.NewSource(99))
	bytesPool := []byte("{}()<>?$.;,\"'\\|^*+/!=&# \nSELECTWHEREFILTER0123456789abc:")
	p := &Parser{}
	for trial := 0; trial < 4000; trial++ {
		src := []byte(seeds[rng.Intn(len(seeds))])
		edits := 1 + rng.Intn(4)
		for e := 0; e < edits; e++ {
			switch rng.Intn(3) {
			case 0: // replace
				if len(src) > 0 {
					src[rng.Intn(len(src))] = bytesPool[rng.Intn(len(bytesPool))]
				}
			case 1: // delete
				if len(src) > 1 {
					i := rng.Intn(len(src))
					src = append(src[:i], src[i+1:]...)
				}
			default: // insert
				i := rng.Intn(len(src) + 1)
				src = append(src[:i], append([]byte{bytesPool[rng.Intn(len(bytesPool))]}, src[i:]...)...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", src, r)
				}
			}()
			q, err := p.Parse(string(src))
			// If it parsed, it must also serialize and re-parse.
			if err == nil {
				text := q.String()
				if _, err2 := p.Parse(text); err2 != nil {
					t.Fatalf("reparse of mutated-but-valid query failed:\noriginal: %s\nserialized: %s\nerror: %v",
						src, text, err2)
				}
			}
		}()
	}
}
