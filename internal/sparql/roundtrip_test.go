package sparql_test

import (
	"testing"

	"sparqlog/internal/loggen"
	"sparqlog/internal/sparql"
)

// TestGeneratedCorpusRoundTrips is the strongest parser/serializer
// property we have: every valid query emitted by the synthetic generator
// (which builds ASTs and serializes them) must re-parse, and the result
// must serialize to the identical text (serialization is a fixpoint).
func TestGeneratedCorpusRoundTrips(t *testing.T) {
	p := &sparql.Parser{}
	for _, prof := range loggen.Profiles() {
		ds := loggen.Generate(prof, 300, 1234)
		var checked int
		for _, e := range ds.Entries {
			q, err := p.Parse(e)
			if err != nil {
				continue // invalid/noise entries by design
			}
			text := q.String()
			q2, err := p.Parse(text)
			if err != nil {
				t.Fatalf("%s: serialized form does not re-parse: %v\noriginal: %s\nserialized: %s",
					prof.Name, err, e, text)
			}
			if text2 := q2.String(); text2 != text {
				t.Fatalf("%s: serialization is not a fixpoint:\n 1: %s\n 2: %s", prof.Name, text, text2)
			}
			checked++
		}
		if checked < 100 {
			t.Errorf("%s: only %d round-trip checks; generator too noisy?", prof.Name, checked)
		}
	}
}

// TestRoundTripPreservesAnalysis verifies that re-parsing the serialized
// form preserves the analysis-relevant structure: triple count, path
// count, and query type.
func TestRoundTripPreservesAnalysis(t *testing.T) {
	p := &sparql.Parser{}
	ds := loggen.Generate(loggen.Profiles()[0], 500, 77)
	for _, e := range ds.Entries {
		q1, err := p.Parse(e)
		if err != nil {
			continue
		}
		q2, err := p.Parse(q1.String())
		if err != nil {
			t.Fatal(err)
		}
		if q1.Type != q2.Type {
			t.Fatalf("type changed: %v -> %v", q1.Type, q2.Type)
		}
		if len(q1.Triples()) != len(q2.Triples()) {
			t.Fatalf("triple count changed: %d -> %d in %s", len(q1.Triples()), len(q2.Triples()), e)
		}
		if len(q1.PathPatterns()) != len(q2.PathPatterns()) {
			t.Fatalf("path count changed in %s", e)
		}
	}
}
