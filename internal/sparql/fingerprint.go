package sparql

import (
	"strconv"
	"strings"
)

// QueryString returns the canonical text form of the whole query —
// PatternString extended to a full serialization covering the query
// form, DISTINCT/REDUCED, VALUES, aggregates, and every solution
// modifier (GROUP BY/HAVING/ORDER BY/LIMIT/OFFSET). Variables are
// renamed to ?v0, ?v1, ... in first-occurrence order and prefixed
// names are expanded against the prologue, so two queries that differ
// only in whitespace, prefix declarations, or variable names serialize
// identically. The output re-parses to itself (a fixpoint, fuzz-tested
// by FuzzQueryString), which makes it usable both as a structural
// dedup key and as the result-cache fingerprint: the full query
// including modifiers determines the answer, so nothing less may key a
// cache.
func QueryString(q *Query) string {
	fp := &fingerprinter{
		prefixes: make(map[string]string, len(q.Prologue.Prefixes)),
		names:    make(map[string]string),
	}
	for _, p := range q.Prologue.Prefixes {
		fp.prefixes[p.Name] = p.IRI
	}
	clone := fp.rewriteQuery(q)
	// Drop the prologue: prefixes were expanded away.
	clone.Prologue = Prologue{}
	return clone.String()
}

// Fingerprint is the canonical query text used for structural
// deduplication — a refinement over the paper's exact-text dedup that
// its Section 2 implicitly uses (the USEWOD anonymisation already
// normalized whitespace). It is QueryString by construction: the
// analytics dedup key and the result-cache key are the same canonical
// form.
func Fingerprint(q *Query) string { return QueryString(q) }

// CanonPatternStrings canonicalizes several patterns under one shared
// renaming context (prefixes expanded against prologue, variables
// renamed in first-occurrence order across all patterns in argument
// order) and returns their PatternString forms. Sharing the context
// keeps the comparison sound: UNION branches over the same variables
// canonicalize equal, while branches over different variables — which
// bind different solutions — stay distinct.
func CanonPatternStrings(prologue Prologue, patterns ...Pattern) []string {
	fp := &fingerprinter{
		prefixes: make(map[string]string, len(prologue.Prefixes)),
		names:    make(map[string]string),
	}
	for _, p := range prologue.Prefixes {
		fp.prefixes[p.Name] = p.IRI
	}
	out := make([]string, len(patterns))
	for i, p := range patterns {
		out[i] = PatternString(fp.pattern(p))
	}
	return out
}

type fingerprinter struct {
	prefixes map[string]string
	names    map[string]string
	next     int
}

func (fp *fingerprinter) renameVar(name string) string {
	if nn, ok := fp.names[name]; ok {
		return nn
	}
	nn := "v" + strconv.Itoa(fp.next)
	fp.next++
	fp.names[name] = nn
	return nn
}

func (fp *fingerprinter) term(t Term) Term {
	switch t.Kind {
	case TermVar:
		t.Value = fp.renameVar(t.Value)
	case TermBlank:
		// Blank nodes are scoped like variables; canonicalize them in
		// the same namespace so labels do not matter.
		t.Value = fp.renameVar("_:" + t.Value)
	case TermIRI:
		if t.PrefixedForm {
			if i := strings.IndexByte(t.Value, ':'); i >= 0 {
				if base, ok := fp.prefixes[t.Value[:i]]; ok {
					t.Value = base + t.Value[i+1:]
				}
			}
		}
		// Canonical rendering: always the bracketed full form. The
		// parser's predicate-path collapse marks bracketed predicates
		// PrefixedForm (they render bare), so without this reset the
		// same IRI would serialize differently by syntactic position
		// and spelling — and alpha-equivalent queries would miss each
		// other's cache entries.
		t.PrefixedForm = false
	}
	return t
}

func (fp *fingerprinter) rewriteQuery(q *Query) *Query {
	out := *q
	out.Select = nil
	for _, it := range q.Select {
		ni := SelectItem{Var: fp.term(it.Var)}
		if it.Expr != nil {
			ni.Expr = fp.expr(it.Expr)
		}
		out.Select = append(out.Select, ni)
	}
	out.DescribeTerms = nil
	for _, t := range q.DescribeTerms {
		out.DescribeTerms = append(out.DescribeTerms, fp.term(t))
	}
	out.Template = nil
	for _, t := range q.Template {
		nt := &TriplePattern{S: fp.term(t.S), P: fp.term(t.P), O: fp.term(t.O)}
		out.Template = append(out.Template, nt)
	}
	out.Datasets = nil
	for _, d := range q.Datasets {
		out.Datasets = append(out.Datasets, DatasetClause{Named: d.Named, IRI: fp.term(d.IRI)})
	}
	out.Where = fp.pattern(q.Where)
	out.Mods = fp.modifiers(q.Mods)
	if q.TrailingValues != nil {
		out.TrailingValues = fp.inlineData(q.TrailingValues)
	}
	return &out
}

func (fp *fingerprinter) modifiers(m Modifiers) Modifiers {
	out := m
	out.GroupBy = nil
	for _, gk := range m.GroupBy {
		ngk := GroupKey{Expr: fp.expr(gk.Expr), AsVar: gk.AsVar}
		if gk.AsVar {
			ngk.Var = fp.term(gk.Var)
		}
		out.GroupBy = append(out.GroupBy, ngk)
	}
	out.Having = nil
	for _, h := range m.Having {
		out.Having = append(out.Having, fp.expr(h))
	}
	out.OrderBy = nil
	for _, ok := range m.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderKey{Desc: ok.Desc, Explicit: ok.Explicit, Expr: fp.expr(ok.Expr)})
	}
	return out
}

func (fp *fingerprinter) pattern(p Pattern) Pattern {
	switch n := p.(type) {
	case nil:
		return nil
	case *TriplePattern:
		return &TriplePattern{S: fp.term(n.S), P: fp.term(n.P), O: fp.term(n.O)}
	case *PathPattern:
		return &PathPattern{S: fp.term(n.S), Path: fp.path(n.Path), O: fp.term(n.O)}
	case *Group:
		out := &Group{}
		for _, el := range n.Elems {
			out.Elems = append(out.Elems, fp.pattern(el))
		}
		return out
	case *Union:
		return &Union{Left: fp.pattern(n.Left), Right: fp.pattern(n.Right)}
	case *Optional:
		return &Optional{Inner: fp.pattern(n.Inner)}
	case *GraphGraph:
		return &GraphGraph{Name: fp.term(n.Name), Inner: fp.pattern(n.Inner)}
	case *MinusGraph:
		return &MinusGraph{Inner: fp.pattern(n.Inner)}
	case *ServiceGraph:
		return &ServiceGraph{Silent: n.Silent, Name: fp.term(n.Name), Inner: fp.pattern(n.Inner)}
	case *Filter:
		return &Filter{Constraint: fp.expr(n.Constraint)}
	case *Bind:
		return &Bind{Expr: fp.expr(n.Expr), Var: fp.term(n.Var)}
	case *InlineData:
		return fp.inlineData(n)
	case *SubSelect:
		return &SubSelect{Query: fp.rewriteQuery(n.Query)}
	}
	return p
}

func (fp *fingerprinter) inlineData(vd *InlineData) *InlineData {
	out := &InlineData{Undef: vd.Undef}
	for _, v := range vd.Vars {
		out.Vars = append(out.Vars, fp.term(v))
	}
	for _, row := range vd.Rows {
		nrow := make([]Term, len(row))
		for i, t := range row {
			nrow[i] = fp.term(t)
		}
		out.Rows = append(out.Rows, nrow)
	}
	return out
}

func (fp *fingerprinter) expr(e Expr) Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *TermExpr:
		return &TermExpr{Term: fp.term(n.Term)}
	case *BinaryExpr:
		return &BinaryExpr{Op: n.Op, L: fp.expr(n.L), R: fp.expr(n.R)}
	case *UnaryExpr:
		return &UnaryExpr{Op: n.Op, X: fp.expr(n.X)}
	case *FuncCall:
		out := &FuncCall{Name: n.Name, IRICall: n.IRICall, Distinct: n.Distinct}
		for _, a := range n.Args {
			out.Args = append(out.Args, fp.expr(a))
		}
		return out
	case *AggregateExpr:
		out := *n
		out.Arg = fp.expr(n.Arg)
		return &out
	case *ExistsExpr:
		return &ExistsExpr{Not: n.Not, Pattern: fp.pattern(n.Pattern)}
	case *InExpr:
		out := &InExpr{X: fp.expr(n.X), Not: n.Not}
		for _, a := range n.List {
			out.List = append(out.List, fp.expr(a))
		}
		return out
	}
	return e
}

func (fp *fingerprinter) path(p PathExpr) PathExpr {
	switch n := p.(type) {
	case *PathIRI:
		iri := n.IRI
		if i := strings.IndexByte(iri, ':'); i >= 0 && !strings.Contains(iri, "://") {
			if base, ok := fp.prefixes[iri[:i]]; ok {
				iri = base + iri[i+1:]
			}
		}
		return &PathIRI{IRI: iri}
	case *PathInverse:
		return &PathInverse{X: fp.path(n.X)}
	case *PathSeq:
		out := &PathSeq{}
		for _, part := range n.Parts {
			out.Parts = append(out.Parts, fp.path(part))
		}
		return out
	case *PathAlt:
		out := &PathAlt{}
		for _, part := range n.Parts {
			out.Parts = append(out.Parts, fp.path(part))
		}
		return out
	case *PathMod:
		return &PathMod{X: fp.path(n.X), Mod: n.Mod}
	case *PathNeg:
		out := &PathNeg{}
		for _, part := range n.Set {
			out.Set = append(out.Set, fp.path(part))
		}
		return out
	}
	return p
}
