package sparql

import (
	"strconv"
	"strings"
)

// Fingerprint returns a canonical text form of the query in which
// variables are renamed to ?v0, ?v1, ... in first-occurrence order and
// prefixed names are expanded against the prologue. Two queries that
// differ only in whitespace, prefix declarations, or variable names get
// equal fingerprints, enabling structural deduplication — a refinement
// over the paper's exact-text dedup that its Section 2 implicitly uses
// (the USEWOD anonymisation already normalized whitespace).
func Fingerprint(q *Query) string {
	fp := &fingerprinter{
		prefixes: make(map[string]string, len(q.Prologue.Prefixes)),
		names:    make(map[string]string),
	}
	for _, p := range q.Prologue.Prefixes {
		fp.prefixes[p.Name] = p.IRI
	}
	clone := fp.rewriteQuery(q)
	// Drop the prologue: prefixes were expanded away.
	clone.Prologue = Prologue{}
	return clone.String()
}

type fingerprinter struct {
	prefixes map[string]string
	names    map[string]string
	next     int
}

func (fp *fingerprinter) renameVar(name string) string {
	if nn, ok := fp.names[name]; ok {
		return nn
	}
	nn := "v" + strconv.Itoa(fp.next)
	fp.next++
	fp.names[name] = nn
	return nn
}

func (fp *fingerprinter) term(t Term) Term {
	switch t.Kind {
	case TermVar:
		t.Value = fp.renameVar(t.Value)
	case TermBlank:
		// Blank nodes are scoped like variables; canonicalize them in
		// the same namespace so labels do not matter.
		t.Value = fp.renameVar("_:" + t.Value)
	case TermIRI:
		if t.PrefixedForm {
			if i := strings.IndexByte(t.Value, ':'); i >= 0 {
				if base, ok := fp.prefixes[t.Value[:i]]; ok {
					t.Value = base + t.Value[i+1:]
					t.PrefixedForm = false
				}
			}
		}
	}
	return t
}

func (fp *fingerprinter) rewriteQuery(q *Query) *Query {
	out := *q
	out.Select = nil
	for _, it := range q.Select {
		ni := SelectItem{Var: fp.term(it.Var)}
		if it.Expr != nil {
			ni.Expr = fp.expr(it.Expr)
		}
		out.Select = append(out.Select, ni)
	}
	out.DescribeTerms = nil
	for _, t := range q.DescribeTerms {
		out.DescribeTerms = append(out.DescribeTerms, fp.term(t))
	}
	out.Template = nil
	for _, t := range q.Template {
		nt := &TriplePattern{S: fp.term(t.S), P: fp.term(t.P), O: fp.term(t.O)}
		out.Template = append(out.Template, nt)
	}
	out.Datasets = nil
	for _, d := range q.Datasets {
		out.Datasets = append(out.Datasets, DatasetClause{Named: d.Named, IRI: fp.term(d.IRI)})
	}
	out.Where = fp.pattern(q.Where)
	out.Mods = fp.modifiers(q.Mods)
	if q.TrailingValues != nil {
		out.TrailingValues = fp.inlineData(q.TrailingValues)
	}
	return &out
}

func (fp *fingerprinter) modifiers(m Modifiers) Modifiers {
	out := m
	out.GroupBy = nil
	for _, gk := range m.GroupBy {
		ngk := GroupKey{Expr: fp.expr(gk.Expr), AsVar: gk.AsVar}
		if gk.AsVar {
			ngk.Var = fp.term(gk.Var)
		}
		out.GroupBy = append(out.GroupBy, ngk)
	}
	out.Having = nil
	for _, h := range m.Having {
		out.Having = append(out.Having, fp.expr(h))
	}
	out.OrderBy = nil
	for _, ok := range m.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderKey{Desc: ok.Desc, Explicit: ok.Explicit, Expr: fp.expr(ok.Expr)})
	}
	return out
}

func (fp *fingerprinter) pattern(p Pattern) Pattern {
	switch n := p.(type) {
	case nil:
		return nil
	case *TriplePattern:
		return &TriplePattern{S: fp.term(n.S), P: fp.term(n.P), O: fp.term(n.O)}
	case *PathPattern:
		return &PathPattern{S: fp.term(n.S), Path: fp.path(n.Path), O: fp.term(n.O)}
	case *Group:
		out := &Group{}
		for _, el := range n.Elems {
			out.Elems = append(out.Elems, fp.pattern(el))
		}
		return out
	case *Union:
		return &Union{Left: fp.pattern(n.Left), Right: fp.pattern(n.Right)}
	case *Optional:
		return &Optional{Inner: fp.pattern(n.Inner)}
	case *GraphGraph:
		return &GraphGraph{Name: fp.term(n.Name), Inner: fp.pattern(n.Inner)}
	case *MinusGraph:
		return &MinusGraph{Inner: fp.pattern(n.Inner)}
	case *ServiceGraph:
		return &ServiceGraph{Silent: n.Silent, Name: fp.term(n.Name), Inner: fp.pattern(n.Inner)}
	case *Filter:
		return &Filter{Constraint: fp.expr(n.Constraint)}
	case *Bind:
		return &Bind{Expr: fp.expr(n.Expr), Var: fp.term(n.Var)}
	case *InlineData:
		return fp.inlineData(n)
	case *SubSelect:
		return &SubSelect{Query: fp.rewriteQuery(n.Query)}
	}
	return p
}

func (fp *fingerprinter) inlineData(vd *InlineData) *InlineData {
	out := &InlineData{Undef: vd.Undef}
	for _, v := range vd.Vars {
		out.Vars = append(out.Vars, fp.term(v))
	}
	for _, row := range vd.Rows {
		nrow := make([]Term, len(row))
		for i, t := range row {
			nrow[i] = fp.term(t)
		}
		out.Rows = append(out.Rows, nrow)
	}
	return out
}

func (fp *fingerprinter) expr(e Expr) Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *TermExpr:
		return &TermExpr{Term: fp.term(n.Term)}
	case *BinaryExpr:
		return &BinaryExpr{Op: n.Op, L: fp.expr(n.L), R: fp.expr(n.R)}
	case *UnaryExpr:
		return &UnaryExpr{Op: n.Op, X: fp.expr(n.X)}
	case *FuncCall:
		out := &FuncCall{Name: n.Name, IRICall: n.IRICall, Distinct: n.Distinct}
		for _, a := range n.Args {
			out.Args = append(out.Args, fp.expr(a))
		}
		return out
	case *AggregateExpr:
		out := *n
		out.Arg = fp.expr(n.Arg)
		return &out
	case *ExistsExpr:
		return &ExistsExpr{Not: n.Not, Pattern: fp.pattern(n.Pattern)}
	case *InExpr:
		out := &InExpr{X: fp.expr(n.X), Not: n.Not}
		for _, a := range n.List {
			out.List = append(out.List, fp.expr(a))
		}
		return out
	}
	return e
}

func (fp *fingerprinter) path(p PathExpr) PathExpr {
	switch n := p.(type) {
	case *PathIRI:
		iri := n.IRI
		if i := strings.IndexByte(iri, ':'); i >= 0 && !strings.Contains(iri, "://") {
			if base, ok := fp.prefixes[iri[:i]]; ok {
				iri = base + iri[i+1:]
			}
		}
		return &PathIRI{IRI: iri}
	case *PathInverse:
		return &PathInverse{X: fp.path(n.X)}
	case *PathSeq:
		out := &PathSeq{}
		for _, part := range n.Parts {
			out.Parts = append(out.Parts, fp.path(part))
		}
		return out
	case *PathAlt:
		out := &PathAlt{}
		for _, part := range n.Parts {
			out.Parts = append(out.Parts, fp.path(part))
		}
		return out
	case *PathMod:
		return &PathMod{X: fp.path(n.X), Mod: n.Mod}
	case *PathNeg:
		out := &PathNeg{}
		for _, part := range n.Set {
			out.Set = append(out.Set, fp.path(part))
		}
		return out
	}
	return p
}
