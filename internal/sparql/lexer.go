package sparql

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lexer turns SPARQL source text into a stream of tokens.
//
// The lexer is hand-written for speed: query-log analysis tokenizes hundreds
// of millions of small queries, so it avoids regular expressions and
// allocates only for token text that requires escape decoding.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) errorf(pos Position, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: sprintf(format, args...)}
}

// sprintf is a tiny indirection so the lexer does not import fmt on the
// hot path (token.go already imports it for names).
func sprintf(format string, args ...any) string {
	if len(args) == 0 {
		return format
	}
	return fmtSprintf(format, args...)
}

func (l *Lexer) position() Position {
	return Position{Offset: l.pos, Line: l.line, Col: l.col}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == 0x0b:
			l.advance(1)
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		default:
			return
		}
	}
}

// Next returns the next token, or an error on malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	pos := l.position()
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '{':
		l.advance(1)
		return Token{Kind: LBrace, Text: "{", Pos: pos}, nil
	case '}':
		l.advance(1)
		return Token{Kind: RBrace, Text: "}", Pos: pos}, nil
	case '(':
		// NIL: '(' WS* ')'
		if tok, ok := l.tryCompound(')', NIL, "()"); ok {
			tok.Pos = pos
			return tok, nil
		}
		l.advance(1)
		return Token{Kind: LParen, Text: "(", Pos: pos}, nil
	case ')':
		l.advance(1)
		return Token{Kind: RParen, Text: ")", Pos: pos}, nil
	case '[':
		// ANON: '[' WS* ']'
		if tok, ok := l.tryCompound(']', ANON, "[]"); ok {
			tok.Pos = pos
			return tok, nil
		}
		l.advance(1)
		return Token{Kind: LBracket, Text: "[", Pos: pos}, nil
	case ']':
		l.advance(1)
		return Token{Kind: RBracket, Text: "]", Pos: pos}, nil
	case ';':
		l.advance(1)
		return Token{Kind: Semicolon, Text: ";", Pos: pos}, nil
	case ',':
		l.advance(1)
		return Token{Kind: Comma, Text: ",", Pos: pos}, nil
	case '=':
		l.advance(1)
		return Token{Kind: Eq, Text: "=", Pos: pos}, nil
	case '!':
		if l.peekByteAt(1) == '=' {
			l.advance(2)
			return Token{Kind: Neq, Text: "!=", Pos: pos}, nil
		}
		l.advance(1)
		return Token{Kind: Bang, Text: "!", Pos: pos}, nil
	case '<':
		return l.lexLtOrIRI(pos)
	case '>':
		if l.peekByteAt(1) == '=' {
			l.advance(2)
			return Token{Kind: Ge, Text: ">=", Pos: pos}, nil
		}
		l.advance(1)
		return Token{Kind: Gt, Text: ">", Pos: pos}, nil
	case '&':
		if l.peekByteAt(1) == '&' {
			l.advance(2)
			return Token{Kind: AndAnd, Text: "&&", Pos: pos}, nil
		}
		return Token{}, l.errorf(pos, "unexpected '&'")
	case '|':
		if l.peekByteAt(1) == '|' {
			l.advance(2)
			return Token{Kind: OrOr, Text: "||", Pos: pos}, nil
		}
		l.advance(1)
		return Token{Kind: Pipe, Text: "|", Pos: pos}, nil
	case '+':
		l.advance(1)
		return Token{Kind: Plus, Text: "+", Pos: pos}, nil
	case '-':
		l.advance(1)
		return Token{Kind: Minus, Text: "-", Pos: pos}, nil
	case '*':
		l.advance(1)
		return Token{Kind: Star, Text: "*", Pos: pos}, nil
	case '/':
		l.advance(1)
		return Token{Kind: Slash, Text: "/", Pos: pos}, nil
	case '^':
		if l.peekByteAt(1) == '^' {
			l.advance(2)
			return Token{Kind: CaretCaret, Text: "^^", Pos: pos}, nil
		}
		l.advance(1)
		return Token{Kind: Caret, Text: "^", Pos: pos}, nil
	case '?', '$':
		return l.lexVarOrQuestion(pos)
	case '@':
		return l.lexLangTag(pos)
	case '\'', '"':
		return l.lexString(pos)
	case '_':
		if l.peekByteAt(1) == ':' {
			return l.lexBlankNode(pos)
		}
		return l.lexIdentOrPName(pos)
	case '.':
		// A dot may start a number (.5) or be the triple terminator.
		if isDigit(l.peekByteAt(1)) {
			return l.lexNumber(pos)
		}
		l.advance(1)
		return Token{Kind: Dot, Text: ".", Pos: pos}, nil
	}
	if isDigit(c) {
		return l.lexNumber(pos)
	}
	if isPNCharsBase(l.peekRune()) || c == ':' {
		return l.lexIdentOrPName(pos)
	}
	return Token{}, l.errorf(pos, "unexpected character %q", string(rune(c)))
}

// tryCompound matches '(' WS* ')' style two-character tokens that may have
// interior whitespace (NIL and ANON).
func (l *Lexer) tryCompound(closer byte, kind TokenKind, text string) (Token, bool) {
	i := l.pos + 1
	for i < len(l.src) {
		c := l.src[i]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			i++
			continue
		}
		if c == closer {
			l.advance(i + 1 - l.pos)
			return Token{Kind: kind, Text: text}, true
		}
		return Token{}, false
	}
	return Token{}, false
}

func (l *Lexer) peekRune() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return r
}

// lexLtOrIRI disambiguates '<' between an IRIREF and the less-than operator.
// An IRIREF is a '<' followed by characters excluding control characters,
// space, and <>"{}|^` and backslash, terminated by '>'. Anything else is the
// operator.
func (l *Lexer) lexLtOrIRI(pos Position) (Token, error) {
	if l.peekByteAt(1) == '=' {
		l.advance(2)
		return Token{Kind: Le, Text: "<=", Pos: pos}, nil
	}
	i := l.pos + 1
	for i < len(l.src) {
		c := l.src[i]
		if c == '>' {
			text := l.src[l.pos+1 : i]
			l.advance(i + 1 - l.pos)
			return Token{Kind: IRIRef, Text: text, Pos: pos}, nil
		}
		if c <= 0x20 || c == '<' || c == '"' || c == '{' || c == '}' || c == '|' || c == '^' || c == '`' || c == '\\' {
			break
		}
		i++
	}
	l.advance(1)
	return Token{Kind: Lt, Text: "<", Pos: pos}, nil
}

// lexVarOrQuestion lexes ?name and $name variables; a bare '?' (as used for
// the zero-or-one path modifier) is returned as a Question token.
func (l *Lexer) lexVarOrQuestion(pos Position) (Token, error) {
	lead := l.src[l.pos]
	r, size := utf8.DecodeRuneInString(l.src[l.pos+1:])
	if !isVarNameStart(r) {
		if lead == '$' {
			return Token{}, l.errorf(pos, "'$' must start a variable name")
		}
		l.advance(1)
		return Token{Kind: Question, Text: "?", Pos: pos}, nil
	}
	i := l.pos + 1 + size
	for i < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[i:])
		if !isVarNameCont(r) {
			break
		}
		i += size
	}
	text := l.src[l.pos+1 : i]
	l.advance(i - l.pos)
	return Token{Kind: Var, Text: text, Pos: pos}, nil
}

func (l *Lexer) lexLangTag(pos Position) (Token, error) {
	i := l.pos + 1
	start := i
	for i < len(l.src) && (isAlpha(l.src[i]) || (i > start && (isDigit(l.src[i]) || l.src[i] == '-'))) {
		i++
	}
	if i == start {
		return Token{}, l.errorf(pos, "expected language tag after '@'")
	}
	text := l.src[start:i]
	l.advance(i - l.pos)
	return Token{Kind: LangTag, Text: text, Pos: pos}, nil
}

func (l *Lexer) lexBlankNode(pos Position) (Token, error) {
	i := l.pos + 2 // skip "_:"
	start := i
	for i < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[i:])
		if !isPNChars(r) && r != '.' {
			break
		}
		i += size
	}
	// Trailing dots belong to the statement, not the label.
	for i > start && l.src[i-1] == '.' {
		i--
	}
	if i == start {
		return Token{}, l.errorf(pos, "expected blank node label after '_:'")
	}
	text := l.src[start:i]
	l.advance(i - l.pos)
	return Token{Kind: BlankNode, Text: text, Pos: pos}, nil
}

func (l *Lexer) lexNumber(pos Position) (Token, error) {
	i := l.pos
	for i < len(l.src) && isDigit(l.src[i]) {
		i++
	}
	if i < len(l.src) && l.src[i] == '.' {
		j := i + 1
		for j < len(l.src) && isDigit(l.src[j]) {
			j++
		}
		// "1." followed by non-digit keeps the dot as triple terminator
		// only when no exponent follows; SPARQL allows "1." as a decimal,
		// but logs overwhelmingly use it as INTEGER DOT, so we only absorb
		// the dot when digits follow.
		if j > i+1 {
			i = j
		}
	}
	if i < len(l.src) && (l.src[i] == 'e' || l.src[i] == 'E') {
		j := i + 1
		if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
			j++
		}
		k := j
		for k < len(l.src) && isDigit(l.src[k]) {
			k++
		}
		if k > j {
			i = k
		}
	}
	text := l.src[l.pos:i]
	l.advance(i - l.pos)
	return Token{Kind: NumberLit, Text: text, Pos: pos}, nil
}

func (l *Lexer) lexString(pos Position) (Token, error) {
	quote := l.src[l.pos]
	long := false
	if l.peekByteAt(1) == quote && l.peekByteAt(2) == quote {
		long = true
		l.advance(3)
	} else {
		l.advance(1)
	}
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' {
			esc := l.peekByteAt(1)
			switch esc {
			case 't':
				sb.WriteByte('\t')
			case 'b':
				sb.WriteByte('\b')
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case 'f':
				sb.WriteByte('\f')
			case '"', '\'', '\\':
				sb.WriteByte(esc)
			case 'u', 'U':
				n := 4
				if esc == 'U' {
					n = 8
				}
				if l.pos+2+n > len(l.src) {
					return Token{}, l.errorf(pos, "truncated unicode escape")
				}
				hex := l.src[l.pos+2 : l.pos+2+n]
				v, err := parseHex(hex)
				if err != nil {
					return Token{}, l.errorf(pos, "bad unicode escape \\%c%s", esc, hex)
				}
				sb.WriteRune(rune(v))
				l.advance(2 + n)
				continue
			default:
				return Token{}, l.errorf(pos, "bad escape sequence \\%c", esc)
			}
			l.advance(2)
			continue
		}
		if long {
			if c == quote && l.peekByteAt(1) == quote && l.peekByteAt(2) == quote {
				l.advance(3)
				return Token{Kind: StringLit, Text: sb.String(), Pos: pos}, nil
			}
			sb.WriteByte(c)
			l.advance(1)
			continue
		}
		if c == quote {
			l.advance(1)
			return Token{Kind: StringLit, Text: sb.String(), Pos: pos}, nil
		}
		if c == '\n' || c == '\r' {
			return Token{}, l.errorf(pos, "newline in string literal")
		}
		sb.WriteByte(c)
		l.advance(1)
	}
	return Token{}, l.errorf(pos, "unterminated string literal")
}

// lexIdentOrPName lexes bare identifiers (keywords, boolean literals,
// builtin names) and prefixed names such as foaf:name or rdf: .
func (l *Lexer) lexIdentOrPName(pos Position) (Token, error) {
	i := l.pos
	// Prefix part: PN_CHARS_BASE (PN_CHARS | '.')* — may be empty (":x").
	for i < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[i:])
		if i == l.pos {
			if !isPNCharsBase(r) {
				break
			}
		} else if !isPNChars(r) && r != '.' {
			break
		}
		i += size
	}
	// Trailing dots are statement terminators, not name parts.
	for i > l.pos && l.src[i-1] == '.' {
		i--
	}
	if i >= len(l.src) || l.src[i] != ':' {
		// Bare identifier (keyword, function name, or 'a').
		if i == l.pos {
			if l.src[l.pos] == ':' {
				i = l.pos // empty prefix, fall through to PName
			} else {
				return Token{}, l.errorf(pos, "unexpected character %q", string(l.peekRune()))
			}
		} else {
			text := l.src[l.pos:i]
			l.advance(i - l.pos)
			if text == "a" {
				return Token{Kind: A, Text: "a", Pos: pos}, nil
			}
			return Token{Kind: Ident, Text: text, Pos: pos}, nil
		}
	}
	// PName: consume ':' and local part.
	i++ // ':'
	start := i
	for i < len(l.src) {
		// Local names allow PN_CHARS, '.', ':', '%XX' escapes and
		// backslash escapes of punctuation (PN_LOCAL_ESC).
		c := l.src[i]
		if c == '%' && i+2 < len(l.src) && isHex(l.src[i+1]) && isHex(l.src[i+2]) {
			i += 3
			continue
		}
		if c == '\\' && i+1 < len(l.src) && isLocalEsc(l.src[i+1]) {
			i += 2
			continue
		}
		r, size := utf8.DecodeRuneInString(l.src[i:])
		if i == start {
			if !isPNChars(r) && r != ':' && !isDigit(byte(r&0x7f)) {
				break
			}
		} else if !isPNChars(r) && r != '.' && r != ':' {
			break
		}
		i += size
	}
	for i > start && l.src[i-1] == '.' {
		i--
	}
	text := l.src[l.pos:i]
	l.advance(i - l.pos)
	return Token{Kind: PName, Text: text, Pos: pos}, nil
}

// Character class helpers.

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isAlpha(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }

func isHex(c byte) bool { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }

func isLocalEsc(c byte) bool {
	switch c {
	case '_', '~', '.', '-', '!', '$', '&', '\'', '(', ')', '*', '+', ',', ';', '=', '/', '?', '#', '@', '%':
		return true
	}
	return false
}

func isPNCharsBase(r rune) bool {
	if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' {
		return true
	}
	if r < 0x80 {
		return false
	}
	return unicode.IsLetter(r)
}

func isPNChars(r rune) bool {
	if isPNCharsBase(r) || r == '_' || r == '-' {
		return true
	}
	if r >= '0' && r <= '9' {
		return true
	}
	if r == 0xB7 {
		return true
	}
	return r >= 0x300 && r <= 0x36F || unicode.IsDigit(r)
}

func isVarNameStart(r rune) bool {
	return isPNCharsBase(r) || r == '_' || (r >= '0' && r <= '9')
}

func isVarNameCont(r rune) bool {
	return isVarNameStart(r) || r == 0xB7 || (r >= 0x300 && r <= 0x36F) || unicode.IsDigit(r)
}

func parseHex(s string) (int64, error) {
	var v int64
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			return 0, &SyntaxError{Msg: "bad hex digit"}
		}
		v = v<<4 | d
	}
	return v, nil
}
