package sparql_test

import (
	"testing"

	"sparqlog/internal/sparql"
)

// FuzzQueryString checks the canonical serializer's contract on
// arbitrary parseable input: QueryString's output must re-parse, and
// canonicalization must be a fixpoint (canonicalizing the re-parse
// yields the same text). The result cache keys on this form, so a
// non-fixpoint would split one logical query across cache entries; a
// non-re-parsing form would mean the canonical text no longer denotes
// the query.
func FuzzQueryString(f *testing.F) {
	seeds := []string{
		"SELECT ?s WHERE { ?s ?p ?o }",
		"SELECT DISTINCT ?x ?y WHERE { ?x <p> ?y . ?y <q> ?z FILTER(?z > 3) } ORDER BY DESC(?x) LIMIT 10 OFFSET 5",
		"PREFIX dbo: <http://dbpedia.org/ontology/> SELECT ?s WHERE { ?s dbo:birthPlace ?o OPTIONAL { ?s dbo:deathPlace ?d } }",
		"SELECT ?n (COUNT(*) AS ?c) WHERE { { ?a <p> ?n } UNION { ?b <q> ?n } } GROUP BY ?n HAVING (COUNT(*) > 1)",
		"SELECT (SUM(?v) AS ?total) (AVG(?v) AS ?mean) WHERE { ?x <val> ?v } GROUP BY ?x ORDER BY ?total",
		"SELECT ?x WHERE { VALUES ?x { <a> <b> } ?x <p> ?y } VALUES ?y { 1 2 }",
		"ASK { ?x <knows> ?y MINUS { ?x <blocks> ?y } }",
		"SELECT ?x WHERE { ?x (<a>|<b>)*/^<c> ?y }",
		"SELECT ?x { { SELECT DISTINCT ?x WHERE { ?x a <C> } ORDER BY ?x LIMIT 1 } BIND(?x AS ?y) }",
		"PREFIX : <http://e/> SELECT ?Longname WHERE { ?Longname :p ?b . ?b :q ?Longname }",
		"CONSTRUCT { ?s <p> ?o } WHERE { ?s <p> ?o } LIMIT 3",
		"DESCRIBE ?x WHERE { ?x <p> <o> }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	p := &sparql.Parser{}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := p.Parse(src)
		if err != nil {
			return
		}
		canon := sparql.QueryString(q)
		q2, err := p.Parse(canon)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\noriginal: %q\ncanonical: %q", err, src, canon)
		}
		if canon2 := sparql.QueryString(q2); canon2 != canon {
			t.Fatalf("canonicalization is not a fixpoint:\n 1: %q\n 2: %q", canon, canon2)
		}
	})
}

// Alpha-equivalent queries — same structure under variable renaming,
// prefix spelling, and whitespace — must canonicalize identically, and
// queries differing in any answer-relevant part (modifiers included)
// must not.
func TestQueryStringEquivalence(t *testing.T) {
	equal := [][2]string{
		{
			"SELECT ?s WHERE { ?s <p> ?o } LIMIT 5",
			"SELECT  ?x\nWHERE { ?x <p> ?y }\nLIMIT 5",
		},
		{
			"PREFIX dbo: <http://d/o/> SELECT ?a WHERE { ?a dbo:b ?c }",
			"SELECT ?x WHERE { ?x <http://d/o/b> ?y }",
		},
		{
			"SELECT DISTINCT ?a ?b WHERE { ?a <p> ?b } ORDER BY DESC(?b)",
			"SELECT DISTINCT ?x ?y WHERE { ?x <p> ?y } ORDER BY DESC(?y)",
		},
	}
	for _, pair := range equal {
		a := mustParse(t, pair[0])
		b := mustParse(t, pair[1])
		if qa, qb := sparql.QueryString(a), sparql.QueryString(b); qa != qb {
			t.Errorf("expected equal canonical forms:\n a: %q -> %q\n b: %q -> %q", pair[0], qa, pair[1], qb)
		}
	}
	distinct := [][2]string{
		{
			"SELECT ?s WHERE { ?s <p> ?o } LIMIT 5",
			"SELECT ?s WHERE { ?s <p> ?o } LIMIT 6",
		},
		{
			"SELECT ?s WHERE { ?s <p> ?o }",
			"SELECT DISTINCT ?s WHERE { ?s <p> ?o }",
		},
		{
			"SELECT ?s WHERE { ?s <p> ?o } ORDER BY ?s",
			"SELECT ?s WHERE { ?s <p> ?o } ORDER BY DESC(?s)",
		},
		{
			"SELECT ?s WHERE { ?s <p> ?o } OFFSET 1",
			"SELECT ?s WHERE { ?s <p> ?o }",
		},
		{
			"SELECT ?s WHERE { ?s <p> ?o . ?o <p> ?s }",
			"SELECT ?s WHERE { ?s <p> ?o . ?s <p> ?o }",
		},
	}
	for _, pair := range distinct {
		a := mustParse(t, pair[0])
		b := mustParse(t, pair[1])
		if qa, qb := sparql.QueryString(a), sparql.QueryString(b); qa == qb {
			t.Errorf("expected distinct canonical forms for %q vs %q, both %q", pair[0], pair[1], qa)
		}
	}
}

func mustParse(t *testing.T, src string) *sparql.Query {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}
