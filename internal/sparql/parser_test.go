package sparql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseQueryTypes(t *testing.T) {
	tests := []struct {
		src  string
		want QueryType
	}{
		{"SELECT * WHERE { ?s ?p ?o }", SelectQuery},
		{"select ?s where { ?s ?p ?o }", SelectQuery},
		{"ASK { ?s ?p ?o }", AskQuery},
		{"ASK WHERE { ?s ?p ?o }", AskQuery},
		{"CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }", ConstructQuery},
		{"CONSTRUCT WHERE { ?s ?p ?o }", ConstructQuery},
		{"DESCRIBE <http://example.org/x>", DescribeQuery},
		{"DESCRIBE ?x WHERE { ?x a <http://example.org/C> }", DescribeQuery},
		{"DESCRIBE *  WHERE { ?x ?p ?o }", DescribeQuery},
	}
	for _, tc := range tests {
		q := mustParse(t, tc.src)
		if q.Type != tc.want {
			t.Errorf("Parse(%q).Type = %v, want %v", tc.src, q.Type, tc.want)
		}
	}
}

func TestParseBodylessDescribe(t *testing.T) {
	q := mustParse(t, "DESCRIBE <http://dbpedia.org/resource/Paris>")
	if q.HasBody() {
		t.Error("bodyless DESCRIBE should have no body")
	}
	if len(q.Triples()) != 0 {
		t.Error("bodyless DESCRIBE should have no triples")
	}
}

func TestParsePaperWikidataQuery(t *testing.T) {
	// The "Locations of archaeological sites" query from Section 3.
	src := `
	PREFIX wdt: <http://www.wikidata.org/prop/direct/>
	PREFIX wd: <http://www.wikidata.org/entity/>
	PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
	SELECT ?label ?coord ?subj
	WHERE
	{ ?subj wdt:P31/wdt:P279* wd:Q839954 .
	  ?subj wdt:P625 ?coord .
	  ?subj rdfs:label ?label filter(lang(?label)="en")
	}`
	q := mustParse(t, src)
	if q.Type != SelectQuery {
		t.Fatalf("type = %v", q.Type)
	}
	if len(q.Select) != 3 {
		t.Fatalf("projection size = %d, want 3", len(q.Select))
	}
	if got := len(q.Triples()); got != 2 {
		t.Errorf("triple patterns = %d, want 2", got)
	}
	paths := q.PathPatterns()
	if len(paths) != 1 {
		t.Fatalf("path patterns = %d, want 1", len(paths))
	}
	seq, ok := paths[0].Path.(*PathSeq)
	if !ok || len(seq.Parts) != 2 {
		t.Fatalf("path = %s, want sequence of 2", PathString(paths[0].Path))
	}
	if _, ok := seq.Parts[1].(*PathMod); !ok {
		t.Errorf("second part should be starred, got %s", PathString(seq.Parts[1]))
	}
	grp := q.Where.(*Group)
	var filters int
	for _, el := range grp.Elems {
		if _, ok := el.(*Filter); ok {
			filters++
		}
	}
	if filters != 1 {
		t.Errorf("filters in group = %d, want 1", filters)
	}
}

func TestParsePaperExample51(t *testing.T) {
	// The two ASK queries from Example 5.1.
	q1 := mustParse(t, "ASK WHERE {?x1 <a> ?x2 . ?x2 <b> ?x3 . ?x3 <c> ?x4}")
	if got := len(q1.Triples()); got != 3 {
		t.Fatalf("q1 triples = %d, want 3", got)
	}
	q2 := mustParse(t, "ASK WHERE {?x1 ?x2 ?x3 . ?x3 <a> ?x4 . ?x4 ?x2 ?x5}")
	trs := q2.Triples()
	if len(trs) != 3 {
		t.Fatalf("q2 triples = %d, want 3", len(trs))
	}
	if !trs[0].P.IsVar() || !trs[2].P.IsVar() {
		t.Error("q2 should have variable predicates in triples 1 and 3")
	}
}

func TestParseSolutionModifiers(t *testing.T) {
	src := `SELECT DISTINCT ?x (COUNT(?y) AS ?c) WHERE { ?x <p> ?y }
		GROUP BY ?x HAVING (COUNT(?y) > 2) ORDER BY DESC(?c) ?x LIMIT 10 OFFSET 5`
	q := mustParse(t, src)
	if !q.Distinct {
		t.Error("want Distinct")
	}
	if len(q.Mods.GroupBy) != 1 {
		t.Errorf("GroupBy = %d, want 1", len(q.Mods.GroupBy))
	}
	if len(q.Mods.Having) != 1 {
		t.Errorf("Having = %d, want 1", len(q.Mods.Having))
	}
	if len(q.Mods.OrderBy) != 2 {
		t.Errorf("OrderBy = %d, want 2", len(q.Mods.OrderBy))
	}
	if !q.Mods.OrderBy[0].Desc {
		t.Error("first order key should be DESC")
	}
	if q.Mods.Limit != 10 || q.Mods.Offset != 5 {
		t.Errorf("limit/offset = %d/%d, want 10/5", q.Mods.Limit, q.Mods.Offset)
	}
	if len(q.Select) != 2 || q.Select[1].Expr == nil {
		t.Error("want aliased aggregate in projection")
	}
}

func TestParseLimitOffsetEitherOrder(t *testing.T) {
	q := mustParse(t, "SELECT * WHERE { ?s ?p ?o } OFFSET 20 LIMIT 10")
	if q.Mods.Limit != 10 || q.Mods.Offset != 20 {
		t.Errorf("limit/offset = %d/%d", q.Mods.Limit, q.Mods.Offset)
	}
}

func TestParseOptionalUnionGraphMinus(t *testing.T) {
	src := `SELECT ?a WHERE {
		?a <name> ?n .
		OPTIONAL { ?a <email> ?e }
		{ ?a <type> <X> } UNION { ?a <type> <Y> }
		GRAPH ?g { ?a <in> ?c }
		MINUS { ?a <banned> true }
		SERVICE SILENT <http://other/sparql> { ?a <ext> ?v }
	}`
	q := mustParse(t, src)
	grp := q.Where.(*Group)
	var opt, uni, gra, min, svc int
	for _, el := range grp.Elems {
		switch el.(type) {
		case *Optional:
			opt++
		case *Union:
			uni++
		case *GraphGraph:
			gra++
		case *MinusGraph:
			min++
		case *ServiceGraph:
			svc++
		}
	}
	if opt != 1 || uni != 1 || gra != 1 || min != 1 || svc != 1 {
		t.Errorf("opt=%d uni=%d graph=%d minus=%d service=%d, want all 1", opt, uni, gra, min, svc)
	}
}

func TestParseNestedUnion(t *testing.T) {
	q := mustParse(t, "SELECT * WHERE { { ?s <a> ?o } UNION { ?s <b> ?o } UNION { ?s <c> ?o } }")
	grp := q.Where.(*Group)
	u, ok := grp.Elems[0].(*Union)
	if !ok {
		t.Fatal("expected union")
	}
	if _, ok := u.Left.(*Union); !ok {
		t.Error("3-way union should be left-nested")
	}
}

func TestParsePropertyListSyntax(t *testing.T) {
	// Semicolon and comma abbreviations.
	q := mustParse(t, "SELECT * WHERE { ?s <p> ?a , ?b ; <q> ?c . }")
	if got := len(q.Triples()); got != 3 {
		t.Fatalf("triples = %d, want 3", got)
	}
	for _, tr := range q.Triples() {
		if tr.S.Value != "s" {
			t.Errorf("subject = %v, want s", tr.S)
		}
	}
}

func TestParseBlankNodePropertyList(t *testing.T) {
	q := mustParse(t, "SELECT * WHERE { ?x <knows> [ <name> \"Alice\" ; <age> 30 ] }")
	if got := len(q.Triples()); got != 3 {
		t.Fatalf("triples = %d, want 3", got)
	}
	q2 := mustParse(t, "SELECT * WHERE { [ <name> ?n ] <knows> ?y }")
	if got := len(q2.Triples()); got != 2 {
		t.Fatalf("triples = %d, want 2", got)
	}
}

func TestParseCollection(t *testing.T) {
	q := mustParse(t, "SELECT * WHERE { ?x <list> ( 1 2 3 ) }")
	// 1 main triple + first/rest chain: 3 firsts + 3 rests = 7.
	if got := len(q.Triples()); got != 7 {
		t.Fatalf("triples = %d, want 7", got)
	}
}

func TestParseAnonBlank(t *testing.T) {
	q := mustParse(t, "SELECT * WHERE { ?x <p> [] }")
	trs := q.Triples()
	if len(trs) != 1 || trs[0].O.Kind != TermBlank {
		t.Fatalf("want one triple with blank object, got %v", trs)
	}
}

func TestParseLiterals(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE {
		?a <p> "plain" .
		?b <p> "lang"@en-GB .
		?c <p> "typed"^^<http://www.w3.org/2001/XMLSchema#date> .
		?d <p> 'single' .
		?e <p> """long
multiline""" .
		?f <p> 3.14 .
		?g <p> -7 .
		?h <p> 1e6 .
		?i <p> true .
	}`)
	trs := q.Triples()
	if len(trs) != 9 {
		t.Fatalf("triples = %d, want 9", len(trs))
	}
	if trs[1].O.Lang != "en-GB" {
		t.Errorf("lang = %q", trs[1].O.Lang)
	}
	if !strings.HasSuffix(trs[2].O.Datatype, "date") {
		t.Errorf("datatype = %q", trs[2].O.Datatype)
	}
	if trs[4].O.Value != "long\nmultiline" {
		t.Errorf("long string = %q", trs[4].O.Value)
	}
	if trs[6].O.Value != "-7" {
		t.Errorf("negative int = %q", trs[6].O.Value)
	}
	if trs[8].O.Datatype != "http://www.w3.org/2001/XMLSchema#boolean" {
		t.Errorf("boolean datatype = %q", trs[8].O.Datatype)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?s <p> "a\"b\\c\ndé" }`)
	got := q.Triples()[0].O.Value
	want := "a\"b\\c\ndé"
	if got != want {
		t.Errorf("escaped string = %q, want %q", got, want)
	}
}

func TestParseFilterExpressions(t *testing.T) {
	tests := []string{
		`SELECT * WHERE { ?s <p> ?o FILTER (?o > 5 && ?o < 10) }`,
		`SELECT * WHERE { ?s <p> ?o FILTER (?o = "x" || !BOUND(?o)) }`,
		`SELECT * WHERE { ?s <p> ?o FILTER regex(?o, "^ab", "i") }`,
		`SELECT * WHERE { ?s <p> ?o FILTER (lang(?o) = "en") }`,
		`SELECT * WHERE { ?s <p> ?o FILTER (?o IN (1, 2, 3)) }`,
		`SELECT * WHERE { ?s <p> ?o FILTER (?o NOT IN (<a>, <b>)) }`,
		`SELECT * WHERE { ?s <p> ?o FILTER EXISTS { ?s <q> ?x } }`,
		`SELECT * WHERE { ?s <p> ?o FILTER NOT EXISTS { ?s <q> ?x } }`,
		`SELECT * WHERE { ?s <p> ?o FILTER isIRI(?o) }`,
		`SELECT * WHERE { ?s <p> ?o FILTER (str(?s) != str(?o)) }`,
		`SELECT * WHERE { ?s <p> ?o FILTER (sameTerm(?s, ?o)) }`,
		`SELECT * WHERE { ?s <p> ?o FILTER ((?o * 2) + 1 >= -3) }`,
		`SELECT * WHERE { ?s <p> ?o FILTER <http://ex/fn>(?o) }`,
	}
	for _, src := range tests {
		mustParse(t, src)
	}
}

func TestParseExistsInsideFilterCounted(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?s <p> ?o FILTER NOT EXISTS { ?s <q> ?x . ?x <r> ?y } }`)
	// Triples() descends into EXISTS patterns.
	if got := len(q.Triples()); got != 3 {
		t.Errorf("triples incl. EXISTS = %d, want 3", got)
	}
}

func TestParseBindAndValues(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE {
		?s <p> ?o .
		BIND (?o * 2 AS ?double)
		VALUES ?s { <a> <b> }
		VALUES (?x ?y) { (1 2) (UNDEF "z") }
	}`)
	grp := q.Where.(*Group)
	var binds, values int
	for _, el := range grp.Elems {
		switch v := el.(type) {
		case *Bind:
			binds++
		case *InlineData:
			values++
			if len(v.Vars) == 2 {
				if !v.Undef[1][0] {
					t.Error("expected UNDEF in second row")
				}
			}
		}
	}
	if binds != 1 || values != 2 {
		t.Errorf("binds=%d values=%d", binds, values)
	}
}

func TestParseTrailingValues(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?s ?p ?o } VALUES ?s { <a> }`)
	if q.TrailingValues == nil {
		t.Fatal("want trailing VALUES")
	}
}

func TestParseSubquery(t *testing.T) {
	q := mustParse(t, `SELECT ?s WHERE {
		?s <p> ?o .
		{ SELECT ?o WHERE { ?o <q> ?z } LIMIT 5 }
	}`)
	var subs int
	Walk(q.Where, func(p Pattern) bool {
		if _, ok := p.(*SubSelect); ok {
			subs++
		}
		return true
	})
	if subs != 1 {
		t.Fatalf("subqueries = %d, want 1", subs)
	}
}

func TestParsePropertyPaths(t *testing.T) {
	tests := []struct {
		src, want string
	}{
		{`ASK { ?x <a>/<b> ?y }`, "<a>/<b>"},
		{`ASK { ?x <a>|<b> ?y }`, "<a>|<b>"},
		{`ASK { ?x <a>* ?y }`, "<a>*"},
		{`ASK { ?x <a>+ ?y }`, "<a>+"},
		{`ASK { ?x <a>? ?y }`, "<a>?"},
		{`ASK { ?x ^<a> ?y }`, "^<a>"},
		{`ASK { ?x !<a> ?y }`, "!<a>"},
		{`ASK { ?x !(<a>|<b>) ?y }`, "!(<a>|<b>)"},
		{`ASK { ?x (<a>/<b>)* ?y }`, "(<a>/<b>)*"},
		{`ASK { ?x (<a>|<b>)/<c> ?y }`, "(<a>|<b>)/<c>"},
		{`ASK { ?x <a>/^<b> ?y }`, "<a>/^<b>"},
		{`ASK { ?x (^<a>)/<b>? ?y }`, "^<a>/<b>?"},
		{`ASK { ?x !(^<a>|<b>) ?y }`, "!(^<a>|<b>)"},
	}
	for _, tc := range tests {
		q := mustParse(t, tc.src)
		pps := q.PathPatterns()
		if len(pps) != 1 {
			t.Fatalf("%s: path patterns = %d, want 1", tc.src, len(pps))
		}
		if got := PathString(pps[0].Path); got != tc.want {
			t.Errorf("%s: path = %s, want %s", tc.src, got, tc.want)
		}
	}
}

func TestParsePlainIRIPredicateIsTriple(t *testing.T) {
	q := mustParse(t, `ASK { ?x <a> ?y }`)
	if len(q.PathPatterns()) != 0 {
		t.Error("plain IRI predicate must fold to a triple pattern")
	}
	if len(q.Triples()) != 1 {
		t.Error("want one triple")
	}
}

func TestParseAKeyword(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE { ?x a <http://example.org/C> }`)
	tr := q.Triples()[0]
	if tr.P.Value != RDFType || tr.P.Kind != TermIRI {
		t.Errorf("predicate = %v, want rdf:type", tr.P)
	}
}

func TestParsePrefixedNames(t *testing.T) {
	q := mustParse(t, `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
		SELECT * WHERE { ?x foaf:name ?n . ?x foaf:mbox ?m }`)
	if len(q.Prologue.Prefixes) != 1 || q.Prologue.Prefixes[0].Name != "foaf" {
		t.Fatalf("prefixes = %v", q.Prologue.Prefixes)
	}
	tr := q.Triples()[0]
	if tr.P.Value != "foaf:name" || !tr.P.PrefixedForm {
		t.Errorf("predicate = %+v", tr.P)
	}
}

func TestParseDatasetClauses(t *testing.T) {
	q := mustParse(t, `SELECT * FROM <http://g1> FROM NAMED <http://g2> WHERE { ?s ?p ?o }`)
	if len(q.Datasets) != 2 || q.Datasets[0].Named || !q.Datasets[1].Named {
		t.Fatalf("datasets = %v", q.Datasets)
	}
}

func TestParseAggregates(t *testing.T) {
	srcs := []string{
		`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`,
		`SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s ?p ?o }`,
		`SELECT (SUM(?v) AS ?n) WHERE { ?s <p> ?v }`,
		`SELECT (AVG(?v) AS ?a) (MIN(?v) AS ?mn) (MAX(?v) AS ?mx) WHERE { ?s <p> ?v }`,
		`SELECT (SAMPLE(?v) AS ?x) WHERE { ?s <p> ?v } GROUP BY ?s`,
		`SELECT (GROUP_CONCAT(?v ; SEPARATOR = ", ") AS ?all) WHERE { ?s <p> ?v } GROUP BY ?s`,
	}
	for _, src := range srcs {
		mustParse(t, src)
	}
	q := mustParse(t, `SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`)
	agg, ok := q.Select[0].Expr.(*AggregateExpr)
	if !ok || !agg.Star || agg.Name != "COUNT" {
		t.Fatalf("want COUNT(*), got %#v", q.Select[0].Expr)
	}
}

func TestParseComments(t *testing.T) {
	q := mustParse(t, "SELECT * WHERE { # comment here\n ?s ?p ?o # trailing\n }")
	if len(q.Triples()) != 1 {
		t.Error("comment handling broke triple parse")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * WHERE",
		"SELECT * WHERE {",
		"SELECT * WHERE { ?s ?p }",
		"SELECT * WHERE { ?s ?p ?o ",
		"SELECT WHERE { ?s ?p ?o }",
		"FOO * WHERE { ?s ?p ?o }",
		"SELECT * WHERE { ?s ?p ?o }}",
		"ASK { ?s <p> \"unterminated }",
		"SELECT * WHERE { ?s <p> ?o } LIMIT x",
		"SELECT (COUNT(*) AS) WHERE { ?s ?p ?o }",
		"SELECT * WHERE { FILTER }",
		// The malformed WikiData "Public Art in Paris" situation: missing
		// closing braces.
		"SELECT ?art WHERE { ?art <location> ?p . { SELECT ?p WHERE { ?p <in> <Paris> }",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseVarDollarForm(t *testing.T) {
	q := mustParse(t, "SELECT $x WHERE { $x ?p ?o }")
	if q.Select[0].Var.Value != "x" {
		t.Errorf("$x variable = %v", q.Select[0].Var)
	}
}

func TestParseKeywordCaseInsensitive(t *testing.T) {
	mustParse(t, "sElEcT DiStInCt ?x wHeRe { ?x ?p ?o } oRdEr bY ?x lImIt 3")
}

func TestParseGraphWithVariable(t *testing.T) {
	q := mustParse(t, "SELECT * WHERE { GRAPH ?g { ?s ?p ?o } }")
	grp := q.Where.(*Group)
	g, ok := grp.Elems[0].(*GraphGraph)
	if !ok || !g.Name.IsVar() {
		t.Fatalf("want GRAPH ?g, got %#v", grp.Elems[0])
	}
}

func TestVarsCollection(t *testing.T) {
	q := mustParse(t, `SELECT * WHERE {
		?s <p> ?o .
		OPTIONAL { ?o <q> ?x }
		FILTER (?y > 1)
		BIND (str(?s) AS ?z)
	}`)
	vars := Vars(q.Where)
	for _, v := range []string{"s", "o", "x", "y", "z"} {
		if !vars[v] {
			t.Errorf("missing variable %s in %v", v, vars)
		}
	}
}

func TestProjectedVars(t *testing.T) {
	q := mustParse(t, "SELECT ?a ?b WHERE { ?a <p> ?b . ?b <q> ?c }")
	pv := q.ProjectedVars()
	if !pv["a"] || !pv["b"] || pv["c"] {
		t.Errorf("projected = %v", pv)
	}
	q2 := mustParse(t, "SELECT * WHERE { ?a <p> ?b }")
	pv2 := q2.ProjectedVars()
	if !pv2["a"] || !pv2["b"] {
		t.Errorf("star projected = %v", pv2)
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{
		"SELECT * WHERE { ?s ?p ?o }",
		"SELECT DISTINCT ?s WHERE { ?s <p> ?o . ?o <q> ?z } LIMIT 10 OFFSET 2",
		"ASK { ?x <a>/<b>* ?y }",
		"CONSTRUCT { ?s <p> ?o } WHERE { ?s <q> ?o }",
		"DESCRIBE <http://example.org/thing>",
		"SELECT ?s WHERE { ?s <p> ?o OPTIONAL { ?s <q> ?x } FILTER (?o > 3) }",
		"SELECT * WHERE { { ?s <a> ?o } UNION { ?s <b> ?o } }",
		"SELECT * WHERE { GRAPH <http://g> { ?s ?p ?o } }",
		"SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p HAVING (COUNT(?s) > 1) ORDER BY DESC(?n)",
		"SELECT * WHERE { ?s <p> ?o . MINUS { ?s <bad> ?o } }",
		"SELECT * WHERE { ?s <p> ?o FILTER NOT EXISTS { ?s <q> ?o } }",
		`SELECT * WHERE { ?s <p> "lit"@en . ?s <q> "t"^^<http://www.w3.org/2001/XMLSchema#date> }`,
		"SELECT ?x WHERE { { SELECT ?x WHERE { ?x <p> ?y } LIMIT 3 } }",
		"PREFIX ex: <http://ex/> SELECT * WHERE { ?s ex:p ex:o }",
	}
	for _, src := range srcs {
		q1 := mustParse(t, src)
		text := q1.String()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("round-trip reparse of %q -> %q failed: %v", src, text, err)
		}
		text2 := q2.String()
		if text != text2 {
			t.Errorf("round trip not stable:\n 1: %s\n 2: %s", text, text2)
		}
	}
}

func TestLexerPositions(t *testing.T) {
	_, err := Parse("SELECT *\nWHERE { ?s ?p }")
	if err == nil {
		t.Fatal("want error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Pos.Line)
	}
}

func TestParseNumbersEdgeCases(t *testing.T) {
	// "1." must parse as integer 1 followed by triple terminator dot.
	q := mustParse(t, "SELECT * WHERE { ?s <p> 1. ?s <q> ?o }")
	if got := len(q.Triples()); got != 2 {
		t.Fatalf("triples = %d, want 2", got)
	}
	q2 := mustParse(t, "SELECT * WHERE { ?s <p> .5 }")
	if q2.Triples()[0].O.Value != ".5" {
		t.Errorf("decimal = %q", q2.Triples()[0].O.Value)
	}
}

func TestParseIRIVersusLessThan(t *testing.T) {
	q := mustParse(t, "SELECT * WHERE { ?s <http://ex/p> ?o FILTER (?o < 10) }")
	if len(q.Triples()) != 1 {
		t.Fatal("IRI predicate parse failed")
	}
	grp := q.Where.(*Group)
	f := grp.Elems[1].(*Filter)
	be, ok := f.Constraint.(*BinaryExpr)
	if !ok || be.Op != "<" {
		t.Fatalf("filter = %#v", f.Constraint)
	}
}

func TestParserReuse(t *testing.T) {
	p := &Parser{}
	for i := 0; i < 3; i++ {
		if _, err := p.Parse("SELECT * WHERE { ?s ?p ?o }"); err != nil {
			t.Fatal(err)
		}
	}
	// An error parse must not corrupt subsequent parses.
	if _, err := p.Parse("SELECT * WHERE {"); err == nil {
		t.Fatal("want error")
	}
	if _, err := p.Parse("ASK { ?s ?p ?o }"); err != nil {
		t.Fatal(err)
	}
}
