// Package sparql implements a lexer, parser, abstract syntax tree, and
// serializer for the SPARQL 1.1 query language fragment observed in public
// endpoint query logs.
//
// The package is the foundation of the sparqlog analytics pipeline: every
// statistic reported by the paper "An Analytical Study of Large SPARQL Query
// Logs" (Bonifati, Martens, Timm; VLDB 2017) is a function of the syntax
// trees produced here. The grammar coverage includes all four query types
// (SELECT, ASK, CONSTRUCT, DESCRIBE), group graph patterns with FILTER,
// OPTIONAL, UNION, GRAPH, MINUS, BIND, VALUES, SERVICE and subqueries,
// property paths, expressions with the full operator precedence chain,
// aggregates, and solution modifiers.
package sparql

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds. Keywords are lexed as Ident and resolved case-insensitively
// by the parser, following the SPARQL 1.1 recommendation in which keywords
// are not reserved against prefixed-name local parts.
const (
	EOF TokenKind = iota
	Ident
	IRIRef     // <http://...>
	PName      // prefixed name: foaf:name, or a bare prefix "foaf:"
	Var        // ?x or $x
	BlankNode  // _:b0
	StringLit  // 'x', "x", '''x''', """x"""
	NumberLit  // 42, 3.14, .5, 1e9
	LangTag    // @en
	ANON       // []
	NIL        // ()
	LBrace     // {
	RBrace     // }
	LParen     // (
	RParen     // )
	LBracket   // [
	RBracket   // ]
	Dot        // .
	Semicolon  // ;
	Comma      // ,
	Eq         // =
	Neq        // !=
	Lt         // <
	Gt         // >
	Le         // <=
	Ge         // >=
	AndAnd     // &&
	OrOr       // ||
	Bang       // !
	Plus       // +
	Minus      // -
	Star       // *
	Slash      // /
	Pipe       // |
	Caret      // ^
	CaretCaret // ^^
	Question   // ? (path modifier; distinguished from Var by lookahead)
	A          // the keyword 'a' (rdf:type)
)

var tokenNames = map[TokenKind]string{
	EOF: "EOF", Ident: "identifier", IRIRef: "IRI", PName: "prefixed name",
	Var: "variable", BlankNode: "blank node", StringLit: "string",
	NumberLit: "number", LangTag: "language tag", ANON: "[]", NIL: "()",
	LBrace: "{", RBrace: "}", LParen: "(", RParen: ")", LBracket: "[",
	RBracket: "]", Dot: ".", Semicolon: ";", Comma: ",", Eq: "=", Neq: "!=",
	Lt: "<", Gt: ">", Le: "<=", Ge: ">=", AndAnd: "&&", OrOr: "||",
	Bang: "!", Plus: "+", Minus: "-", Star: "*", Slash: "/", Pipe: "|",
	Caret: "^", CaretCaret: "^^", Question: "?", A: "a",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is a single lexical unit with its source position.
type Token struct {
	Kind TokenKind
	// Text is the token's surface form. For IRIRef the angle brackets are
	// stripped; for Var the leading ? or $ is stripped; for StringLit the
	// quotes are stripped and escapes are decoded; for LangTag the @ is
	// stripped.
	Text string
	Pos  Position
}

// Position locates a token in the input.
type Position struct {
	Offset int // byte offset, 0-based
	Line   int // 1-based
	Col    int // 1-based, in bytes
}

// String renders the position as "line:col".
func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// SyntaxError describes a lexical or grammatical error with its position.
type SyntaxError struct {
	Pos Position
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sparql: syntax error at %s: %s", e.Pos, e.Msg)
}

// fmtSprintf is aliased so the lexer's hot path can format errors without
// importing fmt itself.
var fmtSprintf = fmt.Sprintf
