package sparql

import "testing"

func fpOf(t *testing.T, src string) string {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Fingerprint(q)
}

func TestFingerprintVariableRenaming(t *testing.T) {
	a := fpOf(t, "SELECT ?x WHERE { ?x <p> ?y . ?y <q> ?z }")
	b := fpOf(t, "SELECT ?subject WHERE { ?subject <p> ?o . ?o <q> ?val }")
	if a != b {
		t.Errorf("alpha-equivalent queries differ:\n a: %s\n b: %s", a, b)
	}
	// Different structure must differ.
	c := fpOf(t, "SELECT ?x WHERE { ?x <p> ?y . ?x <q> ?z }")
	if a == c {
		t.Error("structurally different queries must not collide")
	}
}

func TestFingerprintPrefixExpansion(t *testing.T) {
	a := fpOf(t, "PREFIX ex: <http://ex/> SELECT * WHERE { ?s ex:p ?o }")
	b := fpOf(t, "SELECT * WHERE { ?s <http://ex/p> ?o }")
	if a != b {
		t.Errorf("prefix expansion failed:\n a: %s\n b: %s", a, b)
	}
	// A different prefix name binding the same IRI is also equal.
	c := fpOf(t, "PREFIX zz: <http://ex/> SELECT * WHERE { ?s zz:p ?o }")
	if a != c {
		t.Errorf("prefix name should not matter:\n a: %s\n c: %s", a, c)
	}
}

func TestFingerprintWhitespaceInsensitive(t *testing.T) {
	a := fpOf(t, "SELECT ?x WHERE { ?x <p> ?y }")
	b := fpOf(t, "SELECT   ?x\nWHERE {\n\t?x   <p>\t?y\n}")
	if a != b {
		t.Error("whitespace must not affect the fingerprint")
	}
}

func TestFingerprintBlankNodes(t *testing.T) {
	a := fpOf(t, "SELECT * WHERE { _:a <p> ?x }")
	b := fpOf(t, "SELECT * WHERE { _:zzz <p> ?y }")
	if a != b {
		t.Error("blank node labels must not matter")
	}
}

func TestFingerprintCoversClauses(t *testing.T) {
	// Smoke over feature-rich queries: fingerprints must be stable
	// (computing twice gives the same string) and parseable.
	srcs := []string{
		`PREFIX ex: <http://ex/> SELECT DISTINCT ?a (COUNT(?b) AS ?n)
		 WHERE { ?a ex:p ?b OPTIONAL { ?b ex:q ?c } FILTER(?c > 3)
		 { ?a ex:r ?d } UNION { ?a ex:s ?d } MINUS { ?a ex:t ?x }
		 BIND(str(?a) AS ?w) VALUES ?d { ex:v1 ex:v2 } }
		 GROUP BY ?a HAVING (COUNT(?b) > 1) ORDER BY DESC(?n) LIMIT 5 OFFSET 2`,
		`ASK { ?x <http://ex/a>/^<http://ex/b>* ?y FILTER NOT EXISTS { ?x <http://ex/c> ?z } }`,
		`PREFIX ex: <http://ex/> CONSTRUCT { ?s ex:p ?o } WHERE { ?s ex:q ?o }`,
		`DESCRIBE ?x WHERE { ?x <http://ex/a> ?y } LIMIT 3`,
		`SELECT ?s WHERE { { SELECT ?s WHERE { ?s <http://ex/p> ?q } LIMIT 2 } }`,
	}
	for _, src := range srcs {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		f1 := Fingerprint(q)
		f2 := Fingerprint(q)
		if f1 != f2 {
			t.Errorf("fingerprint not deterministic for %s", src)
		}
		if _, err := Parse(f1); err != nil {
			t.Errorf("fingerprint is not valid SPARQL: %v\n%s", err, f1)
		}
	}
}

func TestFingerprintDoesNotMutateOriginal(t *testing.T) {
	q, err := Parse("PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:p ?y }")
	if err != nil {
		t.Fatal(err)
	}
	before := q.String()
	Fingerprint(q)
	if q.String() != before {
		t.Error("Fingerprint must not mutate the query")
	}
}
