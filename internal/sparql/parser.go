package sparql

import (
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser for the SPARQL 1.1 query language.
// A Parser may be reused across queries via Parse; zero value is not usable,
// construct with NewParser or use the package-level Parse.
type Parser struct {
	lex      *Lexer
	tok      Token // current token
	ahead    Token // one-token lookahead, valid when hasAhead
	hasAhead bool
	blankSeq int
}

// Parse parses a single SPARQL query.
func Parse(src string) (*Query, error) {
	p := &Parser{}
	return p.Parse(src)
}

// Parse parses src as one complete query, resetting parser state.
func (p *Parser) Parse(src string) (*Query, error) {
	p.lex = NewLexer(src)
	p.hasAhead = false
	p.blankSeq = 0
	if err := p.next(); err != nil {
		return nil, err
	}
	q, err := p.parseQueryUnit()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != EOF {
		return nil, p.errorf("unexpected %s %q after end of query", p.tok.Kind, p.tok.Text)
	}
	return q, nil
}

func (p *Parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.tok.Pos, Msg: fmtSprintf(format, args...)}
}

func (p *Parser) next() error {
	if p.hasAhead {
		p.tok = p.ahead
		p.hasAhead = false
		return nil
	}
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) peek() (Token, error) {
	if !p.hasAhead {
		t, err := p.lex.Next()
		if err != nil {
			return Token{}, err
		}
		p.ahead = t
		p.hasAhead = true
	}
	return p.ahead, nil
}

func (p *Parser) expect(kind TokenKind) error {
	if p.tok.Kind != kind {
		return p.errorf("expected %s, found %s %q", kind, p.tok.Kind, p.tok.Text)
	}
	return p.next()
}

// isKw reports whether the current token is the given keyword
// (case-insensitive).
func (p *Parser) isKw(kw string) bool {
	return p.tok.Kind == Ident && strings.EqualFold(p.tok.Text, kw)
}

// acceptKw consumes the keyword if present.
func (p *Parser) acceptKw(kw string) (bool, error) {
	if p.isKw(kw) {
		return true, p.next()
	}
	return false, nil
}

func (p *Parser) expectKw(kw string) error {
	ok, err := p.acceptKw(kw)
	if err != nil {
		return err
	}
	if !ok {
		return p.errorf("expected keyword %s, found %q", kw, p.tok.Text)
	}
	return nil
}

func (p *Parser) freshBlank() Term {
	p.blankSeq++
	return Term{Kind: TermBlank, Value: "gen" + strconv.Itoa(p.blankSeq)}
}

// ---------- Query unit ----------

func (p *Parser) parseQueryUnit() (*Query, error) {
	q := &Query{Mods: Modifiers{Limit: -1, Offset: -1}}
	if err := p.parsePrologue(q); err != nil {
		return nil, err
	}
	switch {
	case p.isKw("SELECT"):
		if err := p.parseSelectQuery(q); err != nil {
			return nil, err
		}
	case p.isKw("ASK"):
		if err := p.parseAskQuery(q); err != nil {
			return nil, err
		}
	case p.isKw("CONSTRUCT"):
		if err := p.parseConstructQuery(q); err != nil {
			return nil, err
		}
	case p.isKw("DESCRIBE"):
		if err := p.parseDescribeQuery(q); err != nil {
			return nil, err
		}
	default:
		return nil, p.errorf("expected SELECT, ASK, CONSTRUCT, or DESCRIBE, found %q", p.tok.Text)
	}
	// Trailing VALUES clause.
	if p.isKw("VALUES") {
		vd, err := p.parseInlineData()
		if err != nil {
			return nil, err
		}
		q.TrailingValues = vd
	}
	return q, nil
}

func (p *Parser) parsePrologue(q *Query) error {
	for {
		switch {
		case p.isKw("BASE"):
			if err := p.next(); err != nil {
				return err
			}
			if p.tok.Kind != IRIRef {
				return p.errorf("expected IRI after BASE")
			}
			q.Prologue.Base = p.tok.Text
			if err := p.next(); err != nil {
				return err
			}
		case p.isKw("PREFIX"):
			if err := p.next(); err != nil {
				return err
			}
			if p.tok.Kind != PName {
				return p.errorf("expected prefix name after PREFIX")
			}
			name := strings.TrimSuffix(p.tok.Text, ":")
			if i := strings.IndexByte(p.tok.Text, ':'); i >= 0 {
				name = p.tok.Text[:i]
			}
			if err := p.next(); err != nil {
				return err
			}
			if p.tok.Kind != IRIRef {
				return p.errorf("expected IRI in PREFIX declaration")
			}
			q.Prologue.Prefixes = append(q.Prologue.Prefixes, PrefixDecl{Name: name, IRI: p.tok.Text})
			if err := p.next(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

func (p *Parser) parseSelectQuery(q *Query) error {
	q.Type = SelectQuery
	if err := p.parseSelectClause(q); err != nil {
		return err
	}
	if err := p.parseDatasetClauses(q); err != nil {
		return err
	}
	if err := p.parseWhereClause(q); err != nil {
		return err
	}
	return p.parseSolutionModifier(&q.Mods)
}

func (p *Parser) parseSelectClause(q *Query) error {
	if err := p.expectKw("SELECT"); err != nil {
		return err
	}
	if ok, err := p.acceptKw("DISTINCT"); err != nil {
		return err
	} else if ok {
		q.Distinct = true
	} else if ok, err := p.acceptKw("REDUCED"); err != nil {
		return err
	} else if ok {
		q.Reduced = true
	}
	if p.tok.Kind == Star {
		q.SelectStar = true
		return p.next()
	}
	for {
		switch p.tok.Kind {
		case Var:
			q.Select = append(q.Select, SelectItem{Var: Variable(p.tok.Text)})
			if err := p.next(); err != nil {
				return err
			}
		case LParen:
			if err := p.next(); err != nil {
				return err
			}
			e, err := p.parseExpression()
			if err != nil {
				return err
			}
			if err := p.expectKw("AS"); err != nil {
				return err
			}
			if p.tok.Kind != Var {
				return p.errorf("expected variable after AS")
			}
			v := Variable(p.tok.Text)
			if err := p.next(); err != nil {
				return err
			}
			if err := p.expect(RParen); err != nil {
				return err
			}
			q.Select = append(q.Select, SelectItem{Var: v, Expr: e})
		default:
			if len(q.Select) == 0 {
				return p.errorf("expected variable or expression in SELECT clause, found %q", p.tok.Text)
			}
			return nil
		}
	}
}

func (p *Parser) parseAskQuery(q *Query) error {
	q.Type = AskQuery
	if err := p.expectKw("ASK"); err != nil {
		return err
	}
	if err := p.parseDatasetClauses(q); err != nil {
		return err
	}
	if err := p.parseWhereClause(q); err != nil {
		return err
	}
	return p.parseSolutionModifier(&q.Mods)
}

func (p *Parser) parseConstructQuery(q *Query) error {
	q.Type = ConstructQuery
	if err := p.expectKw("CONSTRUCT"); err != nil {
		return err
	}
	if p.tok.Kind == LBrace {
		// Full form: CONSTRUCT { template } WHERE { pattern }.
		tmpl, err := p.parseConstructTemplate()
		if err != nil {
			return err
		}
		q.Template = tmpl
		if err := p.parseDatasetClauses(q); err != nil {
			return err
		}
		if err := p.parseWhereClause(q); err != nil {
			return err
		}
		return p.parseSolutionModifier(&q.Mods)
	}
	// Abbreviated form: CONSTRUCT WHERE { triples }.
	if err := p.parseDatasetClauses(q); err != nil {
		return err
	}
	q.ConstructWhere = true
	if err := p.expectKw("WHERE"); err != nil {
		return err
	}
	grp, err := p.parseGroupGraphPattern()
	if err != nil {
		return err
	}
	q.Where = grp
	for _, el := range grp.Elems {
		if t, ok := el.(*TriplePattern); ok {
			q.Template = append(q.Template, t)
		}
	}
	return p.parseSolutionModifier(&q.Mods)
}

func (p *Parser) parseConstructTemplate() ([]*TriplePattern, error) {
	grp, err := p.parseGroupGraphPattern()
	if err != nil {
		return nil, err
	}
	var out []*TriplePattern
	for _, el := range grp.Elems {
		switch t := el.(type) {
		case *TriplePattern:
			out = append(out, t)
		default:
			return nil, p.errorf("CONSTRUCT template may only contain triples")
		}
	}
	return out, nil
}

func (p *Parser) parseDescribeQuery(q *Query) error {
	q.Type = DescribeQuery
	if err := p.expectKw("DESCRIBE"); err != nil {
		return err
	}
	if p.tok.Kind == Star {
		q.DescribeStar = true
		if err := p.next(); err != nil {
			return err
		}
	} else {
		for {
			switch p.tok.Kind {
			case Var:
				q.DescribeTerms = append(q.DescribeTerms, Variable(p.tok.Text))
			case IRIRef:
				q.DescribeTerms = append(q.DescribeTerms, IRI(p.tok.Text))
			case PName:
				q.DescribeTerms = append(q.DescribeTerms, Term{Kind: TermIRI, Value: p.tok.Text, PrefixedForm: true})
			case A:
				q.DescribeTerms = append(q.DescribeTerms, IRI(RDFType))
			default:
				if len(q.DescribeTerms) == 0 {
					return p.errorf("expected variable, IRI, or * after DESCRIBE")
				}
				goto doneTerms
			}
			if err := p.next(); err != nil {
				return err
			}
		}
	}
doneTerms:
	if err := p.parseDatasetClauses(q); err != nil {
		return err
	}
	// WHERE clause is optional for DESCRIBE.
	if p.isKw("WHERE") || p.tok.Kind == LBrace {
		if err := p.parseWhereClause(q); err != nil {
			return err
		}
	}
	return p.parseSolutionModifier(&q.Mods)
}

func (p *Parser) parseDatasetClauses(q *Query) error {
	for p.isKw("FROM") {
		if err := p.next(); err != nil {
			return err
		}
		named := false
		if ok, err := p.acceptKw("NAMED"); err != nil {
			return err
		} else if ok {
			named = true
		}
		t, err := p.parseIRITerm()
		if err != nil {
			return err
		}
		q.Datasets = append(q.Datasets, DatasetClause{Named: named, IRI: t})
	}
	return nil
}

func (p *Parser) parseIRITerm() (Term, error) {
	switch p.tok.Kind {
	case IRIRef:
		t := IRI(p.tok.Text)
		return t, p.next()
	case PName:
		t := Term{Kind: TermIRI, Value: p.tok.Text, PrefixedForm: true}
		return t, p.next()
	}
	return Term{}, p.errorf("expected IRI, found %q", p.tok.Text)
}

func (p *Parser) parseWhereClause(q *Query) error {
	if _, err := p.acceptKw("WHERE"); err != nil {
		return err
	}
	grp, err := p.parseGroupGraphPattern()
	if err != nil {
		return err
	}
	q.Where = grp
	return nil
}

// ---------- Group graph patterns ----------

func (p *Parser) parseGroupGraphPattern() (*Group, error) {
	if err := p.expect(LBrace); err != nil {
		return nil, err
	}
	grp := &Group{}
	// Subquery form: '{' SELECT ... '}'.
	if p.isKw("SELECT") {
		sub := &Query{Mods: Modifiers{Limit: -1, Offset: -1}}
		if err := p.parseSelectQuery(sub); err != nil {
			return nil, err
		}
		if p.isKw("VALUES") {
			vd, err := p.parseInlineData()
			if err != nil {
				return nil, err
			}
			sub.TrailingValues = vd
		}
		grp.Elems = append(grp.Elems, &SubSelect{Query: sub})
		if err := p.expect(RBrace); err != nil {
			return nil, err
		}
		return grp, nil
	}
	for {
		if p.tok.Kind == RBrace {
			return grp, p.next()
		}
		if p.tok.Kind == EOF {
			return nil, p.errorf("unexpected end of input in group graph pattern")
		}
		el, err := p.parseGroupElement(grp)
		if err != nil {
			return nil, err
		}
		if el != nil {
			grp.Elems = append(grp.Elems, el)
		}
		// An optional dot separates elements.
		if p.tok.Kind == Dot {
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
}

// parseGroupElement parses one element of a group graph pattern. Triple
// blocks may expand blank-node property lists into multiple triples, which
// are appended directly to grp; in that case the primary pattern is still
// returned and auxiliary triples were already appended.
func (p *Parser) parseGroupElement(grp *Group) (Pattern, error) {
	switch {
	case p.isKw("OPTIONAL"):
		if err := p.next(); err != nil {
			return nil, err
		}
		inner, err := p.parseGroupGraphPattern()
		if err != nil {
			return nil, err
		}
		return &Optional{Inner: inner}, nil
	case p.isKw("MINUS"):
		if err := p.next(); err != nil {
			return nil, err
		}
		inner, err := p.parseGroupGraphPattern()
		if err != nil {
			return nil, err
		}
		return &MinusGraph{Inner: inner}, nil
	case p.isKw("GRAPH"):
		if err := p.next(); err != nil {
			return nil, err
		}
		var name Term
		if p.tok.Kind == Var {
			name = Variable(p.tok.Text)
			if err := p.next(); err != nil {
				return nil, err
			}
		} else {
			t, err := p.parseIRITerm()
			if err != nil {
				return nil, err
			}
			name = t
		}
		inner, err := p.parseGroupGraphPattern()
		if err != nil {
			return nil, err
		}
		return &GraphGraph{Name: name, Inner: inner}, nil
	case p.isKw("SERVICE"):
		if err := p.next(); err != nil {
			return nil, err
		}
		silent := false
		if ok, err := p.acceptKw("SILENT"); err != nil {
			return nil, err
		} else if ok {
			silent = true
		}
		var name Term
		if p.tok.Kind == Var {
			name = Variable(p.tok.Text)
			if err := p.next(); err != nil {
				return nil, err
			}
		} else {
			t, err := p.parseIRITerm()
			if err != nil {
				return nil, err
			}
			name = t
		}
		inner, err := p.parseGroupGraphPattern()
		if err != nil {
			return nil, err
		}
		return &ServiceGraph{Silent: silent, Name: name, Inner: inner}, nil
	case p.isKw("FILTER"):
		if err := p.next(); err != nil {
			return nil, err
		}
		c, err := p.parseConstraint()
		if err != nil {
			return nil, err
		}
		return &Filter{Constraint: c}, nil
	case p.isKw("BIND"):
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expect(LParen); err != nil {
			return nil, err
		}
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		if p.tok.Kind != Var {
			return nil, p.errorf("expected variable after AS in BIND")
		}
		v := Variable(p.tok.Text)
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expect(RParen); err != nil {
			return nil, err
		}
		return &Bind{Expr: e, Var: v}, nil
	case p.isKw("VALUES"):
		return p.parseInlineData()
	case p.tok.Kind == LBrace:
		// GroupOrUnionGraphPattern.
		left, err := p.parseGroupGraphPattern()
		if err != nil {
			return nil, err
		}
		var node Pattern = left
		for p.isKw("UNION") {
			if err := p.next(); err != nil {
				return nil, err
			}
			right, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			node = &Union{Left: node, Right: right}
		}
		// A braced subquery collapses to the SubSelect itself, so that
		// serialization (which always braces subqueries) round-trips
		// without accumulating nesting.
		if g, ok := node.(*Group); ok && len(g.Elems) == 1 {
			if ss, ok := g.Elems[0].(*SubSelect); ok {
				return ss, nil
			}
		}
		return node, nil
	default:
		// TriplesSameSubjectPath.
		return p.parseTriplesSameSubject(grp)
	}
}

// parseTriplesSameSubject parses one subject with its property list,
// appending all but the first resulting pattern to grp and returning the
// first.
func (p *Parser) parseTriplesSameSubject(grp *Group) (Pattern, error) {
	var pending []Pattern
	subj, err := p.parseGraphNode(&pending)
	if err != nil {
		return nil, err
	}
	// A bare blank-node property list may have an empty property list
	// after it: "[ :p :o ] ." is a valid triples block.
	if len(pending) > 0 && !p.verbFollows() {
		first := pending[0]
		grp.Elems = append(grp.Elems, pending[1:]...)
		return first, nil
	}
	pats, err := p.parsePropertyList(subj)
	if err != nil {
		return nil, err
	}
	all := append(pending, pats...)
	if len(all) == 0 {
		return nil, p.errorf("expected predicate after subject")
	}
	grp.Elems = append(grp.Elems, all[1:]...)
	return all[0], nil
}

// verbFollows reports whether the current token can start a verb (predicate
// or path).
func (p *Parser) verbFollows() bool {
	switch p.tok.Kind {
	case Var, IRIRef, PName, A, Caret, Bang, LParen:
		return true
	}
	return false
}

// parsePropertyList parses verb objectList (';' (verb objectList)?)*.
func (p *Parser) parsePropertyList(subj Term) ([]Pattern, error) {
	var out []Pattern
	for {
		isVar := p.tok.Kind == Var
		var predVar Term
		var path PathExpr
		if isVar {
			predVar = Variable(p.tok.Text)
			if err := p.next(); err != nil {
				return nil, err
			}
		} else {
			px, err := p.parsePath()
			if err != nil {
				return nil, err
			}
			path = px
		}
		// Object list.
		for {
			var pending []Pattern
			obj, err := p.parseGraphNode(&pending)
			if err != nil {
				return nil, err
			}
			if isVar {
				out = append(out, &TriplePattern{S: subj, P: predVar, O: obj})
			} else if iri, ok := path.(*PathIRI); ok {
				out = append(out, &TriplePattern{S: subj, P: Term{Kind: TermIRI, Value: iri.IRI, PrefixedForm: strings.Contains(iri.IRI, ":") && !strings.Contains(iri.IRI, "://")}, O: obj})
			} else {
				out = append(out, &PathPattern{S: subj, Path: path, O: obj})
			}
			out = append(out, pending...)
			if p.tok.Kind == Comma {
				if err := p.next(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if p.tok.Kind == Semicolon {
			if err := p.next(); err != nil {
				return nil, err
			}
			// Trailing semicolons are permitted.
			for p.tok.Kind == Semicolon {
				if err := p.next(); err != nil {
					return nil, err
				}
			}
			if !p.verbFollows() {
				return out, nil
			}
			continue
		}
		return out, nil
	}
}

// parseGraphNode parses a term in subject or object position, including
// blank-node property lists and collections, whose expansion triples are
// appended to pending.
func (p *Parser) parseGraphNode(pending *[]Pattern) (Term, error) {
	switch p.tok.Kind {
	case Var:
		t := Variable(p.tok.Text)
		return t, p.next()
	case IRIRef:
		t := IRI(p.tok.Text)
		return t, p.next()
	case PName:
		t := Term{Kind: TermIRI, Value: p.tok.Text, PrefixedForm: true}
		return t, p.next()
	case BlankNode:
		t := Term{Kind: TermBlank, Value: p.tok.Text}
		return t, p.next()
	case ANON:
		return p.freshBlank(), p.next()
	case StringLit:
		return p.parseRDFLiteral()
	case NumberLit:
		t := Term{Kind: TermLiteral, Value: p.tok.Text, Datatype: numericDatatype(p.tok.Text)}
		return t, p.next()
	case Plus, Minus:
		sign := "-"
		if p.tok.Kind == Plus {
			sign = "+"
		}
		if err := p.next(); err != nil {
			return Term{}, err
		}
		if p.tok.Kind != NumberLit {
			return Term{}, p.errorf("expected number after sign")
		}
		t := Term{Kind: TermLiteral, Value: sign + p.tok.Text, Datatype: numericDatatype(p.tok.Text)}
		return t, p.next()
	case Ident:
		if p.isKw("TRUE") || p.isKw("FALSE") {
			t := Term{Kind: TermLiteral, Value: strings.ToLower(p.tok.Text), Datatype: "http://www.w3.org/2001/XMLSchema#boolean"}
			return t, p.next()
		}
		return Term{}, p.errorf("unexpected keyword %q in triple pattern", p.tok.Text)
	case LBracket:
		// Blank node property list: [ verb objectList ; ... ].
		if err := p.next(); err != nil {
			return Term{}, err
		}
		b := p.freshBlank()
		pats, err := p.parsePropertyList(b)
		if err != nil {
			return Term{}, err
		}
		if err := p.expect(RBracket); err != nil {
			return Term{}, err
		}
		*pending = append(*pending, pats...)
		return b, nil
	case NIL:
		t := Term{Kind: TermIRI, Value: rdfNil}
		return t, p.next()
	case LParen:
		// Collection: ( node1 node2 ... ) expands to rdf:first/rest chains.
		return p.parseCollection(pending)
	}
	return Term{}, p.errorf("expected term, found %s %q", p.tok.Kind, p.tok.Text)
}

const (
	rdfFirst = "http://www.w3.org/1999/02/22-rdf-syntax-ns#first"
	rdfRest  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest"
	rdfNil   = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil"
)

func (p *Parser) parseCollection(pending *[]Pattern) (Term, error) {
	if err := p.expect(LParen); err != nil {
		return Term{}, err
	}
	head := p.freshBlank()
	cur := head
	first := true
	for p.tok.Kind != RParen {
		if p.tok.Kind == EOF {
			return Term{}, p.errorf("unterminated collection")
		}
		if !first {
			next := p.freshBlank()
			*pending = append(*pending, &TriplePattern{S: cur, P: IRI(rdfRest), O: next})
			cur = next
		}
		first = false
		node, err := p.parseGraphNode(pending)
		if err != nil {
			return Term{}, err
		}
		*pending = append(*pending, &TriplePattern{S: cur, P: IRI(rdfFirst), O: node})
	}
	*pending = append(*pending, &TriplePattern{S: cur, P: IRI(rdfRest), O: IRI(rdfNil)})
	return head, p.next()
}

func (p *Parser) parseRDFLiteral() (Term, error) {
	t := Term{Kind: TermLiteral, Value: p.tok.Text}
	if err := p.next(); err != nil {
		return Term{}, err
	}
	switch p.tok.Kind {
	case LangTag:
		t.Lang = p.tok.Text
		return t, p.next()
	case CaretCaret:
		if err := p.next(); err != nil {
			return Term{}, err
		}
		dt, err := p.parseIRITerm()
		if err != nil {
			return Term{}, err
		}
		t.Datatype = dt.Value
		return t, nil
	}
	return t, nil
}

func numericDatatype(text string) string {
	if strings.ContainsAny(text, "eE") {
		return "http://www.w3.org/2001/XMLSchema#double"
	}
	if strings.Contains(text, ".") {
		return "http://www.w3.org/2001/XMLSchema#decimal"
	}
	return "http://www.w3.org/2001/XMLSchema#integer"
}

// ---------- Property paths ----------

// parsePath parses PathAlternative.
func (p *Parser) parsePath() (PathExpr, error) {
	first, err := p.parsePathSequence()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != Pipe {
		return first, nil
	}
	parts := []PathExpr{first}
	for p.tok.Kind == Pipe {
		if err := p.next(); err != nil {
			return nil, err
		}
		part, err := p.parsePathSequence()
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
	}
	return &PathAlt{Parts: parts}, nil
}

func (p *Parser) parsePathSequence() (PathExpr, error) {
	first, err := p.parsePathEltOrInverse()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != Slash {
		return first, nil
	}
	parts := []PathExpr{first}
	for p.tok.Kind == Slash {
		if err := p.next(); err != nil {
			return nil, err
		}
		part, err := p.parsePathEltOrInverse()
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
	}
	return &PathSeq{Parts: parts}, nil
}

func (p *Parser) parsePathEltOrInverse() (PathExpr, error) {
	if p.tok.Kind == Caret {
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parsePathElt()
		if err != nil {
			return nil, err
		}
		return &PathInverse{X: x}, nil
	}
	return p.parsePathElt()
}

func (p *Parser) parsePathElt() (PathExpr, error) {
	prim, err := p.parsePathPrimary()
	if err != nil {
		return nil, err
	}
	switch p.tok.Kind {
	case Star:
		return &PathMod{X: prim, Mod: '*'}, p.next()
	case Plus:
		return &PathMod{X: prim, Mod: '+'}, p.next()
	case Question:
		return &PathMod{X: prim, Mod: '?'}, p.next()
	}
	return prim, nil
}

func (p *Parser) parsePathPrimary() (PathExpr, error) {
	switch p.tok.Kind {
	case IRIRef:
		x := &PathIRI{IRI: p.tok.Text}
		return x, p.next()
	case PName:
		x := &PathIRI{IRI: p.tok.Text}
		return x, p.next()
	case A:
		x := &PathIRI{IRI: RDFType}
		return x, p.next()
	case Bang:
		if err := p.next(); err != nil {
			return nil, err
		}
		return p.parsePathNegatedSet()
	case LParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		inner, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if err := p.expect(RParen); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return nil, p.errorf("expected path primary, found %s %q", p.tok.Kind, p.tok.Text)
}

func (p *Parser) parsePathNegatedSet() (PathExpr, error) {
	one := func() (PathExpr, error) {
		if p.tok.Kind == Caret {
			if err := p.next(); err != nil {
				return nil, err
			}
			switch p.tok.Kind {
			case IRIRef, PName:
				x := &PathInverse{X: &PathIRI{IRI: p.tok.Text}}
				return x, p.next()
			case A:
				x := &PathInverse{X: &PathIRI{IRI: RDFType}}
				return x, p.next()
			}
			return nil, p.errorf("expected IRI after ^ in negated property set")
		}
		switch p.tok.Kind {
		case IRIRef, PName:
			x := &PathIRI{IRI: p.tok.Text}
			return x, p.next()
		case A:
			x := &PathIRI{IRI: RDFType}
			return x, p.next()
		}
		return nil, p.errorf("expected IRI in negated property set")
	}
	if p.tok.Kind == LParen {
		if err := p.next(); err != nil {
			return nil, err
		}
		var set []PathExpr
		if p.tok.Kind != RParen {
			for {
				x, err := one()
				if err != nil {
					return nil, err
				}
				set = append(set, x)
				if p.tok.Kind != Pipe {
					break
				}
				if err := p.next(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expect(RParen); err != nil {
			return nil, err
		}
		return &PathNeg{Set: set}, nil
	}
	x, err := one()
	if err != nil {
		return nil, err
	}
	return &PathNeg{Set: []PathExpr{x}}, nil
}

// ---------- VALUES ----------

func (p *Parser) parseInlineData() (*InlineData, error) {
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	vd := &InlineData{}
	oneVar := false
	switch p.tok.Kind {
	case Var:
		vd.Vars = []Term{Variable(p.tok.Text)}
		oneVar = true
		if err := p.next(); err != nil {
			return nil, err
		}
	case LParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		for p.tok.Kind == Var {
			vd.Vars = append(vd.Vars, Variable(p.tok.Text))
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		if err := p.expect(RParen); err != nil {
			return nil, err
		}
	case NIL:
		if err := p.next(); err != nil {
			return nil, err
		}
	default:
		return nil, p.errorf("expected variable list after VALUES")
	}
	if err := p.expect(LBrace); err != nil {
		return nil, err
	}
	for p.tok.Kind != RBrace {
		if p.tok.Kind == EOF {
			return nil, p.errorf("unterminated VALUES block")
		}
		var row []Term
		var undef []bool
		if oneVar {
			t, u, err := p.parseDataValue()
			if err != nil {
				return nil, err
			}
			row, undef = []Term{t}, []bool{u}
		} else {
			if p.tok.Kind == NIL {
				if err := p.next(); err != nil {
					return nil, err
				}
			} else {
				if err := p.expect(LParen); err != nil {
					return nil, err
				}
				for p.tok.Kind != RParen {
					t, u, err := p.parseDataValue()
					if err != nil {
						return nil, err
					}
					row = append(row, t)
					undef = append(undef, u)
				}
				if err := p.expect(RParen); err != nil {
					return nil, err
				}
			}
		}
		vd.Rows = append(vd.Rows, row)
		vd.Undef = append(vd.Undef, undef)
	}
	return vd, p.next()
}

func (p *Parser) parseDataValue() (Term, bool, error) {
	if p.isKw("UNDEF") {
		return Term{}, true, p.next()
	}
	switch p.tok.Kind {
	case IRIRef:
		t := IRI(p.tok.Text)
		return t, false, p.next()
	case PName:
		t := Term{Kind: TermIRI, Value: p.tok.Text, PrefixedForm: true}
		return t, false, p.next()
	case StringLit:
		t, err := p.parseRDFLiteral()
		return t, false, err
	case NumberLit:
		t := Term{Kind: TermLiteral, Value: p.tok.Text, Datatype: numericDatatype(p.tok.Text)}
		return t, false, p.next()
	case Plus, Minus:
		sign := "-"
		if p.tok.Kind == Plus {
			sign = "+"
		}
		if err := p.next(); err != nil {
			return Term{}, false, err
		}
		if p.tok.Kind != NumberLit {
			return Term{}, false, p.errorf("expected number after sign in VALUES")
		}
		t := Term{Kind: TermLiteral, Value: sign + p.tok.Text, Datatype: numericDatatype(p.tok.Text)}
		return t, false, p.next()
	case Ident:
		if p.isKw("TRUE") || p.isKw("FALSE") {
			t := Term{Kind: TermLiteral, Value: strings.ToLower(p.tok.Text), Datatype: "http://www.w3.org/2001/XMLSchema#boolean"}
			return t, false, p.next()
		}
	}
	return Term{}, false, p.errorf("expected data value in VALUES, found %q", p.tok.Text)
}

// ---------- Solution modifiers ----------

func (p *Parser) parseSolutionModifier(m *Modifiers) error {
	// GROUP BY.
	if p.isKw("GROUP") {
		if err := p.next(); err != nil {
			return err
		}
		if err := p.expectKw("BY"); err != nil {
			return err
		}
		for {
			gk, ok, err := p.parseGroupKey()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			m.GroupBy = append(m.GroupBy, gk)
		}
		if len(m.GroupBy) == 0 {
			return p.errorf("expected grouping key after GROUP BY")
		}
	}
	// HAVING.
	if p.isKw("HAVING") {
		if err := p.next(); err != nil {
			return err
		}
		for {
			c, err := p.parseConstraint()
			if err != nil {
				return err
			}
			m.Having = append(m.Having, c)
			if p.tok.Kind != LParen && !p.builtinFollows() {
				break
			}
		}
	}
	// ORDER BY.
	if p.isKw("ORDER") {
		if err := p.next(); err != nil {
			return err
		}
		if err := p.expectKw("BY"); err != nil {
			return err
		}
		for {
			ok, err := p.parseOrderKey(m)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
		}
		if len(m.OrderBy) == 0 {
			return p.errorf("expected ordering key after ORDER BY")
		}
	}
	// LIMIT / OFFSET in either order.
	for {
		switch {
		case p.isKw("LIMIT") && !m.HasLimit:
			if err := p.next(); err != nil {
				return err
			}
			v, err := p.parseNonNegInt()
			if err != nil {
				return err
			}
			m.Limit, m.HasLimit = v, true
		case p.isKw("OFFSET") && !m.HasOffset:
			if err := p.next(); err != nil {
				return err
			}
			v, err := p.parseNonNegInt()
			if err != nil {
				return err
			}
			m.Offset, m.HasOffset = v, true
		default:
			return nil
		}
	}
}

func (p *Parser) parseNonNegInt() (int64, error) {
	if p.tok.Kind != NumberLit {
		return 0, p.errorf("expected integer, found %q", p.tok.Text)
	}
	v, err := strconv.ParseInt(p.tok.Text, 10, 64)
	if err != nil {
		return 0, p.errorf("bad integer %q", p.tok.Text)
	}
	return v, p.next()
}

func (p *Parser) parseGroupKey() (GroupKey, bool, error) {
	switch {
	case p.tok.Kind == Var:
		gk := GroupKey{Expr: &TermExpr{Term: Variable(p.tok.Text)}}
		return gk, true, p.next()
	case p.tok.Kind == LParen:
		if err := p.next(); err != nil {
			return GroupKey{}, false, err
		}
		e, err := p.parseExpression()
		if err != nil {
			return GroupKey{}, false, err
		}
		gk := GroupKey{Expr: e}
		if ok, err := p.acceptKw("AS"); err != nil {
			return GroupKey{}, false, err
		} else if ok {
			if p.tok.Kind != Var {
				return GroupKey{}, false, p.errorf("expected variable after AS")
			}
			gk.Var = Variable(p.tok.Text)
			gk.AsVar = true
			if err := p.next(); err != nil {
				return GroupKey{}, false, err
			}
		}
		if err := p.expect(RParen); err != nil {
			return GroupKey{}, false, err
		}
		return gk, true, nil
	case p.builtinFollows():
		e, err := p.parseBuiltInOrFunction()
		if err != nil {
			return GroupKey{}, false, err
		}
		return GroupKey{Expr: e}, true, nil
	case p.tok.Kind == IRIRef || p.tok.Kind == PName:
		e, err := p.parseIRIOrFunction()
		if err != nil {
			return GroupKey{}, false, err
		}
		return GroupKey{Expr: e}, true, nil
	}
	return GroupKey{}, false, nil
}

func (p *Parser) parseOrderKey(m *Modifiers) (bool, error) {
	switch {
	case p.isKw("ASC"), p.isKw("DESC"):
		desc := p.isKw("DESC")
		if err := p.next(); err != nil {
			return false, err
		}
		if p.tok.Kind != LParen {
			return false, p.errorf("expected ( after ASC/DESC")
		}
		if err := p.next(); err != nil {
			return false, err
		}
		e, err := p.parseExpression()
		if err != nil {
			return false, err
		}
		if err := p.expect(RParen); err != nil {
			return false, err
		}
		m.OrderBy = append(m.OrderBy, OrderKey{Desc: desc, Explicit: true, Expr: e})
		return true, nil
	case p.tok.Kind == Var:
		m.OrderBy = append(m.OrderBy, OrderKey{Expr: &TermExpr{Term: Variable(p.tok.Text)}})
		return true, p.next()
	case p.tok.Kind == LParen:
		if err := p.next(); err != nil {
			return false, err
		}
		e, err := p.parseExpression()
		if err != nil {
			return false, err
		}
		if err := p.expect(RParen); err != nil {
			return false, err
		}
		m.OrderBy = append(m.OrderBy, OrderKey{Expr: e})
		return true, nil
	case p.builtinFollows():
		e, err := p.parseBuiltInOrFunction()
		if err != nil {
			return false, err
		}
		m.OrderBy = append(m.OrderBy, OrderKey{Expr: e})
		return true, nil
	}
	return false, nil
}

// ---------- Expressions ----------

// parseConstraint parses a FILTER or HAVING constraint: a bracketted
// expression, builtin call, or IRI function call.
func (p *Parser) parseConstraint() (Expr, error) {
	switch {
	case p.tok.Kind == LParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	case p.tok.Kind == IRIRef || p.tok.Kind == PName:
		return p.parseIRIOrFunction()
	case p.builtinFollows():
		return p.parseBuiltInOrFunction()
	}
	return nil, p.errorf("expected filter constraint, found %q", p.tok.Text)
}

func (p *Parser) parseExpression() (Expr, error) {
	return p.parseOrExpr()
}

func (p *Parser) parseOrExpr() (Expr, error) {
	l, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == OrOr {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAndExpr() (Expr, error) {
	l, err := p.parseRelExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == AndAnd {
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseRelExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseRelExpr() (Expr, error) {
	l, err := p.parseAddExpr()
	if err != nil {
		return nil, err
	}
	var op string
	switch p.tok.Kind {
	case Eq:
		op = "="
	case Neq:
		op = "!="
	case Lt:
		op = "<"
	case Gt:
		op = ">"
	case Le:
		op = "<="
	case Ge:
		op = ">="
	default:
		if p.isKw("IN") {
			if err := p.next(); err != nil {
				return nil, err
			}
			list, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			return &InExpr{X: l, List: list}, nil
		}
		if p.isKw("NOT") {
			if err := p.next(); err != nil {
				return nil, err
			}
			if err := p.expectKw("IN"); err != nil {
				return nil, err
			}
			list, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			return &InExpr{X: l, Not: true, List: list}, nil
		}
		return l, nil
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	r, err := p.parseAddExpr()
	if err != nil {
		return nil, err
	}
	return &BinaryExpr{Op: op, L: l, R: r}, nil
}

func (p *Parser) parseExprList() ([]Expr, error) {
	if p.tok.Kind == NIL {
		return nil, p.next()
	}
	if err := p.expect(LParen); err != nil {
		return nil, err
	}
	var out []Expr
	for {
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if p.tok.Kind == Comma {
			if err := p.next(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	return out, p.expect(RParen)
}

func (p *Parser) parseAddExpr() (Expr, error) {
	l, err := p.parseMulExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == Plus || p.tok.Kind == Minus {
		op := "+"
		if p.tok.Kind == Minus {
			op = "-"
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseMulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseMulExpr() (Expr, error) {
	l, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == Star || p.tok.Kind == Slash {
		op := "*"
		if p.tok.Kind == Slash {
			op = "/"
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseUnaryExpr() (Expr, error) {
	switch p.tok.Kind {
	case Bang:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "!", X: x}, nil
	case Minus:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	case Plus:
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "+", X: x}, nil
	}
	return p.parsePrimaryExpr()
}

func (p *Parser) parsePrimaryExpr() (Expr, error) {
	switch p.tok.Kind {
	case LParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		return e, p.expect(RParen)
	case Var:
		e := &TermExpr{Term: Variable(p.tok.Text)}
		return e, p.next()
	case IRIRef, PName:
		return p.parseIRIOrFunction()
	case StringLit:
		t, err := p.parseRDFLiteral()
		if err != nil {
			return nil, err
		}
		return &TermExpr{Term: t}, nil
	case NumberLit:
		e := &TermExpr{Term: Term{Kind: TermLiteral, Value: p.tok.Text, Datatype: numericDatatype(p.tok.Text)}}
		return e, p.next()
	case Ident:
		if p.isKw("TRUE") || p.isKw("FALSE") {
			e := &TermExpr{Term: Term{Kind: TermLiteral, Value: strings.ToLower(p.tok.Text), Datatype: "http://www.w3.org/2001/XMLSchema#boolean"}}
			return e, p.next()
		}
		return p.parseBuiltInOrFunction()
	}
	return nil, p.errorf("expected expression, found %s %q", p.tok.Kind, p.tok.Text)
}

// parseIRIOrFunction parses an IRI used as an expression atom or as a
// custom function call iri(args).
func (p *Parser) parseIRIOrFunction() (Expr, error) {
	t, err := p.parseIRITerm()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == LParen || p.tok.Kind == NIL {
		args, distinct, err := p.parseArgList()
		if err != nil {
			return nil, err
		}
		return &FuncCall{Name: t.Value, IRICall: true, Args: args, Distinct: distinct}, nil
	}
	return &TermExpr{Term: t}, nil
}

var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true,
	"AVG": true, "SAMPLE": true, "GROUP_CONCAT": true,
}

// reservedKeywords are clause-introducing keywords that must never be
// mistaken for builtin function calls, even when followed by '('.
var reservedKeywords = map[string]bool{
	"SELECT": true, "ASK": true, "CONSTRUCT": true, "DESCRIBE": true,
	"WHERE": true, "FROM": true, "PREFIX": true, "BASE": true,
	"GROUP": true, "HAVING": true, "ORDER": true, "BY": true,
	"LIMIT": true, "OFFSET": true, "VALUES": true, "OPTIONAL": true,
	"UNION": true, "MINUS": true, "GRAPH": true, "SERVICE": true,
	"SILENT": true, "FILTER": true, "BIND": true, "AS": true,
	"ASC": true, "DESC": true, "DISTINCT": true, "REDUCED": true,
	"UNDEF": true, "NAMED": true,
}

// zeroArgBuiltins may be written without parentheses in the wild; the
// SPARQL grammar requires NIL ("()") but logs contain both.
var zeroArgBuiltins = map[string]bool{
	"NOW": true, "RAND": true, "UUID": true, "STRUUID": true, "BNODE": true,
}

// builtinFollows reports whether the current Ident token could begin a
// builtin call, EXISTS pattern, or aggregate.
func (p *Parser) builtinFollows() bool {
	if p.tok.Kind != Ident {
		return false
	}
	up := strings.ToUpper(p.tok.Text)
	switch up {
	case "EXISTS", "NOT":
		return true
	}
	if reservedKeywords[up] {
		return false
	}
	if aggregateNames[up] || zeroArgBuiltins[up] {
		return true
	}
	// Any other identifier followed by '(' is treated as a builtin call.
	t, err := p.peek()
	if err != nil {
		return false
	}
	return t.Kind == LParen || t.Kind == NIL
}

func (p *Parser) parseBuiltInOrFunction() (Expr, error) {
	name := strings.ToUpper(p.tok.Text)
	switch name {
	case "EXISTS":
		if err := p.next(); err != nil {
			return nil, err
		}
		pat, err := p.parseGroupGraphPattern()
		if err != nil {
			return nil, err
		}
		return &ExistsExpr{Pattern: pat}, nil
	case "NOT":
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectKw("EXISTS"); err != nil {
			return nil, err
		}
		pat, err := p.parseGroupGraphPattern()
		if err != nil {
			return nil, err
		}
		return &ExistsExpr{Not: true, Pattern: pat}, nil
	}
	if aggregateNames[name] {
		return p.parseAggregate(name)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	if p.tok.Kind != LParen && p.tok.Kind != NIL {
		if zeroArgBuiltins[name] {
			return &FuncCall{Name: name}, nil
		}
		return nil, p.errorf("expected ( after %s", name)
	}
	args, distinct, err := p.parseArgList()
	if err != nil {
		return nil, err
	}
	return &FuncCall{Name: name, Args: args, Distinct: distinct}, nil
}

func (p *Parser) parseArgList() ([]Expr, bool, error) {
	if p.tok.Kind == NIL {
		return nil, false, p.next()
	}
	if err := p.expect(LParen); err != nil {
		return nil, false, err
	}
	distinct := false
	if ok, err := p.acceptKw("DISTINCT"); err != nil {
		return nil, false, err
	} else if ok {
		distinct = true
	}
	var args []Expr
	if p.tok.Kind != RParen {
		for {
			e, err := p.parseExpression()
			if err != nil {
				return nil, false, err
			}
			args = append(args, e)
			if p.tok.Kind == Comma {
				if err := p.next(); err != nil {
					return nil, false, err
				}
				continue
			}
			break
		}
	}
	return args, distinct, p.expect(RParen)
}

func (p *Parser) parseAggregate(name string) (Expr, error) {
	if err := p.next(); err != nil {
		return nil, err
	}
	if err := p.expect(LParen); err != nil {
		return nil, err
	}
	agg := &AggregateExpr{Name: name}
	if ok, err := p.acceptKw("DISTINCT"); err != nil {
		return nil, err
	} else if ok {
		agg.Distinct = true
	}
	if p.tok.Kind == Star {
		agg.Star = true
		if err := p.next(); err != nil {
			return nil, err
		}
	} else {
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		agg.Arg = e
	}
	// GROUP_CONCAT(expr ; SEPARATOR = "sep").
	if p.tok.Kind == Semicolon {
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expectKw("SEPARATOR"); err != nil {
			return nil, err
		}
		if err := p.expect(Eq); err != nil {
			return nil, err
		}
		if p.tok.Kind != StringLit {
			return nil, p.errorf("expected string separator")
		}
		agg.Separator = p.tok.Text
		agg.HasSep = true
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	return agg, p.expect(RParen)
}
