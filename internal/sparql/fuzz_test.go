package sparql_test

import (
	"testing"

	"sparqlog/internal/sparql"
)

// FuzzParse throws arbitrary input at the parser. The parser must never
// panic, and any query it accepts must survive the serializer round-trip:
// the serialized form re-parses, and serialization is a fixpoint (the
// same property TestGeneratedCorpusRoundTrips checks on generator
// output, here extended to adversarial input).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT ?s WHERE { ?s ?p ?o }",
		"SELECT DISTINCT ?x ?y WHERE { ?x <p> ?y . ?y <q> ?z FILTER(?z > 3) } ORDER BY ?x LIMIT 10 OFFSET 5",
		"ASK { ?x <knows> ?y MINUS { ?x <blocks> ?y } }",
		"PREFIX dbo: <http://dbpedia.org/ontology/> SELECT ?s WHERE { ?s dbo:birthPlace ?o OPTIONAL { ?s dbo:deathPlace ?d } }",
		"CONSTRUCT { ?s <p> ?o } WHERE { ?s <p> ?o }",
		"DESCRIBE <http://example.org/x>",
		"SELECT ?n (COUNT(*) AS ?c) WHERE { { ?a <p> ?n } UNION { ?b <q> ?n } } GROUP BY ?n HAVING (COUNT(*) > 1)",
		"SELECT * WHERE { GRAPH ?g { ?s ?p ?o } FILTER NOT EXISTS { ?s <hidden> true } }",
		"SELECT ?x WHERE { ?x (<a>|<b>)*/^<c> ?y }",
		"SELECT ?x WHERE { ?x !(<a>|<b>) ?y . ?y <p>+ ?z }",
		"SELECT ?x WHERE { VALUES ?x { <a> <b> } SERVICE <http://remote/sparql> { ?x <p> ?y } }",
		"SELECT ?x WHERE { ?x <p> \"lit\"@en ; <q> 42 , 4.2e1 . [] <r> [ <s> ?x ] }",
		"SELECT ?x { { SELECT ?x WHERE { ?x a <C> } LIMIT 1 } BIND(?x AS ?y) }",
		"select?x where{?x<p>?y}",
		"SELECT ?x WHERE { ?x <p> ?y } # trailing comment",
		"PREFIX : <u> ASK { :a :b :c }",
		"SELECT",
		"{}",
		"",
		// The planner's canonicalized-shape corpus: the conjunctive
		// shapes the cost-based planner (internal/plan) caches plans by —
		// star, chain, cycle, snowflake, and the selective-atom-last
		// orders the planner exists to fix. Fuzzing from these shapes
		// exercises the parser on exactly the BGP structures the
		// planner-ordered evaluator rewrites.
		"SELECT * WHERE { ?c <p0> ?a . ?c <p1> ?b . ?c <p2> ?d . ?c <p3> <konst> }",
		"SELECT * WHERE { ?x0 <p0> ?x1 . ?x1 <p1> ?x2 . ?x2 <p2> ?x3 . ?x3 <p3> ?x4 }",
		"ASK { ?x0 <p0> ?x1 . ?x1 <p1> ?x2 . ?x2 <p2> ?x0 }",
		"SELECT * WHERE { ?c <p0> ?a . ?a <p1> ?t . ?c <p2> ?b . ?b <p3> ?u }",
		"SELECT ?p1 ?r WHERE { ?p1 <cites> ?p2 . ?p2 <cites> ?p3 . ?p1 <authoredBy> ?r . ?p1 <publishedIn> <j1> }",
		"SELECT * WHERE { ?s ?p0 ?o . ?o ?p0 ?s }",
		"SELECT * WHERE { <s> <p> <o> . ?x <p> ?y . ?x <q> ?x }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	p := &sparql.Parser{}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := p.Parse(src)
		if err != nil {
			return
		}
		text := q.String()
		q2, err := p.Parse(text)
		if err != nil {
			t.Fatalf("serialized form does not re-parse: %v\noriginal: %q\nserialized: %q", err, src, text)
		}
		if text2 := q2.String(); text2 != text {
			t.Fatalf("serialization is not a fixpoint:\n 1: %q\n 2: %q", text, text2)
		}
	})
}
