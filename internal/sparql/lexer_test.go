package sparql

import "testing"

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	l := NewLexer(src)
	var out []Token
	for {
		tok, err := l.Next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.Kind == EOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestLexKinds(t *testing.T) {
	tests := []struct {
		src  string
		want []TokenKind
	}{
		{"SELECT * WHERE", []TokenKind{Ident, Star, Ident}},
		{"?x $y", []TokenKind{Var, Var}},
		{"<http://ex/a> <urn:x>", []TokenKind{IRIRef, IRIRef}},
		{"foaf:name :bare a", []TokenKind{PName, PName, A}},
		{"_:b1 [] ()", []TokenKind{BlankNode, ANON, NIL}},
		// "( )" and "[ ]" with interior whitespace are NIL and ANON per
		// the SPARQL grammar; non-empty brackets lex as delimiters.
		{"{ } ( ) [ ] . ; ,", []TokenKind{LBrace, RBrace, NIL, ANON, Dot, Semicolon, Comma}},
		{"( ?x ) [ ?y ]", []TokenKind{LParen, Var, RParen, LBracket, Var, RBracket}},
		{"= != < > <= >= && || !", []TokenKind{Eq, Neq, Lt, Gt, Le, Ge, AndAnd, OrOr, Bang}},
		{"+ - * / | ^ ^^", []TokenKind{Plus, Minus, Star, Slash, Pipe, Caret, CaretCaret}},
		{"42 3.14 .5 1e9 1E-4", []TokenKind{NumberLit, NumberLit, NumberLit, NumberLit, NumberLit}},
		{`"str" 'str2' @en-GB`, []TokenKind{StringLit, StringLit, LangTag}},
	}
	for _, tc := range tests {
		toks := lexAll(t, tc.src)
		if len(toks) != len(tc.want) {
			t.Errorf("lex(%q): %d tokens, want %d (%v)", tc.src, len(toks), len(tc.want), toks)
			continue
		}
		for i, k := range tc.want {
			if toks[i].Kind != k {
				t.Errorf("lex(%q)[%d] = %v, want %v", tc.src, i, toks[i].Kind, k)
			}
		}
	}
}

func TestLexIRIVersusLess(t *testing.T) {
	// "< " with space is the operator; "<a>" is an IRI.
	toks := lexAll(t, "?x < 5")
	if toks[1].Kind != Lt {
		t.Errorf("kind = %v, want <", toks[1].Kind)
	}
	toks2 := lexAll(t, "?x <a> ?y")
	if toks2[1].Kind != IRIRef || toks2[1].Text != "a" {
		t.Errorf("tok = %+v, want IRI(a)", toks2[1])
	}
	// "<= " is always the operator.
	toks3 := lexAll(t, "?x <= ?y")
	if toks3[1].Kind != Le {
		t.Errorf("kind = %v, want <=", toks3[1].Kind)
	}
}

func TestLexQuestionAmbiguity(t *testing.T) {
	// Path modifier '?' after an IRI vs. a variable.
	toks := lexAll(t, "<a>? ?x")
	if toks[1].Kind != Question {
		t.Errorf("kind = %v, want bare ?", toks[1].Kind)
	}
	if toks[2].Kind != Var || toks[2].Text != "x" {
		t.Errorf("tok = %+v, want ?x", toks[2])
	}
}

func TestLexUnicodeEscapes(t *testing.T) {
	toks := lexAll(t, `"aéb"`)
	if toks[0].Text != "aéb" {
		t.Errorf("text = %q, want aéb", toks[0].Text)
	}
	toks2 := lexAll(t, `"\U0001F600"`)
	if toks2[0].Text != "😀" {
		t.Errorf("text = %q", toks2[0].Text)
	}
}

func TestLexTrailingDotInPName(t *testing.T) {
	// "foaf:name." — the dot terminates the statement, not the local name.
	toks := lexAll(t, "foaf:name.")
	if len(toks) != 2 || toks[0].Kind != PName || toks[0].Text != "foaf:name" || toks[1].Kind != Dot {
		t.Errorf("toks = %+v", toks)
	}
}

func TestLexComments(t *testing.T) {
	toks := lexAll(t, "SELECT # hi there\n ?x")
	if len(toks) != 2 || toks[1].Kind != Var {
		t.Errorf("toks = %+v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexAll(t, "SELECT\n  ?x")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first pos = %+v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("second pos = %+v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		`"unterminated`,
		`"bad \q escape"`,
		"\"newline\nin string\"",
		"&",
		"@ 5",
	}
	for _, src := range bad {
		l := NewLexer(src)
		var err error
		for {
			var tok Token
			tok, err = l.Next()
			if err != nil || tok.Kind == EOF {
				break
			}
		}
		if err == nil {
			t.Errorf("lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexLongStrings(t *testing.T) {
	toks := lexAll(t, `"""a "quoted" thing
over lines"""`)
	want := "a \"quoted\" thing\nover lines"
	if toks[0].Text != want {
		t.Errorf("text = %q, want %q", toks[0].Text, want)
	}
}
