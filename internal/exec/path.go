package exec

import (
	"sparqlog/internal/pathcomp"
	"sparqlog/internal/rdf"
)

// PathEnd is one endpoint of a path pattern: a variable slot or a
// constant ID (Unbound-as-constant marks a constant absent from the
// dictionary, which matches nothing).
type PathEnd struct {
	IsVar bool
	Slot  int
	ID    rdf.ID
}

// PathVar returns a variable endpoint on slot.
func PathVar(slot int) PathEnd { return PathEnd{IsVar: true, Slot: slot} }

// PathConst returns a constant endpoint; ok=false (a term missing from
// the dictionary) yields the impossible constant.
func PathConst(id rdf.ID, ok bool) PathEnd {
	if !ok {
		return PathEnd{ID: Unbound}
	}
	return PathEnd{ID: id}
}

// pathOp evaluates one compiled property path per input row. The
// compiled engine returns sorted []rdf.ID node sets, which are routed
// straight into the output columns — no string re-resolution of
// intermediate results; only projection pays for text.
type pathOp struct {
	base
	sn *rdf.Snapshot
	in Operator
	pa *pathcomp.Path
	s  PathEnd
	o  PathEnd

	// loops caches the binding-independent ?x path ?x node set.
	loops     []rdf.ID
	loopsDone bool

	// bud, when set, is the row budget shared with this op's clones in
	// sibling parallel worker chains (see exec.Budget).
	bud *Budget

	rowsCum int
	cur     *Batch
	curRow  int
}

// NewPath returns the property-path operator (always row-capped: the
// legacy evaluator bounded path output by MaxRows).
func NewPath(sn *rdf.Snapshot, in Operator, pa *pathcomp.Path, s, o PathEnd) Operator {
	return &pathOp{base: newBase(slotsOf(in)), sn: sn, in: in, pa: pa, s: s, o: o}
}

func (p *pathOp) Reset() {
	p.in.Reset()
	p.rowsCum, p.cur, p.curRow = 0, nil, 0
}

func (p *pathOp) setBudget(b *Budget) { p.bud = b }

func (p *pathOp) Next(c *Ctx) (*Batch, error) {
	for {
		if p.cur == nil || p.curRow >= p.cur.Rows() {
			in, err := p.in.Next(c)
			if err != nil {
				return nil, err
			}
			if in == nil {
				return nil, nil
			}
			p.cur, p.curRow = in, 0
		}
		p.out.Reset()
		for p.curRow < p.cur.Rows() && !p.out.Full() {
			if err := c.Check(63); err != nil {
				return nil, err
			}
			if err := p.processRow(c, p.cur, p.curRow); err != nil {
				return nil, err
			}
			p.curRow++
			if c.MaxRows > 0 && p.rowsCum+p.out.Rows() > c.MaxRows {
				return nil, ErrRowLimit
			}
		}
		p.rowsCum += p.out.Rows()
		if err := p.bud.charge(p.out.Rows(), c.MaxRows); err != nil {
			return nil, err
		}
		if b := p.emit(); b != nil {
			return b, nil
		}
	}
}

// endState resolves an endpoint under the row: bound (with value) or a
// free slot.
func endState(e PathEnd, in *Batch, row int) (id rdf.ID, bound bool, slot int) {
	if !e.IsVar {
		return e.ID, true, -1
	}
	if v := in.Get(e.Slot, row); v != Unbound {
		return v, true, e.Slot
	}
	return 0, false, e.Slot
}

func (p *pathOp) processRow(c *Ctx, in *Batch, row int) error {
	sid, sBound, sSlot := endState(p.s, in, row)
	oid, oBound, oSlot := endState(p.o, in, row)
	noslot := [3]int{-1, -1, -1}
	// Thread the execution deadline into the compiled-path engine: its
	// closure and SCC sweeps batch their own probing (~1k steps), so a
	// cancelled request aborts mid-search instead of after it.
	check := pathcomp.Check(c.Poll)
	c.Probes++ // each branch below consults the compiled-path indexes once
	switch {
	case sBound && oBound:
		// A constant or binding outside the store (overflow or absent
		// term) can never satisfy a path.
		if p.inStore(sid) && p.inStore(oid) {
			holds, err := p.pa.HoldsCtx(check, sid, oid)
			if err != nil {
				return err
			}
			if holds {
				p.out.AppendRow(in, row)
			}
		}
	case sBound:
		if !p.inStore(sid) {
			return nil
		}
		nodes, err := p.pa.FromCtx(check, sid)
		if err != nil {
			return err
		}
		if len(nodes) == 0 {
			return nil
		}
		slots, vals := noslot, [3][]rdf.ID{}
		slots[0], vals[0] = oSlot, nodes
		p.out.AppendFanout(in, row, len(nodes), slots, vals)
	case oBound:
		if !p.inStore(oid) {
			return nil
		}
		nodes, err := p.pa.ToCtx(check, oid)
		if err != nil {
			return err
		}
		if len(nodes) == 0 {
			return nil
		}
		slots, vals := noslot, [3][]rdf.ID{}
		slots[0], vals[0] = sSlot, nodes
		p.out.AppendFanout(in, row, len(nodes), slots, vals)
	case sSlot == oSlot:
		// Same variable on both ends: only loop nodes, computed once.
		if !p.loopsDone {
			loops, err := p.pa.LoopsCtx(check)
			if err != nil {
				return err
			}
			p.loops, p.loopsDone = loops, true
		}
		if len(p.loops) == 0 {
			return nil
		}
		slots, vals := noslot, [3][]rdf.ID{}
		slots[0], vals[0] = sSlot, p.loops
		p.out.AppendFanout(in, row, len(p.loops), slots, vals)
	default:
		// Both ends open: enumerate pairs with the same one-past-the-
		// budget cap the legacy evaluator used, so a genuinely
		// overflowing result errors rather than truncating.
		limit := 0
		if c.MaxRows > 0 {
			limit = c.MaxRows + 1 - p.rowsCum - p.out.Rows()
		}
		pairs, err := p.pa.PairsParCtx(check, limit, c.Parallel)
		if err != nil {
			return err
		}
		for _, pair := range pairs {
			r := p.out.AppendRow(in, row)
			p.out.Set(sSlot, r, pair[0])
			p.out.Set(oSlot, r, pair[1])
		}
	}
	return nil
}

// inStore reports whether the ID names a snapshot term (overflow IDs
// sit above the dictionary).
func (p *pathOp) inStore(id rdf.ID) bool { return int(id) < p.sn.NumTerms() }
