package exec

import "sparqlog/internal/rdf"

// Pool maps between term text and IDs for one execution. IDs below the
// snapshot's dictionary size are snapshot terms; computed values (BIND
// results, VALUES constants absent from the store, subquery rows)
// intern into an overflow table above it. Overflow IDs can never match
// a stored triple — the snapshot's indexes simply have no row for them
// — which reproduces the legacy evaluator's "bound to a term unknown
// to the store" semantics for free.
//
// A Pool is single-goroutine state (one per query execution).
type Pool struct {
	sn       *rdf.Snapshot
	base     rdf.ID
	extra    []string
	extraIdx map[string]rdf.ID

	// textCalls counts Text materializations — the dictionary-lookup
	// budget the path regression test pins: operators move IDs, only
	// the edges (projection, expressions) pay for strings.
	textCalls int64
}

// NewPool returns a pool over the snapshot's dictionary.
func NewPool(sn *rdf.Snapshot) *Pool {
	return &Pool{sn: sn, base: rdf.ID(sn.NumTerms())}
}

// Intern returns the ID of text, preferring the snapshot dictionary
// and interning into the overflow otherwise. The empty string interns
// to Unbound: the legacy evaluator's Unbound marker is "", so an
// empty-valued binding and an absent one are indistinguishable at the
// edges, and keeping them identical inside preserves result equality.
func (p *Pool) Intern(text string) rdf.ID {
	if text == "" {
		return Unbound
	}
	if id, ok := p.sn.Lookup(text); ok {
		return id
	}
	if p.extraIdx == nil {
		p.extraIdx = map[string]rdf.ID{}
	}
	if id, ok := p.extraIdx[text]; ok {
		return id
	}
	id := p.base + rdf.ID(len(p.extra))
	p.extra = append(p.extra, text)
	p.extraIdx[text] = id
	return id
}

// Text returns the string form of an ID; Unbound renders as "".
func (p *Pool) Text(id rdf.ID) string {
	if id == Unbound {
		return ""
	}
	p.textCalls++
	if id >= p.base {
		return p.extra[id-p.base]
	}
	return p.sn.TermOf(id)
}

// InStore reports whether the ID is a snapshot dictionary term (an ID
// that can appear in triples).
func (p *Pool) InStore(id rdf.ID) bool { return id < p.base }

// TextCalls returns the number of Text materializations so far.
func (p *Pool) TextCalls() int64 { return p.textCalls }
