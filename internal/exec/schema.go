// Package exec is the slot-based columnar query executor shared by the
// SPARQL evaluator (internal/eval) and the graph engine
// (internal/engine). A query's variables are assigned dense slot
// indexes once, by a Schema built from the plan; intermediate results
// flow through the operator tree as fixed-capacity Batches — one
// rdf.ID column per slot — instead of per-row map[string]string
// bindings. Strings exist only at the edges: parse-time constants
// resolve through the snapshot dictionary (or intern into a Pool
// overflow for computed values), and projection materializes text
// lazily from IDs.
//
// Operators are pull-based: Next returns the operator's next output
// batch, or nil at end of stream. Batches are owned by the operator
// that returns them and are overwritten by the following Next call, so
// a consumer must copy what it keeps. All operators preserve the
// row order of the row-at-a-time evaluation they replaced, which keeps
// the columnar executor result-identical (including solution-modifier
// tie-breaks) to the legacy materialized path it is tested against.
//
// Parallel is the morsel-driven exchange: it splits a driving
// operator's batches into morsels, fans them out to workers holding
// private clones of a join/path operator chain, and merges the results
// back in exact dispatch order, so a parallel pipeline emits
// row-for-row the same output as its serial counterpart. Worker chains
// may contain only operators whose scratch state is private to the
// chain (joins and paths); row budgets shared across clones of one
// chain position use the atomic Budget so MaxRows outcomes are
// scheduling-independent.
package exec

// Schema assigns query variables to dense slot indexes. It is built
// once per query — every operator and batch of that query shares it —
// and is immutable during execution.
type Schema struct {
	names []string
	index map[string]int
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{index: map[string]int{}}
}

// Slot returns the slot of name, assigning the next free slot on first
// sight.
func (s *Schema) Slot(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	i := len(s.names)
	s.index[name] = i
	s.names = append(s.names, name)
	return i
}

// SlotOf returns the slot of name without assigning one.
func (s *Schema) SlotOf(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Len returns the number of slots.
func (s *Schema) Len() int { return len(s.names) }

// Name returns the variable name of a slot.
func (s *Schema) Name(slot int) string { return s.names[slot] }
