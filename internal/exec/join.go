package exec

import (
	"sparqlog/internal/plan"
	"sparqlog/internal/rdf"
)

// joinOp is the index nested-loop join on one planned atom: per input
// row it enumerates the snapshot triples matching the atom under the
// row's bindings, choosing the cheapest index from the bound pattern,
// and appends the matches column-wise — a posting-list copy into the
// newly bound column(s) plus replication of the carried columns, no
// per-row maps or closures. A variable's TermRef.Var is its schema
// slot; an atom constant absent from the dictionary (plan.C(^0)) hits
// no index row and yields nothing, as do slots bound to Pool overflow
// IDs, reproducing the legacy "term unknown to the store" semantics.
type joinOp struct {
	base
	sn   *rdf.Snapshot
	in   Operator
	atom plan.Atom

	// Repeated-variable structure, precomputed. A repeat involving a
	// position that resolves bound forces the other bound too (same
	// slot), so these only matter in the scan cases below.
	spSame, soSame, poSame bool

	// capped opts into the Ctx.MaxRows budget (the evaluator's
	// intermediate bound; the engine runs uncapped).
	capped  bool
	rowsCum int
	// bud, when set, is the row budget shared with this op's clones in
	// sibling parallel worker chains: rowsCum is then only this worker's
	// share, and the shared counter preserves the serial ErrRowLimit
	// outcome (see exec.Budget).
	bud *Budget

	cur    *Batch
	curRow int

	// scratch columns for scan enumerations.
	scrS, scrP, scrO []rdf.ID
}

// NewJoin returns the index join for atom over sn.
func NewJoin(sn *rdf.Snapshot, in Operator, atom plan.Atom, capped bool) Operator {
	j := &joinOp{base: newBase(slotsOf(in)), sn: sn, in: in, atom: atom, capped: capped}
	s, p, o := atom.S, atom.P, atom.O
	j.spSame = s.IsVar && p.IsVar && s.Var == p.Var
	j.soSame = s.IsVar && o.IsVar && s.Var == o.Var
	j.poSame = p.IsVar && o.IsVar && p.Var == o.Var
	return j
}

func (j *joinOp) Reset() {
	j.in.Reset()
	j.rowsCum, j.cur, j.curRow = 0, nil, 0
}

func (j *joinOp) setBudget(b *Budget) { j.bud = b }

func (j *joinOp) Next(c *Ctx) (*Batch, error) {
	for {
		if j.cur == nil || j.curRow >= j.cur.Rows() {
			in, err := j.in.Next(c)
			if err != nil {
				return nil, err
			}
			if in == nil {
				return nil, nil
			}
			j.cur, j.curRow = in, 0
		}
		j.out.Reset()
		for j.curRow < j.cur.Rows() && !j.out.Full() {
			if err := c.Check(255); err != nil {
				return nil, err
			}
			if err := j.processRow(c, j.cur, j.curRow); err != nil {
				return nil, err
			}
			j.curRow++
			if j.capped && c.MaxRows > 0 && j.rowsCum+j.out.Rows() > c.MaxRows {
				return nil, ErrRowLimit
			}
		}
		j.rowsCum += j.out.Rows()
		if j.capped {
			if err := j.bud.charge(j.out.Rows(), c.MaxRows); err != nil {
				return nil, err
			}
		}
		if b := j.emit(); b != nil {
			return b, nil
		}
	}
}

// resolve returns the concrete value of a term ref under the row,
// ok=false for an unbound variable slot.
func resolve(r plan.TermRef, in *Batch, row int) (rdf.ID, bool) {
	if !r.IsVar {
		return r.ID, true
	}
	if v := in.Get(r.Var, row); v != Unbound {
		return v, true
	}
	return 0, false
}

// processRow appends the matches of the atom under row to j.out.
func (j *joinOp) processRow(c *Ctx, in *Batch, row int) error {
	a := j.atom
	s, sb := resolve(a.S, in, row)
	p, pb := resolve(a.P, in, row)
	o, ob := resolve(a.O, in, row)
	sn := j.sn
	noslot := [3]int{-1, -1, -1}
	c.Probes++ // every branch below is exactly one index access
	switch {
	case sb && pb && ob:
		// Repeated-variable agreement is automatic: equal slots
		// resolve to equal values.
		if sn.Has(s, p, o) {
			j.out.AppendRow(in, row)
		}
	case sb && pb:
		objs := sn.Objects(s, p)
		if len(objs) == 0 {
			return nil
		}
		slots, vals := noslot, [3][]rdf.ID{}
		if a.O.IsVar {
			slots[2], vals[2] = a.O.Var, objs
		}
		j.out.AppendFanout(in, row, len(objs), slots, vals)
	case pb && ob:
		subs := sn.Subjects(p, o)
		if len(subs) == 0 {
			return nil
		}
		slots, vals := noslot, [3][]rdf.ID{}
		if a.S.IsVar {
			slots[0], vals[0] = a.S.Var, subs
		}
		j.out.AppendFanout(in, row, len(subs), slots, vals)
	case sb && ob:
		preds := sn.Predicates(s, o)
		if len(preds) == 0 {
			return nil
		}
		slots, vals := noslot, [3][]rdf.ID{}
		if a.P.IsVar {
			slots[1], vals[1] = a.P.Var, preds
		}
		j.out.AppendFanout(in, row, len(preds), slots, vals)
	case pb:
		j.scrS, j.scrO = j.scrS[:0], j.scrO[:0]
		for _, t := range sn.ScanPredicate(p) {
			if err := c.Check(4095); err != nil {
				return err
			}
			if j.soSame && t.S != t.O {
				continue
			}
			j.scrS = append(j.scrS, t.S)
			j.scrO = append(j.scrO, t.O)
		}
		if len(j.scrS) == 0 {
			return nil
		}
		slots, vals := noslot, [3][]rdf.ID{}
		if a.S.IsVar {
			slots[0], vals[0] = a.S.Var, j.scrS
		}
		if a.O.IsVar {
			slots[2], vals[2] = a.O.Var, j.scrO
		}
		j.out.AppendFanout(in, row, len(j.scrS), slots, vals)
	case sb:
		preds, objs := sn.SubjectEdges(s)
		if len(preds) == 0 {
			return nil
		}
		if j.poSame {
			j.scrP, j.scrO = j.scrP[:0], j.scrO[:0]
			for i := range preds {
				if preds[i] == objs[i] {
					j.scrP = append(j.scrP, preds[i])
					j.scrO = append(j.scrO, objs[i])
				}
			}
			preds, objs = j.scrP, j.scrO
			if len(preds) == 0 {
				return nil
			}
		}
		slots, vals := noslot, [3][]rdf.ID{}
		if a.P.IsVar {
			slots[1], vals[1] = a.P.Var, preds
		}
		if a.O.IsVar {
			slots[2], vals[2] = a.O.Var, objs
		}
		j.out.AppendFanout(in, row, len(preds), slots, vals)
	case ob:
		subs, preds := sn.ObjectEdges(o)
		if len(subs) == 0 {
			return nil
		}
		if j.spSame {
			j.scrS, j.scrP = j.scrS[:0], j.scrP[:0]
			for i := range subs {
				if subs[i] == preds[i] {
					j.scrS = append(j.scrS, subs[i])
					j.scrP = append(j.scrP, preds[i])
				}
			}
			subs, preds = j.scrS, j.scrP
			if len(subs) == 0 {
				return nil
			}
		}
		slots, vals := noslot, [3][]rdf.ID{}
		if a.S.IsVar {
			slots[0], vals[0] = a.S.Var, subs
		}
		if a.P.IsVar {
			slots[1], vals[1] = a.P.Var, preds
		}
		j.out.AppendFanout(in, row, len(subs), slots, vals)
	default:
		j.scrS, j.scrP, j.scrO = j.scrS[:0], j.scrP[:0], j.scrO[:0]
		for _, t := range sn.Triples() {
			if err := c.Check(4095); err != nil {
				return err
			}
			if j.spSame && t.S != t.P || j.soSame && t.S != t.O || j.poSame && t.P != t.O {
				continue
			}
			j.scrS = append(j.scrS, t.S)
			j.scrP = append(j.scrP, t.P)
			j.scrO = append(j.scrO, t.O)
		}
		if len(j.scrS) == 0 {
			return nil
		}
		slots, vals := noslot, [3][]rdf.ID{}
		if a.S.IsVar {
			slots[0], vals[0] = a.S.Var, j.scrS
		}
		if a.P.IsVar {
			slots[1], vals[1] = a.P.Var, j.scrP
		}
		if a.O.IsVar {
			slots[2], vals[2] = a.O.Var, j.scrO
		}
		j.out.AppendFanout(in, row, len(j.scrS), slots, vals)
	}
	return nil
}
