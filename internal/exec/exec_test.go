package exec

import (
	"context"
	"testing"

	"sparqlog/internal/plan"
	"sparqlog/internal/rdf"
)

// chain builds a -p-> b -p-> c -p-> d plus a stray edge.
func chainSnapshot(t *testing.T) (*rdf.Snapshot, func(string) rdf.ID) {
	t.Helper()
	st := rdf.NewStore()
	st.Add("a", "p", "b")
	st.Add("b", "p", "c")
	st.Add("c", "p", "d")
	st.Add("a", "q", "d")
	sn := st.Freeze()
	id := func(s string) rdf.ID {
		v, ok := sn.Lookup(s)
		if !ok {
			t.Fatalf("term %q missing", s)
		}
		return v
	}
	return sn, id
}

func drain(t *testing.T, op Operator) []*Batch {
	t.Helper()
	batches, err := Materialize(NewCtx(context.Background()), op)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	return batches
}

func rowsOf(batches []*Batch) int {
	n := 0
	for _, b := range batches {
		n += b.Rows()
	}
	return n
}

func TestJoinChain(t *testing.T) {
	sn, id := chainSnapshot(t)
	// ?x p ?y . ?y p ?z : (a,b,c) and (b,c,d).
	p := plan.C(id("p"))
	src := NewUnit(3)
	j1 := NewJoin(sn, src, plan.Atom{S: plan.V(0), P: p, O: plan.V(1)}, false)
	j2 := NewJoin(sn, j1, plan.Atom{S: plan.V(1), P: p, O: plan.V(2)}, false)
	batches := drain(t, j2)
	if rowsOf(batches) != 2 {
		t.Fatalf("rows = %d, want 2", rowsOf(batches))
	}
	got := map[[3]rdf.ID]bool{}
	for _, b := range batches {
		for r := 0; r < b.Rows(); r++ {
			got[[3]rdf.ID{b.Get(0, r), b.Get(1, r), b.Get(2, r)}] = true
		}
	}
	if !got[[3]rdf.ID{id("a"), id("b"), id("c")}] || !got[[3]rdf.ID{id("b"), id("c"), id("d")}] {
		t.Fatalf("unexpected rows: %v", got)
	}
	// Per-operator stats flowed.
	if j2.Stats().Rows != 2 || j1.Stats().Rows != 3 {
		t.Fatalf("stats = %+v / %+v", j1.Stats(), j2.Stats())
	}
}

func TestJoinRepeatedVariable(t *testing.T) {
	st := rdf.NewStore()
	st.Add("n", "p", "n")
	st.Add("a", "p", "b")
	sn := st.Freeze()
	pid, _ := sn.Lookup("p")
	// ?x p ?x matches only the self loop.
	j := NewJoin(sn, NewUnit(1), plan.Atom{S: plan.V(0), P: plan.C(pid), O: plan.V(0)}, false)
	if n := rowsOf(drain(t, j)); n != 1 {
		t.Fatalf("self-loop rows = %d, want 1", n)
	}
}

func TestJoinAbsentConstantMatchesNothing(t *testing.T) {
	sn, _ := chainSnapshot(t)
	j := NewJoin(sn, NewUnit(1), plan.Atom{S: plan.V(0), P: plan.C(Unbound), O: plan.V(0)}, false)
	if n := rowsOf(drain(t, j)); n != 0 {
		t.Fatalf("absent predicate matched %d rows", n)
	}
}

func TestDistinctAndLimit(t *testing.T) {
	sn, id := chainSnapshot(t)
	// ?x ?p ?y projected on ?x: distinct subjects a, b, c.
	src := NewUnit(3)
	j := NewJoin(sn, src, plan.Atom{S: plan.V(0), P: plan.V(1), O: plan.V(2)}, false)
	d := NewDistinct(j, []int{0})
	if n := rowsOf(drain(t, d)); n != 3 {
		t.Fatalf("distinct subjects = %d, want 3", n)
	}
	d.Reset()
	l := NewLimit(d, 1, 1)
	batches := drain(t, l)
	if rowsOf(batches) != 1 || batches[0].Get(0, 0) != id("b") {
		t.Fatalf("offset 1 limit 1 = %v", batches)
	}
}

func TestOptionalKeepsUnmatchedRows(t *testing.T) {
	sn, id := chainSnapshot(t)
	p := plan.C(id("p"))
	src := NewJoin(sn, NewUnit(2), plan.Atom{S: plan.V(0), P: p, O: plan.V(1)}, false)
	// OPTIONAL { ?y p ?z } — d has no outgoing p.
	seed := NewSeed(3)
	inner := NewJoin(sn, seed, plan.Atom{S: plan.V(1), P: p, O: plan.V(2)}, false)
	// Widen the outer stream to 3 slots to match.
	src3 := NewJoin(sn, NewUnit(3), plan.Atom{S: plan.V(0), P: p, O: plan.V(1)}, false)
	opt := NewOptional(src3, inner, seed)
	batches := drain(t, opt)
	if rowsOf(batches) != 3 {
		t.Fatalf("optional rows = %d, want 3", rowsOf(batches))
	}
	unmatched := 0
	for _, b := range batches {
		for r := 0; r < b.Rows(); r++ {
			if b.Get(2, r) == Unbound {
				unmatched++
			}
		}
	}
	if unmatched != 1 {
		t.Fatalf("unmatched rows = %d, want 1 (c-d)", unmatched)
	}
	_ = src
}

func TestUnionOrderAndMinus(t *testing.T) {
	sn, id := chainSnapshot(t)
	// { ?x p ?y } UNION { ?x q ?y } : 3 + 1 rows, left first.
	ls, rs := NewSeed(2), NewSeed(2)
	left := NewJoin(sn, ls, plan.Atom{S: plan.V(0), P: plan.C(id("p")), O: plan.V(1)}, false)
	right := NewJoin(sn, rs, plan.Atom{S: plan.V(0), P: plan.C(id("q")), O: plan.V(1)}, false)
	u := NewUnion(NewUnit(2), left, ls, right, rs)
	batches := drain(t, u)
	if rowsOf(batches) != 4 {
		t.Fatalf("union rows = %d, want 4", rowsOf(batches))
	}
	last := batches[len(batches)-1]
	if last.Get(1, last.Rows()-1) != id("d") {
		t.Fatalf("right branch should come last")
	}

	// MINUS { ?x q ?z } shares only slot 0 with the input, so the row
	// with subject a is removed (compatible on the shared slot).
	srcM := NewJoin(sn, NewUnit(3), plan.Atom{S: plan.V(0), P: plan.C(id("p")), O: plan.V(1)}, false)
	innerM := NewJoin(sn, NewUnit(3), plan.Atom{S: plan.V(0), P: plan.C(id("q")), O: plan.V(2)}, false)
	m := NewMinus(srcM, innerM)
	n := 0
	for _, b := range drain(t, m) {
		for r := 0; r < b.Rows(); r++ {
			if b.Get(0, r) == id("a") {
				t.Fatal("row with subject a should have been removed")
			}
			n++
		}
	}
	if n != 2 {
		t.Fatalf("minus rows = %d, want 2", n)
	}
}

func TestRowLimitEnforced(t *testing.T) {
	sn, _ := chainSnapshot(t)
	c := NewCtx(context.Background())
	c.MaxRows = 2
	j := NewJoin(sn, NewUnit(3), plan.Atom{S: plan.V(0), P: plan.V(1), O: plan.V(2)}, true)
	_, err := Materialize(c, j)
	if err != ErrRowLimit {
		t.Fatalf("err = %v, want ErrRowLimit", err)
	}
}

func TestCancellation(t *testing.T) {
	sn, _ := chainSnapshot(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewCtx(ctx)
	c.steps = -1 // force the next Check to poll
	j := NewJoin(sn, NewUnit(3), plan.Atom{S: plan.V(0), P: plan.V(1), O: plan.V(2)}, false)
	if _, err := Materialize(c, j); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestPoolInterning(t *testing.T) {
	sn, id := chainSnapshot(t)
	pool := NewPool(sn)
	if got := pool.Intern("a"); got != id("a") {
		t.Fatalf("store term interned to %d", got)
	}
	x := pool.Intern("computed")
	if pool.InStore(x) {
		t.Fatal("overflow ID claims to be a store term")
	}
	if y := pool.Intern("computed"); y != x {
		t.Fatal("overflow interning must dedup")
	}
	if pool.Text(x) != "computed" {
		t.Fatalf("text = %q", pool.Text(x))
	}
	if pool.Intern("") != Unbound || pool.Text(Unbound) != "" {
		t.Fatal("empty string must map to Unbound")
	}
}
