package exec

import (
	"context"
	"errors"
	"time"
)

// ErrRowLimit is returned when an operator's cumulative output exceeds
// Ctx.MaxRows. The text matches the legacy evaluator's error.
var ErrRowLimit = errors.New("eval: row limit exceeded")

// ErrTimeout is returned when the context's deadline strikes or it is
// cancelled mid-execution.
var ErrTimeout = errors.New("exec: timeout")

// Ctx carries per-execution state: the deadline ticker and the row
// budget shared by every operator of one pipeline.
type Ctx struct {
	ctx      context.Context
	deadline time.Time
	hasDL    bool
	steps    int
	// MaxRows caps any single operator's cumulative output where the
	// operator opts in (the legacy evaluator's intermediate-result
	// bound); 0 means unlimited.
	MaxRows int
	// Probes counts snapshot index accesses made by the operators of
	// this execution — the "did evaluation touch the store" meter.
	// Statically short-circuited queries finish with Probes == 0.
	Probes int64
	// Parallel is the intra-query worker budget for subsystems that fan
	// out internally (compiled-path pair sweeps); <= 1 means serial.
	// Worker-forked Ctxs always carry 1: the exchange already owns the
	// budget, so nested fan-out would oversubscribe.
	Parallel int
}

// NewCtx returns an execution context honoring ctx's deadline and
// cancellation.
func NewCtx(ctx context.Context) *Ctx {
	dl, ok := ctx.Deadline()
	return &Ctx{ctx: ctx, deadline: dl, hasDL: ok}
}

// Check polls the deadline every mask+1 calls (mask must be a power of
// two minus one), keeping time.Now out of inner loops.
func (c *Ctx) Check(mask int) error {
	c.steps++
	if c.steps&mask != 0 {
		return nil
	}
	return c.Poll()
}

// Poll checks the deadline and cancellation immediately, with no step
// batching — the probe handed to subsystems (pathcomp) that batch
// their own steps.
func (c *Ctx) Poll() error {
	if c.hasDL && time.Now().After(c.deadline) {
		return ErrTimeout
	}
	if c.ctx.Err() != nil {
		return ErrTimeout
	}
	return nil
}

// OpStats counts one operator's output.
type OpStats struct {
	Batches int64
	Rows    int64
	// Recovered counts silent SERVICE recoveries: inner evaluations
	// that failed and fell back to the unjoined input (SERVICE SILENT
	// semantics). Zero everywhere except recover operators.
	Recovered int64
}

// Operator is a pull-based batch producer. Next returns the next
// output batch or nil at end of stream; the returned batch is
// invalidated by the following Next call. Reset rewinds the operator
// (and its inputs) so the stream can run again — correlated operators
// (Optional, Exists evaluation) reset their inner subtree per outer
// row.
type Operator interface {
	Next(c *Ctx) (*Batch, error)
	Reset()
	Stats() *OpStats
}

// base carries the shared output-batch and stats plumbing.
type base struct {
	out   *Batch
	stats OpStats
}

func newBase(slots int) base {
	return base{out: NewBatch(slots)}
}

func (b *base) Stats() *OpStats { return &b.stats }

// Slots returns the operator's schema width.
func (b *base) Slots() int { return b.out.Slots() }

// slotsOf reads the schema width off an operator (they all embed base).
func slotsOf(op Operator) int {
	return op.(interface{ Slots() int }).Slots()
}

// emit finalizes an output batch: counts it and returns nil for an
// empty one (operators translate an empty flush into end-of-stream or
// a retry as appropriate).
func (b *base) emit() *Batch {
	if b.out.Rows() == 0 {
		return nil
	}
	b.stats.Batches++
	b.stats.Rows += int64(b.out.Rows())
	return b.out
}

// ---------- sources ----------

// unit emits one all-unbound row, once.
type unit struct {
	base
	done bool
}

// NewUnit returns the unit source: a single row with every slot
// unbound (the empty binding every evaluation starts from).
func NewUnit(slots int) Operator { return &unit{base: newBase(slots)} }

func (u *unit) Next(c *Ctx) (*Batch, error) {
	if u.done {
		return nil, nil
	}
	u.done = true
	u.out.Reset()
	u.out.AppendUnbound()
	return u.emit(), nil
}

func (u *unit) Reset() { u.done = false }

// Seed replays externally supplied rows: the root of correlated
// subtrees (OPTIONAL inner per outer row, EXISTS per filtered row) and
// of replayed streams (UNION branches). SetRow/SetBatches load it;
// Reset rewinds the replay without clearing the rows.
type Seed struct {
	base
	src     *Batch // single-row mode: source batch + row
	srcRow  int
	batches []*Batch // multi-batch mode
	pos     int
	done    bool
}

// NewSeed returns an empty seed over the schema width.
func NewSeed(slots int) *Seed { return &Seed{base: newBase(slots)} }

// SetRow loads the seed with one row of b (referenced, not copied: the
// caller must not advance b's producer while the subtree runs).
func (s *Seed) SetRow(b *Batch, row int) {
	s.src, s.srcRow, s.batches = b, row, nil
	s.Reset()
}

// SetBatches loads the seed with an owned batch list.
func (s *Seed) SetBatches(batches []*Batch) {
	s.src, s.batches = nil, batches
	s.Reset()
}

func (s *Seed) Next(c *Ctx) (*Batch, error) {
	if s.src != nil {
		if s.done {
			return nil, nil
		}
		s.done = true
		s.out.Reset()
		s.out.AppendRow(s.src, s.srcRow)
		return s.emit(), nil
	}
	//ctxpoll:ignore bounded replay: pos strictly advances over a materialized batch list
	for s.pos < len(s.batches) {
		b := s.batches[s.pos]
		s.pos++
		if b.Rows() > 0 {
			s.stats.Batches++
			s.stats.Rows += int64(b.Rows())
			return b, nil
		}
	}
	return nil, nil
}

func (s *Seed) Reset() { s.done, s.pos = false, 0 }

// ---------- row-shaping operators ----------

// filterOp keeps rows satisfying a predicate. The predicate sees the
// input batch and a row index; expression errors count as false, per
// SPARQL filter semantics (the caller encodes that in pred).
type filterOp struct {
	base
	in   Operator
	pred func(c *Ctx, b *Batch, row int) bool
}

// NewFilter returns a filter over pred.
func NewFilter(in Operator, pred func(c *Ctx, b *Batch, row int) bool) Operator {
	return &filterOp{base: newBase(slotsOf(in)), in: in, pred: pred}
}

func (f *filterOp) Next(c *Ctx) (*Batch, error) {
	for {
		in, err := f.in.Next(c)
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		f.out.Reset()
		for row := 0; row < in.Rows(); row++ {
			if f.pred(c, in, row) {
				f.out.AppendRow(in, row)
			}
		}
		if b := f.emit(); b != nil {
			return b, nil
		}
	}
}

func (f *filterOp) Reset() { f.in.Reset() }

// applyOp rewrites rows one at a time through fn, which appends zero
// or more output rows for each input row. It is the generic hook for
// BIND, GRAPH and VALUES-style operators whose logic lives in the
// caller. capped opts the operator into the MaxRows budget.
type applyOp struct {
	base
	in      Operator
	fn      func(c *Ctx, in *Batch, row int, out *Batch) error
	capped  bool
	rowsCum int
}

// NewApply returns a per-row rewrite operator.
func NewApply(in Operator, capped bool, fn func(c *Ctx, in *Batch, row int, out *Batch) error) Operator {
	return &applyOp{base: newBase(slotsOf(in)), in: in, fn: fn, capped: capped}
}

func (a *applyOp) Next(c *Ctx) (*Batch, error) {
	for {
		in, err := a.in.Next(c)
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		a.out.Reset()
		for row := 0; row < in.Rows(); row++ {
			if err := a.fn(c, in, row, a.out); err != nil {
				return nil, err
			}
			if a.capped && c.MaxRows > 0 && a.rowsCum+a.out.Rows() > c.MaxRows {
				return nil, ErrRowLimit
			}
		}
		a.rowsCum += a.out.Rows()
		if b := a.emit(); b != nil {
			return b, nil
		}
	}
}

func (a *applyOp) Reset() {
	a.in.Reset()
	a.rowsCum = 0
}

// ---------- binary-shape operators ----------

// optionalOp implements left outer join against a correlated inner
// subtree: per input row, the seed is loaded and the subtree drained;
// rows come back extended, or unchanged when the subtree was empty.
type optionalOp struct {
	base
	in      Operator
	inner   Operator
	seed    *Seed
	rowsCum int
}

// NewOptional returns the OPTIONAL operator. inner must be rooted at
// seed.
func NewOptional(in Operator, inner Operator, seed *Seed) Operator {
	return &optionalOp{base: newBase(slotsOf(in)), in: in, inner: inner, seed: seed}
}

func (o *optionalOp) Next(c *Ctx) (*Batch, error) {
	for {
		in, err := o.in.Next(c)
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		o.out.Reset()
		for row := 0; row < in.Rows(); row++ {
			o.seed.SetRow(in, row)
			o.inner.Reset()
			matched := false
			for {
				ib, err := o.inner.Next(c)
				if err != nil {
					return nil, err
				}
				if ib == nil {
					break
				}
				matched = true
				for r := 0; r < ib.Rows(); r++ {
					o.out.AppendRow(ib, r)
				}
			}
			if !matched {
				o.out.AppendRow(in, row)
			}
			if c.MaxRows > 0 && o.rowsCum+o.out.Rows() > c.MaxRows {
				return nil, ErrRowLimit
			}
		}
		o.rowsCum += o.out.Rows()
		if b := o.emit(); b != nil {
			return b, nil
		}
	}
}

func (o *optionalOp) Reset() {
	o.in.Reset()
	o.rowsCum = 0
}

// unionOp materializes its input once and replays it through both
// branches, left fully before right — the legacy evaluator's
// concatenation order, which DISTINCT/LIMIT tie-breaking depends on.
type unionOp struct {
	base
	in           Operator
	left, right  Operator
	lseed, rseed *Seed
	started      bool
	onRight      bool
	rowsCum      int
}

// NewUnion returns the UNION operator. left must be rooted at lseed
// and right at rseed.
func NewUnion(in Operator, left Operator, lseed *Seed, right Operator, rseed *Seed) Operator {
	return &unionOp{base: newBase(slotsOf(in)), in: in, left: left, right: right, lseed: lseed, rseed: rseed}
}

func (u *unionOp) Next(c *Ctx) (*Batch, error) {
	if !u.started {
		batches, err := Materialize(c, u.in)
		if err != nil {
			return nil, err
		}
		u.lseed.SetBatches(batches)
		u.rseed.SetBatches(batches)
		u.left.Reset()
		u.right.Reset()
		u.started = true
	}
	for {
		var b *Batch
		var err error
		if !u.onRight {
			b, err = u.left.Next(c)
			if err != nil {
				return nil, err
			}
			if b == nil {
				u.onRight = true
				continue
			}
		} else {
			b, err = u.right.Next(c)
			if err != nil {
				return nil, err
			}
			if b == nil {
				return nil, nil
			}
		}
		u.rowsCum += b.Rows()
		if c.MaxRows > 0 && u.rowsCum > c.MaxRows {
			return nil, ErrRowLimit
		}
		u.stats.Batches++
		u.stats.Rows += int64(b.Rows())
		return b, nil
	}
}

func (u *unionOp) Reset() {
	u.in.Reset()
	u.started, u.onRight, u.rowsCum = false, false, 0
}

// minusOp drops input rows compatible with (and sharing at least one
// slot with) any row of the inner stream, which is evaluated once from
// the unit binding — SPARQL MINUS semantics over ID columns.
type minusOp struct {
	base
	in      Operator
	inner   Operator
	started bool
	removed []*Batch
}

// NewMinus returns the MINUS operator; inner evaluates independently
// of the input (rooted at its own unit source).
func NewMinus(in Operator, inner Operator) Operator {
	return &minusOp{base: newBase(slotsOf(in)), in: in, inner: inner}
}

func (m *minusOp) Next(c *Ctx) (*Batch, error) {
	for {
		in, err := m.in.Next(c)
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		// Materialize the removal set only once input actually arrives:
		// a dead upstream skips the inner evaluation (and any error it
		// would have hit), like the legacy group short-circuit.
		if !m.started {
			removed, merr := Materialize(c, m.inner)
			if merr != nil {
				return nil, merr
			}
			m.removed = removed
			m.started = true
		}
		m.out.Reset()
		for row := 0; row < in.Rows(); row++ {
			excluded := false
			for _, rb := range m.removed {
				for r := 0; r < rb.Rows(); r++ {
					if compatibleSharing(in, row, rb, r) {
						excluded = true
						break
					}
				}
				if excluded {
					break
				}
			}
			if !excluded {
				m.out.AppendRow(in, row)
			}
		}
		if b := m.emit(); b != nil {
			return b, nil
		}
	}
}

func (m *minusOp) Reset() {
	m.in.Reset()
	m.inner.Reset()
	m.started, m.removed = false, nil
}

// compatibleSharing reports whether row a of ba is compatible with row
// b of bb and they share at least one bound slot (MINUS removal).
func compatibleSharing(ba *Batch, a int, bb *Batch, b int) bool {
	shared := false
	for s := 0; s < bb.Slots(); s++ {
		rv := bb.Get(s, b)
		if rv == Unbound {
			continue
		}
		av := ba.Get(s, a)
		if av == Unbound {
			continue
		}
		if av != rv {
			return false
		}
		shared = true
	}
	return shared
}

// recoverOp runs inner over a materialized copy of the input and, on
// error, yields the input unchanged — SERVICE SILENT semantics.
type recoverOp struct {
	base
	in       Operator
	inner    Operator
	seed     *Seed
	started  bool
	fallback []*Batch
	fpos     int
}

// NewRecover returns the silent-recovery operator. inner must be
// rooted at seed.
func NewRecover(in Operator, inner Operator, seed *Seed) Operator {
	return &recoverOp{base: newBase(slotsOf(in)), in: in, inner: inner, seed: seed}
}

func (r *recoverOp) Next(c *Ctx) (*Batch, error) {
	if !r.started {
		batches, err := Materialize(c, r.in)
		if err != nil {
			return nil, err
		}
		r.fallback = batches
		r.seed.SetBatches(batches)
		r.inner.Reset()
		// Drain the inner stream eagerly: an error anywhere in it must
		// fall back to the input as a whole, not after partial output.
		drained, derr := Materialize(c, r.inner)
		switch {
		case derr == ErrTimeout:
			return nil, derr
		case derr == nil:
			r.fallback = drained
		default:
			// Any other error: the materialized input stays as the
			// fallback — SILENT semantics — but the swallowed failure is
			// counted so no-op federation stays observable.
			r.stats.Recovered++
		}
		r.started = true
	}
	//ctxpoll:ignore bounded replay: fpos strictly advances over the materialized fallback
	for r.fpos < len(r.fallback) {
		b := r.fallback[r.fpos]
		r.fpos++
		if b.Rows() > 0 {
			r.stats.Batches++
			r.stats.Rows += int64(b.Rows())
			return b, nil
		}
	}
	return nil, nil
}

func (r *recoverOp) Reset() {
	r.in.Reset()
	r.started, r.fallback, r.fpos = false, nil, 0
}

// ---------- solution modifiers ----------

// distinctOp deduplicates rows on a slot subset via packed ID-tuple
// keys — the columnar replacement for joined-string dedup keys.
type distinctOp struct {
	base
	in    Operator
	slots []int
	seen  map[string]struct{}
	key   []byte
}

// NewDistinct returns a streaming DISTINCT on the given slots,
// keeping each first occurrence in stream order.
func NewDistinct(in Operator, slots []int) Operator {
	return &distinctOp{base: newBase(slotsOf(in)), in: in, slots: slots, seen: map[string]struct{}{}}
}

func (d *distinctOp) Next(c *Ctx) (*Batch, error) {
	for {
		in, err := d.in.Next(c)
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		d.out.Reset()
		for row := 0; row < in.Rows(); row++ {
			d.key = d.key[:0]
			for _, s := range d.slots {
				v := in.Get(s, row)
				d.key = append(d.key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			if _, dup := d.seen[string(d.key)]; dup {
				continue
			}
			d.seen[string(d.key)] = struct{}{}
			d.out.AppendRow(in, row)
		}
		if b := d.emit(); b != nil {
			return b, nil
		}
	}
}

func (d *distinctOp) Reset() {
	d.in.Reset()
	d.seen = map[string]struct{}{}
}

// limitOp implements OFFSET/LIMIT over the stream, ending the pull
// early once the limit is satisfied.
type limitOp struct {
	base
	in      Operator
	offset  int
	limit   int // -1 = unlimited
	skipped int
	emitted int
}

// NewLimit returns a limit operator; limit < 0 means no limit.
func NewLimit(in Operator, offset, limit int) Operator {
	return &limitOp{base: newBase(slotsOf(in)), in: in, offset: offset, limit: limit}
}

func (l *limitOp) Next(c *Ctx) (*Batch, error) {
	if l.limit >= 0 && l.emitted >= l.limit {
		return nil, nil
	}
	for {
		in, err := l.in.Next(c)
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		l.out.Reset()
		for row := 0; row < in.Rows(); row++ {
			if l.skipped < l.offset {
				l.skipped++
				continue
			}
			if l.limit >= 0 && l.emitted >= l.limit {
				break
			}
			l.out.AppendRow(in, row)
			l.emitted++
		}
		if b := l.emit(); b != nil {
			return b, nil
		}
		if l.limit >= 0 && l.emitted >= l.limit {
			return nil, nil
		}
	}
}

func (l *limitOp) Reset() {
	l.in.Reset()
	l.skipped, l.emitted = 0, 0
}

// Materialize drains op into an owned batch list (copies, since
// operators reuse their output batches).
func Materialize(c *Ctx, op Operator) ([]*Batch, error) {
	var out []*Batch
	for {
		b, err := op.Next(c)
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		cp := NewBatch(b.Slots())
		for row := 0; row < b.Rows(); row++ {
			cp.AppendRow(b, row)
		}
		out = append(out, cp)
	}
}

// Count drains op, returning the total row count; with stopAt > 0 the
// pull ends early once that many rows were seen (ASK short-circuit).
func Count(c *Ctx, op Operator, stopAt int64) (int64, error) {
	var n int64
	for {
		b, err := op.Next(c)
		if err != nil {
			return n, err
		}
		if b == nil {
			return n, nil
		}
		n += int64(b.Rows())
		if stopAt > 0 && n >= stopAt {
			return n, nil
		}
	}
}
