package exec

import (
	"sort"
	"strconv"
	"strings"

	"sparqlog/internal/rdf"
)

// This file is the columnar GROUP BY / aggregation operator. Grouping
// runs on packed ID tuples of the key slots — never on strings — and
// each group carries one running state per aggregate. The dictionary is
// touched only where a value genuinely needs text: SUM/AVG parse the
// lexical form once per distinct ID (cached), GROUP_CONCAT materializes
// its parts at finalize, MIN/MAX compare lexical-or-numeric values, and
// COUNT/SAMPLE never look at text at all. Group emission preserves
// first-encounter order, the legacy finisher's contract, so the
// aggregated stream is row-for-row identical to the string path it
// replaced. Under Parallel (SetAggregate), workers pre-aggregate each
// morsel into a partial table and the consumer merges the partials in
// dispatch order, which keeps first-encounter order — and with it
// SAMPLE and plain-projected-variable ("first member") semantics —
// exactly serial.

// AggKind selects one running-aggregate semantics.
type AggKind int

// Aggregate kinds. AggFirst is internal to the compiler: it captures
// the group's first input row's slot value (Unbound included), which is
// how the legacy finisher projects a plain non-key variable and
// evaluates it inside HAVING/ORDER BY expressions (members[0]).
const (
	AggCount AggKind = iota
	AggCountStar
	AggSum
	AggMin
	AggMax
	AggAvg
	AggSample
	AggConcat
	AggFirst
)

// AggSpec is one aggregate column: input slot (ignored for
// AggCountStar), output slot, and the COUNT-family modifiers.
type AggSpec struct {
	Kind AggKind
	// Slot is the argument slot; -1 marks an argument variable the
	// query never binds (every member contributes no value, exactly as
	// the legacy per-member expression error did).
	Slot int
	// Out is the output slot the finalized value lands in.
	Out      int
	Distinct bool
	// Sep is the GROUP_CONCAT separator (pass the resolved default).
	Sep string
}

// GroupSpec configures a GroupBy operator.
type GroupSpec struct {
	// Keys are the grouping slots. Group identity is the packed ID
	// tuple over them; an empty list puts every row in one group.
	Keys []int
	Aggs []AggSpec
	// EmptyGroup emits one synthetic all-zero group when the input is
	// empty and the query had no GROUP BY clause (COUNT(*) = 0).
	EmptyGroup bool
}

// aggVal is one cached value interpretation: the lexical form plus its
// numeric parse, mirroring the expression evaluator's textValue.
type aggVal struct {
	lex   string
	num   float64
	isNum bool
}

// valCache memoizes ID → aggVal so each distinct ID pays for text (and
// the float parse) at most once per cache.
type valCache struct {
	text func(rdf.ID) string
	vals map[rdf.ID]aggVal
}

func newValCache(text func(rdf.ID) string) *valCache {
	return &valCache{text: text, vals: map[rdf.ID]aggVal{}}
}

func (vc *valCache) get(id rdf.ID) aggVal {
	if v, ok := vc.vals[id]; ok {
		return v
	}
	lex := vc.text(id)
	v := aggVal{lex: lex}
	if n, err := strconv.ParseFloat(lex, 64); err == nil && lex != "" {
		v.num, v.isNum = n, true
	}
	vc.vals[id] = v
	return v
}

// compareAggVals orders numerically when both values parse as numbers,
// lexicographically otherwise — the expression evaluator's
// compareValues over lexical forms.
func compareAggVals(l, r aggVal) int {
	if l.isNum && r.isNum {
		switch {
		case l.num < r.num:
			return -1
		case l.num > r.num:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(l.lex, r.lex)
}

// formatAggNum renders a float the way the expression evaluator's
// numValue does, so columnar aggregate output is byte-identical to the
// legacy finisher's.
func formatAggNum(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// aggState is one aggregate's running state within one group. DISTINCT
// aggregates accumulate the ordered distinct ID list and compute at
// finalize; the rest fold incrementally.
type aggState struct {
	count   int64
	sum     float64
	n       int64
	best    rdf.ID
	hasBest bool
	ids     []rdf.ID
	seen    map[rdf.ID]struct{}
}

// update folds one input row into the state. Unbound arguments
// contribute nothing (the legacy per-member expression error), except
// to COUNT(*) — which counts rows — and AggFirst, which records the
// first row's value verbatim.
func (s *aggState) update(a *AggSpec, id rdf.ID, vc *valCache) {
	switch a.Kind {
	case AggFirst:
		if !s.hasBest {
			s.best, s.hasBest = id, true
		}
		return
	case AggCountStar:
		s.count++
		return
	}
	if id == Unbound {
		return
	}
	if a.Distinct {
		if s.seen == nil {
			s.seen = map[rdf.ID]struct{}{}
		}
		if _, dup := s.seen[id]; dup {
			return
		}
		s.seen[id] = struct{}{}
		s.ids = append(s.ids, id)
		return
	}
	switch a.Kind {
	case AggCount:
		s.count++
	case AggSum, AggAvg:
		if v := vc.get(id); v.isNum {
			s.sum += v.num
			s.n++
		}
	case AggMin, AggMax:
		if !s.hasBest {
			s.best, s.hasBest = id, true
			return
		}
		if id == s.best {
			return
		}
		c := compareAggVals(vc.get(id), vc.get(s.best))
		if a.Kind == AggMin && c < 0 || a.Kind == AggMax && c > 0 {
			s.best = id
		}
	case AggSample:
		if !s.hasBest {
			s.best, s.hasBest = id, true
		}
	case AggConcat:
		s.ids = append(s.ids, id)
	}
}

// merge folds src (the later partial, in serial order) into s. The
// commutative states add; order-sensitive ones (SAMPLE, AggFirst,
// MIN/MAX ties) keep s, the earlier side, which is exactly what a
// serial run would have kept.
func (s *aggState) merge(a *AggSpec, src *aggState, vc *valCache) {
	if a.Distinct {
		for _, id := range src.ids {
			if s.seen == nil {
				s.seen = map[rdf.ID]struct{}{}
			}
			if _, dup := s.seen[id]; dup {
				continue
			}
			s.seen[id] = struct{}{}
			s.ids = append(s.ids, id)
		}
		return
	}
	switch a.Kind {
	case AggCount, AggCountStar:
		s.count += src.count
	case AggSum, AggAvg:
		s.sum += src.sum
		s.n += src.n
	case AggMin, AggMax:
		if !src.hasBest {
			return
		}
		if !s.hasBest {
			s.best, s.hasBest = src.best, true
			return
		}
		if src.best == s.best {
			return
		}
		c := compareAggVals(vc.get(src.best), vc.get(s.best))
		if a.Kind == AggMin && c < 0 || a.Kind == AggMax && c > 0 {
			s.best = src.best
		}
	case AggSample, AggFirst:
		if !s.hasBest && src.hasBest {
			s.best, s.hasBest = src.best, true
		}
	case AggConcat:
		s.ids = append(s.ids, src.ids...)
	}
}

// finalize renders the state as an output ID. Values that already exist
// as IDs (MIN/MAX/SAMPLE/first) pass through without touching the
// dictionary; computed lexical forms (counts, sums, concatenations)
// intern. An aggregate the legacy finisher would have errored on (AVG
// of nothing numeric, MIN of an empty group) finalizes to Unbound — the
// projected cell stays empty either way.
func (s *aggState) finalize(a *AggSpec, vc *valCache, intern func(string) rdf.ID) rdf.ID {
	if a.Distinct {
		return s.finalizeDistinct(a, vc, intern)
	}
	switch a.Kind {
	case AggCount, AggCountStar:
		return intern(formatAggNum(float64(s.count)))
	case AggSum:
		return intern(formatAggNum(s.sum))
	case AggAvg:
		if s.n == 0 {
			return Unbound
		}
		return intern(formatAggNum(s.sum / float64(s.n)))
	case AggMin, AggMax, AggSample, AggFirst:
		if !s.hasBest {
			return Unbound
		}
		return s.best
	case AggConcat:
		return internConcat(s.ids, a.Sep, vc, intern)
	}
	return Unbound
}

// finalizeDistinct computes a DISTINCT aggregate from the ordered
// distinct ID list (the legacy path dedups the value list before
// aggregating; dictionary IDs are bijective with text, so ID-level
// dedup selects the same values).
func (s *aggState) finalizeDistinct(a *AggSpec, vc *valCache, intern func(string) rdf.ID) rdf.ID {
	switch a.Kind {
	case AggCount:
		return intern(formatAggNum(float64(len(s.ids))))
	case AggSum, AggAvg:
		sum, n := 0.0, 0
		for _, id := range s.ids {
			if v := vc.get(id); v.isNum {
				sum += v.num
				n++
			}
		}
		if a.Kind == AggSum {
			return intern(formatAggNum(sum))
		}
		if n == 0 {
			return Unbound
		}
		return intern(formatAggNum(sum / float64(n)))
	case AggMin, AggMax:
		if len(s.ids) == 0 {
			return Unbound
		}
		best := s.ids[0]
		for _, id := range s.ids[1:] {
			c := compareAggVals(vc.get(id), vc.get(best))
			if a.Kind == AggMin && c < 0 || a.Kind == AggMax && c > 0 {
				best = id
			}
		}
		return best
	case AggSample:
		if len(s.ids) == 0 {
			return Unbound
		}
		return s.ids[0]
	case AggConcat:
		return internConcat(s.ids, a.Sep, vc, intern)
	}
	return Unbound
}

func internConcat(ids []rdf.ID, sep string, vc *valCache, intern func(string) rdf.ID) rdf.ID {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = vc.get(id).lex
	}
	sort.Strings(parts) // the legacy finisher sorts for determinism
	return intern(strings.Join(parts, sep))
}

// aggGroup is one group: its key tuple and one state per aggregate.
type aggGroup struct {
	keys   []rdf.ID
	states []aggState
}

// aggTable is one (partial or final) hash aggregation table. Group
// identity is the packed key-slot ID tuple (4 bytes per slot —
// fixed-width, so field boundaries can never be confused, unlike the
// joined-string keys this replaces); order preserves first encounter.
type aggTable struct {
	spec   *GroupSpec
	vc     *valCache
	groups map[string]int
	order  []aggGroup
	key    []byte
	// rows/batches count consumed input, for worker stats.
	rows    int64
	batches int64
}

func newAggTable(spec *GroupSpec, vc *valCache) *aggTable {
	return &aggTable{spec: spec, vc: vc, groups: map[string]int{}}
}

// group returns the state row for the key tuple at (b, row), inserting
// in first-encounter order.
func (t *aggTable) group(b *Batch, row int) *aggGroup {
	t.key = t.key[:0]
	for _, s := range t.spec.Keys {
		v := b.Get(s, row)
		t.key = append(t.key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	gi, ok := t.groups[string(t.key)]
	if !ok {
		gi = len(t.order)
		t.groups[string(t.key)] = gi
		g := aggGroup{states: make([]aggState, len(t.spec.Aggs))}
		if len(t.spec.Keys) > 0 {
			g.keys = make([]rdf.ID, len(t.spec.Keys))
			for i, s := range t.spec.Keys {
				g.keys[i] = b.Get(s, row)
			}
		}
		t.order = append(t.order, g)
	}
	return &t.order[gi]
}

// addBatch folds every row of b into the table.
func (t *aggTable) addBatch(b *Batch) {
	t.batches++
	t.rows += int64(b.Rows())
	aggs := t.spec.Aggs
	for row := 0; row < b.Rows(); row++ {
		g := t.group(b, row)
		for i := range aggs {
			a := &aggs[i]
			id := Unbound
			if a.Slot >= 0 {
				id = b.Get(a.Slot, row)
			}
			g.states[i].update(a, id, t.vc)
		}
	}
}

// mergeTable folds src — a later partial in serial order — into t,
// preserving first-encounter group order across the pair.
func (t *aggTable) mergeTable(src *aggTable) {
	t.rows += src.rows
	t.batches += src.batches
	aggs := t.spec.Aggs
	for si := range src.order {
		sg := &src.order[si]
		t.key = t.key[:0]
		for _, v := range sg.keys {
			t.key = append(t.key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		gi, ok := t.groups[string(t.key)]
		if !ok {
			gi = len(t.order)
			t.groups[string(t.key)] = gi
			t.order = append(t.order, aggGroup{keys: sg.keys, states: make([]aggState, len(aggs))})
		}
		g := &t.order[gi]
		for i := range aggs {
			g.states[i].merge(&aggs[i], &sg.states[i], t.vc)
		}
	}
}

// GroupByInfo summarizes one GroupBy execution for explain output.
type GroupByInfo struct {
	// Groups is the emitted group count (before HAVING).
	Groups int64
	// InputRows is the number of rows aggregated.
	InputRows int64
	// PartialTables counts worker partial tables merged at the
	// exchange; zero for a serial build.
	PartialTables int64
}

// GroupBy is the pipeline breaker: it drains its input into an
// aggTable (or merges worker partials when the input is a Parallel in
// aggregation mode), then emits one output row per group — key slots
// and finalized aggregate slots set, everything else unbound — in
// first-encounter order.
type GroupBy struct {
	base
	in     Operator
	spec   GroupSpec
	intern func(string) rdf.ID
	vc     *valCache

	tab   *aggTable
	built bool
	synth bool // emitted the synthetic empty group
	pos   int
	info  GroupByInfo
}

// NewGroupBy returns the GROUP BY / aggregation operator. text reads an
// ID's lexical form (the consumer-side dictionary view) and intern maps
// computed text back to an ID; intern("") must return Unbound.
func NewGroupBy(in Operator, spec GroupSpec, text func(rdf.ID) string, intern func(string) rdf.ID) *GroupBy {
	vc := newValCache(text)
	return &GroupBy{
		base:   newBase(slotsOf(in)),
		in:     in,
		spec:   spec,
		intern: intern,
		vc:     vc,
		tab:    newAggTable(&spec, vc),
	}
}

// Info returns the execution summary; valid once the stream ended.
func (g *GroupBy) Info() GroupByInfo { return g.info }

// SyntheticEmpty reports that the emitted stream is the one synthetic
// empty-input group (aggregation without GROUP BY over zero rows). The
// compiler's finishing expressions check it: the legacy path evaluates
// non-aggregate leaves against "the first member" of a group, and the
// synthetic group has none.
func (g *GroupBy) SyntheticEmpty() bool { return g.synth }

func (g *GroupBy) build(c *Ctx) error {
	if p, ok := g.in.(*Parallel); ok && p.hasAgg {
		for {
			t, err := p.nextTable(c)
			if err != nil {
				return err
			}
			if t == nil {
				break
			}
			g.info.PartialTables++
			g.tab.mergeTable(t)
		}
	} else {
		for {
			b, err := g.in.Next(c)
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			g.tab.addBatch(b)
		}
	}
	if len(g.tab.order) == 0 && g.spec.EmptyGroup {
		g.synth = true
		g.tab.order = append(g.tab.order, aggGroup{states: make([]aggState, len(g.spec.Aggs))})
	}
	g.info.Groups = int64(len(g.tab.order))
	g.info.InputRows = g.tab.rows
	g.built = true
	return nil
}

func (g *GroupBy) Next(c *Ctx) (*Batch, error) {
	if !g.built {
		if err := g.build(c); err != nil {
			return nil, err
		}
	}
	if g.pos >= len(g.tab.order) {
		return nil, nil
	}
	g.out.Reset()
	//ctxpoll:ignore bounded emission: pos strictly advances over the materialized group list
	for g.pos < len(g.tab.order) && !g.out.Full() {
		grp := &g.tab.order[g.pos]
		row := g.out.AppendUnbound()
		for i, s := range g.spec.Keys {
			g.out.Set(s, row, grp.keys[i])
		}
		for i := range g.spec.Aggs {
			g.out.Set(g.spec.Aggs[i].Out, row, grp.states[i].finalize(&g.spec.Aggs[i], g.vc, g.intern))
		}
		g.pos++
	}
	return g.emit(), nil
}

func (g *GroupBy) Reset() {
	g.in.Reset()
	g.tab = newAggTable(&g.spec, g.vc)
	g.built, g.synth, g.pos = false, false, 0
	g.info = GroupByInfo{}
}
