package exec

import (
	"math"
	"sort"
)

// This file is the columnar ORDER BY operator. It is a pipeline
// breaker: every input row is ingested (its sort keys computed exactly
// once), then rows are emitted in sorted order. When the consumer only
// needs the first K rows (ORDER BY + LIMIT with no DISTINCT in
// between), the operator runs bounded-heap selection instead of a full
// sort — O(n log k) comparisons and, more importantly for this engine,
// no dictionary text for rows that lose every comparison against the
// current top K. The heap requires the comparator to be a strict weak
// order, which the SPARQL ORDER BY comparator is not in general
// (mixed numeric/string keys compare numerically or lexically
// depending on the pair; error keys are skipped pairwise), so TopK
// watches the ingested keys and falls back to the exact legacy
// algorithm — sort.SliceStable with the same comparator — whenever a
// key position is heterogeneous. Both paths produce byte-identical
// output to the legacy string sorter for every input the fallback
// detector routes to them.

// SortKey is one ORDER BY key value for one row, pre-parsed so
// comparisons never re-read the dictionary. Err marks a key whose
// expression failed to evaluate; the comparator skips such positions
// pairwise, exactly as the legacy sorter does.
type SortKey struct {
	Err   bool
	IsNum bool
	Num   float64
	Lex   string
}

// TopKInfo summarizes one TopK execution for explain output.
type TopKInfo struct {
	// Mode is "heap" (bounded selection) or "sort" (full stable sort).
	Mode string
	// Scanned is the ingested row count, Kept the emitted row count.
	Scanned int64
	Kept    int64
}

// TopK sorts its input by caller-computed keys. keep bounds the output
// (pass offset+limit; -1 means sort everything); keyFn fills out[0:n]
// with row (b, row)'s keys; cmp is the full ORDER BY comparator over
// two key tuples, returning <0/0/>0.
type TopK struct {
	base
	in    Operator
	keep  int
	nkeys int
	keyFn func(b *Batch, row int, out []SortKey)
	cmp   func(a, b []SortKey) int

	built bool
	store *Batch    // owned copy of every input row
	keys  []SortKey // nkeys entries per stored row
	idx   []int     // emission order over store rows
	pos   int
	info  TopKInfo
}

// NewTopK returns the ORDER BY operator. cmp must implement the exact
// comparator the legacy sorter used (per-key compare with pairwise
// error skip and DESC flips) — TopK guarantees output identical to
// stable-sorting the input with it.
func NewTopK(in Operator, keep, nkeys int, keyFn func(b *Batch, row int, out []SortKey), cmp func(a, b []SortKey) int) *TopK {
	return &TopK{
		base:  newBase(slotsOf(in)),
		in:    in,
		keep:  keep,
		nkeys: nkeys,
		keyFn: keyFn,
		cmp:   cmp,
		store: NewBatch(slotsOf(in)),
	}
}

// Info returns the execution summary; valid once the stream ended.
func (t *TopK) Info() TopKInfo { return t.info }

// rowKeys returns stored row r's key tuple.
func (t *TopK) rowKeys(r int) []SortKey {
	return t.keys[r*t.nkeys : (r+1)*t.nkeys]
}

// after reports whether stored row a sorts strictly after stored row b
// in the final output — the key comparator with the ingest sequence as
// tiebreak, which makes it a total order (equal keys keep input order,
// i.e. stability).
func (t *TopK) after(a, b int) bool {
	if c := t.cmp(t.rowKeys(a), t.rowKeys(b)); c != 0 {
		return c > 0
	}
	return a > b
}

func (t *TopK) build(c *Ctx) error {
	// heapOK[k] tracks whether key position k stayed homogeneous:
	// one pairwise-comparable domain (all-numeric without NaN, or
	// all-string), no evaluation errors. Any violation forces the
	// stable-sort path, whose results don't depend on the comparator
	// being a strict weak order.
	heapOK := make([]bool, t.nkeys)
	sawNum := make([]bool, t.nkeys)
	sawStr := make([]bool, t.nkeys)
	for k := range heapOK {
		heapOK[k] = true
	}
	key := make([]SortKey, t.nkeys)
	for {
		b, err := t.in.Next(c)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for row := 0; row < b.Rows(); row++ {
			t.keyFn(b, row, key)
			for k, sk := range key {
				switch {
				case sk.Err:
					heapOK[k] = false
				case sk.IsNum:
					sawNum[k] = true
					if sawStr[k] || math.IsNaN(sk.Num) {
						heapOK[k] = false
					}
				default:
					sawStr[k] = true
					if sawNum[k] {
						heapOK[k] = false
					}
				}
			}
			t.keys = append(t.keys, key...)
			t.store.AppendRow(b, row)
		}
	}
	n := t.store.Rows()
	t.info.Scanned = int64(n)
	homogeneous := true
	for _, ok := range heapOK {
		homogeneous = homogeneous && ok
	}
	if t.keep >= 0 && t.keep < n && homogeneous {
		t.info.Mode = "heap"
		t.idx = t.heapSelect(n)
	} else {
		t.info.Mode = "sort"
		t.idx = make([]int, n)
		for i := range t.idx {
			t.idx[i] = i
		}
		sort.SliceStable(t.idx, func(i, j int) bool {
			return t.cmp(t.rowKeys(t.idx[i]), t.rowKeys(t.idx[j])) < 0
		})
		if t.keep >= 0 && t.keep < n {
			t.idx = t.idx[:t.keep]
		}
	}
	t.info.Kept = int64(len(t.idx))
	t.built = true
	return nil
}

// heapSelect returns the first keep rows of the stable sort order via
// a bounded max-heap over after(): the root is the row that sorts
// latest among the current candidates, and a new row evicts it exactly
// when the new row sorts before it. Because after() is a total order
// here (homogeneous keys + sequence tiebreak), the surviving set and
// its heapsorted order match sort.SliceStable truncated to keep.
func (t *TopK) heapSelect(n int) []int {
	h := make([]int, 0, t.keep)
	for r := 0; r < n; r++ {
		if len(h) < t.keep {
			h = append(h, r)
			for i := len(h) - 1; i > 0; {
				p := (i - 1) / 2
				if !t.after(h[i], h[p]) {
					break
				}
				h[i], h[p] = h[p], h[i]
				i = p
			}
			continue
		}
		if t.keep == 0 || !t.after(h[0], r) {
			continue
		}
		h[0] = r
		t.siftDown(h, 0, len(h))
	}
	// Heapsort in place: repeatedly move the latest-sorting row to the
	// end, leaving h in ascending output order.
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		t.siftDown(h, 0, end)
	}
	return h
}

func (t *TopK) siftDown(h []int, i, n int) {
	//ctxpoll:ignore bounded heap walk: i strictly descends a log(n)-deep heap
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		big := l
		if r := l + 1; r < n && t.after(h[r], h[l]) {
			big = r
		}
		if !t.after(h[big], h[i]) {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

func (t *TopK) Next(c *Ctx) (*Batch, error) {
	if !t.built {
		if err := t.build(c); err != nil {
			return nil, err
		}
	}
	if t.pos >= len(t.idx) {
		return nil, nil
	}
	t.out.Reset()
	//ctxpoll:ignore bounded emission: pos strictly advances over the selected index list
	for t.pos < len(t.idx) && !t.out.Full() {
		t.out.AppendRow(t.store, t.idx[t.pos])
		t.pos++
	}
	return t.emit(), nil
}

func (t *TopK) Reset() {
	t.in.Reset()
	t.store = NewBatch(t.store.Slots())
	t.keys, t.idx = nil, nil
	t.built, t.pos = false, 0
	t.info = TopKInfo{}
}
