package exec

import (
	"context"
	"sync"
	"sync/atomic"

	"sparqlog/internal/rdf"
)

// This file is the morsel-driven intra-query exchange. A Parallel
// operator partitions its input stream into small row ranges (morsels),
// feeds them through a bounded queue to a fixed worker set — each
// worker owning a private copy of the downstream operator chain and a
// private Ctx — and merges the per-morsel outputs back in dispatch
// order, so the merged stream is row-for-row identical to a serial run
// of the same chain. Only snapshot-read-only operators (index joins,
// compiled paths) may appear inside a worker chain: everything that
// touches the execution's Pool (filters, BIND, VALUES, subqueries)
// stays upstream of the exchange or downstream of the merge, where it
// runs single-threaded as before.

// Budget is a cumulative row cap shared by the clones of one capped
// operator across parallel workers. Serially an operator checks its
// private rowsCum against Ctx.MaxRows; cloned across workers each copy
// sees only its share, so the clones additionally charge one shared
// Budget per emitted batch — the sum across workers equals the serial
// cumulative count, and the query errors exactly when a serial run
// would have (ErrRowLimit is scheduling-independent: every morsel's
// output is charged before the merge surfaces end-of-stream).
type Budget struct{ used atomic.Int64 }

// charge adds n output rows; a nil Budget (the serial case) is free.
func (b *Budget) charge(n, max int) error {
	if b == nil || max <= 0 {
		return nil
	}
	if b.used.Add(int64(n)) > int64(max) {
		return ErrRowLimit
	}
	return nil
}

// ShareBudget wires a join or path operator to charge the shared
// cross-worker row budget in addition to its private MaxRows check.
// Operators without budget support are left unchanged.
func ShareBudget(op Operator, b *Budget) {
	if s, ok := op.(interface{ setBudget(*Budget) }); ok {
		s.setBudget(b)
	}
}

// WorkerChain is one worker's private copy of the parallel section:
// Root must consume from Seed, and every operator between them must be
// safe to run concurrently with its siblings (snapshot reads only).
type WorkerChain struct {
	Seed *Seed
	Root Operator
}

// WorkerStat is one worker's processed-volume summary, for explain
// output and the stats merge.
type WorkerStat struct {
	Morsels int64
	Batches int64
	Rows    int64
}

// minMorselRows bounds morsel granularity from below: below this,
// per-morsel overhead (copy, channel hop, chain reset) dominates.
const minMorselRows = 16

type morsel struct {
	seq int64
	b   *Batch
}

type morselResult struct {
	seq     int64
	batches []*Batch
	// tab is the morsel's partial aggregation table (aggregation mode);
	// batches stays nil then.
	tab *aggTable
	err error
}

// Parallel is the exchange/merge operator. It is NOT safe for use as a
// correlated inner subtree (its workers outlive a single Next call);
// the compiler places at most one instance, on the main pipeline.
type Parallel struct {
	base
	in     Operator
	chains []WorkerChain

	// dedup, when enabled, pre-deduplicates each morsel's output on the
	// given slots inside the worker. The seen-set clears between
	// morsels, so the first occurrence of each key in merged stream
	// order always survives — a downstream DISTINCT on the same slots
	// produces identical rows, but the exchange ships (and the final
	// dedup hashes) per-morsel-unique rows only.
	dedup    []int
	hasDedup bool

	// aggSpec, when set, switches the exchange into aggregation mode:
	// each worker folds a morsel's chain output into a partial aggTable
	// (sharing one per-worker value cache over aggText) and ships the
	// table instead of row batches. The consumer (GroupBy) pulls the
	// partials in dispatch order via nextTable and merges them, so group
	// first-encounter order — and with it SAMPLE/first-member semantics —
	// is exactly the serial order. Mutually exclusive with dedup.
	aggSpec *GroupSpec
	aggText func(rdf.ID) string
	hasAgg  bool

	started bool
	stopped bool
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	morsels chan morsel
	results chan morselResult

	pc     *Ctx   // parent Ctx, for the probe/stat harvest
	wctx   []*Ctx // per-worker forked Ctxs
	dctx   *Ctx   // dispatcher's forked Ctx
	wstats []WorkerStat

	pending map[int64]*morselResult
	nextSeq int64
	cur     *morselResult
	curPos  int
	done    bool
	err     error
}

// NewParallel returns the exchange over in with one worker per chain.
// The caller builds the chains (same schema width as in) and wires any
// shared Budgets; len(chains) must be at least 1.
func NewParallel(in Operator, chains []WorkerChain) *Parallel {
	return &Parallel{base: newBase(slotsOf(in)), in: in, chains: chains}
}

// SetDedup enables per-morsel worker-side pre-deduplication on slots.
// Must be called before the first Next.
func (p *Parallel) SetDedup(slots []int) {
	p.dedup, p.hasDedup = slots, true
}

// SetAggregate switches the exchange into aggregation mode: workers
// fold each morsel into a partial aggregation table over (keys, aggs)
// and the consumer merges partials in dispatch order. text must read an
// ID's lexical form and be safe for concurrent snapshot reads (worker
// chains only ever carry snapshot IDs — the compiler's chainClean
// invariant). Must be called before the first Next; the stream is then
// consumed through nextTable (by GroupBy), not Next.
func (p *Parallel) SetAggregate(keys []int, aggs []AggSpec, text func(rdf.ID) string) {
	p.aggSpec = &GroupSpec{Keys: keys, Aggs: aggs}
	p.aggText = text
	p.hasAgg = true
}

// Workers returns the worker count.
func (p *Parallel) Workers() int { return len(p.chains) }

// WorkerStats returns per-worker morsel/batch/row counts; valid after
// the stream ended or Close was called.
func (p *Parallel) WorkerStats() []WorkerStat { return p.wstats }

// fork derives a goroutine-private Ctx from the parent: same deadline
// and row budget, private step and probe counters (harvested back on
// finish), and no nested intra-query parallelism.
func (c *Ctx) fork(ctx context.Context) *Ctx {
	return &Ctx{ctx: ctx, deadline: c.deadline, hasDL: c.hasDL, MaxRows: c.MaxRows, Parallel: 1}
}

func (p *Parallel) start(c *Ctx) {
	p.pc = c
	ictx, cancel := context.WithCancel(c.ctx)
	p.cancel = cancel
	n := len(p.chains)
	p.morsels = make(chan morsel, 2*n)
	p.results = make(chan morselResult, 2*n)
	p.pending = make(map[int64]*morselResult, 2*n)
	p.wstats = make([]WorkerStat, n)
	p.dctx = c.fork(ictx)
	p.wctx = make([]*Ctx, n)
	for i := range p.chains {
		p.wctx[i] = c.fork(ictx)
		p.wg.Add(1)
		go p.worker(i, ictx)
	}
	p.wg.Add(1)
	go p.dispatch(ictx)
	go func() {
		p.wg.Wait()
		close(p.results)
	}()
	p.started = true
}

// dispatch pulls the driving stream and re-splits each input batch into
// owned morsels sized for load balance (about one chunk per worker and
// never below minMorselRows), tagging each with its dispatch sequence.
// An upstream error rides the results channel as an error morsel at the
// current sequence, so the merge surfaces it exactly where a serial run
// would have: after all rows the upstream produced before failing.
func (p *Parallel) dispatch(ictx context.Context) {
	defer p.wg.Done()
	var seq int64
	send := func(r morselResult) {
		select {
		case p.results <- r:
		case <-ictx.Done():
		}
	}
	for {
		b, err := p.in.Next(p.dctx)
		if err != nil {
			close(p.morsels)
			send(morselResult{seq: seq, err: err})
			return
		}
		if b == nil {
			close(p.morsels)
			return
		}
		rows := b.Rows()
		chunk := (rows + len(p.chains) - 1) / len(p.chains)
		if chunk < minMorselRows {
			chunk = minMorselRows
		}
		for from := 0; from < rows; from += chunk {
			to := min(from+chunk, rows)
			m := NewBatch(b.Slots())
			for r := from; r < to; r++ {
				m.AppendRow(b, r)
			}
			select {
			case p.morsels <- morsel{seq: seq, b: m}:
				seq++
			case <-ictx.Done():
				close(p.morsels)
				return
			}
		}
	}
}

// worker runs morsels through its private chain, materializing each
// morsel's full output (dedup-compressed when enabled) and posting it
// under the morsel's sequence number. After an error the worker drops
// into poison mode — every further morsel is answered with the same
// error immediately — so the pipeline keeps draining and the merge can
// reach the first error in sequence order without deadlocking.
func (p *Parallel) worker(i int, ictx context.Context) {
	defer p.wg.Done()
	wc, c, st := p.chains[i], p.wctx[i], &p.wstats[i]
	var seen map[string]struct{}
	var key []byte
	if p.hasDedup {
		seen = make(map[string]struct{})
	}
	// Aggregation mode: one value cache per worker (numeric parses are
	// reusable across morsels), one partial table per morsel (tables
	// must merge in dispatch order, so they cannot span morsels).
	var wvc *valCache
	if p.hasAgg {
		wvc = newValCache(p.aggText)
	}
	var failed error
	for {
		var m morsel
		var ok bool
		select {
		case m, ok = <-p.morsels:
		case <-ictx.Done():
			return
		}
		if !ok {
			return
		}
		var r morselResult
		if failed != nil {
			r = morselResult{seq: m.seq, err: failed}
		} else {
			wc.Seed.SetBatches([]*Batch{m.b})
			wc.Root.Reset()
			var batches []*Batch
			var tab *aggTable
			var err error
			switch {
			case p.hasAgg:
				tab = newAggTable(p.aggSpec, wvc)
				err = drainAggregate(c, wc.Root, tab)
			case p.hasDedup:
				clear(seen)
				batches, key, err = drainDedup(c, wc.Root, p.dedup, seen, key)
			default:
				batches, err = Materialize(c, wc.Root)
			}
			if err != nil {
				failed = err
				batches, tab = nil, nil
			}
			st.Morsels++
			for _, b := range batches {
				st.Batches++
				st.Rows += int64(b.Rows())
			}
			if tab != nil {
				st.Batches += tab.batches
				st.Rows += tab.rows
			}
			r = morselResult{seq: m.seq, batches: batches, tab: tab, err: err}
		}
		select {
		case p.results <- r:
		case <-ictx.Done():
			return
		}
	}
}

// drainAggregate folds op's stream into the partial table — the worker
// half of the aggregation pipeline breaker.
func drainAggregate(c *Ctx, op Operator, tab *aggTable) error {
	for {
		b, err := op.Next(c)
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		tab.addBatch(b)
	}
}

// drainDedup is Materialize with inline dedup on the packed slot key —
// the worker half of the DISTINCT pipeline breaker.
func drainDedup(c *Ctx, op Operator, slots []int, seen map[string]struct{}, key []byte) ([]*Batch, []byte, error) {
	var out []*Batch
	var cp *Batch
	for {
		b, err := op.Next(c)
		if err != nil {
			return nil, key, err
		}
		if b == nil {
			if cp != nil && cp.Rows() > 0 {
				out = append(out, cp)
			}
			return out, key, nil
		}
		for row := 0; row < b.Rows(); row++ {
			key = key[:0]
			for _, s := range slots {
				v := b.Get(s, row)
				key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			if _, dup := seen[string(key)]; dup {
				continue
			}
			seen[string(key)] = struct{}{}
			if cp == nil {
				cp = NewBatch(b.Slots())
			}
			cp.AppendRow(b, row)
			if cp.Full() {
				out = append(out, cp)
				cp = NewBatch(b.Slots())
			}
		}
	}
}

// nextResult surfaces morsel results in exact dispatch order: it parks
// out-of-order arrivals in pending and blocks on the results channel
// until the next sequence number shows up. Returns (nil, nil) at a
// clean end of stream.
func (p *Parallel) nextResult(c *Ctx) (*morselResult, error) {
	if p.err != nil {
		return nil, p.err
	}
	if p.done {
		return nil, nil
	}
	if !p.started {
		p.start(c)
	}
	//ctxpoll:ignore merge loop: blocks on the results channel; workers and the dispatcher poll cancellation and post errors, which close the channel path within one ticker interval
	for {
		if r, ok := p.pending[p.nextSeq]; ok {
			delete(p.pending, p.nextSeq)
			p.nextSeq++
			if r.err != nil {
				p.err = r.err
				p.stop()
				return nil, r.err
			}
			return r, nil
		}
		r, ok := <-p.results
		if !ok {
			// Cancellation can make workers drop results (their sends
			// select against ictx.Done), so a closed channel is a clean
			// end-of-stream only while the parent context is live —
			// otherwise the truncation must surface as the context error.
			if err := c.Poll(); err != nil {
				p.err = err
				p.stop()
				return nil, err
			}
			p.done = true
			p.stop()
			return nil, nil
		}
		rc := r
		p.pending[rc.seq] = &rc
	}
}

func (p *Parallel) Next(c *Ctx) (*Batch, error) {
	//ctxpoll:ignore replay loop: nextResult blocks on the polled results channel; the batch replay per result is bounded
	for {
		if p.cur != nil {
			//ctxpoll:ignore bounded replay of one morsel's batch list; the workers that produced it polled per batch
			for p.curPos < len(p.cur.batches) {
				b := p.cur.batches[p.curPos]
				p.curPos++
				if b.Rows() == 0 {
					continue
				}
				p.stats.Batches++
				p.stats.Rows += int64(b.Rows())
				return b, nil
			}
			p.cur = nil
		}
		r, err := p.nextResult(c)
		if err != nil || r == nil {
			return nil, err
		}
		p.cur, p.curPos = r, 0
	}
}

// nextTable yields the partial aggregation tables in dispatch order —
// the merge half of the aggregation pipeline breaker, consumed by
// GroupBy instead of Next when aggregation mode is on. Returns
// (nil, nil) at end of stream.
func (p *Parallel) nextTable(c *Ctx) (*aggTable, error) {
	//ctxpoll:ignore skip loop: nextResult blocks on the polled results channel
	for {
		r, err := p.nextResult(c)
		if err != nil || r == nil {
			return nil, err
		}
		if r.tab != nil {
			p.stats.Batches += r.tab.batches
			p.stats.Rows += r.tab.rows
			return r.tab, nil
		}
	}
}

// stop cancels the internal context, waits out every goroutine, and
// harvests the forked Ctxs' probe counters into the parent. Idempotent.
func (p *Parallel) stop() {
	if !p.started || p.stopped {
		return
	}
	p.stopped = true
	p.cancel()
	p.wg.Wait()
	p.pc.Probes += p.dctx.Probes
	for _, w := range p.wctx {
		p.pc.Probes += w.Probes
	}
}

// Close aborts any in-flight workers and reclaims their goroutines.
// Consumers that stop pulling early (LIMIT, ASK) never drive Next to
// end-of-stream, so the execution layer must Close the exchange when
// the query finishes.
func (p *Parallel) Close() { p.stop() }

// Reset rewinds the exchange for a fresh run. The compiler never places
// a Parallel inside a correlated subtree, so this is defensive: it
// tears the current run down and clears the merge state.
func (p *Parallel) Reset() {
	p.stop()
	p.in.Reset()
	for _, wc := range p.chains {
		wc.Root.Reset()
	}
	p.started, p.stopped, p.done = false, false, false
	p.err = nil
	p.pending, p.cur, p.curPos, p.nextSeq = nil, nil, 0, 0
	p.wstats = nil
}
