package exec

import "sparqlog/internal/rdf"

// tableJoin joins the input against a constant in-memory table of
// pre-interned ID rows: the operator behind VALUES blocks and
// materialized subquery results. For each input row × table row, a
// table cell either extends the binding, agrees with it, or (on
// disagreement) drops the combination; Unbound cells (UNDEF in VALUES,
// unbound subquery columns) constrain nothing.
type tableJoin struct {
	base
	in    Operator
	slots []int
	rows  [][]rdf.ID
	// capped opts into the MaxRows budget (subqueries were bounded in
	// the legacy evaluator; VALUES was not).
	capped  bool
	rowsCum int
}

// NewTableJoin returns the table join; each table row is aligned with
// slots.
func NewTableJoin(in Operator, slots []int, rows [][]rdf.ID, capped bool) Operator {
	return &tableJoin{base: newBase(slotsOf(in)), in: in, slots: slots, rows: rows, capped: capped}
}

func (t *tableJoin) Next(c *Ctx) (*Batch, error) {
	for {
		in, err := t.in.Next(c)
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		t.out.Reset()
		for row := 0; row < in.Rows(); row++ {
			if err := c.Check(255); err != nil {
				return nil, err
			}
			for _, trow := range t.rows {
				ok := true
				for ci, v := range trow {
					if v == Unbound {
						continue
					}
					if cur := in.Get(t.slots[ci], row); cur != Unbound && cur != v {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				r := t.out.AppendRow(in, row)
				for ci, v := range trow {
					if v != Unbound {
						t.out.Set(t.slots[ci], r, v)
					}
				}
			}
			if t.capped && c.MaxRows > 0 && t.rowsCum+t.out.Rows() > c.MaxRows {
				return nil, ErrRowLimit
			}
		}
		t.rowsCum += t.out.Rows()
		if b := t.emit(); b != nil {
			return b, nil
		}
	}
}

func (t *tableJoin) Reset() {
	t.in.Reset()
	t.rowsCum = 0
}
