package exec

import "sparqlog/internal/rdf"

// Unbound marks an unbound slot in a batch. It doubles as the
// impossible-constant marker: no snapshot dictionary grows to 2^32-1
// terms, so enumerating against it yields nothing.
const Unbound = ^rdf.ID(0)

// BatchSize is the target row capacity of a batch. Operators flush
// once a batch reaches it; a single input row's join fan-out is never
// split, so batches are soft-capped (a high-fanout row may overshoot).
const BatchSize = 1024

// Batch is a columnar set of bindings: one rdf.ID column per schema
// slot, all of equal length. A batch is owned by the operator that
// produced it and is overwritten by that operator's next Next call.
type Batch struct {
	cols [][]rdf.ID
	n    int
}

// NewBatch returns an empty batch with the given slot count.
func NewBatch(slots int) *Batch {
	return &Batch{cols: make([][]rdf.ID, slots)}
}

// Rows returns the number of rows.
func (b *Batch) Rows() int { return b.n }

// Slots returns the number of columns.
func (b *Batch) Slots() int { return len(b.cols) }

// Col returns the column of a slot (length Rows; do not mutate unless
// you own the batch).
func (b *Batch) Col(slot int) []rdf.ID { return b.cols[slot][:b.n] }

// Get returns the value at (slot, row).
func (b *Batch) Get(slot, row int) rdf.ID { return b.cols[slot][row] }

// Set overwrites the value at (slot, row).
func (b *Batch) Set(slot, row int, v rdf.ID) { b.cols[slot][row] = v }

// Reset empties the batch, keeping column capacity.
func (b *Batch) Reset() {
	for i := range b.cols {
		b.cols[i] = b.cols[i][:0]
	}
	b.n = 0
}

// Full reports whether the batch reached its target capacity.
func (b *Batch) Full() bool { return b.n >= BatchSize }

// AppendUnbound appends one all-unbound row and returns its index.
func (b *Batch) AppendUnbound() int {
	for i := range b.cols {
		b.cols[i] = append(b.cols[i], Unbound)
	}
	b.n++
	return b.n - 1
}

// AppendRow copies row of src (which must share the slot count) and
// returns the new row's index.
func (b *Batch) AppendRow(src *Batch, row int) int {
	for i := range b.cols {
		b.cols[i] = append(b.cols[i], src.cols[i][row])
	}
	b.n++
	return b.n - 1
}

// AppendFanout appends k copies of src's row, where k = len(vals) when
// vals is non-nil. Columns listed in slots receive the corresponding
// vals column instead of the replicated input value; a slot of -1
// skips that vals column. This is the columnar inner loop of the index
// join: one posting-list copy plus per-column replication, no per-row
// map or closure.
func (b *Batch) AppendFanout(src *Batch, row, k int, slots [3]int, vals [3][]rdf.ID) {
	for i := range b.cols {
		filled := false
		for j, s := range slots {
			if s == i && vals[j] != nil {
				b.cols[i] = append(b.cols[i], vals[j][:k]...)
				filled = true
				break
			}
		}
		if !filled {
			v := src.cols[i][row]
			col := b.cols[i]
			for x := 0; x < k; x++ {
				col = append(col, v)
			}
			b.cols[i] = col
		}
	}
	b.n += k
}
