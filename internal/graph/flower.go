package graph

// This file implements the petal/flower classification of Definition 6.1:
// a petal is a pair of nodes s, t joined by at least two node-disjoint
// paths (a cycle is a petal), and a flower is a node x with three kinds of
// attachments: chains (stamens), trees that are not chains (stems), and
// petals. A flower set is a graph in which every connected component is a
// flower.
//
// The test is built on biconnected components: in a flower, every cyclic
// biconnected component must contain the center x and be a "generalized
// theta graph" (two terminals joined by internally node-disjoint paths)
// with x as a terminal. Acyclic attachments are automatically chains or
// stems, so a connected graph is a flower exactly when such a center
// exists. Trees are flowers trivially (pick any node as center).

// biconnectedComponents returns the edge sets of the biconnected components
// as node-set slices (each component's distinct nodes). Self-loops are
// ignored here; callers handle them separately.
func (g *Graph) biconnectedComponents() [][]int {
	type edge struct{ u, v int }
	var comps [][]int
	disc := make([]int, g.n)
	low := make([]int, g.n)
	for i := range disc {
		disc[i] = -1
	}
	var stack []edge
	timer := 0

	popComponent := func(u, v int) {
		nodes := map[int]bool{}
		for len(stack) > 0 {
			e := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nodes[e.u] = true
			nodes[e.v] = true
			if e.u == u && e.v == v {
				break
			}
		}
		comp := make([]int, 0, len(nodes))
		for n := range nodes {
			comp = append(comp, n)
		}
		comps = append(comps, comp)
	}

	// Iterative DFS to avoid recursion limits on large star queries.
	type frame struct {
		u, parent int
		neighbors []int
		idx       int
	}
	for s := 0; s < g.n; s++ {
		if disc[s] != -1 {
			continue
		}
		stackF := []frame{{u: s, parent: -1, neighbors: g.Neighbors(s)}}
		disc[s] = timer
		low[s] = timer
		timer++
		for len(stackF) > 0 {
			f := &stackF[len(stackF)-1]
			if f.idx < len(f.neighbors) {
				v := f.neighbors[f.idx]
				f.idx++
				if v == f.parent {
					continue
				}
				if disc[v] == -1 {
					stack = append(stack, edge{f.u, v})
					disc[v] = timer
					low[v] = timer
					timer++
					stackF = append(stackF, frame{u: v, parent: f.u, neighbors: g.Neighbors(v)})
				} else if disc[v] < disc[f.u] {
					stack = append(stack, edge{f.u, v})
					if disc[v] < low[f.u] {
						low[f.u] = disc[v]
					}
				}
				continue
			}
			// Finished u; propagate to parent.
			stackF = stackF[:len(stackF)-1]
			if len(stackF) > 0 {
				p := &stackF[len(stackF)-1]
				if low[f.u] < low[p.u] {
					low[p.u] = low[f.u]
				}
				if low[f.u] >= disc[p.u] {
					popComponent(p.u, f.u)
				}
			}
		}
	}
	return comps
}

// petalTerminals examines a biconnected component given by its node set and
// reports whether it is a petal (generalized theta graph or cycle). For
// cycles every node can serve as a terminal, reported by anyTerminal. For
// proper theta graphs the two high-degree terminals are returned.
func (g *Graph) petalTerminals(comp []int) (terminals []int, anyTerminal, ok bool) {
	in := make(map[int]bool, len(comp))
	for _, u := range comp {
		in[u] = true
	}
	deg := func(u int) int {
		d := 0
		for v := range g.adj[u] {
			if in[v] {
				d++
			}
		}
		return d
	}
	var high []int
	for _, u := range comp {
		switch d := deg(u); {
		case d == 2:
		case d > 2:
			high = append(high, u)
		default:
			return nil, false, false // degree <2 cannot occur in a cyclic BCC
		}
	}
	switch len(high) {
	case 0:
		return nil, true, true // cycle: any node is a terminal
	case 2:
		if deg(high[0]) != deg(high[1]) {
			return nil, false, false
		}
		// Biconnected + exactly two branch nodes + all others degree two
		// implies internally node-disjoint s-t paths.
		return high, false, true
	default:
		return nil, false, false
	}
}

// IsFlower reports whether the graph is a flower (Definition 6.1). The
// graph must be connected and non-empty. Trees are flowers; a cyclic graph
// is a flower when some node x lies in every cyclic biconnected component
// and each such component is a petal with x as a terminal. A self-loop is
// treated as a trivial petal at its node.
func (g *Graph) IsFlower() bool {
	if g.n == 0 || !g.Connected() {
		return false
	}
	var cyclic [][]int
	for _, comp := range g.biconnectedComponents() {
		if g.componentEdges(comp) > len(comp)-1 {
			cyclic = append(cyclic, comp)
		}
	}
	// Candidate centers: all nodes initially; restrict by each constraint.
	candidates := make(map[int]bool, g.n)
	for u := 0; u < g.n; u++ {
		candidates[u] = true
	}
	for u := range g.loops {
		// Self-loop petals attach at their own node; the center must be
		// that node or the loop is a petal hanging off the center via...
		// no: a petal attaches at x directly, so the loop node must be x.
		for v := range candidates {
			if v != u {
				delete(candidates, v)
			}
		}
	}
	for _, comp := range cyclic {
		terms, anyTerm, ok := g.petalTerminals(comp)
		if !ok {
			return false
		}
		allowed := make(map[int]bool)
		if anyTerm {
			for _, u := range comp {
				allowed[u] = true
			}
		} else {
			for _, u := range terms {
				allowed[u] = true
			}
		}
		for v := range candidates {
			if !allowed[v] {
				delete(candidates, v)
			}
		}
		if len(candidates) == 0 {
			return false
		}
	}
	return len(candidates) > 0
}

// IsFlowerSet reports whether every connected component is a flower.
// The empty graph is vacuously a flower set, keeping the Table 4 rows
// cumulative for queries without triples.
func (g *Graph) IsFlowerSet() bool {
	if g.n == 0 {
		return true
	}
	for _, comp := range g.Components() {
		sub, _ := g.Subgraph(comp)
		if !sub.IsFlower() {
			return false
		}
	}
	return true
}

// FlowerAnatomy describes the decomposition of a flower around its center.
type FlowerAnatomy struct {
	Center  int
	Petals  int // cyclic attachments (incl. self-loops)
	Stamens int // chain attachments
	Stems   int // tree (non-chain) attachments
}

// Anatomy decomposes a connected flower around the given center candidate
// search; it returns the anatomy for the best (first valid) center and
// ok=false when the graph is not a flower.
func (g *Graph) Anatomy() (FlowerAnatomy, bool) {
	if !g.IsFlower() {
		return FlowerAnatomy{}, false
	}
	center := g.flowerCenter()
	a := FlowerAnatomy{Center: center}
	if g.loops[center] {
		a.Petals++
	}
	// Remove center; classify each remaining component by how it hangs off.
	var rest []int
	for u := 0; u < g.n; u++ {
		if u != center {
			rest = append(rest, u)
		}
	}
	sub, orig := g.Subgraph(rest)
	for _, comp := range sub.Components() {
		compOrig := make(map[int]bool, len(comp))
		for _, u := range comp {
			compOrig[orig[u]] = true
		}
		// Count edges from the center into this component.
		links := 0
		for v := range g.adj[center] {
			if compOrig[v] {
				links++
			}
		}
		csub, _ := sub.Subgraph(comp)
		switch {
		case links >= 2:
			a.Petals++
		case csub.IsChain() || csub.n == 1:
			a.Stamens++
		default:
			a.Stems++
		}
	}
	return a, true
}

// flowerCenter returns a valid flower center, preferring nodes constrained
// by cyclic biconnected components, falling back to a maximum-degree node
// for trees.
func (g *Graph) flowerCenter() int {
	var cyclic [][]int
	for _, comp := range g.biconnectedComponents() {
		if g.componentEdges(comp) > len(comp)-1 {
			cyclic = append(cyclic, comp)
		}
	}
	for u := range g.loops {
		return u
	}
	if len(cyclic) > 0 {
		candidates := make(map[int]bool)
		terms, anyTerm, _ := g.petalTerminals(cyclic[0])
		if anyTerm {
			for _, u := range cyclic[0] {
				candidates[u] = true
			}
		} else {
			for _, u := range terms {
				candidates[u] = true
			}
		}
		for _, comp := range cyclic[1:] {
			terms, anyTerm, _ := g.petalTerminals(comp)
			allowed := make(map[int]bool)
			if anyTerm {
				for _, u := range comp {
					allowed[u] = true
				}
			} else {
				for _, u := range terms {
					allowed[u] = true
				}
			}
			for v := range candidates {
				if !allowed[v] {
					delete(candidates, v)
				}
			}
		}
		best := -1
		for u := range candidates {
			if best == -1 || u < best {
				best = u
			}
		}
		if best >= 0 {
			return best
		}
	}
	// Tree case: pick the highest-degree node.
	best, bestDeg := 0, -1
	for u := 0; u < g.n; u++ {
		if d := len(g.adj[u]); d > bestDeg {
			best, bestDeg = u, d
		}
	}
	return best
}
