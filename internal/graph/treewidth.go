package graph

// Exact treewidth for the small graphs arising from queries.
//
// The paper (Section 6.2) reports that all CQ-like queries have treewidth
// at most two except a single query of treewidth three (Figure 7). The
// classifier therefore needs three things, all implemented here:
//
//  1. a linear-time treewidth-one certificate (forest test),
//  2. a linear-time treewidth-two certificate (series-parallel style
//     reduction: repeatedly delete degree-<=1 nodes and contract degree-2
//     nodes; the graph has treewidth <= 2 iff the reduction empties it),
//  3. an exact branch-and-bound over elimination orderings for the rare
//     remainder, feasible because those graphs are tiny.

// MaxExactNodes bounds the exact treewidth search; canonical graphs beyond
// this size are classified only up to the fast certificates.
const MaxExactNodes = 64

// Treewidth returns the exact treewidth of the graph (max over connected
// components). The empty graph and a single node have treewidth zero. For
// graphs larger than MaxExactNodes that fail both fast certificates, it
// returns -1 (unknown); such graphs do not occur in the paper's corpus.
// Self-loops do not affect treewidth and are ignored.
func (g *Graph) Treewidth() int {
	if g.n == 0 {
		return 0
	}
	best := 0
	for _, comp := range g.Components() {
		sub, _ := g.Subgraph(comp)
		w := sub.connectedTreewidth()
		if w == -1 {
			return -1
		}
		if w > best {
			best = w
		}
	}
	return best
}

func (g *Graph) connectedTreewidth() int {
	if g.edges == 0 {
		return 0
	}
	if g.edges == g.n-1 {
		return 1 // tree
	}
	if g.widthAtMostTwo() {
		return 2
	}
	if g.n > MaxExactNodes {
		return -1
	}
	// Branch and bound from 3 upward. The greedy min-fill upper bound
	// gives the initial ceiling.
	ub := g.greedyWidth()
	for k := 3; k < ub; k++ {
		if g.widthAtMost(k) {
			return k
		}
	}
	return ub
}

// widthAtMostTwo applies the classic reduction: repeatedly remove nodes of
// degree <= 1 and contract nodes of degree 2 (connecting their neighbors).
// The graph has treewidth <= 2 iff the reduction reaches the empty graph.
func (g *Graph) widthAtMostTwo() bool {
	adj := make([]map[int]bool, g.n)
	alive := make([]bool, g.n)
	var queue []int
	for u := 0; u < g.n; u++ {
		adj[u] = make(map[int]bool, len(g.adj[u]))
		for v := range g.adj[u] {
			adj[u][v] = true
		}
		alive[u] = true
		queue = append(queue, u)
	}
	remaining := g.n
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !alive[u] || len(adj[u]) > 2 {
			continue
		}
		switch len(adj[u]) {
		case 0, 1:
			for v := range adj[u] {
				delete(adj[v], u)
				queue = append(queue, v)
			}
		case 2:
			var nb [2]int
			i := 0
			for v := range adj[u] {
				nb[i] = v
				i++
			}
			delete(adj[nb[0]], u)
			delete(adj[nb[1]], u)
			if !adj[nb[0]][nb[1]] {
				adj[nb[0]][nb[1]] = true
				adj[nb[1]][nb[0]] = true
			}
			queue = append(queue, nb[0], nb[1])
		}
		alive[u] = false
		remaining--
	}
	return remaining == 0
}

// greedyWidth runs the min-fill elimination heuristic and returns the
// resulting width, an upper bound on treewidth.
func (g *Graph) greedyWidth() int {
	adj := cloneAdj(g)
	alive := make([]bool, g.n)
	for i := range alive {
		alive[i] = true
	}
	width := 0
	for remaining := g.n; remaining > 0; remaining-- {
		// Pick the alive node adding fewest fill edges; break ties by
		// smallest degree.
		best, bestFill, bestDeg := -1, 1<<30, 1<<30
		for u := 0; u < g.n; u++ {
			if !alive[u] {
				continue
			}
			fill := fillCount(adj, u)
			d := len(adj[u])
			if fill < bestFill || (fill == bestFill && d < bestDeg) {
				best, bestFill, bestDeg = u, fill, d
			}
		}
		if d := len(adj[best]); d > width {
			width = d
		}
		eliminate(adj, best)
		alive[best] = false
	}
	return width
}

// widthAtMost performs a depth-first search over elimination orderings,
// checking whether some ordering never eliminates a node of degree > k.
// Memoization on the set of eliminated nodes keeps it feasible for the
// tiny graphs that reach this path (<= MaxExactNodes nodes).
func (g *Graph) widthAtMost(k int) bool {
	if g.n > 64 {
		return false
	}
	memo := make(map[uint64]bool)
	adj := cloneAdj(g)
	var rec func(eliminated uint64, remaining int) bool
	rec = func(eliminated uint64, remaining int) bool {
		if remaining == 0 {
			return true
		}
		if done, ok := memo[eliminated]; ok {
			return done
		}
		result := false
		for u := 0; u < g.n && !result; u++ {
			if eliminated&(1<<uint(u)) != 0 {
				continue
			}
			if len(adj[u]) > k {
				continue
			}
			// Simplicial-first optimization: eliminating a simplicial
			// node of degree <= k is always safe, no need to branch.
			removed := eliminateReversible(adj, u)
			if rec(eliminated|1<<uint(u), remaining-1) {
				result = true
			}
			restore(adj, u, removed)
			if result {
				break
			}
		}
		memo[eliminated] = result
		return result
	}
	return rec(0, g.n)
}

func cloneAdj(g *Graph) []map[int]bool {
	adj := make([]map[int]bool, g.n)
	for u := 0; u < g.n; u++ {
		adj[u] = make(map[int]bool, len(g.adj[u]))
		for v := range g.adj[u] {
			adj[u][v] = true
		}
	}
	return adj
}

func fillCount(adj []map[int]bool, u int) int {
	nbs := make([]int, 0, len(adj[u]))
	for v := range adj[u] {
		nbs = append(nbs, v)
	}
	fill := 0
	for i := 0; i < len(nbs); i++ {
		for j := i + 1; j < len(nbs); j++ {
			if !adj[nbs[i]][nbs[j]] {
				fill++
			}
		}
	}
	return fill
}

// eliminate removes u, connecting its neighborhood into a clique.
func eliminate(adj []map[int]bool, u int) {
	nbs := make([]int, 0, len(adj[u]))
	for v := range adj[u] {
		nbs = append(nbs, v)
	}
	for _, v := range nbs {
		delete(adj[v], u)
	}
	for i := 0; i < len(nbs); i++ {
		for j := i + 1; j < len(nbs); j++ {
			adj[nbs[i]][nbs[j]] = true
			adj[nbs[j]][nbs[i]] = true
		}
	}
	adj[u] = make(map[int]bool)
}

type removedState struct {
	neighbors []int
	fillAdded [][2]int
}

// eliminateReversible eliminates u but records enough state to undo.
func eliminateReversible(adj []map[int]bool, u int) removedState {
	var st removedState
	for v := range adj[u] {
		st.neighbors = append(st.neighbors, v)
	}
	for _, v := range st.neighbors {
		delete(adj[v], u)
	}
	for i := 0; i < len(st.neighbors); i++ {
		for j := i + 1; j < len(st.neighbors); j++ {
			a, b := st.neighbors[i], st.neighbors[j]
			if !adj[a][b] {
				adj[a][b] = true
				adj[b][a] = true
				st.fillAdded = append(st.fillAdded, [2]int{a, b})
			}
		}
	}
	adj[u] = make(map[int]bool)
	return st
}

// restore undoes eliminateReversible.
func restore(adj []map[int]bool, u int, st removedState) {
	for _, e := range st.fillAdded {
		delete(adj[e[0]], e[1])
		delete(adj[e[1]], e[0])
	}
	adj[u] = make(map[int]bool, len(st.neighbors))
	for _, v := range st.neighbors {
		adj[u][v] = true
		adj[v][u] = true
	}
}
