package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// path builds a chain 0-1-2-...-k.
func path(k int) *Graph {
	g := New(k + 1)
	for i := 0; i < k; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// cycle builds a cycle of length k.
func cycle(k int) *Graph {
	g := New(k)
	for i := 0; i < k; i++ {
		g.AddEdge(i, (i+1)%k)
	}
	return g
}

// star builds a star with k leaves around node 0.
func star(k int) *Graph {
	g := New(k + 1)
	for i := 1; i <= k; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// clique builds K_n.
func clique(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func TestEdgeSetSemantics(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 1)
	if g.M() != 1 {
		t.Errorf("M = %d, want 1 (parallel edges collapse)", g.M())
	}
	g.AddEdge(1, 1)
	if g.Loops() != 1 || g.M() != 1 {
		t.Errorf("loops = %d, M = %d", g.Loops(), g.M())
	}
}

func TestComponents(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if !g.Connected() {
		_ = 0 // expected: not connected
	} else {
		t.Error("graph should not be connected")
	}
}

func TestShapePredicates(t *testing.T) {
	tests := []struct {
		name                                                             string
		g                                                                *Graph
		singleEdge, chain, chainSet, tree, forest, starP, cycleP, flower bool
	}{
		{"single edge", path(1), true, true, true, true, true, false, false, true},
		{"chain3", path(3), false, true, true, true, true, false, false, true},
		{"cycle3", cycle(3), false, false, false, false, false, false, true, true},
		{"cycle5", cycle(5), false, false, false, false, false, false, true, true},
		{"star4", star(4), false, false, false, true, true, true, false, true},
		{"K4", clique(4), false, false, false, false, false, false, false, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.g.IsSingleEdge(); got != tc.singleEdge {
				t.Errorf("IsSingleEdge = %v, want %v", got, tc.singleEdge)
			}
			if got := tc.g.IsChain(); got != tc.chain {
				t.Errorf("IsChain = %v, want %v", got, tc.chain)
			}
			if got := tc.g.IsChainSet(); got != tc.chainSet {
				t.Errorf("IsChainSet = %v, want %v", got, tc.chainSet)
			}
			if got := tc.g.IsTree(); got != tc.tree {
				t.Errorf("IsTree = %v, want %v", got, tc.tree)
			}
			if got := tc.g.IsForest(); got != tc.forest {
				t.Errorf("IsForest = %v, want %v", got, tc.forest)
			}
			if got := tc.g.IsStar(); got != tc.starP {
				t.Errorf("IsStar = %v, want %v", got, tc.starP)
			}
			if got := tc.g.IsCycle(); got != tc.cycleP {
				t.Errorf("IsCycle = %v, want %v", got, tc.cycleP)
			}
			if got := tc.g.IsFlower(); got != tc.flower {
				t.Errorf("IsFlower = %v, want %v", got, tc.flower)
			}
		})
	}
}

func TestChainSetMultipleChains(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	if !g.IsChainSet() {
		t.Error("two disjoint chains should form a chain set")
	}
	if g.IsChain() {
		t.Error("disconnected graph is not a chain")
	}
	if !g.IsForest() || g.IsTree() {
		t.Error("chain set should be forest but not tree")
	}
}

func TestStarRequiresBranchNode(t *testing.T) {
	// A chain has no node with three neighbors, so it is not a star.
	if path(5).IsStar() {
		t.Error("chain must not be a star")
	}
	// Two branch nodes: not a star.
	g := New(8)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(4, 6)
	g.AddEdge(4, 7)
	if g.IsStar() {
		t.Error("double star must not be a star")
	}
	if !g.IsTree() {
		t.Error("double star is still a tree")
	}
}

func TestGirth(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"acyclic", path(4), 0},
		{"triangle", cycle(3), 3},
		{"C4", cycle(4), 4},
		{"C5", cycle(5), 5},
		{"C14", cycle(14), 14},
		{"K4", clique(4), 3},
	}
	for _, tc := range tests {
		if got := tc.g.Girth(); got != tc.want {
			t.Errorf("%s: girth = %d, want %d", tc.name, got, tc.want)
		}
	}
	// Self-loop has girth 1.
	g := path(2)
	g.AddEdge(1, 1)
	if got := g.Girth(); got != 1 {
		t.Errorf("self-loop girth = %d, want 1", got)
	}
	// Cycle with a chord: girth is the shorter sub-cycle.
	g2 := cycle(6)
	g2.AddEdge(0, 3)
	if got := g2.Girth(); got != 4 {
		t.Errorf("chorded C6 girth = %d, want 4", got)
	}
}

// buildFlower constructs the Figure 6 anatomy: a center with p petals
// (each two paths of length 2), s stamens (chains of length 2), and
// m stems (a 3-leaf star hanging off the center).
func buildFlower(p, s, m int) *Graph {
	// Nodes: center 0; each petal needs 3 nodes; each stamen 2; each stem 4.
	n := 1 + 3*p + 2*s + 4*m
	g := New(n)
	next := 1
	for i := 0; i < p; i++ {
		a, b, t := next, next+1, next+2
		next += 3
		g.AddEdge(0, a)
		g.AddEdge(a, t)
		g.AddEdge(0, b)
		g.AddEdge(b, t)
	}
	for i := 0; i < s; i++ {
		a, b := next, next+1
		next += 2
		g.AddEdge(0, a)
		g.AddEdge(a, b)
	}
	for i := 0; i < m; i++ {
		hub := next
		g.AddEdge(0, hub)
		g.AddEdge(hub, next+1)
		g.AddEdge(hub, next+2)
		g.AddEdge(hub, next+3)
		next += 4
	}
	return g
}

func TestFlowerFigure6(t *testing.T) {
	// The paper's Figure 6 flower: 4 petals, 10 stamens, 0 stems.
	g := buildFlower(4, 10, 0)
	if !g.IsFlower() {
		t.Fatal("Figure 6 graph should be a flower")
	}
	a, ok := g.Anatomy()
	if !ok {
		t.Fatal("anatomy failed")
	}
	if a.Petals != 4 || a.Stamens != 10 || a.Stems != 0 {
		t.Errorf("anatomy = %+v, want 4 petals, 10 stamens, 0 stems", a)
	}
	if got := g.Treewidth(); got != 2 {
		t.Errorf("flower treewidth = %d, want 2", got)
	}
}

func TestFlowerWithStems(t *testing.T) {
	g := buildFlower(1, 2, 1)
	a, ok := g.Anatomy()
	if !ok {
		t.Fatal("should be flower")
	}
	if a.Petals != 1 || a.Stamens != 2 || a.Stems != 1 {
		t.Errorf("anatomy = %+v", a)
	}
}

func TestPetalWithThreePaths(t *testing.T) {
	// s=0, t=4, three node-disjoint paths: 0-1-4, 0-2-4, 0-3-4.
	g := New(5)
	for i := 1; i <= 3; i++ {
		g.AddEdge(0, i)
		g.AddEdge(i, 4)
	}
	if !g.IsFlower() {
		t.Error("theta graph (petal) should be a flower")
	}
	if g.Treewidth() != 2 {
		t.Errorf("theta treewidth = %d, want 2", g.Treewidth())
	}
}

func TestTwoCyclesSharingNoNodeNotFlower(t *testing.T) {
	// Two triangles joined by a bridge: cyclic BCCs do not share a node.
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	g.AddEdge(2, 3)
	if g.IsFlower() {
		t.Error("two disjoint cycles cannot form a flower")
	}
	if !New(6).IsFlowerSet() == false {
		_ = 0
	}
	// But as separate components they form a flower set.
	g2 := New(6)
	g2.AddEdge(0, 1)
	g2.AddEdge(1, 2)
	g2.AddEdge(2, 0)
	g2.AddEdge(3, 4)
	g2.AddEdge(4, 5)
	g2.AddEdge(5, 3)
	if !g2.IsFlowerSet() {
		t.Error("two separate triangles are a flower set")
	}
	if g2.IsFlower() {
		t.Error("disconnected graph is not a single flower")
	}
}

func TestTwoCyclesSharingCenterIsFlower(t *testing.T) {
	// Two triangles sharing node 0.
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(0, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 0)
	if !g.IsFlower() {
		t.Error("two triangles sharing a node form a flower")
	}
	a, _ := g.Anatomy()
	if a.Petals != 2 {
		t.Errorf("petals = %d, want 2", a.Petals)
	}
}

func TestTreewidthExact(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"empty", New(3), 0},
		{"edge", path(1), 1},
		{"chain", path(6), 1},
		{"star", star(5), 1},
		{"cycle3", cycle(3), 2},
		{"cycle8", cycle(8), 2},
		{"theta", buildFlower(1, 0, 0), 2},
		{"K4", clique(4), 3},
		{"K5", clique(5), 4},
	}
	for _, tc := range tests {
		if got := tc.g.Treewidth(); got != tc.want {
			t.Errorf("%s: treewidth = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestFigure7Treewidth3(t *testing.T) {
	// The paper's Figure 7 query: complete bipartite-like join of
	// ?subject and ?object through nationality, birthPlace, genre:
	// K_{2,3}-plus structure. Build it exactly: two "hub" variables
	// subject(0), object(1), and three shared value variables 2,3,4,
	// where both hubs connect to all three values... that is K_{2,3},
	// treewidth 2. Figure 7 actually joins subject and object via SIX
	// distinct value nodes in a crossed pattern; the published query is
	// the K_{3,3}-like grid with treewidth 3. We reproduce it as the
	// 3x3 rook-ish join: subject-vals a,b,c, object-vals a,b,c crossed.
	// The documented real query is:
	//   ?s nationality ?x . ?s birthPlace ?y . ?s genre ?z .
	//   ?o genre ?x    . ?o birthPlace ?y ... (crossing through shared vars)
	// A faithful small graph with treewidth 3 is K_{3,3}:
	g := New(6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			g.AddEdge(i, j)
		}
	}
	if got := g.Treewidth(); got != 3 {
		t.Errorf("K33 treewidth = %d, want 3", got)
	}
}

func TestTreewidthDisconnected(t *testing.T) {
	// Max over components.
	g := New(8)
	g.AddEdge(0, 1) // tw 1
	// K4 on 4..7: tw 3.
	for i := 4; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			g.AddEdge(i, j)
		}
	}
	if got := g.Treewidth(); got != 3 {
		t.Errorf("treewidth = %d, want 3", got)
	}
}

func TestSubgraph(t *testing.T) {
	g := cycle(5)
	sub, orig := g.Subgraph([]int{0, 1, 2})
	if sub.M() != 2 {
		t.Errorf("subgraph edges = %d, want 2", sub.M())
	}
	if len(orig) != 3 || orig[0] != 0 {
		t.Errorf("orig mapping = %v", orig)
	}
}

// Property: for random graphs, the fast tw<=2 certificate agrees with the
// exact branch-and-bound.
func TestWidthTwoCertificateAgreesWithExact(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(7))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(7)
		g := New(n)
		m := rng.Intn(n * 2)
		for i := 0; i < m; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		// Strip loops: widthAtMostTwo ignores loops by construction but
		// the exact check operates on simple adjacency too.
		fast := g.widthAtMostTwo()
		exact := g.Treewidth() <= 2
		return fast == exact
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: forests are always flowers-sets and have treewidth <= 1;
// adding one extra edge to a tree yields treewidth 2 and girth > 0.
func TestTreePlusEdgeProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(11))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		g := New(n)
		// Random tree via random parent attachment.
		for i := 1; i < n; i++ {
			g.AddEdge(i, rng.Intn(i))
		}
		if !g.IsTree() || g.Treewidth() != 1 || !g.IsFlowerSet() || g.Girth() != 0 {
			return false
		}
		// Add one non-tree edge.
		for {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
				break
			}
		}
		return g.Treewidth() == 2 && g.Girth() >= 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBiconnectedComponents(t *testing.T) {
	// Triangle with a tail: one cyclic BCC (the triangle) and one bridge.
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	comps := g.biconnectedComponents()
	var cyclic int
	for _, c := range comps {
		if g.componentEdges(c) > len(c)-1 {
			cyclic++
		}
	}
	if cyclic != 1 {
		t.Errorf("cyclic BCCs = %d, want 1", cyclic)
	}
	if len(comps) != 3 {
		t.Errorf("BCCs = %d, want 3", len(comps))
	}
}
