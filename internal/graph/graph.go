// Package graph implements the undirected graphs and graph algorithms used
// by the shape analysis of Section 6 of the paper: connectivity, girth,
// the tree-like shape predicates (chain, chain set, star, tree, forest,
// cycle), the petal/flower decomposition of Definition 6.1, and exact
// treewidth for the small graphs that arise from queries.
//
// Graphs here are canonical graphs of queries: simple undirected graphs
// (edge sets, so parallel query edges collapse) that may contain self-loops
// (from triples like ?x :p ?x).
package graph

import "sort"

// Graph is an undirected graph over nodes 0..N-1 with set semantics for
// edges. Self-loops are permitted and tracked separately from the simple
// adjacency structure.
type Graph struct {
	n     int
	adj   []map[int]bool
	loops map[int]bool
	edges int // number of non-loop edges
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	return &Graph{n: n, adj: adj, loops: make(map[int]bool)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of distinct non-loop edges.
func (g *Graph) M() int { return g.edges }

// Loops returns the number of nodes carrying a self-loop.
func (g *Graph) Loops() int { return len(g.loops) }

// AddEdge inserts the undirected edge {u, v}. Adding an existing edge is a
// no-op (edges form a set); u == v records a self-loop.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		g.loops[u] = true
		return
	}
	if !g.adj[u][v] {
		g.adj[u][v] = true
		g.adj[v][u] = true
		g.edges++
	}
}

// HasEdge reports whether {u, v} is an edge (or a self-loop when u == v).
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return g.loops[u]
	}
	return g.adj[u][v]
}

// Degree returns the number of distinct non-loop neighbors of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// HasLoop reports whether node u has a self-loop.
func (g *Graph) HasLoop(u int) bool { return g.loops[u] }

// Neighbors returns the sorted neighbor list of u (self-loops excluded).
func (g *Graph) Neighbors(u int) []int {
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Components returns the connected components as sorted node slices, in
// order of smallest contained node.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Connected reports whether the graph is connected (true for the empty and
// single-node graphs).
func (g *Graph) Connected() bool { return len(g.Components()) <= 1 }

// Subgraph returns the induced subgraph on nodes, together with the mapping
// from new node index to original node index.
func (g *Graph) Subgraph(nodes []int) (*Graph, []int) {
	idx := make(map[int]int, len(nodes))
	orig := make([]int, len(nodes))
	for i, u := range nodes {
		idx[u] = i
		orig[i] = u
	}
	sub := New(len(nodes))
	for i, u := range nodes {
		if g.loops[u] {
			sub.loops[i] = true
		}
		for v := range g.adj[u] {
			if j, ok := idx[v]; ok && i < j {
				sub.AddEdge(i, j)
			}
		}
	}
	return sub, orig
}

// edgeCount of component nodes (assumes comp is a component: counts edges
// with both endpoints inside).
func (g *Graph) componentEdges(comp []int) int {
	in := make(map[int]bool, len(comp))
	for _, u := range comp {
		in[u] = true
	}
	cnt := 0
	for _, u := range comp {
		for v := range g.adj[u] {
			if in[v] && u < v {
				cnt++
			}
		}
	}
	return cnt
}

func (g *Graph) componentHasLoop(comp []int) bool {
	for _, u := range comp {
		if g.loops[u] {
			return true
		}
	}
	return false
}

// IsChain reports whether the graph is a single chain (path) of length >= 1:
// connected, acyclic, all degrees at most two, no self-loops. A single edge
// is a chain of length one.
func (g *Graph) IsChain() bool {
	if g.n == 0 || g.edges == 0 || len(g.loops) > 0 {
		return false
	}
	if !g.Connected() || g.edges != g.n-1 {
		return false
	}
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) > 2 {
			return false
		}
	}
	return true
}

// IsChainSet reports whether every connected component is a chain.
// The empty graph is vacuously a chain set (a query without triples).
func (g *Graph) IsChainSet() bool {
	if g.n == 0 {
		return true
	}
	if len(g.loops) > 0 {
		return false
	}
	for _, comp := range g.Components() {
		m := g.componentEdges(comp)
		if m != len(comp)-1 {
			return false
		}
		for _, u := range comp {
			if len(g.adj[u]) > 2 {
				return false
			}
		}
	}
	return true
}

// IsSingleEdge reports whether the graph is exactly one edge.
func (g *Graph) IsSingleEdge() bool {
	return g.n == 2 && g.edges == 1 && len(g.loops) == 0
}

// IsTree reports whether the graph is connected and acyclic with at least
// one node.
func (g *Graph) IsTree() bool {
	if g.n == 0 || len(g.loops) > 0 {
		return false
	}
	return g.Connected() && g.edges == g.n-1
}

// IsForest reports whether every component is a tree.
func (g *Graph) IsForest() bool {
	if len(g.loops) > 0 {
		return false
	}
	for _, comp := range g.Components() {
		if g.componentEdges(comp) != len(comp)-1 {
			return false
		}
	}
	return true
}

// IsStar reports whether the graph is a tree with exactly one node having
// more than two neighbors (Definition in Section 6.1).
func (g *Graph) IsStar() bool {
	if !g.IsTree() {
		return false
	}
	centers := 0
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) > 2 {
			centers++
		}
	}
	return centers == 1
}

// IsCycle reports whether the graph is a single cycle: connected, every
// degree exactly two, edges == nodes, no self-loops, length >= 3.
func (g *Graph) IsCycle() bool {
	if g.n < 3 || len(g.loops) > 0 || g.edges != g.n || !g.Connected() {
		return false
	}
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) != 2 {
			return false
		}
	}
	return true
}

// Girth returns the length of the shortest cycle, or 0 if the graph is
// acyclic. Self-loops count as cycles of length one.
func (g *Graph) Girth() int {
	if len(g.loops) > 0 {
		return 1
	}
	best := 0
	// BFS from every node; a non-tree edge at depth d closes a cycle of
	// length dist(u)+dist(v)+1.
	dist := make([]int, g.n)
	parent := make([]int, g.n)
	for s := 0; s < g.n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		parent[s] = -1
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := range g.adj[u] {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					parent[v] = u
					queue = append(queue, v)
				} else if v != parent[u] {
					cyc := dist[u] + dist[v] + 1
					if best == 0 || cyc < best {
						best = cyc
					}
				}
			}
		}
	}
	return best
}
