package lint

import (
	"strings"
	"testing"

	"sparqlog/internal/sparql"
)

func parse(t *testing.T, src string) *sparql.Query {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

// TestPassCodes lints a table of queries and checks the exact set of
// distinct diagnostic codes each produces.
func TestPassCodes(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		codes string // comma-joined sorted distinct codes, "" for clean
	}{
		{
			"clean",
			`SELECT ?s WHERE { ?s <urn:p> ?o . FILTER(?o > 3) }`,
			"",
		},
		{
			"filter-false",
			`SELECT * WHERE { ?s ?p ?o . FILTER(false) }`,
			"SQL001",
		},
		{
			"contradictory-equalities",
			`SELECT * WHERE { ?s <urn:p> ?o . FILTER(?o = <urn:a> && ?o = <urn:b>) }`,
			"SQL001",
		},
		{
			"prefixed-contradiction",
			`PREFIX ex: <http://example.org/>
			 SELECT * WHERE { ?s <urn:p> ?o . FILTER(?o = ex:a && ?o = ex:b) }`,
			"SQL001",
		},
		{
			"self-comparison",
			`SELECT * WHERE { ?s <urn:p> ?o . FILTER(?o != ?o) }`,
			"SQL001",
		},
		{
			// Numeric interval is empty but the lexicographic regime
			// admits "1a": 10 < "1a" < "2" as strings. Must NOT flag.
			"numeric-interval-lex-escape",
			`SELECT * WHERE { ?s <urn:p> ?o . FILTER(?o > 10 && ?o < 2) }`,
			"",
		},
		{
			// Both regimes empty: numerically 5 < x < 3 is empty and
			// lexicographically "5" < x < "3" is empty too.
			"interval-empty-both-regimes",
			`SELECT * WHERE { ?s <urn:p> ?o . FILTER(?o > 5 && ?o < 3) }`,
			"SQL001",
		},
		{
			"cartesian-product",
			`SELECT * WHERE { ?a <urn:p> ?b . ?c <urn:p> ?d }`,
			"SQL002",
		},
		{
			// A filter mentioning both sides connects the components.
			"filter-connects",
			`SELECT * WHERE { ?a <urn:p> ?b . ?c <urn:p> ?d . FILTER(?b = ?d) }`,
			"SQL007",
		},
		{
			// A dead filter variable always errors, so the filter drops
			// every row: both the unbound-var and unsat passes fire.
			"unbound-filter-var",
			`SELECT * WHERE { ?s ?p ?o . FILTER(?x > 1) }`,
			"SQL001,SQL003",
		},
		{
			"dead-projection",
			`SELECT ?s ?missing WHERE { ?s ?p ?o }`,
			"SQL004",
		},
		{
			"non-well-designed-optional",
			`SELECT * WHERE { ?s <urn:p> ?o OPTIONAL { ?s <urn:q> ?x } OPTIONAL { ?y <urn:r> ?x } }`,
			"SQL005",
		},
		{
			"well-designed-optional",
			`SELECT * WHERE { ?s <urn:p> ?o OPTIONAL { ?s <urn:q> ?x } }`,
			"",
		},
		{
			"duplicate-union",
			`SELECT * WHERE { { ?s <urn:p> ?o } UNION { ?s <urn:p> ?o } }`,
			"SQL006",
		},
		{
			"distinct-union",
			`SELECT * WHERE { { ?s <urn:p> ?o } UNION { ?s <urn:q> ?o } }`,
			"",
		},
		{
			"collapsible-equality",
			`SELECT ?a WHERE { ?a <urn:p> ?b . ?a <urn:q> ?c . FILTER(?b = ?c) }`,
			"SQL007",
		},
		{
			"unbound-order-key",
			`SELECT ?s WHERE { ?s <urn:p> ?o } ORDER BY ?x ?o`,
			"SQL008",
		},
		{
			"unbound-order-key-in-expr",
			`SELECT ?s WHERE { ?s <urn:p> ?o } ORDER BY DESC(?o + ?nope)`,
			"SQL008",
		},
		{
			"order-key-bound",
			`SELECT ?s WHERE { ?s <urn:p> ?o } ORDER BY DESC(?o) ?s`,
			"",
		},
		{
			"order-key-select-alias",
			`SELECT (COUNT(*) AS ?c) WHERE { ?s <urn:p> ?o } ORDER BY DESC(?c)`,
			"",
		},
		{
			"order-key-group-as-alias",
			`SELECT (COUNT(*) AS ?c) WHERE { ?s <urn:p> ?o } GROUP BY (?o AS ?k) ORDER BY ?k`,
			"",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := Run(parse(t, tc.src))
			got := strings.Join(r.Codes(), ",")
			if got != tc.codes {
				t.Fatalf("codes = %q, want %q\ndiagnostics: %v", got, tc.codes, r.Diagnostics)
			}
		})
	}
}

// TestSubqueryScoping checks that passes use per-scope variable sets:
// a filter over a subquery-internal variable is fine inside the
// subquery, and wrong outside it.
func TestSubqueryScoping(t *testing.T) {
	// ?o is bindable inside the subquery scope; no diagnostics.
	inner := `SELECT ?s WHERE { { SELECT ?s WHERE { ?s <urn:p> ?o . FILTER(?o > 5) } } }`
	if r := Run(parse(t, inner)); len(r.Diagnostics) != 0 {
		t.Fatalf("inner-scope filter flagged: %v", r.Diagnostics)
	}
	// ?o is NOT projected out of the subquery, so the outer filter sees
	// a never-bound variable.
	outer := `SELECT ?s WHERE { { SELECT ?s WHERE { ?s <urn:p> ?o } } FILTER(?o > 5) }`
	r := Run(parse(t, outer))
	got := strings.Join(r.Codes(), ",")
	if got != "SQL001,SQL003" {
		t.Fatalf("outer-scope filter codes = %q, want SQL001,SQL003: %v", got, r.Diagnostics)
	}
}

// TestUnboundOrderKeyScoping checks SQL008 honors subquery scopes: a
// key over a subquery-internal variable is fine inside the subquery
// and a no-op outside it (the variable isn't projected out).
func TestUnboundOrderKeyScoping(t *testing.T) {
	inner := `SELECT ?s WHERE { { SELECT ?s WHERE { ?s <urn:p> ?o } ORDER BY ?o } }`
	if r := Run(parse(t, inner)); len(r.Diagnostics) != 0 {
		t.Fatalf("inner-scope order key flagged: %v", r.Diagnostics)
	}
	outer := `SELECT ?s WHERE { { SELECT ?s WHERE { ?s <urn:p> ?o } } } ORDER BY ?o`
	r := Run(parse(t, outer))
	if got := strings.Join(r.Codes(), ","); got != "SQL008" {
		t.Fatalf("outer-scope order key codes = %q, want SQL008: %v", got, r.Diagnostics)
	}
	if !strings.Contains(r.Diagnostics[0].Message, "?o") {
		t.Fatalf("diagnostic doesn't name the variable: %v", r.Diagnostics[0])
	}
}

// TestEmpty checks the static-emptiness decision across the pattern
// algebra.
func TestEmpty(t *testing.T) {
	cases := []struct {
		name  string
		src   string
		empty bool
	}{
		{"plain-triples", `SELECT * WHERE { ?s ?p ?o }`, false},
		{"filter-false", `SELECT * WHERE { ?s ?p ?o . FILTER(false) }`, true},
		{"filter-true", `SELECT * WHERE { ?s ?p ?o . FILTER(true) }`, false},
		{"self-neq", `SELECT * WHERE { ?s ?p ?o . FILTER(?o != ?o) }`, true},
		{"optional-never-propagates",
			`SELECT * WHERE { ?s ?p ?o OPTIONAL { ?s <urn:q> ?x . FILTER(false) } }`, false},
		{"minus-never-propagates",
			`SELECT * WHERE { ?s ?p ?o MINUS { ?s <urn:q> ?x . FILTER(false) } }`, false},
		{"union-one-live",
			`SELECT * WHERE { { ?s ?p ?o . FILTER(false) } UNION { ?s ?p ?o } }`, false},
		{"union-both-dead",
			`SELECT * WHERE { { ?s ?p ?o . FILTER(false) } UNION { ?s ?p ?o . FILTER(?o != ?o) } }`, true},
		{"graph-inner",
			`SELECT * WHERE { GRAPH ?g { ?s ?p ?o . FILTER(false) } }`, true},
		{"subquery-limit-zero",
			`SELECT * WHERE { { SELECT ?s WHERE { ?s ?p ?o } LIMIT 0 } }`, true},
		{"subquery-empty-body",
			`SELECT * WHERE { { SELECT ?s WHERE { ?s ?p ?o . FILTER(false) } } }`, true},
		{"subquery-aggregation-yields-row",
			`SELECT * WHERE { { SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o . FILTER(false) } } }`, false},
		{"subquery-own-scope",
			// ?o is dead at the top level but alive inside the subquery:
			// the inner filter must be judged in its own scope.
			`SELECT ?s WHERE { { SELECT ?s WHERE { ?s <urn:p> ?o . FILTER(?o > 5) } } }`, false},
		{"numeric-lex-escape", `SELECT * WHERE { ?s ?p ?o . FILTER(?o > 10 && ?o < 2) }`, false},
		{"interval-empty", `SELECT * WHERE { ?s ?p ?o . FILTER(?o > 5 && ?o < 3) }`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Empty(parse(t, tc.src)); got != tc.empty {
				t.Fatalf("Empty = %v, want %v", got, tc.empty)
			}
		})
	}
}

// TestCollapseEqualities checks the SQL007 rewrite's shape: the filter
// is gone, a BIND re-establishes the dropped variable, the result
// re-parses, and the original query is untouched.
func TestCollapseEqualities(t *testing.T) {
	src := `SELECT ?a ?c WHERE { ?a <urn:p> ?b . ?a <urn:q> ?c . FILTER(?b = ?c) }`
	q := parse(t, src)
	before := q.String()
	rq, ok := CollapseEqualities(q)
	if !ok {
		t.Fatalf("rewrite did not apply to %q", src)
	}
	if q.String() != before {
		t.Fatalf("original query mutated by rewrite")
	}
	out := rq.String()
	if strings.Contains(out, "FILTER") {
		t.Fatalf("rewritten query still has a FILTER: %s", out)
	}
	if !strings.Contains(out, "BIND") {
		t.Fatalf("rewritten query lost the dropped variable: %s", out)
	}
	if _, err := sparql.Parse(out); err != nil {
		t.Fatalf("rewritten query does not re-parse: %v\n%s", err, out)
	}
}

// TestCollapseEqualitiesRefusals pins cases the rewrite must not touch.
func TestCollapseEqualitiesRefusals(t *testing.T) {
	for _, src := range []string{
		// Both sides occur in an OPTIONAL too: dropping either would
		// change what the optional observes.
		`SELECT * WHERE { ?a <urn:p> ?b . ?a <urn:q> ?c . FILTER(?b = ?c) OPTIONAL { ?b <urn:r> ?c } }`,
		// ?c never occurs in the group's triples: nothing to substitute.
		`SELECT * WHERE { ?a <urn:p> ?b . FILTER(?b = ?c) }`,
		// Both sides are AS targets: the projection would rebind them.
		`SELECT (?a AS ?c) (?a AS ?b) WHERE { ?a <urn:p> ?b . ?a <urn:q> ?c . FILTER(?b = ?c) }`,
	} {
		q := parse(t, src)
		if _, ok := CollapseEqualities(q); ok {
			t.Fatalf("rewrite applied where it must refuse: %q", src)
		}
	}
}

// TestDiagnosticString pins the one-line rendering and result helpers.
func TestDiagnosticString(t *testing.T) {
	r := Run(parse(t, `SELECT * WHERE { ?s ?p ?o . FILTER(false) }`))
	if len(r.Diagnostics) == 0 {
		t.Fatal("expected a diagnostic")
	}
	d := r.Diagnostics[0]
	s := d.String()
	if !strings.HasPrefix(s, "SQL001 error where") {
		t.Fatalf("diagnostic string = %q", s)
	}
	if !r.Empty {
		t.Fatal("result should be statically empty")
	}
	if max, ok := r.Max(); !ok || max != Error {
		t.Fatalf("Max = %v,%v", max, ok)
	}
}

// TestPassesRegistry checks registration: eight passes, sorted, with
// docs.
func TestPassesRegistry(t *testing.T) {
	ps := Passes()
	if len(ps) != 8 {
		t.Fatalf("registered %d passes, want 8", len(ps))
	}
	for i, p := range ps {
		if p.Code == "" || p.Name == "" || p.Doc == "" || p.Run == nil {
			t.Fatalf("pass %d incomplete: %+v", i, p)
		}
		if i > 0 && ps[i-1].Code >= p.Code {
			t.Fatalf("passes not sorted by code: %s >= %s", ps[i-1].Code, p.Code)
		}
	}
}
