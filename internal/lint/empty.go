package lint

import "sparqlog/internal/sparql"

// Empty reports whether the query's WHERE clause provably produces no
// solutions on any dataset: some required element of it is statically
// empty, or some filter can never keep a row. The proof is purely
// syntactic — no snapshot is consulted — which is exactly what lets
// the evaluator answer such queries without a single index probe.
//
// Soundness notes: OPTIONAL and MINUS never make their group emptier
// than their left side, so they are skipped; SERVICE SILENT recovers
// errors but not empty results, so an empty inner pattern stays empty;
// a subquery with aggregation but no GROUP BY yields one row over an
// empty body, so only non-aggregated subqueries propagate emptiness.
func Empty(q *sparql.Query) bool {
	return EmptyUnder(q, prefixMap(q))
}

// EmptyUnder is Empty with an explicit prefix environment. The
// evaluator resolves prefixed IRIs of subqueries against the outer
// query's prologue, so emptiness of a subquery must be judged under
// the caller's prefixes, not the subquery's own (empty) prologue.
func EmptyUnder(q *sparql.Query, prefixes map[string]string) bool {
	if q.Where == nil {
		return false
	}
	f := &folder{prefixes: prefixes, dead: deadVars(q)}
	if q.TrailingValues != nil && len(q.TrailingValues.Rows) == 0 && len(q.TrailingValues.Vars) > 0 {
		return true
	}
	return emptyPattern(f, q.Where)
}

// deadVars returns the variables of the WHERE clause no pattern can
// bind.
func deadVars(q *sparql.Query) map[string]bool {
	dead := make(map[string]bool)
	if q.Where == nil {
		return dead
	}
	bindable := bindableVars(q)
	for v := range sparql.Vars(q.Where) {
		if !bindable[v] {
			dead[v] = true
		}
	}
	return dead
}

func emptyPattern(f *folder, p sparql.Pattern) bool {
	switch n := p.(type) {
	case *sparql.Group:
		for _, el := range n.Elems {
			switch e := el.(type) {
			case *sparql.Optional, *sparql.MinusGraph:
				// Never reduce the group below the left side's rows.
			case *sparql.Filter:
				if _, unsat := f.unsatReason(e.Constraint); unsat {
					return true
				}
			default:
				if emptyPattern(f, e) {
					return true
				}
			}
		}
		return false
	case *sparql.Union:
		return emptyPattern(f, n.Left) && emptyPattern(f, n.Right)
	case *sparql.Filter:
		// A bare filter at the root applies to the unit row.
		_, unsat := f.unsatReason(n.Constraint)
		return unsat
	case *sparql.GraphGraph:
		return emptyPattern(f, n.Inner)
	case *sparql.ServiceGraph:
		return emptyPattern(f, n.Inner)
	case *sparql.InlineData:
		return len(n.Rows) == 0 && len(n.Vars) > 0
	case *sparql.SubSelect:
		sub := n.Query
		if sub == nil || sub.Where == nil {
			return false
		}
		if sub.Mods.HasLimit && sub.Mods.Limit == 0 {
			return true
		}
		if hasAggregation(sub) {
			// Aggregation without groups produces one row even over
			// an empty body.
			return false
		}
		if sub.TrailingValues != nil && len(sub.TrailingValues.Rows) == 0 && len(sub.TrailingValues.Vars) > 0 {
			return true
		}
		// The subquery is its own variable scope (it is evaluated
		// independently and joined on its projection), so dead
		// variables are recomputed for it; prefixes stay the
		// caller's, matching the evaluator.
		sf := &folder{prefixes: f.prefixes, dead: deadVars(sub)}
		return emptyPattern(sf, sub.Where)
	}
	// Triples and paths depend on the data.
	return false
}

// hasAggregation reports whether the query groups or aggregates.
func hasAggregation(q *sparql.Query) bool {
	if len(q.Mods.GroupBy) > 0 || len(q.Mods.Having) > 0 {
		return true
	}
	agg := false
	for _, it := range q.Select {
		if it.Expr == nil {
			continue
		}
		sparql.WalkExpr(it.Expr, func(e sparql.Expr) bool {
			if _, ok := e.(*sparql.AggregateExpr); ok {
				agg = true
				return false
			}
			return true
		})
	}
	return agg
}
