package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"sparqlog/internal/sparql"
)

// This file mirrors the runtime expression semantics of
// internal/eval/expr.go as an abstract constant folder. Soundness
// contract: when fold says an expression is Known(v), every row
// evaluates it to v; errAlways means every row yields an expression
// error; dropAlways means every row yields an error OR a falsy value
// (either way a FILTER drops the row). Anything weaker is unknown.
// If eval's semantics change, this file must change with it — the
// differential and fuzz tests in internal/eval pin the agreement.

// value duplicates eval's runtime value: untyped text with
// by-lexical-form numeric interpretation, booleans from comparisons.
type value struct {
	lex    string
	num    float64
	isNum  bool
	isBool bool
	b      bool
}

func textValue(s string) value {
	if n, err := strconv.ParseFloat(s, 64); err == nil && s != "" {
		return value{lex: s, num: n, isNum: true}
	}
	return value{lex: s}
}

func numValue(n float64) value {
	return value{lex: strconv.FormatFloat(n, 'g', -1, 64), num: n, isNum: true}
}

func boolValue(b bool) value {
	v := value{isBool: true, b: b}
	if b {
		v.lex = "true"
	} else {
		v.lex = "false"
	}
	return v
}

func (v value) truthy() bool {
	if v.isBool {
		return v.b
	}
	if v.isNum {
		return v.num != 0
	}
	return v.lex != "" && v.lex != "false"
}

// compareValues orders numerically when both operands are numeric,
// else lexicographically (eval.compareValues).
func compareValues(l, r value) int {
	if l.isNum && r.isNum {
		switch {
		case l.num < r.num:
			return -1
		case l.num > r.num:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(l.lex, r.lex)
}

// state is the abstract result of folding an expression.
type state int

const (
	known      state = iota // the same value on every row
	errAlways               // an expression error on every row
	dropAlways              // error or falsy on every row: a filter always drops
	unknown
)

// sval pairs a state with its value (valid only when st == known).
type sval struct {
	st state
	v  value
}

func knownV(v value) sval { return sval{st: known, v: v} }
func knownB(b bool) sval  { return knownV(boolValue(b)) }
func errS() sval          { return sval{st: errAlways} }
func unknownS() sval      { return sval{st: unknown} }

// dropClass reports whether the state guarantees "error or falsy" —
// the filter-dropping class. Known falsy values qualify.
func (s sval) dropClass() bool {
	switch s.st {
	case errAlways, dropAlways:
		return true
	case known:
		return !s.v.truthy()
	}
	return false
}

// folder folds expressions under a prefix environment and a set of
// dead variables (variables no pattern of the query can bind, which
// therefore error in every strict position).
type folder struct {
	prefixes map[string]string
	dead     map[string]bool
}

// prefixMap extracts the prologue's prefix declarations.
func prefixMap(q *sparql.Query) map[string]string {
	m := make(map[string]string, len(q.Prologue.Prefixes))
	for _, p := range q.Prologue.Prefixes {
		m[p.Name] = p.IRI
	}
	return m
}

func (f *folder) expand(iri string, prefixed bool) string {
	if !prefixed {
		return iri
	}
	i := strings.IndexByte(iri, ':')
	if i < 0 {
		return iri
	}
	if base, ok := f.prefixes[iri[:i]]; ok {
		return base + iri[i+1:]
	}
	return iri
}

// fold abstracts eval's eval().
func (f *folder) fold(e sparql.Expr) sval {
	switch n := e.(type) {
	case *sparql.TermExpr:
		switch n.Term.Kind {
		case sparql.TermVar:
			if f.dead[n.Term.Value] {
				return errS()
			}
			return unknownS()
		case sparql.TermLiteral:
			if n.Term.Lang != "" {
				// eval keeps lang-tagged literals as plain text
				// (never numeric).
				return knownV(value{lex: n.Term.Value})
			}
			return knownV(textValue(n.Term.Value))
		case sparql.TermIRI:
			return knownV(value{lex: f.expand(n.Term.Value, n.Term.PrefixedForm)})
		default:
			return errS()
		}
	case *sparql.BinaryExpr:
		return f.foldBinary(n)
	case *sparql.UnaryExpr:
		x := f.fold(n.X)
		switch n.Op {
		case "!":
			switch x.st {
			case known:
				return knownB(!x.v.truthy())
			case errAlways:
				return errS()
			default:
				// dropAlways includes usable falsy values, whose
				// negation is true; nothing is guaranteed.
				return unknownS()
			}
		case "-":
			switch x.st {
			case known:
				if !x.v.isNum {
					return errS()
				}
				return knownV(numValue(-x.v.num))
			case errAlways:
				return errS()
			default:
				return unknownS()
			}
		default:
			// Unary plus passes the operand through unchanged, errors
			// included, so the abstract state passes through too.
			return x
		}
	case *sparql.FuncCall:
		return f.foldFunc(n)
	case *sparql.ExistsExpr:
		return unknownS()
	case *sparql.InExpr:
		return f.foldIn(n)
	case *sparql.AggregateExpr:
		// Aggregates in row context always error (eval).
		return errS()
	case nil:
		return errS()
	}
	return errS()
}

func (f *folder) foldBinary(n *sparql.BinaryExpr) sval {
	switch n.Op {
	case "&&":
		l, r := f.fold(n.L), f.fold(n.R)
		if l.st == known && r.st == known {
			return knownB(l.v.truthy() && r.v.truthy())
		}
		// One side known false forces false regardless of the other
		// (error-tolerant AND).
		if l.st == known && !l.v.truthy() || r.st == known && !r.v.truthy() {
			return knownB(false)
		}
		// Any operand in the drop class keeps AND in the drop class:
		// the result is false (other side false) or an error.
		if l.dropClass() || r.dropClass() {
			return sval{st: dropAlways}
		}
		return unknownS()
	case "||":
		l, r := f.fold(n.L), f.fold(n.R)
		if l.st == known && r.st == known {
			return knownB(l.v.truthy() || r.v.truthy())
		}
		if l.st == known && l.v.truthy() || r.st == known && r.v.truthy() {
			return knownB(true)
		}
		// OR only drops when both sides are error-or-falsy.
		if l.dropClass() && r.dropClass() {
			return sval{st: dropAlways}
		}
		return unknownS()
	}
	// Strict operators: either operand erroring errors the whole
	// expression.
	l := f.fold(n.L)
	if l.st == errAlways {
		return errS()
	}
	r := f.fold(n.R)
	if r.st == errAlways {
		return errS()
	}
	if l.st != known || r.st != known {
		return unknownS()
	}
	switch n.Op {
	case "=":
		return knownB(compareValues(l.v, r.v) == 0)
	case "!=":
		return knownB(compareValues(l.v, r.v) != 0)
	case "<":
		return knownB(compareValues(l.v, r.v) < 0)
	case ">":
		return knownB(compareValues(l.v, r.v) > 0)
	case "<=":
		return knownB(compareValues(l.v, r.v) <= 0)
	case ">=":
		return knownB(compareValues(l.v, r.v) >= 0)
	case "+", "-", "*", "/":
		if !l.v.isNum || !r.v.isNum {
			return errS()
		}
		switch n.Op {
		case "+":
			return knownV(numValue(l.v.num + r.v.num))
		case "-":
			return knownV(numValue(l.v.num - r.v.num))
		case "*":
			return knownV(numValue(l.v.num * r.v.num))
		default:
			if r.v.num == 0 {
				return errS()
			}
			return knownV(numValue(l.v.num / r.v.num))
		}
	}
	return errS()
}

func (f *folder) foldIn(n *sparql.InExpr) sval {
	x := f.fold(n.X)
	if x.st == errAlways {
		return errS()
	}
	if x.st != known {
		return unknownS()
	}
	found := false
	decided := true
	for _, item := range n.List {
		v := f.fold(item)
		switch v.st {
		case known:
			if compareValues(x.v, v.v) == 0 {
				found = true
			}
		case errAlways:
			// Erroring items are silently skipped by eval.
		default:
			decided = false
		}
		if found {
			break
		}
	}
	if !found && !decided {
		return unknownS()
	}
	if n.Not {
		found = !found
	}
	return knownB(found)
}

func (f *folder) foldFunc(n *sparql.FuncCall) sval {
	arg := func(i int) sval {
		if i >= len(n.Args) {
			return errS()
		}
		return f.fold(n.Args[i])
	}
	// strict2 folds a two-argument strict builtin with compute on
	// known values, propagating errors in evaluation order.
	strict := func(k int, compute func(vs []value) sval) sval {
		vs := make([]value, 0, k)
		for i := 0; i < k; i++ {
			a := arg(i)
			switch a.st {
			case errAlways:
				return errS()
			case known:
				vs = append(vs, a.v)
			default:
				return unknownS()
			}
		}
		return compute(vs)
	}
	switch n.Name {
	case "BOUND":
		if len(n.Args) == 1 {
			if te, ok := n.Args[0].(*sparql.TermExpr); ok && te.Term.Kind == sparql.TermVar {
				if f.dead[te.Term.Value] {
					return knownB(false)
				}
				return unknownS()
			}
		}
		return errS()
	case "STR":
		return strict(1, func(vs []value) sval {
			// STR drops the numeric interpretation (eval returns a
			// bare value{lex}).
			return knownV(value{lex: vs[0].lex})
		})
	case "LANG", "DATATYPE":
		return strict(1, func(vs []value) sval {
			return knownV(value{lex: ""})
		})
	case "STRLEN":
		return strict(1, func(vs []value) sval {
			return knownV(numValue(float64(len(vs[0].lex))))
		})
	case "UCASE":
		return strict(1, func(vs []value) sval {
			return knownV(value{lex: strings.ToUpper(vs[0].lex)})
		})
	case "LCASE":
		return strict(1, func(vs []value) sval {
			return knownV(value{lex: strings.ToLower(vs[0].lex)})
		})
	case "CONTAINS", "STRSTARTS", "STRENDS":
		name := n.Name
		return strict(2, func(vs []value) sval {
			switch name {
			case "CONTAINS":
				return knownB(strings.Contains(vs[0].lex, vs[1].lex))
			case "STRSTARTS":
				return knownB(strings.HasPrefix(vs[0].lex, vs[1].lex))
			default:
				return knownB(strings.HasSuffix(vs[0].lex, vs[1].lex))
			}
		})
	case "CONCAT":
		return strict(len(n.Args), func(vs []value) sval {
			var sb strings.Builder
			for _, v := range vs {
				sb.WriteString(v.lex)
			}
			return knownV(value{lex: sb.String()})
		})
	case "REGEX":
		x, pat := arg(0), arg(1)
		if x.st == errAlways || (x.st == known && pat.st == errAlways) {
			return errS()
		}
		if x.st != known || pat.st != known {
			return unknownS()
		}
		expr := pat.v.lex
		if len(n.Args) >= 3 {
			fl := arg(2)
			switch fl.st {
			case known:
				if strings.Contains(fl.v.lex, "i") {
					expr = "(?i)" + expr
				}
			case errAlways:
				// eval ignores a failing flags argument.
			default:
				return unknownS()
			}
		}
		re, rerr := regexp.Compile(expr)
		if rerr != nil {
			return errS()
		}
		return knownB(re.MatchString(x.v.lex))
	case "ABS", "CEIL", "FLOOR", "ROUND":
		name := n.Name
		return strict(1, func(vs []value) sval {
			v := vs[0]
			if !v.isNum {
				return errS()
			}
			switch name {
			case "ABS":
				if v.num < 0 {
					return knownV(numValue(-v.num))
				}
				return knownV(v)
			case "CEIL":
				return knownV(numValue(ceil(v.num)))
			case "FLOOR":
				return knownV(numValue(floor(v.num)))
			default:
				return knownV(numValue(floor(v.num + 0.5)))
			}
		})
	case "SAMETERM":
		return strict(2, func(vs []value) sval {
			return knownB(vs[0].lex == vs[1].lex)
		})
	case "ISIRI", "ISURI":
		return strict(1, func(vs []value) sval {
			return knownB(looksLikeIRI(vs[0].lex))
		})
	case "ISLITERAL":
		return strict(1, func(vs []value) sval {
			return knownB(!looksLikeIRI(vs[0].lex))
		})
	case "ISBLANK":
		return strict(1, func(vs []value) sval {
			return knownB(strings.HasPrefix(vs[0].lex, "_:"))
		})
	case "ISNUMERIC":
		return strict(1, func(vs []value) sval {
			return knownB(vs[0].isNum)
		})
	case "IF":
		c := arg(0)
		switch c.st {
		case errAlways:
			return errS()
		case known:
			if c.v.truthy() {
				return arg(1)
			}
			return arg(2)
		default:
			return unknownS()
		}
	case "COALESCE":
		for i := range n.Args {
			a := arg(i)
			switch a.st {
			case errAlways:
				continue // always skipped
			case known:
				return a
			default:
				// This argument may or may not error per row; folding
				// cannot pick a branch.
				return unknownS()
			}
		}
		return errS() // no argument ever succeeds
	}
	// Unknown builtins, custom IRI calls: eval errors without touching
	// the arguments.
	return errS()
}

func looksLikeIRI(s string) bool {
	return strings.Contains(s, "://") || strings.HasPrefix(s, "urn:") ||
		strings.HasPrefix(s, "mailto:") || strings.HasPrefix(s, "http:")
}

func ceil(f float64) float64 {
	i := float64(int64(f))
	if f > i {
		return i + 1
	}
	return i
}

func floor(f float64) float64 {
	i := float64(int64(f))
	if f < i {
		return i - 1
	}
	return i
}

// ---------- satisfiability over conjuncts ----------

// conjuncts splits e on top-level && into its operands: a filter whose
// constraint is a conjunction drops a row as soon as any operand is
// false or errors.
func conjuncts(e sparql.Expr, out []sparql.Expr) []sparql.Expr {
	if be, ok := e.(*sparql.BinaryExpr); ok && be.Op == "&&" {
		out = conjuncts(be.L, out)
		return conjuncts(be.R, out)
	}
	return append(out, e)
}

// varConstraint is a conjunct of the shape ?x OP const (normalized so
// the variable is on the left).
type varConstraint struct {
	variable string
	op       string
	val      value
}

var flipOp = map[string]string{
	"=": "=", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<=",
}

// asVarConstraint matches `?x OP rhs` or `lhs OP ?x` where the
// constant side folds to a known value.
func (f *folder) asVarConstraint(e sparql.Expr) (varConstraint, bool) {
	be, ok := e.(*sparql.BinaryExpr)
	if !ok {
		return varConstraint{}, false
	}
	if _, cmp := flipOp[be.Op]; !cmp {
		return varConstraint{}, false
	}
	if v, ok := asVar(be.L); ok {
		if c := f.fold(be.R); c.st == known {
			return varConstraint{variable: v, op: be.Op, val: c.v}, true
		}
		return varConstraint{}, false
	}
	if v, ok := asVar(be.R); ok {
		if c := f.fold(be.L); c.st == known {
			return varConstraint{variable: v, op: flipOp[be.Op], val: c.v}, true
		}
	}
	return varConstraint{}, false
}

func asVar(e sparql.Expr) (string, bool) {
	te, ok := e.(*sparql.TermExpr)
	if !ok || te.Term.Kind != sparql.TermVar {
		return "", false
	}
	return te.Term.Value, true
}

// selfComparison matches `?x OP ?x` conjuncts that can never hold:
// with ?x bound both sides compare equal (!=, <, > are false); with ?x
// unbound the comparison errors. Either way the row drops.
func selfComparison(e sparql.Expr) (string, string, bool) {
	be, ok := e.(*sparql.BinaryExpr)
	if !ok {
		return "", "", false
	}
	if be.Op != "!=" && be.Op != "<" && be.Op != ">" {
		return "", "", false
	}
	l, lok := asVar(be.L)
	r, rok := asVar(be.R)
	if lok && rok && l == r {
		return l, be.Op, true
	}
	return "", "", false
}

// decideAgainstEq decides the constraint `?x OP c2` given that the
// conjunction also requires ?x = eq. Returns (satisfiable, decided).
//
// The equality pins down a lot: if eq is numeric, any x with x = eq
// must itself be numeric with x.num == eq.num (a non-numeric x would
// need lexical equality with eq's numeric lexical form, which would
// make it numeric — contradiction). If eq is non-numeric, x = eq
// forces x.lex == eq.lex exactly, so x's runtime value is
// textValue(eq.lex) and every comparison is fully decided.
func decideAgainstEq(eq value, op string, c2 value) (bool, bool) {
	if !eq.isNum {
		xv := textValue(eq.lex)
		cmp := compareValues(xv, c2)
		return opHolds(op, cmp), true
	}
	// x numeric, x.num == eq.num, x.lex unknown (any float form).
	if c2.isNum {
		cmp := 0
		switch {
		case eq.num < c2.num:
			cmp = -1
		case eq.num > c2.num:
			cmp = 1
		}
		return opHolds(op, cmp), true
	}
	// Numeric x against a non-numeric value: compareValues falls back
	// to lexical comparison against x's unknown float spelling.
	if !textValue(c2.lex).isNum {
		// c2's form cannot be any float spelling, so x != c2 always.
		switch op {
		case "=":
			return false, true
		case "!=":
			return true, true
		}
	}
	return false, false
}

func opHolds(op string, cmp int) bool {
	switch op {
	case "=":
		return cmp == 0
	case "!=":
		return cmp != 0
	case "<":
		return cmp < 0
	case ">":
		return cmp > 0
	case "<=":
		return cmp <= 0
	case ">=":
		return cmp >= 0
	}
	return false
}

// unsatisfiable reports whether no single value of the variable can
// satisfy every constraint at once. It is deliberately conservative:
// the engine compares numerically only when both sides are numeric,
// falling back to lexicographic comparison, so an interval that is
// empty numerically may still admit non-numeric values (e.g.
// ?x > 10 && ?x < 2 is satisfied by "1a"). Unsatisfiability requires
// emptiness in both regimes.
func unsatisfiable(cs []varConstraint) bool {
	if len(cs) < 2 {
		return false
	}
	// Equalities decide everything else.
	for i, c := range cs {
		if c.op != "=" {
			continue
		}
		for j, d := range cs {
			if i == j {
				continue
			}
			if sat, decided := decideAgainstEq(c.val, d.op, d.val); decided && !sat {
				return true
			}
		}
	}
	// Interval reasoning over the strict orders. Mixed numeric and
	// non-numeric bounds switch comparison regimes per row; skip.
	var nums, texts []varConstraint
	for _, c := range cs {
		switch c.op {
		case "<", "<=", ">", ">=":
			if c.val.isNum {
				nums = append(nums, c)
			} else {
				texts = append(texts, c)
			}
		}
	}
	if len(nums) > 0 && len(texts) == 0 {
		// A numeric bound compares numerically against numeric x and
		// lexicographically against non-numeric x: both interval
		// regimes must be empty.
		return emptyNumInterval(nums) && emptyLexInterval(nums)
	}
	if len(texts) > 0 && len(nums) == 0 {
		// Non-numeric bounds always compare lexicographically.
		return emptyLexInterval(texts)
	}
	return false
}

func emptyNumInterval(cs []varConstraint) bool {
	var lo, hi float64
	loStrict, hiStrict := false, false
	hasLo, hasHi := false, false
	for _, c := range cs {
		v := c.val.num
		switch c.op {
		case ">", ">=":
			s := c.op == ">"
			if !hasLo || v > lo {
				lo, loStrict, hasLo = v, s, true
			} else if v == lo && s {
				loStrict = true
			}
		case "<", "<=":
			s := c.op == "<"
			if !hasHi || v < hi {
				hi, hiStrict, hasHi = v, s, true
			} else if v == hi && s {
				hiStrict = true
			}
		}
	}
	if !hasLo || !hasHi {
		return false
	}
	// Floats are dense enough for the engine's purposes: lo < hi is
	// treated as satisfiable.
	return lo > hi || (lo == hi && (loStrict || hiStrict))
}

func emptyLexInterval(cs []varConstraint) bool {
	var lo, hi string
	loStrict, hiStrict := false, false
	hasLo, hasHi := false, false
	for _, c := range cs {
		v := c.val.lex
		switch c.op {
		case ">", ">=":
			s := c.op == ">"
			if !hasLo || v > lo {
				lo, loStrict, hasLo = v, s, true
			} else if v == lo && s {
				loStrict = true
			}
		case "<", "<=":
			s := c.op == "<"
			if !hasHi || v < hi {
				hi, hiStrict, hasHi = v, s, true
			} else if v == hi && s {
				hiStrict = true
			}
		}
	}
	if !hasLo || !hasHi {
		return false
	}
	// Strings are dense under lexicographic order upward (append a
	// character), so only reversed or point-with-strict intervals are
	// empty.
	return lo > hi || (lo == hi && (loStrict || hiStrict))
}

// unsatReason inspects one filter constraint and reports why it can
// never keep a row, if provable. The empty string means satisfiable
// (as far as the folder can tell).
func (f *folder) unsatReason(e sparql.Expr) (string, bool) {
	switch s := f.fold(e); s.st {
	case known:
		if !s.v.truthy() {
			return fmt.Sprintf("constraint is constant %q (effective boolean value false)", s.v.lex), true
		}
		return "", false
	case errAlways:
		return "constraint errors on every solution (filters treat errors as false)", true
	case dropAlways:
		return "constraint is false or errors on every solution", true
	}
	cj := conjuncts(e, nil)
	perVar := make(map[string][]varConstraint)
	for _, c := range cj {
		if v, op, ok := selfComparison(c); ok {
			return fmt.Sprintf("self-comparison ?%s %s ?%s can never hold", v, op, v), true
		}
		if vc, ok := f.asVarConstraint(c); ok {
			perVar[vc.variable] = append(perVar[vc.variable], vc)
		}
	}
	for v, cs := range perVar {
		if unsatisfiable(cs) {
			return fmt.Sprintf("contradictory constraints on ?%s", v), true
		}
	}
	return "", false
}
