// Package lint is a pass-based static-analysis framework over the
// sparql AST, modeled on go/analysis: each pass registers itself with
// a stable diagnostic code and severity, walks the query, and emits
// positioned diagnostics. The AST carries no byte offsets, so a
// diagnostic's position is a structural path ("where.group[2].filter")
// plus a serialized snippet of the offending fragment.
//
// The pass suite is grounded in the paper's findings about real query
// logs (Bonifati, Martens, Timm: "An Analytical Study of Large SPARQL
// Query Logs"): unsatisfiable filters, cartesian products, dead
// variables, non-well-designed OPTIONAL, duplicate UNION branches, and
// collapsible variable equalities are all statically detectable
// pathologies that predict evaluation cost or emptiness before a
// single triple is touched. Beyond reporting, the same machinery feeds
// the evaluator: Empty proves a WHERE clause yields no solutions so
// eval can short-circuit without index probes, and CollapseEqualities
// rewrites ?x = ?y filters into joins.
package lint

import (
	"fmt"
	"sort"

	"sparqlog/internal/sparql"
)

// Severity ranks a diagnostic.
type Severity int

// Severities, from least to most severe.
const (
	Info Severity = iota
	Warning
	Error
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return "unknown"
}

// Diagnostic is one finding of one pass.
type Diagnostic struct {
	// Code is the stable pass identifier (SQL001..).
	Code     string
	Severity Severity
	// Path locates the offending node structurally, since the AST has
	// no source positions: "where", "where.group[2].optional", ...
	Path    string
	Message string
	// Snippet is the offending fragment re-serialized, when one exists.
	Snippet string
}

// String renders the diagnostic in one line.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s %s %s: %s", d.Code, d.Severity, d.Path, d.Message)
}

// Pass is one registered analysis. Run receives a per-query context
// and reports diagnostics through it.
type Pass struct {
	Code     string
	Name     string
	Doc      string
	Severity Severity
	Run      func(c *Ctx)
}

var passes []*Pass

func register(p *Pass) { passes = append(passes, p) }

// Passes returns the registered passes sorted by code.
func Passes() []*Pass {
	out := make([]*Pass, len(passes))
	copy(out, passes)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// Ctx is the shared state one Run invocation exposes to every pass.
type Ctx struct {
	Query *sparql.Query
	// Bindable is the set of variables some pattern of the query can
	// bind (triple/path positions, GRAPH names, BIND targets, VALUES
	// columns, subquery projections, trailing VALUES). A variable
	// outside this set is unbound in every solution.
	Bindable map[string]bool

	current *Pass
	diags   []Diagnostic
}

// Report emits one diagnostic for the running pass.
func (c *Ctx) Report(path, snippet, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Code:     c.current.Code,
		Severity: c.current.Severity,
		Path:     path,
		Message:  fmt.Sprintf(format, args...),
		Snippet:  snippet,
	})
}

// Result is the outcome of linting one query.
type Result struct {
	Diagnostics []Diagnostic
	// Empty reports that the WHERE clause provably yields no solutions
	// on any dataset (see Empty).
	Empty bool
}

// Codes returns the distinct diagnostic codes, sorted.
func (r *Result) Codes() []string {
	seen := make(map[string]bool, len(r.Diagnostics))
	var out []string
	for _, d := range r.Diagnostics {
		if !seen[d.Code] {
			seen[d.Code] = true
			out = append(out, d.Code)
		}
	}
	sort.Strings(out)
	return out
}

// Max returns the highest severity present, or ok=false without
// diagnostics.
func (r *Result) Max() (Severity, bool) {
	if len(r.Diagnostics) == 0 {
		return Info, false
	}
	max := Info
	for _, d := range r.Diagnostics {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max, true
}

// Run applies every registered pass to the query and returns the
// combined diagnostics in pass-code order.
func Run(q *sparql.Query) *Result {
	c := &Ctx{Query: q, Bindable: bindableVars(q)}
	for _, p := range Passes() {
		c.current = p
		p.Run(c)
	}
	return &Result{Diagnostics: c.diags, Empty: Empty(q)}
}

// bindableVars collects every variable some pattern of the query can
// bind. EXISTS bodies are excluded: their matches never extend the
// outer solution.
func bindableVars(q *sparql.Query) map[string]bool {
	out := make(map[string]bool)
	if q.Where != nil {
		collectBindable(q.Where, out)
	}
	if q.TrailingValues != nil {
		for _, v := range q.TrailingValues.Vars {
			if v.Kind == sparql.TermVar {
				out[v.Value] = true
			}
		}
	}
	// GROUP BY ... AS ?v introduces a binding visible to projection.
	for _, gk := range q.Mods.GroupBy {
		if gk.AsVar && gk.Var.Kind == sparql.TermVar {
			out[gk.Var.Value] = true
		}
	}
	return out
}

func collectBindable(p sparql.Pattern, out map[string]bool) {
	addTerm := func(t sparql.Term) {
		if t.Kind == sparql.TermVar && t.Value != "" {
			out[t.Value] = true
		}
	}
	sparql.Walk(p, func(n sparql.Pattern) bool {
		switch t := n.(type) {
		case *sparql.TriplePattern:
			addTerm(t.S)
			addTerm(t.P)
			addTerm(t.O)
		case *sparql.PathPattern:
			addTerm(t.S)
			addTerm(t.O)
		case *sparql.GraphGraph:
			addTerm(t.Name)
		case *sparql.Bind:
			addTerm(t.Var)
			return false // EXISTS inside the expression binds nothing
		case *sparql.InlineData:
			for _, v := range t.Vars {
				addTerm(v)
			}
		case *sparql.SubSelect:
			if t.Query != nil {
				for v := range t.Query.ProjectedVars() {
					out[v] = true
				}
			}
			return false
		case *sparql.Filter:
			return false // EXISTS matches never bind outward
		}
		return true
	})
}

// walkPath visits every pattern node reachable from p in pre-order,
// carrying a structural location string. It stays within one variable
// scope: it does not descend into EXISTS bodies or subquery bodies
// (passes visit those through their own scope; see scopes in
// passes.go). Use sparql.Walk when cross-scope traversal matters.
func walkPath(p sparql.Pattern, path string, fn func(p sparql.Pattern, path string) bool) {
	if p == nil || !fn(p, path) {
		return
	}
	switch n := p.(type) {
	case *sparql.Group:
		for i, e := range n.Elems {
			walkPath(e, fmt.Sprintf("%s.group[%d]", path, i), fn)
		}
	case *sparql.Union:
		walkPath(n.Left, path+".union.left", fn)
		walkPath(n.Right, path+".union.right", fn)
	case *sparql.Optional:
		walkPath(n.Inner, path+".optional", fn)
	case *sparql.GraphGraph:
		walkPath(n.Inner, path+".graph", fn)
	case *sparql.MinusGraph:
		walkPath(n.Inner, path+".minus", fn)
	case *sparql.ServiceGraph:
		walkPath(n.Inner, path+".service", fn)
	}
}
