package lint

import (
	"sparqlog/internal/sparql"
)

// This file implements the SQL007 optimizer rewrite: a group-level
// FILTER(?x = ?y) whose ?y lives entirely inside the group's own
// triple/path elements (plus the filter itself) is collapsed by
// substituting ?y := ?x in those elements, dropping the filter, and
// appending BIND(?x AS ?y) so downstream consumers (projection,
// ORDER BY, trailing VALUES) still see ?y. The join engine then
// enforces the equality during enumeration instead of filtering after
// a cartesian-style enumeration of both variables.
//
// Caveat, documented and differential-tested: the engine's "=" is
// value equality (numeric when both sides parse as numbers), while
// substitution enforces term equality. Distinct lexical forms that
// compare numerically equal ("01" = "1") satisfy the original filter
// but not the rewritten join. The rewrite is therefore opt-in
// (eval.Limits.CollapseEqualities) and exact on term-shaped data such
// as IRIs.

// canCollapse reports whether the equality filter at g.Elems[i] can
// be collapsed, and which side to keep. Requirements, checked for
// (keep=x, drop=y) and then the reverse:
//
//   - both variables occur in the group's direct triple/path elements
//     (so every surviving row binds them there), and
//   - drop occurs nowhere else in the WHERE tree: its only occurrences
//     are those direct elements plus this one filter, and
//   - drop is not an AS target of the projection or GROUP BY (which
//     would rebind it).
func canCollapse(q *sparql.Query, g *sparql.Group, i int) (keep, drop string, ok bool) {
	fl, isFilter := g.Elems[i].(*sparql.Filter)
	if !isFilter || q.Where == nil {
		return "", "", false
	}
	x, y, isEq := eqVars(fl.Constraint)
	if !isEq {
		return "", "", false
	}
	try := func(keep, drop string) bool {
		dDirect := directTripleOcc(g, drop)
		if dDirect == 0 || directTripleOcc(g, keep) == 0 {
			return false
		}
		if isAsTarget(q, drop) {
			return false
		}
		// All of drop's WHERE-tree occurrences must be the direct
		// elements plus the one occurrence in this filter.
		return countPatternOcc(q.Where, drop) == dDirect+1
	}
	if try(x, y) {
		return x, y, true
	}
	if try(y, x) {
		return y, x, true
	}
	return "", "", false
}

// CollapseEqualities returns a rewritten copy of q with every
// collapsible equality filter folded into its group, or (q, false)
// when nothing applies. The copy is made by a serialize/parse round
// trip, so the caller's query is never mutated; on any round-trip
// failure the original is returned untouched.
func CollapseEqualities(q *sparql.Query) (*sparql.Query, bool) {
	if q == nil || q.Where == nil || !hasCollapse(q) {
		return q, false
	}
	clone, err := sparql.Parse(q.String())
	if err != nil || clone.Where == nil {
		return q, false
	}
	changed := false
	// Each application removes one filter; bound the fixpoint loop by
	// the number of filters present.
	for budget := countFilters(clone.Where); budget > 0; budget-- {
		if !applyOneCollapse(clone) {
			break
		}
		changed = true
	}
	if !changed {
		return q, false
	}
	return clone, true
}

// hasCollapse reports whether any collapsible equality exists (cheap
// pre-check before cloning).
func hasCollapse(q *sparql.Query) bool {
	found := false
	walkPath(q.Where, "where", func(p sparql.Pattern, _ string) bool {
		if found {
			return false
		}
		if g, ok := p.(*sparql.Group); ok {
			for i := range g.Elems {
				if _, _, ok := canCollapse(q, g, i); ok {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// applyOneCollapse rewrites the first collapsible equality found and
// reports whether one was applied.
func applyOneCollapse(q *sparql.Query) bool {
	applied := false
	walkPath(q.Where, "where", func(p sparql.Pattern, _ string) bool {
		if applied {
			return false
		}
		g, ok := p.(*sparql.Group)
		if !ok {
			return true
		}
		for i := range g.Elems {
			keep, drop, ok := canCollapse(q, g, i)
			if !ok {
				continue
			}
			substituteDirect(g, drop, keep)
			// Drop the filter; append the BIND at the end of the
			// group, where keep is bound for every surviving row
			// (group filters are end-of-group anyway, so no element
			// could have observed ?drop between the two positions —
			// canCollapse proved it occurs nowhere else).
			g.Elems = append(g.Elems[:i], g.Elems[i+1:]...)
			g.Elems = append(g.Elems, &sparql.Bind{
				Expr: &sparql.TermExpr{Term: sparql.Variable(keep)},
				Var:  sparql.Variable(drop),
			})
			applied = true
			return false
		}
		return true
	})
	return applied
}

// substituteDirect renames variable from -> to in the group's direct
// triple and path elements.
func substituteDirect(g *sparql.Group, from, to string) {
	ren := func(t *sparql.Term) {
		if t.Kind == sparql.TermVar && t.Value == from {
			t.Value = to
		}
	}
	for _, el := range g.Elems {
		switch t := el.(type) {
		case *sparql.TriplePattern:
			ren(&t.S)
			ren(&t.P)
			ren(&t.O)
		case *sparql.PathPattern:
			ren(&t.S)
			ren(&t.O)
		}
	}
}

// directTripleOcc counts occurrences of the variable in the group's
// direct triple/path elements.
func directTripleOcc(g *sparql.Group, name string) int {
	n := 0
	is := func(t sparql.Term) {
		if t.Kind == sparql.TermVar && t.Value == name {
			n++
		}
	}
	for _, el := range g.Elems {
		switch t := el.(type) {
		case *sparql.TriplePattern:
			is(t.S)
			is(t.P)
			is(t.O)
		case *sparql.PathPattern:
			is(t.S)
			is(t.O)
		}
	}
	return n
}

// countPatternOcc counts every syntactic occurrence of the variable
// in the pattern tree of one scope: triple/path/GRAPH positions,
// filter and bind expressions (including EXISTS bodies — matches
// there observe outer bindings), VALUES columns. Subqueries count one
// occurrence when they project the variable and are otherwise opaque
// (their interior is a different scope).
func countPatternOcc(p sparql.Pattern, name string) int {
	n := 0
	term := func(t sparql.Term) {
		if t.Kind == sparql.TermVar && t.Value == name {
			n++
		}
	}
	var exprOcc func(e sparql.Expr)
	exprOcc = func(e sparql.Expr) {
		sparql.WalkExpr(e, func(x sparql.Expr) bool {
			switch t := x.(type) {
			case *sparql.TermExpr:
				term(t.Term)
			case *sparql.ExistsExpr:
				n += countPatternOcc(t.Pattern, name)
			}
			return true
		})
	}
	var walk func(p sparql.Pattern)
	walk = func(p sparql.Pattern) {
		if p == nil {
			return
		}
		switch t := p.(type) {
		case *sparql.TriplePattern:
			term(t.S)
			term(t.P)
			term(t.O)
		case *sparql.PathPattern:
			term(t.S)
			term(t.O)
		case *sparql.Group:
			for _, el := range t.Elems {
				walk(el)
			}
		case *sparql.Union:
			walk(t.Left)
			walk(t.Right)
		case *sparql.Optional:
			walk(t.Inner)
		case *sparql.GraphGraph:
			term(t.Name)
			walk(t.Inner)
		case *sparql.MinusGraph:
			walk(t.Inner)
		case *sparql.ServiceGraph:
			term(t.Name)
			walk(t.Inner)
		case *sparql.Filter:
			exprOcc(t.Constraint)
		case *sparql.Bind:
			exprOcc(t.Expr)
			term(t.Var)
		case *sparql.InlineData:
			for _, v := range t.Vars {
				term(v)
			}
		case *sparql.SubSelect:
			if t.Query != nil && t.Query.ProjectedVars()[name] {
				n++
			}
		}
	}
	walk(p)
	return n
}

// isAsTarget reports whether the variable is rebound by an AS alias in
// the projection or GROUP BY.
func isAsTarget(q *sparql.Query, name string) bool {
	for _, it := range q.Select {
		if it.Expr != nil && it.Var.Kind == sparql.TermVar && it.Var.Value == name {
			return true
		}
	}
	for _, gk := range q.Mods.GroupBy {
		if gk.AsVar && gk.Var.Kind == sparql.TermVar && gk.Var.Value == name {
			return true
		}
	}
	return false
}

func countFilters(p sparql.Pattern) int {
	n := 0
	sparql.Walk(p, func(x sparql.Pattern) bool {
		if _, ok := x.(*sparql.Filter); ok {
			n++
		}
		return true
	})
	return n
}
