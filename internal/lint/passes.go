package lint

import (
	"fmt"
	"sort"
	"strings"

	"sparqlog/internal/analysis"
	"sparqlog/internal/hypergraph"
	"sparqlog/internal/sparql"
)

func init() {
	register(&Pass{
		Code:     "SQL001",
		Name:     "unsat-filter",
		Doc:      "FILTER constraints that can never keep a row: constant-false, always-erroring, self-comparisons, and contradictory per-variable constraints (equality substitution plus interval emptiness in both comparison regimes).",
		Severity: Error,
		Run:      runUnsatFilter,
	})
	register(&Pass{
		Code:     "SQL002",
		Name:     "cartesian-product",
		Doc:      "Groups whose join elements split into disconnected variable components, forming a cartesian product (detected on the variable hypergraph).",
		Severity: Warning,
		Run:      runCartesianProduct,
	})
	register(&Pass{
		Code:     "SQL003",
		Name:     "unbound-filter-var",
		Doc:      "FILTER expressions over variables no pattern of the query can bind; such comparisons error on every solution.",
		Severity: Warning,
		Run:      runUnboundFilterVar,
	})
	register(&Pass{
		Code:     "SQL004",
		Name:     "dead-projection",
		Doc:      "Projected variables no pattern of the query can bind: the column is null in every result row.",
		Severity: Info,
		Run:      runDeadProjection,
	})
	register(&Pass{
		Code:     "SQL005",
		Name:     "non-well-designed-optional",
		Doc:      "AOF patterns failing the well-designedness condition (Definition 5.3): OPTIONAL variables reused outside their optional scope make evaluation non-monotone and potentially expensive.",
		Severity: Warning,
		Run:      runNonWellDesigned,
	})
	register(&Pass{
		Code:     "SQL006",
		Name:     "duplicate-union",
		Doc:      "UNION operands that are structurally identical: duplicate evaluation work and duplicate solutions.",
		Severity: Warning,
		Run:      runDuplicateUnion,
	})
	register(&Pass{
		Code:     "SQL007",
		Name:     "collapsible-equality",
		Doc:      "FILTER(?x = ?y) equality filters; where safe, the CollapseEqualities rewrite folds them into the basic graph pattern so the join engine enforces them.",
		Severity: Info,
		Run:      runCollapsibleEquality,
	})
	register(&Pass{
		Code:     "SQL008",
		Name:     "unbound-order-key",
		Doc:      "ORDER BY keys over variables no pattern of the query can bind (and that no SELECT or GROUP BY alias introduces): every row's key errors identically, so the sort silently has no effect.",
		Severity: Warning,
		Run:      runUnboundOrderKey,
	})
}

// scope is one variable scope: the top query, or one subquery. Each
// has its own bindable/dead variable sets; the prefix environment is
// always the outer query's (the evaluator resolves subquery IRIs
// against it).
type scope struct {
	q        *sparql.Query
	prefix   string // "" for the top query, else "<path>." of the subselect
	f        *folder
	bindable map[string]bool
}

func (s *scope) wherePath() string { return s.prefix + "where" }

func scopes(q *sparql.Query) []*scope {
	prefixes := prefixMap(q)
	var out []*scope
	var collect func(q *sparql.Query, prefix string)
	collect = func(q *sparql.Query, prefix string) {
		out = append(out, &scope{
			q:        q,
			prefix:   prefix,
			f:        &folder{prefixes: prefixes, dead: deadVars(q)},
			bindable: bindableVars(q),
		})
		if q.Where == nil {
			return
		}
		walkPath(q.Where, prefix+"where", func(p sparql.Pattern, path string) bool {
			if ss, ok := p.(*sparql.SubSelect); ok && ss.Query != nil {
				collect(ss.Query, path+".")
			}
			return true
		})
	}
	collect(q, "")
	return out
}

// ---------- SQL001 ----------

func runUnsatFilter(c *Ctx) {
	for _, s := range scopes(c.Query) {
		if s.q.Where == nil {
			continue
		}
		walkPath(s.q.Where, s.wherePath(), func(p sparql.Pattern, path string) bool {
			if fl, ok := p.(*sparql.Filter); ok {
				if reason, unsat := s.f.unsatReason(fl.Constraint); unsat {
					c.Report(path, sparql.PatternString(fl),
						"FILTER never keeps a row: %s", reason)
				}
			}
			return true
		})
	}
}

// ---------- SQL002 ----------

func runCartesianProduct(c *Ctx) {
	for _, s := range scopes(c.Query) {
		if s.q.Where == nil {
			continue
		}
		walkPath(s.q.Where, s.wherePath(), func(p sparql.Pattern, path string) bool {
			if g, ok := p.(*sparql.Group); ok {
				checkGroupProduct(c, g, path)
			}
			return true
		})
	}
}

// checkGroupProduct builds the variable hypergraph of one group: one
// edge per var-bearing element. Elements that multiply rows (triples,
// paths, unions, nested groups, GRAPH, subselects, VALUES) are "join"
// edges; the rest (filters, binds, OPTIONAL, MINUS, SERVICE) only
// connect components. Two or more components that each contain a join
// edge form a cartesian product.
func checkGroupProduct(c *Ctx, g *sparql.Group, path string) {
	type edge struct {
		vars []string
		join bool
	}
	var edges []edge
	for _, el := range g.Elems {
		vs := make(map[string]bool)
		join := false
		switch t := el.(type) {
		case *sparql.TriplePattern:
			nodeVar(t.S, vs)
			nodeVar(t.P, vs)
			nodeVar(t.O, vs)
			join = true
		case *sparql.PathPattern:
			nodeVar(t.S, vs)
			nodeVar(t.O, vs)
			join = true
		case *sparql.Group, *sparql.Union, *sparql.GraphGraph, *sparql.SubSelect:
			for v := range sparql.Vars(el) {
				vs[v] = true
			}
			join = true
		case *sparql.InlineData:
			for _, v := range t.Vars {
				nodeVar(v, vs)
			}
			join = len(t.Rows) > 1
		case *sparql.Filter:
			for v := range sparql.ExprVars(t.Constraint) {
				vs[v] = true
			}
		case *sparql.Bind:
			for v := range sparql.ExprVars(t.Expr) {
				vs[v] = true
			}
			nodeVar(t.Var, vs)
		default: // Optional, MinusGraph, ServiceGraph: connectors only
			for v := range sparql.Vars(el) {
				vs[v] = true
			}
		}
		if len(vs) == 0 {
			continue
		}
		names := make([]string, 0, len(vs))
		for v := range vs {
			names = append(names, v)
		}
		sort.Strings(names)
		edges = append(edges, edge{vars: names, join: join})
	}
	joins := 0
	for _, e := range edges {
		if e.join {
			joins++
		}
	}
	if joins < 2 {
		return
	}
	vid := make(map[string]int)
	for _, e := range edges {
		for _, v := range e.vars {
			if _, ok := vid[v]; !ok {
				vid[v] = len(vid)
			}
		}
	}
	h := hypergraph.New(len(vid))
	for _, e := range edges {
		ids := make([]int, len(e.vars))
		for i, v := range e.vars {
			ids[i] = vid[v]
		}
		h.AddEdge(ids...)
	}
	labels := h.EdgeComponents()
	compHasJoin := make(map[int]bool)
	compVars := make(map[int][]string)
	for i, e := range edges {
		comp := labels[i]
		if e.join {
			compHasJoin[comp] = true
		}
		compVars[comp] = append(compVars[comp], e.vars...)
	}
	var joinComps []int
	for comp, has := range compHasJoin {
		if has {
			joinComps = append(joinComps, comp)
		}
	}
	if len(joinComps) < 2 {
		return
	}
	sort.Ints(joinComps)
	var parts []string
	for _, comp := range joinComps {
		parts = append(parts, "{?"+strings.Join(dedupSorted(compVars[comp]), " ?")+"}")
	}
	c.Report(path, "", "group is a cartesian product of %d disconnected components: %s",
		len(joinComps), strings.Join(parts, " × "))
}

func nodeVar(t sparql.Term, out map[string]bool) {
	switch t.Kind {
	case sparql.TermVar:
		if t.Value != "" {
			out[t.Value] = true
		}
	case sparql.TermBlank:
		// Blank nodes join like variables within the query.
		out["_:"+t.Value] = true
	}
}

func dedupSorted(vs []string) []string {
	sort.Strings(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// ---------- SQL003 ----------

func runUnboundFilterVar(c *Ctx) {
	for _, s := range scopes(c.Query) {
		if s.q.Where == nil {
			continue
		}
		walkPath(s.q.Where, s.wherePath(), func(p sparql.Pattern, path string) bool {
			fl, ok := p.(*sparql.Filter)
			if !ok {
				return true
			}
			for _, v := range sortedVars(exprOwnVars(fl.Constraint)) {
				if !s.bindable[v] {
					c.Report(path, sparql.ExprString(fl.Constraint),
						"FILTER uses ?%s, which no pattern of the query can bind", v)
				}
			}
			return true
		})
	}
}

// exprOwnVars collects the variables of an expression excluding
// EXISTS bodies, which bind their own matches.
func exprOwnVars(e sparql.Expr) map[string]bool {
	out := make(map[string]bool)
	sparql.WalkExpr(e, func(x sparql.Expr) bool {
		if te, ok := x.(*sparql.TermExpr); ok && te.Term.Kind == sparql.TermVar && te.Term.Value != "" {
			out[te.Term.Value] = true
		}
		return true
	})
	return out
}

func sortedVars(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// ---------- SQL004 ----------

func runDeadProjection(c *Ctx) {
	for _, s := range scopes(c.Query) {
		switch s.q.Type {
		case sparql.SelectQuery:
			if s.q.SelectStar {
				continue
			}
			for i, it := range s.q.Select {
				if it.Expr != nil || it.Var.Kind != sparql.TermVar {
					continue
				}
				if !s.bindable[it.Var.Value] {
					c.Report(fmt.Sprintf("%sselect[%d]", s.prefix, i), "?"+it.Var.Value,
						"projected variable ?%s is never bound: the column is null in every row", it.Var.Value)
				}
			}
		case sparql.DescribeQuery:
			for i, t := range s.q.DescribeTerms {
				if t.Kind == sparql.TermVar && !s.bindable[t.Value] {
					c.Report(fmt.Sprintf("%sdescribe[%d]", s.prefix, i), "?"+t.Value,
						"described variable ?%s is never bound", t.Value)
				}
			}
		}
	}
}

// ---------- SQL005 ----------

func runNonWellDesigned(c *Ctx) {
	for _, s := range scopes(c.Query) {
		if s.q.Where == nil {
			continue
		}
		frag := analysis.ClassifyFragments(s.q)
		if !frag.AOF || !hasOptional(s.q.Where) {
			continue
		}
		if !analysis.WellDesigned(s.q.Where) {
			c.Report(s.wherePath(), "",
				"pattern is not well-designed: an OPTIONAL variable is reused outside its optional scope (non-monotone semantics, evaluation blowup risk)")
		}
	}
}

func hasOptional(p sparql.Pattern) bool {
	found := false
	sparql.Walk(p, func(n sparql.Pattern) bool {
		if _, ok := n.(*sparql.Optional); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// ---------- SQL006 ----------

func runDuplicateUnion(c *Ctx) {
	for _, s := range scopes(c.Query) {
		if s.q.Where == nil {
			continue
		}
		walkPath(s.q.Where, s.wherePath(), func(p sparql.Pattern, path string) bool {
			if u, ok := p.(*sparql.Union); ok {
				// Compare the branches canonically (prefixes expanded,
				// variables renamed under one shared context): catches
				// `dbo:x` vs its full-IRI spelling while branches over
				// different variables — different solutions — stay
				// distinct. The reported snippet keeps the user's own
				// spelling.
				cs := sparql.CanonPatternStrings(c.Query.Prologue, u.Left, u.Right)
				if cs[0] != "" && cs[0] == cs[1] {
					c.Report(path, sparql.PatternString(u.Left),
						"UNION branches are identical: duplicate work and duplicate solutions")
				}
			}
			return true
		})
	}
}

// ---------- SQL007 ----------

func runCollapsibleEquality(c *Ctx) {
	// The rewrite itself is only proven for the top scope (occurrence
	// counting is per scope); equality filters in subqueries are still
	// reported, just not marked rewritable.
	for _, s := range scopes(c.Query) {
		if s.q.Where == nil {
			continue
		}
		top := s.prefix == ""
		walkPath(s.q.Where, s.wherePath(), func(p sparql.Pattern, path string) bool {
			g, ok := p.(*sparql.Group)
			if !ok {
				return true
			}
			for i, el := range g.Elems {
				fl, ok := el.(*sparql.Filter)
				if !ok {
					continue
				}
				x, y, ok := eqVars(fl.Constraint)
				if !ok {
					continue
				}
				epath := fmt.Sprintf("%s.group[%d]", path, i)
				if top {
					if keep, drop, ok := canCollapse(c.Query, g, i); ok {
						c.Report(epath, sparql.PatternString(fl),
							"equality FILTER(?%s = ?%s) can be collapsed into the graph pattern (substitute ?%s := ?%s)", x, y, drop, keep)
						continue
					}
				}
				c.Report(epath, sparql.PatternString(fl),
					"equality FILTER(?%s = ?%s) joins two variables after enumeration; consider merging them in the pattern", x, y)
			}
			return true
		})
	}
}

// ---------- SQL008 ----------

// runUnboundOrderKey flags ORDER BY keys whose variables can never be
// bound: not by any pattern of the scope's WHERE clause, not as a
// SELECT expression alias, and not as a GROUP BY ... AS alias. The key
// expression then errors on every row, and since the comparator skips
// error keys pairwise, the sort is a silent no-op on that key.
func runUnboundOrderKey(c *Ctx) {
	for _, s := range scopes(c.Query) {
		if len(s.q.Mods.OrderBy) == 0 {
			continue
		}
		aliased := make(map[string]bool)
		if !s.q.SelectStar {
			for _, it := range s.q.Select {
				if it.Expr != nil && it.Var.Kind == sparql.TermVar && it.Var.Value != "" {
					aliased[it.Var.Value] = true
				}
			}
		}
		for _, gk := range s.q.Mods.GroupBy {
			if gk.AsVar && gk.Var.Kind == sparql.TermVar && gk.Var.Value != "" {
				aliased[gk.Var.Value] = true
			}
		}
		for i, ok := range s.q.Mods.OrderBy {
			for _, v := range sortedVars(exprOwnVars(ok.Expr)) {
				if s.bindable[v] || aliased[v] {
					continue
				}
				c.Report(fmt.Sprintf("%sorderby[%d]", s.prefix, i), sparql.ExprString(ok.Expr),
					"ORDER BY key uses ?%s, which nothing in the query binds: the sort is a silent no-op on that key", v)
			}
		}
	}
}

// eqVars matches constraints of the exact form ?x = ?y with x != y.
func eqVars(e sparql.Expr) (string, string, bool) {
	be, ok := e.(*sparql.BinaryExpr)
	if !ok || be.Op != "=" {
		return "", "", false
	}
	l, lok := asVar(be.L)
	r, rok := asVar(be.R)
	if !lok || !rok || l == r {
		return "", "", false
	}
	return l, r, true
}
