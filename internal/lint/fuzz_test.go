package lint

import (
	"testing"

	"sparqlog/internal/paths"
	"sparqlog/internal/sparql"
)

// FuzzLintNoPanic feeds arbitrary query text through the whole static
// surface: whatever parses must lint without panicking, Empty must
// decide, and a CollapseEqualities rewrite must serialize back to a
// parsable query. Seeded with planner shapes, every pass's trigger,
// and the Table-5 path corpus wrapped into queries.
func FuzzLintNoPanic(f *testing.F) {
	for _, ex := range paths.Corpus() {
		f.Add(`SELECT ?x ?y WHERE { ?x ` + ex.Expr + ` ?y }`)
	}
	for _, src := range []string{
		`SELECT * WHERE { ?s ?p ?o . FILTER(?o > 5 && ?o < 3) }`,
		`SELECT * WHERE { ?a <urn:p> ?b . ?c <urn:p> ?d }`,
		`SELECT ?s ?x WHERE { ?s ?p ?o . FILTER(?x > 1) }`,
		`SELECT * WHERE { ?s <urn:p> ?o OPTIONAL { ?y <urn:r> ?x } OPTIONAL { ?z <urn:q> ?x } }`,
		`SELECT * WHERE { { ?s ?p ?o } UNION { ?s ?p ?o } }`,
		`SELECT ?a WHERE { ?a <urn:p> ?b . ?a <urn:q> ?c . FILTER(?b = ?c) }`,
		`PREFIX ex: <http://example.org/> ASK { ?s ex:p ?o . FILTER(?o = ex:a && ?o = ex:b) }`,
		`SELECT (COUNT(*) AS ?c) WHERE { { SELECT ?s WHERE { ?s ?p ?o } LIMIT 0 } } GROUP BY ?c`,
		`SELECT * WHERE { GRAPH ?g { ?s ?p ?o . FILTER(BOUND(?g)) } MINUS { ?s <urn:q> ?v } }`,
		`DESCRIBE ?s ?gone WHERE { ?s ?p ?o . VALUES ?v { } }`,
		`CONSTRUCT { ?s ?p ?o } WHERE { SERVICE SILENT <urn:remote> { ?s ?p ?o . FILTER(false) } }`,
		`SELECT * WHERE { ?s ?p "01" . FILTER(?o = "1" && ?o = "01") } ORDER BY ?s LIMIT 3 OFFSET 1`,
		`SELECT * WHERE { ?x <urn:p> ?y . FILTER(?x != ?x || COALESCE(?y, 1) > 0) }`,
		`SELECT * WHERE { ?x <urn:p> ?y . FILTER(EXISTS { ?y <urn:q> ?z }) . BIND(?x + 1 AS ?w) }`,
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := sparql.Parse(src)
		if err != nil {
			return
		}
		r := Run(q) // must not panic on any parsable query
		for _, d := range r.Diagnostics {
			if d.Code == "" || d.Path == "" || d.Message == "" {
				t.Fatalf("malformed diagnostic %+v on %q", d, src)
			}
		}
		// A statically-empty query must carry the proof in some form the
		// evaluator can also reach (EmptyUnder is what eval consults).
		if r.Empty != EmptyUnder(q, prefixMap(q)) {
			t.Fatalf("Empty/EmptyUnder disagree on %q", src)
		}
		rq, ok := CollapseEqualities(q)
		if !ok {
			return
		}
		out := rq.String()
		if _, err := sparql.Parse(out); err != nil {
			t.Fatalf("rewrite of %q does not re-parse: %v\n%s", src, err, out)
		}
	})
}
