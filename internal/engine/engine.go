// Package engine implements two deliberately contrasting conjunctive-query
// engines over the rdf.Store, reproducing the systems experiment of
// Section 5.1 (Figure 3): a graph-native engine in the role of Blazegraph
// and a relational engine in the role of PostgreSQL over a triples table.
//
// GraphEngine performs index nested-loop joins with greedy
// selectivity-based ordering and short-circuits ASK queries at the first
// result — cheap index-driven traversal, the behaviour that keeps cycle
// queries tractable on graph engines.
//
// RelationalEngine executes a left-deep pipeline of hash joins in the
// query's syntactic order, fully materializing every intermediate result
// before the next join, with no structure-aware reordering and no ASK
// short-circuit. Cyclic queries keep both endpoints of the growing path in
// the intermediate relation and only prune at the closing join, which is
// what drives the paper's observed PostgreSQL timeouts on cycles.
package engine

import (
	"errors"
	"time"

	"sparqlog/internal/rdf"
)

// TermRef is one position of a query atom: either a variable (index into
// the query's variable table) or a constant store ID.
type TermRef struct {
	IsVar bool
	Var   int
	ID    rdf.ID
}

// V constructs a variable reference.
func V(i int) TermRef { return TermRef{IsVar: true, Var: i} }

// C constructs a constant reference.
func C(id rdf.ID) TermRef { return TermRef{ID: id} }

// Atom is one triple pattern of a conjunctive query.
type Atom struct {
	S, P, O TermRef
}

// CQ is a conjunctive query over a store.
type CQ struct {
	Atoms   []Atom
	NumVars int
	// Ask indicates existence semantics: engines that support
	// short-circuiting may stop at the first result.
	Ask bool
}

// Result reports one query execution.
type Result struct {
	// Count is the number of result bindings (1/0 for Ask on the graph
	// engine).
	Count int64
	// TimedOut indicates the deadline struck before completion.
	TimedOut bool
	Duration time.Duration
}

// Engine executes conjunctive queries against a store within a timeout.
type Engine interface {
	Name() string
	Execute(st *rdf.Store, q CQ, timeout time.Duration) Result
}

// errTimeout aborts execution internally.
var errTimeout = errors.New("engine: timeout")

const unbound = int64(-1)

// ---------- Graph engine ----------

// OrderMode selects the join-ordering strategy of GraphEngine.
type OrderMode int

// Join orderings.
const (
	// OrderGreedy picks the cheapest next atom given current bindings
	// (most bound positions, then smallest index estimate).
	OrderGreedy OrderMode = iota
	// OrderSyntactic processes atoms in query order (ablation mode).
	OrderSyntactic
)

// GraphEngine is the Blazegraph stand-in: index nested-loop joins over the
// store's SPO/POS/OSP indexes.
type GraphEngine struct {
	Order OrderMode
}

// Name identifies the engine in reports.
func (e *GraphEngine) Name() string {
	if e.Order == OrderSyntactic {
		return "graph-syntactic"
	}
	return "BG"
}

// Execute runs the query with backtracking search.
func (e *GraphEngine) Execute(st *rdf.Store, q CQ, timeout time.Duration) Result {
	st.Freeze()
	start := time.Now()
	deadline := start.Add(timeout)
	ex := &graphExec{
		st:       st,
		q:        q,
		bindings: make([]int64, q.NumVars),
		used:     make([]bool, len(q.Atoms)),
		deadline: deadline,
		order:    e.Order,
	}
	for i := range ex.bindings {
		ex.bindings[i] = unbound
	}
	err := ex.search(0)
	res := Result{Count: ex.count, Duration: time.Since(start)}
	if errors.Is(err, errTimeout) {
		res.TimedOut = true
		res.Duration = timeout
	}
	return res
}

type graphExec struct {
	st       *rdf.Store
	q        CQ
	bindings []int64
	used     []bool
	count    int64
	steps    int
	deadline time.Time
	order    OrderMode
}

func (ex *graphExec) checkDeadline() error {
	ex.steps++
	if ex.steps&1023 == 0 && time.Now().After(ex.deadline) {
		return errTimeout
	}
	return nil
}

// errDone stops the search after the first result for ASK queries.
var errDone = errors.New("engine: done")

func (ex *graphExec) search(depth int) error {
	if err := ex.checkDeadline(); err != nil {
		return err
	}
	if depth == len(ex.q.Atoms) {
		ex.count++
		if ex.q.Ask {
			return errDone
		}
		return nil
	}
	ai := ex.pickAtom()
	ex.used[ai] = true
	defer func() { ex.used[ai] = false }()
	atom := ex.q.Atoms[ai]
	err := ex.enumerate(atom, func(s, p, o rdf.ID) error {
		var setVars [3]int
		n := 0
		bind := func(ref TermRef, val rdf.ID) bool {
			if !ref.IsVar {
				return ref.ID == val
			}
			if cur := ex.bindings[ref.Var]; cur != unbound {
				return cur == int64(val)
			}
			ex.bindings[ref.Var] = int64(val)
			setVars[n] = ref.Var
			n++
			return true
		}
		ok := bind(atom.S, s) && bind(atom.P, p) && bind(atom.O, o)
		var err error
		if ok {
			err = ex.search(depth + 1)
		}
		for i := 0; i < n; i++ {
			ex.bindings[setVars[i]] = unbound
		}
		return err
	})
	return err
}

// pickAtom chooses the next atom to evaluate.
func (ex *graphExec) pickAtom() int {
	if ex.order == OrderSyntactic {
		for i := range ex.q.Atoms {
			if !ex.used[i] {
				return i
			}
		}
	}
	best, bestCost := -1, int64(1)<<62
	for i, a := range ex.q.Atoms {
		if ex.used[i] {
			continue
		}
		cost := ex.estimate(a)
		if cost < bestCost {
			best, bestCost = i, cost
		}
	}
	return best
}

// resolve returns the concrete value of a term ref under current bindings,
// with ok=false for unbound variables.
func (ex *graphExec) resolve(r TermRef) (rdf.ID, bool) {
	if !r.IsVar {
		return r.ID, true
	}
	if v := ex.bindings[r.Var]; v != unbound {
		return rdf.ID(v), true
	}
	return 0, false
}

// estimate approximates the number of index entries the atom would touch.
func (ex *graphExec) estimate(a Atom) int64 {
	s, sb := ex.resolve(a.S)
	p, pb := ex.resolve(a.P)
	o, ob := ex.resolve(a.O)
	switch {
	case sb && pb && ob:
		return 1
	case sb && pb:
		return int64(len(ex.st.Objects(s, p))) + 1
	case pb && ob:
		return int64(len(ex.st.Subjects(p, o))) + 1
	case sb && ob:
		return int64(len(ex.st.Predicates(s, o))) + 1
	case pb:
		return int64(ex.st.PredicateCardinality(p)) + 2
	case sb, ob:
		return int64(ex.st.Len()/max(1, ex.st.NumTerms())) + 4
	default:
		return int64(ex.st.Len()) + 8
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// enumerate yields the triples matching the atom under current bindings
// using the cheapest available index.
func (ex *graphExec) enumerate(a Atom, yield func(s, p, o rdf.ID) error) error {
	s, sb := ex.resolve(a.S)
	p, pb := ex.resolve(a.P)
	o, ob := ex.resolve(a.O)
	st := ex.st
	switch {
	case sb && pb && ob:
		if st.Has(s, p, o) {
			return yield(s, p, o)
		}
		return nil
	case sb && pb:
		for _, obj := range st.Objects(s, p) {
			if err := yield(s, p, obj); err != nil {
				return err
			}
		}
		return nil
	case pb && ob:
		for _, sub := range st.Subjects(p, o) {
			if err := yield(sub, p, o); err != nil {
				return err
			}
		}
		return nil
	case sb && ob:
		for _, pred := range st.Predicates(s, o) {
			if err := yield(s, pred, o); err != nil {
				return err
			}
		}
		return nil
	case pb:
		for _, t := range st.ScanPredicate(p) {
			if err := ex.checkDeadline(); err != nil {
				return err
			}
			if err := yield(t.S, t.P, t.O); err != nil {
				return err
			}
		}
		return nil
	default:
		for _, t := range st.Triples() {
			if err := ex.checkDeadline(); err != nil {
				return err
			}
			if sb && t.S != s {
				continue
			}
			if ob && t.O != o {
				continue
			}
			if err := yield(t.S, t.P, t.O); err != nil {
				return err
			}
		}
		return nil
	}
}
