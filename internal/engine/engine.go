// Package engine implements two deliberately contrasting conjunctive-query
// engines over immutable rdf.Snapshots, reproducing the systems experiment
// of Section 5.1 (Figure 3): a graph-native engine in the role of
// Blazegraph and a relational engine in the role of PostgreSQL over a
// triples table.
//
// GraphEngine performs index nested-loop joins in the order chosen by
// the statistics-driven cost-based planner (internal/plan, computed once
// per query from the snapshot's Freeze-time statistics) and
// short-circuits ASK queries at the first result — cheap index-driven
// traversal, the behaviour that keeps cycle queries tractable on graph
// engines.
//
// RelationalEngine executes a left-deep pipeline of hash joins in the
// query's syntactic order, fully materializing every intermediate result
// before the next join, with no structure-aware reordering and no ASK
// short-circuit. Cyclic queries keep both endpoints of the growing path in
// the intermediate relation and only prune at the closing join, which is
// what drives the paper's observed PostgreSQL timeouts on cycles.
//
// Both engines are stateless between calls and read only the immutable
// snapshot, so one snapshot can serve any number of concurrent Execute /
// ExecuteContext calls (see internal/service for the worker-pool layer).
package engine

import (
	"context"
	"errors"
	"time"

	"sparqlog/internal/exec"
	"sparqlog/internal/plan"
	"sparqlog/internal/rdf"
)

// TermRef is one position of a query atom: either a variable (index into
// the query's variable table) or a constant store ID. The representation
// is owned by the planner; the alias keeps the engines' historical API.
type TermRef = plan.TermRef

// V constructs a variable reference.
func V(i int) TermRef { return plan.V(i) }

// C constructs a constant reference.
func C(id rdf.ID) TermRef { return plan.C(id) }

// Atom is one triple pattern of a conjunctive query.
type Atom = plan.Atom

// CQ is a conjunctive query over a store.
type CQ struct {
	Atoms   []Atom
	NumVars int
	// Ask indicates existence semantics: engines that support
	// short-circuiting may stop at the first result.
	Ask bool
}

// Reordered returns a copy of the query with atoms permuted into the
// plan's execution order.
func (q CQ) Reordered(p *plan.Plan) CQ {
	atoms := make([]Atom, len(q.Atoms))
	for k, ai := range p.Order {
		atoms[k] = q.Atoms[ai]
	}
	out := q
	out.Atoms = atoms
	return out
}

// Result reports one query execution.
type Result struct {
	// Count is the number of result bindings (1/0 for Ask on the graph
	// engine).
	Count int64
	// TimedOut indicates the deadline struck (or the context was
	// cancelled) before completion.
	TimedOut bool
	Duration time.Duration
}

// Engine executes conjunctive queries against a snapshot. Implementations
// must be safe for concurrent use: all mutable execution state lives in
// per-call structures.
type Engine interface {
	Name() string
	// Execute runs the query with a per-query timeout; timed-out queries
	// report Duration equal to the full timeout, as Figure 3 counts them.
	Execute(sn *rdf.Snapshot, q CQ, timeout time.Duration) Result
	// ExecuteContext runs the query under the context's deadline and
	// cancellation; on timeout the Duration is the elapsed wall time.
	ExecuteContext(ctx context.Context, sn *rdf.Snapshot, q CQ) Result
}

// errTimeout aborts execution internally.
var errTimeout = errors.New("engine: timeout")

// executeWithTimeout adapts ExecuteContext to the timeout-based Execute
// contract: timed-out queries report the full timeout as their duration,
// the way Figure 3 counts them.
func executeWithTimeout(e Engine, sn *rdf.Snapshot, q CQ, timeout time.Duration) Result {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	res := e.ExecuteContext(ctx, sn, q)
	if res.TimedOut {
		res.Duration = timeout
	}
	return res
}

const unbound = int64(-1)

// ticker periodically checks the context deadline and cancellation from
// tight evaluation loops. The check runs every mask+1 steps (mask must be
// a power of two minus one) to keep time.Now out of the inner loop.
type ticker struct {
	ctx      context.Context
	deadline time.Time
	hasDL    bool
	steps    int
}

func newTicker(ctx context.Context) ticker {
	dl, ok := ctx.Deadline()
	return ticker{ctx: ctx, deadline: dl, hasDL: ok}
}

func (tk *ticker) check(mask int) error {
	tk.steps++
	if tk.steps&mask != 0 {
		return nil
	}
	if tk.hasDL && time.Now().After(tk.deadline) {
		return errTimeout
	}
	if tk.ctx.Err() != nil {
		return errTimeout
	}
	return nil
}

// ---------- Graph engine ----------

// OrderMode selects the join-ordering strategy of GraphEngine.
type OrderMode int

// Join orderings.
const (
	// OrderGreedy executes atoms in the statistics-driven order of the
	// cost-based planner (internal/plan): greedy minimum selectivity with
	// bound-variable propagation, computed once per query from the
	// snapshot's Freeze-time statistics instead of re-estimated with
	// index probes at every search node.
	OrderGreedy OrderMode = iota
	// OrderSyntactic processes atoms in query order (ablation mode).
	OrderSyntactic
)

// GraphEngine is the Blazegraph stand-in: index nested-loop joins over the
// snapshot's SPO/POS/OSP indexes.
type GraphEngine struct {
	Order OrderMode
	// Plans, when set, caches plans by query shape; it must have been
	// built for the snapshot being queried (a cache for a different
	// snapshot is bypassed). Nil plans each query individually.
	Plans *plan.Cache
	// Columnar executes counting queries on the slot-based batch
	// pipeline shared with the SPARQL evaluator (internal/exec): one
	// exec.Join per planned atom pulling ID batches. The default (off)
	// keeps the depth-first backtracking search with its dense []int64
	// slot scratch, which is measurably faster when only a count is
	// needed — nothing is materialized at all — while the columnar mode
	// is the execution shape that returns whole binding batches and
	// per-operator row/batch counts (Explain always uses it for
	// counting queries; differential tests pin count equality).
	Columnar bool
}

// Name identifies the engine in reports.
func (e *GraphEngine) Name() string {
	if e.Order == OrderSyntactic {
		return "graph-syntactic"
	}
	return "BG"
}

// Execute runs the query with backtracking search within a timeout.
func (e *GraphEngine) Execute(sn *rdf.Snapshot, q CQ, timeout time.Duration) Result {
	return executeWithTimeout(e, sn, q, timeout)
}

// ExecuteContext runs the query under the context's deadline.
func (e *GraphEngine) ExecuteContext(ctx context.Context, sn *rdf.Snapshot, q CQ) Result {
	if e.Columnar && !q.Ask {
		res, _, _ := e.runColumnar(ctx, sn, q, e.order(sn, q))
		return res
	}
	res, _ := e.run(ctx, sn, q, e.order(sn, q), false)
	return res
}

// run executes the query in the given atom order with the backtracking
// search, optionally instrumented with per-step actual row counts.
func (e *GraphEngine) run(ctx context.Context, sn *rdf.Snapshot, q CQ, order []int, instrument bool) (Result, *graphExec) {
	start := time.Now()
	ex := &graphExec{
		sn:       sn,
		q:        q,
		order:    order,
		bindings: make([]int64, q.NumVars),
		tk:       newTicker(ctx),
	}
	if instrument {
		ex.actual = make([]int64, len(q.Atoms))
	}
	for i := range ex.bindings {
		ex.bindings[i] = unbound
	}
	err := ex.search(0)
	res := Result{Count: ex.count, Duration: time.Since(start)}
	if errors.Is(err, errTimeout) {
		res.TimedOut = true
	}
	return res, ex
}

// runColumnar executes the query on the slot-based batch pipeline: one
// exec.Join per planned atom, intermediate results flowing as
// slot-indexed ID batches (plan variable indexes double as batch
// slots, so a cached plan executes without any name re-resolution).
// It returns the result plus per-operator actual row and batch counts
// — the instrumented view Explain renders.
func (e *GraphEngine) runColumnar(ctx context.Context, sn *rdf.Snapshot, q CQ, order []int) (Result, []int64, []int64) {
	start := time.Now()
	c := exec.NewCtx(ctx)
	var op exec.Operator = exec.NewUnit(q.NumVars)
	joins := make([]exec.Operator, len(order))
	for k, ai := range order {
		op = exec.NewJoin(sn, op, q.Atoms[ai], false)
		joins[k] = op
	}
	stopAt := int64(0)
	if q.Ask {
		stopAt = 1
	}
	count, err := exec.Count(c, op, stopAt)
	if q.Ask && count > 1 {
		count = 1
	}
	res := Result{Count: count, Duration: time.Since(start)}
	if err != nil {
		res.TimedOut = true
	}
	actual := make([]int64, len(joins))
	batches := make([]int64, len(joins))
	for k, j := range joins {
		st := j.Stats()
		actual[k], batches[k] = st.Rows, st.Batches
	}
	return res, actual, batches
}

// order resolves the atom execution order: the identity permutation for
// OrderSyntactic, otherwise the cost-based plan (cached when the engine
// carries a plan cache for this snapshot).
func (e *GraphEngine) order(sn *rdf.Snapshot, q CQ) []int {
	if e.Order == OrderSyntactic {
		order := make([]int, len(q.Atoms))
		for i := range order {
			order[i] = i
		}
		return order
	}
	return e.Plans.For(sn, q.Atoms, q.NumVars).Order
}

type graphExec struct {
	sn       *rdf.Snapshot
	q        CQ
	order    []int // atom execution order (a permutation of atom indexes)
	bindings []int64
	count    int64
	tk       ticker
	// actual, when non-nil, counts the rows that survived each step
	// (indexed by plan step, not atom index).
	actual []int64
}

// errDone stops the search after the first result for ASK queries.
var errDone = errors.New("engine: done")

func (ex *graphExec) search(depth int) error {
	if err := ex.tk.check(1023); err != nil {
		return err
	}
	if depth == len(ex.q.Atoms) {
		ex.count++
		if ex.q.Ask {
			return errDone
		}
		return nil
	}
	atom := ex.q.Atoms[ex.order[depth]]
	err := ex.enumerate(atom, func(s, p, o rdf.ID) error {
		var setVars [3]int
		n := 0
		bind := func(ref TermRef, val rdf.ID) bool {
			if !ref.IsVar {
				return ref.ID == val
			}
			if cur := ex.bindings[ref.Var]; cur != unbound {
				return cur == int64(val)
			}
			ex.bindings[ref.Var] = int64(val)
			setVars[n] = ref.Var
			n++
			return true
		}
		ok := bind(atom.S, s) && bind(atom.P, p) && bind(atom.O, o)
		var err error
		if ok {
			if ex.actual != nil {
				ex.actual[depth]++
			}
			err = ex.search(depth + 1)
		}
		for i := 0; i < n; i++ {
			ex.bindings[setVars[i]] = unbound
		}
		return err
	})
	return err
}

// resolve returns the concrete value of a term ref under current bindings,
// with ok=false for unbound variables.
func (ex *graphExec) resolve(r TermRef) (rdf.ID, bool) {
	if !r.IsVar {
		return r.ID, true
	}
	if v := ex.bindings[r.Var]; v != unbound {
		return rdf.ID(v), true
	}
	return 0, false
}

// enumerate yields the triples matching the atom under current bindings
// using the cheapest available index.
func (ex *graphExec) enumerate(a Atom, yield func(s, p, o rdf.ID) error) error {
	s, sb := ex.resolve(a.S)
	p, pb := ex.resolve(a.P)
	o, ob := ex.resolve(a.O)
	sn := ex.sn
	switch {
	case sb && pb && ob:
		if sn.Has(s, p, o) {
			return yield(s, p, o)
		}
		return nil
	case sb && pb:
		for _, obj := range sn.Objects(s, p) {
			if err := yield(s, p, obj); err != nil {
				return err
			}
		}
		return nil
	case pb && ob:
		for _, sub := range sn.Subjects(p, o) {
			if err := yield(sub, p, o); err != nil {
				return err
			}
		}
		return nil
	case sb && ob:
		for _, pred := range sn.Predicates(s, o) {
			if err := yield(s, pred, o); err != nil {
				return err
			}
		}
		return nil
	case pb:
		for _, t := range sn.ScanPredicate(p) {
			if err := ex.tk.check(1023); err != nil {
				return err
			}
			if err := yield(t.S, t.P, t.O); err != nil {
				return err
			}
		}
		return nil
	case sb:
		// Subject-only: the SPO index holds the subject's full edge list;
		// no need to scan the store.
		preds, objs := sn.SubjectEdges(s)
		for i := range preds {
			if err := ex.tk.check(1023); err != nil {
				return err
			}
			if err := yield(s, preds[i], objs[i]); err != nil {
				return err
			}
		}
		return nil
	case ob:
		// Object-only: symmetric via the OSP index.
		subs, preds := sn.ObjectEdges(o)
		for i := range subs {
			if err := ex.tk.check(1023); err != nil {
				return err
			}
			if err := yield(subs[i], preds[i], o); err != nil {
				return err
			}
		}
		return nil
	default:
		for _, t := range sn.Triples() {
			if err := ex.tk.check(1023); err != nil {
				return err
			}
			if err := yield(t.S, t.P, t.O); err != nil {
				return err
			}
		}
		return nil
	}
}
