package engine

import (
	"time"

	"sparqlog/internal/rdf"
)

// WorkloadStats aggregates one workload execution on one engine, matching
// what Figure 3 reports: average runtime per query (timed-out queries
// contribute the full timeout, as in the paper) and the timeout rate.
type WorkloadStats struct {
	Engine     string
	Queries    int
	Timeouts   int
	TotalNanos int64
	// Results counts total bindings across completed queries.
	Results int64
}

// AvgNanos is the average per-query runtime in nanoseconds.
func (w WorkloadStats) AvgNanos() int64 {
	if w.Queries == 0 {
		return 0
	}
	return w.TotalNanos / int64(w.Queries)
}

// TimeoutRate is the fraction of queries that timed out.
func (w WorkloadStats) TimeoutRate() float64 {
	if w.Queries == 0 {
		return 0
	}
	return float64(w.Timeouts) / float64(w.Queries)
}

// RunWorkload executes every query of the workload serially on the engine
// with the per-query timeout. For the concurrent counterpart with latency
// percentiles, see internal/service.
func RunWorkload(e Engine, sn *rdf.Snapshot, queries []CQ, timeout time.Duration) WorkloadStats {
	stats := WorkloadStats{Engine: e.Name(), Queries: len(queries)}
	for _, q := range queries {
		res := e.Execute(sn, q, timeout)
		stats.TotalNanos += res.Duration.Nanoseconds()
		if res.TimedOut {
			stats.Timeouts++
		} else {
			stats.Results += res.Count
		}
	}
	return stats
}
