package engine

import (
	"sort"
	"testing"

	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// pathStore builds:
//
//	a -p-> b -p-> c -p-> d        (p-chain)
//	a -q-> x                     (branch)
//	c -r-> a                     (back edge closing a p/r cycle)
func pathStore() *rdf.Snapshot {
	st := rdf.NewStore()
	st.Add("a", "p", "b")
	st.Add("b", "p", "c")
	st.Add("c", "p", "d")
	st.Add("a", "q", "x")
	st.Add("c", "r", "a")
	return st.Freeze()
}

func parsePath(t *testing.T, expr string) sparql.PathExpr {
	t.Helper()
	q, err := sparql.Parse("ASK { ?x " + expr + " ?y }")
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	pp := q.PathPatterns()
	if len(pp) != 1 {
		t.Fatalf("want one path pattern")
	}
	return pp[0].Path
}

func reach(t *testing.T, st *rdf.Snapshot, from, expr string) []string {
	t.Helper()
	id, ok := st.Lookup(from)
	if !ok {
		t.Fatalf("unknown node %s", from)
	}
	p := parsePath(t, expr)
	ids := EvalPathFrom(st, id, p, StoreResolver(st))
	var out []string
	for _, n := range ids {
		out = append(out, st.TermOf(n))
	}
	sort.Strings(out)

	// The naive interpreter is the executable spec: both evaluators must
	// agree on every case the suite exercises.
	naive := NaiveEvalPathFrom(st, id, p, StoreResolver(st))
	if len(naive) != len(ids) {
		t.Errorf("reach(%s, %s): compiled %d nodes, naive %d", from, expr, len(ids), len(naive))
	}
	for _, n := range ids {
		if !naive[n] {
			t.Errorf("reach(%s, %s): compiled-only node %s", from, expr, st.TermOf(n))
		}
	}
	return out
}

func eq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPathEvalBasics(t *testing.T) {
	st := pathStore()
	// A bare <p> folds into a triple pattern at parse time, so the
	// atomic case is exercised through an alternation of one predicate
	// with itself and directly below via the AST constructor.
	id, _ := st.Lookup("a")
	atom := EvalPathFrom(st, id, &sparql.PathIRI{IRI: "p"}, StoreResolver(st))
	if len(atom) != 1 {
		t.Errorf("atomic path = %d results, want 1", len(atom))
	}
	tests := []struct {
		from, expr string
		want       []string
	}{
		{"a", "<p>|<p>", []string{"b"}},
		{"a", "<p>/<p>", []string{"c"}},
		{"a", "<p>/<p>/<p>", []string{"d"}},
		{"a", "<p>|<q>", []string{"b", "x"}},
		{"b", "^<p>", []string{"a"}},
		{"a", "<p>*", []string{"a", "b", "c", "d"}},
		{"a", "<p>+", []string{"b", "c", "d"}},
		{"a", "<p>?", []string{"a", "b"}},
		{"a", "!<p>", []string{"x"}},
		{"a", "!(<p>|<q>)", nil},
		{"a", "(<p>/<p>)*", []string{"a", "c"}},
		{"d", "<p>*", []string{"d"}},
		{"a", "<q>/<p>", nil},
	}
	for _, tc := range tests {
		got := reach(t, st, tc.from, tc.expr)
		if !eq(got, tc.want) {
			t.Errorf("reach(%s, %s) = %v, want %v", tc.from, tc.expr, got, tc.want)
		}
	}
}

func TestPathEvalCycleTerminates(t *testing.T) {
	st := pathStore()
	// p|r contains the cycle a->b->c->a; closure must terminate and
	// reach everything.
	got := reach(t, st, "a", "(<p>|<r>)*")
	want := []string{"a", "b", "c", "d"}
	if !eq(got, want) {
		t.Errorf("cyclic closure = %v, want %v", got, want)
	}
}

func TestPathHolds(t *testing.T) {
	st := pathStore()
	a, _ := st.Lookup("a")
	d, _ := st.Lookup("d")
	x, _ := st.Lookup("x")
	if !PathHolds(st, a, d, parsePath(t, "<p>+"), StoreResolver(st)) {
		t.Error("a -p+-> d should hold")
	}
	if PathHolds(st, a, x, parsePath(t, "<p>+"), StoreResolver(st)) {
		t.Error("a -p+-> x should not hold")
	}
}

func TestEvalPathPairs(t *testing.T) {
	st := pathStore()
	pairs := EvalPathPairs(st, parsePath(t, "<p>/<p>"), StoreResolver(st), 0)
	// a->c and b->d.
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2", len(pairs))
	}
	// Limit respected.
	lim := EvalPathPairs(st, parsePath(t, "<p>*"), StoreResolver(st), 3)
	if len(lim) != 3 {
		t.Errorf("limited pairs = %d, want 3", len(lim))
	}
}

func TestEvalPathTo(t *testing.T) {
	st := pathStore()
	d, _ := st.Lookup("d")
	got := EvalPathTo(st, d, parsePath(t, "<p>+"), StoreResolver(st))
	var names []string
	for _, n := range got {
		names = append(names, st.TermOf(n))
	}
	sort.Strings(names)
	if !eq(names, []string{"a", "b", "c"}) {
		t.Errorf("to(d, <p>+) = %v, want [a b c]", names)
	}
	// Reverse image of an inverse path: ^p to a is everything a reaches
	// forward via p.
	a, _ := st.Lookup("a")
	got = EvalPathTo(st, a, parsePath(t, "^<p>"), StoreResolver(st))
	if len(got) != 1 || st.TermOf(got[0]) != "b" {
		t.Errorf("to(a, ^<p>) = %v, want [b]", got)
	}
}

// TestNaivePathHoldsShortCircuits pins the interpreter's early exit: the
// resolver is called once per node expansion, so finding a target two
// hops into a 60-node chain must stop the closure immediately instead of
// walking all 60 nodes.
func TestNaivePathHoldsShortCircuits(t *testing.T) {
	st := rdf.NewStore()
	for i := 0; i < 60; i++ {
		st.Add(node(i), "p", node(i+1))
	}
	sn := st.Freeze()
	s, _ := sn.Lookup(node(0))
	o, _ := sn.Lookup(node(2))
	calls := 0
	counting := func(iri string) (rdf.ID, bool) {
		calls++
		return sn.Lookup(iri)
	}
	if !NaivePathHolds(sn, s, o, parsePath(t, "<p>+"), counting) {
		t.Fatal("chain head must reach node 2 via <p>+")
	}
	if calls > 5 {
		t.Errorf("naive PathHolds expanded %d nodes for a 2-hop target; short-circuit is broken", calls)
	}
	// Compiled engine agrees, including on the negative case.
	far, _ := sn.Lookup(node(59))
	if !PathHolds(sn, s, far, parsePath(t, "<p>+"), StoreResolver(sn)) {
		t.Error("compiled PathHolds missed the chain tail")
	}
	x := sn.NumTerms() // out-of-graph target can never hold
	if PathHolds(sn, s, rdf.ID(x), parsePath(t, "<p>+"), StoreResolver(sn)) {
		t.Error("compiled PathHolds held for an absent node")
	}
}

func node(i int) string { return "n" + string(rune('A'+i/26)) + string(rune('a'+i%26)) }

func TestPathEvalSeqDeduplicatesFrontier(t *testing.T) {
	// Diamond data: without frontier dedup, the final stage would yield
	// the same node many times; the result set must still be exact.
	b := rdf.NewStore()
	b.Add("s", "p", "m1")
	b.Add("s", "p", "m2")
	b.Add("m1", "p", "t")
	b.Add("m2", "p", "t")
	b.Add("t", "p", "u")
	got := reach(t, b.Freeze(), "s", "<p>/<p>/<p>")
	if !eq(got, []string{"u"}) {
		t.Errorf("diamond seq = %v, want [u]", got)
	}
}

func TestPathEvalNegatedInverse(t *testing.T) {
	st := pathStore()
	// !(^p): follow any reverse edge except p-edges; from a the only
	// reverse edge is r (from c).
	got := reach(t, st, "a", "!(^<p>)")
	if !eq(got, []string{"c"}) {
		t.Errorf("negated inverse = %v, want [c]", got)
	}
}

func TestPathEvalOnGeneratedPaths(t *testing.T) {
	// Smoke: every navigational path emitted by the log generator
	// evaluates without panicking on a small store.
	st := pathStore()
	exprs := []string{
		"(<p>|<q>)*", "<p>*", "<p>/<q>", "<p>*/<q>", "<p>|<q>", "<p>+",
		"<p>?/<q>?", "(<p>/<q>)*", "!(<p>|^<q>)", "^<p>/<q>",
	}
	a, _ := st.Lookup("a")
	for _, ex := range exprs {
		_ = EvalPathFrom(st, a, parsePath(t, ex), StoreResolver(st))
	}
}
