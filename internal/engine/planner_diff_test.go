package engine

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"sparqlog/internal/plan"
	"sparqlog/internal/rdf"
)

// randomConsistencyCase builds one store + conjunctive query of the
// consistency corpus (same distribution as TestEngineConsistencyRandom,
// independent seed).
func randomConsistencyCase(rng *rand.Rand) (*rdf.Snapshot, CQ) {
	st := rdf.NewStore()
	nNodes := 4 + rng.Intn(10)
	nPreds := 1 + rng.Intn(3)
	nTriples := 5 + rng.Intn(30)
	for i := 0; i < nTriples; i++ {
		st.Add(itoa(rng.Intn(nNodes)), "p"+itoa(rng.Intn(nPreds)), itoa(rng.Intn(nNodes)))
	}
	sn := st.Freeze()
	nAtoms := 1 + rng.Intn(4)
	nVars := 1 + rng.Intn(4)
	ref := func() TermRef {
		if rng.Float64() < 0.7 {
			return V(rng.Intn(nVars))
		}
		id, ok := sn.Lookup(itoa(rng.Intn(nNodes)))
		if !ok {
			return V(rng.Intn(nVars))
		}
		return C(id)
	}
	var atoms []Atom
	for a := 0; a < nAtoms; a++ {
		p := TermRef{}
		if rng.Float64() < 0.15 {
			p = V(rng.Intn(nVars))
		} else {
			pid, _ := sn.Lookup("p" + itoa(rng.Intn(nPreds)))
			p = C(pid)
		}
		atoms = append(atoms, Atom{S: ref(), P: p, O: ref()})
	}
	return sn, CQ{Atoms: atoms, NumVars: nVars}
}

// TestPlannedOrderingDifferential is the planner's differential suite:
// on the consistency corpus, statistics-planned execution (uncached and
// cached) must return counts identical to the order-independent
// references — syntactic graph execution (the pre-planner baseline that
// remains in-tree) and the materializing relational engine — for both
// engines, including the relational engine's planner-ordered mode.
func TestPlannedOrderingDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 120; trial++ {
		sn, q := randomConsistencyCase(rng)
		cache := plan.NewCache(sn)

		planned := (&GraphEngine{}).Execute(sn, q, time.Second)
		cached := (&GraphEngine{Plans: cache}).Execute(sn, q, time.Second)
		cachedAgain := (&GraphEngine{Plans: cache}).Execute(sn, q, time.Second)
		syntactic := (&GraphEngine{Order: OrderSyntactic}).Execute(sn, q, time.Second)
		relational := (&RelationalEngine{}).Execute(sn, q, time.Second)
		relPlanned := (&RelationalEngine{Reorder: true, Plans: cache}).Execute(sn, q, time.Second)

		for _, res := range []Result{planned, cached, cachedAgain, syntactic, relational, relPlanned} {
			if res.TimedOut {
				t.Fatalf("trial %d: unexpected timeout", trial)
			}
		}
		want := syntactic.Count
		if planned.Count != want || cached.Count != want || cachedAgain.Count != want {
			t.Fatalf("trial %d: graph counts diverge: planned=%d cached=%d/%d syntactic=%d (atoms=%v)",
				trial, planned.Count, cached.Count, cachedAgain.Count, want, q.Atoms)
		}
		if relational.Count != want || relPlanned.Count != want {
			t.Fatalf("trial %d: relational counts diverge: syntactic=%d planned=%d want=%d (atoms=%v)",
				trial, relational.Count, relPlanned.Count, want, q.Atoms)
		}

		// ASK agreement on the same case.
		qa := q
		qa.Ask = true
		askPlanned := (&GraphEngine{Plans: cache}).Execute(sn, qa, time.Second)
		askRel := (&RelationalEngine{Reorder: true, Plans: cache, PipelinedAsk: true}).Execute(sn, qa, time.Second)
		if (askPlanned.Count > 0) != (want > 0) || (askRel.Count > 0) != (want > 0) {
			t.Fatalf("trial %d: ASK diverges: want %v, planned=%v relational=%v",
				trial, want > 0, askPlanned.Count > 0, askRel.Count > 0)
		}
	}
}

// TestExplainMatchesExecution: the instrumented explain run must return
// the same count as plain execution, report a permutation of the atoms,
// and its final actual row count must equal the result count.
func TestExplainMatchesExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		sn, q := randomConsistencyCase(rng)
		e := &GraphEngine{}
		explained, res := e.Explain(context.Background(), sn, q)
		plain := e.Execute(sn, q, time.Second)
		if res.Count != plain.Count {
			t.Fatalf("trial %d: explain count %d != execute count %d", trial, res.Count, plain.Count)
		}
		seen := make([]bool, len(q.Atoms))
		for _, ai := range explained.Plan.Order {
			if ai < 0 || ai >= len(q.Atoms) || seen[ai] {
				t.Fatalf("trial %d: order %v is not a permutation", trial, explained.Plan.Order)
			}
			seen[ai] = true
		}
		if n := len(q.Atoms); explained.Actual[n-1] != res.Count {
			t.Fatalf("trial %d: final actual rows %d != count %d", trial, explained.Actual[n-1], res.Count)
		}
		if explained.Format(sn.TermOf, nil) == "" {
			t.Fatal("empty explain rendering")
		}
	}
}

// TestPlanCacheAmortizes: repeated shapes must hit the cache, and plans
// must be shared pointers, not re-planned copies.
func TestPlanCacheAmortizes(t *testing.T) {
	sn, q := randomConsistencyCase(rand.New(rand.NewSource(7)))
	cache := plan.NewCache(sn)
	e := &GraphEngine{Plans: cache}
	for i := 0; i < 10; i++ {
		e.Execute(sn, q, time.Second)
	}
	if cache.Misses() != 1 {
		t.Fatalf("misses = %d, want 1", cache.Misses())
	}
	if cache.Hits() != 9 {
		t.Fatalf("hits = %d, want 9", cache.Hits())
	}
}

// TestColumnarEngineDifferential: the columnar batch pipeline must
// count exactly like the backtracking search on the consistency
// corpus, and its per-operator stats must be self-consistent (final
// actual rows == count).
func TestColumnarEngineDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 120; trial++ {
		sn, q := randomConsistencyCase(rng)
		search := (&GraphEngine{}).Execute(sn, q, time.Second)
		columnar := (&GraphEngine{Columnar: true}).Execute(sn, q, time.Second)
		if search.TimedOut || columnar.TimedOut {
			t.Fatalf("trial %d: unexpected timeout", trial)
		}
		if search.Count != columnar.Count {
			t.Fatalf("trial %d: columnar count %d != search count %d (atoms=%v)",
				trial, columnar.Count, search.Count, q.Atoms)
		}
		e := &GraphEngine{Columnar: true}
		explained, res := e.Explain(context.Background(), sn, q)
		if res.Count != search.Count {
			t.Fatalf("trial %d: columnar explain count %d != %d", trial, res.Count, search.Count)
		}
		if n := len(q.Atoms); explained.Batches == nil || explained.Actual[n-1] != res.Count {
			t.Fatalf("trial %d: explain stats inconsistent: actual=%v batches=%v count=%d",
				trial, explained.Actual, explained.Batches, res.Count)
		}
	}
}
