package engine

import (
	"math/rand"
	"testing"
	"time"

	"sparqlog/internal/rdf"
)

// TestEngineConsistencyRandom is the cross-engine differential test: on
// random stores and random conjunctive queries, all engines (greedy graph,
// syntactic graph, materializing relational, pipelined relational) must
// agree on result counts (for counting) and emptiness (for ASK).
func TestEngineConsistencyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		st := rdf.NewStore()
		nNodes := 4 + rng.Intn(10)
		nPreds := 1 + rng.Intn(3)
		nTriples := 5 + rng.Intn(30)
		for i := 0; i < nTriples; i++ {
			s := itoa(rng.Intn(nNodes))
			p := "p" + itoa(rng.Intn(nPreds))
			o := itoa(rng.Intn(nNodes))
			st.Add(s, p, o)
		}
		sn := st.Freeze()
		// Random CQ: 1-4 atoms over up to 4 variables, constants mixed in.
		nAtoms := 1 + rng.Intn(4)
		nVars := 1 + rng.Intn(4)
		var atoms []Atom
		ref := func() TermRef {
			if rng.Float64() < 0.7 {
				return V(rng.Intn(nVars))
			}
			id, ok := sn.Lookup(itoa(rng.Intn(nNodes)))
			if !ok {
				return V(rng.Intn(nVars))
			}
			return C(id)
		}
		for a := 0; a < nAtoms; a++ {
			pid, _ := sn.Lookup("p" + itoa(rng.Intn(nPreds)))
			atoms = append(atoms, Atom{S: ref(), P: C(pid), O: ref()})
		}
		q := CQ{Atoms: atoms, NumVars: nVars}

		ref1 := (&GraphEngine{}).Execute(sn, q, time.Second)
		ref2 := (&GraphEngine{Order: OrderSyntactic}).Execute(sn, q, time.Second)
		ref3 := (&RelationalEngine{}).Execute(sn, q, time.Second)
		if ref1.TimedOut || ref2.TimedOut || ref3.TimedOut {
			t.Fatalf("trial %d: unexpected timeout", trial)
		}
		if ref1.Count != ref2.Count || ref1.Count != ref3.Count {
			t.Fatalf("trial %d: counts diverge: greedy=%d syntactic=%d relational=%d (atoms=%v)",
				trial, ref1.Count, ref2.Count, ref3.Count, atoms)
		}
		// ASK agreement across all four engines.
		qa := q
		qa.Ask = true
		a1 := (&GraphEngine{}).Execute(sn, qa, time.Second)
		a2 := (&RelationalEngine{}).Execute(sn, qa, time.Second)
		a3 := (&RelationalEngine{PipelinedAsk: true}).Execute(sn, qa, time.Second)
		want := ref1.Count > 0
		if (a1.Count > 0) != want || (a2.Count > 0) != want || (a3.Count > 0) != want {
			t.Fatalf("trial %d: ASK diverges: want %v, got %v/%v/%v",
				trial, want, a1.Count > 0, a2.Count > 0, a3.Count > 0)
		}
	}
}

// TestEngineConsistencyVarPredicates repeats the differential test with
// variable predicates, which exercise different index paths.
func TestEngineConsistencyVarPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 30; trial++ {
		st := rdf.NewStore()
		for i := 0; i < 20; i++ {
			st.Add(itoa(rng.Intn(6)), "p"+itoa(rng.Intn(2)), itoa(rng.Intn(6)))
		}
		sn := st.Freeze()
		// ?x ?p ?y . ?y ?p ?z : shared predicate variable.
		q := CQ{Atoms: []Atom{
			{S: V(0), P: V(3), O: V(1)},
			{S: V(1), P: V(3), O: V(2)},
		}, NumVars: 4}
		g := (&GraphEngine{}).Execute(sn, q, time.Second)
		r := (&RelationalEngine{}).Execute(sn, q, time.Second)
		if g.Count != r.Count {
			t.Fatalf("trial %d: var-predicate counts diverge: %d vs %d", trial, g.Count, r.Count)
		}
	}
}
