package engine

import (
	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// Property-path evaluation over the triple store, under the W3C SPARQL
// 1.1 semantics: fixed-length operators (sequence, alternation, inverse,
// negated property sets) compose relations; arbitrary-length operators
// (*, +, ?) are evaluated as reachability with node-set semantics, so
// they terminate on cyclic data. This makes the navigational queries of
// Section 7 executable, complementing the classification in package
// paths. (Bagan et al.'s Ctract dichotomy concerns the stricter
// simple-path semantics, which is NP-hard in general and not used by
// SPARQL endpoints.)

// PathResolver maps IRI text as written in a path expression to store
// IDs. Implementations typically expand prefixed names first.
type PathResolver func(iri string) (rdf.ID, bool)

// StoreResolver resolves IRIs directly against the store dictionary.
func StoreResolver(sn *rdf.Snapshot) PathResolver {
	return func(iri string) (rdf.ID, bool) { return sn.Lookup(iri) }
}

// EvalPathFrom returns the set of nodes reachable from start via the
// path expression.
func EvalPathFrom(sn *rdf.Snapshot, start rdf.ID, p sparql.PathExpr, resolve PathResolver) map[rdf.ID]bool {
	e := &pathEval{sn: sn, resolve: resolve}
	out := make(map[rdf.ID]bool)
	e.from(start, p, func(n rdf.ID) { out[n] = true })
	return out
}

// PathHolds reports whether the path connects s to o.
func PathHolds(sn *rdf.Snapshot, s, o rdf.ID, p sparql.PathExpr, resolve PathResolver) bool {
	found := false
	e := &pathEval{sn: sn, resolve: resolve}
	e.from(s, p, func(n rdf.ID) {
		if n == o {
			found = true
		}
	})
	return found
}

// EvalPathPairs enumerates all (subject, object) pairs connected by the
// path, up to limit pairs (0 = unlimited). The subject candidates are
// all subjects and objects in the store.
func EvalPathPairs(sn *rdf.Snapshot, p sparql.PathExpr, resolve PathResolver, limit int) [][2]rdf.ID {
	e := &pathEval{sn: sn, resolve: resolve}
	var out [][2]rdf.ID
	seenStart := make(map[rdf.ID]bool)
	for _, t := range sn.Triples() {
		for _, s := range [2]rdf.ID{t.S, t.O} {
			if seenStart[s] {
				continue
			}
			seenStart[s] = true
			stop := false
			e.from(s, p, func(n rdf.ID) {
				if stop {
					return
				}
				out = append(out, [2]rdf.ID{s, n})
				if limit > 0 && len(out) >= limit {
					stop = true
				}
			})
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}

type pathEval struct {
	sn      *rdf.Snapshot
	resolve PathResolver
}

// from streams the nodes reachable from start via p (with duplicates
// possible for fixed-length parts; callers deduplicate as needed).
func (e *pathEval) from(start rdf.ID, p sparql.PathExpr, yield func(rdf.ID)) {
	switch n := p.(type) {
	case *sparql.PathIRI:
		if pid, ok := e.resolve(n.IRI); ok {
			for _, o := range e.sn.Objects(start, pid) {
				yield(o)
			}
		}
	case *sparql.PathInverse:
		e.inverseFrom(start, n.X, yield)
	case *sparql.PathSeq:
		e.seqFrom(start, n.Parts, yield)
	case *sparql.PathAlt:
		for _, part := range n.Parts {
			e.from(start, part, yield)
		}
	case *sparql.PathMod:
		switch n.Mod {
		case '?':
			yield(start)
			e.from(start, n.X, yield)
		case '*', '+':
			e.closure(start, n.X, n.Mod == '*', yield)
		}
	case *sparql.PathNeg:
		e.negFrom(start, n.Set, yield)
	}
}

// inverseFrom follows X backwards. Only the atomic forms the grammar
// allows under ^ are supported (IRI); general inversion recurses.
func (e *pathEval) inverseFrom(start rdf.ID, x sparql.PathExpr, yield func(rdf.ID)) {
	if iri, ok := x.(*sparql.PathIRI); ok {
		if pid, ok := e.resolve(iri.IRI); ok {
			for _, s := range e.sn.Subjects(pid, start) {
				yield(s)
			}
		}
		return
	}
	// General case: scan candidate sources (rare in practice; the
	// grammar nests ^ around atoms).
	for _, t := range e.sn.Triples() {
		src := t.S
		e.from(src, x, func(n rdf.ID) {
			if n == start {
				yield(src)
			}
		})
	}
}

func (e *pathEval) seqFrom(start rdf.ID, parts []sparql.PathExpr, yield func(rdf.ID)) {
	if len(parts) == 0 {
		yield(start)
		return
	}
	// Deduplicate the frontier between stages to avoid exponential
	// re-exploration on diamond-shaped data.
	frontier := map[rdf.ID]bool{start: true}
	for _, part := range parts[:len(parts)-1] {
		next := make(map[rdf.ID]bool)
		for n := range frontier {
			e.from(n, part, func(m rdf.ID) { next[m] = true })
		}
		frontier = next
		if len(frontier) == 0 {
			return
		}
	}
	for n := range frontier {
		e.from(n, parts[len(parts)-1], yield)
	}
}

// closure is BFS reachability via the inner path: reflexive for '*'.
func (e *pathEval) closure(start rdf.ID, inner sparql.PathExpr, reflexive bool, yield func(rdf.ID)) {
	visited := make(map[rdf.ID]bool)
	var queue []rdf.ID
	push := func(n rdf.ID) {
		if !visited[n] {
			visited[n] = true
			queue = append(queue, n)
		}
	}
	if reflexive {
		push(start)
		yield(start)
	} else {
		// '+': seed with one step.
		e.from(start, inner, func(n rdf.ID) {
			if !visited[n] {
				yield(n)
			}
			push(n)
		})
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		e.from(cur, inner, func(n rdf.ID) {
			if !visited[n] {
				yield(n)
			}
			push(n)
		})
	}
}

// negFrom implements the W3C negated-property-set semantics: forward
// members of the set exclude forward edges; inverse members exclude
// reverse edges. Forward edges are traversed only when the set has
// forward members (or no inverse members at all, covering !() and the
// plain !a form); reverse edges only when it has inverse members.
func (e *pathEval) negFrom(start rdf.ID, set []sparql.PathExpr, yield func(rdf.ID)) {
	excluded := make(map[rdf.ID]bool)
	excludedInv := make(map[rdf.ID]bool)
	var hasForward, hasInverse bool
	for _, x := range set {
		switch n := x.(type) {
		case *sparql.PathIRI:
			hasForward = true
			if pid, ok := e.resolve(n.IRI); ok {
				excluded[pid] = true
			}
		case *sparql.PathInverse:
			if iri, ok := n.X.(*sparql.PathIRI); ok {
				hasInverse = true
				if pid, ok := e.resolve(iri.IRI); ok {
					excludedInv[pid] = true
				}
			}
		}
	}
	if hasForward || !hasInverse {
		preds, objs := e.sn.SubjectEdges(start)
		for i := range preds {
			if !excluded[preds[i]] {
				yield(objs[i])
			}
		}
	}
	if hasInverse {
		subs, preds := e.sn.ObjectEdges(start)
		for i := range subs {
			if !excludedInv[preds[i]] {
				yield(subs[i])
			}
		}
	}
}
