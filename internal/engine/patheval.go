package engine

import (
	"runtime"

	"sparqlog/internal/pathcomp"
	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// Property-path evaluation over the triple store, under the W3C SPARQL
// 1.1 semantics: fixed-length operators (sequence, alternation, inverse,
// negated property sets) compose relations; arbitrary-length operators
// (*, +, ?) are evaluated as reachability with node-set semantics, so
// they terminate on cyclic data. This makes the navigational queries of
// Section 7 executable, complementing the classification in package
// paths. (Bagan et al.'s Ctract dichotomy concerns the stricter
// simple-path semantics, which is NP-hard in general and not used by
// SPARQL endpoints.)
//
// The public entry points compile the expression into internal/pathcomp's
// NFA and run the bitset product-graph search. The recursive interpreter
// they replaced is retained below as the Naive* functions: it is the
// executable specification the differential suite and the fuzz target
// check the compiled engine against, and the baseline the path
// benchmarks measure the speedup from.

// PathResolver maps IRI text as written in a path expression to store
// IDs. Implementations typically expand prefixed names first.
type PathResolver func(iri string) (rdf.ID, bool)

// StoreResolver resolves IRIs directly against the store dictionary.
func StoreResolver(sn *rdf.Snapshot) PathResolver {
	return func(iri string) (rdf.ID, bool) { return sn.Lookup(iri) }
}

// EvalPathFrom returns the nodes reachable from start via the path
// expression, as a sorted ID slice.
func EvalPathFrom(sn *rdf.Snapshot, start rdf.ID, p sparql.PathExpr, resolve PathResolver) []rdf.ID {
	return pathcomp.Compile(sn, p, pathcomp.Resolver(resolve)).From(start)
}

// EvalPathTo returns the nodes from which the path reaches end, as a
// sorted ID slice — the reverse image object-bound patterns need.
func EvalPathTo(sn *rdf.Snapshot, end rdf.ID, p sparql.PathExpr, resolve PathResolver) []rdf.ID {
	return pathcomp.Compile(sn, p, pathcomp.Resolver(resolve)).To(end)
}

// PathHolds reports whether the path connects s to o. The compiled
// search starts from whichever end the snapshot statistics say is
// rarer and stops as soon as the target is reached.
func PathHolds(sn *rdf.Snapshot, s, o rdf.ID, p sparql.PathExpr, resolve PathResolver) bool {
	return pathcomp.Compile(sn, p, pathcomp.Resolver(resolve)).Holds(s, o)
}

// EvalPathPairs enumerates all (subject, object) pairs connected by the
// path, up to limit pairs (0 = unlimited), ordered by subject then
// object ID. The subject candidates are all subjects and objects in the
// store. On large graphs the sweep fans out over GOMAXPROCS workers
// (pathcomp.PairsParCtx); the pair order is identical to a serial run.
func EvalPathPairs(sn *rdf.Snapshot, p sparql.PathExpr, resolve PathResolver, limit int) [][2]rdf.ID {
	out, _ := pathcomp.Compile(sn, p, pathcomp.Resolver(resolve)).PairsParCtx(nil, limit, runtime.GOMAXPROCS(0))
	return out
}

// ---------- naive reference interpreter ----------

// NaiveEvalPathFrom is the interpretive reference implementation of
// EvalPathFrom: per-node recursive evaluation over hash sets. Kept as
// the executable specification for differential tests and benchmarks.
func NaiveEvalPathFrom(sn *rdf.Snapshot, start rdf.ID, p sparql.PathExpr, resolve PathResolver) map[rdf.ID]bool {
	e := &pathEval{sn: sn, resolve: resolve}
	out := make(map[rdf.ID]bool)
	e.from(start, p, func(n rdf.ID) bool { out[n] = true; return true })
	return out
}

// NaivePathHolds is the interpretive reference for PathHolds. Even the
// interpreter short-circuits: the yield callback's stop signal unwinds
// the traversal as soon as the target is seen, instead of materializing
// the full closure.
func NaivePathHolds(sn *rdf.Snapshot, s, o rdf.ID, p sparql.PathExpr, resolve PathResolver) bool {
	found := false
	e := &pathEval{sn: sn, resolve: resolve}
	e.from(s, p, func(n rdf.ID) bool {
		if n == o {
			found = true
			return false
		}
		return true
	})
	return found
}

// NaiveEvalPathPairs is the interpretive reference for EvalPathPairs:
// a per-start-node closure enumeration over all subject/object nodes.
func NaiveEvalPathPairs(sn *rdf.Snapshot, p sparql.PathExpr, resolve PathResolver, limit int) [][2]rdf.ID {
	e := &pathEval{sn: sn, resolve: resolve}
	var out [][2]rdf.ID
	seenStart := make(map[rdf.ID]bool)
	for _, t := range sn.Triples() {
		for _, s := range [2]rdf.ID{t.S, t.O} {
			if seenStart[s] {
				continue
			}
			seenStart[s] = true
			e.from(s, p, func(n rdf.ID) bool {
				out = append(out, [2]rdf.ID{s, n})
				return limit <= 0 || len(out) < limit
			})
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}

type pathEval struct {
	sn      *rdf.Snapshot
	resolve PathResolver
}

// from streams the nodes reachable from start via p (with duplicates
// possible for fixed-length parts; callers deduplicate as needed). The
// yield callback returns false to stop the traversal; from propagates
// the stop by returning false itself.
func (e *pathEval) from(start rdf.ID, p sparql.PathExpr, yield func(rdf.ID) bool) bool {
	switch n := p.(type) {
	case *sparql.PathIRI:
		if pid, ok := e.resolve(n.IRI); ok {
			for _, o := range e.sn.Objects(start, pid) {
				if !yield(o) {
					return false
				}
			}
		}
	case *sparql.PathInverse:
		return e.inverseFrom(start, n.X, yield)
	case *sparql.PathSeq:
		return e.seqFrom(start, n.Parts, yield)
	case *sparql.PathAlt:
		for _, part := range n.Parts {
			if !e.from(start, part, yield) {
				return false
			}
		}
	case *sparql.PathMod:
		switch n.Mod {
		case '?':
			if !yield(start) {
				return false
			}
			return e.from(start, n.X, yield)
		case '*', '+':
			return e.closure(start, n.X, n.Mod == '*', yield)
		}
	case *sparql.PathNeg:
		return e.negFrom(start, n.Set, yield)
	}
	return true
}

// inverseFrom follows X backwards. Only the atomic forms the grammar
// allows under ^ are supported (IRI); general inversion recurses.
func (e *pathEval) inverseFrom(start rdf.ID, x sparql.PathExpr, yield func(rdf.ID) bool) bool {
	if iri, ok := x.(*sparql.PathIRI); ok {
		if pid, ok := e.resolve(iri.IRI); ok {
			for _, s := range e.sn.Subjects(pid, start) {
				if !yield(s) {
					return false
				}
			}
		}
		return true
	}
	// General case: scan candidate sources (rare in practice; the
	// grammar nests ^ around atoms). Objects count as candidates too —
	// a reflexive inner path (e.g. ^(a*)) matches zero-length from
	// nodes that never appear in subject position.
	seen := make(map[rdf.ID]bool)
	for _, t := range e.sn.Triples() {
		for _, src := range [2]rdf.ID{t.S, t.O} {
			if seen[src] {
				continue
			}
			seen[src] = true
			hit := false
			e.from(src, x, func(n rdf.ID) bool {
				if n == start {
					hit = true
					return false
				}
				return true
			})
			if hit && !yield(src) {
				return false
			}
		}
	}
	return true
}

func (e *pathEval) seqFrom(start rdf.ID, parts []sparql.PathExpr, yield func(rdf.ID) bool) bool {
	if len(parts) == 0 {
		return yield(start)
	}
	// Deduplicate the frontier between stages to avoid exponential
	// re-exploration on diamond-shaped data.
	frontier := map[rdf.ID]bool{start: true}
	for _, part := range parts[:len(parts)-1] {
		next := make(map[rdf.ID]bool)
		for n := range frontier {
			e.from(n, part, func(m rdf.ID) bool { next[m] = true; return true })
		}
		frontier = next
		if len(frontier) == 0 {
			return true
		}
	}
	for n := range frontier {
		if !e.from(n, parts[len(parts)-1], yield) {
			return false
		}
	}
	return true
}

// closure is BFS reachability via the inner path: reflexive for '*'.
func (e *pathEval) closure(start rdf.ID, inner sparql.PathExpr, reflexive bool, yield func(rdf.ID) bool) bool {
	visited := make(map[rdf.ID]bool)
	var queue []rdf.ID
	// step yields n if new and enqueues it; it returns false on stop.
	step := func(n rdf.ID) bool {
		if visited[n] {
			return true
		}
		visited[n] = true
		queue = append(queue, n)
		return yield(n)
	}
	if reflexive {
		if !step(start) {
			return false
		}
	} else {
		// '+': seed with one step; the start node is only a result if
		// re-reached through the closure.
		if !e.from(start, inner, step) {
			return false
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !e.from(cur, inner, step) {
			return false
		}
	}
	return true
}

// negFrom implements the W3C negated-property-set semantics: forward
// members of the set exclude forward edges; inverse members exclude
// reverse edges. Forward edges are traversed only when the set has
// forward members (or no inverse members at all, covering !() and the
// plain !a form); reverse edges only when it has inverse members.
func (e *pathEval) negFrom(start rdf.ID, set []sparql.PathExpr, yield func(rdf.ID) bool) bool {
	excluded := make(map[rdf.ID]bool)
	excludedInv := make(map[rdf.ID]bool)
	var hasForward, hasInverse bool
	for _, x := range set {
		switch n := x.(type) {
		case *sparql.PathIRI:
			hasForward = true
			if pid, ok := e.resolve(n.IRI); ok {
				excluded[pid] = true
			}
		case *sparql.PathInverse:
			if iri, ok := n.X.(*sparql.PathIRI); ok {
				hasInverse = true
				if pid, ok := e.resolve(iri.IRI); ok {
					excludedInv[pid] = true
				}
			}
		}
	}
	if hasForward || !hasInverse {
		preds, objs := e.sn.SubjectEdges(start)
		for i := range preds {
			if !excluded[preds[i]] {
				if !yield(objs[i]) {
					return false
				}
			}
		}
	}
	if hasInverse {
		subs, preds := e.sn.ObjectEdges(start)
		for i := range subs {
			if !excludedInv[preds[i]] {
				if !yield(subs[i]) {
					return false
				}
			}
		}
	}
	return true
}
