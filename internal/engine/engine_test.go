package engine

import (
	"testing"
	"time"

	"sparqlog/internal/rdf"
)

// chainStore builds a store with a path a0 -e-> a1 -e-> ... -e-> a5 and a
// triangle t0 -c-> t1 -c-> t2 -c-> t0.
func chainStore() *rdf.Store {
	st := rdf.NewStore()
	names := []string{"a0", "a1", "a2", "a3", "a4", "a5"}
	for i := 0; i+1 < len(names); i++ {
		st.Add(names[i], "e", names[i+1])
	}
	st.Add("t0", "c", "t1")
	st.Add("t1", "c", "t2")
	st.Add("t2", "c", "t0")
	return st
}

// chainCQ builds ?x0 e ?x1 . ?x1 e ?x2 ... of the given length.
func chainCQ(st *rdf.Snapshot, pred string, k int, ask bool) CQ {
	pid, _ := st.Lookup(pred)
	var atoms []Atom
	for i := 0; i < k; i++ {
		atoms = append(atoms, Atom{S: V(i), P: C(pid), O: V(i + 1)})
	}
	return CQ{Atoms: atoms, NumVars: k + 1, Ask: ask}
}

// cycleCQ builds a closed cycle of length k.
func cycleCQ(st *rdf.Snapshot, pred string, k int, ask bool) CQ {
	pid, _ := st.Lookup(pred)
	var atoms []Atom
	for i := 0; i < k; i++ {
		atoms = append(atoms, Atom{S: V(i), P: C(pid), O: V((i + 1) % k)})
	}
	return CQ{Atoms: atoms, NumVars: k, Ask: ask}
}

func engines() []Engine {
	return []Engine{&GraphEngine{}, &GraphEngine{Order: OrderSyntactic}, &RelationalEngine{}}
}

func TestChainCounts(t *testing.T) {
	st := chainStore().Freeze()
	for _, e := range engines() {
		// Paths of length 2 along "e": a0a1a2, a1a2a3, a2a3a4, a3a4a5.
		res := e.Execute(st, chainCQ(st, "e", 2, false), time.Second)
		if res.TimedOut {
			t.Fatalf("%s: unexpected timeout", e.Name())
		}
		if res.Count != 4 {
			t.Errorf("%s: chain-2 count = %d, want 4", e.Name(), res.Count)
		}
	}
}

func TestCycleCounts(t *testing.T) {
	st := chainStore().Freeze()
	for _, e := range engines() {
		// The triangle yields 3 bindings for a 3-cycle (rotations).
		res := e.Execute(st, cycleCQ(st, "c", 3, false), time.Second)
		if res.TimedOut {
			t.Fatalf("%s: unexpected timeout", e.Name())
		}
		if res.Count != 3 {
			t.Errorf("%s: cycle-3 count = %d, want 3", e.Name(), res.Count)
		}
		// No 3-cycle along "e".
		res2 := e.Execute(st, cycleCQ(st, "e", 3, false), time.Second)
		if res2.Count != 0 {
			t.Errorf("%s: e-cycle count = %d, want 0", e.Name(), res2.Count)
		}
	}
}

func TestAskShortCircuit(t *testing.T) {
	st := chainStore().Freeze()
	ge := &GraphEngine{}
	res := ge.Execute(st, chainCQ(st, "e", 3, true), time.Second)
	if res.Count != 1 {
		t.Errorf("ask count = %d, want 1", res.Count)
	}
	// Relational engine answers the same question by counting.
	re := &RelationalEngine{}
	res2 := re.Execute(st, chainCQ(st, "e", 3, true), time.Second)
	if res2.Count == 0 {
		t.Error("relational ask should find results")
	}
}

func TestConstantsInAtoms(t *testing.T) {
	st := chainStore().Freeze()
	a0, _ := st.Lookup("a0")
	pid, _ := st.Lookup("e")
	q := CQ{Atoms: []Atom{{S: C(a0), P: C(pid), O: V(0)}}, NumVars: 1}
	for _, e := range engines() {
		res := e.Execute(st, q, time.Second)
		if res.Count != 1 {
			t.Errorf("%s: constant subject count = %d, want 1", e.Name(), res.Count)
		}
	}
	// Fully ground atom.
	a1, _ := st.Lookup("a1")
	q2 := CQ{Atoms: []Atom{{S: C(a0), P: C(pid), O: C(a1)}}, NumVars: 0}
	for _, e := range engines() {
		if res := e.Execute(st, q2, time.Second); res.Count != 1 {
			t.Errorf("%s: ground atom count = %d, want 1", e.Name(), res.Count)
		}
	}
}

func TestVariablePredicate(t *testing.T) {
	st := chainStore().Freeze()
	a0, _ := st.Lookup("a0")
	q := CQ{Atoms: []Atom{{S: C(a0), P: V(0), O: V(1)}}, NumVars: 2}
	for _, e := range engines() {
		res := e.Execute(st, q, time.Second)
		if res.Count != 1 {
			t.Errorf("%s: var predicate count = %d, want 1", e.Name(), res.Count)
		}
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	b := chainStore()
	b.Add("loop", "e", "loop")
	st := b.Freeze()
	pid, _ := st.Lookup("e")
	q := CQ{Atoms: []Atom{{S: V(0), P: C(pid), O: V(0)}}, NumVars: 1}
	for _, e := range engines() {
		res := e.Execute(st, q, time.Second)
		if res.Count != 1 {
			t.Errorf("%s: self-loop count = %d, want 1", e.Name(), res.Count)
		}
	}
}

func TestEnginesAgreeOnJoins(t *testing.T) {
	st := chainStore().Freeze()
	// Two-atom join with shared variable in different positions.
	pid, _ := st.Lookup("e")
	cid, _ := st.Lookup("c")
	queries := []CQ{
		{Atoms: []Atom{
			{S: V(0), P: C(pid), O: V(1)},
			{S: V(2), P: C(cid), O: V(3)},
		}, NumVars: 4}, // cross product: 5 * 3 = 15
		{Atoms: []Atom{
			{S: V(0), P: C(pid), O: V(1)},
			{S: V(1), P: C(pid), O: V(2)},
			{S: V(2), P: C(pid), O: V(3)},
		}, NumVars: 4}, // chain-3: 3
	}
	want := []int64{15, 3}
	for qi, q := range queries {
		for _, e := range engines() {
			res := e.Execute(st, q, time.Second)
			if res.Count != want[qi] {
				t.Errorf("%s query %d: count = %d, want %d", e.Name(), qi, res.Count, want[qi])
			}
		}
	}
}

func TestTimeout(t *testing.T) {
	// A large random graph with an expensive cyclic query and a tiny
	// timeout must report a timeout, and the reported duration equals the
	// timeout (Figure 3 counts timeouts at full timeout value).
	b := rdf.NewStore()
	for i := 0; i < 3000; i++ {
		b.Add(itoa(i%611), "p", itoa((i*7+1)%611))
	}
	st := b.Freeze()
	pid, _ := st.Lookup("p")
	var atoms []Atom
	for i := 0; i < 6; i++ {
		atoms = append(atoms, Atom{S: V(i), P: C(pid), O: V((i + 1) % 6)})
	}
	q := CQ{Atoms: atoms, NumVars: 6}
	re := &RelationalEngine{MaxRows: 1 << 30}
	res := re.Execute(st, q, time.Microsecond)
	if !res.TimedOut {
		t.Skip("machine too fast for microsecond timeout; skipping")
	}
	if res.Duration != time.Microsecond {
		t.Errorf("timeout duration = %v, want the timeout value", res.Duration)
	}
}

func TestMaterializationCapCountsAsTimeout(t *testing.T) {
	b := rdf.NewStore()
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			b.Add(itoa(i), "p", itoa(40+j))
		}
	}
	st := b.Freeze()
	pid, _ := st.Lookup("p")
	// Cross join of two scans: 1600 * 1600 rows > cap.
	q := CQ{Atoms: []Atom{
		{S: V(0), P: C(pid), O: V(1)},
		{S: V(2), P: C(pid), O: V(3)},
	}, NumVars: 4}
	re := &RelationalEngine{MaxRows: 1000}
	res := re.Execute(st, q, time.Minute)
	if !res.TimedOut {
		t.Error("materialization cap must surface as timeout")
	}
}

func TestWorkloadStats(t *testing.T) {
	st := chainStore().Freeze()
	queries := []CQ{chainCQ(st, "e", 2, true), cycleCQ(st, "c", 3, true)}
	stats := RunWorkload(&GraphEngine{}, st, queries, time.Second)
	if stats.Queries != 2 || stats.Timeouts != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.AvgNanos() <= 0 {
		t.Error("avg must be positive")
	}
	if stats.TimeoutRate() != 0 {
		t.Error("timeout rate must be 0")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
