package engine

import (
	"context"

	"sparqlog/internal/plan"
	"sparqlog/internal/rdf"
)

// Explain executes the query on the graph engine with per-step
// instrumentation and returns the chosen plan annotated with estimated
// vs. actual intermediate row counts — and, for counting queries run
// on the columnar pipeline, per-operator batch counts — plus the
// execution result. The instrumented run is a real execution (same
// result as ExecuteContext), so actual counts are exact, not sampled.
// ASK queries short-circuit as usual, which truncates the actual
// counts at the first result.
func (e *GraphEngine) Explain(ctx context.Context, sn *rdf.Snapshot, q CQ) (*plan.Explained, Result) {
	var p *plan.Plan
	cacheHit := false
	if e.Order == OrderSyntactic {
		order := make([]int, len(q.Atoms))
		for i := range order {
			order[i] = i
		}
		p = &plan.Plan{Order: order, Est: make([]float64, len(order)), Rows: make([]float64, len(order))}
	} else {
		p, cacheHit = e.Plans.Lookup(sn, q.Atoms, q.NumVars)
		if p.Key == "" {
			p.Key = plan.ShapeKey(q.Atoms)
		}
	}
	if q.Ask {
		res, ex := e.run(ctx, sn, q, p.Order, true)
		return &plan.Explained{
			Atoms:    q.Atoms,
			Plan:     p,
			Actual:   ex.actual,
			CacheHit: cacheHit,
		}, res
	}
	res, actual, batches := e.runColumnar(ctx, sn, q, p.Order)
	return &plan.Explained{
		Atoms:    q.Atoms,
		Plan:     p,
		Actual:   actual,
		Batches:  batches,
		CacheHit: cacheHit,
	}, res
}
