package engine

import (
	"context"
	"errors"
	"time"

	"sparqlog/internal/plan"
	"sparqlog/internal/rdf"
)

// RelationalEngine is the PostgreSQL stand-in: the query is executed as a
// left-deep sequence of hash joins over a single triples(s,p,o) relation,
// in the atoms' syntactic order, with every intermediate relation fully
// materialized. MaxRows bounds materialization (a memory guard counted as
// a timeout, the way an exhausted database would be).
type RelationalEngine struct {
	// MaxRows caps any intermediate relation; 0 means DefaultMaxRows.
	MaxRows int
	// PipelinedAsk streams ASK queries through the join pipeline with
	// early exit (an EXISTS-style plan) instead of materializing. The
	// paper's setup ran gMark's SQL SELECT workloads on PostgreSQL, so
	// the default is full materialization; the flag exists for the
	// ablation benchmark.
	PipelinedAsk bool
	// Reorder permutes the atoms into the cost-based planner's order
	// before the left-deep pipeline — the "PostgreSQL with table
	// statistics" variant. The default (false) keeps the paper's
	// syntactic order, which is what drives the observed cycle timeouts.
	Reorder bool
	// Plans optionally caches plans by query shape when Reorder is set;
	// see GraphEngine.Plans.
	Plans *plan.Cache
}

// DefaultMaxRows bounds intermediate materialization.
const DefaultMaxRows = 4_000_000

// Name identifies the engine in reports.
func (e *RelationalEngine) Name() string {
	if e.Reorder {
		return "PG-stats"
	}
	return "PG"
}

// relation is a materialized intermediate result: a schema of variable
// indexes and rows of concrete IDs.
type relation struct {
	vars []int
	rows [][]rdf.ID
}

func (r *relation) colOf(v int) int {
	for i, x := range r.vars {
		if x == v {
			return i
		}
	}
	return -1
}

// Execute runs the query within a timeout; timed-out queries report the
// full timeout as their duration, as Figure 3 counts them.
func (e *RelationalEngine) Execute(sn *rdf.Snapshot, q CQ, timeout time.Duration) Result {
	return executeWithTimeout(e, sn, q, timeout)
}

// ExecuteContext runs the left-deep hash-join pipeline under the
// context's deadline, materializing every intermediate (the SQL SELECT
// plan of the paper's setup). With PipelinedAsk set, ASK queries instead
// stream with early exit.
func (e *RelationalEngine) ExecuteContext(ctx context.Context, sn *rdf.Snapshot, q CQ) Result {
	if e.Reorder {
		q = q.Reordered(e.Plans.For(sn, q.Atoms, q.NumVars))
	}
	if q.Ask && e.PipelinedAsk {
		return e.executeAsk(ctx, sn, q)
	}
	start := time.Now()
	tk := newTicker(ctx)
	maxRows := e.MaxRows
	if maxRows <= 0 {
		maxRows = DefaultMaxRows
	}
	cur := &relation{}
	cur.rows = [][]rdf.ID{{}} // unit relation
	var err error
	for _, atom := range q.Atoms {
		cur, err = joinAtom(sn, cur, atom, &tk, maxRows)
		if err != nil {
			break
		}
		if len(cur.rows) == 0 {
			break
		}
	}
	res := Result{Duration: time.Since(start)}
	if err != nil {
		res.TimedOut = true
		return res
	}
	res.Count = int64(len(cur.rows))
	return res
}

// joinAtom scans the triples matching the atom's constants and hash-joins
// them with the current relation on the shared variables.
func joinAtom(sn *rdf.Snapshot, cur *relation, atom Atom, tk *ticker, maxRows int) (*relation, error) {
	// Columns the atom shares with cur, and new columns it introduces.
	type pos struct {
		ref TermRef
		col int // column in cur, or -1
	}
	ps := [3]pos{{ref: atom.S}, {ref: atom.P}, {ref: atom.O}}
	var newVars []int
	seenNew := map[int]int{}
	for i := range ps {
		if !ps[i].ref.IsVar {
			ps[i].col = -1
			continue
		}
		ps[i].col = cur.colOf(ps[i].ref.Var)
		if ps[i].col == -1 {
			if _, dup := seenNew[ps[i].ref.Var]; !dup {
				seenNew[ps[i].ref.Var] = len(cur.vars) + len(newVars)
				newVars = append(newVars, ps[i].ref.Var)
			}
		}
	}
	out := &relation{vars: append(append([]int{}, cur.vars...), newVars...)}

	// Candidate triples: restrict by constant predicate when available
	// (the relational engine's single index), else scan the relation.
	var scan []rdf.Triple
	if !atom.P.IsVar {
		scan = sn.ScanPredicate(atom.P.ID)
	} else {
		scan = sn.Triples()
	}

	// Build a hash table on the join key over the smaller side: we always
	// hash the scan side keyed by shared-variable values, then probe with
	// cur rows (modelling a hash join without optimizer statistics).
	type key [3]int64
	makeKeyFromTriple := func(t rdf.Triple) (key, bool) {
		var k key
		vals := [3]rdf.ID{t.S, t.P, t.O}
		for i := range ps {
			k[i] = -1
			if !ps[i].ref.IsVar {
				if ps[i].ref.ID != vals[i] {
					return k, false
				}
				continue
			}
			if ps[i].col >= 0 {
				k[i] = int64(vals[i])
			}
		}
		// Repeated variables within the atom must agree.
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if ps[i].ref.IsVar && ps[j].ref.IsVar && ps[i].ref.Var == ps[j].ref.Var && vals[i] != vals[j] {
					return k, false
				}
			}
		}
		return k, true
	}
	ht := make(map[key][]rdf.Triple)
	for _, t := range scan {
		if err := tk.check(4095); err != nil {
			return nil, err
		}
		if k, ok := makeKeyFromTriple(t); ok {
			ht[k] = append(ht[k], t)
		}
	}
	for _, row := range cur.rows {
		if err := tk.check(1023); err != nil {
			return nil, err
		}
		var k key
		for i := range ps {
			k[i] = -1
			if ps[i].ref.IsVar && ps[i].col >= 0 {
				k[i] = int64(row[ps[i].col])
			}
		}
		for _, t := range ht[k] {
			vals := [3]rdf.ID{t.S, t.P, t.O}
			newRow := make([]rdf.ID, len(out.vars))
			copy(newRow, row)
			// Repeated variables within the atom were already checked by
			// makeKeyFromTriple, so plain assignment is safe.
			for i := range ps {
				if ps[i].ref.IsVar && ps[i].col == -1 {
					newRow[seenNew[ps[i].ref.Var]] = vals[i]
				}
			}
			out.rows = append(out.rows, newRow)
			if len(out.rows) > maxRows {
				return nil, errMemory
			}
		}
	}
	return out, nil
}

// errMemory marks the materialization cap; reported as a timeout.
var errMemory = errors.New("engine: materialization cap exceeded")

// executeAsk streams rows through the syntactic-order join pipeline with
// early exit. Unlike GraphEngine, there is no join reordering and no
// selectivity estimation: atom i is always probed after atoms 0..i-1, so
// a cycle query enumerates open paths until one closes — the behaviour
// behind the paper's PostgreSQL cycle timeouts.
func (e *RelationalEngine) executeAsk(ctx context.Context, sn *rdf.Snapshot, q CQ) Result {
	start := time.Now()
	tk := newTicker(ctx)
	// Hash build per atom, keyed by the variables shared with the prefix
	// (modelling the hash side of each join; the build cost is the full
	// predicate scan, as in a triples-table plan without statistics).
	numAtoms := len(q.Atoms)
	bound := make([]bool, q.NumVars)
	type buildInfo struct {
		keyVars []int // variables bound by the prefix that this atom shares
		table   map[[3]int64][]rdf.Triple
	}
	builds := make([]buildInfo, numAtoms)
	timedOut := func() Result {
		return Result{TimedOut: true, Duration: time.Since(start)}
	}
	for i, atom := range q.Atoms {
		var keyVars []int
		refs := [3]TermRef{atom.S, atom.P, atom.O}
		for _, r := range refs {
			if r.IsVar && bound[r.Var] {
				keyVars = append(keyVars, r.Var)
			}
		}
		var scan []rdf.Triple
		if !atom.P.IsVar {
			scan = sn.ScanPredicate(atom.P.ID)
		} else {
			scan = sn.Triples()
		}
		table := make(map[[3]int64][]rdf.Triple, len(scan))
		for _, t := range scan {
			if err := tk.check(4095); err != nil {
				return timedOut()
			}
			vals := [3]rdf.ID{t.S, t.P, t.O}
			ok := true
			var key [3]int64
			for ki := range key {
				key[ki] = -1
			}
			for pi, r := range refs {
				if !r.IsVar {
					if r.ID != vals[pi] {
						ok = false
						break
					}
					continue
				}
				// Repeated variables inside the atom must agree.
				for pj := pi + 1; pj < 3; pj++ {
					if refs[pj].IsVar && refs[pj].Var == r.Var && vals[pj] != vals[pi] {
						ok = false
					}
				}
			}
			if !ok {
				continue
			}
			ki := 0
			for _, kv := range keyVars {
				for pi, r := range refs {
					if r.IsVar && r.Var == kv {
						key[ki] = int64(vals[pi])
						break
					}
				}
				ki++
			}
			table[key] = append(table[key], t)
		}
		builds[i] = buildInfo{keyVars: keyVars, table: table}
		for _, r := range refs {
			if r.IsVar {
				bound[r.Var] = true
			}
		}
	}
	// Streaming probe with backtracking, syntactic order, first-hit exit.
	binding := make([]int64, q.NumVars)
	for i := range binding {
		binding[i] = unbound
	}
	var probe func(i int) (bool, error)
	probe = func(i int) (bool, error) {
		if i == numAtoms {
			return true, nil
		}
		if err := tk.check(1023); err != nil {
			return false, err
		}
		atom := q.Atoms[i]
		refs := [3]TermRef{atom.S, atom.P, atom.O}
		var key [3]int64
		for ki := range key {
			key[ki] = -1
		}
		for ki, kv := range builds[i].keyVars {
			key[ki] = binding[kv]
		}
		for _, t := range builds[i].table[key] {
			vals := [3]rdf.ID{t.S, t.P, t.O}
			var set [3]int
			n := 0
			ok := true
			for pi, r := range refs {
				if !r.IsVar {
					continue
				}
				switch cur := binding[r.Var]; {
				case cur == unbound:
					binding[r.Var] = int64(vals[pi])
					set[n] = r.Var
					n++
				case cur != int64(vals[pi]):
					ok = false
				}
				if !ok {
					break
				}
			}
			if ok {
				found, err := probe(i + 1)
				if err != nil {
					return false, err
				}
				if found {
					return true, nil
				}
			}
			for j := 0; j < n; j++ {
				binding[set[j]] = unbound
			}
		}
		return false, nil
	}
	found, err := probe(0)
	if err != nil {
		return timedOut()
	}
	res := Result{Duration: time.Since(start)}
	if found {
		res.Count = 1
	}
	return res
}
