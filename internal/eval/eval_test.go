package eval

import (
	"testing"

	"sparqlog/internal/pathcomp"
	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// people builds a small social store snapshot.
func people() *rdf.Snapshot { return peopleStore().Freeze() }

// peopleStore is the mutable builder behind people, for tests that add
// extra triples before freezing.
func peopleStore() *rdf.Store {
	st := rdf.NewStore()
	add := func(s, p, o string) { st.Add(s, p, o) }
	add("http://ex/alice", "http://ex/name", "Alice")
	add("http://ex/alice", "http://ex/age", "30")
	add("http://ex/alice", "http://ex/knows", "http://ex/bob")
	add("http://ex/bob", "http://ex/name", "Bob")
	add("http://ex/bob", "http://ex/age", "25")
	add("http://ex/bob", "http://ex/knows", "http://ex/carol")
	add("http://ex/carol", "http://ex/name", "Carol")
	add("http://ex/carol", "http://ex/age", "35")
	add("http://ex/alice", "http://ex/worksAt", "http://ex/acme")
	add("http://ex/bob", "http://ex/worksAt", "http://ex/acme")
	return st
}

func run(t *testing.T, st *rdf.Snapshot, src string) *Result {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Query(st, q)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return res
}

func TestSelectBasic(t *testing.T) {
	res := run(t, people(), `SELECT ?n WHERE { ?p <http://ex/name> ?n }`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

func TestJoin(t *testing.T) {
	res := run(t, people(), `SELECT ?n ?m WHERE {
		?a <http://ex/knows> ?b .
		?a <http://ex/name> ?n .
		?b <http://ex/name> ?m
	}`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (alice-bob, bob-carol)", len(res.Rows))
	}
}

func TestPrefixExpansion(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?n WHERE { ex:alice ex:name ?n }`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "Alice" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestFilterNumeric(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?p WHERE { ?p ex:age ?a FILTER (?a > 28) }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (alice 30, carol 35)", len(res.Rows))
	}
}

func TestFilterLogic(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?p WHERE { ?p ex:age ?a FILTER (?a >= 25 && ?a < 31) }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestOptional(t *testing.T) {
	b := peopleStore()
	b.Add("http://ex/dave", "http://ex/name", "Dave") // no age
	res := run(t, b.Freeze(), `PREFIX ex: <http://ex/>
		SELECT ?n ?a WHERE { ?p ex:name ?n OPTIONAL { ?p ex:age ?a } }`)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	unboundSeen := false
	for _, row := range res.Rows {
		if row[0] == "Dave" && row[1] == Unbound {
			unboundSeen = true
		}
	}
	if !unboundSeen {
		t.Error("Dave should have unbound age")
	}
}

func TestUnion(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?x WHERE { { ?x ex:age "30" } UNION { ?x ex:age "25" } }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestMinus(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?p WHERE { ?p ex:name ?n MINUS { ?p ex:worksAt ex:acme } }`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (carol)", len(res.Rows))
	}
}

func TestDistinctLimitOffsetOrder(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT DISTINCT ?w WHERE { ?p ex:worksAt ?w }`)
	if len(res.Rows) != 1 {
		t.Fatalf("distinct rows = %d, want 1", len(res.Rows))
	}
	res2 := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?n WHERE { ?p ex:name ?n } ORDER BY ?n LIMIT 2`)
	if len(res2.Rows) != 2 || res2.Rows[0][0] != "Alice" || res2.Rows[1][0] != "Bob" {
		t.Fatalf("ordered rows = %v", res2.Rows)
	}
	res3 := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?n WHERE { ?p ex:name ?n } ORDER BY DESC(?n) LIMIT 1`)
	if res3.Rows[0][0] != "Carol" {
		t.Fatalf("desc first = %v", res3.Rows)
	}
	res4 := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?n WHERE { ?p ex:name ?n } ORDER BY ?n OFFSET 2`)
	if len(res4.Rows) != 1 || res4.Rows[0][0] != "Carol" {
		t.Fatalf("offset rows = %v", res4.Rows)
	}
}

func TestAsk(t *testing.T) {
	if !run(t, people(), `PREFIX ex: <http://ex/> ASK { ex:alice ex:knows ex:bob }`).Bool {
		t.Error("alice knows bob")
	}
	if run(t, people(), `PREFIX ex: <http://ex/> ASK { ex:carol ex:knows ex:alice }`).Bool {
		t.Error("carol does not know alice")
	}
}

func TestAggregates(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT (COUNT(*) AS ?n) WHERE { ?p ex:name ?x }`)
	if res.Rows[0][0] != "3" {
		t.Fatalf("count = %v", res.Rows)
	}
	res2 := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT (AVG(?a) AS ?avg) (MAX(?a) AS ?mx) (MIN(?a) AS ?mn) (SUM(?a) AS ?s)
		WHERE { ?p ex:age ?a }`)
	row := res2.Rows[0]
	if row[0] != "30" || row[1] != "35" || row[2] != "25" || row[3] != "90" {
		t.Fatalf("aggregate row = %v", row)
	}
}

func TestAggregateOrderBy(t *testing.T) {
	b := rdf.NewStore()
	b.Add("p1", "by", "r1")
	b.Add("p2", "by", "r1")
	b.Add("p3", "by", "r1")
	b.Add("p4", "by", "r2")
	b.Add("p5", "by", "r3")
	b.Add("p6", "by", "r3")
	sn := b.Freeze()
	res := run(t, sn, `SELECT ?r (COUNT(*) AS ?n) WHERE { ?p <by> ?r }
		GROUP BY ?r ORDER BY DESC(?n) ?r`)
	want := [][2]string{{"r1", "3"}, {"r3", "2"}, {"r2", "1"}}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for i, w := range want {
		if res.Rows[i][0] != w[0] || res.Rows[i][1] != w[1] {
			t.Fatalf("aggregate order = %v, want %v", res.Rows, want)
		}
	}
	// Ordering by an aggregate expression not in the projection.
	res2 := run(t, sn, `SELECT ?r WHERE { ?p <by> ?r } GROUP BY ?r ORDER BY COUNT(*)`)
	if res2.Rows[0][0] != "r2" {
		t.Fatalf("order by hidden aggregate = %v", res2.Rows)
	}
}

func TestGroupByHaving(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?w (COUNT(*) AS ?n) WHERE { ?p ex:worksAt ?w }
		GROUP BY ?w HAVING (COUNT(*) > 1)`)
	if len(res.Rows) != 1 || res.Rows[0][1] != "2" {
		t.Fatalf("group rows = %v", res.Rows)
	}
	res2 := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?w (COUNT(*) AS ?n) WHERE { ?p ex:worksAt ?w }
		GROUP BY ?w HAVING (COUNT(*) > 2)`)
	if len(res2.Rows) != 0 {
		t.Fatalf("having should filter out all groups: %v", res2.Rows)
	}
}

func TestBindAndExpressionProjection(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?double WHERE { ?p ex:age ?a BIND (?a * 2 AS ?double) } ORDER BY ?double`)
	if len(res.Rows) != 3 || res.Rows[0][0] != "50" {
		t.Fatalf("bind rows = %v", res.Rows)
	}
}

func TestValues(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?n WHERE { ?p ex:name ?n VALUES ?n { "Alice" "Carol" } }`)
	if len(res.Rows) != 2 {
		t.Fatalf("values rows = %v", res.Rows)
	}
}

func TestSubquery(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?n WHERE {
			?p ex:name ?n .
			{ SELECT ?p WHERE { ?p ex:worksAt ex:acme } }
		} ORDER BY ?n`)
	if len(res.Rows) != 2 || res.Rows[0][0] != "Alice" {
		t.Fatalf("subquery rows = %v", res.Rows)
	}
}

func TestPropertyPathInQuery(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?x WHERE { ex:alice ex:knows+ ?x }`)
	if len(res.Rows) != 2 {
		t.Fatalf("path rows = %v (want bob and carol)", res.Rows)
	}
	res2 := run(t, people(), `PREFIX ex: <http://ex/>
		ASK { ex:alice ex:knows/ex:knows ex:carol }`)
	if !res2.Bool {
		t.Error("alice knows/knows carol")
	}
}

func TestExistsFilter(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?n WHERE { ?p ex:name ?n FILTER EXISTS { ?p ex:knows ?q } }`)
	if len(res.Rows) != 2 {
		t.Fatalf("exists rows = %v", res.Rows)
	}
	res2 := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?n WHERE { ?p ex:name ?n FILTER NOT EXISTS { ?p ex:knows ?q } }`)
	if len(res2.Rows) != 1 || res2.Rows[0][0] != "Carol" {
		t.Fatalf("not exists rows = %v", res2.Rows)
	}
}

func TestBuiltins(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?n WHERE { ?p ex:name ?n FILTER regex(?n, "^[AB]") } ORDER BY ?n`)
	if len(res.Rows) != 2 {
		t.Fatalf("regex rows = %v", res.Rows)
	}
	res2 := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?n WHERE { ?p ex:name ?n FILTER (STRLEN(?n) = 5 && CONTAINS(LCASE(?n), "a")) }`)
	// Alice and Carol have length 5 and contain 'a' (case-folded).
	if len(res2.Rows) != 2 {
		t.Fatalf("builtin rows = %v", res2.Rows)
	}
}

func TestSelectStar(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/> SELECT * WHERE { ?p ex:age ?a }`)
	if len(res.Vars) != 2 {
		t.Fatalf("star vars = %v", res.Vars)
	}
}

func TestGraphAndService(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?g ?n WHERE { GRAPH ?g { ?p ex:name ?n } }`)
	if len(res.Rows) != 3 || res.Rows[0][0] != DefaultGraph {
		t.Fatalf("graph rows = %v", res.Rows)
	}
	res2 := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?n WHERE { SERVICE <http://remote/sparql> { ?p ex:name ?n } }`)
	if len(res2.Rows) != 3 {
		t.Fatalf("service rows = %v", res2.Rows)
	}
}

func TestConstruct(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		CONSTRUCT { ?a ex:coworker ?b }
		WHERE { ?a ex:worksAt ?w . ?b ex:worksAt ?w FILTER (?a != ?b) }`)
	if len(res.Rows) != 2 {
		t.Fatalf("constructed triples = %v, want alice-bob both ways", res.Rows)
	}
	for _, row := range res.Rows {
		if row[1] != "http://ex/coworker" {
			t.Errorf("predicate = %q", row[1])
		}
	}
	// Duplicate template instantiations deduplicate.
	res2 := run(t, people(), `PREFIX ex: <http://ex/>
		CONSTRUCT { ?w ex:isWorkplace "yes" } WHERE { ?p ex:worksAt ?w }`)
	if len(res2.Rows) != 1 {
		t.Fatalf("deduplicated construct = %v", res2.Rows)
	}
}

func TestDescribe(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/> DESCRIBE ex:alice`)
	// Every triple with alice as subject or object: 4 outgoing, 0 incoming.
	if len(res.Rows) != 4 {
		t.Fatalf("describe rows = %v", res.Rows)
	}
	// DESCRIBE with a WHERE clause describing bound resources.
	res2 := run(t, people(), `PREFIX ex: <http://ex/>
		DESCRIBE ?p WHERE { ?p ex:age "25" }`)
	found := false
	for _, row := range res2.Rows {
		if row[0] == "http://ex/bob" {
			found = true
		}
	}
	if !found {
		t.Errorf("describe ?p should cover bob: %v", res2.Rows)
	}
}

func TestEmptyResultAggregation(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT (COUNT(*) AS ?n) WHERE { ?p ex:nothing ?x }`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "0" {
		t.Fatalf("empty count = %v", res.Rows)
	}
}

func TestRepeatedVariableInTriple(t *testing.T) {
	b := peopleStore()
	b.Add("http://ex/self", "http://ex/knows", "http://ex/self")
	res := run(t, b.Freeze(), `PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:knows ?x }`)
	if len(res.Rows) != 1 {
		t.Fatalf("self-loop rows = %v", res.Rows)
	}
}

// TestPathObjectBoundLimitRegression pins the fix for the limit bug in
// object-bound path patterns: the old evaluator enumerated ALL path
// pairs capped at MaxRows BEFORE filtering on the bound object, so a
// match past the cap was silently dropped. The matching subjects here
// sit behind ten unrelated pair-producing chains; with MaxRows=5 the
// old code returned zero rows.
func TestPathObjectBoundLimitRegression(t *testing.T) {
	st := rdf.NewStore()
	// Ten noise chains whose pairs enumerate first.
	for i := 0; i < 10; i++ {
		st.Add("http://ex/x"+string(rune('a'+i)), "http://ex/p", "http://ex/y"+string(rune('a'+i)))
	}
	// The matches: w -p-> z -p-> target.
	st.Add("http://ex/w", "http://ex/p", "http://ex/z")
	st.Add("http://ex/z", "http://ex/p", "http://ex/target")
	sn := st.Freeze()
	q, err := sparql.Parse(`PREFIX ex: <http://ex/>
		SELECT ?s WHERE { ?s ex:p+ ex:target }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := QueryWithLimits(sn, q, Limits{MaxRows: 5})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, row := range res.Rows {
		got[row[0]] = true
	}
	if len(got) != 2 || !got["http://ex/w"] || !got["http://ex/z"] {
		t.Fatalf("object-bound path rows = %v, want w and z (limit must apply to surviving rows)", res.Rows)
	}
}

// TestPathPairsOverflowErrors pins the companion semantics for fully
// unbound paths: a result that genuinely exceeds MaxRows must fail with
// the row-limit error, not truncate silently at exactly MaxRows.
func TestPathPairsOverflowErrors(t *testing.T) {
	st := rdf.NewStore()
	for i := 0; i < 10; i++ {
		st.Add("http://ex/x"+string(rune('a'+i)), "http://ex/p", "http://ex/y"+string(rune('a'+i)))
	}
	sn := st.Freeze()
	q, err := sparql.Parse(`PREFIX ex: <http://ex/>
		SELECT ?s ?o WHERE { ?s ex:p+ ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QueryWithLimits(sn, q, Limits{MaxRows: 3}); err == nil {
		t.Fatal("10 pairs under MaxRows=3 must error, not truncate")
	}
	// Under the limit, all pairs come back.
	res, err := QueryWithLimits(sn, q, Limits{MaxRows: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("pair rows = %d, want 10", len(res.Rows))
	}
}

// TestPathSameVariableBothEnds: ?x path ?x must bind only loop nodes,
// consistently (the old pair enumeration bound the object end over the
// subject end, producing rows for non-loops).
func TestPathSameVariableBothEnds(t *testing.T) {
	st := rdf.NewStore()
	st.Add("http://ex/a", "http://ex/p", "http://ex/b")
	st.Add("http://ex/b", "http://ex/p", "http://ex/a")
	st.Add("http://ex/c", "http://ex/p", "http://ex/d") // no loop
	sn := st.Freeze()
	res := run(t, sn, `PREFIX ex: <http://ex/>
		SELECT ?x WHERE { ?x ex:p+ ?x }`)
	got := map[string]bool{}
	for _, row := range res.Rows {
		got[row[0]] = true
	}
	if len(got) != 2 || !got["http://ex/a"] || !got["http://ex/b"] {
		t.Fatalf("loop rows = %v, want exactly a and b", res.Rows)
	}
}

// TestPathObjectBoundReverse exercises the reverse evaluation path on
// the social store, including through a pre-bound object variable.
func TestPathObjectBoundReverse(t *testing.T) {
	res := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?s WHERE { ?s ex:knows+ ex:carol }`)
	got := map[string]bool{}
	for _, row := range res.Rows {
		got[row[0]] = true
	}
	if len(got) != 2 || !got["http://ex/alice"] || !got["http://ex/bob"] {
		t.Fatalf("reverse path rows = %v, want alice and bob", res.Rows)
	}
	// Object bound by an earlier pattern rather than a constant.
	res2 := run(t, people(), `PREFIX ex: <http://ex/>
		SELECT ?s ?o WHERE { ?o ex:name "Carol" . ?s ex:knows+ ?o }`)
	if len(res2.Rows) != 2 {
		t.Fatalf("pre-bound object path rows = %v", res2.Rows)
	}
}

// TestSharedPathCacheAcrossQueries: Limits.Paths shares one compiled-path
// cache across queries on a snapshot, so a recurring path shape compiles
// once (the plan.Cache pattern at the SPARQL level).
func TestSharedPathCacheAcrossQueries(t *testing.T) {
	sn := people()
	cache := pathcomp.NewCache(sn)
	q, err := sparql.Parse(`PREFIX ex: <http://ex/>
		SELECT ?x WHERE { ex:alice ex:knows+ ?x }`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := QueryWithLimits(sn, q, Limits{Paths: cache})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("run %d: rows = %v", i, res.Rows)
		}
	}
	if cache.Misses() != 1 || cache.Hits() != 2 {
		t.Errorf("shared cache misses=%d hits=%d, want 1/2", cache.Misses(), cache.Hits())
	}
}
