package eval

import (
	"context"
	"fmt"
	"time"

	"sparqlog/internal/exec"
	"sparqlog/internal/qcache"
	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// cacheKey derives the result-cache key for one evaluation: the
// canonical query text (variable-renaming- and prefix-invariant,
// solution modifiers included) plus the row budget. MaxRows is part of
// the key because it changes observable behaviour at the margin — a
// result that fit a large budget must not answer a request whose
// smaller budget would have overflowed.
func cacheKey(q *sparql.Query, lim Limits) string {
	return fmt.Sprintf("mr%d|%s", lim.MaxRows, sparql.QueryString(q))
}

// queryCached wraps queryDirect with the result cache: lookup, then
// single-flight collapse of concurrent identical executions, then
// cost-aware fill. Only clean results are shared or stored — errors
// (deadline truncations and row-limit overflows included) and
// SERVICE-recovered answers always come from a real execution and are
// never cached.
func queryCached(ctx context.Context, sn *rdf.Snapshot, q *sparql.Query, lim Limits) (*Result, error) {
	c := lim.Results
	key := cacheKey(q, lim)
	if r, ok := c.Get(sn, key); ok {
		return &Result{Vars: r.Vars, Rows: r.Rows, Bool: r.Bool, Cached: true, CacheKey: key}, nil
	}
	fl, leader := c.Join(key)
	if !leader {
		r, ok, err := fl.Wait(ctx, c)
		if err != nil {
			// Our own deadline struck while waiting on the leader; the
			// executor convention for an expired context.
			return nil, exec.ErrTimeout
		}
		if ok {
			return &Result{Vars: r.Vars, Rows: r.Rows, Bool: r.Bool, Collapsed: true}, nil
		}
		// The leader's execution failed or produced an unshareable
		// result; our deadline and SERVICE luck may differ, so run it
		// ourselves (without re-joining: a failing query must not
		// serialize all its issuers forever).
		return queryDirect(ctx, sn, q, lim)
	}
	start := time.Now()
	res, err := queryDirect(ctx, sn, q, lim)
	cost := time.Since(start)
	shareable := err == nil && res.Recovered == 0
	var cr qcache.Result
	if shareable {
		cr = qcache.Result{Vars: res.Vars, Rows: res.Rows, Bool: res.Bool}
	}
	c.Complete(key, fl, cr, shareable)
	if shareable && c.Put(sn, key, cr, cost) {
		res.CacheKey = key
	}
	return res, err
}
