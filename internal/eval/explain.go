package eval

import (
	"context"
	"fmt"
	"strings"

	"sparqlog/internal/engine"
	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// Explain plans and executes the explainable parts of a parsed SPARQL
// query and renders the transcript cmd/sparqlquery's -explain flag
// prints. Two sections can appear:
//
//   - The conjunctive core — every triple pattern of the WHERE clause,
//     joined — planned by the cost-based planner and executed
//     instrumented on the columnar batch pipeline, showing the chosen
//     atom order with estimated vs. actual intermediate row counts and
//     per-operator batch counts.
//   - One section per property-path pattern, showing the compiled
//     automaton (states, transitions, fast-path selection), the search
//     direction chosen from the endpoint shape and statistics, and the
//     estimated vs. actual reached counts of an execution.
//
// Operators outside both (UNION, OPTIONAL, FILTER, ...) do not enter
// either view; when present they are listed in a trailer so the
// transcript is honest about what was and wasn't modeled.
func Explain(sn *rdf.Snapshot, q *sparql.Query) (string, error) {
	ev := &evaluator{st: sn, prefixes: prefixMap(q)}
	patterns := q.Triples()
	pathPatterns := q.PathPatterns()
	if len(patterns) == 0 && len(pathPatterns) == 0 {
		return "", fmt.Errorf("eval: query has no triple or path patterns to explain")
	}
	var text string
	if len(patterns) > 0 {
		atoms, varNames := ev.compileBGP(patterns)
		cq := engine.CQ{Atoms: atoms, NumVars: len(varNames)}

		ge := &engine.GraphEngine{}
		explained, res := ge.Explain(context.Background(), sn, cq)
		text += explained.Format(sn.TermOf, func(i int) string {
			if i < len(varNames) {
				return "?" + varNames[i]
			}
			return fmt.Sprintf("?v%d", i)
		})
		text += fmt.Sprintf("conjunctive core: %d atoms, %d result rows in %s\n",
			len(atoms), res.Count, res.Duration)
	}
	for _, pp := range pathPatterns {
		text += ev.explainPath(pp)
	}
	text += explainParallel(sn, q)
	text += explainCacheLine(q)
	if extras := nonConjunctiveOperators(q); len(extras) > 0 {
		text += fmt.Sprintf("note: query also contains %s — only the conjunctive core and property\n"+
			"      paths above were planned and executed; full evaluation may return different results\n",
			strings.Join(extras, ", "))
	}
	if hasSilentService(q) {
		text += "note: SERVICE SILENT present — evaluation falls back to the unjoined input when\n" +
			"      the service body fails; Result.Recovered counts such silent recoveries\n"
	}
	return text, nil
}

// explainParallel executes the query on the columnar pipeline with the
// default limits and renders the morsel exchange section: per-worker
// morsel/batch/row counts when the compiler placed one, a one-line
// reason when it stayed serial. Failures (row-budget overflow, …) just
// omit the section — the earlier sections already told the plan story.
func explainParallel(sn *rdf.Snapshot, q *sparql.Query) string {
	res, err := QueryWithLimits(sn, q, Limits{})
	if err != nil {
		return ""
	}
	var b strings.Builder
	if res.Parallel == nil {
		b.WriteString("parallel exchange: not placed (serial pipeline: low cardinality estimate,\n" +
			"      a single-pattern group, or one core)\n")
	} else {
		fmt.Fprintf(&b, "parallel exchange: %d workers, morsel-driven\n", res.Parallel.Workers)
		var morsels, batches, rows int64
		for i, ws := range res.Parallel.Stats {
			fmt.Fprintf(&b, "  worker %d: %d morsels, %d batches, %d rows\n", i, ws.Morsels, ws.Batches, ws.Rows)
			morsels += ws.Morsels
			batches += ws.Batches
			rows += ws.Rows
		}
		fmt.Fprintf(&b, "  merged (serial order): %d morsels, %d batches, %d rows\n", morsels, batches, rows)
	}
	b.WriteString(explainModifiers(res.Modifiers))
	return b.String()
}

// explainModifiers renders the columnar GroupBy/TopK section of the
// transcript: how many input rows were aggregated into how many groups
// (and how many worker partial tables the exchange merged), and which
// ORDER BY strategy ran (bounded heap vs full stable sort).
func explainModifiers(mi *ModifierInfo) string {
	if mi == nil {
		return ""
	}
	var b strings.Builder
	if mi.GroupRows > 0 || mi.Groups > 0 {
		fmt.Fprintf(&b, "streaming aggregation: %d rows -> %d groups", mi.GroupRows, mi.Groups)
		if mi.PartialTables > 0 {
			fmt.Fprintf(&b, " (%d worker partial tables merged in dispatch order)", mi.PartialTables)
		} else {
			b.WriteString(" (serial)")
		}
		b.WriteByte('\n')
	}
	if mi.TopKMode != "" {
		fmt.Fprintf(&b, "top-k order by: mode=%s, scanned %d rows, kept %d\n",
			mi.TopKMode, mi.TopKScanned, mi.TopKKept)
	}
	return b.String()
}

// explainCacheLine renders the result-cache view of the query: the
// canonical key (sparql.QueryString) a serving layer with Limits.
// Results set would cache this answer under. Alpha-equivalent repeats
// share the key, so the line shows exactly which workload class the
// query's cache entry serves.
func explainCacheLine(q *sparql.Query) string {
	key := sparql.QueryString(q)
	if len(key) > 96 {
		key = key[:93] + "..."
	}
	return fmt.Sprintf("result cache: canonical key %q\n"+
		"      (snapshot-keyed; stored after execution when measured cost reaches the\n"+
		"      admission threshold; errors, truncations and recovered results never cached)\n", key)
}

// hasSilentService reports whether any SERVICE SILENT clause appears in
// the WHERE tree.
func hasSilentService(q *sparql.Query) bool {
	found := false
	sparql.Walk(q.Where, func(p sparql.Pattern) bool {
		if sg, ok := p.(*sparql.ServiceGraph); ok && sg.Silent {
			found = true
		}
		return !found
	})
	return found
}

// explainPath compiles one path pattern and executes it according to
// its endpoint shape, reporting the automaton, the chosen direction and
// estimated vs. actual reached counts.
func (ev *evaluator) explainPath(pp *sparql.PathPattern) string {
	render := func(t sparql.Term) string {
		if txt, ok := ev.termText(t); ok {
			return "<" + txt + ">"
		}
		name, _ := varName(t)
		return "?" + name
	}
	var b strings.Builder
	fmt.Fprintf(&b, "property path: %s %s %s\n",
		render(pp.S), sparql.PathString(pp.Path), render(pp.O))
	cp := ev.pathCache().Compile(ev.st, pp.Path, ev.pathResolver())
	for _, line := range strings.Split(strings.TrimRight(cp.Describe(ev.st.TermOf), "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}

	lookupConst := func(t sparql.Term) (rdf.ID, bool, bool) {
		txt, isConst := ev.termText(t)
		if !isConst {
			return 0, false, false
		}
		id, known := ev.st.Lookup(txt)
		return id, true, known
	}
	sid, sConst, sKnown := lookupConst(pp.S)
	oid, oConst, oKnown := lookupConst(pp.O)
	if (sConst && !sKnown) || (oConst && !oKnown) {
		b.WriteString("  endpoint constant not in dictionary — no matches\n")
		return b.String()
	}
	switch {
	case sConst && oConst:
		dir := cp.Direction(sid, oid)
		fmt.Fprintf(&b, "  direction: %s (both ends bound; searching from the rarer end)\n", dir)
		fmt.Fprintf(&b, "  est reach %.0f nodes; holds: %v\n", cp.EstimateReach(dir == "reverse"), cp.Holds(sid, oid))
	case sConst:
		n := len(cp.From(sid))
		fmt.Fprintf(&b, "  direction: forward (subject bound)\n")
		fmt.Fprintf(&b, "  est reach %.0f nodes, actual %d\n", cp.EstimateReach(false), n)
	case oConst:
		n := len(cp.To(oid))
		fmt.Fprintf(&b, "  direction: reverse (object bound)\n")
		fmt.Fprintf(&b, "  est reach %.0f nodes, actual %d\n", cp.EstimateReach(true), n)
	default:
		// Cap the enumeration: explain only reports the count, so a
		// huge closure must not materialize unbounded pairs here.
		const explainPairCap = 100_000
		pairs := cp.Pairs(explainPairCap)
		suffix := ""
		if len(pairs) == explainPairCap {
			suffix = "+ (capped)"
		}
		fmt.Fprintf(&b, "  direction: multi-source sweep (both ends free)\n")
		fmt.Fprintf(&b, "  est reach %.0f nodes per source, actual %d pairs%s\n",
			cp.EstimateReach(false), len(pairs), suffix)
	}
	return b.String()
}

// nonConjunctiveOperators names the WHERE-clause operators that the
// explain transcript does not model, in first-appearance order.
// Property paths are absent: they get their own explain section.
func nonConjunctiveOperators(q *sparql.Query) []string {
	var names []string
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sparql.Walk(q.Where, func(p sparql.Pattern) bool {
		switch p.(type) {
		case *sparql.Union:
			add("UNION")
		case *sparql.Optional:
			add("OPTIONAL")
		case *sparql.MinusGraph:
			add("MINUS")
		case *sparql.Filter:
			add("FILTER")
		case *sparql.Bind:
			add("BIND")
		case *sparql.InlineData:
			add("VALUES")
		case *sparql.SubSelect:
			add("subquery")
		case *sparql.GraphGraph:
			add("GRAPH")
		case *sparql.ServiceGraph:
			add("SERVICE")
		}
		return true
	})
	return names
}
