package eval

import (
	"context"
	"fmt"
	"strings"

	"sparqlog/internal/engine"
	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// Explain plans and executes the conjunctive core of a parsed SPARQL
// query — every triple pattern of its WHERE clause, joined — and renders
// the chosen atom order with estimated vs. actual intermediate row
// counts (the EXPLAIN ANALYZE view the -explain flag of cmd/sparqlquery
// prints). Operators outside the conjunctive core (UNION, OPTIONAL,
// FILTER, property paths, ...) do not enter the plan; when present they
// are listed in the trailer so the transcript is honest that the
// explained query is the conjunction of all triple patterns, not the
// full algebra.
func Explain(sn *rdf.Snapshot, q *sparql.Query) (string, error) {
	ev := &evaluator{st: sn, prefixes: prefixMap(q)}
	patterns := q.Triples()
	if len(patterns) == 0 {
		return "", fmt.Errorf("eval: query has no triple patterns to explain")
	}
	atoms, varNames := ev.compileBGP(patterns)
	cq := engine.CQ{Atoms: atoms, NumVars: len(varNames)}

	ge := &engine.GraphEngine{}
	explained, res := ge.Explain(context.Background(), sn, cq)
	text := explained.Format(sn.TermOf, func(i int) string {
		if i < len(varNames) {
			return "?" + varNames[i]
		}
		return fmt.Sprintf("?v%d", i)
	})
	text += fmt.Sprintf("conjunctive core: %d atoms, %d result rows in %s\n",
		len(atoms), res.Count, res.Duration)
	if extras := nonConjunctiveOperators(q); len(extras) > 0 {
		text += fmt.Sprintf("note: query also contains %s — only the conjunctive core above was planned\n"+
			"      and executed; full evaluation may return different results\n",
			strings.Join(extras, ", "))
	}
	return text, nil
}

// nonConjunctiveOperators names the WHERE-clause operators that the
// conjunctive-core explain does not model, in first-appearance order.
func nonConjunctiveOperators(q *sparql.Query) []string {
	var names []string
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sparql.Walk(q.Where, func(p sparql.Pattern) bool {
		switch p.(type) {
		case *sparql.Union:
			add("UNION")
		case *sparql.Optional:
			add("OPTIONAL")
		case *sparql.MinusGraph:
			add("MINUS")
		case *sparql.Filter:
			add("FILTER")
		case *sparql.Bind:
			add("BIND")
		case *sparql.InlineData:
			add("VALUES")
		case *sparql.SubSelect:
			add("subquery")
		case *sparql.PathPattern:
			add("property path")
		case *sparql.GraphGraph:
			add("GRAPH")
		case *sparql.ServiceGraph:
			add("SERVICE")
		}
		return true
	})
	return names
}
