package eval

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// This file is the aggregation/ORDER BY differential: the columnar
// GroupBy/TopK operators promise byte-identical output to the legacy
// finishAggregate/applyOrder finishers — not just the same multiset
// but the same row sequence, because GROUP BY emission order
// (first-encounter) and ORDER BY are part of the observable contract.
// Every query here runs once on the columnar path and once with
// Limits.Legacy, and rows are compared position by position.

// diffOrdered requires identical outcomes — error class, projection,
// and the exact row sequence — between the columnar and legacy paths.
func diffOrdered(t *testing.T, sn *rdf.Snapshot, src string) {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	col, cerr := QueryWithLimits(sn, q, Limits{})
	leg, lerr := QueryWithLimits(sn, q, Limits{Legacy: true})
	if (cerr == nil) != (lerr == nil) {
		t.Fatalf("error divergence on %q: columnar=%v legacy=%v", src, cerr, lerr)
	}
	if cerr != nil {
		return
	}
	if strings.Join(col.Vars, ",") != strings.Join(leg.Vars, ",") {
		t.Fatalf("vars diverge on %q: %v vs %v", src, col.Vars, leg.Vars)
	}
	if len(col.Rows) != len(leg.Rows) {
		t.Fatalf("row counts diverge on %q: columnar=%d legacy=%d", src, len(col.Rows), len(leg.Rows))
	}
	for i := range col.Rows {
		a := strings.Join(col.Rows[i], "\x1f")
		b := strings.Join(leg.Rows[i], "\x1f")
		if a != b {
			t.Fatalf("rows diverge on %q at %d:\ncolumnar: %q\nlegacy:   %q", src, i, a, b)
		}
	}
}

// aggStore builds a graph rich in literal pathologies: numeric ages
// (including negatives and decimals), values that are numeric,
// non-numeric, empty, "NaN" (which strconv parses!), and "0" (numeric
// but falsy), plus a knows-graph for multi-hop grouping.
func aggStore() *rdf.Snapshot {
	st := rdf.NewStore()
	vals := []string{"10", "abc", "", "0", "NaN", "2.5", "-3", "xyz", "10"}
	for i := 0; i < 12; i++ {
		n := fmt.Sprintf("urn:n%d", i)
		st.Add(n, "urn:knows", fmt.Sprintf("urn:n%d", (i+1)%12))
		if i%2 == 0 {
			st.Add(n, "urn:knows", fmt.Sprintf("urn:n%d", (i+5)%12))
		}
		st.Add(n, "urn:age", fmt.Sprintf("%d", 18+7*(i%4)))
		st.Add(n, "urn:val", vals[i%len(vals)])
		if i%3 != 0 {
			st.Add(n, "urn:name", fmt.Sprintf("p%d", i%3))
		}
		st.Add(n, "urn:group", fmt.Sprintf("urn:g%d", i%3))
	}
	// One subject whose values are exclusively unparseable, so AVG/SUM
	// over its group behave differently from mixed groups.
	st.Add("urn:odd", "urn:val", "nope")
	st.Add("urn:odd", "urn:val", "also-nope")
	st.Add("urn:odd", "urn:group", "urn:g9")
	return st.Freeze()
}

// TestAggregateDifferentialOperators is the fixed corpus from the
// issue: GROUP BY arity 0-3, HAVING, AVG over mixed/unparseable
// literals, GROUP_CONCAT separators, multi-key ORDER BY in both
// directions, and OFFSET interaction.
func TestAggregateDifferentialOperators(t *testing.T) {
	sn := aggStore()
	for _, src := range []string{
		// Arity 0: whole-input group, including the synthetic group on
		// empty input.
		`SELECT (COUNT(*) AS ?c) WHERE { ?x <urn:knows> ?y }`,
		`SELECT (COUNT(?y) AS ?c) (SUM(?a) AS ?s) WHERE { ?x <urn:knows> ?y . ?x <urn:age> ?a }`,
		`SELECT (COUNT(*) AS ?c) (SUM(?a) AS ?s) (AVG(?a) AS ?m) WHERE { ?x <urn:nothere> ?a }`,
		`SELECT (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) WHERE { ?x <urn:age> ?a }`,
		// Arity 1-3, keys projected and not.
		`SELECT ?g (COUNT(*) AS ?c) WHERE { ?x <urn:group> ?g } GROUP BY ?g`,
		`SELECT (COUNT(*) AS ?c) WHERE { ?x <urn:group> ?g } GROUP BY ?g`,
		`SELECT ?g ?a (COUNT(?x) AS ?c) WHERE { ?x <urn:group> ?g . ?x <urn:age> ?a } GROUP BY ?g ?a`,
		`SELECT ?g ?a ?v (COUNT(*) AS ?c) WHERE { ?x <urn:group> ?g . ?x <urn:age> ?a . ?x <urn:val> ?v } GROUP BY ?g ?a ?v`,
		// Empty input with GROUP BY emits no groups at all.
		`SELECT ?g (COUNT(*) AS ?c) WHERE { ?x <urn:nothere> ?g } GROUP BY ?g`,
		// AVG/SUM/MIN/MAX over mixed and fully unparseable literal sets.
		`SELECT ?g (AVG(?v) AS ?m) WHERE { ?x <urn:group> ?g . ?x <urn:val> ?v } GROUP BY ?g`,
		`SELECT ?g (SUM(?v) AS ?s) (MIN(?v) AS ?lo) (MAX(?v) AS ?hi) WHERE { ?x <urn:group> ?g . ?x <urn:val> ?v } GROUP BY ?g`,
		`SELECT (AVG(?v) AS ?m) WHERE { <urn:odd> <urn:val> ?v }`,
		// Unbound aggregate args via OPTIONAL.
		`SELECT ?x (COUNT(?n) AS ?c) (SAMPLE(?n) AS ?one) WHERE { ?x <urn:age> ?a OPTIONAL { ?x <urn:name> ?n } } GROUP BY ?x`,
		`SELECT ?x (GROUP_CONCAT(?n) AS ?all) WHERE { ?x <urn:age> ?a OPTIONAL { ?x <urn:name> ?n } } GROUP BY ?x`,
		// DISTINCT aggregates and GROUP_CONCAT separators.
		`SELECT ?g (COUNT(DISTINCT ?v) AS ?c) WHERE { ?x <urn:group> ?g . ?x <urn:val> ?v } GROUP BY ?g`,
		`SELECT ?g (GROUP_CONCAT(?v) AS ?all) WHERE { ?x <urn:group> ?g . ?x <urn:val> ?v } GROUP BY ?g`,
		`SELECT ?g (GROUP_CONCAT(?v; SEPARATOR="|") AS ?all) WHERE { ?x <urn:group> ?g . ?x <urn:val> ?v } GROUP BY ?g`,
		`SELECT ?g (GROUP_CONCAT(DISTINCT ?v; SEPARATOR=", ") AS ?all) WHERE { ?x <urn:group> ?g . ?x <urn:val> ?v } GROUP BY ?g`,
		`SELECT (GROUP_CONCAT(?v; SEPARATOR="") AS ?all) WHERE { ?x <urn:val> ?v }`,
		// SAMPLE and plain SAMPLE of the key itself.
		`SELECT ?g (SAMPLE(?x) AS ?who) WHERE { ?x <urn:group> ?g } GROUP BY ?g`,
		// HAVING over aggregate expressions, group keys, and a select
		// alias (unbound inside HAVING on both paths).
		`SELECT ?g (COUNT(*) AS ?c) WHERE { ?x <urn:group> ?g } GROUP BY ?g HAVING (COUNT(*) > 3)`,
		`SELECT ?g (SUM(?a) AS ?s) WHERE { ?x <urn:group> ?g . ?x <urn:age> ?a } GROUP BY ?g HAVING (SUM(?a) >= 80 && COUNT(*) > 1)`,
		`SELECT ?g (COUNT(*) AS ?c) WHERE { ?x <urn:group> ?g } GROUP BY ?g HAVING (?g != <urn:g1>)`,
		`SELECT ?g (COUNT(*) AS ?c) WHERE { ?x <urn:group> ?g } GROUP BY ?g HAVING (?c > 3)`,
		`SELECT ?g (AVG(?v) AS ?m) WHERE { ?x <urn:group> ?g . ?x <urn:val> ?v } GROUP BY ?g HAVING (AVG(?v) > 1)`,
		`SELECT ?g (GROUP_CONCAT(?v) AS ?all) WHERE { ?x <urn:group> ?g . ?x <urn:val> ?v } GROUP BY ?g HAVING (GROUP_CONCAT(?v) != "0")`,
		// ORDER BY over aggregate aliases and group keys, both
		// directions, multi-key, and LIMIT/OFFSET interaction.
		`SELECT ?g (COUNT(*) AS ?c) WHERE { ?x <urn:group> ?g } GROUP BY ?g ORDER BY ?c`,
		`SELECT ?g (COUNT(*) AS ?c) WHERE { ?x <urn:group> ?g } GROUP BY ?g ORDER BY DESC(?c) ?g`,
		`SELECT ?g ?a (COUNT(*) AS ?c) WHERE { ?x <urn:group> ?g . ?x <urn:age> ?a } GROUP BY ?g ?a ORDER BY DESC(?a) ?g`,
		`SELECT ?g (SUM(?a) AS ?s) WHERE { ?x <urn:group> ?g . ?x <urn:age> ?a } GROUP BY ?g ORDER BY DESC(SUM(?a))`,
		`SELECT ?g (COUNT(*) AS ?c) WHERE { ?x <urn:group> ?g } GROUP BY ?g ORDER BY DESC(?c) LIMIT 2`,
		`SELECT ?g ?a (COUNT(*) AS ?c) WHERE { ?x <urn:group> ?g . ?x <urn:age> ?a } GROUP BY ?g ?a ORDER BY ?a ?g OFFSET 3 LIMIT 4`,
		`SELECT ?g (COUNT(*) AS ?c) WHERE { ?x <urn:group> ?g } GROUP BY ?g ORDER BY ?g OFFSET 1`,
		// ORDER BY a key mixing numeric and non-numeric lexical forms
		// (forces the comparator's pairwise mode switching).
		`SELECT ?v (COUNT(*) AS ?c) WHERE { ?x <urn:val> ?v } GROUP BY ?v ORDER BY ?v`,
		`SELECT ?v (COUNT(*) AS ?c) WHERE { ?x <urn:val> ?v } GROUP BY ?v ORDER BY DESC(?v) LIMIT 3`,
		// Aggregates inside projection expressions.
		`SELECT ?g (COUNT(*) * 2 AS ?cc) WHERE { ?x <urn:group> ?g } GROUP BY ?g`,
		`SELECT ?g (SUM(?a) / COUNT(?a) AS ?m) WHERE { ?x <urn:group> ?g . ?x <urn:age> ?a } GROUP BY ?g ORDER BY ?m`,
	} {
		diffOrdered(t, sn, src)
	}
}

// TestOrderByDifferentialOperators pins the TopK operator on
// non-aggregate queries: heap-eligible homogeneous keys, the
// stable-sort fallback on mixed/error keys, NaN, DISTINCT and
// SELECT * interaction, and slice arithmetic.
func TestOrderByDifferentialOperators(t *testing.T) {
	sn := aggStore()
	for _, src := range []string{
		`SELECT ?x ?a WHERE { ?x <urn:age> ?a } ORDER BY ?a`,
		`SELECT ?x ?a WHERE { ?x <urn:age> ?a } ORDER BY DESC(?a) ?x`,
		`SELECT ?x ?a WHERE { ?x <urn:age> ?a } ORDER BY ?a LIMIT 5`,
		`SELECT ?x ?a WHERE { ?x <urn:age> ?a } ORDER BY DESC(?a) OFFSET 2 LIMIT 5`,
		`SELECT ?x ?a WHERE { ?x <urn:age> ?a } ORDER BY ?a LIMIT 0`,
		`SELECT ?x ?a WHERE { ?x <urn:age> ?a } ORDER BY ?a OFFSET 50 LIMIT 5`,
		// Mixed numeric/string sort keys: stable-sort fallback, with and
		// without LIMIT.
		`SELECT ?x ?v WHERE { ?x <urn:val> ?v } ORDER BY ?v`,
		`SELECT ?x ?v WHERE { ?x <urn:val> ?v } ORDER BY DESC(?v) LIMIT 4`,
		// "NaN" parses as a float; the heap must refuse it.
		`SELECT ?x ?v WHERE { ?x <urn:val> ?v FILTER (?v = "NaN" || ?v = "10" || ?v = "2.5") } ORDER BY ?v LIMIT 2`,
		// Error keys from OPTIONAL unbounds (pairwise skip semantics).
		`SELECT ?x ?n WHERE { ?x <urn:age> ?a OPTIONAL { ?x <urn:name> ?n } } ORDER BY ?n ?x`,
		`SELECT ?x WHERE { ?x <urn:age> ?a } ORDER BY ?missing ?x LIMIT 3`,
		// Expression keys.
		`SELECT ?x ?a WHERE { ?x <urn:age> ?a } ORDER BY (0 - ?a) STR(?x)`,
		// DISTINCT and SELECT * around the sort.
		`SELECT DISTINCT ?a WHERE { ?x <urn:age> ?a } ORDER BY DESC(?a) LIMIT 3`,
		`SELECT * WHERE { ?x <urn:knows> ?y } ORDER BY ?y ?x LIMIT 6`,
		// ORDER BY over a projection-expression alias.
		`SELECT ?x (?a * 2 AS ?b) WHERE { ?x <urn:age> ?a } ORDER BY ?b LIMIT 4`,
		`SELECT ?x (STR(?a) AS ?b) WHERE { ?x <urn:age> ?a } ORDER BY DESC(?b)`,
	} {
		diffOrdered(t, sn, src)
	}
}

// randomAggQuery generates a GROUP BY / aggregate / HAVING / ORDER BY
// query over the aggStore vocabulary. Arity, aggregate mix, ordering
// keys, and slicing are all randomized.
func randomAggQuery(rng *rand.Rand) string {
	patterns := []string{
		`?x <urn:group> ?g`,
		`?x <urn:age> ?a`,
		`?x <urn:val> ?v`,
		`?x <urn:knows> ?y`,
	}
	where := []string{patterns[0], patterns[1]}
	if rng.Intn(2) == 0 {
		where = append(where, patterns[2])
	}
	if rng.Intn(3) == 0 {
		where = append(where, patterns[3])
	}
	if rng.Intn(3) == 0 {
		where = append(where, `OPTIONAL { ?x <urn:name> ?n }`)
	}

	keys := []string{"?g", "?a", "?v"}
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	arity := rng.Intn(4) // 0-3
	keys = keys[:arity]
	// Drop keys whose pattern wasn't generated.
	var gb []string
	for _, k := range keys {
		if k != "?v" || len(where) > 2 && where[2] == patterns[2] {
			gb = append(gb, k)
		}
	}

	aggs := []string{
		`(COUNT(*) AS ?c)`,
		`(COUNT(?a) AS ?c)`,
		`(COUNT(DISTINCT ?v) AS ?c)`,
		`(SUM(?a) AS ?s)`,
		`(AVG(?v) AS ?m)`,
		`(MIN(?v) AS ?lo)`,
		`(MAX(?a) AS ?hi)`,
		`(SAMPLE(?x) AS ?one)`,
		`(GROUP_CONCAT(?v) AS ?cat)`,
		`(GROUP_CONCAT(DISTINCT ?v; SEPARATOR="|") AS ?cat)`,
	}
	var sel []string
	for _, k := range gb {
		if rng.Intn(3) > 0 {
			sel = append(sel, k)
		}
	}
	seen := map[string]bool{}
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		a := aggs[rng.Intn(len(aggs))]
		alias := a[strings.LastIndex(a, "?"):]
		alias = alias[:len(alias)-1]
		if seen[alias] {
			continue
		}
		seen[alias] = true
		sel = append(sel, a)
	}
	if len(sel) == 0 {
		sel = append(sel, `(COUNT(*) AS ?c)`)
		seen["?c"] = true
	}

	q := "SELECT " + strings.Join(sel, " ") + " WHERE { " + strings.Join(where, " . ") + " }"
	if len(gb) > 0 {
		q += " GROUP BY " + strings.Join(gb, " ")
	}
	if rng.Intn(3) == 0 {
		havings := []string{
			`HAVING (COUNT(*) > 1)`,
			`HAVING (SUM(?a) >= 40)`,
			`HAVING (COUNT(*) > 1 && COUNT(*) < 9)`,
			`HAVING (MIN(?v) != "0")`,
		}
		q += " " + havings[rng.Intn(len(havings))]
	}
	if rng.Intn(2) == 0 {
		var oks []string
		cands := append([]string{}, gb...)
		for a := range seen {
			cands = append(cands, a)
		}
		// Map iteration order is random, which is fine for a fuzzer, but
		// keep the key list deterministic per trial for reproducibility.
		cands = cands[:1+rng.Intn(len(cands))]
		for _, cnd := range cands {
			if rng.Intn(2) == 0 {
				oks = append(oks, "DESC("+cnd+")")
			} else {
				oks = append(oks, cnd)
			}
		}
		q += " ORDER BY " + strings.Join(oks, " ")
	}
	if rng.Intn(3) == 0 {
		q += fmt.Sprintf(" OFFSET %d", rng.Intn(4))
	}
	if rng.Intn(2) == 0 {
		q += fmt.Sprintf(" LIMIT %d", rng.Intn(6))
	}
	return q
}

// TestAggregateDifferentialRandom runs randomized aggregate queries on
// randomized stores through both paths.
func TestAggregateDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(911))
	vals := []string{"1", "2", "10", "abc", "", "0", "NaN", "-4", "3.5"}
	for trial := 0; trial < 150; trial++ {
		st := rdf.NewStore()
		nNodes := 3 + rng.Intn(8)
		for i := 0; i < 4+rng.Intn(30); i++ {
			n := fmt.Sprintf("urn:n%d", rng.Intn(nNodes))
			switch rng.Intn(5) {
			case 0:
				st.Add(n, "urn:knows", fmt.Sprintf("urn:n%d", rng.Intn(nNodes)))
			case 1:
				st.Add(n, "urn:age", fmt.Sprintf("%d", rng.Intn(40)))
			case 2:
				st.Add(n, "urn:val", vals[rng.Intn(len(vals))])
			case 3:
				st.Add(n, "urn:group", fmt.Sprintf("urn:g%d", rng.Intn(3)))
			default:
				st.Add(n, "urn:name", fmt.Sprintf("p%d", rng.Intn(4)))
			}
		}
		sn := st.Freeze()
		src := randomAggQuery(rng)
		diffOrdered(t, sn, src)
	}
}

// TestAggregateParallelDifferential forces the multi-worker exchange
// under the aggregation corpus: worker-local partial tables merged in
// dispatch order must reproduce the serial first-encounter group order
// and SAMPLE choices exactly.
func TestAggregateParallelDifferential(t *testing.T) {
	forceParallel(t)
	sn := aggStore()
	for _, src := range []string{
		`SELECT (COUNT(*) AS ?c) WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z }`,
		`SELECT ?g (COUNT(*) AS ?c) WHERE { ?x <urn:group> ?g . ?x <urn:knows> ?y } GROUP BY ?g`,
		`SELECT ?g (SUM(?a) AS ?s) (SAMPLE(?x) AS ?one) WHERE { ?x <urn:group> ?g . ?x <urn:age> ?a . ?x <urn:knows> ?y } GROUP BY ?g`,
		`SELECT ?y (COUNT(DISTINCT ?x) AS ?c) WHERE { ?x <urn:knows> ?y . ?x <urn:age> ?a } GROUP BY ?y ORDER BY DESC(?c) ?y`,
		`SELECT ?g (GROUP_CONCAT(?v; SEPARATOR="|") AS ?all) WHERE { ?x <urn:group> ?g . ?x <urn:val> ?v . ?x <urn:knows> ?y } GROUP BY ?g`,
		`SELECT ?g (AVG(?v) AS ?m) WHERE { ?x <urn:group> ?g . ?x <urn:val> ?v . ?x <urn:knows> ?y } GROUP BY ?g HAVING (COUNT(*) > 1)`,
		`SELECT ?y ?z WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z } ORDER BY ?y DESC(?z) LIMIT 5`,
		`SELECT ?x ?a WHERE { ?x <urn:age> ?a . ?x <urn:knows> ?y } ORDER BY DESC(?a) ?x OFFSET 2 LIMIT 6`,
	} {
		diffParallelSerial(t, sn, src, Limits{})
	}
	// Randomized half on bigger stores so morsels actually split.
	rng := rand.New(rand.NewSource(417))
	for trial := 0; trial < 60; trial++ {
		st := rdf.NewStore()
		nNodes := 6 + rng.Intn(10)
		for i := 0; i < 30+rng.Intn(60); i++ {
			n := fmt.Sprintf("urn:n%d", rng.Intn(nNodes))
			switch rng.Intn(4) {
			case 0:
				st.Add(n, "urn:knows", fmt.Sprintf("urn:n%d", rng.Intn(nNodes)))
			case 1:
				st.Add(n, "urn:age", fmt.Sprintf("%d", rng.Intn(40)))
			case 2:
				st.Add(n, "urn:val", fmt.Sprintf("%d", rng.Intn(5)))
			default:
				st.Add(n, "urn:group", fmt.Sprintf("urn:g%d", rng.Intn(3)))
			}
		}
		sn := st.Freeze()
		diffParallelSerial(t, sn, randomAggQuery(rng), Limits{})
	}
}

// TestNulKeyCollision pins the legacy key-packing fix: group keys and
// DISTINCT rows were joined with "\x00", so the tuples ("a\x00", "b")
// and ("a", "\x00b") collided into one group. Length-prefixed packing
// keeps them apart, on the legacy path and differentially against the
// columnar path (which groups on ID tuples and never collided).
func TestNulKeyCollision(t *testing.T) {
	st := rdf.NewStore()
	st.Add("urn:s1", "urn:p1", "a\x00")
	st.Add("urn:s1", "urn:p2", "b")
	st.Add("urn:s2", "urn:p1", "a")
	st.Add("urn:s2", "urn:p2", "\x00b")
	sn := st.Freeze()

	group := `SELECT ?k1 ?k2 (COUNT(*) AS ?c) WHERE { ?x <urn:p1> ?k1 . ?x <urn:p2> ?k2 } GROUP BY ?k1 ?k2`
	distinct := `SELECT DISTINCT ?k1 ?k2 WHERE { ?x <urn:p1> ?k1 . ?x <urn:p2> ?k2 }`
	for _, src := range []string{group, distinct} {
		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := QueryWithLimits(sn, q, Limits{Legacy: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("legacy %q: %d rows, want 2 (NUL-bearing key tuples collided)", src, len(res.Rows))
		}
		diffOrdered(t, sn, src)
	}
}

// TestGroupKeysStayAsIDs pins the tentpole's dictionary contract:
// grouping runs on packed ID tuples, so group keys that never reach
// projection cost zero Pool.Text calls — materializations equal the
// emitted aggregate cells, independent of input size or key
// cardinality.
func TestGroupKeysStayAsIDs(t *testing.T) {
	st := rdf.NewStore()
	for i := 0; i < 40; i++ {
		for j := 0; j < 5+i%3; j++ {
			st.Add(fmt.Sprintf("urn:s%d", i), "urn:p", fmt.Sprintf("urn:o%d", (i*7+j)%25))
		}
	}
	sn := st.Freeze()

	// 40 groups keyed on ?x, key never projected: one Text call per
	// emitted COUNT cell and none for the 40 keys or 200 member rows.
	res, calls := runCounted(t, sn, `SELECT (COUNT(?o) AS ?c) WHERE { ?x <urn:p> ?o } GROUP BY ?x`)
	if len(res.Rows) != 40 {
		t.Fatalf("rows = %d, want 40", len(res.Rows))
	}
	if calls != int64(len(res.Rows)) {
		t.Fatalf("dictionary lookups = %d, want exactly %d (one per aggregate cell)", calls, len(res.Rows))
	}

	// HAVING reads each group's count once (25 groups over ?o) and
	// projection texts the survivors — the 25 key IDs still cost zero.
	res2, calls2 := runCounted(t, sn, `SELECT (COUNT(*) AS ?c) WHERE { ?x <urn:p> ?o } GROUP BY ?o HAVING (COUNT(*) > 9)`)
	if len(res2.Rows) == 0 || len(res2.Rows) >= 25 {
		t.Fatalf("unexpected group count %d", len(res2.Rows))
	}
	if want := int64(25 + len(res2.Rows)); calls2 != want {
		t.Fatalf("dictionary lookups = %d, want %d (one HAVING read per group + one per surviving cell)", calls2, want)
	}
}
