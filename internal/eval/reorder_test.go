package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// sortedRows canonicalizes a result for order-insensitive comparison
// (SPARQL solution sequences without ORDER BY are unordered; reordering
// a BGP permutes enumeration order but must preserve the multiset).
func sortedRows(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, strings.Join(row, "\x1f"))
	}
	sort.Strings(out)
	return out
}

func diffQueries(t *testing.T, sn *rdf.Snapshot, src string) {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	planned, err := QueryWithLimits(sn, q, Limits{})
	if err != nil {
		t.Fatalf("planned eval %q: %v", src, err)
	}
	baseline, err := QueryWithLimits(sn, q, Limits{NoReorder: true})
	if err != nil {
		t.Fatalf("baseline eval %q: %v", src, err)
	}
	if planned.Bool != baseline.Bool {
		t.Fatalf("ASK diverges on %q: planned=%v baseline=%v", src, planned.Bool, baseline.Bool)
	}
	if strings.Join(planned.Vars, ",") != strings.Join(baseline.Vars, ",") {
		t.Fatalf("vars diverge on %q: %v vs %v", src, planned.Vars, baseline.Vars)
	}
	a, b := sortedRows(planned), sortedRows(baseline)
	if len(a) != len(b) {
		t.Fatalf("row counts diverge on %q: planned=%d baseline=%d", src, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rows diverge on %q at %d:\nplanned:  %q\nbaseline: %q", src, i, a[i], b[i])
		}
	}
}

// TestReorderDifferentialRandom is the evaluator's differential suite on
// the consistency corpus: random stores, random conjunctive queries in
// random syntactic orders — planner-ordered evaluation must produce the
// same solution multiset as the pre-planner syntactic order.
func TestReorderDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 80; trial++ {
		st := rdf.NewStore()
		nNodes := 4 + rng.Intn(10)
		nPreds := 1 + rng.Intn(3)
		for i := 0; i < 5+rng.Intn(40); i++ {
			st.Add(
				fmt.Sprintf("urn:n%d", rng.Intn(nNodes)),
				fmt.Sprintf("urn:p%d", rng.Intn(nPreds)),
				fmt.Sprintf("urn:n%d", rng.Intn(nNodes)),
			)
		}
		sn := st.Freeze()

		nAtoms := 2 + rng.Intn(3)
		nVars := 1 + rng.Intn(3)
		term := func() string {
			if rng.Float64() < 0.6 {
				return fmt.Sprintf("?v%d", rng.Intn(nVars))
			}
			return fmt.Sprintf("<urn:n%d>", rng.Intn(nNodes+2)) // may be absent
		}
		var triples []string
		for a := 0; a < nAtoms; a++ {
			pred := fmt.Sprintf("<urn:p%d>", rng.Intn(nPreds))
			if rng.Float64() < 0.15 {
				pred = fmt.Sprintf("?v%d", rng.Intn(nVars))
			}
			triples = append(triples, term()+" "+pred+" "+term())
		}
		src := "SELECT * WHERE { " + strings.Join(triples, " . ") + " }"
		diffQueries(t, sn, src)

		ask := "ASK { " + strings.Join(triples, " . ") + " }"
		diffQueries(t, sn, ask)
	}
}

// TestReorderDifferentialOperators checks planner-ordered evaluation
// against the baseline when BGPs are interleaved with the non-commuting
// operators that must keep their positions.
func TestReorderDifferentialOperators(t *testing.T) {
	st := rdf.NewStore()
	for i := 0; i < 12; i++ {
		st.Add(fmt.Sprintf("urn:a%d", i), "urn:knows", fmt.Sprintf("urn:a%d", (i+1)%12))
		if i%2 == 0 {
			st.Add(fmt.Sprintf("urn:a%d", i), "urn:age", fmt.Sprintf("%d", 20+i))
		}
		if i%3 == 0 {
			st.Add(fmt.Sprintf("urn:a%d", i), "urn:name", fmt.Sprintf("n%d", i))
		}
	}
	st.Add("urn:a0", "urn:special", "urn:a5")
	sn := st.Freeze()

	for _, src := range []string{
		// Selective atom written last inside a plain BGP.
		`SELECT * WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z . ?x <urn:special> ?y }`,
		// OPTIONAL between two BGP runs: each run reorders internally only.
		`SELECT * WHERE { ?x <urn:knows> ?y . ?x <urn:age> ?a OPTIONAL { ?y <urn:name> ?n } ?y <urn:knows> ?z . ?x <urn:special> ?y }`,
		// FILTER pulled to the group end, MINUS keeps position.
		`SELECT * WHERE { ?x <urn:knows> ?y . ?x <urn:name> ?n FILTER(?n != "n3") MINUS { ?x <urn:age> "26" } }`,
		// UNION branches each reorder their own groups.
		`SELECT * WHERE { { ?x <urn:knows> ?y . ?x <urn:special> ?y } UNION { ?x <urn:age> ?y . ?x <urn:name> ?z } }`,
		// VALUES binds a variable before the BGP.
		`SELECT * WHERE { VALUES ?x { <urn:a0> <urn:a6> } ?x <urn:knows> ?y . ?y <urn:knows> ?z }`,
		// Absent constant: the dead atom must still kill the group.
		`SELECT * WHERE { ?x <urn:knows> ?y . ?x <urn:nothere> ?z }`,
		// Subquery plus outer BGP.
		`SELECT * WHERE { { SELECT ?x WHERE { ?x <urn:age> ?a . ?x <urn:name> ?n } } ?x <urn:knows> ?y . ?y <urn:knows> ?z }`,
	} {
		diffQueries(t, sn, src)
	}
}

// TestReorderMovesSelectiveAtomFirst pins the planner's effect: with a
// selective bound-object atom written last, planned evaluation must
// behave identically to the baseline (results) while the explain view
// puts that atom first.
func TestReorderMovesSelectiveAtomFirst(t *testing.T) {
	st := rdf.NewStore()
	for i := 0; i < 50; i++ {
		st.Add(fmt.Sprintf("urn:s%d", i), "urn:big", fmt.Sprintf("urn:o%d", i%25))
	}
	st.Add("urn:s7", "urn:tag", "urn:gold")
	sn := st.Freeze()
	src := `SELECT * WHERE { ?s <urn:big> ?o . ?s <urn:tag> <urn:gold> }`
	diffQueries(t, sn, src)

	q, _ := sparql.Parse(src)
	text, err := Explain(sn, q)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(text, "\n")
	if len(lines) < 3 || !strings.Contains(lines[2], "urn:tag") {
		t.Fatalf("explain did not move the selective atom first:\n%s", text)
	}
	if strings.Contains(text, "note:") {
		t.Fatalf("pure BGP explain should have no operator note:\n%s", text)
	}

	// Non-conjunctive operators must be disclosed in the trailer.
	q2, _ := sparql.Parse(`SELECT * WHERE { { ?s <urn:big> ?o } UNION { ?s <urn:tag> ?o } }`)
	text2, err := Explain(sn, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text2, "UNION") || !strings.Contains(text2, "note:") {
		t.Fatalf("explain did not disclose the UNION:\n%s", text2)
	}
}

// TestExplainPropertyPath: a path-only query must produce an automaton
// section with direction and est/actual counts instead of erroring.
func TestExplainPropertyPath(t *testing.T) {
	st := rdf.NewStore()
	st.Add("urn:a", "urn:p", "urn:b")
	st.Add("urn:b", "urn:p", "urn:c")
	sn := st.Freeze()
	q, err := sparql.Parse(`SELECT ?x WHERE { <urn:a> <urn:p>+ ?x }`)
	if err != nil {
		t.Fatal(err)
	}
	text, err := Explain(sn, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"property path", "automaton", "fast path", "direction: forward", "actual 2"} {
		if !strings.Contains(text, want) {
			t.Errorf("explain transcript missing %q:\n%s", want, text)
		}
	}
	// Object-bound: reverse direction.
	q2, _ := sparql.Parse(`SELECT ?x WHERE { ?x <urn:p>+ <urn:c> }`)
	text2, err := Explain(sn, q2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text2, "direction: reverse") {
		t.Errorf("object-bound explain did not choose reverse:\n%s", text2)
	}
	// Mixed query: both a BGP table and a path section.
	q3, _ := sparql.Parse(`SELECT * WHERE { ?x <urn:p> ?y . ?y <urn:p>* ?z . FILTER(?x != ?z) }`)
	text3, err := Explain(sn, q3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"est rows", "property path", "note:", "FILTER"} {
		if !strings.Contains(text3, want) {
			t.Errorf("mixed explain missing %q:\n%s", want, text3)
		}
	}
}
