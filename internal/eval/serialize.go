package eval

import "strings"

// TermKind classifies a result-cell term for serialization. The store's
// dictionary keeps terms as undecorated text (IRIs without angle
// brackets, literals without quotes), so result serializers — the
// SPARQL results JSON/XML writers in internal/server — need a
// classification to emit `"type": "uri"` vs `"type": "literal"` cells.
type TermKind int

const (
	// KindLiteral is the default: any term that is not clearly an IRI
	// or a blank node serializes as a plain literal.
	KindLiteral TermKind = iota
	// KindIRI marks a term that parses as an absolute IRI.
	KindIRI
	// KindBlank marks a blank-node label ("_:"-prefixed).
	KindBlank
)

// KindOfTerm classifies a result cell's text. The heuristic mirrors
// how terms enter the dictionary: blank nodes keep their "_:" prefix;
// IRIs arrive from <...> syntax or prefixed-name expansion and are
// absolute (RFC 3986 scheme ":" hier-part) without whitespace, quotes,
// or angle brackets; everything else was a literal's lexical form.
func KindOfTerm(text string) TermKind {
	if strings.HasPrefix(text, "_:") {
		return KindBlank
	}
	if isAbsoluteIRI(text) {
		return KindIRI
	}
	return KindLiteral
}

// isAbsoluteIRI reports whether text looks like scheme:rest with a
// valid scheme (ALPHA *(ALPHA / DIGIT / "+" / "-" / ".")) and no
// characters that cannot appear in an IRI.
func isAbsoluteIRI(text string) bool {
	colon := strings.IndexByte(text, ':')
	if colon <= 0 {
		return false
	}
	for i := 0; i < colon; i++ {
		c := text[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case i > 0 && (c >= '0' && c <= '9' || c == '+' || c == '-' || c == '.'):
		default:
			return false
		}
	}
	if colon == len(text)-1 {
		return false
	}
	for i := colon + 1; i < len(text); i++ {
		switch c := text[i]; c {
		case ' ', '\t', '\n', '\r', '"', '<', '>', '{', '}', '|', '\\', '^', '`':
			return false
		default:
			if c < 0x20 {
				return false
			}
		}
	}
	return true
}
