// Package eval executes parsed SPARQL queries against an rdf.Snapshot: the
// group graph pattern algebra (joins, OPTIONAL, UNION, MINUS, FILTER,
// BIND, VALUES, subqueries, property paths), expression evaluation, and
// the solution modifiers (projection, DISTINCT, ORDER BY, LIMIT/OFFSET,
// GROUP BY with aggregates, HAVING).
//
// Evaluation runs on the slot-based columnar executor (internal/exec):
// the WHERE clause compiles once into an operator tree over a
// query-wide variable→slot schema and solutions flow through it as
// rdf.ID batches, with strings only at the edges (see columnar.go).
// The pre-refactor materialized path — per-row map bindings — survives
// behind Limits.Legacy as the differential-testing reference.
//
// The store's dictionary is untyped text, so literals match on their
// lexical form; language tags and datatypes are compared syntactically
// where expressions need them. GRAPH and SERVICE blocks evaluate against
// the same store (it is a single-graph store); a GRAPH variable binds to
// the pseudo-IRI DefaultGraph.
package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"sparqlog/internal/exec"
	"sparqlog/internal/lint"
	"sparqlog/internal/pathcomp"
	"sparqlog/internal/plan"
	"sparqlog/internal/qcache"
	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// DefaultGraph is the pseudo-IRI a GRAPH variable binds to.
const DefaultGraph = "urn:sparqlog:default-graph"

// Unbound marks an unbound variable in result rows. The empty string
// is the unbound marker throughout the evaluator: an expression or
// VALUES term whose lexical form is empty binds nothing (both
// executors enforce this uniformly — the columnar pool interns "" to
// its Unbound sentinel, the legacy path skips the map write).
const Unbound = ""

// Result is the outcome of evaluating a query.
type Result struct {
	// Vars is the projection, in order. Empty for ASK.
	Vars []string
	// Rows are the solutions, aligned with Vars; Unbound marks holes.
	Rows [][]string
	// Bool is the ASK answer.
	Bool bool
	// Recovered counts silent SERVICE recoveries during evaluation:
	// SERVICE SILENT bodies whose failure was swallowed and replaced by
	// the unjoined input. Queries without SERVICE SILENT report zero; a
	// nonzero count means part of the answer came from no-op federation.
	Recovered int
	// Probes counts snapshot index accesses made by the columnar
	// executor during evaluation (joins and compiled-path lookups,
	// subqueries included). A statically short-circuited query — one the
	// linter proved empty before compilation — finishes with zero. The
	// legacy path does not meter itself and always reports zero.
	Probes int64
	// Parallel reports morsel-driven intra-query execution when the
	// compiler chose it: worker count plus per-worker processed volumes.
	// Nil for serial runs (Limits.Parallel == 1, small plans, or query
	// shapes without a parallelizable section).
	Parallel *ParallelInfo
	// Modifiers reports columnar GROUP BY / ORDER BY operator execution
	// (group counts, partial-table merges, heap-vs-sort mode); nil when
	// neither operator ran.
	Modifiers *ModifierInfo
	// Cached marks a result served from the result cache (Limits.Results)
	// without executing; Collapsed marks one received from a concurrent
	// identical execution via single-flight. Both false means this
	// result was evaluated here.
	Cached    bool
	Collapsed bool
	// CacheKey is the canonical cache key when the result is resident in
	// the result cache (a hit, or a fresh execution that was admitted).
	// Serving layers use it to attach and reuse serialized bodies;
	// empty means not resident.
	CacheKey string
}

// ParallelInfo summarizes one query's intra-query parallel section.
type ParallelInfo struct {
	// Workers is the exchange's worker count.
	Workers int
	// Stats holds per-worker morsel/batch/row counts.
	Stats []exec.WorkerStat
}

// ModifierInfo summarizes columnar solution-modifier execution: the
// GroupBy and TopK operators the compiler placed. Nil when neither ran
// (no aggregation/ordering, the legacy path, or a legacy-shape
// aggregate finisher).
type ModifierInfo struct {
	// Groups is the emitted group count (before HAVING), GroupRows the
	// input rows aggregated, PartialTables the worker partial tables
	// merged at the exchange (0 = serial aggregation).
	Groups        int64
	GroupRows     int64
	PartialTables int64
	// TopKMode is "heap" (bounded selection) or "sort" (full stable
	// sort); empty when no ORDER BY operator ran. TopKScanned rows went
	// in, TopKKept came out.
	TopKMode    string
	TopKScanned int64
	TopKKept    int64
}

// Limits bounds evaluation.
type Limits struct {
	// MaxRows caps any intermediate binding set (0 = DefaultMaxRows).
	MaxRows int
	// NoReorder keeps basic graph patterns in their syntactic order
	// instead of the cost-based planner's order — the pre-planner
	// behaviour, kept for ablation benchmarks and differential tests.
	NoReorder bool
	// Legacy evaluates on the pre-columnar materialized path: per-row
	// map[string]string bindings flowing through the pattern algebra.
	// Kept as the differential-testing reference for the slot-based
	// columnar executor (the default), and for ablation benchmarks.
	Legacy bool
	// Paths optionally shares a compiled-path cache across queries
	// against the same snapshot (the plan.Cache pattern): a serving
	// layer evaluating recurring path shapes compiles each shape once.
	// Nil gives every query its own cache, which still amortizes
	// compilation across bindings and repeated patterns within it.
	Paths *pathcomp.Cache
	// Plans optionally shares a query-shape plan cache across queries
	// against the same snapshot: the planner runs once per BGP shape
	// and every execution reuses the cached order (plans carry slot
	// assignments, so a cache hit is executable without re-resolving
	// variables). Only unseeded runs consult it; a BGP whose variables
	// were pre-bound by earlier operators plans directly.
	Plans *plan.Cache
	// NoStatic disables the static-emptiness short circuit: by default
	// a WHERE clause the linter proves empty (internal/lint.EmptyUnder)
	// compiles to an empty source instead of touching the store. Kept
	// for ablation benchmarks and the probe-count tests.
	NoStatic bool
	// CollapseEqualities opts into the SQL007 optimizer rewrite: group
	// filters of the form FILTER(?x = ?y) whose dropped variable lives
	// entirely in the group's own triples are substituted away before
	// planning, turning a filtered enumeration into an indexed join.
	// Opt-in because "=" is value equality while substitution enforces
	// term equality (see internal/lint/rewrite.go for the caveat).
	CollapseEqualities bool
	// Results optionally consults a snapshot-keyed query result cache
	// between parse and execution (internal/qcache): repeated queries —
	// keyed by their canonical sparql.QueryString, so variable renaming
	// and prefix spelling do not split entries — skip the plan→exec
	// pipeline entirely, and concurrent identical queries collapse onto
	// one execution (single-flight). The cache is bound to one snapshot;
	// evaluating a different snapshot degrades to uncached execution.
	// Errors, deadline truncations, row-limit overflows, and
	// SERVICE-recovered results are never cached.
	Results *qcache.Cache
	// Parallel is the intra-query worker budget for the columnar
	// executor's morsel-driven exchange and the compiled-path pair
	// sweeps: 0 means auto (GOMAXPROCS), 1 pins today's serial
	// execution (the differential reference), higher values cap the
	// worker set. The compiler only fans out when the plan's cardinality
	// estimates clear a threshold, so small queries stay serial — and
	// parallel output is row-for-row identical to serial either way.
	Parallel int
}

// DefaultMaxRows bounds intermediate results.
const DefaultMaxRows = 1_000_000

// Query evaluates a parsed query against an immutable store snapshot.
// The snapshot is only read, so concurrent Query calls over one snapshot
// are safe.
func Query(sn *rdf.Snapshot, q *sparql.Query) (*Result, error) {
	return QueryWithLimits(sn, q, Limits{})
}

// QueryWithLimits evaluates with explicit bounds.
func QueryWithLimits(sn *rdf.Snapshot, q *sparql.Query, lim Limits) (*Result, error) {
	return QueryContext(context.Background(), sn, q, lim)
}

// QueryContext evaluates under the context's deadline and cancellation,
// polled from the executor's inner loops; an expired context surfaces
// as exec.ErrTimeout. (The legacy path polls between pattern operators
// only — coarser, but it exists for differential testing, not serving.)
func QueryContext(ctx context.Context, sn *rdf.Snapshot, q *sparql.Query, lim Limits) (*Result, error) {
	if lim.MaxRows <= 0 {
		lim.MaxRows = DefaultMaxRows
	}
	if lim.CollapseEqualities {
		if rq, ok := lint.CollapseEqualities(q); ok {
			q = rq
		}
	}
	// Cache lookup sits after the equality-collapse rewrite so the key
	// reflects the semantics actually executed, and degrades to direct
	// execution on a snapshot mismatch (the plan.Cache convention).
	if lim.Results != nil && lim.Results.Snapshot() == sn {
		return queryCached(ctx, sn, q, lim)
	}
	return queryDirect(ctx, sn, q, lim)
}

// queryDirect is the uncached evaluation path.
func queryDirect(ctx context.Context, sn *rdf.Snapshot, q *sparql.Query, lim Limits) (*Result, error) {
	ev := &evaluator{st: sn, prefixes: prefixMap(q), lim: lim, ctx: ctx}
	res, err := ev.query(q)
	if err == nil {
		res.Recovered = ev.recovered
		res.Probes = ev.probes
		res.Parallel = ev.parInfo
		res.Modifiers = ev.modInfo
	}
	return res, err
}

type binding map[string]string

func (b binding) clone() binding {
	c := make(binding, len(b)+2)
	for k, v := range b {
		c[k] = v
	}
	return c
}

type evaluator struct {
	st       *rdf.Snapshot
	prefixes map[string]string
	lim      Limits
	ctx      context.Context
	// pathc caches compiled property-path automata for this snapshot,
	// so a path evaluated under many bindings (or appearing several
	// times in the query) compiles once. Lazily built on first path.
	pathc *pathcomp.Cache
	// colPool records the last columnar execution's term pool; tests
	// read its Text-call counter to pin the lazy-materialization
	// contract (operators move IDs, only the edges touch strings).
	colPool *exec.Pool
	// recovered accumulates silent SERVICE recoveries across the whole
	// evaluation, subqueries included — surfaced as Result.Recovered.
	recovered int
	// probes accumulates snapshot index accesses across every columnar
	// execution of this evaluation (subqueries make their own colExec
	// and harvest into here) — surfaced as Result.Probes.
	probes int64
	// parInfo records the outermost parallel section's worker stats
	// (subquery executions overwrite first, the main query last) —
	// surfaced as Result.Parallel.
	parInfo *ParallelInfo
	// modInfo records the outermost columnar GroupBy/TopK execution,
	// the same way — surfaced as Result.Modifiers.
	modInfo *ModifierInfo
}

// pathCache returns the compiled-path cache: the caller-shared one from
// Limits.Paths when set (and built for this snapshot — the cache itself
// degrades a mismatch to uncached compilation), else a per-query cache
// created on first use.
func (ev *evaluator) pathCache() *pathcomp.Cache {
	if ev.lim.Paths != nil {
		return ev.lim.Paths
	}
	if ev.pathc == nil {
		ev.pathc = pathcomp.NewCache(ev.st)
	}
	return ev.pathc
}

func prefixMap(q *sparql.Query) map[string]string {
	m := make(map[string]string, len(q.Prologue.Prefixes))
	for _, p := range q.Prologue.Prefixes {
		m[p.Name] = p.IRI
	}
	return m
}

// expand resolves a prefixed name to its full IRI text.
func (ev *evaluator) expand(iri string, prefixed bool) string {
	if !prefixed {
		return iri
	}
	i := strings.IndexByte(iri, ':')
	if i < 0 {
		return iri
	}
	if base, ok := ev.prefixes[iri[:i]]; ok {
		return base + iri[i+1:]
	}
	return iri
}

// termText renders a query term as store text; variables and blanks
// return ok=false.
func (ev *evaluator) termText(t sparql.Term) (string, bool) {
	switch t.Kind {
	case sparql.TermIRI:
		return ev.expand(t.Value, t.PrefixedForm), true
	case sparql.TermLiteral:
		return t.Value, true
	default:
		return "", false
	}
}

// varName returns the binding key for a variable or blank node (blank
// nodes act as non-projectable variables in patterns).
func varName(t sparql.Term) (string, bool) {
	switch t.Kind {
	case sparql.TermVar:
		return t.Value, true
	case sparql.TermBlank:
		return "_:" + t.Value, true
	}
	return "", false
}

// query dispatches to the columnar executor (the default) or the
// legacy materialized path (Limits.Legacy, the differential
// reference). Subqueries recurse through here, so both paths stay
// internally homogeneous.
func (ev *evaluator) query(q *sparql.Query) (*Result, error) {
	if ev.lim.Legacy {
		return ev.queryLegacy(q)
	}
	return ev.queryColumnar(q)
}

func (ev *evaluator) queryLegacy(q *sparql.Query) (*Result, error) {
	rows := []binding{{}}
	var err error
	if q.Where != nil {
		rows, err = ev.pattern(q.Where, rows)
		if err != nil {
			return nil, err
		}
	}
	if q.TrailingValues != nil {
		rows, err = ev.values(q.TrailingValues, rows)
		if err != nil {
			return nil, err
		}
	}
	envs := make([]env, len(rows))
	for i := range rows {
		envs[i] = rows[i]
	}
	switch q.Type {
	case sparql.AskQuery:
		return &Result{Bool: len(rows) > 0}, nil
	case sparql.SelectQuery:
		return ev.finishSelect(q, envs)
	case sparql.ConstructQuery:
		return ev.finishConstruct(q, envs)
	case sparql.DescribeQuery:
		return ev.finishDescribe(q, envs)
	}
	return nil, fmt.Errorf("eval: unknown query type")
}

// finishConstruct instantiates the template per solution, returning the
// constructed triples as three-column rows (s, p, o), deduplicated on
// the term triple (no joined-string keys).
func (ev *evaluator) finishConstruct(q *sparql.Query, rows []env) (*Result, error) {
	res := &Result{Vars: []string{"s", "p", "o"}}
	seen := map[[3]string]bool{}
	emit := func(s, p, o string) {
		k := [3]string{s, p, o}
		if s == "" || p == "" || o == "" || seen[k] {
			return
		}
		seen[k] = true
		res.Rows = append(res.Rows, []string{s, p, o})
	}
	instantiate := func(t sparql.Term, b env) string {
		if txt, ok := ev.termText(t); ok {
			return txt
		}
		name, _ := varName(t)
		v, _ := b.lookupVar(name)
		return v
	}
	for _, b := range rows {
		for _, tp := range q.Template {
			emit(instantiate(tp.S, b), instantiate(tp.P, b), instantiate(tp.O, b))
		}
	}
	applySlice(q, res)
	return res, nil
}

// finishDescribe returns every triple whose subject or object is one of
// the described resources (the common "concise bounded description"
// approximation; the output of DESCRIBE is implementation-defined).
func (ev *evaluator) finishDescribe(q *sparql.Query, rows []env) (*Result, error) {
	targets := map[string]bool{}
	for _, t := range q.DescribeTerms {
		if txt, ok := ev.termText(t); ok {
			targets[txt] = true
			continue
		}
		if name, ok := varName(t); ok {
			for _, b := range rows {
				if v, bound := b.lookupVar(name); bound {
					targets[v] = true
				}
			}
		}
	}
	if q.DescribeStar {
		for _, b := range rows {
			b.eachBound(func(name string) {
				if v, ok := b.lookupVar(name); ok {
					targets[v] = true
				}
			})
		}
	}
	res := &Result{Vars: []string{"s", "p", "o"}}
	// No targets (e.g. a statically-empty WHERE bound no describe
	// variables) can match nothing — skip the full store scan.
	if len(targets) > 0 {
		for _, t := range ev.st.Triples() {
			s, p, o := ev.st.TermOf(t.S), ev.st.TermOf(t.P), ev.st.TermOf(t.O)
			if targets[s] || targets[o] {
				res.Rows = append(res.Rows, []string{s, p, o})
			}
		}
	}
	applySlice(q, res)
	return res, nil
}

// ---------- pattern algebra ----------

// pattern evaluates p against the incoming binding set.
func (ev *evaluator) pattern(p sparql.Pattern, in []binding) ([]binding, error) {
	if ev.ctx != nil && ev.ctx.Err() != nil {
		return nil, exec.ErrTimeout
	}
	switch n := p.(type) {
	case *sparql.Group:
		return ev.group(n, in)
	case *sparql.TriplePattern:
		return ev.triple(n, in)
	case *sparql.PathPattern:
		return ev.path(n, in)
	case *sparql.Union:
		left, err := ev.pattern(n.Left, in)
		if err != nil {
			return nil, err
		}
		right, err := ev.pattern(n.Right, in)
		if err != nil {
			return nil, err
		}
		out := append(left, right...)
		if len(out) > ev.lim.MaxRows {
			return nil, fmt.Errorf("eval: row limit exceeded")
		}
		return out, nil
	case *sparql.Optional:
		return ev.optional(n, in)
	case *sparql.MinusGraph:
		return ev.minus(n, in)
	case *sparql.GraphGraph:
		// Single-graph store: bind a GRAPH variable to the default
		// graph's pseudo-IRI and evaluate the body as usual.
		next := in
		if v, ok := varName(n.Name); ok {
			next = make([]binding, 0, len(in))
			for _, b := range in {
				if cur, bound := b[v]; bound && cur != DefaultGraph {
					continue
				}
				nb := b.clone()
				nb[v] = DefaultGraph
				next = append(next, nb)
			}
		}
		return ev.pattern(n.Inner, next)
	case *sparql.ServiceGraph:
		// SERVICE against this store (no federation in an offline
		// library); SILENT semantics are preserved on failure.
		out, err := ev.pattern(n.Inner, in)
		if err != nil && n.Silent {
			ev.recovered++
			return in, nil
		}
		return out, err
	case *sparql.Filter:
		return ev.filter(n.Constraint, in)
	case *sparql.Bind:
		return ev.bind(n, in)
	case *sparql.InlineData:
		return ev.values(n, in)
	case *sparql.SubSelect:
		return ev.subselect(n, in)
	}
	return nil, fmt.Errorf("eval: unsupported pattern %T", p)
}

// group evaluates elements in order; FILTERs apply after the group's
// joins, per the SPARQL algebra translation. Runs of adjacent triple
// patterns (basic graph patterns) are reordered by the cost-based
// planner first — joins are commutative, so only the enumeration order
// changes, not the solution set.
func (ev *evaluator) group(g *sparql.Group, in []binding) ([]binding, error) {
	elems := g.Elems
	if !ev.lim.NoReorder {
		elems = ev.reorderBGPs(elems, in)
	}
	rows := in
	var filters []sparql.Expr
	var err error
	for _, el := range elems {
		if f, ok := el.(*sparql.Filter); ok {
			filters = append(filters, f.Constraint)
			continue
		}
		rows, err = ev.pattern(el, rows)
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			// Joins cannot recover; filters on empty input stay empty.
			return rows, nil
		}
	}
	for _, f := range filters {
		rows, err = ev.filter(f, rows)
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// reorderBGPs rewrites the group's element list with every maximal run
// of adjacent triple patterns permuted into the cost-based planner's
// order (greedy minimum selectivity over the snapshot's Freeze-time
// statistics). Non-triple elements keep their positions: OPTIONAL,
// MINUS, BIND and friends are order-sensitive, so only the commutative
// BGP joins between them are touched. Variables bound by earlier
// elements (or by the incoming binding set) seed the planner's
// bound-variable propagation.
func (ev *evaluator) reorderBGPs(elems []sparql.Pattern, in []binding) []sparql.Pattern {
	bound := map[string]bool{}
	if len(in) > 0 {
		for k := range in[0] {
			bound[k] = true
		}
	}
	return ev.reorderElems(elems, bound)
}

// reorderElems is the order-rewriting core shared by the legacy
// evaluator (which seeds bound from its first incoming row) and the
// columnar compiler (which seeds it from the statically bound slots).
// It marks every variable the elements can bind into bound as it goes.
func (ev *evaluator) reorderElems(elems []sparql.Pattern, bound map[string]bool) []sparql.Pattern {
	multi := false
	for i := 1; i < len(elems); i++ {
		_, a := elems[i-1].(*sparql.TriplePattern)
		_, b := elems[i].(*sparql.TriplePattern)
		if a && b {
			multi = true
			break
		}
	}
	if !multi {
		return elems
	}
	out := make([]sparql.Pattern, 0, len(elems))
	for i := 0; i < len(elems); {
		tp, ok := elems[i].(*sparql.TriplePattern)
		if !ok {
			ev.markPatternVars(elems[i], bound)
			out = append(out, elems[i])
			i++
			continue
		}
		run := []*sparql.TriplePattern{tp}
		j := i + 1
		for j < len(elems) {
			next, ok := elems[j].(*sparql.TriplePattern)
			if !ok {
				break
			}
			run = append(run, next)
			j++
		}
		for _, t := range ev.orderRun(run, bound) {
			out = append(out, t)
		}
		for _, t := range run {
			for _, term := range [3]sparql.Term{t.S, t.P, t.O} {
				if name, ok := varName(term); ok {
					bound[name] = true
				}
			}
		}
		i = j
	}
	return out
}

// compileBGP compiles triple patterns to planner atoms, returning the
// variable-name table (planner variable index -> binding name).
// Constants missing from the dictionary compile to an out-of-dictionary
// ID, whose zero statistics order the (necessarily empty) atom first.
// Shared by orderRun and Explain so the two compile paths cannot drift.
func (ev *evaluator) compileBGP(patterns []*sparql.TriplePattern) ([]plan.Atom, []string) {
	varIdx := map[string]int{}
	var names []string
	idx := func(name string) int {
		if i, ok := varIdx[name]; ok {
			return i
		}
		varIdx[name] = len(names)
		names = append(names, name)
		return len(names) - 1
	}
	toRef := func(t sparql.Term) plan.TermRef {
		if txt, ok := ev.termText(t); ok {
			if id, known := ev.st.Lookup(txt); known {
				return plan.C(id)
			}
			return plan.C(^rdf.ID(0))
		}
		name, _ := varName(t)
		return plan.V(idx(name))
	}
	atoms := make([]plan.Atom, len(patterns))
	for i, tp := range patterns {
		atoms[i] = plan.Atom{S: toRef(tp.S), P: toRef(tp.P), O: toRef(tp.O)}
	}
	return atoms, names
}

// orderRun plans one basic graph pattern. Runs with no pre-bound
// variables go through the shared shape-keyed plan cache when
// Limits.Plans carries one (compileBGP numbers variables by first
// occurrence — the same canonicalization the shape key uses — so a
// cached order transfers across queries of one shape); seeded runs
// plan directly, since the bound-variable seed is not part of the key.
func (ev *evaluator) orderRun(run []*sparql.TriplePattern, bound map[string]bool) []*sparql.TriplePattern {
	if len(run) < 2 {
		return run
	}
	atoms, names := ev.compileBGP(run)
	initial := make([]bool, len(names))
	seeded := false
	for i, name := range names {
		initial[i] = bound[name]
		seeded = seeded || initial[i]
	}
	var p *plan.Plan
	if !seeded && ev.lim.Plans != nil {
		p = ev.lim.Plans.For(ev.st, atoms, len(names))
	} else {
		p = plan.Planner{Stats: ev.st.Stats()}.PlanBound(atoms, len(names), initial)
	}
	ordered := make([]*sparql.TriplePattern, len(run))
	for k, ai := range p.Order {
		ordered[k] = run[ai]
	}
	return ordered
}

// markPatternVars marks the variables a non-triple group element can
// bind, for planning purposes only (a miss costs plan quality, never
// correctness; OPTIONAL/UNION variables are not guaranteed bound at
// runtime, but planning as if they were beats ignoring them). Nested
// patterns are walked recursively.
func (ev *evaluator) markPatternVars(p sparql.Pattern, bound map[string]bool) {
	sparql.Walk(p, func(n sparql.Pattern) bool {
		switch x := n.(type) {
		case *sparql.TriplePattern:
			for _, t := range [3]sparql.Term{x.S, x.P, x.O} {
				if name, ok := varName(t); ok {
					bound[name] = true
				}
			}
		case *sparql.PathPattern:
			for _, t := range [2]sparql.Term{x.S, x.O} {
				if name, ok := varName(t); ok {
					bound[name] = true
				}
			}
		case *sparql.Bind:
			bound[x.Var.Value] = true
		case *sparql.InlineData:
			for _, v := range x.Vars {
				bound[v.Value] = true
			}
		}
		return true
	})
}

func (ev *evaluator) triple(tp *sparql.TriplePattern, in []binding) ([]binding, error) {
	var out []binding
	for _, b := range in {
		err := ev.matchTriple(tp, b, func(nb binding) {
			out = append(out, nb)
		})
		if err != nil {
			return nil, err
		}
		if len(out) > ev.lim.MaxRows {
			return nil, fmt.Errorf("eval: row limit exceeded")
		}
	}
	return out, nil
}

// matchTriple enumerates store matches of tp under b.
func (ev *evaluator) matchTriple(tp *sparql.TriplePattern, b binding, yield func(binding)) error {
	resolve := func(t sparql.Term) (id rdf.ID, bound bool, v string, isVar bool) {
		if txt, ok := ev.termText(t); ok {
			tid, exists := ev.st.Lookup(txt)
			if !exists {
				return 0, false, "", false // constant absent: no matches
			}
			return tid, true, "", false
		}
		name, _ := varName(t)
		if cur, ok := b[name]; ok {
			tid, exists := ev.st.Lookup(cur)
			if !exists {
				return 0, false, name, true
			}
			return tid, true, name, true
		}
		return 0, false, name, true
	}
	s, sb, sv, sIsVar := resolve(tp.S)
	p, pb, pv, pIsVar := resolve(tp.P)
	o, ob, ov, oIsVar := resolve(tp.O)
	// A constant or pre-bound term missing from the dictionary cannot
	// match anything.
	if (!sb && !sIsVar) || (!pb && !pIsVar) || (!ob && !oIsVar) {
		return nil
	}
	if sIsVar && !sb && b[sv] != "" {
		return nil // bound to a term unknown to the store
	}
	if pIsVar && !pb && b[pv] != "" {
		return nil
	}
	if oIsVar && !ob && b[ov] != "" {
		return nil
	}
	emit := func(ts, tp2, to rdf.ID) {
		nb := b.clone()
		if sIsVar {
			nb[sv] = ev.st.TermOf(ts)
		}
		if pIsVar {
			nb[pv] = ev.st.TermOf(tp2)
		}
		if oIsVar {
			nb[ov] = ev.st.TermOf(to)
		}
		yield(nb)
	}
	// Repeated-variable consistency within the atom.
	consistent := func(ts, tp2, to rdf.ID) bool {
		if sIsVar && pIsVar && sv == pv && ts != tp2 {
			return false
		}
		if sIsVar && oIsVar && sv == ov && ts != to {
			return false
		}
		if pIsVar && oIsVar && pv == ov && tp2 != to {
			return false
		}
		return true
	}
	st := ev.st
	switch {
	case sb && pb && ob:
		if st.Has(s, p, o) {
			emit(s, p, o)
		}
	case sb && pb:
		for _, obj := range st.Objects(s, p) {
			if consistent(s, p, obj) {
				emit(s, p, obj)
			}
		}
	case pb && ob:
		for _, sub := range st.Subjects(p, o) {
			if consistent(sub, p, o) {
				emit(sub, p, o)
			}
		}
	case sb && ob:
		for _, pred := range st.Predicates(s, o) {
			if consistent(s, pred, o) {
				emit(s, pred, o)
			}
		}
	case pb:
		for _, t := range st.ScanPredicate(p) {
			if consistent(t.S, t.P, t.O) {
				emit(t.S, t.P, t.O)
			}
		}
	case sb:
		// Subject-only: the subject's full edge list from the SPO index
		// replaces the old store scan.
		preds, objs := st.SubjectEdges(s)
		for i := range preds {
			if consistent(s, preds[i], objs[i]) {
				emit(s, preds[i], objs[i])
			}
		}
	case ob:
		subs, preds := st.ObjectEdges(o)
		for i := range subs {
			if consistent(subs[i], preds[i], o) {
				emit(subs[i], preds[i], o)
			}
		}
	default:
		for _, t := range st.Triples() {
			if consistent(t.S, t.P, t.O) {
				emit(t.S, t.P, t.O)
			}
		}
	}
	return nil
}

// pathResolver maps path-expression IRI text to store IDs, expanding
// prefixed names against the prologue first.
func (ev *evaluator) pathResolver() pathcomp.Resolver {
	return func(iri string) (rdf.ID, bool) {
		full := ev.expand(iri, strings.Contains(iri, ":") && !strings.Contains(iri, "://"))
		if iri == sparql.RDFType {
			full = sparql.RDFType
		}
		return ev.st.Lookup(full)
	}
}

func (ev *evaluator) path(pp *sparql.PathPattern, in []binding) ([]binding, error) {
	resolver := ev.pathResolver()
	// Compile once per pattern — the automaton is shared by every
	// binding below (and by re-evaluations of the same shape elsewhere
	// in the query, through the per-snapshot cache).
	cp := ev.pathCache().Compile(ev.st, pp.Path, resolver)
	// Loop nodes for the same-variable case are binding-independent;
	// compute them once, on first need.
	var loops []rdf.ID
	loopsDone := false
	var out []binding
	for _, b := range in {
		sTxt, sConst := ev.termText(pp.S)
		sName, _ := varName(pp.S)
		if !sConst {
			if cur, ok := b[sName]; ok {
				sTxt, sConst = cur, true
			}
		}
		oTxt, oConst := ev.termText(pp.O)
		oName, _ := varName(pp.O)
		if !oConst {
			if cur, ok := b[oName]; ok {
				oTxt, oConst = cur, true
			}
		}
		switch {
		case sConst && oConst:
			sid, ok1 := ev.st.Lookup(sTxt)
			oid, ok2 := ev.st.Lookup(oTxt)
			if ok1 && ok2 && cp.Holds(sid, oid) {
				out = append(out, b.clone())
			}
		case sConst:
			sid, ok := ev.st.Lookup(sTxt)
			if !ok {
				continue
			}
			for _, n := range cp.From(sid) {
				nb := b.clone()
				nb[oName] = ev.st.TermOf(n)
				out = append(out, nb)
			}
		case oConst:
			// Object bound, subject free: evaluate the path in reverse
			// from the object instead of enumerating every pair and
			// filtering — which also fixes the old limit bug where pairs
			// were capped at MaxRows BEFORE the object filter, silently
			// dropping matches past the cap.
			oid, ok := ev.st.Lookup(oTxt)
			if !ok {
				continue
			}
			for _, n := range cp.To(oid) {
				nb := b.clone()
				nb[sName] = ev.st.TermOf(n)
				out = append(out, nb)
			}
		case sName == oName:
			// Same variable on both ends (?x path ?x): only loop nodes
			// match, computed once in a single sweep.
			if !loopsDone {
				loops, loopsDone = cp.Loops(), true
			}
			for _, id := range loops {
				nb := b.clone()
				nb[sName] = ev.st.TermOf(id)
				out = append(out, nb)
			}
		default:
			// Both ends open: enumerate pairs. The enumeration cap sits
			// one past the row limit so an overflowing result trips the
			// row-limit error below instead of truncating silently.
			// Invariant: the end-of-loop check keeps len(out) <= MaxRows
			// whenever a binding starts, so this limit is always >= 1
			// (0 would mean unlimited to Pairs).
			for _, pair := range cp.Pairs(ev.lim.MaxRows + 1 - len(out)) {
				nb := b.clone()
				nb[sName] = ev.st.TermOf(pair[0])
				nb[oName] = ev.st.TermOf(pair[1])
				out = append(out, nb)
			}
		}
		if len(out) > ev.lim.MaxRows {
			return nil, fmt.Errorf("eval: row limit exceeded")
		}
	}
	return out, nil
}

func (ev *evaluator) optional(opt *sparql.Optional, in []binding) ([]binding, error) {
	var out []binding
	for _, b := range in {
		extended, err := ev.pattern(opt.Inner, []binding{b})
		if err != nil {
			return nil, err
		}
		if len(extended) > 0 {
			out = append(out, extended...)
		} else {
			out = append(out, b)
		}
		if len(out) > ev.lim.MaxRows {
			return nil, fmt.Errorf("eval: row limit exceeded")
		}
	}
	return out, nil
}

func (ev *evaluator) minus(m *sparql.MinusGraph, in []binding) ([]binding, error) {
	removed, err := ev.pattern(m.Inner, []binding{{}})
	if err != nil {
		return nil, err
	}
	var out []binding
	for _, b := range in {
		excluded := false
		for _, r := range removed {
			if compatibleSharing(b, r) {
				excluded = true
				break
			}
		}
		if !excluded {
			out = append(out, b)
		}
	}
	return out, nil
}

// compatibleSharing implements MINUS semantics: b is removed when it is
// compatible with r and they share at least one variable.
func compatibleSharing(b, r binding) bool {
	shared := false
	for k, v := range r {
		if bv, ok := b[k]; ok {
			if bv != v {
				return false
			}
			shared = true
		}
	}
	return shared
}

func (ev *evaluator) bind(bn *sparql.Bind, in []binding) ([]binding, error) {
	var out []binding
	for _, b := range in {
		v, err := ev.eval(bn.Expr, b)
		nb := b.clone()
		// An empty lexical form is the Unbound marker: bind nothing,
		// exactly like the columnar executor's pool.
		if err == nil && v.text() != Unbound {
			nb[bn.Var.Value] = v.text()
		}
		out = append(out, nb)
	}
	return out, nil
}

func (ev *evaluator) values(vd *sparql.InlineData, in []binding) ([]binding, error) {
	var out []binding
	for _, b := range in {
		for ri, row := range vd.Rows {
			nb := b.clone()
			ok := true
			for ci, v := range vd.Vars {
				if ci < len(vd.Undef[ri]) && vd.Undef[ri][ci] {
					continue
				}
				if ci >= len(row) {
					continue
				}
				txt, _ := ev.termText(row[ci])
				if txt == Unbound {
					// Empty lexical form: constrains nothing, like UNDEF.
					continue
				}
				if cur, bound := nb[v.Value]; bound && cur != txt {
					ok = false
					break
				}
				nb[v.Value] = txt
			}
			if ok {
				out = append(out, nb)
			}
		}
	}
	return out, nil
}

func (ev *evaluator) subselect(ss *sparql.SubSelect, in []binding) ([]binding, error) {
	sub, err := ev.query(ss.Query)
	if err != nil {
		return nil, err
	}
	var out []binding
	for _, b := range in {
		for _, row := range sub.Rows {
			nb := b.clone()
			ok := true
			for i, v := range sub.Vars {
				if row[i] == Unbound {
					continue
				}
				if cur, bound := nb[v]; bound && cur != row[i] {
					ok = false
					break
				}
				nb[v] = row[i]
			}
			if ok {
				out = append(out, nb)
			}
		}
		if len(out) > ev.lim.MaxRows {
			return nil, fmt.Errorf("eval: row limit exceeded")
		}
	}
	return out, nil
}

func (ev *evaluator) filter(c sparql.Expr, in []binding) ([]binding, error) {
	var out []binding
	for _, b := range in {
		v, err := ev.eval(c, b)
		if err == nil && v.truthy() {
			out = append(out, b)
		}
	}
	return out, nil
}

// ---------- SELECT finishing: grouping, ordering, projection ----------

func (ev *evaluator) finishSelect(q *sparql.Query, rows []env) (*Result, error) {
	if hasAggregates(q) {
		return ev.finishAggregate(q, rows)
	}
	res := ev.projectSelect(q, rows)
	ev.applyOrder(q, res, rows)
	applyDistinct(q, res)
	applySlice(q, res)
	return res, nil
}

// hasAggregates reports whether the query needs grouped evaluation.
func hasAggregates(q *sparql.Query) bool {
	if len(q.Mods.GroupBy) > 0 {
		return true
	}
	for _, it := range q.Select {
		if containsAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// projectSelect builds the projected result rows (no solution
// modifiers applied): plain variables copy through, expression
// projections evaluate per row.
func (ev *evaluator) projectSelect(q *sparql.Query, rows []env) *Result {
	res := &Result{}
	if q.SelectStar {
		seen := map[string]bool{}
		for _, b := range rows {
			b.eachBound(func(v string) {
				if !strings.HasPrefix(v, "_:") && !seen[v] {
					seen[v] = true
					res.Vars = append(res.Vars, v)
				}
			})
		}
		sort.Strings(res.Vars)
	} else {
		for _, it := range q.Select {
			res.Vars = append(res.Vars, it.Var.Value)
		}
	}
	for _, b := range rows {
		row := make([]string, len(res.Vars))
		for i, v := range res.Vars {
			row[i], _ = b.lookupVar(v)
		}
		// Expression projections.
		for i, it := range q.Select {
			if it.Expr != nil {
				if val, err := ev.eval(it.Expr, b); err == nil {
					row[i] = val.text()
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

func containsAggregate(e sparql.Expr) bool {
	found := false
	sparql.WalkExpr(e, func(x sparql.Expr) bool {
		if _, ok := x.(*sparql.AggregateExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// packStrings encodes a string tuple injectively by prefixing every
// part with its byte length. Joining with a separator byte is not
// injective — ("a\x00", "b") and ("a", "\x00b") both join to the same
// string — which silently merged distinct GROUP BY keys (and DISTINCT
// rows) containing NUL bytes.
func packStrings(parts []string) string {
	n := 4 * len(parts)
	for _, p := range parts {
		n += len(p)
	}
	var b strings.Builder
	b.Grow(n)
	for _, p := range parts {
		n := len(p)
		b.WriteByte(byte(n))
		b.WriteByte(byte(n >> 8))
		b.WriteByte(byte(n >> 16))
		b.WriteByte(byte(n >> 24))
		b.WriteString(p)
	}
	return b.String()
}

// groupData is one GROUP BY group: its key values and member rows.
type groupData struct {
	key     []string
	members []env
}

func (ev *evaluator) finishAggregate(q *sparql.Query, rows []env) (*Result, error) {
	// Group rows by the GROUP BY keys.
	groups := map[string]*groupData{}
	var order []string
	for _, b := range rows {
		var key []string
		for _, gk := range q.Mods.GroupBy {
			v, err := ev.eval(gk.Expr, b)
			if err != nil {
				key = append(key, "")
				continue
			}
			key = append(key, v.text())
		}
		ks := packStrings(key)
		g, ok := groups[ks]
		if !ok {
			g = &groupData{key: key}
			groups[ks] = g
			order = append(order, ks)
		}
		g.members = append(g.members, b)
	}
	if len(groups) == 0 && len(q.Mods.GroupBy) == 0 {
		// Aggregation without GROUP BY over the empty solution produces
		// one group (COUNT(*) = 0).
		groups[""] = &groupData{}
		order = append(order, "")
	}
	res := &Result{}
	for _, it := range q.Select {
		res.Vars = append(res.Vars, it.Var.Value)
	}
	var rowGroups []*groupData
	for _, ks := range order {
		g := groups[ks]
		// HAVING.
		keep := true
		for _, h := range q.Mods.Having {
			v, err := ev.evalAggregateExpr(h, g.members)
			if err != nil || !v.truthy() {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		row := make([]string, len(q.Select))
		for i, it := range q.Select {
			if it.Expr != nil {
				v, err := ev.evalAggregateExpr(it.Expr, g.members)
				if err == nil {
					row[i] = v.text()
				}
				continue
			}
			// A plain variable in an aggregate query is a group key;
			// take it from any member.
			if len(g.members) > 0 {
				row[i], _ = g.members[0].lookupVar(it.Var.Value)
			}
		}
		res.Rows = append(res.Rows, row)
		rowGroups = append(rowGroups, g)
	}
	ev.orderAggregated(q, res, rowGroups)
	applyDistinct(q, res)
	applySlice(q, res)
	return res, nil
}

// orderAggregated sorts aggregate results: order keys referring to a
// projected alias sort by that column; other keys (including aggregate
// expressions) evaluate per group.
func (ev *evaluator) orderAggregated(q *sparql.Query, res *Result, rowGroups []*groupData) {
	if len(q.Mods.OrderBy) == 0 || len(res.Rows) != len(rowGroups) {
		return
	}
	colOf := func(name string) int {
		for i, v := range res.Vars {
			if v == name {
				return i
			}
		}
		return -1
	}
	type pair struct {
		row []string
		g   *groupData
	}
	pairs := make([]pair, len(res.Rows))
	for i := range res.Rows {
		pairs[i] = pair{res.Rows[i], rowGroups[i]}
	}
	keyValue := func(p pair, k sparql.OrderKey) (value, bool) {
		if te, ok := k.Expr.(*sparql.TermExpr); ok && te.Term.Kind == sparql.TermVar {
			if c := colOf(te.Term.Value); c >= 0 {
				return textValue(p.row[c]), true
			}
		}
		v, err := ev.evalAggregateExpr(k.Expr, p.g.members)
		return v, err == nil
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		for _, k := range q.Mods.OrderBy {
			vi, oki := keyValue(pairs[i], k)
			vj, okj := keyValue(pairs[j], k)
			if !oki || !okj {
				continue
			}
			c := compareValues(vi, vj)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range pairs {
		res.Rows[i] = pairs[i].row
	}
}

func (ev *evaluator) applyOrder(q *sparql.Query, res *Result, rows []env) {
	if len(q.Mods.OrderBy) == 0 || len(res.Rows) != len(rows) {
		return
	}
	type pair struct {
		row []string
		b   env
	}
	pairs := make([]pair, len(res.Rows))
	for i := range res.Rows {
		pairs[i] = pair{res.Rows[i], rows[i]}
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		for _, k := range q.Mods.OrderBy {
			vi, ei := ev.eval(k.Expr, pairs[i].b)
			vj, ej := ev.eval(k.Expr, pairs[j].b)
			if ei != nil || ej != nil {
				continue
			}
			c := compareValues(vi, vj)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	for i := range pairs {
		res.Rows[i] = pairs[i].row
	}
}

func applyDistinct(q *sparql.Query, res *Result) {
	if !q.Distinct && !q.Reduced {
		return
	}
	seen := map[string]bool{}
	var out [][]string
	for _, row := range res.Rows {
		k := packStrings(row)
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	res.Rows = out
}

func applySlice(q *sparql.Query, res *Result) {
	if q.Mods.HasOffset {
		off := int(q.Mods.Offset)
		if off >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[off:]
		}
	}
	if q.Mods.HasLimit && int64(len(res.Rows)) > q.Mods.Limit {
		res.Rows = res.Rows[:q.Mods.Limit]
	}
}
