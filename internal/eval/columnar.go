package eval

import (
	"fmt"
	"runtime"
	"strings"

	"sparqlog/internal/exec"
	"sparqlog/internal/lint"
	"sparqlog/internal/plan"
	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// This file is the slot-based columnar executor — the default
// evaluation path. The WHERE clause compiles once into a tree of
// internal/exec operators over a query-wide Schema (every variable
// gets a dense slot; plan variable indexes are slots), and solutions
// flow through it as ID batches. Strings appear only at the edges:
// constants resolve against the snapshot dictionary at compile time,
// computed values (BIND, VALUES, subquery rows) intern into the
// execution's Pool overflow, and projection/ORDER BY/aggregation
// materialize text lazily per touched cell. The legacy materialized
// path (Limits.Legacy) remains as the differential reference; the
// compiler mirrors its operator semantics — including evaluation
// order, row-budget checkpoints, and lazy evaluation of subqueries and
// MINUS bodies behind empty inputs — so the two produce identical
// solution multisets in identical order.
//
// Two deliberate behavioural improvements over the legacy path (both
// strictly enlarge the set of queries that succeed): ASK stops at the
// first solution instead of materializing the full WHERE result, and
// DISTINCT/LIMIT without ORDER BY stream — dedup on packed ID tuples,
// early exit once the limit is reached — so a query can succeed where
// the legacy evaluator overflowed MaxRows computing rows it would
// have sliced away.

// colExec is one columnar query execution.
type colExec struct {
	ev     *evaluator
	schema *exec.Schema
	pool   *exec.Pool
	ec     *exec.Ctx

	// existsPlans caches the compiled subtree per EXISTS pattern node:
	// re-evaluated per row, compiled once.
	existsPlans map[sparql.Pattern]*existsPlan

	// recovers tracks the stats of every recover operator in the plan
	// (EXISTS subtrees included), harvested after execution into the
	// evaluator's silent-SERVICE-recovery count.
	recovers []*exec.OpStats

	// Morsel-driven intra-query parallelism (exec.Parallel). The
	// compiler places at most one exchange per execution, on the main
	// pipeline, around the first basic-graph-pattern run whose plan
	// estimates clear parallelMinRows. Worker chains hold only join and
	// path operators — everything touching the Pool (filters, BIND,
	// VALUES, subqueries) is single-threaded by construction, so it
	// stays upstream of the exchange or downstream of the merge.
	parWorkers int            // resolved worker budget (>= 1)
	parDone    bool           // at most one exchange per execution
	noPar      int            // > 0 inside correlated/replayed subtrees
	chainClean bool           // main chain holds only unit/join/path ops so far
	parallel   *exec.Parallel // the placed exchange, for Close + stats

	// aggPlan is the compiled aggregate finishing plan (hidden slots,
	// rewritten expressions); nil when the query has no aggregation or
	// its shape needs the legacy-style finisher over drained rows.
	aggPlan *aggPlan
}

// parallelMinRows gates the exchange on the planner's peak intermediate
// cardinality estimate: below it, worker startup and morsel copies cost
// more than the fan-out buys.
var parallelMinRows = 4096.0

type existsPlan struct {
	seed *exec.Seed
	root exec.Operator
	err  error
}

// rowEnv adapts one batch row to the expression evaluator's env: text
// materializes only when an expression touches a variable.
type rowEnv struct {
	ce  *colExec
	b   *exec.Batch
	row int
}

func (r rowEnv) lookupVar(name string) (string, bool) {
	slot, ok := r.ce.schema.SlotOf(name)
	if !ok {
		return "", false
	}
	id := r.b.Get(slot, r.row)
	if id == exec.Unbound {
		return "", false
	}
	return r.ce.pool.Text(id), true
}

func (r rowEnv) eachBound(fn func(string)) {
	for s := 0; s < r.ce.schema.Len(); s++ {
		if r.b.Get(s, r.row) != exec.Unbound {
			fn(r.ce.schema.Name(s))
		}
	}
}

func (r rowEnv) exists(ev *evaluator, p sparql.Pattern) (bool, error) {
	return r.ce.exists(p, r.b, r.row)
}

func (ev *evaluator) queryColumnar(q *sparql.Query) (*Result, error) {
	ce := &colExec{ev: ev, schema: exec.NewSchema(), pool: exec.NewPool(ev.st)}
	ev.colPool = ce.pool
	// Harvest runtime recoveries after execution, whichever return path
	// is taken (subquery executions accumulate into the same evaluator).
	defer func() {
		for _, st := range ce.recovers {
			ev.recovered += int(st.Recovered)
		}
	}()
	ctx := ev.ctx
	if ctx == nil {
		return nil, fmt.Errorf("eval: nil context")
	}
	ce.ec = exec.NewCtx(ctx)
	ce.ec.MaxRows = ev.lim.MaxRows
	// Harvest the probe meter whichever return path is taken; subquery
	// executions build their own colExec and accumulate the same way.
	defer func() { ev.probes += ce.ec.Probes }()
	// Resolve the intra-query worker budget (Limits.Parallel; 0 = all of
	// GOMAXPROCS) and expose it on the exec context so top-level path
	// sweeps can fan out even without an exchange. The exchange teardown
	// defer must run before the probe harvest above (defers are LIFO):
	// Close joins the workers and folds their probe counts into ce.ec.
	ce.parWorkers = ev.lim.Parallel
	if ce.parWorkers <= 0 {
		ce.parWorkers = runtime.GOMAXPROCS(0)
	}
	if ce.parWorkers > 64 {
		ce.parWorkers = 64
	}
	// Streaming early-exit consumers keep the serial pipeline: ASK stops
	// at the first row, and a small LIMIT without ORDER BY or
	// aggregation stops the pull after a handful of batches — an
	// exchange materializes whole morsels and would do far more work
	// than the serial early exit ever pulls.
	if q.Type == sparql.AskQuery {
		ce.parWorkers = 1
	} else if q.Type == sparql.SelectQuery && q.Mods.HasLimit &&
		!hasAggregates(q) && len(q.Mods.OrderBy) == 0 {
		want := int(q.Mods.Limit)
		if q.Mods.HasOffset {
			want += int(q.Mods.Offset)
		}
		if float64(want) < parallelMinRows {
			ce.parWorkers = 1
		}
	}
	ce.chainClean = true
	ce.ec.Parallel = ce.parWorkers
	defer func() {
		if ce.parallel != nil {
			ce.parallel.Close()
			ev.parInfo = &ParallelInfo{Workers: ce.parallel.Workers(), Stats: ce.parallel.WorkerStats()}
		}
	}()
	ce.collectVars(q)
	// Aggregate planning assigns the hidden output slots, so it must
	// run while the schema is still open — before the width freezes.
	if q.Type == sparql.SelectQuery && hasAggregates(q) {
		ce.aggPlan = ce.planAggregate(q)
	}
	width := ce.schema.Len()
	var root exec.Operator = exec.NewUnit(width)
	var err error
	bound := map[string]bool{}
	switch {
	case q.Where == nil:
		// No WHERE: the unit row flows straight to the modifiers.
	case !ev.lim.NoStatic && lint.EmptyUnder(q, ev.prefixes):
		// The linter proved the WHERE clause can never produce a row
		// (unsatisfiable filter, empty VALUES, LIMIT 0 subquery, …):
		// short-circuit to an empty source without compiling the tree
		// or touching a single snapshot index (Result.Probes stays 0).
		root = exec.NewSeed(width)
	default:
		root, err = ce.compile(q.Where, root, bound)
		if err != nil {
			return nil, err
		}
	}
	if q.TrailingValues != nil {
		root = ce.compileValues(q.TrailingValues, root)
	}
	switch q.Type {
	case sparql.AskQuery:
		n, err := exec.Count(ce.ec, root, 1)
		if err != nil {
			return nil, err
		}
		return &Result{Bool: n > 0}, nil
	case sparql.SelectQuery:
		return ce.finishSelect(q, root)
	case sparql.ConstructQuery:
		envs, err := ce.drain(root)
		if err != nil {
			return nil, err
		}
		return ev.finishConstruct(q, envs)
	case sparql.DescribeQuery:
		envs, err := ce.drain(root)
		if err != nil {
			return nil, err
		}
		return ev.finishDescribe(q, envs)
	}
	return nil, fmt.Errorf("eval: unknown query type")
}

// collectVars assigns a slot to every variable the query can bind,
// anywhere: the WHERE tree (including EXISTS patterns inside filter
// and bind expressions, which sparql.Walk descends into), subquery
// projections, trailing VALUES, and EXISTS patterns inside projection
// and modifier expressions. The schema is complete before the first
// operator is built, so every batch has the full width.
func (ce *colExec) collectVars(q *sparql.Query) {
	addTerm := func(t sparql.Term) {
		if name, ok := varName(t); ok {
			ce.schema.Slot(name)
		}
	}
	handler := func(n sparql.Pattern) bool {
		switch x := n.(type) {
		case *sparql.TriplePattern:
			addTerm(x.S)
			addTerm(x.P)
			addTerm(x.O)
		case *sparql.PathPattern:
			addTerm(x.S)
			addTerm(x.O)
		case *sparql.Bind:
			ce.schema.Slot(x.Var.Value)
		case *sparql.InlineData:
			for _, v := range x.Vars {
				ce.schema.Slot(v.Value)
			}
		case *sparql.GraphGraph:
			addTerm(x.Name)
		case *sparql.SubSelect:
			// A subquery only exposes its projected variables; its
			// internal variables are scoped to its own execution and
			// must not widen every outer batch with dead columns.
			if x.Query != nil {
				for v := range x.Query.ProjectedVars() {
					ce.schema.Slot(v)
				}
			}
			return false
		}
		return true
	}
	if q.Where != nil {
		sparql.Walk(q.Where, handler)
	}
	if q.TrailingValues != nil {
		for _, v := range q.TrailingValues.Vars {
			ce.schema.Slot(v.Value)
		}
	}
	var exprs []sparql.Expr
	for _, it := range q.Select {
		exprs = append(exprs, it.Expr)
	}
	for _, k := range q.Mods.OrderBy {
		exprs = append(exprs, k.Expr)
	}
	for _, g := range q.Mods.GroupBy {
		exprs = append(exprs, g.Expr)
	}
	exprs = append(exprs, q.Mods.Having...)
	for _, e := range exprs {
		if e != nil {
			sparql.WalkExprPatterns(e, handler)
		}
	}
}

// slot returns the slot of a variable collected by collectVars; a miss
// is a compiler bug (the schema is sealed once operators exist).
func (ce *colExec) slot(name string) int {
	s, ok := ce.schema.SlotOf(name)
	if !ok {
		panic("eval: variable " + name + " missed by collectVars")
	}
	return s
}

// compile lowers a pattern onto an operator consuming in. bound tracks
// variables possibly bound by already-compiled operators — planning
// input only, never correctness (exactly like the legacy evaluator's
// reorder seeds).
func (ce *colExec) compile(p sparql.Pattern, in exec.Operator, bound map[string]bool) (exec.Operator, error) {
	ev := ce.ev
	width := ce.schema.Len()
	switch n := p.(type) {
	case *sparql.Group:
		elems := n.Elems
		if !ev.lim.NoReorder {
			elems = ev.reorderElems(elems, copyBound(bound))
		}
		var filters []sparql.Expr
		cur := in
		var err error
		for i := 0; i < len(elems); {
			el := elems[i]
			if f, ok := el.(*sparql.Filter); ok {
				filters = append(filters, f.Constraint)
				i++
				continue
			}
			if run, span := ce.parallelRun(elems[i:], bound); run != nil {
				cur, err = ce.compileParallelRun(run, cur, bound)
				if err != nil {
					return nil, err
				}
				for _, e := range elems[i : i+span] {
					if f, ok := e.(*sparql.Filter); ok {
						filters = append(filters, f.Constraint)
					} else {
						ev.markPatternVars(e, bound)
					}
				}
				// The exchange's merge is the pipeline breaker; anything
				// compiled after it runs on the consumer goroutine only.
				ce.chainClean = false
				i += span
				continue
			}
			cur, err = ce.compile(el, cur, bound)
			if err != nil {
				return nil, err
			}
			ev.markPatternVars(el, bound)
			switch el.(type) {
			case *sparql.TriplePattern, *sparql.PathPattern, *sparql.Group:
				// Joins and paths never touch the Pool; nested groups
				// account for themselves through this same loop.
			default:
				ce.chainClean = false
			}
			i++
		}
		if len(filters) > 0 {
			// Filter expressions materialize text through the Pool, so
			// from here on the main chain is no longer exchange-safe.
			ce.chainClean = false
		}
		for _, f := range filters {
			cur = ce.compileFilter(f, cur)
		}
		return cur, nil
	case *sparql.TriplePattern:
		return exec.NewJoin(ev.st, in, ce.compileAtom(n), true), nil
	case *sparql.PathPattern:
		return ce.compilePath(n, in), nil
	case *sparql.Union:
		lseed, rseed := exec.NewSeed(width), exec.NewSeed(width)
		ce.noPar++ // branches are reseeded per upstream batch: no exchange inside
		left, err := ce.compile(n.Left, lseed, copyBound(bound))
		if err != nil {
			ce.noPar--
			return nil, err
		}
		right, err := ce.compile(n.Right, rseed, copyBound(bound))
		ce.noPar--
		if err != nil {
			return nil, err
		}
		return exec.NewUnion(in, left, lseed, right, rseed), nil
	case *sparql.Optional:
		seed := exec.NewSeed(width)
		ce.noPar++ // reseeded per probe row: no exchange inside
		inner, err := ce.compile(n.Inner, seed, copyBound(bound))
		ce.noPar--
		if err != nil {
			return nil, err
		}
		return exec.NewOptional(in, inner, seed), nil
	case *sparql.MinusGraph:
		// The removal set evaluates from the unit binding, lazily (the
		// legacy group short-circuits before a MINUS whose input died).
		ce.noPar++ // off the main pipeline: no exchange inside
		inner, err := ce.compile(n.Inner, exec.NewUnit(width), map[string]bool{})
		ce.noPar--
		if err != nil {
			return nil, err
		}
		return exec.NewMinus(in, inner), nil
	case *sparql.GraphGraph:
		cur := in
		if v, ok := varName(n.Name); ok {
			slot := ce.slot(v)
			gid := ce.pool.Intern(DefaultGraph)
			cur = exec.NewApply(in, false, func(c *exec.Ctx, b *exec.Batch, row int, out *exec.Batch) error {
				if cv := b.Get(slot, row); cv != exec.Unbound && cv != gid {
					return nil
				}
				r := out.AppendRow(b, row)
				out.Set(slot, r, gid)
				return nil
			})
			bound[v] = true
		}
		return ce.compile(n.Inner, cur, bound)
	case *sparql.ServiceGraph:
		if !n.Silent {
			return ce.compile(n.Inner, in, bound)
		}
		seed := exec.NewSeed(width)
		ce.noPar++ // reseeded per probe row: no exchange inside
		inner, err := ce.compile(n.Inner, seed, copyBound(bound))
		ce.noPar--
		if err != nil {
			// SILENT swallows the failure; the input passes through,
			// as the legacy evaluator's error fallback did. Counted as
			// a recovery: compile-time failure is no-op federation too.
			ev.recovered++
			return in, nil
		}
		op := exec.NewRecover(in, inner, seed)
		ce.recovers = append(ce.recovers, op.Stats())
		return op, nil
	case *sparql.Filter:
		return ce.compileFilter(n.Constraint, in), nil
	case *sparql.Bind:
		slot := ce.slot(n.Var.Value)
		expr := n.Expr
		return exec.NewApply(in, false, func(c *exec.Ctx, b *exec.Batch, row int, out *exec.Batch) error {
			v, err := ev.eval(expr, rowEnv{ce, b, row})
			r := out.AppendRow(b, row)
			if err == nil {
				// Intern maps the empty lexical form to Unbound; skip
				// the write so an existing binding is not clobbered
				// (the legacy path skips the map write the same way).
				if id := ce.pool.Intern(v.text()); id != exec.Unbound {
					out.Set(slot, r, id)
				}
			}
			return nil
		}), nil
	case *sparql.InlineData:
		return ce.compileValues(n, in), nil
	case *sparql.SubSelect:
		return ce.compileSubselect(n, in), nil
	}
	return nil, fmt.Errorf("eval: unsupported pattern %T", p)
}

func copyBound(bound map[string]bool) map[string]bool {
	out := make(map[string]bool, len(bound))
	for k, v := range bound {
		out[k] = v
	}
	return out
}

func (ce *colExec) compileFilter(e sparql.Expr, in exec.Operator) exec.Operator {
	return exec.NewFilter(in, func(c *exec.Ctx, b *exec.Batch, row int) bool {
		v, err := ce.ev.eval(e, rowEnv{ce, b, row})
		return err == nil && v.truthy()
	})
}

// compileAtom resolves a triple pattern against the dictionary:
// variables become slot references, constants become IDs (or the
// impossible constant when absent — such an atom matches nothing,
// exactly like the legacy path).
func (ce *colExec) compileAtom(tp *sparql.TriplePattern) plan.Atom {
	ref := func(t sparql.Term) plan.TermRef {
		if txt, ok := ce.ev.termText(t); ok {
			if id, known := ce.ev.st.Lookup(txt); known {
				return plan.C(id)
			}
			return plan.C(^rdf.ID(0))
		}
		name, _ := varName(t)
		return plan.V(ce.slot(name))
	}
	return plan.Atom{S: ref(tp.S), P: ref(tp.P), O: ref(tp.O)}
}

// compilePath compiles the path expression once (through the shared
// per-snapshot cache) and routes its sorted []rdf.ID results straight
// into batch columns — no per-node string round trips.
func (ce *colExec) compilePath(pp *sparql.PathPattern, in exec.Operator) exec.Operator {
	ev := ce.ev
	cp := ev.pathCache().Compile(ev.st, pp.Path, ev.pathResolver())
	end := func(t sparql.Term) exec.PathEnd {
		if txt, ok := ev.termText(t); ok {
			id, known := ev.st.Lookup(txt)
			return exec.PathConst(id, known)
		}
		name, _ := varName(t)
		return exec.PathVar(ce.slot(name))
	}
	return exec.NewPath(ev.st, in, cp, end(pp.S), end(pp.O))
}

// parallelRun decides whether the group elements starting at rest[0]
// open a run worth fanning out: at least two consecutive triple/path
// patterns (interleaved FILTERs are transparent — they apply after the
// merge regardless of where they sit in the group), reached with the
// main chain still exchange-safe, outside any replayed subtree, with no
// exchange placed yet, and with a planner estimate that clears
// parallelMinRows. It returns the run's patterns and how many group
// elements the run spans (patterns plus interior filters); (nil, 0)
// means compile serially.
func (ce *colExec) parallelRun(rest []sparql.Pattern, bound map[string]bool) ([]sparql.Pattern, int) {
	if ce.parWorkers <= 1 || ce.parDone || ce.noPar > 0 || !ce.chainClean {
		return nil, 0
	}
	var run []sparql.Pattern
	span := 0
scan:
	for _, el := range rest {
		switch el.(type) {
		case *sparql.TriplePattern, *sparql.PathPattern:
			run = append(run, el)
		case *sparql.Filter:
			// Transparent; trimmed below if the run ends before it.
		default:
			break scan
		}
		span++
	}
	for span > 0 {
		if _, ok := rest[span-1].(*sparql.Filter); !ok {
			break
		}
		span--
	}
	if len(run) < 2 || !ce.parallelWorthIt(run, bound) {
		return nil, 0
	}
	ce.parDone = true
	return run, span
}

// parallelWorthIt estimates the run's peak intermediate cardinality:
// the maximum planner Rows[k] over the run's triple patterns (given the
// variables bound so far), with any path pattern contributing the store
// size as an upper-bound proxy (paths have no per-expression model).
func (ce *colExec) parallelWorthIt(run []sparql.Pattern, bound map[string]bool) bool {
	ev := ce.ev
	var triples []*sparql.TriplePattern
	est := 0.0
	for _, el := range run {
		if tp, ok := el.(*sparql.TriplePattern); ok {
			triples = append(triples, tp)
		} else {
			est = float64(ev.st.Stats().Triples)
		}
	}
	if len(triples) > 0 {
		atoms, names := ev.compileBGP(triples)
		initial := make([]bool, len(names))
		for i, name := range names {
			initial[i] = bound[name]
		}
		p := plan.Planner{Stats: ev.st.Stats()}.PlanBound(atoms, len(names), initial)
		for _, r := range p.Rows {
			if r > est {
				est = r
			}
		}
	}
	return est >= parallelMinRows
}

// compileParallelRun places the exchange: run[0] compiles serially as
// the morsel driver; the remaining patterns compile once per worker
// into chains of join/path clones rooted at a private Seed. Clones at
// the same chain position share one row Budget, so the cross-worker
// cumulative row count — and hence the MaxRows outcome — matches the
// serial pipeline's regardless of morsel scheduling.
func (ce *colExec) compileParallelRun(run []sparql.Pattern, in exec.Operator, bound map[string]bool) (exec.Operator, error) {
	driver, err := ce.compile(run[0], in, bound)
	if err != nil {
		return nil, err
	}
	rest := run[1:]
	budgets := make([]*exec.Budget, len(rest))
	for k := range budgets {
		budgets[k] = new(exec.Budget)
	}
	width := ce.schema.Len()
	chains := make([]exec.WorkerChain, ce.parWorkers)
	for w := range chains {
		seed := exec.NewSeed(width)
		var op exec.Operator = seed
		for k, el := range rest {
			switch pat := el.(type) {
			case *sparql.TriplePattern:
				op = exec.NewJoin(ce.ev.st, op, ce.compileAtom(pat), true)
			case *sparql.PathPattern:
				op = ce.compilePath(pat, op)
			}
			exec.ShareBudget(op, budgets[k])
		}
		chains[w] = exec.WorkerChain{Seed: seed, Root: op}
	}
	ce.parallel = exec.NewParallel(driver, chains)
	return ce.parallel, nil
}

func (ce *colExec) compileValues(vd *sparql.InlineData, in exec.Operator) exec.Operator {
	slots := make([]int, len(vd.Vars))
	for i, v := range vd.Vars {
		slots[i] = ce.slot(v.Value)
	}
	rows := make([][]rdf.ID, len(vd.Rows))
	for ri, row := range vd.Rows {
		r := make([]rdf.ID, len(vd.Vars))
		for ci := range vd.Vars {
			r[ci] = exec.Unbound
			if ci < len(vd.Undef[ri]) && vd.Undef[ri][ci] {
				continue
			}
			if ci >= len(row) {
				continue
			}
			txt, _ := ce.ev.termText(row[ci])
			r[ci] = ce.pool.Intern(txt)
		}
		rows[ri] = r
	}
	return exec.NewTableJoin(in, slots, rows, false)
}

// compileSubselect evaluates the subquery lazily — on the first input
// row, so a dead upstream skips it entirely, like the legacy group
// short-circuit — then joins its materialized rows by projected
// variable, interning row text back to IDs once.
func (ce *colExec) compileSubselect(ss *sparql.SubSelect, in exec.Operator) exec.Operator {
	loaded := false
	var slots []int
	var rows [][]rdf.ID
	return exec.NewApply(in, true, func(c *exec.Ctx, b *exec.Batch, row int, out *exec.Batch) error {
		if !loaded {
			sub, err := ce.ev.query(ss.Query)
			if err != nil {
				return err
			}
			slots = make([]int, len(sub.Vars))
			for i, v := range sub.Vars {
				if s, ok := ce.schema.SlotOf(v); ok {
					slots[i] = s
				} else {
					slots[i] = -1
				}
			}
			rows = make([][]rdf.ID, len(sub.Rows))
			for ri, srow := range sub.Rows {
				r := make([]rdf.ID, len(srow))
				for i, cell := range srow {
					r[i] = ce.pool.Intern(cell)
				}
				rows[ri] = r
			}
			loaded = true
		}
		for _, trow := range rows {
			ok := true
			for i, v := range trow {
				if v == exec.Unbound || slots[i] < 0 {
					continue
				}
				if cur := b.Get(slots[i], row); cur != exec.Unbound && cur != v {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			r := out.AppendRow(b, row)
			for i, v := range trow {
				if v != exec.Unbound && slots[i] >= 0 {
					out.Set(slots[i], r, v)
				}
			}
		}
		return nil
	})
}

// exists evaluates an EXISTS pattern under one row, compiling the
// subtree once per pattern node and reseeding it per evaluation. The
// subtree is drained fully — short-circuiting would diverge from the
// legacy reference when the body overflows the row budget.
func (ce *colExec) exists(p sparql.Pattern, b *exec.Batch, row int) (bool, error) {
	sp, ok := ce.existsPlans[p]
	if !ok {
		seed := exec.NewSeed(ce.schema.Len())
		ce.noPar++ // replayed per evaluation row: no exchange inside
		root, err := ce.compile(p, seed, map[string]bool{})
		ce.noPar--
		sp = &existsPlan{seed: seed, root: root, err: err}
		if ce.existsPlans == nil {
			ce.existsPlans = map[sparql.Pattern]*existsPlan{}
		}
		ce.existsPlans[p] = sp
	}
	if sp.err != nil {
		return false, sp.err
	}
	sp.seed.SetRow(b, row)
	sp.root.Reset()
	n, err := exec.Count(ce.ec, sp.root, 0)
	if err != nil {
		return false, err
	}
	return n > 0, nil
}

// drain materializes the stream as expression-visible rows.
func (ce *colExec) drain(root exec.Operator) ([]env, error) {
	batches, err := exec.Materialize(ce.ec, root)
	if err != nil {
		return nil, err
	}
	var envs []env
	for _, b := range batches {
		for r := 0; r < b.Rows(); r++ {
			envs = append(envs, rowEnv{ce, b, r})
		}
	}
	return envs, nil
}

// finishSelect applies solution modifiers as columnar operators where
// the compiled plans allow: GROUP BY/HAVING through exec.GroupBy plus
// per-group filters (planAggregate's rewrite), ORDER BY through
// exec.TopK (bounded-heap when a LIMIT caps the output), DISTINCT
// streaming on packed ID tuples, and LIMIT/OFFSET stopping the pull
// early. Shapes outside the compiled plans (aggregate queries
// planAggregate declined, SELECT *'s variable collection) drain and
// take the legacy-order finishing over materialized rows.
func (ce *colExec) finishSelect(q *sparql.Query, root exec.Operator) (*Result, error) {
	ev := ce.ev
	agg := hasAggregates(q)
	ap := ce.aggPlan
	if agg && ap == nil {
		envs, err := ce.drain(root)
		if err != nil {
			return nil, err
		}
		return ev.finishAggregate(q, envs)
	}
	var gb *exec.GroupBy
	var okeys []orderKeyPlan
	if agg {
		if p, ok := root.(*exec.Parallel); ok && p == ce.parallel {
			// The exchange is the stream's root: switch it into
			// aggregation mode, so workers pre-aggregate morsels into
			// partial tables and only group states cross the merge. The
			// worker-side dictionary view must be the snapshot's
			// (concurrency-safe; worker chains only carry snapshot IDs).
			p.SetAggregate(ap.spec.Keys, ap.spec.Aggs, ev.st.TermOf)
		}
		gb = exec.NewGroupBy(root, ap.spec, ce.pool.Text, ce.pool.Intern)
		root = gb
		for _, h := range ap.having {
			h := h
			root = exec.NewFilter(root, func(c *exec.Ctx, b *exec.Batch, row int) bool {
				v, err := ev.evalAggRow(h, rowEnv{ce, b, row}, gb.SyntheticEmpty())
				return err == nil && v.truthy()
			})
		}
		okeys = ap.order
		// From here on the stream is the rewritten query's: aggregates
		// live in hidden slots, grouping and having are done.
		q = ap.rq
	} else {
		for _, k := range q.Mods.OrderBy {
			okeys = append(okeys, orderKeyPlan{expr: k.Expr, desc: k.Desc})
		}
	}
	evalKey := func(e sparql.Expr, b *exec.Batch, row int) (value, error) {
		if agg {
			return ev.evalAggRow(e, rowEnv{ce, b, row}, gb.SyntheticEmpty())
		}
		return ev.eval(e, rowEnv{ce, b, row})
	}
	var tk *exec.TopK
	orderDone := len(okeys) > 0
	if orderDone {
		// Bound the sort when a LIMIT caps the output and nothing
		// between the sort and the slice (DISTINCT, SELECT *'s
		// variable collection over all rows) needs the full set.
		keep := -1
		if q.Mods.HasLimit && !q.Distinct && !q.Reduced && !q.SelectStar &&
			q.Mods.Limit < 1<<31 && q.Mods.Offset < 1<<31 {
			k := q.Mods.Limit
			if q.Mods.HasOffset {
				k += q.Mods.Offset
			}
			keep = int(k)
		}
		keys := okeys
		keyFn := func(b *exec.Batch, row int, out []exec.SortKey) {
			for i, k := range keys {
				v, err := evalKey(k.expr, b, row)
				if err != nil {
					if k.errAsEmpty {
						// A projected-column key reads the cell text,
						// and an errored cell is "" — a valid key.
						out[i] = exec.SortKey{}
					} else {
						out[i] = exec.SortKey{Err: true}
					}
					continue
				}
				if k.reparse {
					v = textValue(v.text())
				}
				out[i] = exec.SortKey{IsNum: v.isNum, Num: v.num, Lex: v.lex}
			}
		}
		cmp := func(a, b []exec.SortKey) int {
			for i := range keys {
				ai, bi := a[i], b[i]
				if ai.Err || bi.Err {
					continue
				}
				var c int
				if ai.IsNum && bi.IsNum {
					switch {
					case ai.Num < bi.Num:
						c = -1
					case ai.Num > bi.Num:
						c = 1
					}
				} else {
					c = strings.Compare(ai.Lex, bi.Lex)
				}
				if c == 0 {
					continue
				}
				if keys[i].desc {
					return -c
				}
				return c
			}
			return 0
		}
		tk = exec.NewTopK(root, keep, len(keys), keyFn, cmp)
		root = tk
	}
	streamDistinct, streamSliced := false, false
	if !q.SelectStar {
		if (q.Distinct || q.Reduced) && allPlainVars(q.Select) {
			var slots []int
			for _, it := range q.Select {
				if s, ok := ce.schema.SlotOf(it.Var.Value); ok {
					slots = append(slots, s)
				}
				// A projected variable the query never binds is
				// constant-unbound across rows; it cannot split
				// dedup classes, so it is simply left out of the key.
			}
			if p, ok := root.(*exec.Parallel); ok && p == ce.parallel {
				// The exchange is the stream's root: let each worker
				// pre-deduplicate its morsels on the projected slots so
				// only first-in-morsel occurrences cross the merge. The
				// serial DISTINCT below still sees every cross-morsel
				// first occurrence, in order, and emits identical rows.
				p.SetDedup(slots)
			}
			root = exec.NewDistinct(root, slots)
			streamDistinct = true
		}
		if (q.Mods.HasLimit || q.Mods.HasOffset) && (streamDistinct || !(q.Distinct || q.Reduced)) {
			off, lim := 0, -1
			if q.Mods.HasOffset {
				off = int(q.Mods.Offset)
			}
			if q.Mods.HasLimit {
				lim = int(q.Mods.Limit)
			}
			root = exec.NewLimit(root, off, lim)
			streamSliced = true
		}
	}
	envs, err := ce.drain(root)
	if err != nil {
		return nil, err
	}
	if gb != nil || tk != nil {
		mi := &ModifierInfo{}
		if gb != nil {
			info := gb.Info()
			mi.Groups, mi.GroupRows, mi.PartialTables = info.Groups, info.InputRows, info.PartialTables
		}
		if tk != nil {
			info := tk.Info()
			mi.TopKMode, mi.TopKScanned, mi.TopKKept = info.Mode, info.Scanned, info.Kept
		}
		ev.modInfo = mi
	}
	var res *Result
	if agg {
		res = ce.projectAgg(q, envs, gb.SyntheticEmpty())
	} else {
		res = ev.projectSelect(q, envs)
		// TopK already emitted sorted order (okeys covers every ORDER BY
		// key), so the legacy applyOrder re-sort never runs here.
	}
	if !streamDistinct {
		applyDistinct(q, res)
	}
	if !streamSliced {
		applySlice(q, res)
	}
	return res, nil
}

// allPlainVars reports whether every projection item is a bare
// variable (no AS expressions).
func allPlainVars(items []sparql.SelectItem) bool {
	for _, it := range items {
		if it.Expr != nil {
			return false
		}
	}
	return true
}
