package eval

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// FuzzExecDifferential drives the columnar executor against the legacy
// materialized path on randomized stores and operator trees (BGPs with
// repeated variables, OPTIONAL, UNION, MINUS, FILTER, EXISTS, VALUES,
// property paths, DISTINCT, ASK). Any divergence in errors, the ASK
// answer, the projection, or the solution multiset is a finding.
func FuzzExecDifferential(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1337, 99991} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		st := rdf.NewStore()
		nNodes := 3 + rng.Intn(10)
		nPreds := 1 + rng.Intn(3)
		for i := 0; i < 4+rng.Intn(40); i++ {
			st.Add(
				fmt.Sprintf("urn:n%d", rng.Intn(nNodes)),
				fmt.Sprintf("urn:p%d", rng.Intn(nPreds)),
				fmt.Sprintf("urn:n%d", rng.Intn(nNodes)),
			)
		}
		sn := st.Freeze()
		src := randomQuery(rng, nNodes, nPreds)

		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatalf("generator produced unparsable query %q: %v", src, err)
		}
		columnar, cerr := QueryWithLimits(sn, q, Limits{})
		legacy, lerr := QueryWithLimits(sn, q, Limits{Legacy: true})
		if (cerr == nil) != (lerr == nil) {
			t.Fatalf("error divergence on %q: columnar=%v legacy=%v", src, cerr, lerr)
		}
		if cerr != nil {
			return
		}
		if columnar.Bool != legacy.Bool {
			t.Fatalf("ASK diverges on %q: columnar=%v legacy=%v", src, columnar.Bool, legacy.Bool)
		}
		if strings.Join(columnar.Vars, ",") != strings.Join(legacy.Vars, ",") {
			t.Fatalf("vars diverge on %q: %v vs %v", src, columnar.Vars, legacy.Vars)
		}
		a, b := sortedRows(columnar), sortedRows(legacy)
		if len(a) != len(b) {
			t.Fatalf("row counts diverge on %q: columnar=%d legacy=%d", src, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rows diverge on %q at %d:\ncolumnar: %q\nlegacy:   %q", src, i, a[i], b[i])
			}
		}
	})
}
