package eval

import (
	"strings"
	"testing"

	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// recoverStore has enough triples that a cross product inside a
// SERVICE body overflows a small MaxRows while the outer join fits.
func recoverStore() *rdf.Snapshot {
	st := rdf.NewStore()
	st.Add("a", "p", "b")
	st.Add("b", "p", "c")
	st.Add("c", "p", "d")
	st.Add("d", "p", "e")
	return st.Freeze()
}

func TestSilentServiceRecoveryCounted(t *testing.T) {
	sn := recoverStore()
	// The SERVICE body's cross product is 4x4 = 16 rows > MaxRows 10;
	// the outer pattern is 4 rows and survives the budget.
	q, err := sparql.Parse(`SELECT ?x WHERE {
		?x <p> ?y .
		SERVICE SILENT <http://remote/> { ?a <p> ?b . ?c <p> ?d . }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, legacy := range []bool{false, true} {
		res, err := QueryWithLimits(sn, q, Limits{MaxRows: 10, Legacy: legacy})
		if err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		if len(res.Rows) != 4 {
			t.Errorf("legacy=%v: rows = %d, want 4 (unjoined input)", legacy, len(res.Rows))
		}
		if res.Recovered != 1 {
			t.Errorf("legacy=%v: Recovered = %d, want 1", legacy, res.Recovered)
		}
	}

	// A SERVICE body that succeeds must not count a recovery.
	q2, err := sparql.Parse(`SELECT ?x WHERE {
		?x <p> ?y .
		SERVICE SILENT <http://remote/> { ?x <p> ?y }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Query(sn, q2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered != 0 {
		t.Errorf("successful SERVICE: Recovered = %d, want 0", res.Recovered)
	}
}

func TestExplainNotesSilentService(t *testing.T) {
	sn := recoverStore()
	q, err := sparql.Parse(`SELECT ?x WHERE {
		?x <p> ?y .
		SERVICE SILENT <http://remote/> { ?x <p> ?z }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	text, err := Explain(sn, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "SERVICE SILENT present") {
		t.Errorf("explain lacks SERVICE SILENT note:\n%s", text)
	}
}

func TestKindOfTerm(t *testing.T) {
	cases := []struct {
		text string
		want TermKind
	}{
		{"http://example.org/x", KindIRI},
		{"urn:isbn:123", KindIRI},
		{"mailto:a@b.c", KindIRI},
		{"_:b0", KindBlank},
		{"plain text", KindLiteral},
		{"42", KindLiteral},
		{"has:space in it", KindLiteral},
		{"9bad:scheme", KindLiteral},
		{":nocolonprefix", KindLiteral},
		{"scheme:", KindLiteral},
		{"", KindLiteral},
		{`said "hi"`, KindLiteral},
	}
	for _, tc := range cases {
		if got := KindOfTerm(tc.text); got != tc.want {
			t.Errorf("KindOfTerm(%q) = %v, want %v", tc.text, got, tc.want)
		}
	}
}
