package eval

import (
	"context"
	"fmt"
	"testing"

	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// runCounted evaluates on the columnar path and returns the result
// plus the number of dictionary materializations (Pool.Text calls)
// the execution performed.
func runCounted(t *testing.T, sn *rdf.Snapshot, src string) (*Result, int64) {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ev := &evaluator{st: sn, prefixes: prefixMap(q), lim: Limits{MaxRows: DefaultMaxRows}, ctx: context.Background()}
	res, err := ev.query(q)
	if err != nil {
		t.Fatal(err)
	}
	return res, ev.colPool.TextCalls()
}

// TestPathResultsStayAsIDs pins the satellite fix: pathcomp's sorted
// []rdf.ID output is routed straight into batch columns, so an
// object-bound (or loop-bound) path query materializes exactly one
// string per projected result cell — intermediate path nodes and
// dedup never touch the dictionary. The old evaluator re-resolved
// every path result to text per binding before dedup.
func TestPathResultsStayAsIDs(t *testing.T) {
	st := rdf.NewStore()
	for i := 0; i < 50; i++ {
		st.Add(fmt.Sprintf("urn:c%d", i), "urn:p", fmt.Sprintf("urn:c%d", i+1))
	}
	sn := st.Freeze()

	// Object-bound: all 50 ancestors of the chain tail, deduplicated
	// on ID tuples — one Text call per emitted row, none for dedup.
	res, calls := runCounted(t, sn, `SELECT DISTINCT ?s WHERE { ?s <urn:p>+ <urn:c50> }`)
	if len(res.Rows) != 50 {
		t.Fatalf("rows = %d, want 50", len(res.Rows))
	}
	if calls != int64(len(res.Rows)) {
		t.Fatalf("dictionary lookups = %d, want exactly %d (one per projected cell)", calls, len(res.Rows))
	}

	// ?x path ?x: loop nodes only, again one lookup per result row.
	stLoop := rdf.NewStore()
	stLoop.Add("urn:a", "urn:p", "urn:b")
	stLoop.Add("urn:b", "urn:p", "urn:a")
	stLoop.Add("urn:c", "urn:p", "urn:d")
	res2, calls2 := runCounted(t, stLoop.Freeze(), `SELECT ?x WHERE { ?x <urn:p>+ ?x }`)
	if len(res2.Rows) != 2 {
		t.Fatalf("loop rows = %v, want a and b", res2.Rows)
	}
	if calls2 != int64(len(res2.Rows)) {
		t.Fatalf("dictionary lookups = %d, want %d", calls2, len(res2.Rows))
	}
}

// TestJoinDistinctStaysAsIDs extends the contract to the conjunctive
// core: a DISTINCT join query's dedup runs on packed ID tuples, so
// string materializations equal emitted cells, independent of the
// (much larger) intermediate result.
func TestJoinDistinctStaysAsIDs(t *testing.T) {
	st := rdf.NewStore()
	for i := 0; i < 30; i++ {
		for j := 0; j < 10; j++ {
			st.Add(fmt.Sprintf("urn:s%d", i), "urn:p", fmt.Sprintf("urn:m%d", j))
			st.Add(fmt.Sprintf("urn:m%d", j), "urn:q", "urn:hub")
		}
	}
	sn := st.Freeze()
	res, calls := runCounted(t, sn,
		`SELECT DISTINCT ?s WHERE { ?s <urn:p> ?m . ?m <urn:q> <urn:hub> }`)
	if len(res.Rows) != 30 {
		t.Fatalf("rows = %d, want 30", len(res.Rows))
	}
	// 300 intermediate join rows, 30 emitted cells: the intermediate
	// result must not hit the dictionary.
	if calls != 30 {
		t.Fatalf("dictionary lookups = %d, want 30", calls)
	}
}

// TestFilterEdgeCasesDifferential covers expression-evaluation corners
// under the columnar executor, each run differentially against the
// legacy path and pinned against expected answers where stated.
func TestFilterEdgeCasesDifferential(t *testing.T) {
	st := rdf.NewStore()
	st.Add("urn:a", "urn:age", "25")
	st.Add("urn:b", "urn:age", "9")
	st.Add("urn:c", "urn:age", "200")
	st.Add("urn:d", "urn:age", "abc") // non-numeric lexical form
	st.Add("urn:a", "urn:name", "ann")
	st.Add("urn:c", "urn:name", "cee")
	st.Add("urn:a", "urn:knows", "urn:c")
	sn := st.Freeze()

	for _, src := range []string{
		// Numeric promotion: "25" > "9" numerically, not lexically.
		`SELECT ?x WHERE { ?x <urn:age> ?a FILTER (?a > 24) }`,
		`SELECT ?x WHERE { ?x <urn:age> ?a FILTER (?a >= 9 && ?a <= 25) }`,
		// Mixed numeric/string comparison falls back to lexical.
		`SELECT ?x WHERE { ?x <urn:age> ?a FILTER (?a < "abc") }`,
		// Arithmetic: promotion, division, division by zero (error -> false).
		`SELECT ?x WHERE { ?x <urn:age> ?a FILTER (?a * 2 > 49) }`,
		`SELECT ?x WHERE { ?x <urn:age> ?a FILTER (?a / 0 > 0) }`,
		`SELECT ?x WHERE { ?x <urn:age> ?a FILTER (-?a < -24) }`,
		// Unbound variables: plain error, BOUND, error-tolerant || / &&,
		// COALESCE fallback.
		`SELECT ?x WHERE { ?x <urn:age> ?a FILTER (?missing > 1) }`,
		`SELECT ?x WHERE { ?x <urn:age> ?a OPTIONAL { ?x <urn:name> ?n } FILTER (!BOUND(?n)) }`,
		`SELECT ?x WHERE { ?x <urn:age> ?a OPTIONAL { ?x <urn:name> ?n } FILTER (BOUND(?n) || ?a < 10) }`,
		`SELECT ?x WHERE { ?x <urn:age> ?a OPTIONAL { ?x <urn:name> ?n } FILTER (?n != "ann" && ?a > 0) }`,
		`SELECT ?x WHERE { ?x <urn:age> ?a OPTIONAL { ?x <urn:name> ?n } FILTER (COALESCE(?n, "zz") = "zz") }`,
		// IN / NOT IN, IF over an errored branch.
		`SELECT ?x WHERE { ?x <urn:age> ?a FILTER (?a IN (9, 200, 7)) }`,
		`SELECT ?x WHERE { ?x <urn:age> ?a FILTER (?a NOT IN (25)) }`,
		`SELECT ?x WHERE { ?x <urn:age> ?a FILTER (IF(?a > 10, true, ?missing) ) }`,
		// String builtins on computed values.
		`SELECT ?x WHERE { ?x <urn:name> ?n FILTER (STRLEN(UCASE(?n)) = 3 && CONTAINS(?n, "a")) }`,
		// Nested NOT EXISTS with correlation through the outer row.
		`SELECT ?x WHERE { ?x <urn:age> ?a FILTER NOT EXISTS { ?x <urn:knows> ?y FILTER NOT EXISTS { ?y <urn:name> ?m } } }`,
		`SELECT ?x WHERE { ?x <urn:age> ?a FILTER EXISTS { ?x <urn:knows> ?y . ?y <urn:age> ?b FILTER (?b > ?a) } }`,
	} {
		diffColumnarLegacy(t, sn, src)
	}

	// Absolute pins for the trickiest three.
	// 25 and 200 pass numerically; "abc" passes through the lexical
	// fallback for mixed-type comparison ("abc" > "24").
	res := run(t, sn, `SELECT ?x WHERE { ?x <urn:age> ?a FILTER (?a > 24) }`)
	if len(res.Rows) != 3 {
		t.Fatalf("numeric promotion: rows = %v, want urn:a, urn:c, urn:d", res.Rows)
	}
	res = run(t, sn, `SELECT ?x WHERE { ?x <urn:age> ?a FILTER (?missing > 1) }`)
	if len(res.Rows) != 0 {
		t.Fatalf("unbound comparison must error to false: %v", res.Rows)
	}
	res = run(t, sn, `SELECT ?x WHERE { ?x <urn:age> ?a FILTER EXISTS { ?x <urn:knows> ?y . ?y <urn:age> ?b FILTER (?b > ?a) } }`)
	if len(res.Rows) != 1 || res.Rows[0][0] != "urn:a" {
		t.Fatalf("correlated EXISTS: rows = %v, want urn:a only", res.Rows)
	}
}
