package eval

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"sparqlog/internal/qcache"
	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// diffCachedUncached pins the tentpole's correctness contract: with a
// result cache wired in, the answer must be indistinguishable from
// uncached execution — on the filling miss AND on the subsequent hit.
// The hit is additionally required to be byte-faithful to the fill
// (same row order, same nil-vs-empty Rows), because it materializes
// from the fill's stored columns.
func diffCachedUncached(t *testing.T, sn *rdf.Snapshot, qc *qcache.Cache, src string) {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	direct, derr := QueryWithLimits(sn, q, Limits{})
	fill, ferr := QueryWithLimits(sn, q, Limits{Results: qc})
	hit, herr := QueryWithLimits(sn, q, Limits{Results: qc})
	if (derr == nil) != (ferr == nil) || (derr == nil) != (herr == nil) {
		t.Fatalf("error divergence on %q: direct=%v fill=%v hit=%v", src, derr, ferr, herr)
	}
	if derr != nil {
		return
	}
	if !hit.Cached {
		t.Fatalf("second evaluation of %q did not hit the cache", src)
	}
	if fill.Cached {
		t.Fatalf("first evaluation of %q claims a cache hit", src)
	}
	// Hit vs fill: exact equality, including row order and nil-ness.
	if !reflect.DeepEqual(hit.Vars, fill.Vars) || !reflect.DeepEqual(hit.Rows, fill.Rows) || hit.Bool != fill.Bool {
		t.Fatalf("cached hit diverges from its fill on %q:\nfill %#v\nhit  %#v", src, fill.Rows, hit.Rows)
	}
	// Fill vs independent execution: multiset equality (unordered
	// queries may enumerate differently between runs).
	if direct.Bool != fill.Bool || strings.Join(direct.Vars, ",") != strings.Join(fill.Vars, ",") {
		t.Fatalf("fill diverges from direct on %q", src)
	}
	a, b := sortedRows(direct), sortedRows(fill)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("rows diverge on %q:\ndirect %q\ncached %q", src, a, b)
	}
}

// TestCachedDifferentialOperators replays the operator corpus with a
// shared result cache: DISTINCT, ORDER, slicing, aggregates, paths,
// ASK — everything the canonical cache key must keep distinct.
func TestCachedDifferentialOperators(t *testing.T) {
	sn := socialStore()
	qc := qcache.New(sn, qcache.Options{MinCost: -1})
	for _, src := range []string{
		`SELECT * WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z }`,
		`SELECT * WHERE { ?x <urn:knows> ?y OPTIONAL { ?y <urn:age> ?a } }`,
		`SELECT * WHERE { { ?x <urn:age> ?v } UNION { ?x <urn:name> ?v } }`,
		`SELECT * WHERE { ?x <urn:knows> ?y MINUS { ?x <urn:tag> <urn:gold> } }`,
		`SELECT * WHERE { ?x <urn:age> ?a FILTER (?a > 24) }`,
		`SELECT * WHERE { ?x <urn:age> ?a BIND (?a * 2 AS ?d) FILTER (?d > 48) }`,
		`SELECT ?y WHERE { <urn:a0> <urn:knows>+ ?y }`,
		`SELECT DISTINCT ?y WHERE { ?x <urn:knows> ?y . ?z <urn:knows> ?y }`,
		`SELECT ?a WHERE { ?x <urn:age> ?a } ORDER BY DESC(?a) LIMIT 3`,
		`SELECT ?n WHERE { ?x <urn:name> ?n } ORDER BY ?n OFFSET 1 LIMIT 2`,
		`SELECT ?y (COUNT(*) AS ?c) WHERE { ?x <urn:knows> ?y } GROUP BY ?y ORDER BY DESC(?c) ?y`,
		`SELECT ?x (SUM(?a) AS ?s) WHERE { ?x <urn:age> ?a } GROUP BY ?x HAVING (SUM(?a) > 23)`,
		`SELECT (GROUP_CONCAT(?n ; separator=",") AS ?all) WHERE { ?x <urn:name> ?n }`,
		// Expression products live in the entry-local overflow table.
		`SELECT (?a + 1 AS ?b) WHERE { ?x <urn:age> ?a } ORDER BY ?b`,
		// Unbound cells round-trip as unbound.
		`SELECT ?x ?e WHERE { ?x <urn:age> ?a BIND ("" AS ?e) FILTER (!BOUND(?e)) }`,
		// Empty result sets and ASK (nil Rows) round-trip faithfully.
		`SELECT * WHERE { ?x <urn:knows> ?y . ?x <urn:nothere> ?z }`,
		`ASK { <urn:a0> <urn:knows>/<urn:knows> <urn:a2> }`,
		`ASK { ?x <urn:age> ?a FILTER (?a > 100) }`,
	} {
		diffCachedUncached(t, sn, qc, src)
	}
	if qc.Hits() == 0 {
		t.Fatal("corpus produced no cache hits")
	}
}

// TestCachedDifferentialRandom is the randomized half over fresh
// stores, one cache per snapshot as the serving path builds them.
func TestCachedDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 120; trial++ {
		st := rdf.NewStore()
		nNodes := 4 + rng.Intn(10)
		nPreds := 1 + rng.Intn(3)
		for i := 0; i < 5+rng.Intn(40); i++ {
			st.Add(
				fmt.Sprintf("urn:n%d", rng.Intn(nNodes)),
				fmt.Sprintf("urn:p%d", rng.Intn(nPreds)),
				fmt.Sprintf("urn:n%d", rng.Intn(nNodes)),
			)
		}
		sn := st.Freeze()
		qc := qcache.New(sn, qcache.Options{MinCost: -1})
		diffCachedUncached(t, sn, qc, randomQuery(rng, nNodes, nPreds))
	}
}

// TestCacheKeyAlphaEquivalence: variable renaming and prefix spelling
// must share one entry; different modifiers must not.
func TestCacheKeyAlphaEquivalence(t *testing.T) {
	sn := socialStore()
	qc := qcache.New(sn, qcache.Options{MinCost: -1})
	lim := Limits{Results: qc}
	run := func(src string) *Result {
		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		res, err := QueryWithLimits(sn, q, lim)
		if err != nil {
			t.Fatalf("eval %q: %v", src, err)
		}
		return res
	}
	run(`SELECT ?x WHERE { ?x <urn:age> ?a }`)
	if res := run(`SELECT ?other WHERE { ?other <urn:age> ?v }`); !res.Cached {
		t.Fatal("alpha-equivalent repeat missed the cache")
	}
	if res := run(`PREFIX u: <urn:> SELECT ?x WHERE { ?x u:age ?a }`); !res.Cached {
		t.Fatal("prefix-spelled repeat missed the cache")
	}
	if res := run(`SELECT DISTINCT ?x WHERE { ?x <urn:age> ?a }`); res.Cached {
		t.Fatal("DISTINCT variant shared the non-DISTINCT entry")
	}
	if res := run(`SELECT ?x WHERE { ?x <urn:age> ?a } LIMIT 2`); res.Cached {
		t.Fatal("LIMIT variant shared the unlimited entry")
	}
}

// TestDoNotCacheErrors: row-limit overflows, expired deadlines, and
// SERVICE-recovered results must never become cache entries.
func TestDoNotCacheErrors(t *testing.T) {
	sn := socialStore()

	t.Run("row limit overflow", func(t *testing.T) {
		qc := qcache.New(sn, qcache.Options{MinCost: -1})
		q, _ := sparql.Parse(`SELECT * WHERE { ?s ?p ?o }`)
		lim := Limits{Results: qc, MaxRows: 2}
		if _, err := QueryWithLimits(sn, q, lim); err == nil {
			t.Fatal("expected row-limit error")
		}
		if qc.Entries() != 0 {
			t.Fatal("overflowed result was cached")
		}
		// A larger budget under the same cache must re-execute, not see
		// a poisoned entry — and the overflowing budget must stay an
		// error even after the large-budget success is cached.
		big := Limits{Results: qc, MaxRows: 1000}
		res, err := QueryWithLimits(sn, q, big)
		if err != nil || res.Cached {
			t.Fatalf("large-budget run: %v (cached=%v)", err, res.Cached)
		}
		if _, err := QueryWithLimits(sn, q, lim); err == nil {
			t.Fatal("small budget answered from the large-budget entry")
		}
	})

	t.Run("expired deadline", func(t *testing.T) {
		// Heavy enough that the evaluator observes the cancelled
		// context mid-execution (tiny queries may finish before any
		// cancellation check, which is a success, not a truncation).
		st := rdf.NewStore()
		for i := 0; i < 300; i++ {
			st.Add(fmt.Sprintf("urn:c%d", i), "urn:next", fmt.Sprintf("urn:c%d", (i+1)%300))
		}
		bigSn := st.Freeze()
		qc := qcache.New(bigSn, qcache.Options{MinCost: -1})
		q, _ := sparql.Parse(`SELECT ?x ?y WHERE { ?x <urn:next>+ ?y }`)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := QueryContext(ctx, bigSn, q, Limits{Results: qc}); err == nil {
			t.Fatal("expected deadline error")
		}
		if qc.Entries() != 0 {
			t.Fatal("deadline-truncated result was cached")
		}
	})

	t.Run("service recovery", func(t *testing.T) {
		qc := qcache.New(sn, qcache.Options{MinCost: -1})
		q, _ := sparql.Parse(`SELECT ?x WHERE { SERVICE SILENT <http://remote/> { ?x <urn:special> ?y } }`)
		res, err := QueryWithLimits(sn, q, Limits{Results: qc})
		if err != nil {
			t.Fatal(err)
		}
		if res.Recovered == 0 {
			t.Skip("SERVICE did not recover; nothing to pin")
		}
		if qc.Entries() != 0 {
			t.Fatal("SERVICE-recovered result was cached")
		}
		again, err := QueryWithLimits(sn, q, Limits{Results: qc})
		if err != nil || again.Cached {
			t.Fatalf("recovered query answered from cache: %v cached=%v", err, again.Cached)
		}
	})
}

// TestSingleFlightStampede: N concurrent identical queries through the
// eval layer must execute exactly once — everyone else is a cache hit
// or a collapsed follower.
func TestSingleFlightStampede(t *testing.T) {
	st := rdf.NewStore()
	for i := 0; i < 400; i++ {
		st.Add(fmt.Sprintf("urn:c%d", i), "urn:next", fmt.Sprintf("urn:c%d", (i+1)%400))
	}
	sn := st.Freeze()
	qc := qcache.New(sn, qcache.Options{MinCost: -1})
	// Transitive closure over the 400-cycle: heavy enough (160k pairs)
	// that every goroutine joins the flight long before the leader
	// finishes executing.
	q, err := sparql.Parse(`SELECT ?x ?y WHERE { ?x <urn:next>+ ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	results := make([]*Result, n)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			res, err := QueryWithLimits(sn, q, Limits{Results: qc})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	start.Done()
	done.Wait()
	var executed, collapsed, hits int
	for _, res := range results {
		switch {
		case res == nil:
		case res.Cached:
			hits++
		case res.Collapsed:
			collapsed++
		default:
			executed++
		}
	}
	if executed != 1 {
		t.Fatalf("executions = %d (hits %d, collapsed %d), want exactly 1", executed, hits, collapsed)
	}
	if hits+collapsed != n-1 {
		t.Fatalf("hits %d + collapsed %d != %d", hits, collapsed, n-1)
	}
	if qc.Collapsed() != int64(collapsed) {
		t.Fatalf("cache Collapsed = %d, flags say %d", qc.Collapsed(), collapsed)
	}
	// All 32 must agree on the answer.
	want := sortedRows(results[0])
	for i, res := range results[1:] {
		if !reflect.DeepEqual(sortedRows(res), want) {
			t.Fatalf("goroutine %d returned different rows", i+1)
		}
	}
}

// TestCostAdmissionThroughEval: with a real MinCost, a microsecond
// query is executed every time (admission rejects it), never cached.
func TestCostAdmissionThroughEval(t *testing.T) {
	sn := socialStore()
	qc := qcache.New(sn, qcache.Options{MinCost: time.Hour})
	q, _ := sparql.Parse(`SELECT ?x WHERE { ?x <urn:age> ?a } LIMIT 1`)
	for i := 0; i < 3; i++ {
		res, err := QueryWithLimits(sn, q, Limits{Results: qc})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Fatal("below-threshold query was cached")
		}
	}
	if qc.Entries() != 0 || qc.Rejected() == 0 {
		t.Fatalf("entries=%d rejected=%d, want 0 and >0", qc.Entries(), qc.Rejected())
	}
}
