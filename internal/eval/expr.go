package eval

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"sparqlog/internal/sparql"
)

// value is a runtime SPARQL value. The store is untyped text, so numeric
// interpretation is by lexical form; booleans arise from comparisons and
// logical operators.
type value struct {
	lex    string
	num    float64
	isNum  bool
	isBool bool
	b      bool
}

func textValue(s string) value {
	if n, err := strconv.ParseFloat(s, 64); err == nil && s != "" {
		return value{lex: s, num: n, isNum: true}
	}
	return value{lex: s}
}

func numValue(n float64) value {
	return value{lex: strconv.FormatFloat(n, 'g', -1, 64), num: n, isNum: true}
}

func boolValue(b bool) value {
	v := value{isBool: true, b: b}
	if b {
		v.lex = "true"
	} else {
		v.lex = "false"
	}
	return v
}

func (v value) text() string { return v.lex }

// truthy implements the effective boolean value.
func (v value) truthy() bool {
	if v.isBool {
		return v.b
	}
	if v.isNum {
		return v.num != 0
	}
	return v.lex != "" && v.lex != "false"
}

var errEval = fmt.Errorf("eval: expression error")

// env is one solution row as the expression evaluator sees it: the
// legacy map binding and the columnar batch row both implement it, so
// FILTER/BIND/aggregate semantics are defined once. lookupVar
// materializes text lazily (the columnar row converts an ID only when
// an expression actually touches it).
type env interface {
	// lookupVar returns the bound text of a variable.
	lookupVar(name string) (string, bool)
	// eachBound calls fn for every bound variable name.
	eachBound(fn func(name string))
	// exists evaluates an EXISTS pattern under this row.
	exists(ev *evaluator, p sparql.Pattern) (bool, error)
}

func (b binding) lookupVar(name string) (string, bool) {
	v, ok := b[name]
	return v, ok
}

func (b binding) eachBound(fn func(string)) {
	for k := range b {
		fn(k)
	}
}

func (b binding) exists(ev *evaluator, p sparql.Pattern) (bool, error) {
	rows, err := ev.pattern(p, []binding{b})
	if err != nil {
		return false, err
	}
	return len(rows) > 0, nil
}

// eval evaluates an expression under one row. Unbound variables and
// type errors return errEval (SPARQL expression errors), which filters
// treat as false.
func (ev *evaluator) eval(e sparql.Expr, b env) (value, error) {
	switch n := e.(type) {
	case *sparql.TermExpr:
		switch n.Term.Kind {
		case sparql.TermVar:
			if v, ok := b.lookupVar(n.Term.Value); ok {
				return textValue(v), nil
			}
			return value{}, errEval
		case sparql.TermLiteral:
			if n.Term.Lang != "" {
				// Keep the language tag available to LANG() via a
				// combined internal form.
				return value{lex: n.Term.Value}, nil
			}
			return textValue(n.Term.Value), nil
		case sparql.TermIRI:
			return value{lex: ev.expand(n.Term.Value, n.Term.PrefixedForm)}, nil
		default:
			return value{}, errEval
		}
	case *sparql.BinaryExpr:
		return ev.evalBinary(n, b)
	case *sparql.UnaryExpr:
		x, err := ev.eval(n.X, b)
		if err != nil {
			return value{}, err
		}
		switch n.Op {
		case "!":
			return boolValue(!x.truthy()), nil
		case "-":
			if !x.isNum {
				return value{}, errEval
			}
			return numValue(-x.num), nil
		default:
			return x, nil
		}
	case *sparql.FuncCall:
		return ev.evalFunc(n, b)
	case *sparql.ExistsExpr:
		found, err := b.exists(ev, n.Pattern)
		if err != nil {
			return value{}, errEval
		}
		if n.Not {
			found = !found
		}
		return boolValue(found), nil
	case *sparql.InExpr:
		x, err := ev.eval(n.X, b)
		if err != nil {
			return value{}, err
		}
		found := false
		for _, item := range n.List {
			v, err := ev.eval(item, b)
			if err == nil && compareValues(x, v) == 0 {
				found = true
				break
			}
		}
		if n.Not {
			found = !found
		}
		return boolValue(found), nil
	case *sparql.AggregateExpr:
		return value{}, errEval // aggregates need group context
	}
	return value{}, errEval
}

func (ev *evaluator) evalBinary(n *sparql.BinaryExpr, b env) (value, error) {
	switch n.Op {
	case "&&":
		l, errL := ev.eval(n.L, b)
		r, errR := ev.eval(n.R, b)
		// SPARQL logical AND tolerates one error when the other operand
		// is false.
		if errL == nil && errR == nil {
			return boolValue(l.truthy() && r.truthy()), nil
		}
		if errL == nil && !l.truthy() || errR == nil && !r.truthy() {
			return boolValue(false), nil
		}
		return value{}, errEval
	case "||":
		l, errL := ev.eval(n.L, b)
		r, errR := ev.eval(n.R, b)
		if errL == nil && errR == nil {
			return boolValue(l.truthy() || r.truthy()), nil
		}
		if errL == nil && l.truthy() || errR == nil && r.truthy() {
			return boolValue(true), nil
		}
		return value{}, errEval
	}
	l, err := ev.eval(n.L, b)
	if err != nil {
		return value{}, err
	}
	r, err := ev.eval(n.R, b)
	if err != nil {
		return value{}, err
	}
	switch n.Op {
	case "=":
		return boolValue(compareValues(l, r) == 0), nil
	case "!=":
		return boolValue(compareValues(l, r) != 0), nil
	case "<":
		return boolValue(compareValues(l, r) < 0), nil
	case ">":
		return boolValue(compareValues(l, r) > 0), nil
	case "<=":
		return boolValue(compareValues(l, r) <= 0), nil
	case ">=":
		return boolValue(compareValues(l, r) >= 0), nil
	case "+", "-", "*", "/":
		if !l.isNum || !r.isNum {
			return value{}, errEval
		}
		switch n.Op {
		case "+":
			return numValue(l.num + r.num), nil
		case "-":
			return numValue(l.num - r.num), nil
		case "*":
			return numValue(l.num * r.num), nil
		default:
			if r.num == 0 {
				return value{}, errEval
			}
			return numValue(l.num / r.num), nil
		}
	}
	return value{}, errEval
}

// compareValues orders numerically when both operands are numeric, else
// lexicographically.
func compareValues(l, r value) int {
	if l.isNum && r.isNum {
		switch {
		case l.num < r.num:
			return -1
		case l.num > r.num:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(l.lex, r.lex)
}

func (ev *evaluator) evalFunc(n *sparql.FuncCall, b env) (value, error) {
	arg := func(i int) (value, error) {
		if i >= len(n.Args) {
			return value{}, errEval
		}
		return ev.eval(n.Args[i], b)
	}
	switch n.Name {
	case "BOUND":
		if len(n.Args) == 1 {
			if te, ok := n.Args[0].(*sparql.TermExpr); ok && te.Term.Kind == sparql.TermVar {
				_, bound := b.lookupVar(te.Term.Value)
				return boolValue(bound), nil
			}
		}
		return value{}, errEval
	case "STR":
		v, err := arg(0)
		if err != nil {
			return value{}, err
		}
		return value{lex: v.lex}, nil
	case "LANG", "DATATYPE":
		// The store keeps lexical forms only; tags and datatypes are not
		// preserved at evaluation time.
		if _, err := arg(0); err != nil {
			return value{}, err
		}
		return value{lex: ""}, nil
	case "STRLEN":
		v, err := arg(0)
		if err != nil {
			return value{}, err
		}
		return numValue(float64(len(v.lex))), nil
	case "UCASE":
		v, err := arg(0)
		if err != nil {
			return value{}, err
		}
		return value{lex: strings.ToUpper(v.lex)}, nil
	case "LCASE":
		v, err := arg(0)
		if err != nil {
			return value{}, err
		}
		return value{lex: strings.ToLower(v.lex)}, nil
	case "CONTAINS", "STRSTARTS", "STRENDS":
		x, err := arg(0)
		if err != nil {
			return value{}, err
		}
		y, err := arg(1)
		if err != nil {
			return value{}, err
		}
		switch n.Name {
		case "CONTAINS":
			return boolValue(strings.Contains(x.lex, y.lex)), nil
		case "STRSTARTS":
			return boolValue(strings.HasPrefix(x.lex, y.lex)), nil
		default:
			return boolValue(strings.HasSuffix(x.lex, y.lex)), nil
		}
	case "CONCAT":
		var sb strings.Builder
		for i := range n.Args {
			v, err := arg(i)
			if err != nil {
				return value{}, err
			}
			sb.WriteString(v.lex)
		}
		return value{lex: sb.String()}, nil
	case "REGEX":
		x, err := arg(0)
		if err != nil {
			return value{}, err
		}
		pat, err := arg(1)
		if err != nil {
			return value{}, err
		}
		expr := pat.lex
		if len(n.Args) >= 3 {
			if flags, err := arg(2); err == nil && strings.Contains(flags.lex, "i") {
				expr = "(?i)" + expr
			}
		}
		re, rerr := regexp.Compile(expr)
		if rerr != nil {
			return value{}, errEval
		}
		return boolValue(re.MatchString(x.lex)), nil
	case "ABS", "CEIL", "FLOOR", "ROUND":
		v, err := arg(0)
		if err != nil || !v.isNum {
			return value{}, errEval
		}
		switch n.Name {
		case "ABS":
			if v.num < 0 {
				return numValue(-v.num), nil
			}
			return v, nil
		case "CEIL":
			return numValue(ceil(v.num)), nil
		case "FLOOR":
			return numValue(floor(v.num)), nil
		default:
			return numValue(floor(v.num + 0.5)), nil
		}
	case "SAMETERM":
		x, err := arg(0)
		if err != nil {
			return value{}, err
		}
		y, err := arg(1)
		if err != nil {
			return value{}, err
		}
		return boolValue(x.lex == y.lex), nil
	case "ISIRI", "ISURI":
		v, err := arg(0)
		if err != nil {
			return value{}, err
		}
		return boolValue(looksLikeIRI(v.lex)), nil
	case "ISLITERAL":
		v, err := arg(0)
		if err != nil {
			return value{}, err
		}
		return boolValue(!looksLikeIRI(v.lex)), nil
	case "ISBLANK":
		v, err := arg(0)
		if err != nil {
			return value{}, err
		}
		return boolValue(strings.HasPrefix(v.lex, "_:")), nil
	case "ISNUMERIC":
		v, err := arg(0)
		if err != nil {
			return value{}, err
		}
		return boolValue(v.isNum), nil
	case "IF":
		c, err := arg(0)
		if err != nil {
			return value{}, err
		}
		if c.truthy() {
			return arg(1)
		}
		return arg(2)
	case "COALESCE":
		for i := range n.Args {
			if v, err := arg(i); err == nil {
				return v, nil
			}
		}
		return value{}, errEval
	}
	return value{}, errEval
}

func looksLikeIRI(s string) bool {
	return strings.Contains(s, "://") || strings.HasPrefix(s, "urn:") ||
		strings.HasPrefix(s, "mailto:") || strings.HasPrefix(s, "http:")
}

func ceil(f float64) float64 {
	i := float64(int64(f))
	if f > i {
		return i + 1
	}
	return i
}

func floor(f float64) float64 {
	i := float64(int64(f))
	if f < i {
		return i - 1
	}
	return i
}

// evalAggregateExpr evaluates an expression that may contain aggregate
// nodes, over a group's member rows. Non-aggregate subexpressions are
// evaluated against the group's first member (they are group keys,
// constant within the group).
func (ev *evaluator) evalAggregateExpr(e sparql.Expr, members []env) (value, error) {
	if agg, ok := e.(*sparql.AggregateExpr); ok {
		return ev.computeAggregate(agg, members)
	}
	switch n := e.(type) {
	case *sparql.BinaryExpr:
		l, err := ev.evalAggregateExpr(n.L, members)
		if err != nil {
			return value{}, err
		}
		r, err := ev.evalAggregateExpr(n.R, members)
		if err != nil {
			return value{}, err
		}
		return ev.evalBinary(&sparql.BinaryExpr{
			Op: n.Op,
			L:  litExpr(l),
			R:  litExpr(r),
		}, binding{})
	case *sparql.UnaryExpr:
		x, err := ev.evalAggregateExpr(n.X, members)
		if err != nil {
			return value{}, err
		}
		return ev.eval(&sparql.UnaryExpr{Op: n.Op, X: litExpr(x)}, binding{})
	default:
		if len(members) == 0 {
			return value{}, errEval
		}
		return ev.eval(e, members[0])
	}
}

// evalAggRow is evalAggregateExpr's mirror over one emitted columnar
// group row: hidden aggregate-output variables read their finalized
// slot, and everything else keeps the legacy semantics exactly —
// Binary/Unary chains recurse strictly (either side's error is the
// expression's error, with none of plain eval's &&/|| tolerance), and
// any other leaf evaluates against the row as "the group's first
// member", which for a synthetic empty group (empty = true) means an
// unconditional expression error.
func (ev *evaluator) evalAggRow(e sparql.Expr, b env, empty bool) (value, error) {
	switch n := e.(type) {
	case *sparql.TermExpr:
		if n.Term.Kind == sparql.TermVar && isHiddenAggVar(n.Term.Value) {
			name := n.Term.Value
			v, ok := b.lookupVar(name)
			if name[len(hiddenAggPrefix)] == hiddenConcatMark {
				// GROUP_CONCAT never errors and its result stays
				// non-numeric at the top level (the legacy value is a
				// bare lexical form); an unbound slot is the empty
				// concatenation.
				return value{lex: v}, nil
			}
			if !ok {
				// The aggregate finalized to unbound — exactly the
				// states where computeAggregate errors (MIN/MAX/SAMPLE
				// of nothing, AVG with no numerics).
				return value{}, errEval
			}
			return textValue(v), nil
		}
	case *sparql.BinaryExpr:
		l, err := ev.evalAggRow(n.L, b, empty)
		if err != nil {
			return value{}, err
		}
		r, err := ev.evalAggRow(n.R, b, empty)
		if err != nil {
			return value{}, err
		}
		return ev.evalBinary(&sparql.BinaryExpr{Op: n.Op, L: litExpr(l), R: litExpr(r)}, binding{})
	case *sparql.UnaryExpr:
		x, err := ev.evalAggRow(n.X, b, empty)
		if err != nil {
			return value{}, err
		}
		return ev.eval(&sparql.UnaryExpr{Op: n.Op, X: litExpr(x)}, binding{})
	}
	if empty {
		return value{}, errEval
	}
	return ev.eval(e, b)
}

// litExpr wraps a computed value back into an expression leaf.
func litExpr(v value) sparql.Expr {
	t := sparql.Term{Kind: sparql.TermLiteral, Value: v.lex}
	if v.isNum {
		t.Datatype = "http://www.w3.org/2001/XMLSchema#decimal"
	}
	return &sparql.TermExpr{Term: t}
}

func (ev *evaluator) computeAggregate(agg *sparql.AggregateExpr, members []env) (value, error) {
	var vals []value
	if !agg.Star {
		for _, m := range members {
			if v, err := ev.eval(agg.Arg, m); err == nil {
				vals = append(vals, v)
			}
		}
	}
	if agg.Distinct {
		seen := map[string]bool{}
		var ded []value
		for _, v := range vals {
			if !seen[v.lex] {
				seen[v.lex] = true
				ded = append(ded, v)
			}
		}
		vals = ded
	}
	switch agg.Name {
	case "COUNT":
		if agg.Star {
			return numValue(float64(len(members))), nil
		}
		return numValue(float64(len(vals))), nil
	case "SUM", "AVG":
		sum := 0.0
		n := 0
		for _, v := range vals {
			if v.isNum {
				sum += v.num
				n++
			}
		}
		if agg.Name == "SUM" {
			return numValue(sum), nil
		}
		if n == 0 {
			return value{}, errEval
		}
		return numValue(sum / float64(n)), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return value{}, errEval
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := compareValues(v, best)
			if agg.Name == "MIN" && c < 0 || agg.Name == "MAX" && c > 0 {
				best = v
			}
		}
		return best, nil
	case "SAMPLE":
		if len(vals) == 0 {
			return value{}, errEval
		}
		return vals[0], nil
	case "GROUP_CONCAT":
		sep := " "
		if agg.HasSep {
			sep = agg.Separator
		}
		parts := make([]string, 0, len(vals))
		for _, v := range vals {
			parts = append(parts, v.lex)
		}
		sort.Strings(parts) // deterministic output
		return value{lex: strings.Join(parts, sep)}, nil
	}
	return value{}, errEval
}
