package eval

import (
	"fmt"
	"testing"

	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// TestStaticShortCircuitZeroProbes pins the tentpole contract: a query
// the linter proves empty is answered without a single snapshot index
// access, while the same query with the short circuit disabled probes
// the store and (necessarily) also returns nothing.
func TestStaticShortCircuitZeroProbes(t *testing.T) {
	sn := socialStore()
	for _, src := range []string{
		// Interval empty in both the numeric and lexicographic regime.
		`SELECT ?s WHERE { ?s <urn:age> ?o . FILTER(?o > 5 && ?o < 3) }`,
		`ASK { ?s <urn:knows> ?o . FILTER(false) }`,
		`SELECT * WHERE { ?s ?p ?o . FILTER(?o != ?o) }`,
		`CONSTRUCT { ?s <urn:p> ?o } WHERE { ?s <urn:knows> ?o . FILTER(?o = <urn:a> && ?o = <urn:b>) }`,
		`DESCRIBE ?s WHERE { ?s <urn:knows> ?o . FILTER(false) }`,
	} {
		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		res, err := Query(sn, q)
		if err != nil {
			t.Fatalf("static eval of %q: %v", src, err)
		}
		if res.Probes != 0 {
			t.Errorf("%q: short-circuited eval made %d index probes, want 0", src, res.Probes)
		}
		if len(res.Rows) != 0 || res.Bool {
			t.Errorf("%q: short-circuited eval produced rows", src)
		}
		full, err := QueryWithLimits(sn, q, Limits{NoStatic: true})
		if err != nil {
			t.Fatalf("full eval of %q: %v", src, err)
		}
		if full.Probes == 0 {
			t.Errorf("%q: NoStatic eval reports zero probes — the meter is broken", src)
		}
		if len(full.Rows) != 0 || full.Bool {
			t.Errorf("%q: full eval found rows in a statically-empty query", src)
		}
	}
	// A LIMIT 0 subquery short-circuits statically too; under NoStatic
	// the streaming limit already pulls nothing, so only the zero-probe
	// and emptiness contracts apply.
	q, err := sparql.Parse(`SELECT * WHERE { { SELECT ?s WHERE { ?s ?p ?o } LIMIT 0 } }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Query(sn, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes != 0 || len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0 subquery: probes=%d rows=%d, want 0/0", res.Probes, len(res.Rows))
	}
}

// TestProbesReported checks the meter on a live query: evaluation that
// touches the store reports its accesses.
func TestProbesReported(t *testing.T) {
	sn := socialStore()
	q, err := sparql.Parse(`SELECT ?s ?o WHERE { ?s <urn:knows> ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Query(sn, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || res.Probes == 0 {
		t.Fatalf("live query: rows=%d probes=%d, want both > 0", len(res.Rows), res.Probes)
	}
}

// TestStaticShortCircuitAgreesWithLegacy runs statically-empty queries
// through the legacy path too: the short circuit must not change any
// answer.
func TestStaticShortCircuitAgreesWithLegacy(t *testing.T) {
	sn := socialStore()
	for _, src := range []string{
		`SELECT ?s WHERE { ?s <urn:age> ?o . FILTER(?o > 5 && ?o < 3) }`,
		`SELECT * WHERE { { ?s ?p ?o . FILTER(false) } UNION { ?s <urn:knows> ?o . FILTER(?o != ?o) } }`,
		`SELECT * WHERE { ?s <urn:knows> ?o OPTIONAL { ?s <urn:age> ?a . FILTER(false) } }`,
	} {
		diffColumnarLegacy(t, sn, src)
	}
}

// BenchmarkStaticShortCircuit measures the tentpole's payoff: the
// statically-empty query on a ~24k-triple store answered with zero
// probes versus the same query forced through full evaluation.
func BenchmarkStaticShortCircuit(b *testing.B) {
	st := rdf.NewStore()
	for i := 0; i < 8000; i++ {
		st.Add(fmt.Sprintf("urn:n%d", i), "urn:knows", fmt.Sprintf("urn:n%d", (i*7+1)%8000))
		st.Add(fmt.Sprintf("urn:n%d", i), "urn:age", fmt.Sprintf("%d", i%90))
		st.Add(fmt.Sprintf("urn:n%d", i), "urn:name", fmt.Sprintf("name%d", i))
	}
	sn := st.Freeze()
	q, err := sparql.Parse(`SELECT ?s WHERE { ?s <urn:age> ?o . FILTER(?o > 5 && ?o < 3) }`)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Query(sn, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := QueryWithLimits(sn, q, Limits{NoStatic: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
