package eval

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// diffColumnarLegacy evaluates src on the columnar executor (default)
// and the legacy materialized path (Limits.Legacy) and requires
// identical results: ASK answer, projection, and the solution multiset
// (order-insensitive; SPARQL solution sequences without ORDER BY are
// unordered, and the comparison must not depend on internal
// enumeration order).
func diffColumnarLegacy(t *testing.T, sn *rdf.Snapshot, src string) {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	columnar, cerr := QueryWithLimits(sn, q, Limits{})
	legacy, lerr := QueryWithLimits(sn, q, Limits{Legacy: true})
	if (cerr == nil) != (lerr == nil) {
		t.Fatalf("error divergence on %q: columnar=%v legacy=%v", src, cerr, lerr)
	}
	if cerr != nil {
		return
	}
	if columnar.Bool != legacy.Bool {
		t.Fatalf("ASK diverges on %q: columnar=%v legacy=%v", src, columnar.Bool, legacy.Bool)
	}
	if strings.Join(columnar.Vars, ",") != strings.Join(legacy.Vars, ",") {
		t.Fatalf("vars diverge on %q: %v vs %v", src, columnar.Vars, legacy.Vars)
	}
	a, b := sortedRows(columnar), sortedRows(legacy)
	if len(a) != len(b) {
		t.Fatalf("row counts diverge on %q: columnar=%d legacy=%d", src, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rows diverge on %q at %d:\ncolumnar: %q\nlegacy:   %q", src, i, a[i], b[i])
		}
	}
}

// socialStore builds the store the operator differential runs on: a
// knows-cycle with ages, names, tags and a self-loop, dense enough
// that every operator has work and holes (missing ages/names) so
// OPTIONAL/MINUS/BOUND take both branches.
func socialStore() *rdf.Snapshot {
	st := rdf.NewStore()
	for i := 0; i < 12; i++ {
		st.Add(fmt.Sprintf("urn:a%d", i), "urn:knows", fmt.Sprintf("urn:a%d", (i+1)%12))
		if i%2 == 0 {
			st.Add(fmt.Sprintf("urn:a%d", i), "urn:age", fmt.Sprintf("%d", 20+i))
		}
		if i%3 == 0 {
			st.Add(fmt.Sprintf("urn:a%d", i), "urn:name", fmt.Sprintf("n%d", i))
		}
		if i%4 == 0 {
			st.Add(fmt.Sprintf("urn:a%d", i), "urn:tag", "urn:gold")
		}
	}
	st.Add("urn:a0", "urn:special", "urn:a5")
	st.Add("urn:loop", "urn:knows", "urn:loop")
	return st.Freeze()
}

// TestColumnarDifferentialOperators runs every operator family through
// both executors on a fixed store: the consistency corpus's structured
// half.
func TestColumnarDifferentialOperators(t *testing.T) {
	sn := socialStore()
	for _, src := range []string{
		// Plain BGPs, repeated variables, dead constants.
		`SELECT * WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z }`,
		`SELECT * WHERE { ?x <urn:knows> ?x }`,
		`SELECT * WHERE { ?x <urn:knows> ?y . ?x <urn:nothere> ?z }`,
		`SELECT ?p WHERE { <urn:a0> ?p ?o }`,
		`SELECT * WHERE { ?s ?p ?o }`,
		// OPTIONAL with holes, nested OPTIONAL.
		`SELECT * WHERE { ?x <urn:knows> ?y OPTIONAL { ?y <urn:age> ?a } }`,
		`SELECT * WHERE { ?x <urn:knows> ?y OPTIONAL { ?y <urn:age> ?a OPTIONAL { ?y <urn:name> ?n } } }`,
		// UNION, incl. branches binding different variables.
		`SELECT * WHERE { { ?x <urn:age> ?v } UNION { ?x <urn:name> ?v } }`,
		`SELECT * WHERE { { ?x <urn:tag> ?t } UNION { ?x <urn:special> ?s } }`,
		// MINUS: shared and disjoint domains.
		`SELECT * WHERE { ?x <urn:knows> ?y MINUS { ?x <urn:tag> <urn:gold> } }`,
		`SELECT * WHERE { ?x <urn:age> ?a MINUS { ?y <urn:name> ?n } }`,
		// FILTER families: comparisons, logic, errors-as-false, EXISTS.
		`SELECT * WHERE { ?x <urn:age> ?a FILTER (?a > 24) }`,
		`SELECT * WHERE { ?x <urn:knows> ?y FILTER (BOUND(?y) && ?y != <urn:a3>) }`,
		`SELECT * WHERE { ?x <urn:knows> ?y OPTIONAL { ?y <urn:age> ?a } FILTER (?a > 22) }`,
		`SELECT * WHERE { ?x <urn:name> ?n FILTER EXISTS { ?x <urn:age> ?a } }`,
		`SELECT * WHERE { ?x <urn:name> ?n FILTER NOT EXISTS { ?x <urn:tag> <urn:gold> } }`,
		`SELECT * WHERE { ?x <urn:name> ?n FILTER NOT EXISTS { ?x <urn:age> ?a FILTER NOT EXISTS { ?x <urn:tag> <urn:gold> } } }`,
		// BIND, VALUES (inline and trailing), GRAPH, SERVICE.
		`SELECT * WHERE { ?x <urn:age> ?a BIND (?a * 2 AS ?d) FILTER (?d > 48) }`,
		`SELECT * WHERE { ?x <urn:knows> ?y VALUES ?x { <urn:a2> <urn:a7> <urn:absent> } }`,
		`SELECT * WHERE { VALUES ?x { <urn:a0> <urn:a6> } ?x <urn:knows> ?y }`,
		`SELECT ?x ?y WHERE { ?x <urn:special> ?y } VALUES ?x { <urn:a0> }`,
		`SELECT ?g ?x WHERE { GRAPH ?g { ?x <urn:tag> <urn:gold> } }`,
		`SELECT ?x WHERE { SERVICE <http://remote/> { ?x <urn:special> ?y } }`,
		`SELECT ?x WHERE { SERVICE SILENT <http://remote/> { ?x <urn:special> ?y } }`,
		// Subqueries.
		`SELECT * WHERE { { SELECT ?x WHERE { ?x <urn:tag> <urn:gold> } } ?x <urn:knows> ?y }`,
		`SELECT * WHERE { ?x <urn:knows> ?y { SELECT ?y (COUNT(*) AS ?c) WHERE { ?y <urn:knows> ?z } GROUP BY ?y } }`,
		// Property paths: forward, reverse, loops, pairs, pre-bound ends.
		`SELECT ?y WHERE { <urn:a0> <urn:knows>+ ?y }`,
		`SELECT ?x WHERE { ?x <urn:knows>+ <urn:a5> }`,
		`SELECT ?x WHERE { ?x <urn:knows>+ ?x }`,
		`SELECT * WHERE { ?x <urn:special>/<urn:knows> ?y }`,
		`SELECT * WHERE { ?x <urn:tag> <urn:gold> . ?x (<urn:knows>|<urn:special>)+ ?y }`,
		`ASK { <urn:a0> <urn:knows>/<urn:knows> <urn:a2> }`,
		`ASK { <urn:a0> <urn:nothere>+ <urn:a2> }`,
		// Solution modifiers: DISTINCT/REDUCED, ORDER, slicing, star.
		`SELECT DISTINCT ?y WHERE { ?x <urn:knows> ?y . ?z <urn:knows> ?y }`,
		`SELECT REDUCED ?a WHERE { ?x <urn:age> ?a }`,
		`SELECT ?a WHERE { ?x <urn:age> ?a } ORDER BY DESC(?a) LIMIT 3`,
		`SELECT ?n WHERE { ?x <urn:name> ?n } ORDER BY ?n OFFSET 1 LIMIT 2`,
		`SELECT DISTINCT ?t WHERE { ?x <urn:tag> ?t } LIMIT 1`,
		// Aggregation: grouped, having, hidden order keys, empty input.
		`SELECT ?y (COUNT(*) AS ?c) WHERE { ?x <urn:knows> ?y } GROUP BY ?y ORDER BY DESC(?c) ?y`,
		`SELECT ?x (SUM(?a) AS ?s) WHERE { ?x <urn:age> ?a } GROUP BY ?x HAVING (SUM(?a) > 23)`,
		`SELECT (COUNT(*) AS ?c) (MAX(?a) AS ?m) WHERE { ?x <urn:age> ?a }`,
		`SELECT (COUNT(*) AS ?c) WHERE { ?x <urn:nothere> ?a }`,
		`SELECT (GROUP_CONCAT(?n ; separator=",") AS ?all) WHERE { ?x <urn:name> ?n }`,
		// Expression projections.
		`SELECT (?a + 1 AS ?b) WHERE { ?x <urn:age> ?a } ORDER BY ?b`,
		// Empty lexical forms bind nothing (Unbound is ""), uniformly.
		`SELECT ?x ?e WHERE { ?x <urn:age> ?a BIND ("" AS ?e) FILTER (BOUND(?e)) }`,
		`SELECT ?x ?e WHERE { ?x <urn:age> ?a BIND ("" AS ?e) FILTER (!BOUND(?e)) }`,
		`SELECT ?x ?e WHERE { ?x <urn:age> ?a BIND ("" AS ?e) } VALUES ?e { "z" }`,
		`SELECT ?x ?l WHERE { ?x <urn:name> ?n BIND (LANG(?n) AS ?l) }`,
		// ASK over operators.
		`ASK { ?x <urn:age> ?a FILTER (?a > 100) }`,
		`ASK { ?x <urn:tag> <urn:gold> MINUS { ?x <urn:age> ?a } }`,
		// CONSTRUCT / DESCRIBE.
		`CONSTRUCT { ?y <urn:knownBy> ?x } WHERE { ?x <urn:knows> ?y }`,
		`DESCRIBE <urn:a0>`,
		`DESCRIBE ?x WHERE { ?x <urn:tag> <urn:gold> }`,
	} {
		diffColumnarLegacy(t, sn, src)
	}
}

// TestColumnarDifferentialRandom is the randomized half: random small
// stores, random operator trees mixing BGPs with OPTIONAL / UNION /
// MINUS / FILTER / VALUES / DISTINCT and property paths.
func TestColumnarDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 150; trial++ {
		st := rdf.NewStore()
		nNodes := 4 + rng.Intn(10)
		nPreds := 1 + rng.Intn(3)
		for i := 0; i < 5+rng.Intn(40); i++ {
			st.Add(
				fmt.Sprintf("urn:n%d", rng.Intn(nNodes)),
				fmt.Sprintf("urn:p%d", rng.Intn(nPreds)),
				fmt.Sprintf("urn:n%d", rng.Intn(nNodes)),
			)
		}
		sn := st.Freeze()
		src := randomQuery(rng, nNodes, nPreds)
		diffColumnarLegacy(t, sn, src)
	}
}

// randomQuery builds one random query over the urn:n*/urn:p* store
// vocabulary. Shared by the differential test and FuzzExecDifferential.
func randomQuery(rng *rand.Rand, nNodes, nPreds int) string {
	nVars := 1 + rng.Intn(4)
	v := func() string { return fmt.Sprintf("?v%d", rng.Intn(nVars)) }
	node := func() string { return fmt.Sprintf("<urn:n%d>", rng.Intn(nNodes+2)) }
	pred := func() string { return fmt.Sprintf("<urn:p%d>", rng.Intn(nPreds)) }
	term := func() string {
		if rng.Float64() < 0.6 {
			return v()
		}
		return node()
	}
	triple := func() string {
		p := pred()
		if rng.Float64() < 0.15 {
			p = v()
		}
		return term() + " " + p + " " + term()
	}
	var elems []string
	for i := 0; i < 1+rng.Intn(3); i++ {
		elems = append(elems, triple())
	}
	if rng.Float64() < 0.4 {
		elems = append(elems, "OPTIONAL { "+triple()+" }")
	}
	if rng.Float64() < 0.3 {
		elems = append(elems, "{ "+triple()+" } UNION { "+triple()+" }")
	}
	if rng.Float64() < 0.3 {
		elems = append(elems, "MINUS { "+triple()+" }")
	}
	if rng.Float64() < 0.3 {
		elems = append(elems, fmt.Sprintf("FILTER (%s != %s)", v(), node()))
	}
	if rng.Float64() < 0.25 {
		elems = append(elems, fmt.Sprintf("FILTER EXISTS { %s }", triple()))
	}
	if rng.Float64() < 0.3 {
		elems = append(elems, fmt.Sprintf("VALUES %s { %s %s }", v(), node(), node()))
	}
	if rng.Float64() < 0.3 {
		op := "+"
		if rng.Float64() < 0.5 {
			op = "*"
		}
		elems = append(elems, fmt.Sprintf("%s %s%s %s", term(), pred(), op, term()))
	}
	body := strings.Join(elems, " . ")
	switch rng.Intn(4) {
	case 0:
		return "ASK { " + body + " }"
	case 1:
		return "SELECT DISTINCT * WHERE { " + body + " }"
	default:
		return "SELECT * WHERE { " + body + " }"
	}
}

// TestColumnarRowLimitParity: the executor must reproduce the legacy
// row-budget errors where they guard real blowups (an unbounded path
// pair enumeration), and its streaming LIMIT is allowed to succeed
// where legacy overflowed — but never to return wrong rows.
func TestColumnarRowLimitParity(t *testing.T) {
	st := rdf.NewStore()
	for i := 0; i < 10; i++ {
		st.Add(fmt.Sprintf("urn:x%d", i), "urn:p", fmt.Sprintf("urn:y%d", i))
	}
	sn := st.Freeze()
	q, _ := sparql.Parse(`SELECT ?s ?o WHERE { ?s <urn:p>+ ?o }`)
	if _, err := QueryWithLimits(sn, q, Limits{MaxRows: 3}); err == nil {
		t.Fatal("10 path pairs under MaxRows=3 must error on the columnar path too")
	}
	// Streaming LIMIT succeeds where the legacy evaluator overflowed:
	// the join result is 2000 rows against a 1500-row budget, but with
	// LIMIT 2 the pull stops after the first batch — the spill-free
	// improvement the pull model buys. (A single row's join fan-out is
	// still atomic, so budgets tighter than one batch behave exactly
	// like legacy, as the path case above pins.)
	st2 := rdf.NewStore()
	for i := 0; i < 50; i++ {
		st2.Add(fmt.Sprintf("urn:s%d", i), "urn:q", "urn:anchor")
		for j := 0; j < 40; j++ {
			st2.Add(fmt.Sprintf("urn:s%d", i), "urn:p", fmt.Sprintf("urn:o%d", j))
		}
	}
	sn2 := st2.Freeze()
	src := `SELECT ?x ?w WHERE { ?x <urn:q> ?y . ?x <urn:p> ?w } LIMIT 2`
	q2, _ := sparql.Parse(src)
	if _, err := QueryWithLimits(sn2, q2, Limits{MaxRows: 1500, NoReorder: true, Legacy: true}); err == nil {
		t.Fatal("legacy should overflow the 1500-row budget on the 2000-row join")
	}
	res, err := QueryWithLimits(sn2, q2, Limits{MaxRows: 1500, NoReorder: true})
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("streaming limit under tight budget: rows=%v err=%v", res, err)
	}
}

// TestMinusLazyBehindDeadInput: when the required pattern matches
// nothing, the MINUS body must never evaluate — the legacy group
// short-circuits at the empty intermediate result, so a removal set
// that would overflow the row budget must not turn the empty answer
// into an error on the columnar path either.
func TestMinusLazyBehindDeadInput(t *testing.T) {
	st := rdf.NewStore()
	for i := 0; i < 50; i++ {
		st.Add(fmt.Sprintf("urn:s%d", i), "urn:p", fmt.Sprintf("urn:o%d", i))
	}
	sn := st.Freeze()
	q, err := sparql.Parse(`SELECT * WHERE { ?s <urn:nothere> ?o . MINUS { ?a ?b ?c } }`)
	if err != nil {
		t.Fatal(err)
	}
	for _, lim := range []Limits{{MaxRows: 10}, {MaxRows: 10, Legacy: true}} {
		res, err := QueryWithLimits(sn, q, lim)
		if err != nil {
			t.Fatalf("legacy=%v: dead input must skip the overflowing MINUS body: %v", lim.Legacy, err)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("legacy=%v: rows = %v, want none", lim.Legacy, res.Rows)
		}
	}
	// With live input the body does evaluate and the budget applies.
	q2, _ := sparql.Parse(`SELECT * WHERE { ?s <urn:p> ?o . MINUS { ?a ?b ?c } }`)
	if _, err := QueryWithLimits(sn, q2, Limits{MaxRows: 10}); err == nil {
		t.Fatal("live input must still hit the MINUS body's row budget")
	}
}

// TestQueryContextCancellation: a cancelled context aborts evaluation
// promptly with an error instead of returning a partial result.
func TestQueryContextCancellation(t *testing.T) {
	st := rdf.NewStore()
	for i := 0; i < 60; i++ {
		for j := 0; j < 60; j++ {
			st.Add(fmt.Sprintf("urn:s%d", i), "urn:p", fmt.Sprintf("urn:o%d", j))
		}
	}
	sn := st.Freeze()
	// A cross product with 3600^2 intermediate rows: never finishes fast.
	q, err := sparql.Parse(`SELECT * WHERE { ?a <urn:p> ?b . ?c <urn:p> ?d . ?e <urn:p> ?f }`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, qerr := QueryContext(ctx, sn, q, Limits{MaxRows: 1 << 30})
	if qerr == nil {
		t.Fatal("expected cancellation error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}

	// Pre-cancelled context: no work at all.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, qerr := QueryContext(ctx2, sn, q, Limits{MaxRows: 1 << 30}); qerr == nil {
		t.Fatal("pre-cancelled context must error")
	}
}
