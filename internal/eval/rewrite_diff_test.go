package eval

import (
	"strings"
	"testing"

	"sparqlog/internal/lint"
	"sparqlog/internal/sparql"
)

// rewriteCorpus holds equality-filter queries over socialStore. The
// data is IRI-valued on the collapsed positions, so value equality and
// term equality coincide and the rewrite must be exact.
var rewriteCorpus = []string{
	`SELECT ?a ?b WHERE { ?a <urn:knows> ?b . ?a <urn:tag> ?t . FILTER(?t = ?g) . ?x <urn:tag> ?g }`,
	`SELECT ?a ?c WHERE { ?a <urn:knows> ?b . ?c <urn:knows> ?b2 . FILTER(?b = ?b2) }`,
	`SELECT * WHERE { ?a <urn:knows> ?b . ?a <urn:special> ?c . FILTER(?b = ?c) }`,
	`SELECT ?a WHERE { ?a <urn:knows> ?b . ?b <urn:knows> ?c . FILTER(?a = ?c) }`,
	`ASK { ?a <urn:tag> ?t . ?b <urn:tag> ?u . FILTER(?t = ?u) }`,
	// Not collapsible (?c escapes into the OPTIONAL on both sides):
	// must evaluate identically anyway.
	`SELECT * WHERE { ?a <urn:knows> ?b . ?a <urn:special> ?c . FILTER(?b = ?c) OPTIONAL { ?b <urn:age> ?c } }`,
	// Projection keeps the dropped variable visible.
	`SELECT ?b ?b2 WHERE { ?a <urn:knows> ?b . ?c <urn:knows> ?b2 . FILTER(?b = ?b2) }`,
	// ORDER BY over the dropped variable.
	`SELECT ?c WHERE { ?a <urn:knows> ?b . ?a <urn:special> ?c . FILTER(?b = ?c) } ORDER BY ?c`,
}

// TestCollapseEqualitiesDifferential proves the SQL007 rewrite
// preserves semantics: rewrite-enabled evaluation must match both the
// default columnar path and the legacy path, row for row.
func TestCollapseEqualitiesDifferential(t *testing.T) {
	sn := socialStore()
	rewritten := 0
	for _, src := range rewriteCorpus {
		q, err := sparql.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, ok := lint.CollapseEqualities(q); ok {
			rewritten++
		}
		plain, perr := QueryWithLimits(sn, q, Limits{})
		opt, oerr := QueryWithLimits(sn, q, Limits{CollapseEqualities: true})
		legacyOpt, lerr := QueryWithLimits(sn, q, Limits{CollapseEqualities: true, Legacy: true})
		if (perr == nil) != (oerr == nil) || (perr == nil) != (lerr == nil) {
			t.Fatalf("error divergence on %q: plain=%v opt=%v legacy-opt=%v", src, perr, oerr, lerr)
		}
		if perr != nil {
			continue
		}
		for name, got := range map[string]*Result{"opt": opt, "legacy-opt": legacyOpt} {
			if plain.Bool != got.Bool {
				t.Fatalf("ASK diverges on %q (%s): %v vs %v", src, name, plain.Bool, got.Bool)
			}
			if strings.Join(plain.Vars, ",") != strings.Join(got.Vars, ",") {
				t.Fatalf("vars diverge on %q (%s): %v vs %v", src, name, plain.Vars, got.Vars)
			}
			a, b := sortedRows(plain), sortedRows(got)
			if len(a) != len(b) {
				t.Fatalf("row counts diverge on %q (%s): %d vs %d", src, name, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("rows diverge on %q (%s) at %d:\nplain: %q\nrewritten: %q", src, name, i, a[i], b[i])
				}
			}
		}
	}
	if rewritten == 0 {
		t.Fatal("no corpus query actually rewrote — the differential is vacuous")
	}
}
