package eval

import (
	"strconv"
	"strings"

	"sparqlog/internal/exec"
	"sparqlog/internal/sparql"
)

// This file lowers GROUP BY / aggregate queries onto the columnar
// exec.GroupBy operator. planAggregate rewrites the query's aggregate
// expressions: every AggregateExpr reachable through BinaryExpr/
// UnaryExpr chains (the exact set the legacy evalAggregateExpr
// descends) is replaced by a hidden variable whose schema slot the
// GroupBy operator fills with the finalized aggregate, and the
// surrounding expression then evaluates per emitted group row through
// evalAggRow. Shapes whose group-row evaluation could diverge from the
// legacy members[0] semantics — expression group keys, EXISTS in a
// finishing expression, free variables the group row cannot carry —
// return nil and take the legacy-shape finisher over drained rows, so
// the columnar path never has to approximate.

// hiddenAggPrefix namespaces the compiler's hidden aggregate-output
// variables. A leading space cannot appear in a parsed variable name,
// so hidden slots can never collide with (or be projected as) user
// variables. The rune after the prefix marks the aggregate family:
// hiddenConcatMark for GROUP_CONCAT, whose result must stay
// non-numeric at the top level (legacy computeAggregate returns a bare
// lexical value; every other aggregate's result re-parses faithfully).
const hiddenAggPrefix = " agg"

const hiddenConcatMark = 'C'

// isHiddenAggVar reports whether name is a compiler-hidden aggregate
// output variable.
func isHiddenAggVar(name string) bool {
	return strings.HasPrefix(name, hiddenAggPrefix)
}

// orderKeyPlan is one compiled ORDER BY key.
type orderKeyPlan struct {
	expr sparql.Expr
	desc bool
	// errAsEmpty: an evaluation error yields the empty-string key (the
	// legacy orderAggregated reads a projected column's cell text, and
	// an errored cell is ""), instead of the skip-this-pair semantics
	// of directly evaluated keys.
	errAsEmpty bool
	// reparse re-derives the key value from its text (textValue), the
	// way the legacy path re-parses a projected column's cell.
	reparse bool
}

// aggPlan is a compiled aggregate finishing plan.
type aggPlan struct {
	spec exec.GroupSpec
	// rq is the rewritten query: Select expressions with aggregates
	// replaced by hidden variables, SelectStar forced off, and
	// GroupBy/Having/OrderBy cleared (they compile to operators).
	rq *sparql.Query
	// having holds the rewritten HAVING constraints, one filter each.
	having []sparql.Expr
	order  []orderKeyPlan
}

// aggBuild accumulates aggregate specs during the rewrite, deduping
// identical aggregate expressions onto one hidden slot.
type aggBuild struct {
	ce    *colExec
	specs []exec.AggSpec
	sigs  map[string]sparql.Expr // aggregate signature → hidden var leaf
}

// aggKindOf maps a parsed aggregate onto its columnar kind; false
// routes the query to the legacy-shape finisher (unknown aggregate
// names there evaluate to an expression error).
func aggKindOf(a *sparql.AggregateExpr) (exec.AggKind, bool) {
	if a.Star {
		// Only COUNT(*) counts rows; other Star forms keep legacy
		// semantics (SUM(*) = 0, MIN(*) = error, ...).
		return exec.AggCountStar, a.Name == "COUNT"
	}
	switch a.Name {
	case "COUNT":
		return exec.AggCount, true
	case "SUM":
		return exec.AggSum, true
	case "MIN":
		return exec.AggMin, true
	case "MAX":
		return exec.AggMax, true
	case "AVG":
		return exec.AggAvg, true
	case "SAMPLE":
		return exec.AggSample, true
	case "GROUP_CONCAT":
		return exec.AggConcat, true
	}
	return 0, false
}

// exprVar unwraps a bare-variable expression.
func exprVar(e sparql.Expr) (string, bool) {
	te, ok := e.(*sparql.TermExpr)
	if !ok || te.Term.Kind != sparql.TermVar {
		return "", false
	}
	return te.Term.Value, true
}

// aggVar returns the hidden-variable leaf standing for the aggregate,
// registering its spec (and schema slot) on first sight.
func (b *aggBuild) aggVar(a *sparql.AggregateExpr) (sparql.Expr, bool) {
	kind, ok := aggKindOf(a)
	if !ok {
		return nil, false
	}
	slot, argName := -1, ""
	if !a.Star {
		name, ok := exprVar(a.Arg)
		if !ok {
			// Computed aggregate arguments (COUNT(?x+1)) have no input
			// slot; the legacy finisher handles them.
			return nil, false
		}
		argName = name
		if s, ok := b.ce.schema.SlotOf(name); ok {
			slot = s
		}
	}
	sep := " "
	if a.HasSep {
		sep = a.Separator
	}
	distinct := a.Distinct && !a.Star
	sig := a.Name + "|" + strconv.FormatBool(a.Star) + "|" +
		strconv.FormatBool(distinct) + "|" + argName + "|" + sep
	if leaf, ok := b.sigs[sig]; ok {
		return leaf, true
	}
	mark := "N"
	if kind == exec.AggConcat {
		mark = string(hiddenConcatMark)
	}
	name := hiddenAggPrefix + mark + strconv.Itoa(len(b.specs))
	out := b.ce.schema.Slot(name)
	b.specs = append(b.specs, exec.AggSpec{
		Kind: kind, Slot: slot, Out: out, Distinct: distinct, Sep: sep,
	})
	leaf := &sparql.TermExpr{Term: sparql.Term{Kind: sparql.TermVar, Value: name}}
	if b.sigs == nil {
		b.sigs = map[string]sparql.Expr{}
	}
	b.sigs[sig] = leaf
	return leaf, true
}

// rewrite replaces aggregate nodes with hidden-variable leaves,
// descending exactly the Binary/Unary chains evalAggregateExpr does —
// an aggregate nested anywhere else (a function argument, an IN list)
// is an expression error in the legacy path and must stay one.
func (b *aggBuild) rewrite(e sparql.Expr) (sparql.Expr, bool) {
	switch n := e.(type) {
	case *sparql.AggregateExpr:
		return b.aggVar(n)
	case *sparql.BinaryExpr:
		l, ok := b.rewrite(n.L)
		if !ok {
			return nil, false
		}
		r, ok := b.rewrite(n.R)
		if !ok {
			return nil, false
		}
		return &sparql.BinaryExpr{Op: n.Op, L: l, R: r}, true
	case *sparql.UnaryExpr:
		x, ok := b.rewrite(n.X)
		if !ok {
			return nil, false
		}
		return &sparql.UnaryExpr{Op: n.Op, X: x}, true
	}
	return e, true
}

// planAggregate compiles the query's aggregate finishing onto columnar
// operators, or returns nil for the legacy-shape finisher. Must run
// after collectVars and before the schema width freezes: it assigns
// the hidden aggregate-output slots.
func (ce *colExec) planAggregate(q *sparql.Query) *aggPlan {
	b := &aggBuild{ce: ce}
	ap := &aggPlan{}

	// Group keys: plain variables only. An expression key (or AS alias)
	// computes per input row through the Pool, which the operator keys
	// on slots cannot express.
	keyVars := map[string]bool{}
	for _, gk := range q.Mods.GroupBy {
		if gk.AsVar {
			return nil
		}
		name, ok := exprVar(gk.Expr)
		if !ok {
			return nil
		}
		keyVars[name] = true
		if s, ok := ce.schema.SlotOf(name); ok {
			ap.spec.Keys = append(ap.spec.Keys, s)
		}
		// A key variable without a slot is never bound: its key text is
		// constantly "" and cannot split groups, so it packs nothing.
	}
	ap.spec.EmptyGroup = len(q.Mods.GroupBy) == 0

	// Projection: plain variables pass through (non-key ones capture the
	// group's first row via AggFirst — the legacy members[0] read);
	// expression items rewrite.
	plainProjected := map[string]bool{}
	firstOf := map[int]bool{}
	sel := make([]sparql.SelectItem, 0, len(q.Select))
	for _, it := range q.Select {
		if it.Expr == nil {
			name := it.Var.Value
			plainProjected[name] = true
			if s, ok := ce.schema.SlotOf(name); ok && !keyVars[name] && !firstOf[s] {
				firstOf[s] = true
				b.specs = append(b.specs, exec.AggSpec{Kind: exec.AggFirst, Slot: s, Out: s})
			}
			sel = append(sel, it)
			continue
		}
		if _, clash := ce.schema.SlotOf(it.Var.Value); clash {
			// An expression alias shadowing a WHERE variable: projected
			// cells and group-row bindings would disagree about which
			// value the name means. Rare and legacy-defined; fall back.
			return nil
		}
		re, ok := b.rewrite(it.Expr)
		if !ok {
			return nil
		}
		sel = append(sel, sparql.SelectItem{Var: it.Var, Expr: re})
	}

	for _, h := range q.Mods.Having {
		re, ok := b.rewrite(h)
		if !ok {
			return nil
		}
		ap.having = append(ap.having, re)
	}

	// ORDER BY: a key naming a projected item sorts by that column's
	// cell — substitute the item's rewritten expression and re-parse its
	// text, with evaluation errors keying as "" (an errored cell is
	// empty, not skipped). Everything else evaluates on the group row
	// with the direct err-skip semantics.
	for _, k := range q.Mods.OrderBy {
		if name, isVar := exprVar(k.Expr); isVar {
			col := -1
			for i, it := range q.Select {
				if it.Var.Value == name {
					col = i
					break
				}
			}
			if col >= 0 {
				ke := sel[col].Expr
				if ke == nil {
					ke = &sparql.TermExpr{Term: sel[col].Var}
				}
				ap.order = append(ap.order, orderKeyPlan{expr: ke, desc: k.Desc, errAsEmpty: true, reparse: true})
				continue
			}
		}
		re, ok := b.rewrite(k.Expr)
		if !ok {
			return nil
		}
		ap.order = append(ap.order, orderKeyPlan{expr: re, desc: k.Desc})
	}

	// The emitted group row carries only key slots, AggFirst captures,
	// and hidden aggregate outputs. Any other variable an expression
	// touches — bound in the group's first member but absent from the
	// group row — or an EXISTS (whose evaluation seeds the full row)
	// diverges from members[0]: fall back. Variables without a schema
	// slot are safe: they are unbound on both paths.
	safe := true
	checkVars := func(e sparql.Expr) {
		sparql.WalkExpr(e, func(x sparql.Expr) bool {
			switch n := x.(type) {
			case *sparql.ExistsExpr:
				safe = false
			case *sparql.TermExpr:
				if n.Term.Kind != sparql.TermVar {
					break
				}
				name := n.Term.Value
				if isHiddenAggVar(name) || keyVars[name] || plainProjected[name] {
					break
				}
				if _, bound := ce.schema.SlotOf(name); bound {
					safe = false
				}
			}
			return safe
		})
	}
	for _, it := range sel {
		if it.Expr != nil {
			checkVars(it.Expr)
		}
	}
	for _, h := range ap.having {
		checkVars(h)
	}
	for _, k := range ap.order {
		checkVars(k.expr)
	}
	if !safe {
		return nil
	}

	ap.spec.Aggs = b.specs
	rq := *q
	rq.Select = sel
	rq.SelectStar = false
	mods := q.Mods
	mods.GroupBy, mods.Having, mods.OrderBy = nil, nil, nil
	rq.Mods = mods
	ap.rq = &rq
	return ap
}

// projectAgg projects the aggregated stream, mirroring the legacy
// finishAggregate's row build: expression items evaluate through
// evalAggRow (an error leaves the cell empty), plain variables read
// their slot — the group key, or the AggFirst capture of the group's
// first member. synth marks the synthetic empty-input group, whose
// non-aggregate leaves all error.
func (ce *colExec) projectAgg(q *sparql.Query, envs []env, synth bool) *Result {
	res := &Result{}
	for _, it := range q.Select {
		res.Vars = append(res.Vars, it.Var.Value)
	}
	for _, b := range envs {
		row := make([]string, len(res.Vars))
		for i, it := range q.Select {
			if it.Expr != nil {
				if v, err := ce.ev.evalAggRow(it.Expr, b, synth); err == nil {
					row[i] = v.text()
				}
				continue
			}
			row[i], _ = b.lookupVar(it.Var.Value)
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}
