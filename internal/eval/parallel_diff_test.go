package eval

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"sparqlog/internal/rdf"
	"sparqlog/internal/sparql"
)

// This file is the intra-query parallelism differential: every query
// runs once with Limits.Parallel=1 (the serial reference) and once with
// a forced multi-worker exchange, and the results must be identical —
// not just as multisets but row for row, because the exchange's
// sequence-numbered merge promises the exact serial order (and
// LIMIT-without-ORDER-BY picks *which* rows survive, so order-
// insensitive comparison would be too weak). The tests lower the
// planner gate so the exchange engages on test-sized stores.

// forceParallel drops the cardinality gate for the duration of a test
// so compileParallelRun triggers on small stores.
func forceParallel(t *testing.T) {
	t.Helper()
	saved := parallelMinRows
	parallelMinRows = 0
	t.Cleanup(func() { parallelMinRows = saved })
}

// diffParallelSerial requires identical outcomes — error class, ASK
// answer, projection, and the exact row sequence — between serial and
// 4-worker evaluation.
func diffParallelSerial(t *testing.T, sn *rdf.Snapshot, src string, lim Limits) {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	slim, plim := lim, lim
	slim.Parallel = 1
	plim.Parallel = 4
	serial, serr := QueryWithLimits(sn, q, slim)
	par, perr := QueryWithLimits(sn, q, plim)
	if (serr == nil) != (perr == nil) {
		t.Fatalf("error divergence on %q: serial=%v parallel=%v", src, serr, perr)
	}
	if serr != nil {
		return
	}
	if serial.Bool != par.Bool {
		t.Fatalf("ASK diverges on %q: serial=%v parallel=%v", src, serial.Bool, par.Bool)
	}
	if strings.Join(serial.Vars, ",") != strings.Join(par.Vars, ",") {
		t.Fatalf("vars diverge on %q: %v vs %v", src, serial.Vars, par.Vars)
	}
	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("row counts diverge on %q: serial=%d parallel=%d", src, len(serial.Rows), len(par.Rows))
	}
	for i := range serial.Rows {
		a := strings.Join(serial.Rows[i], "\x1f")
		b := strings.Join(par.Rows[i], "\x1f")
		if a != b {
			t.Fatalf("rows diverge on %q at %d:\nserial:   %q\nparallel: %q", src, i, a, b)
		}
	}
}

// TestParallelDifferentialOperators replays the operator corpus with a
// forced exchange: the same queries the columnar/legacy differential
// pins down, now serial vs parallel.
func TestParallelDifferentialOperators(t *testing.T) {
	forceParallel(t)
	sn := socialStore()
	for _, src := range []string{
		`SELECT * WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z }`,
		`SELECT * WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z . ?z <urn:knows> ?w }`,
		`SELECT * WHERE { ?x <urn:knows> ?x . ?x <urn:knows> ?y }`,
		`SELECT * WHERE { ?x <urn:knows> ?y . ?x <urn:nothere> ?z }`,
		`SELECT * WHERE { ?s ?p ?o . ?o ?q ?r }`,
		// Interior filters are transparent to the run; they apply after
		// the merge.
		`SELECT * WHERE { ?x <urn:knows> ?y FILTER (?y != <urn:a3>) ?y <urn:knows> ?z }`,
		`SELECT * WHERE { ?x <urn:age> ?a . ?x <urn:knows> ?y FILTER (?a > 22) }`,
		// Paths inside the run (worker chains clone the path operator).
		`SELECT * WHERE { ?x <urn:tag> <urn:gold> . ?x (<urn:knows>|<urn:special>)+ ?y }`,
		`SELECT * WHERE { ?x <urn:knows> ?y . ?y <urn:knows>+ ?z }`,
		`SELECT ?x ?y WHERE { ?x <urn:knows>+ ?y . ?y <urn:tag> <urn:gold> }`,
		// Downstream operators consume the merged stream.
		`SELECT * WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z OPTIONAL { ?z <urn:age> ?a } }`,
		`SELECT * WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z MINUS { ?z <urn:tag> <urn:gold> } }`,
		`SELECT * WHERE { { ?x <urn:knows> ?y . ?y <urn:knows> ?z } UNION { ?x <urn:special> ?z } }`,
		`SELECT ?z WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z FILTER EXISTS { ?z <urn:age> ?a } }`,
		`SELECT * WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z BIND (CONCAT(STR(?x), "-") AS ?k) }`,
		`SELECT * WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z VALUES ?x { <urn:a2> <urn:a7> } }`,
		`SELECT * WHERE { { SELECT ?x WHERE { ?x <urn:tag> <urn:gold> } } ?x <urn:knows> ?y . ?y <urn:knows> ?z }`,
		`SELECT ?g ?x ?y WHERE { GRAPH ?g { ?x <urn:knows> ?y . ?y <urn:knows> ?z } }`,
		// Streaming DISTINCT with worker pre-dedup, LIMIT early exit.
		`SELECT DISTINCT ?y WHERE { ?x <urn:knows> ?y . ?z <urn:knows> ?y }`,
		`SELECT DISTINCT ?z WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z } LIMIT 3`,
		`SELECT ?z WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z } LIMIT 4`,
		`SELECT ?z WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z } OFFSET 5 LIMIT 5`,
		// Modifiers that materialize: ORDER BY, aggregation over the
		// merged stream.
		`SELECT ?z WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z } ORDER BY ?z LIMIT 3`,
		`SELECT ?y (COUNT(*) AS ?c) WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z } GROUP BY ?y ORDER BY DESC(?c) ?y`,
		`SELECT (COUNT(*) AS ?c) WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z }`,
		// ASK stops at the first merged row.
		`ASK { ?x <urn:knows> ?y . ?y <urn:knows> ?z }`,
		`ASK { ?x <urn:nothere> ?y . ?y <urn:knows> ?z }`,
		`CONSTRUCT { ?z <urn:knownBy2> ?x } WHERE { ?x <urn:knows> ?y . ?y <urn:knows> ?z }`,
	} {
		diffParallelSerial(t, sn, src, Limits{})
	}
}

// TestParallelDifferentialRandom is the randomized half, sharing the
// query generator with the columnar/legacy differential.
func TestParallelDifferentialRandom(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(173))
	for trial := 0; trial < 120; trial++ {
		st := rdf.NewStore()
		nNodes := 4 + rng.Intn(10)
		nPreds := 1 + rng.Intn(3)
		for i := 0; i < 5+rng.Intn(40); i++ {
			st.Add(
				fmt.Sprintf("urn:n%d", rng.Intn(nNodes)),
				fmt.Sprintf("urn:p%d", rng.Intn(nPreds)),
				fmt.Sprintf("urn:n%d", rng.Intn(nNodes)),
			)
		}
		sn := st.Freeze()
		src := randomQuery(rng, nNodes, nPreds)
		diffParallelSerial(t, sn, src, Limits{})
	}
}

// parallelChainStore is a store big enough that the exchange engages
// under the real gate too: a bipartite fan (s_i -p-> m_j -q-> o_k).
func parallelChainStore(fan int) *rdf.Snapshot {
	st := rdf.NewStore()
	for i := 0; i < fan; i++ {
		for j := 0; j < 8; j++ {
			st.Add(fmt.Sprintf("urn:s%d", i), "urn:p", fmt.Sprintf("urn:m%d", (i+j)%fan))
			st.Add(fmt.Sprintf("urn:m%d", i), "urn:q", fmt.Sprintf("urn:o%d", (i*7+j)%16))
		}
	}
	return st.Freeze()
}

// TestParallelExchangePlaced pins the compiler gating: an eligible
// two-pattern join on a large store places the exchange (surfaced as
// Result.Parallel with per-worker stats that add up), Parallel=1 does
// not, and neither does a replayed subtree.
func TestParallelExchangePlaced(t *testing.T) {
	sn := parallelChainStore(160)
	src := `SELECT * WHERE { ?s <urn:p> ?m . ?m <urn:q> ?o }`
	q, _ := sparql.Parse(src)

	res, err := QueryWithLimits(sn, q, Limits{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parallel == nil || res.Parallel.Workers != 4 {
		t.Fatalf("expected a 4-worker exchange, got %+v", res.Parallel)
	}
	var rows int64
	for _, ws := range res.Parallel.Stats {
		rows += ws.Rows
	}
	if rows != int64(len(res.Rows)) {
		t.Fatalf("worker stats rows = %d, want %d", rows, len(res.Rows))
	}

	res, err = QueryWithLimits(sn, q, Limits{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parallel != nil {
		t.Fatalf("Parallel=1 must stay serial, got %+v", res.Parallel)
	}

	// A replayed subtree never hosts an exchange, even when forced.
	forceParallel(t)
	q2, _ := sparql.Parse(`SELECT * WHERE { ?s <urn:p> ?m OPTIONAL { ?m <urn:q> ?o . ?o <urn:nothere> ?x } }`)
	res, err = QueryWithLimits(sn, q2, Limits{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parallel != nil {
		t.Fatalf("OPTIONAL body must not host an exchange, got %+v", res.Parallel)
	}
}

// TestParallelRowLimitParity: the shared per-operator row budget makes
// MaxRows trip (or not) independently of morsel scheduling, exactly as
// the serial pipeline decides it.
func TestParallelRowLimitParity(t *testing.T) {
	forceParallel(t)
	sn := parallelChainStore(40)
	src := `SELECT * WHERE { ?s <urn:p> ?m . ?m <urn:q> ?o }`
	q, _ := sparql.Parse(src)
	serialRes, serr := QueryWithLimits(sn, q, Limits{Parallel: 1})
	if serr != nil {
		t.Fatal(serr)
	}
	total := len(serialRes.Rows)
	for _, maxRows := range []int{total / 3, total - 1, total, total + 1} {
		_, serr := QueryWithLimits(sn, q, Limits{Parallel: 1, MaxRows: maxRows})
		_, perr := QueryWithLimits(sn, q, Limits{Parallel: 4, MaxRows: maxRows})
		if (serr == nil) != (perr == nil) {
			t.Fatalf("MaxRows=%d: serial err=%v, parallel err=%v", maxRows, serr, perr)
		}
	}
	// Streaming LIMIT under a tight budget must keep succeeding in
	// parallel: the early exit closes the exchange before the budget
	// would fill.
	q2, _ := sparql.Parse(src + ` LIMIT 2`)
	for _, par := range []int{1, 4} {
		res, err := QueryWithLimits(sn, q2, Limits{Parallel: par, MaxRows: total + 1})
		if err != nil || len(res.Rows) != 2 {
			t.Fatalf("parallel=%d: streaming limit rows=%d err=%v", par, len(res.Rows), err)
		}
	}
}

// TestParallelCancellationMidMorsel: cancelling mid-query aborts every
// worker promptly and the exchange reclaims its goroutines (a hang here
// fails the test by timeout).
func TestParallelCancellationMidMorsel(t *testing.T) {
	forceParallel(t)
	st := rdf.NewStore()
	for i := 0; i < 60; i++ {
		for j := 0; j < 60; j++ {
			st.Add(fmt.Sprintf("urn:s%d", i), "urn:p", fmt.Sprintf("urn:o%d", j))
		}
	}
	sn := st.Freeze()
	q, err := sparql.Parse(`SELECT * WHERE { ?a <urn:p> ?b . ?c <urn:p> ?d . ?e <urn:p> ?f }`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, qerr := QueryContext(ctx, sn, q, Limits{MaxRows: 1 << 30, Parallel: 4})
	if qerr == nil {
		t.Fatal("expected cancellation error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, qerr := QueryContext(ctx2, sn, q, Limits{MaxRows: 1 << 30, Parallel: 4}); qerr == nil {
		t.Fatal("pre-cancelled context must error")
	}
}
