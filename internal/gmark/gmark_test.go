package gmark

import (
	"testing"
	"time"

	"sparqlog/internal/engine"
	"sparqlog/internal/shapes"
	"sparqlog/internal/sparql"
)

func TestGenerateDeterministic(t *testing.T) {
	g1 := Generate(Config{Nodes: 500, Seed: 42})
	g2 := Generate(Config{Nodes: 500, Seed: 42})
	if g1.Triples != g2.Triples {
		t.Errorf("same seed produced %d vs %d triples", g1.Triples, g2.Triples)
	}
	g3 := Generate(Config{Nodes: 500, Seed: 43})
	if g3.Triples == g1.Triples {
		t.Log("different seeds produced same triple count (possible but unlikely)")
	}
	if g1.Triples == 0 {
		t.Fatal("no triples generated")
	}
}

func TestGenerateSchemaConformance(t *testing.T) {
	g := Generate(Config{Nodes: 400, Seed: 1})
	// Every cites edge must connect two papers.
	inType := func(id uint32, tp NodeType) bool {
		for _, n := range g.Nodes[tp] {
			if n == id {
				return true
			}
		}
		return false
	}
	pid := g.PredID["cites"]
	for _, tr := range g.Snapshot.ScanPredicate(pid) {
		if !inType(tr.S, Paper) || !inType(tr.O, Paper) {
			t.Fatal("cites edge violates schema")
		}
	}
	aid := g.PredID["authoredBy"]
	for _, tr := range g.Snapshot.ScanPredicate(aid) {
		if !inType(tr.S, Paper) || !inType(tr.O, Researcher) {
			t.Fatal("authoredBy edge violates schema")
		}
	}
}

func TestChainWorkloadShape(t *testing.T) {
	g := Generate(Config{Nodes: 300, Seed: 2})
	ws := g.Workload(Chain, 4, 20, 7)
	if len(ws) != 20 {
		t.Fatalf("workload size = %d, want 20", len(ws))
	}
	for _, q := range ws {
		if len(q.CQ.Atoms) != 4 || q.CQ.NumVars != 5 {
			t.Fatalf("chain query atoms/vars = %d/%d", len(q.CQ.Atoms), q.CQ.NumVars)
		}
		// The SPARQL text must parse and classify as a chain.
		pq, err := sparql.Parse(q.SPARQL)
		if err != nil {
			t.Fatalf("generated SPARQL does not parse: %v\n%s", err, q.SPARQL)
		}
		cg, _ := shapes.CanonicalGraph(pq.Triples(), shapes.Options{})
		if !cg.IsChain() {
			t.Errorf("generated chain is not a chain: %s", q.SPARQL)
		}
	}
}

func TestCycleWorkloadShape(t *testing.T) {
	g := Generate(Config{Nodes: 300, Seed: 3})
	for _, k := range []int{3, 4, 5, 6, 7, 8} {
		ws := g.Workload(Cycle, k, 10, int64(k))
		if len(ws) != 10 {
			t.Fatalf("cycle workload size = %d", len(ws))
		}
		for _, q := range ws {
			if len(q.CQ.Atoms) != k || q.CQ.NumVars != k {
				t.Fatalf("cycle query atoms/vars = %d/%d, want %d/%d", len(q.CQ.Atoms), q.CQ.NumVars, k, k)
			}
			pq, err := sparql.Parse(q.SPARQL)
			if err != nil {
				t.Fatalf("generated SPARQL does not parse: %v", err)
			}
			cg, _ := shapes.CanonicalGraph(pq.Triples(), shapes.Options{})
			if !cg.IsCycle() {
				t.Errorf("generated cycle (k=%d) is not a cycle: %s", k, q.SPARQL)
			}
		}
	}
}

func TestWorkloadsRunOnBothEngines(t *testing.T) {
	g := Generate(Config{Nodes: 800, Seed: 5})
	chains := g.Workload(Chain, 3, 5, 11)
	var cqs []engine.CQ
	for _, q := range chains {
		cqs = append(cqs, q.CQ)
	}
	bg := engine.RunWorkload(&engine.GraphEngine{}, g.Snapshot, cqs, 2*time.Second)
	pg := engine.RunWorkload(&engine.RelationalEngine{}, g.Snapshot, cqs, 2*time.Second)
	if bg.Queries != 5 || pg.Queries != 5 {
		t.Fatalf("queries = %d/%d", bg.Queries, pg.Queries)
	}
}

func TestCycleStepsTypeCheck(t *testing.T) {
	g := Generate(Config{Nodes: 200, Seed: 9})
	ws := g.Workload(Cycle, 5, 5, 13)
	for _, q := range ws {
		// Walk the steps through the schema and confirm closure.
		typeOf := map[string][2]NodeType{}
		for _, spec := range g.Schema {
			typeOf[spec.Name] = [2]NodeType{spec.From, spec.To}
		}
		var cur, start NodeType
		for i, st := range q.Steps {
			ft := typeOf[st.Pred]
			from, to := ft[0], ft[1]
			if st.Inverse {
				from, to = to, from
			}
			if i == 0 {
				start = from
				cur = from
			}
			if cur != from {
				t.Fatalf("step %d type mismatch: at %v, step needs %v", i, cur, from)
			}
			cur = to
		}
		if cur != start {
			t.Fatal("cycle does not close in the schema")
		}
	}
}
