// Package gmark is a schema-driven generator of graph instances and query
// workloads in the spirit of the gMark generator (Bagan et al., TKDE 2017)
// that the paper used for the chain/cycle experiment of Section 5.1. It
// implements the Bib use case: a bibliographical schema over researchers,
// papers, journals, conferences, and universities, plus chain- and
// cycle-shaped conjunctive-query workloads of configurable length.
package gmark

import (
	"fmt"
	"math/rand"
	"strings"

	"sparqlog/internal/engine"
	"sparqlog/internal/rdf"
)

// NodeType enumerates the Bib schema's node types.
type NodeType int

// Bib node types.
const (
	Researcher NodeType = iota
	Paper
	Journal
	Conference
	University
	numTypes
)

var typeNames = [...]string{"researcher", "paper", "journal", "conference", "university"}

// String names the node type.
func (t NodeType) String() string { return typeNames[t] }

// proportions of the node budget per type, mirroring the Bib use case.
var proportions = [...]float64{0.30, 0.58, 0.05, 0.05, 0.02}

// PredicateSpec describes one edge type of the schema.
type PredicateSpec struct {
	Name     string
	From, To NodeType
	// AvgOut is the mean out-degree of source nodes carrying the edge.
	AvgOut float64
	// Coverage is the fraction of source nodes that carry the edge.
	Coverage float64
	// Zipf skews target selection toward low-index targets when true
	// (modelling preferential attachment, e.g. highly cited papers).
	Zipf bool
	// Acyclic restricts edges to strictly lower-index targets within the
	// same node type, producing a DAG (e.g. citations go back in time).
	Acyclic bool
}

// BibSchema returns the Bib use case edge types.
func BibSchema() []PredicateSpec {
	return []PredicateSpec{
		{Name: "authoredBy", From: Paper, To: Researcher, AvgOut: 2.5, Coverage: 1.0},
		// Citations form a DAG: papers cite earlier papers (Acyclic).
		// Direction-consistent citation cycles therefore never close,
		// which is what drives relational-engine timeouts on cycle
		// workloads (Section 5.1).
		{Name: "cites", From: Paper, To: Paper, AvgOut: 3.0, Coverage: 0.9, Zipf: true, Acyclic: true},
		{Name: "publishedIn", From: Paper, To: Journal, AvgOut: 1.0, Coverage: 0.6},
		{Name: "presentedAt", From: Paper, To: Conference, AvgOut: 1.0, Coverage: 0.4},
		{Name: "affiliatedWith", From: Researcher, To: University, AvgOut: 1.0, Coverage: 0.95},
		{Name: "knows", From: Researcher, To: Researcher, AvgOut: 2.0, Coverage: 0.8, Zipf: true},
		{Name: "editorOf", From: Researcher, To: Journal, AvgOut: 1.0, Coverage: 0.05},
	}
}

// Graph is a generated instance: the frozen query-ready Snapshot, the
// dictionary of schema predicates, and per-type node ranges. The builder
// store used during generation is discarded once frozen, so a Graph
// holds one copy of the data.
type Graph struct {
	// Snapshot is the immutable index built at generation time; engines
	// and the eval package query it (concurrently, if desired).
	Snapshot *rdf.Snapshot
	PredID   map[string]rdf.ID
	Nodes    [numTypes][]rdf.ID
	Schema   []PredicateSpec
	N        int
	Triples  int
}

// Config controls instance generation.
type Config struct {
	// Nodes is the total node budget (the paper used 100k).
	Nodes int
	Seed  int64
}

// Generate builds a Bib instance of the requested size.
func Generate(cfg Config) *Graph {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 10000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &Graph{PredID: map[string]rdf.ID{}, Schema: BibSchema(), N: cfg.Nodes}
	store := rdf.NewStore()
	iri := func(t NodeType, i int) string {
		return fmt.Sprintf("http://gmark.bib/%s/%d", typeNames[t], i)
	}
	for t := NodeType(0); t < numTypes; t++ {
		cnt := int(float64(cfg.Nodes) * proportions[t])
		if cnt < 2 {
			cnt = 2
		}
		for i := 0; i < cnt; i++ {
			g.Nodes[t] = append(g.Nodes[t], store.Intern(iri(t, i)))
		}
	}
	for _, spec := range g.Schema {
		pid := store.Intern("http://gmark.bib/p/" + spec.Name)
		g.PredID[spec.Name] = pid
		sources := g.Nodes[spec.From]
		targets := g.Nodes[spec.To]
		pick := func(srcIdx int) rdf.ID {
			limit := len(targets)
			if spec.Acyclic {
				limit = srcIdx // only strictly earlier nodes
				if limit == 0 {
					return targets[0] // filtered below via dst==src check
				}
			}
			if spec.Zipf {
				// Quadratic skew toward low indexes.
				f := rng.Float64()
				return targets[int(f*f*float64(limit))]
			}
			return targets[rng.Intn(limit)]
		}
		for srcIdx, src := range sources {
			if rng.Float64() >= spec.Coverage {
				continue
			}
			// Poisson-ish degree: geometric around the mean.
			deg := 1
			for float64(deg) < spec.AvgOut*2 && rng.Float64() < 1-1/spec.AvgOut {
				deg++
			}
			if spec.AvgOut == 1.0 {
				deg = 1
			}
			for d := 0; d < deg; d++ {
				dst := pick(srcIdx)
				if dst == src {
					continue // no self-citations / self-knows
				}
				store.AddIDs(src, pid, dst)
			}
		}
	}
	g.Snapshot = store.Freeze()
	g.Triples = g.Snapshot.Len()
	return g
}

// Step is one edge of a generated query: a schema predicate traversed
// forward or backward.
type Step struct {
	Pred    string
	Inverse bool
}

// QueryShape selects the generated workload shape.
type QueryShape int

// Workload shapes (gMark also supports stars and chain-stars; the paper's
// experiment uses chains and cycles).
const (
	Chain QueryShape = iota
	Cycle
)

// String names the shape.
func (s QueryShape) String() string {
	if s == Cycle {
		return "cycle"
	}
	return "chain"
}

// Query is one generated query: its steps, its engine form, and its
// SPARQL text.
type Query struct {
	Shape  QueryShape
	Steps  []Step
	CQ     engine.CQ
	SPARQL string
}

// schemaEdge is a typed move in the schema multigraph.
type schemaEdge struct {
	spec    PredicateSpec
	inverse bool
}

func (g *Graph) movesFrom(t NodeType) []schemaEdge {
	var out []schemaEdge
	for _, spec := range g.Schema {
		if spec.From == t {
			out = append(out, schemaEdge{spec, false})
		}
		if spec.To == t {
			out = append(out, schemaEdge{spec, true})
		}
	}
	return out
}

func (e schemaEdge) target() NodeType {
	if e.inverse {
		return e.spec.From
	}
	return e.spec.To
}

// Workload generates count queries of the shape with the given number of
// conjuncts (the workload length of Figure 3's W-3 ... W-8).
func (g *Graph) Workload(shape QueryShape, length, count int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Query, 0, count)
	for len(out) < count {
		var steps []Step
		if shape == Chain {
			steps = g.randomChain(rng, length)
		} else {
			steps = g.randomCycle(rng, length)
		}
		if steps == nil {
			continue
		}
		out = append(out, g.buildQuery(shape, steps))
	}
	return out
}

// randomChain walks the schema multigraph for length steps, preferring
// forward edges (downstream navigation: paper -> researcher -> university),
// the low-fanout direction typical of gMark's Bib chain workloads.
func (g *Graph) randomChain(rng *rand.Rand, length int) []Step {
	t := NodeType(rng.Intn(int(numTypes)))
	steps := make([]Step, 0, length)
	for i := 0; i < length; i++ {
		moves := g.movesFrom(t)
		if len(moves) == 0 {
			return nil
		}
		var forward []schemaEdge
		for _, mv := range moves {
			if !mv.inverse {
				forward = append(forward, mv)
			}
		}
		var mv schemaEdge
		if len(forward) > 0 && rng.Float64() < 0.85 {
			mv = forward[rng.Intn(len(forward))]
		} else {
			mv = moves[rng.Intn(len(moves))]
		}
		steps = append(steps, Step{Pred: mv.spec.Name, Inverse: mv.inverse})
		t = mv.target()
	}
	return steps
}

// randomCycle walks the schema multigraph and returns to the start type in
// exactly length steps, searching with randomized depth-first descent.
func (g *Graph) randomCycle(rng *rand.Rand, length int) []Step {
	start := NodeType(rng.Intn(int(numTypes)))
	var steps []Step
	var dfs func(t NodeType, left int) bool
	dfs = func(t NodeType, left int) bool {
		if left == 0 {
			return t == start
		}
		moves := g.movesFrom(t)
		rng.Shuffle(len(moves), func(i, j int) { moves[i], moves[j] = moves[j], moves[i] })
		for _, mv := range moves {
			steps = append(steps, Step{Pred: mv.spec.Name, Inverse: mv.inverse})
			if dfs(mv.target(), left-1) {
				return true
			}
			steps = steps[:len(steps)-1]
		}
		return false
	}
	if !dfs(start, length) {
		return nil
	}
	return steps
}

// buildQuery converts steps into the engine CQ and SPARQL text. Chains use
// variables x0..xk; cycles identify xk with x0.
func (g *Graph) buildQuery(shape QueryShape, steps []Step) Query {
	k := len(steps)
	numVars := k + 1
	if shape == Cycle {
		numVars = k
	}
	varAt := func(i int) int {
		if shape == Cycle {
			return i % k
		}
		return i
	}
	var atoms []engine.Atom
	var sb strings.Builder
	sb.WriteString("ASK { ")
	for i, st := range steps {
		pid := g.PredID[st.Pred]
		from, to := varAt(i), varAt(i+1)
		if st.Inverse {
			from, to = to, from
		}
		atoms = append(atoms, engine.Atom{
			S: engine.V(from),
			P: engine.C(pid),
			O: engine.V(to),
		})
		if i > 0 {
			sb.WriteString(" . ")
		}
		fmt.Fprintf(&sb, "?x%d <http://gmark.bib/p/%s> ?x%d", from, st.Pred, to)
	}
	sb.WriteString(" }")
	return Query{
		Shape:  shape,
		Steps:  steps,
		CQ:     engine.CQ{Atoms: atoms, NumVars: numVars, Ask: true},
		SPARQL: sb.String(),
	}
}
