package server

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"sparqlog/internal/eval"
)

// referenceSV is the pre-streaming serializer: the whole document
// built in memory. writeSV must stay byte-identical to it.
func referenceSV(res *eval.Result, isAsk bool, sep byte) string {
	var sb strings.Builder
	if isAsk {
		if res.Bool {
			return "true\n"
		}
		return "false\n"
	}
	tsv := sep == '\t'
	for i, v := range res.Vars {
		if i > 0 {
			sb.WriteByte(sep)
		}
		if tsv {
			sb.WriteByte('?')
		}
		sb.WriteString(v)
	}
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		for i, cell := range row {
			if i > 0 {
				sb.WriteByte(sep)
			}
			if cell == eval.Unbound {
				continue
			}
			if tsv {
				sb.WriteString(tsvTerm(cell))
			} else {
				sb.WriteString(csvField(cell))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestWriteSVByteIdentical pins the streaming rewrite against the
// materializing reference over quoting and escaping corners.
func TestWriteSVByteIdentical(t *testing.T) {
	cases := []*eval.Result{
		{Vars: []string{"s", "v"}, Rows: [][]string{
			{"urn:a", "plain"},
			{"urn:b", `has "quotes", commas`},
			{"urn:c", "line\nbreak\ttab"},
			{"urn:d", eval.Unbound},
			{"_:b0", "ends\r"},
		}},
		{Vars: []string{"x"}, Rows: nil},
		{Bool: true},
		{Bool: false},
	}
	for ci, res := range cases {
		isAsk := res.Vars == nil
		for _, sep := range []byte{',', '\t'} {
			var buf bytes.Buffer
			if err := writeSV(&buf, res, isAsk, sep); err != nil {
				t.Fatalf("case %d sep %q: %v", ci, sep, err)
			}
			if got, want := buf.String(), referenceSV(res, isAsk, sep); got != want {
				t.Fatalf("case %d sep %q diverges:\ngot:  %q\nwant: %q", ci, sep, got, want)
			}
		}
	}
}

// chunkRecorder counts the Write calls it receives, i.e. the chunks a
// net/http ResponseWriter would put on the wire.
type chunkRecorder struct {
	bytes.Buffer
	writes int
}

func (c *chunkRecorder) Write(p []byte) (int, error) {
	c.writes++
	return c.Buffer.Write(p)
}

// TestWriteSVStreamsChunks proves a large SELECT answer leaves in
// multiple chunks — bytes hit the wire before serialization finishes —
// and that reassembling the chunks still yields the reference bytes.
func TestWriteSVStreamsChunks(t *testing.T) {
	res := &eval.Result{Vars: []string{"s", "o"}}
	for i := 0; i < 3*svFlushRows; i++ {
		res.Rows = append(res.Rows, []string{fmt.Sprintf("urn:s%d", i), fmt.Sprintf("value %d", i)})
	}
	for _, sep := range []byte{',', '\t'} {
		rec := &chunkRecorder{}
		if err := writeSV(rec, res, false, sep); err != nil {
			t.Fatal(err)
		}
		if rec.writes < 3 {
			t.Fatalf("sep %q: %d chunks, want >= 3 (output was materialized, not streamed)", sep, rec.writes)
		}
		if got, want := rec.String(), referenceSV(res, false, sep); got != want {
			t.Fatalf("sep %q: reassembled chunks diverge from reference", sep)
		}
	}
}
