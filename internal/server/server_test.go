package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"sparqlog/internal/core"
	"sparqlog/internal/eval"
	"sparqlog/internal/gmark"
	"sparqlog/internal/rdf"
)

const selectQuery = `PREFIX bib: <http://gmark.bib/p/>
SELECT ?x ?y WHERE { ?x bib:cites ?y } LIMIT 5`

const askQuery = `PREFIX bib: <http://gmark.bib/p/>
ASK { ?x bib:cites ?y }`

func testSnapshot(t testing.TB, nodes int) *rdf.Snapshot {
	t.Helper()
	return gmark.Generate(gmark.Config{Nodes: nodes, Seed: 17}).Snapshot
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Snapshot == nil {
		cfg.Snapshot = testSnapshot(t, 600)
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// decodeJSONRows pulls the bindings out of a JSON results document.
func decodeJSONRows(t *testing.T, body []byte) (vars []string, bindings []map[string]map[string]string) {
	t.Helper()
	var doc struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]map[string]string `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("bad JSON results: %v\n%s", err, body)
	}
	return doc.Head.Vars, doc.Results.Bindings
}

// TestProtocolConformance is the table-driven SPARQL 1.1 Protocol
// suite: the three request forms, content negotiation with fallbacks,
// and the error mapping.
func TestProtocolConformance(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxQueryBytes: 4096})

	get := func(q, accept string) *http.Request {
		req, _ := http.NewRequest("GET", ts.URL+"/query?query="+url.QueryEscape(q), nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		return req
	}
	postForm := func(q string) *http.Request {
		form := url.Values{"query": {q}}.Encode()
		req, _ := http.NewRequest("POST", ts.URL+"/query", strings.NewReader(form))
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		return req
	}
	postDirect := func(q string) *http.Request {
		req, _ := http.NewRequest("POST", ts.URL+"/query", strings.NewReader(q))
		req.Header.Set("Content-Type", "application/sparql-query")
		return req
	}

	tests := []struct {
		name       string
		req        *http.Request
		wantStatus int
		wantCT     string // content-type prefix
	}{
		{"GET query param", get(selectQuery, ""), 200, ctJSON},
		{"POST urlencoded form", postForm(selectQuery), 200, ctJSON},
		{"POST sparql-query body", postDirect(selectQuery), 200, ctJSON},
		{"accept JSON", get(selectQuery, ctJSON), 200, ctJSON},
		{"accept XML", get(selectQuery, ctXML), 200, ctXML},
		{"accept generic XML", get(selectQuery, "application/xml"), 200, ctXML},
		{"accept CSV", get(selectQuery, ctCSV), 200, ctCSV},
		{"accept TSV", get(selectQuery, ctTSV), 200, ctTSV},
		{"accept wildcard", get(selectQuery, "*/*"), 200, ctJSON},
		{"accept weighted", get(selectQuery, "text/csv;q=0.9, application/sparql-results+xml"), 200, ctXML},
		{"accept unsupported", get(selectQuery, "image/png"), 406, "text/plain"},
		{"missing query param", get("", ""), 400, "text/plain"},
		{"malformed query", get("SELECT WHERE {", ""), 400, "text/plain"},
		{"oversized query", get(selectQuery+strings.Repeat(" ", 5000), ""), 413, "text/plain"},
		{"bad POST content type", func() *http.Request {
			req, _ := http.NewRequest("POST", ts.URL+"/query", strings.NewReader(selectQuery))
			req.Header.Set("Content-Type", "text/plain")
			return req
		}(), 415, "text/plain"},
		{"method not allowed", func() *http.Request {
			req, _ := http.NewRequest("PUT", ts.URL+"/query", nil)
			return req
		}(), 405, "text/plain"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.DefaultClient.Do(tc.req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d\n%s", resp.StatusCode, tc.wantStatus, body)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, tc.wantCT) {
				t.Fatalf("content type = %q, want prefix %q", ct, tc.wantCT)
			}
			if tc.wantStatus == 200 && tc.wantCT == ctJSON {
				vars, bindings := decodeJSONRows(t, body)
				if len(vars) != 2 || len(bindings) != 5 {
					t.Fatalf("vars=%v bindings=%d, want 2 vars and 5 rows", vars, len(bindings))
				}
				for _, b := range bindings {
					for _, cell := range b {
						if cell["type"] != "uri" {
							t.Fatalf("bib node serialized as %q, want uri", cell["type"])
						}
					}
				}
			}
		})
	}
}

func TestAskSerializations(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for accept, want := range map[string]string{
		ctJSON: `"boolean":true`,
		ctXML:  "<boolean>true</boolean>",
		ctCSV:  "true",
	} {
		req, _ := http.NewRequest("GET", ts.URL+"/query?query="+url.QueryEscape(askQuery), nil)
		req.Header.Set("Accept", accept)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", accept, resp.StatusCode)
		}
		if !strings.Contains(strings.ReplaceAll(string(body), " ", ""), strings.ReplaceAll(want, " ", "")) {
			t.Errorf("%s: body %q lacks %q", accept, body, want)
		}
	}
}

// TestEndToEndSelfAnalysis is the acceptance loop: N queries over
// HTTP, then the self-analysis must have counted exactly those
// queries, /stats must render them, and the endpoint log must decode
// back into the served queries.
func TestEndToEndSelfAnalysis(t *testing.T) {
	var logBuf syncBuffer
	s, ts := newTestServer(t, Config{LogWriter: &logBuf})

	const nValid, nInvalid = 12, 3
	for i := 0; i < nValid; i++ {
		// Distinct texts so exact dedup keeps them all unique.
		q := selectQuery + fmt.Sprintf(" OFFSET %d", i)
		resp, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
	}
	for i := 0; i < nInvalid; i++ {
		resp, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape(fmt.Sprintf("SELECT ?x WHERE { broken %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("invalid query %d: status %d, want 400", i, resp.StatusCode)
		}
	}

	rep := s.Analyzer().Report()
	if rep.Total != nValid+nInvalid {
		t.Errorf("self-analysis Total = %d, want %d", rep.Total, nValid+nInvalid)
	}
	if rep.Valid != nValid || rep.Unique != nValid {
		t.Errorf("self-analysis Valid/Unique = %d/%d, want %d/%d", rep.Valid, rep.Unique, nValid, nValid)
	}
	if rep.Keywords["Select"] != nValid {
		t.Errorf("Select keyword count = %d, want %d", rep.Keywords["Select"], nValid)
	}

	// /stats renders the same numbers.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		fmt.Sprintf("%12d %12d %12d", nValid+nInvalid, nValid, nValid),
		"Serving",
		"plan cache",
	} {
		if !strings.Contains(string(stats), want) {
			t.Errorf("/stats lacks %q:\n%s", want, stats)
		}
	}

	// /metrics round trip.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		fmt.Sprintf("sparqld_queries_served_total %d", nValid),
		fmt.Sprintf("sparqld_log_entries_total %d", nValid+nInvalid),
		fmt.Sprintf("sparqld_log_valid_total %d", nValid),
		`sparqld_latency_seconds{quantile="0.5"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}

	// The endpoint log decodes back into the served queries and is
	// itself analyzable by the batch pipeline with identical counts.
	entries, err := core.ReadLog(strings.NewReader(logBuf.String()), core.FormatApache)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != nValid+nInvalid {
		t.Fatalf("endpoint log has %d entries, want %d", len(entries), nValid+nInvalid)
	}
	batch := core.AnalyzeLog("replay", entries, core.Options{})
	if batch.Total != rep.Total || batch.Valid != rep.Valid || batch.Unique != rep.Unique {
		t.Errorf("log replay Total/Valid/Unique = %d/%d/%d, live = %d/%d/%d",
			batch.Total, batch.Valid, batch.Unique, rep.Total, rep.Valid, rep.Unique)
	}
}

// TestDeadlineExpiry pins timeout observability: a query over budget
// returns 503 and the timeout is counted in the metrics.
func TestDeadlineExpiry(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Snapshot: testSnapshot(t, 3000),
		Timeout:  10 * time.Millisecond,
		Limits:   eval.Limits{MaxRows: 1 << 30},
	})
	heavy := `PREFIX bib: <http://gmark.bib/p/>
		SELECT * WHERE { ?a bib:cites ?b . ?c bib:cites ?d . ?e bib:cites ?f }`
	resp, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape(heavy))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503\n%s", resp.StatusCode, body)
	}
	if snap := s.Live().Snapshot(); snap.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", snap.Timeouts)
	}
}

// TestAdmissionControl: with one slot and no queue, a second request
// arriving while the first evaluates is rejected with 503.
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Snapshot:    testSnapshot(t, 3000),
		MaxInFlight: 1,
		QueueDepth:  0,
		Limits:      eval.Limits{MaxRows: 1 << 30},
	})
	heavy := `PREFIX bib: <http://gmark.bib/p/>
		SELECT * WHERE { ?a bib:cites ?b . ?c bib:cites ?d . ?e bib:cites ?f }`

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/query?query="+url.QueryEscape(heavy), nil)
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	// Wait until the heavy query holds the slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("heavy query never entered the gate")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape(selectQuery))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if snap := s.Live().Snapshot(); snap.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", snap.Rejected)
	}

	cancel()
	<-errc
	// The cancelled heavy query must free its slot promptly (the
	// cancellation-responsiveness bugfix: evaluation polls the context
	// from its inner loops).
	deadline = time.Now().Add(5 * time.Second)
	for s.gate.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("cancelled query still holds its slot")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancelledPathQueryFreesWorker pins the pathcomp side of the
// cancellation sweep over HTTP: a heavy property-path query whose
// client disconnects returns its worker within a bounded wait.
func TestCancelledPathQueryFreesWorker(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Snapshot: testSnapshot(t, 4000),
		Limits:   eval.Limits{MaxRows: 1 << 30},
	})
	// Both ends free over a closure: the multi-source sweep visits the
	// whole citation graph — seconds of work unless cancellation lands.
	heavyPath := `PREFIX bib: <http://gmark.bib/p/>
		SELECT * WHERE { ?a (bib:cites|^bib:cites)+ ?b }`
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/query?query="+url.QueryEscape(heavyPath), nil)
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("path query never entered the gate")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-errc
	deadline = time.Now().Add(5 * time.Second)
	for s.gate.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("cancelled path query still holds its worker after 5s")
		}
		time.Sleep(time.Millisecond)
	}
	if snap := s.Live().Snapshot(); snap.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1 (the disconnected query)", snap.Timeouts)
	}
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		accept string
		want   string
		ok     bool
	}{
		{"", ctJSON, true},
		{"*/*", ctJSON, true},
		{"application/json", ctJSON, true},
		{"application/sparql-results+xml", ctXML, true},
		{"text/csv", ctCSV, true},
		{"text/tab-separated-values", ctTSV, true},
		{"text/*", ctCSV, true},
		{"application/*", ctJSON, true},
		{"image/png, */*;q=0.1", ctJSON, true},
		{"text/csv;q=0.5, application/sparql-results+json;q=0.4", ctCSV, true},
		{"image/png", "", false},
		{"text/html;q=0", "", false},
	}
	for _, tc := range cases {
		got, ok := negotiate(tc.accept)
		if ok != tc.ok || got != tc.want {
			t.Errorf("negotiate(%q) = %q,%v want %q,%v", tc.accept, got, ok, tc.want, tc.ok)
		}
	}
}

func TestGate(t *testing.T) {
	g := NewGate(1, 0)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(context.Background()); err != ErrOverloaded {
		t.Fatalf("full gate Acquire = %v, want ErrOverloaded", err)
	}
	g.Release()
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("freed gate Acquire = %v", err)
	}
	g.Release()

	// With a queue, a waiter parks until cancelled.
	g = NewGate(1, 1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("queued Acquire after cancel = %v", err)
	}
	g.Release()
	if g.InFlight() != 0 || g.Waiting() != 0 {
		t.Fatalf("gate not drained: inflight=%d waiting=%d", g.InFlight(), g.Waiting())
	}
}

// syncBuffer is a goroutine-safe strings.Builder for the log writer.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
