package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// handleMetrics renders Prometheus-style text metrics of the serving
// path: query counters, latency quantiles over the recent window,
// cache hit counters, admission state, and the self-analysis corpus
// counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.live.Snapshot()
	rep := s.an.Report()

	var sb strings.Builder
	counter := func(name, help string, v any) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}

	counter("sparqld_queries_served_total", "Completed query evaluations (successes, errors and timeouts).", snap.Served)
	counter("sparqld_query_errors_total", "Evaluations that failed with a non-timeout error.", snap.Errors)
	counter("sparqld_query_timeouts_total", "Evaluations cut by the per-request deadline or client disconnect.", snap.Timeouts)
	counter("sparqld_queries_rejected_total", "Requests rejected by admission control (503).", snap.Rejected)
	counter("sparqld_service_recoveries_total", "Silent SERVICE recoveries inside served answers.", snap.Recoveries)
	gauge("sparqld_qps", "Lifetime completed queries per second.", fmt.Sprintf("%.4f", snap.QPS))

	fmt.Fprintf(&sb, "# HELP sparqld_latency_seconds Query latency quantiles over the recent window.\n")
	fmt.Fprintf(&sb, "# TYPE sparqld_latency_seconds summary\n")
	for _, q := range []struct {
		label string
		v     float64
	}{
		{"0.5", snap.Stats.P50.Seconds()},
		{"0.95", snap.Stats.P95.Seconds()},
		{"0.99", snap.Stats.P99.Seconds()},
	} {
		fmt.Fprintf(&sb, "sparqld_latency_seconds{quantile=%q} %.6f\n", q.label, q.v)
	}

	counter("sparqld_plan_cache_hits_total", "Shared plan cache hits.", s.plans.Hits())
	counter("sparqld_plan_cache_misses_total", "Shared plan cache misses.", s.plans.Misses())
	counter("sparqld_path_cache_hits_total", "Shared compiled-path cache hits.", s.paths.Hits())
	counter("sparqld_path_cache_misses_total", "Shared compiled-path cache misses.", s.paths.Misses())
	if s.qc != nil {
		counter("sparqld_result_cache_hits_total", "Result cache lookups answered without executing.", s.qc.Hits())
		counter("sparqld_result_cache_misses_total", "Result cache lookups that executed.", s.qc.Misses())
		counter("sparqld_result_cache_collapsed_total", "Executions avoided by single-flight collapse of concurrent identical queries.", s.qc.Collapsed())
		counter("sparqld_result_cache_body_hits_total", "Serialized response bodies reused verbatim.", s.qc.BodyHits())
		counter("sparqld_result_cache_evictions_total", "Result cache entries evicted by the LRU byte budget.", s.qc.Evictions())
		counter("sparqld_result_cache_rejected_total", "Results refused by cost-aware admission.", s.qc.Rejected())
		gauge("sparqld_result_cache_bytes", "Bytes held by the result cache (rows plus serialized bodies).", s.qc.Bytes())
		gauge("sparqld_result_cache_entries", "Resident result cache entries.", s.qc.Entries())
	}
	gauge("sparqld_inflight_queries", "Queries currently evaluating.", s.gate.InFlight())
	gauge("sparqld_queued_queries", "Admitted queries waiting for an evaluation slot.", s.gate.Waiting())

	counter("sparqld_log_entries_total", "Entries fed to the self-analysis stream.", s.an.Entries())
	counter("sparqld_log_valid_total", "Self-analysis: parseable queries (Table 1 Valid).", rep.Valid)
	counter("sparqld_log_unique_total", "Self-analysis: unique queries (Table 1 Unique).", rep.Unique)

	// Static-analysis aggregates, one labeled series per diagnostic
	// code, emitted in sorted order so scrapes are stable.
	fmt.Fprintf(&sb, "# HELP sparqld_lint_diagnostics_total Lint diagnostics found in the analyzed workload, by code.\n")
	fmt.Fprintf(&sb, "# TYPE sparqld_lint_diagnostics_total counter\n")
	var codes []string
	for code := range rep.Lint {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		fmt.Fprintf(&sb, "sparqld_lint_diagnostics_total{code=%q} %d\n", code, rep.Lint[code])
	}
	counter("sparqld_lint_empty_queries_total", "Analyzed queries whose WHERE clause is statically empty.", rep.LintEmpty)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(sb.String()))
}
