package server

import (
	"bufio"
	"encoding/json"
	"encoding/xml"
	"io"
	"strings"

	"sparqlog/internal/eval"
)

// writeResult serializes res in the negotiated media type. isAsk marks
// boolean results (serialized as the protocol's boolean forms; the
// CSV/TSV formats, which the spec defines for SELECT only, degrade to
// a single true/false line).
func writeResult(w io.Writer, ct string, res *eval.Result, isAsk bool) error {
	switch ct {
	case ctJSON:
		return writeJSON(w, res, isAsk)
	case ctXML:
		return writeXML(w, res, isAsk)
	case ctCSV:
		return writeSV(w, res, isAsk, ',')
	case ctTSV:
		return writeSV(w, res, isAsk, '\t')
	}
	return writeJSON(w, res, isAsk)
}

// jsonTerm is one RDF term cell of the JSON results format.
type jsonTerm struct {
	Type  string `json:"type"`
	Value string `json:"value"`
}

func termJSON(text string) jsonTerm {
	switch eval.KindOfTerm(text) {
	case eval.KindIRI:
		return jsonTerm{Type: "uri", Value: text}
	case eval.KindBlank:
		return jsonTerm{Type: "bnode", Value: strings.TrimPrefix(text, "_:")}
	default:
		return jsonTerm{Type: "literal", Value: text}
	}
}

func writeJSON(w io.Writer, res *eval.Result, isAsk bool) error {
	enc := json.NewEncoder(w)
	if isAsk {
		return enc.Encode(map[string]any{
			"head":    map[string]any{},
			"boolean": res.Bool,
		})
	}
	bindings := make([]map[string]jsonTerm, 0, len(res.Rows))
	for _, row := range res.Rows {
		b := make(map[string]jsonTerm, len(row))
		for i, v := range row {
			if v == eval.Unbound {
				continue
			}
			b[res.Vars[i]] = termJSON(v)
		}
		bindings = append(bindings, b)
	}
	return enc.Encode(map[string]any{
		"head":    map[string]any{"vars": res.Vars},
		"results": map[string]any{"bindings": bindings},
	})
}

func writeXML(w io.Writer, res *eval.Result, isAsk bool) error {
	var sb strings.Builder
	sb.WriteString(`<?xml version="1.0"?>` + "\n")
	sb.WriteString(`<sparql xmlns="http://www.w3.org/2005/sparql-results#">` + "\n")
	esc := func(s string) string {
		var b strings.Builder
		xml.EscapeText(&b, []byte(s))
		return b.String()
	}
	if isAsk {
		sb.WriteString("  <head/>\n")
		if res.Bool {
			sb.WriteString("  <boolean>true</boolean>\n")
		} else {
			sb.WriteString("  <boolean>false</boolean>\n")
		}
	} else {
		sb.WriteString("  <head>\n")
		for _, v := range res.Vars {
			sb.WriteString(`    <variable name="` + esc(v) + `"/>` + "\n")
		}
		sb.WriteString("  </head>\n  <results>\n")
		for _, row := range res.Rows {
			sb.WriteString("    <result>\n")
			for i, cell := range row {
				if cell == eval.Unbound {
					continue
				}
				sb.WriteString(`      <binding name="` + esc(res.Vars[i]) + `">`)
				switch eval.KindOfTerm(cell) {
				case eval.KindIRI:
					sb.WriteString("<uri>" + esc(cell) + "</uri>")
				case eval.KindBlank:
					sb.WriteString("<bnode>" + esc(strings.TrimPrefix(cell, "_:")) + "</bnode>")
				default:
					sb.WriteString("<literal>" + esc(cell) + "</literal>")
				}
				sb.WriteString("</binding>\n")
			}
			sb.WriteString("    </result>\n")
		}
		sb.WriteString("  </results>\n")
	}
	sb.WriteString("</sparql>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// svFlushRows is how many result rows writeSV emits between explicit
// flushes. With an http.ResponseWriter underneath, each flush becomes
// a chunk on the wire, so clients start receiving a huge SELECT answer
// after the first few hundred rows rather than after full
// serialization.
const svFlushRows = 512

// writeSV writes the CSV (sep ',') or TSV (sep '\t') results format:
// CSV carries plain values with RFC 4180 quoting, TSV carries terms in
// SPARQL syntax (<iri>, "literal", _:label) per the W3C TSV spec.
// Output streams row by row through a buffered writer instead of
// materializing the whole document first.
func writeSV(w io.Writer, res *eval.Result, isAsk bool, sep byte) error {
	bw := bufio.NewWriterSize(w, 32<<10)
	if isAsk {
		if res.Bool {
			bw.WriteString("true\n")
		} else {
			bw.WriteString("false\n")
		}
		return bw.Flush()
	}
	tsv := sep == '\t'
	for i, v := range res.Vars {
		if i > 0 {
			bw.WriteByte(sep)
		}
		if tsv {
			bw.WriteByte('?')
		}
		bw.WriteString(v)
	}
	bw.WriteByte('\n')
	for r, row := range res.Rows {
		for i, cell := range row {
			if i > 0 {
				bw.WriteByte(sep)
			}
			if cell == eval.Unbound {
				continue
			}
			if tsv {
				bw.WriteString(tsvTerm(cell))
			} else {
				bw.WriteString(csvField(cell))
			}
		}
		bw.WriteByte('\n')
		if (r+1)%svFlushRows == 0 {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// csvField quotes a CSV value per RFC 4180 when needed.
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// tsvTerm renders a term in SPARQL syntax for the TSV format.
func tsvTerm(s string) string {
	switch eval.KindOfTerm(s) {
	case eval.KindIRI:
		return "<" + s + ">"
	case eval.KindBlank:
		return s
	default:
		r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\r", `\r`, "\t", `\t`)
		return `"` + r.Replace(s) + `"`
	}
}
