package server

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"time"

	"sparqlog/internal/core"
	"sparqlog/internal/lint"
	"sparqlog/internal/paths"
)

// handleStats renders the live self-analysis: serving statistics
// first, then the paper-style tables (Table 1 sizes, Table 2
// keywords, Table 4 shapes, Table 5 property paths) computed by
// core's pipeline over every query this server has served.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// Conditional GET: the ETag hashes every monotonic counter behind
	// the page (analyzer entries, serving counters, cache counters) —
	// deliberately not uptime or qps, which tick continuously without
	// new information. A poller therefore gets 304 until the server
	// actually serves something new. Weak, because the body's derived
	// fields (uptime) do drift between equal-tagged responses.
	etag := s.statsETag()
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	if match := r.Header.Get("If-None-Match"); match != "" && etagMatch(match, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}

	rep := s.an.Report()
	snap := s.live.Snapshot()

	var sb strings.Builder
	fmt.Fprintf(&sb, "sparqld live statistics (corpus %q)\n\n", rep.Name)

	fmt.Fprintf(&sb, "Serving\n")
	fmt.Fprintf(&sb, "  uptime            %s\n", snap.Uptime.Round(time.Second))
	fmt.Fprintf(&sb, "  served            %d (errors %d, timeouts %d, rejected %d)\n",
		snap.Served, snap.Errors, snap.Timeouts, snap.Rejected)
	fmt.Fprintf(&sb, "  qps               %.2f\n", snap.QPS)
	fmt.Fprintf(&sb, "  latency           p50 %s  p95 %s  p99 %s  max %s (window %d)\n",
		snap.Stats.P50, snap.Stats.P95, snap.Stats.P99, snap.Stats.Max, snap.Window)
	fmt.Fprintf(&sb, "  silent SERVICE recoveries %d\n", snap.Recoveries)
	fmt.Fprintf(&sb, "  plan cache        %d hits / %d misses\n", s.plans.Hits(), s.plans.Misses())
	fmt.Fprintf(&sb, "  path cache        %d hits / %d misses\n", s.paths.Hits(), s.paths.Misses())
	if s.qc != nil {
		h, m := s.qc.Hits(), s.qc.Misses()
		ratio := "-"
		if h+m > 0 {
			ratio = fmt.Sprintf("%.2f%%", 100*float64(h)/float64(h+m))
		}
		fmt.Fprintf(&sb, "  result cache      %d hits / %d misses (%s), %d collapsed, %d body reuses\n",
			h, m, ratio, s.qc.Collapsed(), s.qc.BodyHits())
		fmt.Fprintf(&sb, "                    %d entries, %s, %d evictions, %d admission rejections\n",
			s.qc.Entries(), fmtBytes(s.qc.Bytes()), s.qc.Evictions(), s.qc.Rejected())
	}
	fmt.Fprintf(&sb, "  in flight         %d (+%d queued)\n\n", s.gate.InFlight(), s.gate.Waiting())

	writeWorkloadTables(&sb, rep)

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(sb.String()))
}

// statsETag derives the /stats entity tag from the counters that feed
// the page. fnv64a over their decimal rendering: cheap, stable, and
// computed without building the report.
func (s *Server) statsETag() string {
	snap := s.live.Snapshot()
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d",
		s.an.Entries(),
		snap.Served, snap.Errors, snap.Timeouts, snap.Rejected, snap.Recoveries,
		s.plans.Hits(), s.plans.Misses(), s.paths.Hits(), s.paths.Misses(),
		s.gate.InFlight(), s.gate.Waiting())
	if s.qc != nil {
		fmt.Fprintf(h, "|%d|%d|%d|%d|%d",
			s.qc.Hits(), s.qc.Misses(), s.qc.Collapsed(), s.qc.BodyHits(), s.qc.Evictions())
	}
	return fmt.Sprintf("W/\"%016x\"", h.Sum64())
}

// fmtBytes renders a byte count human-readably for /stats.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// etagMatch implements the If-None-Match weak comparison: any listed
// tag equal to ours (or "*") matches.
func etagMatch(header, etag string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		if strings.TrimSpace(part) == etag {
			return true
		}
	}
	return false
}

// writeWorkloadTables renders the paper-style statistics of one
// DatasetReport — the single-corpus counterpart of the repro package's
// multi-corpus tables.
func writeWorkloadTables(sb *strings.Builder, rep *core.DatasetReport) {
	fmt.Fprintf(sb, "Workload sizes (Table 1 columns)\n")
	fmt.Fprintf(sb, "  %-14s %12s %12s %12s %12s\n", "Source", "Total #Q", "Valid #Q", "Unique #Q", "Noise")
	fmt.Fprintf(sb, "  %-14s %12d %12d %12d %12d\n\n",
		rep.Name, rep.Total, rep.Valid, rep.Unique, rep.NoiseRemoved)

	writeRepeatTable(sb, rep)

	if len(rep.Keywords) > 0 {
		fmt.Fprintf(sb, "Keywords (Table 2 columns, of %d unique)\n", rep.Unique)
		type kv struct {
			k string
			n int
		}
		var kws []kv
		for k, n := range rep.Keywords {
			kws = append(kws, kv{k, n})
		}
		sort.Slice(kws, func(i, j int) bool {
			if kws[i].n != kws[j].n {
				return kws[i].n > kws[j].n
			}
			return kws[i].k < kws[j].k
		})
		for _, e := range kws {
			fmt.Fprintf(sb, "  %-12s %10d %8s\n", e.k, e.n, pct(e.n, rep.Unique))
		}
		sb.WriteByte('\n')
	}

	if rep.SelectAsk > 0 {
		fmt.Fprintf(sb, "Fragments (Section 5.2, of %d Select/Ask)\n", rep.SelectAsk)
		fmt.Fprintf(sb, "  CQ %d  CPF %d  CQF %d  CQOF %d  well-designed %d\n\n",
			rep.CQ, rep.CPF, rep.CQF, rep.CQOF, rep.WellDesigned)
	}
	writeLintTable(sb, rep)
	if rep.ShapeCQ.Total > 0 {
		sc := rep.ShapeCQ
		fmt.Fprintf(sb, "CQ shapes (Table 4 columns, of %d)\n", sc.Total)
		fmt.Fprintf(sb, "  single-edge %s  chain %s  star %s  tree %s  forest %s  cycle %s  flower %s\n\n",
			pct(sc.SingleEdge, sc.Total), pct(sc.Chain, sc.Total), pct(sc.Star, sc.Total),
			pct(sc.Tree, sc.Total), pct(sc.Forest, sc.Total), pct(sc.Cycle, sc.Total),
			pct(sc.Flower, sc.Total))
	}
	writeTable5(sb, rep.Paths)
}

// writeRepeatTable renders the workload repeat-rate rows: per coarse
// query shape, how often the served workload repeats itself — the
// data that sizes the result cache (MaxHit is the hit-ratio bound
// (Total-Unique)/Total a cache could reach on that shape).
func writeRepeatTable(sb *strings.Builder, rep *core.DatasetReport) {
	if len(rep.Repeats) == 0 {
		return
	}
	type row struct {
		label string
		s     core.RepeatStat
	}
	var rows []row
	for label, s := range rep.Repeats {
		rows = append(rows, row{label, s})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].s.Total != rows[j].s.Total {
			return rows[i].s.Total > rows[j].s.Total
		}
		return rows[i].label < rows[j].label
	})
	fmt.Fprintf(sb, "Repeat rate by query shape (result-cache sizing)\n")
	fmt.Fprintf(sb, "  %-38s %9s %9s %7s %7s\n", "Shape", "Total", "Unique", "Repeat", "MaxHit")
	const maxRows = 10
	shown := rows
	if len(shown) > maxRows {
		shown = shown[:maxRows]
	}
	for _, r := range shown {
		repeat := "-"
		if r.s.Unique > 0 {
			repeat = fmt.Sprintf("%.2fx", float64(r.s.Total)/float64(r.s.Unique))
		}
		fmt.Fprintf(sb, "  %-38s %9d %9d %7s %7s\n",
			r.label, r.s.Total, r.s.Unique, repeat, pct(r.s.Total-r.s.Unique, r.s.Total))
	}
	if n := len(rows) - len(shown); n > 0 {
		fmt.Fprintf(sb, "  (%d further shapes omitted)\n", n)
	}
	sb.WriteByte('\n')
}

// writeLintTable renders the static-analysis aggregates: per-code
// diagnostic and query counts over the analyzed workload, plus the
// statically-empty tally the evaluator short-circuits on.
func writeLintTable(sb *strings.Builder, rep *core.DatasetReport) {
	if len(rep.Lint) == 0 && rep.LintEmpty == 0 {
		return
	}
	fmt.Fprintf(sb, "Static analysis (of %d unique)\n", rep.Unique)
	fmt.Fprintf(sb, "  %-8s %-28s %10s %10s %8s\n", "Code", "Pass", "Diags", "Queries", "%Q")
	byCode := make(map[string]string)
	for _, p := range lint.Passes() {
		byCode[p.Code] = p.Name
	}
	var codes []string
	for code := range rep.Lint {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		fmt.Fprintf(sb, "  %-8s %-28s %10d %10d %8s\n",
			code, byCode[code], rep.Lint[code], rep.LintQueries[code], pct(rep.LintQueries[code], rep.Unique))
	}
	fmt.Fprintf(sb, "  statically empty WHERE: %d (%s)\n\n", rep.LintEmpty, pct(rep.LintEmpty, rep.Unique))
}

// writeTable5 renders the property-path classification.
func writeTable5(sb *strings.Builder, t5 *paths.Table5) {
	if t5 == nil || t5.Total == 0 {
		fmt.Fprintf(sb, "Property paths (Table 5): none observed\n")
		return
	}
	fmt.Fprintf(sb, "Property paths (Table 5 rows, of %d classified)\n", t5.Total)
	type row struct {
		t paths.ExprType
		n int
	}
	var rows []row
	for t, n := range t5.Counts {
		rows = append(rows, row{t, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].t < rows[j].t
	})
	for _, e := range rows {
		krange := ""
		if lo, ok := t5.MinK[e.t]; ok {
			hi := t5.MaxK[e.t]
			if hi > lo {
				krange = fmt.Sprintf("  k=%d..%d", lo, hi)
			} else if lo > 0 {
				krange = fmt.Sprintf("  k=%d", lo)
			}
		}
		fmt.Fprintf(sb, "  %-24s %8d %8s%s\n", e.t, e.n, pct(e.n, t5.Total), krange)
	}
	if t5.NonCtract > 0 || t5.TrivialNeg > 0 || t5.TrivialInv > 0 {
		fmt.Fprintf(sb, "  (outside Ctract %d; trivial !a %d, ^a %d)\n",
			t5.NonCtract, t5.TrivialNeg, t5.TrivialInv)
	}
}

// pct renders part/whole as a percentage, repro-style.
func pct(part, whole int) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(part)/float64(whole))
}
