package server

import (
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
)

// TestLintHeader checks the per-query diagnostic surfacing: a query
// with findings carries their codes in X-Sparqld-Lint, a clean one
// carries no header.
func TestLintHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	get := func(q string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	resp := get(`SELECT ?x ?gone WHERE { ?x ?p ?o . FILTER(?x != ?x) }`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Sparqld-Lint"); got != "SQL001,SQL004" {
		t.Fatalf("X-Sparqld-Lint = %q, want SQL001,SQL004", got)
	}

	clean := get(selectQuery)
	if clean.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", clean.StatusCode)
	}
	if got := clean.Header.Get("X-Sparqld-Lint"); got != "" {
		t.Fatalf("clean query got X-Sparqld-Lint = %q", got)
	}
}

// TestLintAggregates drives flagged queries through the endpoint and
// checks the aggregate surfacing in /stats and /metrics.
func TestLintAggregates(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, q := range []string{
		`SELECT * WHERE { ?s ?p ?o . FILTER(false) }`,
		`SELECT * WHERE { ?a <urn:p> ?b . ?c <urn:q> ?d }`,
		selectQuery,
	} {
		resp, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := s.Analyzer().Entries(); got != 3 {
		t.Fatalf("analyzer saw %d entries, want 3", got)
	}

	body := func(path string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	stats := body("/stats")
	if !strings.Contains(stats, "Static analysis") || !strings.Contains(stats, "SQL001") || !strings.Contains(stats, "SQL002") {
		t.Fatalf("/stats lacks the lint table:\n%s", stats)
	}
	if !strings.Contains(stats, "statically empty WHERE: 1") {
		t.Fatalf("/stats lacks the statically-empty tally:\n%s", stats)
	}

	metrics := body("/metrics")
	if !strings.Contains(metrics, `sparqld_lint_diagnostics_total{code="SQL001"} 1`) ||
		!strings.Contains(metrics, `sparqld_lint_diagnostics_total{code="SQL002"} 1`) {
		t.Fatalf("/metrics lacks lint counters:\n%s", metrics)
	}
	if !strings.Contains(metrics, "sparqld_lint_empty_queries_total 1") {
		t.Fatalf("/metrics lacks the statically-empty counter:\n%s", metrics)
	}
}

// TestStatsConditionalGet pins the ETag round trip: a tagged 200, a
// 304 on revalidation, and a fresh tag (plus 200) after the served
// workload changes.
func TestStatsConditionalGet(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	get := func(inm string) (*http.Response, string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(b)
	}

	first, body := get("")
	if first.StatusCode != http.StatusOK || body == "" {
		t.Fatalf("first GET: status=%d len=%d", first.StatusCode, len(body))
	}
	etag := first.Header.Get("ETag")
	if !strings.HasPrefix(etag, `W/"`) {
		t.Fatalf("ETag = %q, want weak tag", etag)
	}

	second, body := get(etag)
	if second.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation: status=%d, want 304", second.StatusCode)
	}
	if body != "" {
		t.Fatalf("304 carried a body: %q", body)
	}

	if resp, _ := get(`"stale", ` + etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("multi-tag revalidation: status=%d, want 304", resp.StatusCode)
	}
	if resp, _ := get("*"); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("star revalidation: status=%d, want 304", resp.StatusCode)
	}

	// Serving a query bumps the counters: the tag must rotate and the
	// old one must stop matching.
	qresp, err := http.Get(ts.URL + "/query?query=" + url.QueryEscape(askQuery))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, qresp.Body)
	qresp.Body.Close()

	third, body := get(etag)
	if third.StatusCode != http.StatusOK || body == "" {
		t.Fatalf("post-change GET: status=%d len=%d, want fresh 200", third.StatusCode, len(body))
	}
	if third.Header.Get("ETag") == etag {
		t.Fatal("ETag did not rotate after the workload changed")
	}
}
