package server

import "strings"

// SPARQL 1.1 Query Results media types the endpoint can produce.
const (
	ctJSON = "application/sparql-results+json"
	ctXML  = "application/sparql-results+xml"
	ctCSV  = "text/csv"
	ctTSV  = "text/tab-separated-values"
)

// negotiate picks the result media type for an Accept header value,
// ok=false when the client accepts none of the supported types (406).
// An absent or wildcard Accept falls back to the JSON results format,
// the primary serialization of the protocol spec.
func negotiate(accept string) (string, bool) {
	accept = strings.TrimSpace(accept)
	if accept == "" {
		return ctJSON, true
	}
	type choice struct {
		ct string
		q  float64
		// ord keeps header order as the tiebreak among equal q values.
		ord int
	}
	var best *choice
	consider := func(c choice) {
		if best == nil || c.q > best.q || (c.q == best.q && c.ord < best.ord) {
			best = &c
		}
	}
	for ord, part := range strings.Split(accept, ",") {
		mt, q := parseAcceptPart(part)
		if q <= 0 {
			continue
		}
		switch mt {
		case ctJSON, "application/json":
			consider(choice{ctJSON, q, ord})
		case ctXML, "application/xml", "text/xml":
			consider(choice{ctXML, q, ord})
		case ctCSV:
			consider(choice{ctCSV, q, ord})
		case ctTSV:
			consider(choice{ctTSV, q, ord})
		case "*/*":
			consider(choice{ctJSON, q - 0.0001, ord})
		case "application/*":
			consider(choice{ctJSON, q - 0.0001, ord})
		case "text/*":
			consider(choice{ctCSV, q - 0.0001, ord})
		}
	}
	if best == nil {
		return "", false
	}
	return best.ct, true
}

// parseAcceptPart splits one Accept list element into its media type
// and q value (default 1).
func parseAcceptPart(part string) (string, float64) {
	fields := strings.Split(part, ";")
	mt := strings.ToLower(strings.TrimSpace(fields[0]))
	q := 1.0
	for _, p := range fields[1:] {
		p = strings.TrimSpace(p)
		if v, ok := strings.CutPrefix(p, "q="); ok {
			q = parseQ(v)
		}
	}
	return mt, q
}

// parseQ parses a q value leniently; malformed values read as 0 so the
// element is ignored rather than failing the whole header.
func parseQ(s string) float64 {
	var v float64
	var seen, frac bool
	scale := 0.1
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			seen = true
			if frac {
				v += float64(c-'0') * scale
				scale /= 10
			} else {
				v = v*10 + float64(c-'0')
			}
		case c == '.' && !frac:
			frac = true
		default:
			return 0
		}
	}
	if !seen || v > 1 {
		return 0
	}
	return v
}
