package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"sparqlog/internal/core"
	"sparqlog/internal/eval"
	"sparqlog/internal/lint"
	"sparqlog/internal/pathcomp"
	"sparqlog/internal/plan"
	"sparqlog/internal/qcache"
	"sparqlog/internal/rdf"
	"sparqlog/internal/service"
	"sparqlog/internal/sparql"
)

// Config configures a Server.
type Config struct {
	// Snapshot is the served dataset (required).
	Snapshot *rdf.Snapshot
	// Timeout is the per-request evaluation deadline; 0 means only
	// client disconnection bounds a query.
	Timeout time.Duration
	// MaxInFlight bounds concurrent evaluations (<= 0: 2×GOMAXPROCS as
	// chosen by the caller; the server itself normalizes to 1).
	MaxInFlight int
	// QueueDepth bounds requests waiting for an evaluation slot;
	// beyond it requests are rejected with 503.
	QueueDepth int
	// MaxQueryBytes bounds the accepted query text size; <= 0 means
	// DefaultMaxQueryBytes.
	MaxQueryBytes int64
	// Limits bounds each evaluation (MaxRows etc.).
	Limits eval.Limits
	// CacheBytes is the result cache's byte budget: 0 means
	// qcache.DefaultMaxBytes, negative disables result caching
	// entirely (every request executes).
	CacheBytes int64
	// CacheMinCost is the result cache's cost-aware admission
	// threshold: only results whose execution took at least this long
	// are stored. 0 means qcache.DefaultMinCost; negative admits every
	// successful result.
	CacheMinCost time.Duration
	// Analyzer configures the self-analysis pipeline (dedup mode etc.).
	Analyzer core.Options
	// LogWriter, when set, receives one Apache-style endpoint log line
	// per served query request — the paper's input format, so the
	// server's own log can be fed back through cmd/sparqlog.
	LogWriter io.Writer
	// CorpusName labels the self-analysis report; default "sparqld".
	CorpusName string
}

// DefaultMaxQueryBytes bounds query text size when Config leaves it 0.
const DefaultMaxQueryBytes = 1 << 20

// Server is the SPARQL 1.1 Protocol endpoint: an Executor over one
// snapshot with shared plan/path caches, admission control, live
// serving statistics, and incremental self-analysis of the query
// workload. Create with New, expose via Handler.
type Server struct {
	ex    *service.Executor
	plans *plan.Cache
	paths *pathcomp.Cache
	qc    *qcache.Cache // nil when result caching is disabled
	gate  *Gate
	live  *service.Live
	an    *core.LiveAnalyzer

	maxQueryBytes int64
	timeout       time.Duration

	logMu sync.Mutex
	logW  io.Writer
}

// New returns a server over cfg.Snapshot.
func New(cfg Config) *Server {
	plans := plan.NewCache(cfg.Snapshot)
	paths := pathcomp.NewCache(cfg.Snapshot)
	var qc *qcache.Cache
	if cfg.CacheBytes >= 0 {
		qc = qcache.New(cfg.Snapshot, qcache.Options{
			MaxBytes: cfg.CacheBytes,
			MinCost:  cfg.CacheMinCost,
		})
	}
	name := cfg.CorpusName
	if name == "" {
		name = "sparqld"
	}
	maxQ := cfg.MaxQueryBytes
	if maxQ <= 0 {
		maxQ = DefaultMaxQueryBytes
	}
	// The endpoint always lints its workload: per-query diagnostics go
	// out in the X-Sparqld-Lint header and the aggregates feed /stats
	// and /metrics (the option stays off by default only for the batch
	// pipeline, whose benchmarks gate on the paper analyses alone).
	cfg.Analyzer.Lint = true
	return &Server{
		ex: service.NewExecutor(cfg.Snapshot, service.ExecutorOptions{
			Timeout: cfg.Timeout,
			Plans:   plans,
			Paths:   paths,
			Results: qc,
			Limits:  cfg.Limits,
			// The in-flight gate is the serving pool: budget each
			// request's intra-query workers against it so a full gate
			// never oversubscribes inter × intra beyond GOMAXPROCS.
			MaxConcurrent: cfg.MaxInFlight,
		}),
		plans:         plans,
		paths:         paths,
		qc:            qc,
		gate:          NewGate(cfg.MaxInFlight, cfg.QueueDepth),
		live:          service.NewLive(0),
		an:            core.NewLiveAnalyzer(name, cfg.Analyzer, 0),
		maxQueryBytes: maxQ,
		timeout:       cfg.Timeout,
		logW:          cfg.LogWriter,
	}
}

// Handler returns the endpoint's HTTP handler:
//
//	/query    SPARQL 1.1 Protocol query operation (GET and POST)
//	/stats    live self-analysis statistics (paper-style tables)
//	/metrics  Prometheus-style text serving metrics
//	/healthz  liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/sparql", s.handleQuery) // conventional alias
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Analyzer exposes the live self-analysis feed (tests and embedders).
func (s *Server) Analyzer() *core.LiveAnalyzer { return s.an }

// Live exposes the serving-statistics collector.
func (s *Server) Live() *service.Live { return s.live }

// ResultCache exposes the shared result cache; nil when disabled
// (Config.CacheBytes < 0).
func (s *Server) ResultCache() *qcache.Cache { return s.qc }

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	raw, herr := readQuery(r, s.maxQueryBytes)
	if herr != nil {
		plainError(w, herr.status, herr.msg)
		return
	}
	// Negotiate before spending execution capacity: a request nobody
	// can read the answer of is rejected up front (406).
	ct, ok := negotiate(r.Header.Get("Accept"))
	if !ok {
		plainError(w, http.StatusNotAcceptable,
			"no acceptable result format; supported: "+ctJSON+", "+ctXML+", "+ctCSV+", "+ctTSV)
		return
	}

	// Every request with query text enters the endpoint log and the
	// self-analysis stream — before validation, because the paper's
	// Table 1 distinguishes Total (all logged queries) from Valid
	// (parseable ones), and the analyzer draws that line itself.
	s.logRequest(r, raw)
	s.an.Add(raw)

	q, err := sparql.Parse(raw)
	if err != nil {
		plainError(w, http.StatusBadRequest, "malformed query: "+err.Error())
		return
	}

	// Static analysis of the parsed query: the distinct diagnostic
	// codes ride along as a response header, so clients learn about
	// unsatisfiable filters or cartesian products next to the (often
	// empty) answer they explain.
	if codes := lint.Run(q).Codes(); len(codes) > 0 {
		w.Header().Set("X-Sparqld-Lint", strings.Join(codes, ","))
	}

	if err := s.gate.Acquire(r.Context()); err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.live.Reject()
			w.Header().Set("Retry-After", "1")
			plainError(w, http.StatusServiceUnavailable, "server overloaded, retry later")
		} else {
			// Client went away while queued.
			s.live.Reject()
			plainError(w, http.StatusServiceUnavailable, "request cancelled while queued")
		}
		return
	}
	res, out := s.ex.Execute(r.Context(), q)
	s.gate.Release()
	s.live.Observe(out)

	if out.Err != nil {
		if out.TimedOut {
			plainError(w, http.StatusServiceUnavailable, "query timed out")
			return
		}
		plainError(w, http.StatusInternalServerError, "evaluation failed: "+out.Err.Error())
		return
	}
	if s.qc != nil {
		w.Header().Set("X-Sparqld-Cache", cacheState(out))
	}
	if out.Recovered > 0 {
		// Silent SERVICE recovery happened inside this answer; surface
		// it to the client without failing the response.
		w.Header().Set("X-Sparqld-Recovered", fmt.Sprint(out.Recovered))
	}
	if s.qc != nil && res.CacheKey != "" {
		// Cache-resident result: reuse (or attach) the serialized body
		// for this content type, with a conditional-GET fast path.
		s.writeCachedBody(w, r, ct, res, q.Type == sparql.AskQuery)
		return
	}
	w.Header().Set("Content-Type", ct+"; charset=utf-8")
	_ = writeResult(w, ct, res, q.Type == sparql.AskQuery)
}

// cacheState renders the X-Sparqld-Cache header value for an outcome.
func cacheState(out service.QueryOutcome) string {
	switch {
	case out.Cached:
		return "hit"
	case out.Collapsed:
		return "collapsed"
	default:
		return "miss"
	}
}

// writeCachedBody serves a cache-resident result. On a body hit the
// response is the stored bytes verbatim — a near-zero-alloc Write —
// with a strong ETag; If-None-Match turns it into an empty 304. On the
// first serve of a content type the body is serialized once into
// memory, attached to the entry, and written out.
func (s *Server) writeCachedBody(w http.ResponseWriter, r *http.Request, ct string, res *eval.Result, isAsk bool) {
	body, etag, ok := s.qc.Body(res.CacheKey, ct)
	if !ok {
		var buf bytes.Buffer
		if err := writeResult(&buf, ct, res, isAsk); err != nil {
			plainError(w, http.StatusInternalServerError, "serialization failed: "+err.Error())
			return
		}
		body = buf.Bytes()
		// SetBody may refuse (entry evicted mid-request, body over the
		// entry cap); the buffered bytes still serve this response.
		etag, ok = s.qc.SetBody(res.CacheKey, ct, body)
		if !ok {
			w.Header().Set("Content-Type", ct+"; charset=utf-8")
			_, _ = w.Write(body)
			return
		}
	}
	w.Header().Set("Content-Type", ct+"; charset=utf-8")
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	_, _ = w.Write(body)
}

// logRequest appends one Apache-style log line for the request. The
// shape matches core.FormatApache's query= extraction, so the file the
// server writes is directly analyzable by the cmd/sparqlog pipeline.
func (s *Server) logRequest(r *http.Request, raw string) {
	if s.logW == nil {
		return
	}
	line := fmt.Sprintf("%s - - [%s] \"GET /query?query=%s HTTP/1.1\" 200 -\n",
		remoteHost(r), time.Now().Format("02/Jan/2006:15:04:05 -0700"), url.QueryEscape(raw))
	s.logMu.Lock()
	_, _ = io.WriteString(s.logW, line)
	s.logMu.Unlock()
}

func remoteHost(r *http.Request) string {
	if r.RemoteAddr == "" {
		return "-"
	}
	return r.RemoteAddr
}

func plainError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	fmt.Fprintln(w, msg)
}

// Shutdown-friendly helper: ListenAndServe wires the handler into an
// http.Server the caller owns, so cmd/sparqld can drive graceful
// shutdown.
func (s *Server) NewHTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
}

// Serve runs the HTTP server until ctx is cancelled, then drains with
// a grace period.
func (s *Server) Serve(ctx context.Context, hs *http.Server) error {
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shctx)
	}
}
