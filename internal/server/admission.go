// Package server implements a SPARQL 1.1 Protocol endpoint over the
// service layer's single-query executor: HTTP handlers for GET/POST
// query requests with content-negotiated result serialization,
// admission control in front of a bounded worker capacity, per-request
// deadlines threaded into evaluation, and — the paper's loop closed —
// every served request fed through core's analysis pipeline so the
// endpoint reports live Table-1/Table-5-style statistics of its own
// workload next to Prometheus-style serving metrics.
package server

import (
	"context"
	"errors"
)

// ErrOverloaded is returned by Gate.Acquire when the server is at
// capacity and the wait queue is full: the request is rejected without
// queueing (503 with Retry-After).
var ErrOverloaded = errors.New("server: overloaded")

// Gate is the admission controller: at most maxInFlight requests
// evaluate concurrently, at most queueDepth more wait for a slot, and
// everything beyond that is rejected immediately. Two channel
// semaphores implement it: tickets bounds the total admitted
// population (in-flight + queued) without blocking, slots bounds
// actual execution with blocking.
type Gate struct {
	tickets chan struct{}
	slots   chan struct{}
}

// NewGate returns a gate admitting maxInFlight concurrent executions
// with a wait queue of queueDepth (values < 1 and < 0 are normalized
// to 1 and 0).
func NewGate(maxInFlight, queueDepth int) *Gate {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Gate{
		tickets: make(chan struct{}, maxInFlight+queueDepth),
		slots:   make(chan struct{}, maxInFlight),
	}
}

// Acquire admits the request or fails: ErrOverloaded when in-flight
// plus queued requests already fill the gate, or the context's error
// when the client goes away while queued. On nil error the caller owns
// a slot and must Release it.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.tickets <- struct{}{}:
	default:
		return ErrOverloaded
	}
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-g.tickets
		return ctx.Err()
	}
}

// Release frees the slot and ticket acquired by a successful Acquire.
func (g *Gate) Release() {
	<-g.slots
	<-g.tickets
}

// InFlight returns the number of requests currently executing.
func (g *Gate) InFlight() int { return len(g.slots) }

// Waiting returns the number of admitted requests waiting for a slot.
func (g *Gate) Waiting() int { return len(g.tickets) - len(g.slots) }
