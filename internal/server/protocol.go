package server

import (
	"io"
	"mime"
	"net/http"
	"strings"
)

// httpError is a protocol-level rejection: status plus a text/plain
// body line.
type httpError struct {
	status int
	msg    string
}

// readQuery extracts the SPARQL query string from a request per the
// SPARQL 1.1 Protocol: GET with a query parameter, POST with
// URL-encoded parameters, or POST with an application/sparql-query
// body. maxBytes bounds the accepted query size (413 beyond it).
func readQuery(r *http.Request, maxBytes int64) (string, *httpError) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query().Get("query")
		if q == "" {
			return "", &httpError{http.StatusBadRequest, "missing required parameter: query"}
		}
		if int64(len(q)) > maxBytes {
			return "", &httpError{http.StatusRequestEntityTooLarge, "query too large"}
		}
		return q, nil
	case http.MethodPost:
		ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
		if err != nil && r.Header.Get("Content-Type") != "" {
			return "", &httpError{http.StatusUnsupportedMediaType, "malformed Content-Type"}
		}
		switch ct {
		case "application/x-www-form-urlencoded", "":
			r.Body = http.MaxBytesReader(nil, r.Body, maxBytes)
			if err := r.ParseForm(); err != nil {
				if strings.Contains(err.Error(), "request body too large") {
					return "", &httpError{http.StatusRequestEntityTooLarge, "query too large"}
				}
				return "", &httpError{http.StatusBadRequest, "malformed form body"}
			}
			q := r.PostForm.Get("query")
			if q == "" {
				return "", &httpError{http.StatusBadRequest, "missing required parameter: query"}
			}
			return q, nil
		case "application/sparql-query":
			body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBytes))
			if err != nil {
				if strings.Contains(err.Error(), "request body too large") {
					return "", &httpError{http.StatusRequestEntityTooLarge, "query too large"}
				}
				return "", &httpError{http.StatusBadRequest, "unreadable request body"}
			}
			q := strings.TrimSpace(string(body))
			if q == "" {
				return "", &httpError{http.StatusBadRequest, "empty query body"}
			}
			return q, nil
		default:
			return "", &httpError{http.StatusUnsupportedMediaType,
				"unsupported Content-Type: use application/x-www-form-urlencoded or application/sparql-query"}
		}
	default:
		return "", &httpError{http.StatusMethodNotAllowed, "use GET or POST"}
	}
}
