package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"sparqlog/internal/loggen"
)

// cacheGet issues one GET and returns status, headers, and body.
func cacheGet(t *testing.T, ts *httptest.Server, query, accept, inm string) (int, http.Header, []byte) {
	t.Helper()
	req, _ := http.NewRequest("GET", ts.URL+"/query?query="+url.QueryEscape(query), nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header, body
}

// TestCacheHeaderLifecycle pins the serving contract of the result
// cache: miss → hit → 304, with the hit body byte-identical to the
// miss's streamed serialization, for every negotiated content type.
func TestCacheHeaderLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheMinCost: -1})

	for i, ct := range []string{ctJSON, ctXML, ctCSV, ctTSV} {
		t.Run(ct, func(t *testing.T) {
			// Distinct query per content type so each starts cold (the
			// entry is shared across types; only bodies are per-type).
			q := fmt.Sprintf("%s OFFSET %d", selectQuery, i)
			status, h, missBody := cacheGet(t, ts, q, ct, "")
			if status != 200 {
				t.Fatalf("miss status = %d\n%s", status, missBody)
			}
			if got := h.Get("X-Sparqld-Cache"); got != "miss" {
				t.Fatalf("first serve X-Sparqld-Cache = %q, want miss", got)
			}
			etag := h.Get("ETag")
			if etag == "" {
				t.Fatal("cache-resident miss carries no ETag")
			}

			status, h, hitBody := cacheGet(t, ts, q, ct, "")
			if status != 200 {
				t.Fatalf("hit status = %d", status)
			}
			if got := h.Get("X-Sparqld-Cache"); got != "hit" {
				t.Fatalf("second serve X-Sparqld-Cache = %q, want hit", got)
			}
			if h.Get("ETag") != etag {
				t.Fatalf("ETag changed across identical serves: %q vs %q", etag, h.Get("ETag"))
			}
			if !bytes.Equal(missBody, hitBody) {
				t.Fatalf("cached body diverges from streamed serialization:\nmiss %q\nhit  %q", missBody, hitBody)
			}

			status, h, condBody := cacheGet(t, ts, q, ct, etag)
			if status != http.StatusNotModified {
				t.Fatalf("If-None-Match round trip = %d, want 304", status)
			}
			if len(condBody) != 0 {
				t.Fatalf("304 carried a body: %q", condBody)
			}
			if h.Get("ETag") != etag {
				t.Fatalf("304 ETag = %q, want %q", h.Get("ETag"), etag)
			}

			// A stale validator must get the full body again.
			status, _, _ = cacheGet(t, ts, q, ct, `"0000000000000000"`)
			if status != 200 {
				t.Fatalf("stale If-None-Match = %d, want 200", status)
			}
		})
	}
}

// TestCacheAlphaEquivalentRequests: a renamed variant of a served query
// must be a cache hit — the key is the canonical fingerprint, not the
// request text.
func TestCacheAlphaEquivalentRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheMinCost: -1})
	const a = `PREFIX bib: <http://gmark.bib/p/>
SELECT ?x ?y WHERE { ?x bib:cites ?y } LIMIT 5`
	const b = `PREFIX p: <http://gmark.bib/p/>
SELECT ?paper ?cited WHERE { ?paper p:cites ?cited } LIMIT 5`
	if status, _, _ := cacheGet(t, ts, a, "", ""); status != 200 {
		t.Fatal("first variant failed")
	}
	status, h, _ := cacheGet(t, ts, b, "", "")
	if status != 200 {
		t.Fatal("second variant failed")
	}
	if got := h.Get("X-Sparqld-Cache"); got != "hit" {
		t.Fatalf("alpha-equivalent request = %q, want hit", got)
	}
	if s.ResultCache().Hits() == 0 {
		t.Fatal("cache counted no hits")
	}
}

// TestCacheDisabled: CacheBytes < 0 turns the feature off entirely —
// no header, no ETag, no cache allocation.
func TestCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheBytes: -1})
	if s.ResultCache() != nil {
		t.Fatal("ResultCache allocated despite CacheBytes < 0")
	}
	for i := 0; i < 2; i++ {
		status, h, _ := cacheGet(t, ts, selectQuery, "", "")
		if status != 200 {
			t.Fatalf("status = %d", status)
		}
		if h.Get("X-Sparqld-Cache") != "" || h.Get("ETag") != "" {
			t.Fatal("disabled cache still sets cache headers")
		}
	}
}

// TestCacheReplayHitRatio replays a generated workload twice through
// the full serving path and requires the second pass to be mostly
// cache hits — the acceptance bar of the caching work (>=40%; real
// logs repeat far more).
func TestCacheReplayHitRatio(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheMinCost: -1})
	ds := loggen.Generate(loggen.Profiles()[0], 120, 7)

	replay := func() (served int) {
		for _, raw := range ds.Entries {
			status, _, _ := cacheGet(t, ts, raw, "", "")
			if status == 200 {
				served++
			}
		}
		return served
	}
	replay()
	hits0 := s.ResultCache().Hits()
	served := replay()
	if served == 0 {
		t.Fatal("no replayed entry was servable")
	}
	hits := s.ResultCache().Hits() - hits0
	ratio := float64(hits) / float64(served)
	t.Logf("second pass: %d served, %d hits (%.1f%%)", served, hits, 100*ratio)
	if ratio < 0.4 {
		t.Fatalf("second-pass hit ratio %.2f below 0.40", ratio)
	}
}
