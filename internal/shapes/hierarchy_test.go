package shapes

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparqlog/internal/graph"
)

// TestCumulativeHierarchyInvariants verifies, over random graphs, the
// subsumption relations that make Table 4's rows cumulative:
//
//	single edge => chain => chain set
//	chain => tree => forest
//	star => tree ; cycle => flower ; tree => flower (connected)
//	flower => flower set ; forest => flower set
//	forest <=> treewidth <= 1 (for graphs with edges)
//	flower set => treewidth <= 2
func TestCumulativeHierarchyInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(13))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		g := graph.New(n)
		m := rng.Intn(2 * n)
		for i := 0; i < m; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		r := Classify(g)
		if r.SingleEdge && !r.Chain {
			return false
		}
		if r.Chain && !r.ChainSet {
			return false
		}
		if r.Chain && !r.Tree {
			return false
		}
		if r.Star && !r.Tree {
			return false
		}
		if r.Tree && !r.Forest {
			return false
		}
		if r.Tree && !r.Flower {
			return false
		}
		if r.Cycle && !r.Flower {
			return false
		}
		if r.Flower && !r.FlowerSet {
			return false
		}
		if r.Forest && !r.FlowerSet {
			return false
		}
		// Self-loops break acyclicity but do not affect treewidth, so the
		// forest <=> treewidth<=1 equivalence only holds loop-free.
		if g.Loops() == 0 && g.M() > 0 && r.Forest != (r.Treewidth <= 1) {
			return false
		}
		if r.FlowerSet && !(r.Treewidth >= 0 && r.Treewidth <= 2) {
			return false
		}
		// Girth consistency: acyclic iff girth 0 (for loop-free graphs).
		if g.Loops() == 0 && r.Forest != (r.Girth == 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestTreewidthMonotoneUnderSubgraphs spot-checks that induced subgraphs
// never have larger treewidth (a classic minor-monotonicity instance).
func TestTreewidthMonotoneUnderSubgraphs(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(17))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		g := graph.New(n)
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		tw := g.Treewidth()
		if tw < 0 {
			return true
		}
		// Drop one node.
		var keep []int
		drop := rng.Intn(n)
		for i := 0; i < n; i++ {
			if i != drop {
				keep = append(keep, i)
			}
		}
		sub, _ := g.Subgraph(keep)
		stw := sub.Treewidth()
		return stw <= tw
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
