package shapes

import (
	"testing"

	"sparqlog/internal/sparql"
)

func triplesOf(t *testing.T, src string) []*sparql.TriplePattern {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q.Triples()
}

func TestCanonicalGraphChain(t *testing.T) {
	// First query of Example 5.1: chain of three edges.
	tr := triplesOf(t, "ASK WHERE {?x1 <a> ?x2 . ?x2 <b> ?x3 . ?x3 <c> ?x4}")
	g, hasVarPred := CanonicalGraph(tr, Options{})
	if hasVarPred {
		t.Fatal("no variable predicates expected")
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("graph = %d nodes %d edges, want 4/3", g.N(), g.M())
	}
	r := Classify(g)
	if !r.Chain || r.SingleEdge || r.Cycle {
		t.Errorf("classification = %+v, want chain", r)
	}
	if r.Treewidth != 1 {
		t.Errorf("treewidth = %d, want 1", r.Treewidth)
	}
}

func TestCanonicalGraphVarPredFlag(t *testing.T) {
	tr := triplesOf(t, "ASK WHERE {?x1 ?x2 ?x3 . ?x3 <a> ?x4 . ?x4 ?x2 ?x5}")
	g, hasVarPred := CanonicalGraph(tr, Options{})
	if !hasVarPred {
		t.Fatal("variable predicate must be flagged")
	}
	// The graph itself looks like a chain (the deceptive Example 5.1 case).
	if !Classify(g).Chain {
		t.Error("canonical graph of example should (misleadingly) be a chain")
	}
	// The hypergraph correctly captures cyclicity.
	h := CanonicalHypergraph(tr, Options{})
	if h.Acyclic() {
		t.Error("hypergraph must be cyclic (join on ?x2)")
	}
	d, ok := h.GHW(3)
	if !ok || d.Width != 2 {
		t.Errorf("ghw = %+v, want 2", d)
	}
}

func TestCanonicalGraphCycle(t *testing.T) {
	tr := triplesOf(t, "ASK WHERE {?a <p> ?b . ?b <p> ?c . ?c <p> ?a}")
	g, _ := CanonicalGraph(tr, Options{})
	r := Classify(g)
	if !r.Cycle || r.Girth != 3 || r.Treewidth != 2 {
		t.Errorf("r = %+v, want cycle girth 3 tw 2", r)
	}
	if !r.Flower || !r.FlowerSet {
		t.Error("cycle should be flower and flower set")
	}
}

func TestConstantsAreNodes(t *testing.T) {
	tr := triplesOf(t, "ASK WHERE {?x <p> <c> . ?y <p> <c>}")
	g, _ := CanonicalGraph(tr, Options{})
	// ?x - <c> - ?y: a chain through the shared constant.
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("graph = %d/%d, want 3/2", g.N(), g.M())
	}
	if !Classify(g).Chain {
		t.Error("should be a chain through the constant")
	}
	// Excluding constants, only isolated variables remain: no edges.
	g2, _ := CanonicalGraph(tr, Options{ExcludeConstants: true})
	if g2.M() != 0 {
		t.Errorf("variables-only graph edges = %d, want 0", g2.M())
	}
}

func TestSameConstantDifferentKindDistinct(t *testing.T) {
	// IRI <v> and literal "v" must be distinct nodes.
	tr := triplesOf(t, `ASK WHERE {?x <p> <v> . ?y <p> "v"}`)
	g, _ := CanonicalGraph(tr, Options{})
	if g.N() != 4 {
		t.Errorf("nodes = %d, want 4", g.N())
	}
}

func TestCollapseEqualFilter(t *testing.T) {
	// A 4-chain whose endpoints are equated by a filter becomes a cycle.
	tr := triplesOf(t, "ASK WHERE {?a <p> ?b . ?b <p> ?c . ?c <p> ?d}")
	g, _ := CanonicalGraph(tr, Options{CollapseEqual: [][2]string{{"a", "d"}}})
	r := Classify(g)
	if !r.Cycle || r.Girth != 3 {
		t.Errorf("collapsed graph = %+v, want cycle of length 3", r)
	}
}

func TestSelfLoopFromReflexiveTriple(t *testing.T) {
	tr := triplesOf(t, "ASK WHERE {?x <p> ?x}")
	g, _ := CanonicalGraph(tr, Options{})
	if g.Loops() != 1 {
		t.Fatalf("loops = %d, want 1", g.Loops())
	}
	r := Classify(g)
	if r.Forest {
		t.Error("self-loop is not a forest")
	}
	if r.Girth != 1 {
		t.Errorf("girth = %d, want 1", r.Girth)
	}
}

func TestStarQuery(t *testing.T) {
	tr := triplesOf(t, `ASK WHERE {?s <a> ?o1 . ?s <b> ?o2 . ?s <c> ?o3 . ?s <d> ?o4}`)
	g, _ := CanonicalGraph(tr, Options{})
	r := Classify(g)
	if !r.Star || !r.Tree {
		t.Errorf("r = %+v, want star", r)
	}
	if r.Chain {
		t.Error("a 4-leaf star is not a chain")
	}
}

func TestFlowerQueryClassification(t *testing.T) {
	// Center ?c with one petal (two paths to ?t) and two stamens.
	src := `ASK WHERE {
		?c <p1> ?a . ?a <p2> ?t .
		?c <p3> ?b . ?b <p4> ?t .
		?c <p5> ?s1 .
		?c <p6> ?s2 . ?s2 <p7> ?s3
	}`
	tr := triplesOf(t, src)
	g, _ := CanonicalGraph(tr, Options{})
	r := Classify(g)
	if !r.Flower || r.Forest || r.Cycle {
		t.Errorf("r = %+v (class %s), want flower", r, r.CumulativeClass())
	}
	if r.CumulativeClass() != "flower" {
		t.Errorf("class = %s, want flower", r.CumulativeClass())
	}
	if r.Treewidth != 2 {
		t.Errorf("tw = %d, want 2", r.Treewidth)
	}
}

func TestHypergraphSkipsConstants(t *testing.T) {
	tr := triplesOf(t, "ASK WHERE {<s> <p> <o> . ?x <p> ?y}")
	h := CanonicalHypergraph(tr, Options{})
	if h.N() != 2 || h.NumEdges() != 1 {
		t.Errorf("hypergraph = %d vertices %d edges, want 2/1", h.N(), h.NumEdges())
	}
}

func TestBlankNodesAreHypergraphVertices(t *testing.T) {
	tr := triplesOf(t, "ASK WHERE {_:b <p> ?x . ?x <q> _:b}")
	h := CanonicalHypergraph(tr, Options{})
	if h.N() != 2 {
		t.Errorf("vertices = %d, want 2 (blank node counts)", h.N())
	}
	// Two hyperedges over the same vertex pair collapse under GYO, so the
	// hypergraph is alpha-acyclic.
	if !h.Acyclic() {
		t.Error("duplicate vertex-pair edges must be acyclic")
	}
}

func TestCumulativeClassOrder(t *testing.T) {
	tr := triplesOf(t, "ASK WHERE {?a <p> ?b}")
	g, _ := CanonicalGraph(tr, Options{})
	if got := Classify(g).CumulativeClass(); got != "single edge" {
		t.Errorf("class = %s, want single edge", got)
	}
}
