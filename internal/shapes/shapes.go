// Package shapes builds the canonical graphs and hypergraphs of queries
// (Section 5 of the paper) and classifies their shapes following the
// cumulative scheme of Table 4: single edge, chain, chain set, star, tree,
// forest, cycle, flower, flower set, treewidth <= 2, treewidth = 3.
package shapes

import (
	"sparqlog/internal/graph"
	"sparqlog/internal/hypergraph"
	"sparqlog/internal/sparql"
)

// Options configures canonical graph construction.
type Options struct {
	// ExcludeConstants drops constant nodes (IRIs and literals in subject
	// or object position) and their incident edges, for the paper's
	// variables-only rerun of the shape analysis in Section 6.1.
	ExcludeConstants bool
	// CollapseEqual lists variable pairs to merge into one node, coming
	// from simple filters of the form ?x = ?y (footnote 20).
	CollapseEqual [][2]string
}

// termKey gives each distinct term a node identity. Variables and blank
// nodes are scoped by name; constants by kind and full value.
func termKey(t sparql.Term) string {
	switch t.Kind {
	case sparql.TermVar:
		return "?" + t.Value
	case sparql.TermBlank:
		return "_:" + t.Value
	case sparql.TermIRI:
		return "<" + t.Value + ">"
	default:
		return "\"" + t.Value + "\"@" + t.Lang + "^^" + t.Datatype
	}
}

// unionFind implements node collapsing for ?x = ?y filters.
type unionFind struct{ parent map[string]string }

func newUnionFind() *unionFind { return &unionFind{parent: map[string]string{}} }

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		return x
	}
	r := u.find(p)
	u.parent[x] = r
	return r
}

func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// CanonicalGraph builds the canonical graph of the triple patterns: one
// node per distinct subject/object term and an undirected edge {x, y} per
// triple whose predicate is a constant. The second return reports whether
// any triple uses a variable in predicate position, in which case the
// canonical graph is not meaningful for cyclicity (Example 5.1) and the
// hypergraph must be used instead.
func CanonicalGraph(triples []*sparql.TriplePattern, opts Options) (*graph.Graph, bool) {
	uf := newUnionFind()
	for _, pair := range opts.CollapseEqual {
		uf.union("?"+pair[0], "?"+pair[1])
	}
	hasVarPred := false
	idx := make(map[string]int)
	nodeOf := func(t sparql.Term) int {
		k := uf.find(termKey(t))
		if i, ok := idx[k]; ok {
			return i
		}
		i := len(idx)
		idx[k] = i
		return i
	}
	type edge struct{ u, v int }
	var edges []edge
	for _, tp := range triples {
		if tp.P.IsVar() {
			hasVarPred = true
		}
		// The canonical graph's nodes are edge endpoints: when an edge is
		// excluded (a constant endpoint in variables-only mode), neither
		// endpoint contributes a node.
		if opts.ExcludeConstants && (!tp.S.IsNodeVar() || !tp.O.IsNodeVar()) {
			continue
		}
		edges = append(edges, edge{nodeOf(tp.S), nodeOf(tp.O)})
	}
	g := graph.New(len(idx))
	for _, e := range edges {
		g.AddEdge(e.u, e.v)
	}
	return g, hasVarPred
}

// CanonicalHypergraph builds the canonical hypergraph: one vertex per
// variable or blank node, and per triple pattern one hyperedge containing
// the variables and blank nodes appearing in it (Section 5). Triples with
// no variables contribute nothing.
func CanonicalHypergraph(triples []*sparql.TriplePattern, opts Options) *hypergraph.Hypergraph {
	uf := newUnionFind()
	for _, pair := range opts.CollapseEqual {
		uf.union("?"+pair[0], "?"+pair[1])
	}
	idx := make(map[string]int)
	vertexOf := func(t sparql.Term) (int, bool) {
		if !t.IsNodeVar() {
			return 0, false
		}
		k := uf.find(termKey(t))
		if i, ok := idx[k]; ok {
			return i, true
		}
		i := len(idx)
		idx[k] = i
		return i, true
	}
	type pend []int
	var pendings []pend
	for _, tp := range triples {
		var e []int
		for _, t := range []sparql.Term{tp.S, tp.P, tp.O} {
			if v, ok := vertexOf(t); ok {
				e = append(e, v)
			}
		}
		if len(e) > 0 {
			pendings = append(pendings, e)
		}
	}
	h := hypergraph.New(len(idx))
	for _, e := range pendings {
		h.AddEdge(e...)
	}
	return h
}

// Report carries the full cumulative shape classification of one canonical
// graph, mirroring the rows of Table 4.
type Report struct {
	SingleEdge bool
	Chain      bool
	ChainSet   bool
	Star       bool
	Tree       bool
	Forest     bool
	Cycle      bool
	Flower     bool
	FlowerSet  bool
	Treewidth  int // exact; -1 if beyond the exact search bound
	Girth      int // 0 when acyclic
}

// Classify computes the shape report of a canonical graph.
func Classify(g *graph.Graph) Report {
	r := Report{
		SingleEdge: g.IsSingleEdge(),
		Chain:      g.IsChain(),
		ChainSet:   g.IsChainSet(),
		Star:       g.IsStar(),
		Tree:       g.IsTree(),
		Forest:     g.IsForest(),
		Cycle:      g.IsCycle(),
		Flower:     g.IsFlower(),
		FlowerSet:  g.IsFlowerSet(),
		Treewidth:  g.Treewidth(),
		Girth:      g.Girth(),
	}
	return r
}

// CumulativeClass returns the most specific label of the Table 4 hierarchy
// for display purposes: the first class in the paper's row order that the
// graph belongs to.
func (r Report) CumulativeClass() string {
	switch {
	case r.SingleEdge:
		return "single edge"
	case r.Chain:
		return "chain"
	case r.ChainSet:
		return "chain set"
	case r.Star:
		return "star"
	case r.Tree:
		return "tree"
	case r.Forest:
		return "forest"
	case r.Cycle:
		return "cycle"
	case r.Flower:
		return "flower"
	case r.FlowerSet:
		return "flower set"
	case r.Treewidth >= 0 && r.Treewidth <= 2:
		return "treewidth <= 2"
	case r.Treewidth == 3:
		return "treewidth = 3"
	default:
		return "other"
	}
}
