// Package repro regenerates every table and figure of the paper's
// evaluation from the synthetic corpus and the engine experiment, printing
// rows in the paper's layout so that measured and published values can be
// compared side by side (recorded in EXPERIMENTS.md).
package repro

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sparqlog/internal/core"
	"sparqlog/internal/engine"
	"sparqlog/internal/gmark"
	"sparqlog/internal/loggen"
	"sparqlog/internal/paths"
	"sparqlog/internal/streaks"
)

// Config scales the experiments to the host machine.
type Config struct {
	// Scale is the corpus-size fraction of the paper's 180M queries.
	Scale float64
	Seed  int64
	// GraphNodes sizes the gMark Bib instance for Figure 3.
	GraphNodes int
	// WorkloadSize is the number of queries per chain/cycle workload.
	WorkloadSize int
	// Timeout is the per-query engine timeout for Figure 3.
	Timeout time.Duration
	// StreakLogSize is the per-log entry count for the Table 6 analysis.
	StreakLogSize int
}

// DefaultConfig is sized for a laptop-scale run (~20k corpus queries).
func DefaultConfig() Config {
	return Config{
		Scale:         0.0001,
		Seed:          2017,
		GraphNodes:    20000,
		WorkloadSize:  30,
		Timeout:       250 * time.Millisecond,
		StreakLogSize: 4000,
	}
}

// Corpus bundles the generated logs with their analyses.
type Corpus struct {
	Datasets []loggen.Dataset
	Reports  []*core.DatasetReport
	Total    *core.DatasetReport
}

// BuildCorpus generates and analyzes the 13 logs.
func BuildCorpus(cfg Config) *Corpus {
	return buildCorpus(cfg, core.Options{})
}

// BuildValidCorpus is the appendix variant: duplicates kept.
func BuildValidCorpus(cfg Config) *Corpus {
	return buildCorpus(cfg, core.Options{KeepDuplicates: true})
}

func buildCorpus(cfg Config, opts core.Options) *Corpus {
	c := &Corpus{Datasets: loggen.GenerateCorpus(cfg.Scale, cfg.Seed)}
	c.Total = core.NewCorpusReport("Total")
	for _, ds := range c.Datasets {
		rep := core.AnalyzeLog(ds.Name, ds.Entries, opts)
		c.Reports = append(c.Reports, rep)
		c.Total.Merge(rep)
	}
	return c
}

func pct(part, whole int) string {
	if whole == 0 {
		return "0.00%"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(part)/float64(whole))
}

// Table1 renders the corpus sizes (Table 1).
func Table1(c *Corpus) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: Sizes of query logs in our corpus\n")
	fmt.Fprintf(&sb, "%-14s %12s %12s %12s\n", "Source", "Total #Q", "Valid #Q", "Unique #Q")
	for _, r := range c.Reports {
		fmt.Fprintf(&sb, "%-14s %12d %12d %12d\n", r.Name, r.Total, r.Valid, r.Unique)
	}
	fmt.Fprintf(&sb, "%-14s %12d %12d %12d\n", "Total", c.Total.Total, c.Total.Valid, c.Total.Unique)
	fmt.Fprintf(&sb, "Bodyless queries: %d (%s of unique)\n", c.Total.Bodyless, pct(c.Total.Bodyless, c.Total.Unique))
	return sb.String()
}

// RepeatRates renders the workload repeat-rate table: valid-vs-unique
// occurrence counts per coarse query shape (core.RepeatShape), ordered
// by volume. The Repeat column is the mean number of times each
// distinct query of the shape was asked; MaxHit is the fraction of the
// shape's traffic a result cache could answer without executing
// ((Total-Unique)/Total) — the corpus-derived upper bound that makes
// cache sizing data-driven.
func RepeatRates(c *Corpus) string {
	var sb strings.Builder
	rep := c.Total
	fmt.Fprintf(&sb, "Repeat rate by query shape (result-cache sizing)\n")
	fmt.Fprintf(&sb, "%-40s %10s %10s %8s %8s\n", "Shape", "Total #Q", "Unique #Q", "Repeat", "MaxHit")
	type row struct {
		label string
		s     core.RepeatStat
	}
	var rows []row
	for label, s := range rep.Repeats {
		rows = append(rows, row{label, s})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].s.Total != rows[j].s.Total {
			return rows[i].s.Total > rows[j].s.Total
		}
		return rows[i].label < rows[j].label
	})
	const maxRows = 15
	shown := rows
	if len(shown) > maxRows {
		shown = shown[:maxRows]
	}
	var totalAll, uniqueAll int
	for _, r := range rows {
		totalAll += r.s.Total
		uniqueAll += r.s.Unique
	}
	for _, r := range shown {
		repeat := "-"
		if r.s.Unique > 0 {
			repeat = fmt.Sprintf("%.2fx", float64(r.s.Total)/float64(r.s.Unique))
		}
		fmt.Fprintf(&sb, "%-40s %10d %10d %8s %8s\n",
			r.label, r.s.Total, r.s.Unique, repeat, pct(r.s.Total-r.s.Unique, r.s.Total))
	}
	if n := len(rows) - len(shown); n > 0 {
		fmt.Fprintf(&sb, "(%d further shapes omitted)\n", n)
	}
	if totalAll > 0 && uniqueAll > 0 {
		fmt.Fprintf(&sb, "Overall: %d valid, %d unique, repeat %.2fx, cacheable bound %s\n",
			totalAll, uniqueAll, float64(totalAll)/float64(uniqueAll), pct(totalAll-uniqueAll, totalAll))
	}
	return sb.String()
}

// Table2 renders keyword counts over the analyzed corpus (Table 2; with a
// duplicate-keeping corpus it reproduces appendix Table 7).
func Table2(c *Corpus) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: Keyword count in queries\n")
	fmt.Fprintf(&sb, "%-12s %10s %9s\n", "Element", "Absolute", "Relative")
	for _, k := range core.KeywordOrder {
		fmt.Fprintf(&sb, "%-12s %10d %9s\n", k, c.Total.Keywords[k], pct(c.Total.Keywords[k], c.Total.Unique))
	}
	return sb.String()
}

// Section41 renders the per-dataset keyword rates the paper's Section 4.1
// discusses in prose: query-type mix and solution-modifier usage.
func Section41(c *Corpus) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Section 4.1: Per-dataset query types and solution modifiers\n")
	fmt.Fprintf(&sb, "%-14s %8s %8s %8s %8s %9s %8s %8s %8s\n",
		"Dataset", "Select", "Ask", "Descr", "Constr", "Distinct", "Limit", "Offset", "OrderBy")
	for _, r := range c.Reports {
		if r.Unique == 0 {
			continue
		}
		p := func(k string) string { return pct(r.Keywords[k], r.Unique) }
		fmt.Fprintf(&sb, "%-14s %8s %8s %8s %8s %9s %8s %8s %8s\n",
			r.Name, p("Select"), p("Ask"), p("Describe"), p("Construct"),
			p("Distinct"), p("Limit"), p("Offset"), p("Order By"))
	}
	return sb.String()
}

// Figure1 renders the triple-count distribution per dataset plus the S/A
// and Avg#T rows.
func Figure1(c *Corpus) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 1: Triple counts of Select/Ask queries per dataset\n")
	fmt.Fprintf(&sb, "%-14s", "Dataset")
	for i := 0; i < core.SizeHistBuckets-1; i++ {
		fmt.Fprintf(&sb, "%6d", i)
	}
	fmt.Fprintf(&sb, "%6s %8s %8s\n", "12+", "S/A", "Avg#T")
	for _, r := range c.Reports {
		fmt.Fprintf(&sb, "%-14s", r.Name)
		for i := 0; i < core.SizeHistBuckets; i++ {
			if r.SelectAsk > 0 {
				fmt.Fprintf(&sb, "%5.1f%%", 100*float64(r.TripleHist[i])/float64(r.SelectAsk))
			} else {
				fmt.Fprintf(&sb, "%6s", "-")
			}
		}
		fmt.Fprintf(&sb, " %7.2f%% %8.2f\n", 100*r.SelectAskShare(), r.AvgTriples())
	}
	// Corpus-level cumulative shares quoted in Section 4.2.
	cum := 0
	var at1, at6, at12 float64
	for i, v := range c.Total.TripleHist {
		cum += v
		switch i {
		case 1:
			at1 = float64(cum)
		case 6:
			at6 = float64(cum)
		case 12:
			at12 = float64(cum)
		}
	}
	sa := float64(c.Total.SelectAsk)
	if sa > 0 {
		fmt.Fprintf(&sb, "Cumulative: <=1 triple %.2f%%, <=6 triples %.2f%%, <=12 triples %.2f%%\n",
			100*at1/sa, 100*at6/sa, 100*at12/sa)
	}
	return sb.String()
}

// Table3 renders the operator-set distribution.
func Table3(c *Corpus) string {
	d := c.Total.OperatorSet
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 3: Sets of operators used in Select/Ask queries\n")
	fmt.Fprintf(&sb, "%-14s %10s %9s\n", "Operator Set", "Absolute", "Relative")
	// CPF block first, in the paper's order, then extensions.
	for _, k := range []string{"none", "F", "A", "A, F"} {
		fmt.Fprintf(&sb, "%-14s %10d %9s\n", k, d.Counts[k], pct(d.Counts[k], d.Total))
	}
	fmt.Fprintf(&sb, "%-14s %10d %9s\n", "CPF subtotal", d.CPFSubtotal(), pct(d.CPFSubtotal(), d.Total))
	fmt.Fprintf(&sb, "%-14s %10d %9s\n", "CPF+O", d.PlusOpt(), "+"+pct(d.PlusOpt(), d.Total))
	fmt.Fprintf(&sb, "%-14s %10d %9s\n", "CPF+G", d.PlusGraph(), "+"+pct(d.PlusGraph(), d.Total))
	fmt.Fprintf(&sb, "%-14s %10d %9s\n", "CPF+U", d.PlusUnion(), "+"+pct(d.PlusUnion(), d.Total))
	fmt.Fprintf(&sb, "%-14s %10d %9s\n", "A, O, U, F", d.Counts["A, O, U, F"], pct(d.Counts["A, O, U, F"], d.Total))
	fmt.Fprintf(&sb, "%-14s %10d %9s\n", "other", d.Counts["other"], pct(d.Counts["other"], d.Total))
	return sb.String()
}

// Section44 renders the subquery and projection rates.
func Section44(c *Corpus) string {
	var sb strings.Builder
	t := c.Total
	fmt.Fprintf(&sb, "Section 4.4: Subqueries and Projection\n")
	fmt.Fprintf(&sb, "Subqueries: %d (%s of unique queries)\n", t.Subqueries, pct(t.Subqueries, t.Unique))
	fmt.Fprintf(&sb, "Projection: %d (%s) definite, %d (%s) indeterminate (Bind)\n",
		t.ProjYes, pct(t.ProjYes, t.Unique), t.ProjInd, pct(t.ProjInd, t.Unique))
	fmt.Fprintf(&sb, "Projection range: %s .. %s\n",
		pct(t.ProjYes, t.Unique), pct(t.ProjYes+t.ProjInd, t.Unique))
	return sb.String()
}

// Figure3Data carries the engine experiment's measured series.
type Figure3Data struct {
	Lengths   []int
	ChainBG   []int64 // avg ns per workload
	ChainPG   []int64
	CycleBG   []int64
	CyclePG   []int64
	CyclePGTO []float64 // timeout fraction
}

// Figure3 runs the chain/cycle workloads of lengths 3..8 on both engines.
func Figure3(cfg Config) (string, Figure3Data) {
	g := gmark.Generate(gmark.Config{Nodes: cfg.GraphNodes, Seed: cfg.Seed})
	bg := &engine.GraphEngine{}
	pg := &engine.RelationalEngine{}
	data := Figure3Data{}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: chain/cycle workloads on BG (graph engine) vs PG (relational engine)\n")
	fmt.Fprintf(&sb, "Bib graph: %d nodes, %d triples; %d queries per workload; timeout %v\n",
		g.N, g.Triples, cfg.WorkloadSize, cfg.Timeout)
	fmt.Fprintf(&sb, "%-6s %14s %14s %14s %14s %8s\n", "W-k", "chainBG(ns)", "chainPG(ns)", "cycleBG(ns)", "cyclePG(ns)", "PG t/o")
	for k := 3; k <= 8; k++ {
		chains := g.Workload(gmark.Chain, k, cfg.WorkloadSize, cfg.Seed+int64(k))
		cycles := g.Workload(gmark.Cycle, k, cfg.WorkloadSize, cfg.Seed+100+int64(k))
		var chainCQs, cycleCQs []engine.CQ
		for _, q := range chains {
			chainCQs = append(chainCQs, q.CQ)
		}
		for _, q := range cycles {
			cycleCQs = append(cycleCQs, q.CQ)
		}
		cbg := engine.RunWorkload(bg, g.Snapshot, chainCQs, cfg.Timeout)
		cpg := engine.RunWorkload(pg, g.Snapshot, chainCQs, cfg.Timeout)
		ybg := engine.RunWorkload(bg, g.Snapshot, cycleCQs, cfg.Timeout)
		ypg := engine.RunWorkload(pg, g.Snapshot, cycleCQs, cfg.Timeout)
		data.Lengths = append(data.Lengths, k)
		data.ChainBG = append(data.ChainBG, cbg.AvgNanos())
		data.ChainPG = append(data.ChainPG, cpg.AvgNanos())
		data.CycleBG = append(data.CycleBG, ybg.AvgNanos())
		data.CyclePG = append(data.CyclePG, ypg.AvgNanos())
		data.CyclePGTO = append(data.CyclePGTO, ypg.TimeoutRate())
		fmt.Fprintf(&sb, "W-%-4d %14d %14d %14d %14d %7.0f%%\n",
			k, cbg.AvgNanos(), cpg.AvgNanos(), ybg.AvgNanos(), ypg.AvgNanos(), 100*ypg.TimeoutRate())
	}
	return sb.String(), data
}

// Figure5 renders the size histogram of CQ-like queries with >= 2 triples.
func Figure5(c *Corpus) string {
	var sb strings.Builder
	t := c.Total
	fmt.Fprintf(&sb, "Figure 5: Size of CQ-like queries with at least two triples\n")
	fmt.Fprintf(&sb, "%-10s", "size")
	for i := 2; i < core.SizeHistBuckets-1; i++ {
		fmt.Fprintf(&sb, "%7d", i)
	}
	fmt.Fprintf(&sb, "%7s\n", "12+")
	row := func(name string, hist [core.SizeHistBuckets]int) {
		total := 0
		for i := 2; i < core.SizeHistBuckets; i++ {
			total += hist[i]
		}
		fmt.Fprintf(&sb, "%-10s", name)
		for i := 2; i < core.SizeHistBuckets; i++ {
			if total > 0 {
				fmt.Fprintf(&sb, "%6.1f%%", 100*float64(hist[i])/float64(total))
			} else {
				fmt.Fprintf(&sb, "%7s", "-")
			}
		}
		one := hist[0] + hist[1]
		all := one + total
		fmt.Fprintf(&sb, "   (<=1 triple: %s)\n", pct(one, all))
	}
	row("CQ", t.SizeCQ)
	row("CQF", t.SizeCQF)
	row("CQOF", t.SizeCQOF)
	return sb.String()
}

// Table4 renders the cumulative shape analysis per fragment.
func Table4(c *Corpus) string {
	var sb strings.Builder
	t := c.Total
	fmt.Fprintf(&sb, "Table 4: Cumulative shape analysis of CQ, CQF, CQOF\n")
	fmt.Fprintf(&sb, "%-14s %12s %9s %12s %9s %12s %9s\n",
		"Shape", "CQ", "%", "CQF", "%", "CQOF", "%")
	row := func(name string, a, b, d int) {
		fmt.Fprintf(&sb, "%-14s %12d %9s %12d %9s %12d %9s\n", name,
			a, pct(a, t.ShapeCQ.Total), b, pct(b, t.ShapeCQF.Total), d, pct(d, t.ShapeCQOF.Total))
	}
	row("single edge", t.ShapeCQ.SingleEdge, t.ShapeCQF.SingleEdge, t.ShapeCQOF.SingleEdge)
	row("chain", t.ShapeCQ.Chain, t.ShapeCQF.Chain, t.ShapeCQOF.Chain)
	row("chain set", t.ShapeCQ.ChainSet, t.ShapeCQF.ChainSet, t.ShapeCQOF.ChainSet)
	row("star", t.ShapeCQ.Star, t.ShapeCQF.Star, t.ShapeCQOF.Star)
	row("tree", t.ShapeCQ.Tree, t.ShapeCQF.Tree, t.ShapeCQOF.Tree)
	row("forest", t.ShapeCQ.Forest, t.ShapeCQF.Forest, t.ShapeCQOF.Forest)
	row("cycle", t.ShapeCQ.Cycle, t.ShapeCQF.Cycle, t.ShapeCQOF.Cycle)
	row("flower", t.ShapeCQ.Flower, t.ShapeCQF.Flower, t.ShapeCQOF.Flower)
	row("flower set", t.ShapeCQ.FlowerSet, t.ShapeCQF.FlowerSet, t.ShapeCQOF.FlowerSet)
	row("treewidth <=2", t.ShapeCQ.TW2, t.ShapeCQF.TW2, t.ShapeCQOF.TW2)
	row("treewidth =3", t.ShapeCQ.TW3, t.ShapeCQF.TW3, t.ShapeCQOF.TW3)
	row("total", t.ShapeCQ.Total, t.ShapeCQF.Total, t.ShapeCQOF.Total)
	fmt.Fprintf(&sb, "Fragment shares of AOF: CQ %s, CQF %s, well-designed %s, CQOF %s (AOF=%d)\n",
		pct(t.CQ, t.AOF), pct(t.CQF, t.AOF), pct(t.WellDesigned, t.AOF), pct(t.CQOF, t.AOF), t.AOF)
	fmt.Fprintf(&sb, "Interface width > 1 among well-designed: %d\n", t.WideInterface)
	return sb.String()
}

// Section61 renders the shortest-cycle-length distribution plus the
// constants analysis of Section 6.1.
func Section61(c *Corpus) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Section 6.1: Shortest cycle lengths of cyclic CQs\n")
	var keys []int
	for k := range c.Total.GirthHist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "girth %2d: %d queries\n", k, c.Total.GirthHist[k])
	}
	t := c.Total
	fmt.Fprintf(&sb, "Single-edge CQs using constants: %d (%s of single-edge CQs)\n",
		t.SingleEdgeWithConstants, pct(t.SingleEdgeWithConstants, t.ShapeCQ.SingleEdge))
	nc := t.ShapeCQNoConst
	fmt.Fprintf(&sb, "Variables-only CQ shapes: single edge %s, forest %s, flower set %s (of %d)\n",
		pct(nc.SingleEdge, nc.Total), pct(nc.Forest, nc.Total), pct(nc.FlowerSet, nc.Total), nc.Total)
	return sb.String()
}

// Appendix regenerates the duplicate-containing variant of the corpus
// analyses (Tables 7-9, Figures 8-10 of the paper's appendix).
func Appendix(cfg Config) string {
	c := BuildValidCorpus(cfg)
	var sb strings.Builder
	sb.WriteString("Appendix: analyses over the Valid corpus (duplicates kept)\n\n")
	sb.WriteString(strings.Replace(Table2(c), "Table 2", "Table 7", 1))
	sb.WriteByte('\n')
	sb.WriteString(strings.Replace(Table3(c), "Table 3", "Table 8", 1))
	sb.WriteByte('\n')
	sb.WriteString(strings.Replace(Figure1(c), "Figure 1", "Figure 8", 1))
	sb.WriteByte('\n')
	sb.WriteString(strings.Replace(Figure5(c), "Figure 5", "Figure 9", 1))
	sb.WriteByte('\n')
	sb.WriteString(strings.Replace(Table4(c), "Table 4", "Table 9", 1))
	sb.WriteByte('\n')
	sb.WriteString(strings.Replace(Table5(c), "Table 5", "Figure 10", 1))
	return sb.String()
}

// Table6Windows reports streak counts under varying window sizes, the
// sensitivity analysis the paper names as future work in Section 8.
func Table6Windows(cfg Config, windows []int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Section 8 extension: streak length vs window size (DBpedia16 profile)\n")
	var prof loggen.Profile
	for _, p := range loggen.Profiles() {
		if p.Name == "DBpedia16" {
			prof = p
		}
	}
	ds := loggen.Generate(prof, cfg.StreakLogSize, cfg.Seed)
	fmt.Fprintf(&sb, "%-8s %10s %10s %10s\n", "window", "streaks", ">10", "longest")
	for _, w := range windows {
		found := streaks.Find(ds.Entries, streaks.Options{Window: w})
		h := streaks.HistogramOf(found)
		over10 := 0
		for b := 1; b < len(h.Buckets); b++ {
			over10 += h.Buckets[b]
		}
		fmt.Fprintf(&sb, "%-8d %10d %10d %10d\n", w, len(found), over10, h.Longest)
	}
	return sb.String()
}

// Section62 renders the hypertree-width analysis of predicate-variable
// queries.
func Section62(c *Corpus) string {
	var sb strings.Builder
	t := c.Total
	fmt.Fprintf(&sb, "Section 6.2: Hypertree width of predicate-variable CQOF queries\n")
	fmt.Fprintf(&sb, "analyzed: %d  ghw=1: %d  ghw=2: %d  ghw=3: %d  beyond: %d\n",
		t.VarPredAOF, t.GHW1, t.GHW2, t.GHW3, t.GHWOther)
	fmt.Fprintf(&sb, "max decomposition nodes: %d\n", t.MaxDecompNodes)
	return sb.String()
}

// Table5 renders the property-path expression types.
func Table5(c *Corpus) string {
	t := c.Total.Paths
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 5: Structure of navigational property paths\n")
	fmt.Fprintf(&sb, "trivial !a: %d   trivial ^a: %d   navigational: %d\n",
		t.TrivialNeg, t.TrivialInv, t.Total)
	type row struct {
		t paths.ExprType
		n int
	}
	var rows []row
	for et, n := range t.Counts {
		rows = append(rows, row{et, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].t < rows[j].t
	})
	fmt.Fprintf(&sb, "%-24s %10s %9s %8s\n", "Expression Type", "Absolute", "Relative", "k")
	for _, r := range rows {
		kcol := ""
		if mk, ok := t.MinK[r.t]; ok {
			if mk == t.MaxK[r.t] {
				kcol = fmt.Sprintf("%d", mk)
			} else {
				kcol = fmt.Sprintf("%d-%d", mk, t.MaxK[r.t])
			}
		}
		fmt.Fprintf(&sb, "%-24s %10d %9s %8s\n", r.t.String(), r.n, pct(r.n, t.Total), kcol)
	}
	fmt.Fprintf(&sb, "Expressions outside Ctract: %d\n", t.NonCtract)
	return sb.String()
}

// Table6 runs streak detection over three DBpedia-style single-day logs.
func Table6(cfg Config) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 6: Length of streaks in three single-day log files (window %d, threshold %.0f%%)\n",
		streaks.DefaultWindow, streaks.DefaultThreshold*100)
	profiles := loggen.Profiles()
	var hists []streaks.Histogram
	names := []string{"DBpedia14", "DBpedia15", "DBpedia16"}
	for i, name := range names {
		var prof loggen.Profile
		for _, p := range profiles {
			if p.Name == name {
				prof = p
			}
		}
		ds := loggen.Generate(prof, cfg.StreakLogSize, cfg.Seed+int64(i)*31)
		found := streaks.Find(ds.Entries, streaks.Options{})
		hists = append(hists, streaks.HistogramOf(found))
	}
	fmt.Fprintf(&sb, "%-14s %10s %10s %10s\n", "Streak length", "#DBP'14", "#DBP'15", "#DBP'16")
	for b := 0; b < 11; b++ {
		fmt.Fprintf(&sb, "%-14s %10d %10d %10d\n", streaks.BucketLabel(b),
			hists[0].Buckets[b], hists[1].Buckets[b], hists[2].Buckets[b])
	}
	fmt.Fprintf(&sb, "Longest streaks: %d / %d / %d\n", hists[0].Longest, hists[1].Longest, hists[2].Longest)
	return sb.String()
}

// All runs every corpus-based experiment and returns the combined report.
func All(cfg Config) string {
	var sb strings.Builder
	c := BuildCorpus(cfg)
	sb.WriteString(Table1(c))
	sb.WriteByte('\n')
	sb.WriteString(RepeatRates(c))
	sb.WriteByte('\n')
	sb.WriteString(Table2(c))
	sb.WriteByte('\n')
	sb.WriteString(Section41(c))
	sb.WriteByte('\n')
	sb.WriteString(Figure1(c))
	sb.WriteByte('\n')
	sb.WriteString(Table3(c))
	sb.WriteByte('\n')
	sb.WriteString(Section44(c))
	sb.WriteByte('\n')
	f3, _ := Figure3(cfg)
	sb.WriteString(f3)
	sb.WriteByte('\n')
	sb.WriteString(Figure5(c))
	sb.WriteByte('\n')
	sb.WriteString(Table4(c))
	sb.WriteByte('\n')
	sb.WriteString(Section61(c))
	sb.WriteByte('\n')
	sb.WriteString(Section62(c))
	sb.WriteByte('\n')
	sb.WriteString(Table5(c))
	sb.WriteByte('\n')
	sb.WriteString(Table6(cfg))
	return sb.String()
}
