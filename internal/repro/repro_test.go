package repro

import (
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps test runtime low.
func tinyConfig() Config {
	return Config{
		Scale:         0.00002,
		Seed:          2017,
		GraphNodes:    1200,
		WorkloadSize:  6,
		Timeout:       120 * time.Millisecond,
		StreakLogSize: 500,
	}
}

func TestBuildCorpus(t *testing.T) {
	c := BuildCorpus(tinyConfig())
	if len(c.Reports) != 13 {
		t.Fatalf("reports = %d, want 13", len(c.Reports))
	}
	if c.Total.Unique == 0 || c.Total.Valid < c.Total.Unique {
		t.Errorf("totals inconsistent: %+v", c.Total)
	}
}

func TestTablesRender(t *testing.T) {
	cfg := tinyConfig()
	c := BuildCorpus(cfg)
	checks := []struct {
		name, out string
		contains  []string
	}{
		{"Table1", Table1(c), []string{"DBpedia9/12", "WikiData17", "Total"}},
		{"Table2", Table2(c), []string{"Select", "Filter", "Group By"}},
		{"Section41", Section41(c), []string{"Distinct", "BritM14"}},
		{"Figure1", Figure1(c), []string{"Avg#T", "Cumulative"}},
		{"Table3", Table3(c), []string{"CPF subtotal", "CPF+O", "A, O, U, F"}},
		{"Section44", Section44(c), []string{"Subqueries", "Projection"}},
		{"Figure5", Figure5(c), []string{"CQ", "CQF", "CQOF"}},
		{"Table4", Table4(c), []string{"single edge", "flower set", "treewidth"}},
		{"Section61", Section61(c), []string{"Shortest cycle"}},
		{"Section62", Section62(c), []string{"ghw=1"}},
		{"Table5", Table5(c), []string{"navigational"}},
	}
	for _, tc := range checks {
		for _, want := range tc.contains {
			if !strings.Contains(tc.out, want) {
				t.Errorf("%s output missing %q:\n%s", tc.name, want, tc.out)
			}
		}
	}
}

func TestCorpusQualitativeFindings(t *testing.T) {
	c := BuildCorpus(tinyConfig())
	tot := c.Total
	// Select queries dominate (paper: 87.97%).
	if tot.Keywords["Select"]*100 < tot.Unique*70 {
		t.Errorf("Select share too low: %d of %d", tot.Keywords["Select"], tot.Unique)
	}
	// The overwhelming majority of CQs is acyclic: forest should cover
	// more than 95% of CQ shapes.
	if tot.ShapeCQ.Total > 0 && tot.ShapeCQ.Forest*100 < tot.ShapeCQ.Total*95 {
		t.Errorf("forest coverage = %d of %d", tot.ShapeCQ.Forest, tot.ShapeCQ.Total)
	}
	// Flower sets reach (near) 100%.
	if tot.ShapeCQ.Total > 0 && tot.ShapeCQ.FlowerSet*1000 < tot.ShapeCQ.Total*995 {
		t.Errorf("flower set coverage = %d of %d", tot.ShapeCQ.FlowerSet, tot.ShapeCQ.Total)
	}
	// No treewidth above 3 in CQ-like queries.
	if tot.ShapeCQ.TWOther != 0 || tot.ShapeCQF.TWOther != 0 || tot.ShapeCQOF.TWOther != 0 {
		t.Errorf("queries beyond treewidth 3: %d/%d/%d",
			tot.ShapeCQ.TWOther, tot.ShapeCQF.TWOther, tot.ShapeCQOF.TWOther)
	}
	// Fragment inclusion: CQ <= CQF <= AOF; CQOF <= well-designed.
	if tot.CQ > tot.CQF || tot.CQF > tot.AOF || tot.CQOF > tot.WellDesigned {
		t.Errorf("fragment inclusions violated: CQ=%d CQF=%d CQOF=%d WD=%d AOF=%d",
			tot.CQ, tot.CQF, tot.CQOF, tot.WellDesigned, tot.AOF)
	}
}

func TestFigure3Shape(t *testing.T) {
	cfg := tinyConfig()
	out, data := Figure3(cfg)
	if !strings.Contains(out, "W-3") || !strings.Contains(out, "W-8") {
		t.Fatalf("missing workloads in output:\n%s", out)
	}
	// Qualitative reproduction targets: summed over workloads, the graph
	// engine beats the relational engine, and for the relational engine
	// cycles cost at least as much as chains.
	var bgTotal, pgTotal int64
	for i := range data.Lengths {
		bgTotal += data.ChainBG[i] + data.CycleBG[i]
		pgTotal += data.ChainPG[i] + data.CyclePG[i]
	}
	if bgTotal >= pgTotal {
		t.Errorf("graph engine (%d ns) should be faster overall than relational (%d ns)", bgTotal, pgTotal)
	}
	// The cycle >> chain gap on the relational engine only emerges at
	// realistic graph sizes; it is asserted by the default-scale
	// benchmark harness (see EXPERIMENTS.md), not at this toy scale.
}

func TestTable6Renders(t *testing.T) {
	out := Table6(tinyConfig())
	for _, want := range []string{"1-10", ">100", "DBP'14", "Longest"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table6 missing %q:\n%s", want, out)
		}
	}
}

func TestValidCorpusKeepsDuplicates(t *testing.T) {
	cfg := tinyConfig()
	u := BuildCorpus(cfg)
	v := BuildValidCorpus(cfg)
	if v.Total.Unique <= u.Total.Unique {
		t.Errorf("valid corpus (%d) should analyze more queries than unique corpus (%d)",
			v.Total.Unique, u.Total.Unique)
	}
}
