// Package paths classifies property-path expressions into the 21
// expression types of Table 5 of the paper and tests membership in the
// Ctract class of Bagan et al., which governs tractability of evaluation
// under simple-path semantics (Section 7).
//
// Following the paper, the trivial navigational forms !a and ^a are
// excluded from classification (IsTrivial), and within classified
// expressions the atoms a, ^a, and !a are all treated as literals; the
// symmetric variant of each type (e.g. b/a* for a*/b) is folded into the
// type listed in the table.
//
// Classification is no longer only reporting: the compiled path engine
// (internal/pathcomp) classifies every expression at compile time and
// uses the result to select evaluation fast paths — the dominant types
// a*, a+, (a1|···|ak)* and (a1|···|ak)+ run as direct posting-list
// closures instead of the general product-automaton search.
package paths

import (
	"sparqlog/internal/sparql"
)

// ExprType enumerates the expression types of Table 5, in the paper's
// row order, plus Unclassified for expressions outside the table.
type ExprType int

// Table 5 expression types.
const (
	AltStar       ExprType = iota // (a1|···|ak)*
	Star                          // a*
	Seq                           // a1/···/ak
	StarSeqLit                    // a*/b (and b/a*)
	Alt                           // a1|···|ak
	Plus                          // a+
	OptSeq                        // a1?/···/ak?
	LitAltSeq                     // a(b1|···|bk)
	LitOptSeq                     // a1/a2?/···/ak?
	SeqStarAltLit                 // (a/b*)|c
	StarOptSeq                    // a*/b?
	LitLitStarSeq                 // a/b/c*
	NegAlt                        // !(a|b)
	AltPlus                       // (a1|···|ak)+
	AltAltSeq                     // (a1|···|ak)(a1|···|ak)
	OptAltLit                     // a?|b
	StarAltLit                    // a*|b
	AltOpt                        // (a|b)?
	LitAltPlus                    // a|b+
	PlusAltPlus                   // a+|b+
	SeqStar                       // (a/b)*
	Unclassified
)

var typeNames = []string{
	"(a1|···|ak)*", "a*", "a1/···/ak", "a*/b", "a1|···|ak", "a+",
	"a1?/···/ak?", "a(b1|···|bk)", "a1/a2?/···/ak?", "(a/b*)|c", "a*/b?",
	"a/b/c*", "!(a|b)", "(a1|···|ak)+", "(a1|···|ak)(a1|···|ak)", "a?|b",
	"a*|b", "(a|b)?", "a|b+", "a+|b+", "(a/b)*", "unclassified",
}

// String returns the table's notation for the type.
func (t ExprType) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return "invalid"
}

// Class is the classification result: an expression type plus the arity k
// where the type is parameterized (0 otherwise).
type Class struct {
	Type ExprType
	K    int
}

// CorpusExample pairs a Table-5 expression type with a concrete SPARQL
// path expression of that type over predicates <a>, <b>, <c>.
type CorpusExample struct {
	Type ExprType
	Expr string
}

// Corpus returns a concrete expression for every one of the 21 Table-5
// types, plus type-preserving variants exercising inverse (^a) and
// negated (!a) atoms — the table treats all three atom forms as
// literals. It seeds the compiled engine's differential suite and the
// FuzzPathCompile corpus, so every row of the table has an executable
// witness.
func Corpus() []CorpusExample {
	return []CorpusExample{
		{AltStar, "(<a>|<b>)*"},
		{Star, "<a>*"},
		{Seq, "<a>/<b>/<c>"},
		{StarSeqLit, "<a>*/<b>"},
		{Alt, "<a>|<b>|<c>"},
		{Plus, "<a>+"},
		{OptSeq, "<a>?/<b>?"},
		{LitAltSeq, "<a>/(<b>|<c>)"},
		{LitOptSeq, "<a>/<b>?/<c>?"},
		{SeqStarAltLit, "(<a>/<b>*)|<c>"},
		{StarOptSeq, "<a>*/<b>?"},
		{LitLitStarSeq, "<a>/<b>/<c>*"},
		{NegAlt, "!(<a>|<b>)"},
		{AltPlus, "(<a>|<b>)+"},
		{AltAltSeq, "(<a>|<b>)/(<a>|<b>)"},
		{OptAltLit, "<a>?|<b>"},
		{StarAltLit, "<a>*|<b>"},
		{AltOpt, "(<a>|<b>)?"},
		{LitAltPlus, "<a>|<b>+"},
		{PlusAltPlus, "<a>+|<b>+"},
		{SeqStar, "(<a>/<b>)*"},
		// Inverse and negated atoms are literals to the table; these
		// variants keep the compiled engine honest on both edge kinds.
		{AltStar, "(^<a>|<b>)*"},
		{Star, "(^<a>)*"},
		{Star, "(!<a>)*"},
		{Plus, "(^<a>)+"},
		{Seq, "<a>/^<b>/<c>"},
		{StarSeqLit, "<a>*/^<b>"},
		{NegAlt, "!(<a>|^<b>)"},
		{Alt, "^<a>|!<b>"},
	}
}

// IsTrivial reports whether the expression is one of the forms the paper
// excludes from navigational analysis: !a or ^a over a single IRI.
func IsTrivial(p sparql.PathExpr) bool { return sparql.IsTrivialPath(p) }

// isLiteral reports whether p is an atom for Table 5 purposes: an IRI,
// an inverted IRI, or a negated single IRI.
func isLiteral(p sparql.PathExpr) bool {
	switch n := p.(type) {
	case *sparql.PathIRI:
		return true
	case *sparql.PathInverse:
		_, ok := n.X.(*sparql.PathIRI)
		return ok
	case *sparql.PathNeg:
		if len(n.Set) != 1 {
			return false
		}
		_, ok := n.Set[0].(*sparql.PathIRI)
		return ok
	}
	return false
}

// litAlt reports whether p is an alternation of k >= 2 literals and
// returns k.
func litAlt(p sparql.PathExpr) (int, bool) {
	alt, ok := p.(*sparql.PathAlt)
	if !ok {
		return 0, false
	}
	for _, part := range alt.Parts {
		if !isLiteral(part) {
			return 0, false
		}
	}
	return len(alt.Parts), len(alt.Parts) >= 2
}

func isMod(p sparql.PathExpr, mod byte) (sparql.PathExpr, bool) {
	m, ok := p.(*sparql.PathMod)
	if !ok || m.Mod != mod {
		return nil, false
	}
	return m.X, true
}

// litMod reports whether p is literal followed by the modifier (a*, a+, a?).
func litMod(p sparql.PathExpr, mod byte) bool {
	x, ok := isMod(p, mod)
	return ok && isLiteral(x)
}

// Classify assigns the Table 5 expression type. Trivial expressions (!a,
// ^a) and bare literals are not navigational and yield Unclassified; use
// IsTrivial to separate them beforehand.
func Classify(p sparql.PathExpr) Class {
	switch n := p.(type) {
	case *sparql.PathMod:
		switch n.Mod {
		case '*':
			if isLiteral(n.X) {
				return Class{Type: Star}
			}
			if k, ok := litAlt(n.X); ok {
				return Class{Type: AltStar, K: k}
			}
			if seq, ok := n.X.(*sparql.PathSeq); ok && allLiterals(seq.Parts) {
				return Class{Type: SeqStar, K: len(seq.Parts)}
			}
		case '+':
			if isLiteral(n.X) {
				return Class{Type: Plus}
			}
			if k, ok := litAlt(n.X); ok {
				return Class{Type: AltPlus, K: k}
			}
		case '?':
			if k, ok := litAlt(n.X); ok {
				return Class{Type: AltOpt, K: k}
			}
			if isLiteral(n.X) {
				// A bare a? is the k=1 case of a1?/···/ak?.
				return Class{Type: OptSeq, K: 1}
			}
		}
	case *sparql.PathSeq:
		return classifySeq(n.Parts)
	case *sparql.PathAlt:
		return classifyAlt(n.Parts)
	case *sparql.PathNeg:
		if len(n.Set) >= 2 && allLiterals(n.Set) {
			return Class{Type: NegAlt, K: len(n.Set)}
		}
	}
	return Class{Type: Unclassified}
}

func allLiterals(parts []sparql.PathExpr) bool {
	for _, p := range parts {
		if !isLiteral(p) {
			return false
		}
	}
	return true
}

func classifySeq(parts []sparql.PathExpr) Class {
	k := len(parts)
	if k < 2 {
		return Class{Type: Unclassified}
	}
	if allLiterals(parts) {
		return Class{Type: Seq, K: k}
	}
	// a*/b and b/a* (one starred literal, one literal).
	if k == 2 {
		if litMod(parts[0], '*') && isLiteral(parts[1]) ||
			isLiteral(parts[0]) && litMod(parts[1], '*') {
			return Class{Type: StarSeqLit}
		}
		// a*/b? and b?/a*.
		if litMod(parts[0], '*') && litMod(parts[1], '?') ||
			litMod(parts[0], '?') && litMod(parts[1], '*') {
			return Class{Type: StarOptSeq}
		}
		// a(b1|...|bk) and (b1|...|bk)a.
		if isLiteral(parts[0]) {
			if kk, ok := litAlt(parts[1]); ok {
				return Class{Type: LitAltSeq, K: kk}
			}
		}
		if isLiteral(parts[1]) {
			if kk, ok := litAlt(parts[0]); ok {
				return Class{Type: LitAltSeq, K: kk}
			}
		}
		// (a1|..|ak)(a1|..|ak).
		k1, ok1 := litAlt(parts[0])
		k2, ok2 := litAlt(parts[1])
		if ok1 && ok2 {
			kk := k1
			if k2 > kk {
				kk = k2
			}
			return Class{Type: AltAltSeq, K: kk}
		}
	}
	// All parts optional literals: a1?/···/ak?.
	allOpt := true
	for _, p := range parts {
		if !litMod(p, '?') {
			allOpt = false
			break
		}
	}
	if allOpt {
		return Class{Type: OptSeq, K: k}
	}
	// Literal prefix followed by optional literals: a1/a2?/···/ak?
	// (symmetric form: optionals first, literal last).
	if isLiteral(parts[0]) && allOptLits(parts[1:]) ||
		isLiteral(parts[k-1]) && allOptLits(parts[:k-1]) {
		return Class{Type: LitOptSeq, K: k}
	}
	// a/b/c* and c*/b/a.
	if k == 3 {
		if isLiteral(parts[0]) && isLiteral(parts[1]) && litMod(parts[2], '*') ||
			litMod(parts[0], '*') && isLiteral(parts[1]) && isLiteral(parts[2]) {
			return Class{Type: LitLitStarSeq}
		}
	}
	return Class{Type: Unclassified}
}

func allOptLits(parts []sparql.PathExpr) bool {
	for _, p := range parts {
		if !litMod(p, '?') {
			return false
		}
	}
	return len(parts) > 0
}

func classifyAlt(parts []sparql.PathExpr) Class {
	k := len(parts)
	if k < 2 {
		return Class{Type: Unclassified}
	}
	if allLiterals(parts) {
		return Class{Type: Alt, K: k}
	}
	if k == 2 {
		a, b := parts[0], parts[1]
		// a?|b (and b|a?).
		if litMod(a, '?') && isLiteral(b) || isLiteral(a) && litMod(b, '?') {
			return Class{Type: OptAltLit}
		}
		// a*|b (and b|a*).
		if litMod(a, '*') && isLiteral(b) || isLiteral(a) && litMod(b, '*') {
			return Class{Type: StarAltLit}
		}
		// a|b+ (and b+|a).
		if litMod(a, '+') && isLiteral(b) || isLiteral(a) && litMod(b, '+') {
			return Class{Type: LitAltPlus}
		}
		// a+|b+.
		if litMod(a, '+') && litMod(b, '+') {
			return Class{Type: PlusAltPlus}
		}
		// (a/b*)|c and c|(a/b*).
		if isSeqLitStar(a) && isLiteral(b) || isLiteral(a) && isSeqLitStar(b) {
			return Class{Type: SeqStarAltLit}
		}
	}
	return Class{Type: Unclassified}
}

// isSeqLitStar matches a/b* and b*/a.
func isSeqLitStar(p sparql.PathExpr) bool {
	seq, ok := p.(*sparql.PathSeq)
	if !ok || len(seq.Parts) != 2 {
		return false
	}
	return isLiteral(seq.Parts[0]) && litMod(seq.Parts[1], '*') ||
		litMod(seq.Parts[0], '*') && isLiteral(seq.Parts[1])
}

// InCtract tests membership in the Ctract class of Bagan, Bonifati, Groz
// (PODS 2013), under which property-path evaluation with simple-path
// semantics is tractable. The full characterization constrains the
// languages of starred subexpressions; for the expression types occurring
// in endpoint logs the following structural test is exact: every starred
// or plus-modified subexpression must be over a single atom or an
// alternation of atoms. In particular (a/b)* is rejected — the one
// non-Ctract expression the paper found in its corpus.
func InCtract(p sparql.PathExpr) bool {
	ok := true
	var visit func(x sparql.PathExpr)
	visit = func(x sparql.PathExpr) {
		if !ok || x == nil {
			return
		}
		switch n := x.(type) {
		case *sparql.PathMod:
			if n.Mod == '*' || n.Mod == '+' {
				if !isLiteral(n.X) {
					if _, isAlt := litAlt(n.X); !isAlt {
						ok = false
						return
					}
				}
			}
			visit(n.X)
		case *sparql.PathSeq:
			for _, part := range n.Parts {
				visit(part)
			}
		case *sparql.PathAlt:
			for _, part := range n.Parts {
				visit(part)
			}
		case *sparql.PathInverse:
			visit(n.X)
		}
	}
	visit(p)
	return ok
}

// Table5 aggregates path classifications: counts per expression type and
// the observed k ranges, matching the columns of Table 5.
type Table5 struct {
	Counts map[ExprType]int
	MinK   map[ExprType]int
	MaxK   map[ExprType]int
	// Trivial counts !a and ^a occurrences excluded from the table.
	TrivialNeg, TrivialInv int
	// NonCtract counts expressions outside Ctract.
	NonCtract int
	Total     int // classified (navigational) expressions
}

// NewTable5 returns an empty aggregation.
func NewTable5() *Table5 {
	return &Table5{
		Counts: make(map[ExprType]int),
		MinK:   make(map[ExprType]int),
		MaxK:   make(map[ExprType]int),
	}
}

// Add records one property-path expression.
func (t *Table5) Add(p sparql.PathExpr) {
	if IsTrivial(p) {
		switch p.(type) {
		case *sparql.PathNeg:
			t.TrivialNeg++
		case *sparql.PathInverse:
			t.TrivialInv++
		}
		return
	}
	c := Classify(p)
	t.Counts[c.Type]++
	t.Total++
	if c.K > 0 {
		if cur, ok := t.MinK[c.Type]; !ok || c.K < cur {
			t.MinK[c.Type] = c.K
		}
		if c.K > t.MaxK[c.Type] {
			t.MaxK[c.Type] = c.K
		}
	}
	if !InCtract(p) {
		t.NonCtract++
	}
}

// Merge folds another aggregation into t (shard/corpus aggregation):
// counts add, k ranges widen.
func (t *Table5) Merge(o *Table5) {
	for typ, v := range o.Counts {
		t.Counts[typ] += v
	}
	for typ, mk := range o.MinK {
		if cur, ok := t.MinK[typ]; !ok || mk < cur {
			t.MinK[typ] = mk
		}
	}
	for typ, mk := range o.MaxK {
		if mk > t.MaxK[typ] {
			t.MaxK[typ] = mk
		}
	}
	t.TrivialNeg += o.TrivialNeg
	t.TrivialInv += o.TrivialInv
	t.NonCtract += o.NonCtract
	t.Total += o.Total
}
