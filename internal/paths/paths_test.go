package paths

import (
	"testing"

	"sparqlog/internal/sparql"
)

// pathOf extracts the single property path from an ASK query.
func pathOf(t *testing.T, expr string) sparql.PathExpr {
	t.Helper()
	q, err := sparql.Parse("ASK { ?x " + expr + " ?y }")
	if err != nil {
		t.Fatalf("parse path %q: %v", expr, err)
	}
	pps := q.PathPatterns()
	if len(pps) != 1 {
		t.Fatalf("path %q: got %d path patterns", expr, len(pps))
	}
	return pps[0].Path
}

func TestClassifyTable5Types(t *testing.T) {
	tests := []struct {
		expr string
		want ExprType
		k    int
	}{
		{"(<a>|<b>)*", AltStar, 2},
		{"(<a>|<b>|<c>|<d>)*", AltStar, 4},
		{"<a>*", Star, 0},
		{"<a>/<b>", Seq, 2},
		{"<a>/<b>/<c>/<d>/<e>/<f>", Seq, 6},
		{"<a>*/<b>", StarSeqLit, 0},
		{"<b>/<a>*", StarSeqLit, 0}, // symmetric form
		{"<a>|<b>", Alt, 2},
		{"<a>|<b>|<c>", Alt, 3},
		{"<a>+", Plus, 0},
		{"<a>?", OptSeq, 1},
		{"<a>?/<b>?/<c>?", OptSeq, 3},
		{"<a>/(<b>|<c>)", LitAltSeq, 2}, // the paper's a(b1|···|bk)
		{"(<b>|<c>)/<a>", LitAltSeq, 2}, // symmetric form
		{"<a>/<b>?/<c>?", LitOptSeq, 3},
		{"(<a>/<b>*)|<c>", SeqStarAltLit, 0},
		{"<a>*/<b>?", StarOptSeq, 0},
		{"<a>/<b>/<c>*", LitLitStarSeq, 0},
		{"!(<a>|<b>)", NegAlt, 2},
		{"(<a>|<b>)+", AltPlus, 2},
		{"(<a>|<b>)/(<a>|<b>)", AltAltSeq, 2},
		{"<a>?|<b>", OptAltLit, 0},
		{"<a>*|<b>", StarAltLit, 0},
		{"(<a>|<b>)?", AltOpt, 2},
		{"<a>|<b>+", LitAltPlus, 0},
		{"<a>+|<b>+", PlusAltPlus, 0},
		{"(<a>/<b>)*", SeqStar, 2},
	}
	for _, tc := range tests {
		c := Classify(pathOf(t, tc.expr))
		if c.Type != tc.want {
			t.Errorf("Classify(%s) = %s, want %s", tc.expr, c.Type, tc.want)
		}
		if tc.k > 0 && c.K != tc.k {
			t.Errorf("Classify(%s) k = %d, want %d", tc.expr, c.K, tc.k)
		}
	}
}

func TestInverseAndNegAtomsAreLiterals(t *testing.T) {
	// ^a and !a embedded in larger expressions count as literals:
	// (^a)/b is a1/.../ak with k=2, per the paper's classification.
	tests := []struct {
		expr string
		want ExprType
	}{
		{"(^<a>)/<b>", Seq},
		{"(!<a>)/<b>", Seq},
		{"^<a>|<b>", Alt},
		{"(^<a>)*", Star},
		{"(^<a>|^<b>)*", AltStar},
	}
	for _, tc := range tests {
		c := Classify(pathOf(t, tc.expr))
		if c.Type != tc.want {
			t.Errorf("Classify(%s) = %s, want %s", tc.expr, c.Type, tc.want)
		}
	}
}

func TestTrivialForms(t *testing.T) {
	if !IsTrivial(pathOf(t, "!<a>")) {
		t.Error("!a is trivial")
	}
	if !IsTrivial(pathOf(t, "^<a>")) {
		t.Error("^a is trivial")
	}
	if IsTrivial(pathOf(t, "<a>*")) {
		t.Error("a* is navigational")
	}
	if IsTrivial(pathOf(t, "!(<a>|<b>)")) {
		t.Error("!(a|b) is navigational")
	}
}

func TestCtract(t *testing.T) {
	inC := []string{"<a>*", "(<a>|<b>)*", "<a>+", "(<a>|<b>)+", "<a>/<b>",
		"<a>*/<b>", "<a>?/<b>?", "!(<a>|<b>)", "<a>*|<b>"}
	for _, e := range inC {
		if !InCtract(pathOf(t, e)) {
			t.Errorf("%s should be in Ctract", e)
		}
	}
	notC := []string{"(<a>/<b>)*", "(<a>/<b>)+", "<c>/(<a>/<b>)*"}
	for _, e := range notC {
		if InCtract(pathOf(t, e)) {
			t.Errorf("%s should not be in Ctract", e)
		}
	}
}

func TestTable5Aggregation(t *testing.T) {
	tab := NewTable5()
	for _, e := range []string{"!<a>", "!<a>", "^<a>", "<a>*", "(<a>|<b>)*",
		"(<a>|<b>|<c>)*", "<a>/<b>", "<a>/<b>/<c>", "(<a>/<b>)*"} {
		tab.Add(pathOf(t, e))
	}
	if tab.TrivialNeg != 2 || tab.TrivialInv != 1 {
		t.Errorf("trivial = %d/%d, want 2/1", tab.TrivialNeg, tab.TrivialInv)
	}
	if tab.Total != 6 {
		t.Errorf("total = %d, want 6", tab.Total)
	}
	if tab.Counts[AltStar] != 2 || tab.MinK[AltStar] != 2 || tab.MaxK[AltStar] != 3 {
		t.Errorf("AltStar = %d k[%d,%d]", tab.Counts[AltStar], tab.MinK[AltStar], tab.MaxK[AltStar])
	}
	if tab.Counts[Seq] != 2 || tab.MaxK[Seq] != 3 {
		t.Errorf("Seq = %d maxk %d", tab.Counts[Seq], tab.MaxK[Seq])
	}
	if tab.NonCtract != 1 {
		t.Errorf("nonCtract = %d, want 1 ((a/b)*)", tab.NonCtract)
	}
}

func TestUnclassified(t *testing.T) {
	// Deeply nested combination outside Table 5.
	c := Classify(pathOf(t, "((<a>/<b>)|<c>)/<d>*"))
	if c.Type != Unclassified {
		t.Errorf("got %s, want unclassified", c.Type)
	}
}

func TestTable5Merge(t *testing.T) {
	a, b := NewTable5(), NewTable5()
	a.Add(pathOf(t, "<a>/<b>"))         // Seq k=2
	a.Add(pathOf(t, "!<a>"))            // trivial negation
	b.Add(pathOf(t, "<a>/<b>/<c>/<d>")) // Seq k=4
	b.Add(pathOf(t, "(<a>/<b>)*"))      // SeqStar, non-Ctract
	a.Merge(b)
	if a.Total != 3 {
		t.Errorf("merged total = %d, want 3", a.Total)
	}
	if a.Counts[Seq] != 2 || a.MinK[Seq] != 2 || a.MaxK[Seq] != 4 {
		t.Errorf("Seq count=%d mink=%d maxk=%d, want 2/2/4", a.Counts[Seq], a.MinK[Seq], a.MaxK[Seq])
	}
	if a.TrivialNeg != 1 || a.NonCtract != 1 {
		t.Errorf("TrivialNeg=%d NonCtract=%d, want 1/1", a.TrivialNeg, a.NonCtract)
	}
	// Merging an empty table is the identity.
	total := a.Total
	a.Merge(NewTable5())
	if a.Total != total {
		t.Error("empty merge changed total")
	}
}

// TestCorpusClassifies pins every corpus example to its declared Table-5
// type: the corpus is what the compiled engine's differential suite and
// fuzz seeds run on, so a misclassified example would silently shrink
// that coverage.
func TestCorpusClassifies(t *testing.T) {
	seen := map[ExprType]bool{}
	for _, ex := range Corpus() {
		c := Classify(pathOf(t, ex.Expr))
		if c.Type != ex.Type {
			t.Errorf("Classify(%s) = %s, want %s", ex.Expr, c.Type, ex.Type)
		}
		seen[ex.Type] = true
	}
	for typ := AltStar; typ < Unclassified; typ++ {
		if !seen[typ] {
			t.Errorf("corpus has no example of type %s", typ)
		}
	}
}
