package core

import (
	"reflect"
	"slices"
	"strings"
	"testing"

	"sparqlog/internal/loggen"
)

// fixtureLogs are the generated logs the stream-vs-batch consistency
// suite runs over: three profiles with different noise/duplication mixes.
func fixtureLogs() []loggen.Dataset {
	return []loggen.Dataset{
		loggen.Generate(loggen.Profiles()[0], 1500, 44),
		loggen.Generate(loggen.Profiles()[2], 900, 7),
		loggen.Generate(loggen.Profiles()[5], 600, 99),
	}
}

// TestStreamMatchesBatch is the three-way differential test: on every
// fixture log and option set, StreamAnalyzer must produce a DatasetReport
// deeply equal to both AnalyzeLog and AnalyzeLogParallel.
func TestStreamMatchesBatch(t *testing.T) {
	optionSets := map[string]Options{
		"default":         {},
		"keep-duplicates": {KeepDuplicates: true},
		"skip-shapes":     {SkipShapes: true},
		"structural":      {StructuralDedup: true},
	}
	for _, ds := range fixtureLogs() {
		for label, opts := range optionSets {
			seq := AnalyzeLog(ds.Name, ds.Entries, opts)
			par := AnalyzeLogParallel(ds.Name, ds.Entries, opts, 4)
			sa := &StreamAnalyzer{Opts: opts, Workers: 4, ChunkSize: 64, Shards: 8}
			str := sa.AnalyzeSeq(ds.Name, slices.Values(ds.Entries))
			if !reflect.DeepEqual(seq, str) {
				t.Errorf("%s/%s: stream report differs from sequential", ds.Name, label)
				diffReports(t, seq, str)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("%s/%s: parallel report differs from sequential", ds.Name, label)
				diffReports(t, seq, par)
			}
		}
	}
}

// diffReports narrows a DeepEqual failure to the offending fields.
func diffReports(t *testing.T, want, got *DatasetReport) {
	t.Helper()
	w, g := reflect.ValueOf(*want), reflect.ValueOf(*got)
	for i := 0; i < w.NumField(); i++ {
		if !reflect.DeepEqual(w.Field(i).Interface(), g.Field(i).Interface()) {
			t.Logf("  field %s: want %+v, got %+v",
				w.Type().Field(i).Name, w.Field(i).Interface(), g.Field(i).Interface())
		}
	}
}

// TestStreamReader verifies the io.Reader entry point: streaming a log
// rendered as a file must equal analyzing its in-memory entries.
func TestStreamReader(t *testing.T) {
	ds := loggen.Generate(loggen.Profiles()[1], 500, 3)
	sa := &StreamAnalyzer{Workers: 3, ChunkSize: 32}
	fromSlice := sa.AnalyzeSeq(ds.Name, slices.Values(ds.Entries))
	fromReader, err := sa.AnalyzeReader(ds.Name, strings.NewReader(strings.Join(ds.Entries, "\n")+"\n"), FormatPlain)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromSlice, fromReader) {
		t.Error("reader-fed stream differs from slice-fed stream")
		diffReports(t, fromSlice, fromReader)
	}
}

// TestStreamEdgeCases covers degenerate pool configurations and inputs.
func TestStreamEdgeCases(t *testing.T) {
	ds := loggen.Generate(loggen.Profiles()[0], 300, 12)
	want := AnalyzeLog(ds.Name, ds.Entries, Options{})
	for _, cfg := range []StreamAnalyzer{
		{Workers: 1, ChunkSize: 1, Shards: 1},
		{Workers: 8, ChunkSize: 7, Shards: 3},
		{Workers: 2, ChunkSize: 1 << 20, Shards: 1024},
	} {
		got := cfg.AnalyzeSeq(ds.Name, slices.Values(ds.Entries))
		if !reflect.DeepEqual(want, got) {
			t.Errorf("config %+v: report differs", cfg)
			diffReports(t, want, got)
		}
	}

	empty := (&StreamAnalyzer{}).AnalyzeSeq("empty", slices.Values([]string(nil)))
	if empty.Total != 0 || empty.Unique != 0 || empty.NoiseRemoved != 0 {
		t.Errorf("empty stream: got %d/%d/%d, want zeros", empty.Total, empty.Unique, empty.NoiseRemoved)
	}

	noise := (&StreamAnalyzer{Workers: 2}).AnalyzeSeq("noise",
		slices.Values([]string{"GET /robots.txt", "200 OK", "not a query"}))
	if noise.NoiseRemoved != 3 || noise.Total != 0 {
		t.Errorf("noise-only stream: NoiseRemoved=%d Total=%d", noise.NoiseRemoved, noise.Total)
	}
}

// TestStreamStructuralRepresentative pins the structural-dedup
// representative choice: prefixed and expanded forms of the same query
// are fingerprint-equal but can analyze differently (shape analysis sees
// the original terms), so the stream must analyze the class's first
// occurrence in log order, exactly like AnalyzeLog — regardless of which
// worker reaches it first.
func TestStreamStructuralRepresentative(t *testing.T) {
	prefixed := "PREFIX ex: <http://e/> SELECT ?x WHERE { <http://e/p> <http://e/q> ?x . ex:p <http://e/q2> ?x }"
	expanded := "SELECT ?x WHERE { <http://e/p> <http://e/q> ?x . <http://e/p> <http://e/q2> ?x }"
	opts := Options{StructuralDedup: true}
	for _, entries := range [][]string{
		{prefixed, expanded},
		{expanded, prefixed},
	} {
		want := AnalyzeLog("fp", entries, opts)
		if want.Unique != 1 {
			t.Fatalf("fixture not fingerprint-equal: unique = %d", want.Unique)
		}
		sa := &StreamAnalyzer{Opts: opts, Workers: 4, ChunkSize: 1, Shards: 4}
		for trial := 0; trial < 20; trial++ {
			got := sa.AnalyzeSeq("fp", slices.Values(entries))
			if !reflect.DeepEqual(want, got) {
				t.Errorf("trial %d, order %q: stream analyzed the wrong representative", trial, entries[0])
				diffReports(t, want, got)
				break
			}
		}
	}
}

// TestMergeEmpty: merging an empty report is the identity; merging into
// an empty report copies.
func TestMergeEmpty(t *testing.T) {
	ds := loggen.Generate(loggen.Profiles()[0], 400, 21)
	rep := AnalyzeLog(ds.Name, ds.Entries, Options{})
	want := AnalyzeLog(ds.Name, ds.Entries, Options{})

	rep.Merge(NewCorpusReport(ds.Name))
	if !reflect.DeepEqual(want, rep) {
		t.Error("merging an empty report changed the target")
		diffReports(t, want, rep)
	}

	into := NewCorpusReport(ds.Name)
	into.Merge(rep)
	if !reflect.DeepEqual(want, into) {
		t.Error("merging into an empty report is not a copy")
		diffReports(t, want, into)
	}
}

// TestMergeDisjointShards: analyzing disjoint halves of a log separately
// and merging must equal one pass, as long as no duplicate pair is split
// across the halves (KeepDuplicates removes that coupling entirely).
func TestMergeDisjointShards(t *testing.T) {
	ds := loggen.Generate(loggen.Profiles()[2], 800, 5)
	mid := len(ds.Entries) / 2
	opts := Options{KeepDuplicates: true}
	want := AnalyzeLog(ds.Name, ds.Entries, opts)

	merged := NewCorpusReport(ds.Name)
	merged.Merge(AnalyzeLog(ds.Name, ds.Entries[:mid], opts))
	merged.Merge(AnalyzeLog(ds.Name, ds.Entries[mid:], opts))
	if !reflect.DeepEqual(want, merged) {
		t.Error("merge of disjoint halves differs from one pass")
		diffReports(t, want, merged)
	}
}

// TestMergeOverlappingShards: merging two reports over overlapping entry
// sets adds every additive aggregate (Merge is corpus aggregation, not
// set union) and takes maxima where the report tracks maxima.
func TestMergeOverlappingShards(t *testing.T) {
	ds := loggen.Generate(loggen.Profiles()[0], 500, 31)
	a := AnalyzeLog("a", ds.Entries[:400], Options{})
	b := AnalyzeLog("b", ds.Entries[200:], Options{})

	merged := NewCorpusReport("ab")
	merged.Merge(a)
	merged.Merge(b)

	if merged.Total != a.Total+b.Total || merged.Unique != a.Unique+b.Unique {
		t.Errorf("overlap merge: Total=%d Unique=%d, want %d and %d",
			merged.Total, merged.Unique, a.Total+b.Total, a.Unique+b.Unique)
	}
	if merged.OperatorSet.Total != a.OperatorSet.Total+b.OperatorSet.Total {
		t.Error("operator distribution totals must add")
	}
	for k := range a.Keywords {
		if merged.Keywords[k] != a.Keywords[k]+b.Keywords[k] {
			t.Errorf("keyword %q: %d, want %d", k, merged.Keywords[k], a.Keywords[k]+b.Keywords[k])
		}
	}
	if merged.Paths.Total != a.Paths.Total+b.Paths.Total {
		t.Error("path table totals must add")
	}
	wantMax := a.MaxDecompNodes
	if b.MaxDecompNodes > wantMax {
		wantMax = b.MaxDecompNodes
	}
	if merged.MaxDecompNodes != wantMax {
		t.Errorf("MaxDecompNodes=%d, want max %d", merged.MaxDecompNodes, wantMax)
	}
}
