package core

import (
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"

	"sparqlog/internal/sparql"
)

// LiveAnalyzer is the incremental form of StreamAnalyzer: instead of
// draining one finite stream, entries arrive one at a time over the
// lifetime of a process — a serving endpoint feeding each request's
// query text through the paper's analysis pipeline as it happens — and
// Report can be asked for the statistics-so-far at any moment. Add and
// Report are safe for arbitrary concurrency.
//
// The machinery is StreamAnalyzer's, re-striped for push instead of
// pull: N worker slots each own a private partial DatasetReport (the
// same streamWorker that powers the batch pipeline), entries are
// spread across slots round-robin by a global counter (which doubles
// as the entry's position in the virtual log, keeping structural
// dedup's earliest-representative rule deterministic per arrival
// order), and the dedup shards are shared across slots under their own
// locks. Report quiesces the slots, merges the partials into a fresh
// DatasetReport, and — in StructuralDedup mode — analyzes the current
// class representatives into the copy without disturbing the live
// state, so a report is O(state) but never blocks Add for longer than
// a merge.
type LiveAnalyzer struct {
	opts   Options
	name   string
	seed   maphash.Seed
	shards []dedupShard
	slots  []liveSlot
	ctr    atomic.Uint64
}

// liveSlot is one push-side worker: a lock plus the streamWorker whose
// partial report it guards. Padding between slots is not worth the
// complexity at typical slot counts.
type liveSlot struct {
	mu sync.Mutex
	w  *streamWorker
}

// NewLiveAnalyzer returns an empty live analyzer. workers is the
// number of concurrent Add slots (<= 0 means GOMAXPROCS); opts
// configures the pipeline exactly as for AnalyzeLog.
func NewLiveAnalyzer(name string, opts Options, workers int) *LiveAnalyzer {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	la := &LiveAnalyzer{
		opts:   opts,
		name:   name,
		seed:   maphash.MakeSeed(),
		shards: make([]dedupShard, DefaultShards),
		slots:  make([]liveSlot, workers),
	}
	for i := range la.shards {
		switch {
		case opts.KeepDuplicates:
		case opts.StructuralDedup:
			la.shards[i].reps = make(map[string]streamRep)
		default:
			la.shards[i].seen = make(map[string]seenEntry)
		}
	}
	for i := range la.slots {
		la.slots[i].w = &streamWorker{
			opts:   opts,
			rep:    NewCorpusReport(name),
			shards: la.shards,
			seed:   la.seed,
			parser: &sparql.Parser{},
		}
	}
	return la
}

// Add feeds one raw log entry (the decoded query text of one request)
// through cleaning, dedup, parsing, and analysis. Concurrent Adds
// spread across the slots; two Adds contend only when they land on the
// same slot or dedup shard.
func (la *LiveAnalyzer) Add(raw string) {
	idx := la.ctr.Add(1) - 1
	slot := &la.slots[idx%uint64(len(la.slots))]
	slot.mu.Lock()
	slot.w.process(raw, idx)
	slot.mu.Unlock()
}

// Entries returns the number of entries added so far.
func (la *LiveAnalyzer) Entries() uint64 { return la.ctr.Load() }

// Report merges the current partial state into a fresh DatasetReport —
// the same statistics AnalyzeLog would produce over the entries added
// so far (for StructuralDedup, over the representatives as currently
// elected). The live state is untouched; Add keeps accumulating.
func (la *LiveAnalyzer) Report() *DatasetReport {
	// Quiesce: entry processing only runs under a slot lock, so holding
	// every slot lock stops mutation of partials and shards alike (the
	// slot locks also order us after each worker's shard writes).
	for i := range la.slots {
		la.slots[i].mu.Lock()
	}
	defer func() {
		for i := range la.slots {
			la.slots[i].mu.Unlock()
		}
	}()
	rep := NewCorpusReport(la.name)
	for i := range la.slots {
		rep.Merge(la.slots[i].w.rep)
	}
	if la.opts.StructuralDedup && !la.opts.KeepDuplicates {
		// Deferred representative analysis, non-destructively per
		// report: the shards keep their state for the next snapshot.
		for i := range la.shards {
			for _, r := range la.shards[i].reps {
				rep.Unique++
				rep.noteShapeUnique(r.label)
				rep.analyzeQuery(r.q, la.opts)
			}
		}
	}
	return rep
}
