package core

import (
	"hash/maphash"
	"io"
	"iter"
	"runtime"
	"sync"

	"sparqlog/internal/sparql"
)

// Streaming defaults.
const (
	// DefaultChunkSize is the number of raw entries handed to a worker at
	// a time. Peak raw-entry memory is bounded by roughly
	// (workers + channel buffer + 1) chunks.
	DefaultChunkSize = 4096
	// DefaultShards is the number of dedup shards. More shards means less
	// lock contention between workers landing on distinct entries.
	DefaultShards = 64
)

// StreamAnalyzer runs the AnalyzeLog pipeline over logs too large to
// materialize. Entries are consumed in bounded chunks from an iterator or
// io.Reader, fanned out to a worker pool, and deduplicated through N
// sharded occurrence maps (hash of the dedup key picks the shard), so no
// single map serializes the workers the way AnalyzeLogParallel's
// sequential occurrence pass does. Each worker accumulates a private
// partial DatasetReport; partials are combined by DatasetReport.Merge.
// The result is identical to AnalyzeLog over the same entries.
//
// Memory: at any moment only the in-flight chunks of raw entries are
// live (one per worker plus the small dispatch buffer); the dedup shards
// retain one copy of each distinct valid entry's key — the floor any
// exact deduplication needs (unparseable entries keep no state and are
// re-parsed on repetition). In StructuralDedup mode the shards instead
// retain one parsed representative per fingerprint class until the
// stream drains.
type StreamAnalyzer struct {
	// Opts configures the pipeline exactly as for AnalyzeLog.
	Opts Options
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// ChunkSize is the number of entries per dispatched chunk; <= 0 means
	// DefaultChunkSize.
	ChunkSize int
	// Shards is the dedup shard count; <= 0 means DefaultShards.
	Shards int
}

// dedup status of one distinct entry text.
type entryStatus uint8

const (
	// statusPending: a worker has claimed the entry and is parsing it.
	statusPending entryStatus = iota
	// statusValid: the entry parsed; its first occurrence was analyzed.
	// (Unparseable entries keep no state: their key is deleted again, so
	// duplicates of them simply re-parse and re-fail.)
	statusValid
)

// streamRep is the current representative of one fingerprint class:
// the parsed query of the earliest occurrence seen so far, plus its
// repeat-shape label (identical across the class, cached so report
// time never re-walks the AST).
type streamRep struct {
	idx   uint64
	q     *sparql.Query
	label string
}

// seenEntry is the recorded state of one distinct entry text in exact
// dedup: its parse status plus the repeat-shape label of the parsed
// query, so duplicate occurrences can be counted into the repeat-rate
// table without re-parsing.
type seenEntry struct {
	status entryStatus
	label  string
}

// dedupShard is one lock-striped slice of the global seen-set.
type dedupShard struct {
	mu sync.Mutex
	// seen is keyed by raw entry text (exact dedup).
	seen map[string]seenEntry
	// reps is keyed by fingerprint (structural dedup).
	reps map[string]streamRep
}

// chunk is one bounded batch of raw entries; base is the global index of
// entries[0] in the stream, used to keep dedup deterministic.
type chunk struct {
	base    uint64
	entries []string
}

// AnalyzeReader streams the log from r in the given format and analyzes
// it. The error is the reader's, if any; analysis itself cannot fail.
func (sa *StreamAnalyzer) AnalyzeReader(name string, r io.Reader, format LogFormat) (*DatasetReport, error) {
	sc := NewEntryScanner(r, format)
	rep := sa.AnalyzeSeq(name, func(yield func(string) bool) {
		for sc.Scan() {
			if !yield(sc.Entry()) {
				return
			}
		}
	})
	return rep, sc.Err()
}

// AnalyzeSeq analyzes the entries produced by seq. The sequence is
// consumed exactly once and is never materialized.
func (sa *StreamAnalyzer) AnalyzeSeq(name string, seq iter.Seq[string]) *DatasetReport {
	workers := sa.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunkSize := sa.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	nShards := sa.Shards
	if nShards <= 0 {
		nShards = DefaultShards
	}
	shards := make([]dedupShard, nShards)
	for i := range shards {
		switch {
		case sa.Opts.KeepDuplicates:
			// Every occurrence is analyzed; no dedup state at all.
		case sa.Opts.StructuralDedup:
			shards[i].reps = make(map[string]streamRep)
		default:
			shards[i].seen = make(map[string]seenEntry)
		}
	}
	seed := maphash.MakeSeed()

	// Dispatch bounded chunks to the pool. The small buffer keeps workers
	// fed without ever holding more than workers+buffer+1 chunks of raw
	// entries alive.
	chunks := make(chan chunk, 2)
	partials := make([]*DatasetReport, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		part := NewCorpusReport(name)
		partials[w] = part
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := &streamWorker{
				opts:   sa.Opts,
				rep:    part,
				shards: shards,
				seed:   seed,
				parser: &sparql.Parser{},
			}
			for c := range chunks {
				for i, raw := range c.entries {
					st.process(raw, c.base+uint64(i))
				}
			}
		}()
	}
	var next uint64
	buf := make([]string, 0, chunkSize)
	for entry := range seq {
		buf = append(buf, entry)
		if len(buf) == chunkSize {
			chunks <- chunk{base: next, entries: buf}
			next += uint64(len(buf))
			buf = make([]string, 0, chunkSize)
		}
	}
	if len(buf) > 0 {
		chunks <- chunk{base: next, entries: buf}
	}
	close(chunks)
	wg.Wait()

	rep := NewCorpusReport(name)
	for _, part := range partials {
		rep.Merge(part)
	}
	if sa.Opts.StructuralDedup && !sa.Opts.KeepDuplicates {
		sa.analyzeRepresentatives(rep, shards, workers)
	}
	return rep
}

// analyzeRepresentatives runs the deferred per-class analysis of
// structural dedup: each fingerprint class's earliest occurrence (the
// same representative AnalyzeLog's first-occurrence dedup analyzes) is
// analyzed exactly once, fanning shards out across the pool.
func (sa *StreamAnalyzer) analyzeRepresentatives(rep *DatasetReport, shards []dedupShard, workers int) {
	idx := make(chan int)
	parts := make([]*DatasetReport, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		part := NewCorpusReport(rep.Name)
		parts[w] = part
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				for _, r := range shards[i].reps {
					part.Unique++
					part.noteShapeUnique(r.label)
					part.analyzeQuery(r.q, sa.Opts)
				}
			}
		}()
	}
	for i := range shards {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, part := range parts {
		rep.Merge(part)
	}
}

// streamWorker is the per-goroutine state of one pool worker.
type streamWorker struct {
	opts   Options
	rep    *DatasetReport
	shards []dedupShard
	seed   maphash.Seed
	parser *sparql.Parser
}

// process runs one raw entry through cleaning, dedup, parsing, and
// analysis, mirroring the per-entry body of AnalyzeLog. idx is the
// entry's global position in the stream.
func (w *streamWorker) process(raw string, idx uint64) {
	if !looksLikeQuery(raw) {
		w.rep.NoiseRemoved++
		return
	}
	w.rep.Total++
	switch {
	case w.opts.KeepDuplicates:
		// The appendix corpus analyzes every duplicate: no dedup state.
		q, err := w.parser.Parse(raw)
		if err != nil {
			return
		}
		w.rep.Valid++
		w.rep.Unique++
		w.rep.noteShape(RepeatShape(q), true)
		w.rep.analyzeQuery(q, w.opts)
	case w.opts.StructuralDedup:
		// Structural dedup keys on the fingerprint, which needs the parse
		// anyway; every occurrence is parsed and counted Valid. Analysis
		// is deferred: each shard tracks the earliest occurrence of each
		// class, because fingerprint-equal queries need not analyze
		// identically (fingerprinting expands prefixes; the shape
		// analyses see the original terms), and AnalyzeLog analyzes the
		// class's first occurrence in log order.
		q, err := w.parser.Parse(raw)
		if err != nil {
			return
		}
		w.rep.Valid++
		label := RepeatShape(q)
		w.rep.noteShape(label, false)
		fp := sparql.Fingerprint(q)
		shard := w.shard(fp)
		shard.mu.Lock()
		if cur, ok := shard.reps[fp]; !ok || idx < cur.idx {
			shard.reps[fp] = streamRep{idx: idx, q: q, label: label}
		}
		shard.mu.Unlock()
	default:
		// Exact-text dedup: the first worker to claim an entry parses and
		// analyzes it; later occurrences reuse the recorded validity, so
		// each distinct entry is parsed once (twice in the rare race where
		// a duplicate arrives mid-parse — identical text parses
		// identically, so the result is unchanged).
		shard := w.shard(raw)
		shard.mu.Lock()
		st, dup := shard.seen[raw]
		if !dup {
			shard.seen[raw] = seenEntry{status: statusPending}
		}
		shard.mu.Unlock()
		if !dup {
			q, err := w.parser.Parse(raw)
			var label string
			if err == nil {
				label = RepeatShape(q)
			}
			shard.mu.Lock()
			if err != nil {
				// Keep no state for unparseable entries, mirroring
				// AnalyzeLog: duplicates of them re-parse (and re-fail)
				// instead of inflating the shards with invalid noise.
				delete(shard.seen, raw)
			} else {
				shard.seen[raw] = seenEntry{status: statusValid, label: label}
			}
			shard.mu.Unlock()
			if err != nil {
				return
			}
			w.rep.Valid++
			w.rep.Unique++
			w.rep.noteShape(label, true)
			w.rep.analyzeQuery(q, w.opts)
			return
		}
		switch st.status {
		case statusValid:
			w.rep.Valid++
			w.rep.noteShape(st.label, false)
		case statusPending:
			// The claimer is still parsing; parse our identical copy to
			// learn validity (and the repeat label) without waiting on it.
			if q, err := w.parser.Parse(raw); err == nil {
				w.rep.Valid++
				w.rep.noteShape(RepeatShape(q), false)
			}
		}
	}
}

func (w *streamWorker) shard(key string) *dedupShard {
	return &w.shards[maphash.String(w.seed, key)%uint64(len(w.shards))]
}
