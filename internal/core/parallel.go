package core

import (
	"runtime"
	"sync"

	"sparqlog/internal/sparql"
)

// AnalyzeLogParallel is AnalyzeLog with a worker pool: the paper's real
// corpus is 180M queries, where parsing dominates wall time. The
// sequential pass only cleans and counts occurrences of each distinct
// entry (no parsing); workers then parse every distinct entry exactly
// once and run the per-query analysis, scaling the Valid count by the
// occurrence multiplicity. Results are identical to AnalyzeLog.
func AnalyzeLogParallel(name string, entries []string, opts Options, workers int) *DatasetReport {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return AnalyzeLog(name, entries, opts)
	}
	rep := NewCorpusReport(name)
	// Sequential pass: cleaning and occurrence counting, no parsing.
	occurrences := make(map[string]int)
	var distinct []string
	for _, raw := range entries {
		if !looksLikeQuery(raw) {
			rep.NoiseRemoved++
			continue
		}
		rep.Total++
		if occurrences[raw] == 0 {
			distinct = append(distinct, raw)
		}
		occurrences[raw]++
	}
	// Fan out: parse each distinct entry once.
	type partial struct {
		rep    *DatasetReport
		valid  int
		unique int
		// fingerprints seen by this worker (structural dedup needs a
		// global merge afterwards, handled below).
		fps map[string][]*sparql.Query
	}
	parts := make([]*partial, workers)
	var wg sync.WaitGroup
	chunk := (len(distinct) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(distinct) {
			break
		}
		hi := lo + chunk
		if hi > len(distinct) {
			hi = len(distinct)
		}
		part := &partial{rep: NewCorpusReport(name)}
		if opts.StructuralDedup {
			part.fps = make(map[string][]*sparql.Query)
		}
		parts[w] = part
		wg.Add(1)
		go func(batch []string, out *partial) {
			defer wg.Done()
			p := &sparql.Parser{}
			for _, raw := range batch {
				q, err := p.Parse(raw)
				if err != nil {
					continue
				}
				mult := occurrences[raw]
				out.valid += mult
				label := RepeatShape(q)
				s := out.rep.Repeats[label]
				s.Total += mult
				switch {
				case opts.KeepDuplicates:
					// The appendix corpus analyzes every duplicate.
					s.Unique += mult
					out.unique += mult
					for i := 0; i < mult; i++ {
						out.rep.analyzeQuery(q, opts)
					}
				case opts.StructuralDedup:
					// Defer: structural dedup must be global (the unique
					// count lands in the merge below; only occurrence
					// totals accumulate here).
					fp := sparql.Fingerprint(q)
					out.fps[fp] = append(out.fps[fp], q)
				default:
					s.Unique++
					out.unique++
					out.rep.analyzeQuery(q, opts)
				}
				out.rep.Repeats[label] = s
			}
		}(distinct[lo:hi], part)
	}
	wg.Wait()
	if opts.StructuralDedup {
		// Merge fingerprints across workers, analyzing one representative
		// per class.
		seen := make(map[string]bool)
		for _, part := range parts {
			if part == nil {
				continue
			}
			rep.Valid += part.valid
			for label, s := range part.rep.Repeats {
				cur := rep.Repeats[label]
				cur.Total += s.Total
				rep.Repeats[label] = cur
			}
			for fp, qs := range part.fps {
				if seen[fp] {
					continue
				}
				seen[fp] = true
				rep.Unique++
				rep.noteShapeUnique(RepeatShape(qs[0]))
				rep.analyzeQuery(qs[0], opts)
			}
		}
		return rep
	}
	for _, part := range parts {
		if part == nil {
			continue
		}
		rep.Valid += part.valid
		rep.Unique += part.unique
		rep.mergeAnalysis(part.rep)
	}
	return rep
}

// mergeAnalysis merges only the per-query analysis fields (not the
// Total/Valid/Unique bookkeeping, which the caller owns).
func (rep *DatasetReport) mergeAnalysis(o *DatasetReport) {
	saveTotal, saveValid, saveUnique, saveNoise := rep.Total, rep.Valid, rep.Unique, rep.NoiseRemoved
	rep.Merge(o)
	rep.Total, rep.Valid, rep.Unique, rep.NoiseRemoved = saveTotal, saveValid, saveUnique, saveNoise
}
