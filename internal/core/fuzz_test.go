package core

import (
	"strings"
	"testing"
)

// FuzzCleanEntry throws arbitrary log lines at the cleaning front end of
// the pipeline: entry decoding must never panic, FormatPlain must be the
// identity, and percent-decoding must invert percent-encoding.
func FuzzCleanEntry(f *testing.F) {
	seeds := []string{
		"SELECT * WHERE { ?s ?p ?o }",
		`127.0.0.1 - - [12/Jun/2015:10:00:00 +0000] "GET /sparql?query=SELECT+%3Fs+WHERE+%7B+%3Fs+a+%3Chttp%3A%2F%2Fex%2FC%3E+%7D&format=json HTTP/1.1" 200 1234`,
		"GET /sparql?query=ASK%20%7B%7D HTTP/1.1",
		"GET /resource/Paris HTTP/1.1",
		"query=bad%2",
		"query=bad%zz",
		"query=%41%42&other=1",
		"   ",
		"ASK { ?x <p> ?y }",
		"no keywords here",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		for _, format := range []LogFormat{FormatAuto, FormatPlain, FormatApache} {
			got := DecodeEntry(line, format)
			if format == FormatPlain && got != line {
				t.Fatalf("FormatPlain must be the identity: %q -> %q", line, got)
			}
		}
		looksLikeQuery(line)

		// Decoding inverts encoding for every string.
		enc := percentEncode(line)
		dec, ok := urlDecode(enc)
		if !ok {
			t.Fatalf("urlDecode rejected well-formed encoding %q of %q", enc, line)
		}
		if dec != line {
			t.Fatalf("urlDecode(percentEncode(%q)) = %q", line, dec)
		}
	})
}

// percentEncode is the test's reference encoder: every byte outside
// [A-Za-z0-9] as %XX (the strictest form urlDecode must accept).
func percentEncode(s string) string {
	const hex = "0123456789ABCDEF"
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			sb.WriteByte(c)
			continue
		}
		sb.WriteByte('%')
		sb.WriteByte(hex[c>>4])
		sb.WriteByte(hex[c&0xf])
	}
	return sb.String()
}
