package core

import (
	"strings"
	"testing"
)

func TestURLDecode(t *testing.T) {
	tests := []struct {
		in   string
		want string
		ok   bool
	}{
		{"SELECT+*+WHERE+%7B+%3Fs+%3Fp+%3Fo+%7D", "SELECT * WHERE { ?s ?p ?o }", true},
		{"plain", "plain", true},
		{"a%2Fb", "a/b", true},
		{"bad%2", "", false},
		{"bad%zz", "", false},
		{"%41%42", "AB", true},
	}
	for _, tc := range tests {
		got, ok := urlDecode(tc.in)
		if ok != tc.ok || got != tc.want {
			t.Errorf("urlDecode(%q) = %q, %v; want %q, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestDecodeEntryApache(t *testing.T) {
	line := `127.0.0.1 - - [12/Jun/2015:10:00:00 +0000] "GET /sparql?query=SELECT+%3Fs+WHERE+%7B+%3Fs+a+%3Chttp%3A%2F%2Fex%2FC%3E+%7D&format=json HTTP/1.1" 200 1234`
	got := DecodeEntry(line, FormatApache)
	want := "SELECT ?s WHERE { ?s a <http://ex/C> }"
	if got != want {
		t.Errorf("DecodeEntry = %q, want %q", got, want)
	}
	// Auto mode detects the same.
	if DecodeEntry(line, FormatAuto) != want {
		t.Error("auto detection failed")
	}
	// Plain mode passes through.
	if DecodeEntry(line, FormatPlain) != line {
		t.Error("plain mode must not decode")
	}
}

func TestDecodeEntryNoParam(t *testing.T) {
	line := "GET /resource/Paris HTTP/1.1"
	if DecodeEntry(line, FormatApache) != line {
		t.Error("lines without query= pass through")
	}
}

func TestReadLogEndToEnd(t *testing.T) {
	log := strings.Join([]string{
		`"GET /sparql?query=ASK+%7B+%3Fs+%3Fp+%3Fo+%7D HTTP/1.1" 200`,
		"",
		"SELECT * WHERE { ?s ?p ?o }",
		"GET /robots.txt HTTP/1.1",
	}, "\n")
	entries, err := ReadLog(strings.NewReader(log), FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3 (blank dropped)", len(entries))
	}
	rep := AnalyzeLog("apache", entries, Options{})
	if rep.Valid != 2 {
		t.Errorf("valid = %d, want 2 (the decoded ASK and the plain SELECT)", rep.Valid)
	}
	if rep.NoiseRemoved != 1 {
		t.Errorf("noise = %d, want 1", rep.NoiseRemoved)
	}
	if rep.Keywords["Ask"] != 1 || rep.Keywords["Select"] != 1 {
		t.Errorf("keywords = %v", rep.Keywords)
	}
}

func TestConstantsAnalysis(t *testing.T) {
	entries := []string{
		"SELECT * WHERE { ?s <p> <const> }",         // single edge with constant
		"SELECT * WHERE { ?s <p> ?o }",              // single edge, variables only
		"SELECT * WHERE { ?a <p> ?b . ?b <q> <c> }", // chain ending in constant
	}
	rep := AnalyzeLog("consts", entries, Options{})
	if rep.SingleEdgeWithConstants != 1 {
		t.Errorf("single edge with constants = %d, want 1", rep.SingleEdgeWithConstants)
	}
	// Variables-only rerun: the chain loses its constant leaf and becomes
	// a single edge; the constant-object query loses its only edge and
	// becomes the empty graph (the paper's point: most single-edge CQs
	// vanish without constants).
	if rep.ShapeCQNoConst.SingleEdge != 2 {
		t.Errorf("no-const single edges = %d, want 2", rep.ShapeCQNoConst.SingleEdge)
	}
	if rep.ShapeCQNoConst.Total != 3 {
		t.Errorf("no-const total = %d, want 3", rep.ShapeCQNoConst.Total)
	}
}
