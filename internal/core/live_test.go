package core

import (
	"reflect"
	"sync"
	"testing"

	"sparqlog/internal/loggen"
)

// TestLiveMatchesBatch feeds a fixture log entry-by-entry through a
// LiveAnalyzer (serially, so entry indexes match log order) and checks
// the final Report deeply equals AnalyzeLog over the same entries, for
// every dedup mode. Mid-stream reports must be consistent prefixes.
func TestLiveMatchesBatch(t *testing.T) {
	optionSets := map[string]Options{
		"default":         {},
		"keep-duplicates": {KeepDuplicates: true},
		"skip-shapes":     {SkipShapes: true},
		"structural":      {StructuralDedup: true},
	}
	ds := loggen.Generate(loggen.Profiles()[0], 1200, 44)
	for label, opts := range optionSets {
		want := AnalyzeLog(ds.Name, ds.Entries, opts)
		la := NewLiveAnalyzer(ds.Name, opts, 4)
		half := len(ds.Entries) / 2
		for i, e := range ds.Entries {
			if i == half {
				// A mid-stream snapshot must match the batch analysis of
				// the prefix — and must not disturb the live state.
				mid := la.Report()
				wantMid := AnalyzeLog(ds.Name, ds.Entries[:half], opts)
				if !reflect.DeepEqual(wantMid, mid) {
					t.Errorf("%s: mid-stream report differs from batch prefix", label)
					diffReports(t, wantMid, mid)
				}
			}
			la.Add(e)
		}
		if la.Entries() != uint64(len(ds.Entries)) {
			t.Errorf("%s: entries = %d, want %d", label, la.Entries(), len(ds.Entries))
		}
		got := la.Report()
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: live report differs from batch", label)
			diffReports(t, want, got)
		}
		// A second report over unchanged state is identical (Report is
		// non-destructive).
		again := la.Report()
		if !reflect.DeepEqual(got, again) {
			t.Errorf("%s: repeated Report diverged", label)
		}
	}
}

// TestLiveConcurrentAdds hammers Add from many goroutines (run under
// -race in CI) and checks the order-independent counters against the
// batch pipeline. Exact-text dedup is order-independent in full.
func TestLiveConcurrentAdds(t *testing.T) {
	ds := loggen.Generate(loggen.Profiles()[2], 900, 7)
	want := AnalyzeLog(ds.Name, ds.Entries, Options{})
	la := NewLiveAnalyzer(ds.Name, Options{}, 4)
	var wg sync.WaitGroup
	const feeders = 8
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for i := f; i < len(ds.Entries); i += feeders {
				la.Add(ds.Entries[i])
			}
		}(f)
	}
	done := make(chan struct{})
	go func() {
		// Snapshot concurrently with the feeders: must not race or
		// corrupt state (values themselves are timing-dependent).
		for i := 0; i < 20; i++ {
			_ = la.Report()
		}
		close(done)
	}()
	wg.Wait()
	<-done
	got := la.Report()
	if !reflect.DeepEqual(want, got) {
		t.Error("concurrent live report differs from batch")
		diffReports(t, want, got)
	}
}
