package core

import (
	"reflect"
	"testing"

	"sparqlog/internal/loggen"
)

// TestParallelMatchesSequential is the differential test for the worker
// pool: every aggregate must be byte-identical to the sequential result.
func TestParallelMatchesSequential(t *testing.T) {
	ds := loggen.Generate(loggen.Profiles()[0], 1200, 44)
	seq := AnalyzeLog(ds.Name, ds.Entries, Options{})
	for _, workers := range []int{2, 4, 8} {
		par := AnalyzeLogParallel(ds.Name, ds.Entries, Options{}, workers)
		if seq.Total != par.Total || seq.Valid != par.Valid || seq.Unique != par.Unique {
			t.Fatalf("workers=%d: bookkeeping differs: %d/%d/%d vs %d/%d/%d",
				workers, seq.Total, seq.Valid, seq.Unique, par.Total, par.Valid, par.Unique)
		}
		if !reflect.DeepEqual(seq.Keywords, par.Keywords) {
			t.Errorf("workers=%d: keywords differ", workers)
		}
		if !reflect.DeepEqual(seq.TripleHist, par.TripleHist) {
			t.Errorf("workers=%d: triple histograms differ", workers)
		}
		if !reflect.DeepEqual(seq.OperatorSet.Counts, par.OperatorSet.Counts) {
			t.Errorf("workers=%d: operator sets differ", workers)
		}
		if seq.CQ != par.CQ || seq.CQF != par.CQF || seq.CQOF != par.CQOF || seq.AOF != par.AOF {
			t.Errorf("workers=%d: fragments differ", workers)
		}
		if seq.ShapeCQ != par.ShapeCQ || seq.ShapeCQOF != par.ShapeCQOF {
			t.Errorf("workers=%d: shapes differ", workers)
		}
		if !reflect.DeepEqual(seq.GirthHist, par.GirthHist) {
			t.Errorf("workers=%d: girth histograms differ", workers)
		}
		if seq.ProjYes != par.ProjYes || seq.Subqueries != par.Subqueries {
			t.Errorf("workers=%d: projection/subquery counts differ", workers)
		}
	}
}

func TestParallelSingleWorkerDelegates(t *testing.T) {
	ds := loggen.Generate(loggen.Profiles()[1], 300, 3)
	a := AnalyzeLog(ds.Name, ds.Entries, Options{})
	b := AnalyzeLogParallel(ds.Name, ds.Entries, Options{}, 1)
	if a.Unique != b.Unique || a.SelectAsk != b.SelectAsk {
		t.Error("single worker must match sequential")
	}
}

// TestStructuralDedup verifies fingerprint-based deduplication catches
// alpha-equivalent duplicates that exact-text dedup keeps.
func TestStructuralDedup(t *testing.T) {
	entries := []string{
		"SELECT ?x WHERE { ?x <p> ?y }",
		"SELECT ?a WHERE { ?a <p> ?b }",                           // alpha-equivalent
		"PREFIX q: <p-is-not-this> SELECT ?x WHERE { ?x <p> ?y }", // same after prefix drop
		"SELECT ?x WHERE { ?x <q> ?y }",                           // different
	}
	exact := AnalyzeLog("exact", entries, Options{})
	structural := AnalyzeLog("structural", entries, Options{StructuralDedup: true})
	if exact.Unique != 4 {
		t.Errorf("exact dedup unique = %d, want 4", exact.Unique)
	}
	if structural.Unique != 2 {
		t.Errorf("structural dedup unique = %d, want 2", structural.Unique)
	}
}
