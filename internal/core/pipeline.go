// Package core is the sparqlog analytics pipeline: it cleans raw query
// logs, splits them into valid and invalid queries, deduplicates, and runs
// every per-query analysis of the paper, aggregating one DatasetReport per
// log and corpus-level totals. It is the Go counterpart of the scripts the
// authors describe in Section 9.
package core

import (
	"fmt"
	"strings"

	"sparqlog/internal/analysis"
	"sparqlog/internal/lint"
	"sparqlog/internal/paths"
	"sparqlog/internal/shapes"
	"sparqlog/internal/sparql"
)

// KeywordOrder lists Table 2's rows in the paper's order; DatasetReport
// keyword maps use these keys.
var KeywordOrder = []string{
	"Select", "Ask", "Describe", "Construct",
	"Distinct", "Limit", "Offset", "Order By",
	"Filter", "And", "Union", "Opt", "Graph",
	"Not Exists", "Minus", "Exists",
	"Count", "Max", "Min", "Avg", "Sum",
	"Group By", "Having",
}

// ShapeCounts holds the cumulative shape rows of Table 4 for one fragment.
type ShapeCounts struct {
	SingleEdge, Chain, ChainSet, Star, Tree, Forest int
	Cycle, Flower, FlowerSet                        int
	TW2, TW3, TWOther                               int
	Total                                           int
}

func (s *ShapeCounts) add(r shapes.Report) {
	if r.SingleEdge {
		s.SingleEdge++
	}
	if r.Chain {
		s.Chain++
	}
	if r.ChainSet {
		s.ChainSet++
	}
	if r.Star {
		s.Star++
	}
	if r.Tree {
		s.Tree++
	}
	if r.Forest {
		s.Forest++
	}
	if r.Cycle {
		s.Cycle++
	}
	if r.Flower {
		s.Flower++
	}
	if r.FlowerSet {
		s.FlowerSet++
	}
	switch {
	case r.Treewidth >= 0 && r.Treewidth <= 2:
		s.TW2++
	case r.Treewidth == 3:
		s.TW3++
	default:
		s.TWOther++
	}
	s.Total++
}

func (s *ShapeCounts) merge(o ShapeCounts) {
	s.SingleEdge += o.SingleEdge
	s.Chain += o.Chain
	s.ChainSet += o.ChainSet
	s.Star += o.Star
	s.Tree += o.Tree
	s.Forest += o.Forest
	s.Cycle += o.Cycle
	s.Flower += o.Flower
	s.FlowerSet += o.FlowerSet
	s.TW2 += o.TW2
	s.TW3 += o.TW3
	s.TWOther += o.TWOther
	s.Total += o.Total
}

// SizeHistBuckets is the number of buckets of the Figure 1/Figure 5 size
// histograms: triple counts 0..11 plus a 12th bucket for 12-and-more
// ("11+" in the paper's rendering, which labels the last bucket 11+ and
// buckets 0..10 individually; we keep 0..11 exact and bucket 12+).
const SizeHistBuckets = 13

// DatasetReport aggregates every analysis over one query log.
type DatasetReport struct {
	Name string

	// Table 1 columns.
	Total, Valid, Unique int
	// NoiseRemoved counts log entries dropped by cleaning (not queries).
	NoiseRemoved int

	// Bodyless counts queries without a WHERE clause (Section 2).
	Bodyless int

	// Keywords maps Table 2 rows to counts over analyzed queries.
	Keywords map[string]int

	// Select/Ask-scoped statistics (Sections 4.2-4.4).
	SelectAsk   int
	TripleHist  [SizeHistBuckets]int
	TripleSum   int
	OperatorSet *analysis.Distribution
	ProjYes     int
	ProjInd     int
	Subqueries  int

	// Fragment hierarchy (Section 5.2), over Select/Ask queries.
	AOF, CQ, CPF, CQF, WellDesigned, CQOF int
	WideInterface                         int // interface width > 1 among well-designed
	VarPredAOF                            int // AOF patterns with predicate variables

	// Shape analysis (Table 4), per fragment, over queries without
	// predicate variables.
	ShapeCQ, ShapeCQF, ShapeCQOF ShapeCounts
	// Fragment size histograms (Figure 5), indexed by triple count.
	SizeCQ, SizeCQF, SizeCQOF [SizeHistBuckets]int

	// Variables-only rerun of the CQ shape analysis (Section 6.1):
	// constants dropped from the canonical graph.
	ShapeCQNoConst ShapeCounts
	// SingleEdgeWithConstants counts single-edge CQs whose edge touches
	// a constant (the paper found 78.70% of single-edge CQs do).
	SingleEdgeWithConstants int

	// Girth distribution of cyclic queries (Section 6.1): shortest cycle
	// length -> count.
	GirthHist map[int]int

	// Hypergraph analysis of predicate-variable CQOF queries (Section
	// 6.2).
	GHW1, GHW2, GHW3, GHWOther int
	MaxDecompNodes             int

	// Property paths (Section 7 / Table 5).
	Paths *paths.Table5

	// Static-analysis results (Options.Lint): diagnostic occurrences
	// and queries-with-at-least-one per lint code, plus the number of
	// queries whose WHERE clause is provably empty. Nil maps when the
	// linter is off.
	Lint        map[string]int
	LintQueries map[string]int
	LintEmpty   int

	// Repeats is the workload repeat-rate table: for each coarse query
	// shape (RepeatShape), how many valid occurrences the log held and
	// how many distinct queries those occurrences collapse to under the
	// active dedup mode. The gap between the two is the workload a
	// result cache could absorb, which is what makes cache sizing
	// data-driven from the paper's own unique-vs-valid observation.
	Repeats map[string]RepeatStat
}

// RepeatStat is one row of the repeat-rate table: Total counts valid
// occurrences of a repeat shape, Unique the distinct queries among
// them. Total/Unique is the shape's repeat factor; (Total-Unique)/Total
// bounds the hit ratio a result cache could reach on that shape.
type RepeatStat struct {
	Total, Unique int
}

// RepeatShape returns the coarse structural label used for workload
// repeat-rate accounting: query form, bucketed triple count, and the
// operator keywords that dominate evaluation cost. The label is a
// function of the parsed structure only, so alpha-equivalent queries
// share one label and the table is identical whichever dedup mode
// produced it.
func RepeatShape(q *sparql.Query) string {
	var sb strings.Builder
	switch q.Type {
	case sparql.SelectQuery:
		sb.WriteString("SELECT")
	case sparql.AskQuery:
		sb.WriteString("ASK")
	case sparql.ConstructQuery:
		sb.WriteString("CONSTRUCT")
	case sparql.DescribeQuery:
		sb.WriteString("DESCRIBE")
	default:
		sb.WriteString("OTHER")
	}
	if b := bucket(analysis.TripleCount(q)); b == SizeHistBuckets-1 {
		fmt.Fprintf(&sb, "/%d+t", b)
	} else {
		fmt.Fprintf(&sb, "/%dt", b)
	}
	k := analysis.QueryKeywords(q)
	flag := func(name string, on bool) {
		if on {
			sb.WriteByte('+')
			sb.WriteString(name)
		}
	}
	flag("distinct", k.Distinct)
	flag("filter", k.Filter)
	flag("opt", k.Opt)
	flag("union", k.Union)
	flag("agg", k.Count || k.Max || k.Min || k.Avg || k.Sum || k.GroupBy)
	flag("order", k.OrderBy)
	flag("limit", k.Limit)
	return sb.String()
}

// noteShape records one valid occurrence of a repeat shape; unique
// additionally counts it as its class's representative.
func (rep *DatasetReport) noteShape(label string, unique bool) {
	s := rep.Repeats[label]
	s.Total++
	if unique {
		s.Unique++
	}
	rep.Repeats[label] = s
}

// noteShapeUnique counts a class representative whose occurrences were
// already recorded (the deferred-analysis paths of structural dedup).
func (rep *DatasetReport) noteShapeUnique(label string) {
	s := rep.Repeats[label]
	s.Unique++
	rep.Repeats[label] = s
}

// Options configures the pipeline.
type Options struct {
	// KeepDuplicates analyzes the Valid corpus instead of the Unique one
	// (the appendix variant, Tables 7-9).
	KeepDuplicates bool
	// StructuralDedup deduplicates by sparql.Fingerprint (canonical
	// variable names, expanded prefixes, normalized whitespace) instead
	// of exact text, catching alpha-equivalent duplicates the paper's
	// exact-text dedup misses.
	StructuralDedup bool
	// SkipShapes disables the (comparatively expensive) shape and width
	// analyses; Table 1-3 statistics are still computed.
	SkipShapes bool
	// Lint runs the internal/lint pass suite over every analyzed query
	// and aggregates per-code counts into DatasetReport.Lint. Off by
	// default: the corpus benchmarks gate on the paper pipeline alone.
	Lint bool
}

// looksLikeQuery is the cleaning test of Section 2: entries with no
// query-form keyword at all (HTTP requests, status lines) are removed
// before any counting.
func looksLikeQuery(entry string) bool {
	up := strings.ToUpper(entry)
	for _, kw := range []string{"SELECT", "ASK", "CONSTRUCT", "DESCRIBE"} {
		if strings.Contains(up, kw) {
			return true
		}
	}
	return false
}

// AnalyzeLog runs the full pipeline over one log's raw entries.
func AnalyzeLog(name string, entries []string, opts Options) *DatasetReport {
	rep := NewCorpusReport(name)
	parser := &sparql.Parser{}
	seen := make(map[string]bool)
	for _, raw := range entries {
		if !looksLikeQuery(raw) {
			rep.NoiseRemoved++
			continue
		}
		rep.Total++
		q, err := parser.Parse(raw)
		if err != nil {
			continue
		}
		rep.Valid++
		shape := RepeatShape(q)
		if !opts.KeepDuplicates {
			key := raw
			if opts.StructuralDedup {
				key = sparql.Fingerprint(q)
			}
			if seen[key] {
				rep.noteShape(shape, false)
				continue
			}
			seen[key] = true
		}
		rep.noteShape(shape, true)
		rep.Unique++
		rep.analyzeQuery(q, opts)
	}
	return rep
}

// AnalyzeQueries runs the analysis over already-parsed queries (used by
// tests and the repro harness).
func AnalyzeQueries(name string, qs []*sparql.Query, opts Options) *DatasetReport {
	rep := NewCorpusReport(name)
	for _, q := range qs {
		rep.Total++
		rep.Valid++
		rep.Unique++
		rep.noteShape(RepeatShape(q), true)
		rep.analyzeQuery(q, opts)
	}
	return rep
}

func (rep *DatasetReport) analyzeQuery(q *sparql.Query, opts Options) {
	if !q.HasBody() {
		rep.Bodyless++
	}
	if opts.Lint {
		rep.lintQuery(q)
	}
	k := analysis.QueryKeywords(q)
	rep.addKeywords(k)
	for _, pp := range q.PathPatterns() {
		rep.Paths.Add(pp.Path)
	}
	if q.Type != sparql.SelectQuery && q.Type != sparql.AskQuery {
		return
	}
	rep.SelectAsk++
	tc := analysis.TripleCount(q)
	rep.TripleSum += tc
	rep.TripleHist[bucket(tc)]++
	rep.OperatorSet.Add(analysis.Operators(q))
	switch analysis.Projection(q) {
	case analysis.UsesProjection:
		rep.ProjYes++
	case analysis.Indeterminate:
		rep.ProjInd++
	}
	if analysis.UsesSubqueries(q) {
		rep.Subqueries++
	}
	frag := analysis.ClassifyFragments(q)
	if !frag.AOF {
		return
	}
	rep.AOF++
	if frag.CQ {
		rep.CQ++
	}
	if frag.CPF {
		rep.CPF++
	}
	if frag.CQF {
		rep.CQF++
	}
	if frag.WellDesigned {
		rep.WellDesigned++
		if frag.InterfaceWidth > 1 {
			rep.WideInterface++
		}
	}
	if frag.CQOF {
		rep.CQOF++
	}
	if opts.SkipShapes {
		return
	}
	triples := q.Triples()
	collapses := analysis.EqualityCollapses(q)
	if frag.HasVarPredicate {
		if frag.CQOF {
			rep.VarPredAOF++
			h := shapes.CanonicalHypergraph(triples, shapes.Options{CollapseEqual: collapses})
			if d, ok := h.GHW(3); ok {
				switch d.Width {
				case 0, 1:
					rep.GHW1++
				case 2:
					rep.GHW2++
				case 3:
					rep.GHW3++
				}
				if d.Nodes > rep.MaxDecompNodes {
					rep.MaxDecompNodes = d.Nodes
				}
			} else {
				rep.GHWOther++
			}
		}
		return
	}
	// Canonical-graph shape analysis per fragment (Table 4, Figure 5).
	classify := func(withCollapse bool) shapes.Report {
		o := shapes.Options{}
		if withCollapse {
			o.CollapseEqual = collapses
		}
		g, _ := shapes.CanonicalGraph(triples, o)
		return shapes.Classify(g)
	}
	if frag.CQ {
		r := classify(false)
		rep.ShapeCQ.add(r)
		rep.SizeCQ[bucket(tc)]++
		if g := r.Girth; g > 0 {
			rep.GirthHist[g]++
		}
		// Variables-only rerun (constants dropped).
		gNoConst, _ := shapes.CanonicalGraph(triples, shapes.Options{ExcludeConstants: true})
		rep.ShapeCQNoConst.add(shapes.Classify(gNoConst))
		if r.SingleEdge {
			for _, t := range triples {
				if t.S.IsConstant() || t.O.IsConstant() {
					rep.SingleEdgeWithConstants++
					break
				}
			}
		}
	}
	if frag.CQF {
		rep.ShapeCQF.add(classify(true))
		rep.SizeCQF[bucket(tc)]++
	}
	if frag.CQOF {
		rep.ShapeCQOF.add(classify(true))
		rep.SizeCQOF[bucket(tc)]++
	}
}

// lintQuery runs the static-analysis pass suite on one query and folds
// the findings into the per-code aggregates. Runs for every analyzed
// query, not just the Select/Ask subset the paper statistics scope to.
func (rep *DatasetReport) lintQuery(q *sparql.Query) {
	r := lint.Run(q)
	if len(r.Diagnostics) > 0 {
		if rep.Lint == nil {
			rep.Lint = make(map[string]int)
			rep.LintQueries = make(map[string]int)
		}
		for _, d := range r.Diagnostics {
			rep.Lint[d.Code]++
		}
		for _, code := range r.Codes() {
			rep.LintQueries[code]++
		}
	}
	if r.Empty {
		rep.LintEmpty++
	}
}

func bucket(tc int) int {
	if tc >= SizeHistBuckets-1 {
		return SizeHistBuckets - 1
	}
	return tc
}

func (rep *DatasetReport) addKeywords(k analysis.Keywords) {
	inc := func(name string, b bool) {
		if b {
			rep.Keywords[name]++
		}
	}
	inc("Select", k.Select)
	inc("Ask", k.Ask)
	inc("Describe", k.Describe)
	inc("Construct", k.Construct)
	inc("Distinct", k.Distinct)
	inc("Limit", k.Limit)
	inc("Offset", k.Offset)
	inc("Order By", k.OrderBy)
	inc("Filter", k.Filter)
	inc("And", k.And)
	inc("Union", k.Union)
	inc("Opt", k.Opt)
	inc("Graph", k.Graph)
	inc("Not Exists", k.NotExists)
	inc("Minus", k.Minus)
	inc("Exists", k.Exists)
	inc("Count", k.Count)
	inc("Max", k.Max)
	inc("Min", k.Min)
	inc("Avg", k.Avg)
	inc("Sum", k.Sum)
	inc("Group By", k.GroupBy)
	inc("Having", k.Having)
}

// AvgTriples is the mean triple count over Select/Ask queries (the Avg#T
// row of Figure 1).
func (rep *DatasetReport) AvgTriples() float64 {
	if rep.SelectAsk == 0 {
		return 0
	}
	return float64(rep.TripleSum) / float64(rep.SelectAsk)
}

// SelectAskShare is the S/A row of Figure 1: the fraction of analyzed
// queries that are Select or Ask.
func (rep *DatasetReport) SelectAskShare() float64 {
	if rep.Unique == 0 {
		return 0
	}
	return float64(rep.SelectAsk) / float64(rep.Unique)
}

// Merge folds another report into this one (corpus aggregation).
func (rep *DatasetReport) Merge(o *DatasetReport) {
	rep.Total += o.Total
	rep.Valid += o.Valid
	rep.Unique += o.Unique
	rep.NoiseRemoved += o.NoiseRemoved
	rep.Bodyless += o.Bodyless
	for k, v := range o.Keywords {
		rep.Keywords[k] += v
	}
	rep.SelectAsk += o.SelectAsk
	for i := range o.TripleHist {
		rep.TripleHist[i] += o.TripleHist[i]
		rep.SizeCQ[i] += o.SizeCQ[i]
		rep.SizeCQF[i] += o.SizeCQF[i]
		rep.SizeCQOF[i] += o.SizeCQOF[i]
	}
	rep.TripleSum += o.TripleSum
	rep.OperatorSet.Merge(o.OperatorSet)
	rep.ProjYes += o.ProjYes
	rep.ProjInd += o.ProjInd
	rep.Subqueries += o.Subqueries
	rep.AOF += o.AOF
	rep.CQ += o.CQ
	rep.CPF += o.CPF
	rep.CQF += o.CQF
	rep.WellDesigned += o.WellDesigned
	rep.CQOF += o.CQOF
	rep.WideInterface += o.WideInterface
	rep.VarPredAOF += o.VarPredAOF
	rep.ShapeCQ.merge(o.ShapeCQ)
	rep.ShapeCQF.merge(o.ShapeCQF)
	rep.ShapeCQOF.merge(o.ShapeCQOF)
	rep.ShapeCQNoConst.merge(o.ShapeCQNoConst)
	rep.SingleEdgeWithConstants += o.SingleEdgeWithConstants
	for k, v := range o.GirthHist {
		rep.GirthHist[k] += v
	}
	rep.GHW1 += o.GHW1
	rep.GHW2 += o.GHW2
	rep.GHW3 += o.GHW3
	rep.GHWOther += o.GHWOther
	if o.MaxDecompNodes > rep.MaxDecompNodes {
		rep.MaxDecompNodes = o.MaxDecompNodes
	}
	rep.Paths.Merge(o.Paths)
	if len(o.Lint) > 0 {
		if rep.Lint == nil {
			rep.Lint = make(map[string]int)
			rep.LintQueries = make(map[string]int)
		}
		for k, v := range o.Lint {
			rep.Lint[k] += v
		}
		for k, v := range o.LintQueries {
			rep.LintQueries[k] += v
		}
	}
	rep.LintEmpty += o.LintEmpty
	if rep.Repeats == nil && len(o.Repeats) > 0 {
		rep.Repeats = make(map[string]RepeatStat)
	}
	for k, v := range o.Repeats {
		s := rep.Repeats[k]
		s.Total += v.Total
		s.Unique += v.Unique
		rep.Repeats[k] = s
	}
}

// NewCorpusReport returns an empty report suitable as a Merge target.
func NewCorpusReport(name string) *DatasetReport {
	return &DatasetReport{
		Name:        name,
		Keywords:    make(map[string]int),
		OperatorSet: analysis.NewDistribution(),
		GirthHist:   make(map[int]int),
		Paths:       paths.NewTable5(),
		Repeats:     make(map[string]RepeatStat),
	}
}
