package core

import (
	"strings"
	"testing"

	"sparqlog/internal/loggen"
)

func TestCleaningAndValiditySplit(t *testing.T) {
	entries := []string{
		"GET /resource/Paris HTTP/1.1",           // noise
		"SELECT * WHERE { ?s ?p ?o }",            // valid
		"SELECT * WHERE {",                       // invalid
		"SELECT * WHERE { ?s ?p ?o }",            // duplicate
		"ASK { <a> <b> <c> }",                    // valid
		"{\"event\":\"ping\"}",                   // noise
		"DESCRIBE <http://dbpedia.org/r/Berlin>", // valid, bodyless
	}
	rep := AnalyzeLog("test", entries, Options{})
	if rep.NoiseRemoved != 2 {
		t.Errorf("noise = %d, want 2", rep.NoiseRemoved)
	}
	if rep.Total != 5 {
		t.Errorf("total = %d, want 5", rep.Total)
	}
	if rep.Valid != 4 {
		t.Errorf("valid = %d, want 4", rep.Valid)
	}
	if rep.Unique != 3 {
		t.Errorf("unique = %d, want 3", rep.Unique)
	}
	if rep.Bodyless != 1 {
		t.Errorf("bodyless = %d, want 1", rep.Bodyless)
	}
	if rep.Keywords["Select"] != 1 || rep.Keywords["Ask"] != 1 || rep.Keywords["Describe"] != 1 {
		t.Errorf("keywords = %v", rep.Keywords)
	}
}

func TestKeepDuplicates(t *testing.T) {
	entries := []string{
		"SELECT * WHERE { ?s ?p ?o }",
		"SELECT * WHERE { ?s ?p ?o }",
	}
	rep := AnalyzeLog("dup", entries, Options{KeepDuplicates: true})
	if rep.Unique != 2 {
		t.Errorf("with duplicates kept, analyzed = %d, want 2", rep.Unique)
	}
}

func TestFragmentAndShapeAccounting(t *testing.T) {
	entries := []string{
		"SELECT * WHERE { ?s <p> ?o }",                         // CQ single edge
		"SELECT * WHERE { ?a <p> ?b . ?b <q> ?c }",             // CQ chain
		"SELECT * WHERE { ?a <p> ?b . ?b <q> ?c . ?c <r> ?a }", // CQ cycle
		"SELECT * WHERE { ?s <p> ?o FILTER(?o > 3) }",          // CQF
		"SELECT * WHERE { ?s <p> ?o OPTIONAL { ?s <q> ?x } }",  // CQOF
		"SELECT * WHERE { { ?s <a> ?o } UNION { ?s <b> ?o } }", // not AOF
	}
	rep := AnalyzeLog("shapes", entries, Options{})
	if rep.AOF != 5 {
		t.Errorf("AOF = %d, want 5", rep.AOF)
	}
	if rep.CQ != 3 {
		t.Errorf("CQ = %d, want 3", rep.CQ)
	}
	if rep.CQF != 4 {
		t.Errorf("CQF = %d, want 4 (CQs are CQF)", rep.CQF)
	}
	if rep.CQOF != 5 {
		t.Errorf("CQOF = %d, want 5", rep.CQOF)
	}
	if rep.ShapeCQ.Total != 3 || rep.ShapeCQ.SingleEdge != 1 || rep.ShapeCQ.Cycle != 1 {
		t.Errorf("shapeCQ = %+v", rep.ShapeCQ)
	}
	if rep.ShapeCQ.FlowerSet != 3 {
		t.Errorf("flower set should cover all three CQs, got %d", rep.ShapeCQ.FlowerSet)
	}
	if rep.GirthHist[3] != 1 {
		t.Errorf("girth hist = %v", rep.GirthHist)
	}
}

func TestVarPredicateHypergraphAccounting(t *testing.T) {
	entries := []string{
		// Example 5.1's cyclic hypergraph query: ghw 2.
		"ASK WHERE {?x1 ?x2 ?x3 . ?x3 <a> ?x4 . ?x4 ?x2 ?x5}",
		// Acyclic var-predicate query: ghw 1.
		"ASK { ?s ?p ?o }",
	}
	rep := AnalyzeLog("hyper", entries, Options{})
	if rep.VarPredAOF != 2 {
		t.Fatalf("varPredAOF = %d, want 2", rep.VarPredAOF)
	}
	if rep.GHW1 != 1 || rep.GHW2 != 1 {
		t.Errorf("ghw counts = %d/%d/%d, want 1/1/0", rep.GHW1, rep.GHW2, rep.GHW3)
	}
}

func TestProjectionAndSubqueryCounting(t *testing.T) {
	entries := []string{
		"SELECT ?s WHERE { ?s <p> ?o }",                         // projection
		"SELECT * WHERE { ?s <p> ?o }",                          // none
		"SELECT ?s WHERE { { SELECT ?s WHERE { ?s <q> ?x } } }", // subquery
	}
	rep := AnalyzeLog("proj", entries, Options{})
	if rep.ProjYes != 1 {
		t.Errorf("projYes = %d, want 1", rep.ProjYes)
	}
	if rep.Subqueries != 1 {
		t.Errorf("subqueries = %d, want 1", rep.Subqueries)
	}
}

func TestMergeReports(t *testing.T) {
	a := AnalyzeLog("a", []string{"SELECT * WHERE { ?s <p> ?o }"}, Options{})
	b := AnalyzeLog("b", []string{"ASK { ?s <p> ?o . ?o <q> ?z }"}, Options{})
	total := NewCorpusReport("total")
	total.Merge(a)
	total.Merge(b)
	if total.Unique != 2 || total.SelectAsk != 2 {
		t.Errorf("merged = %d/%d", total.Unique, total.SelectAsk)
	}
	if total.Keywords["Select"] != 1 || total.Keywords["Ask"] != 1 {
		t.Errorf("merged keywords = %v", total.Keywords)
	}
	if total.ShapeCQ.Total != 2 {
		t.Errorf("merged shapes = %+v", total.ShapeCQ)
	}
}

func TestTripleHistogramBuckets(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("SELECT * WHERE { ")
	for i := 0; i < 15; i++ {
		if i > 0 {
			sb.WriteString(" . ")
		}
		sb.WriteString("?a <p> ?b")
	}
	sb.WriteString(" }")
	rep := AnalyzeLog("big", []string{sb.String()}, Options{})
	if rep.TripleHist[SizeHistBuckets-1] != 1 {
		t.Errorf("15 triples should land in the last bucket: %v", rep.TripleHist)
	}
}

// End-to-end: the synthetic generator's output flows through the pipeline
// and reproduces its own calibration approximately.
func TestGeneratorThroughPipeline(t *testing.T) {
	prof := loggen.Profiles()[0] // DBpedia9/12
	ds := loggen.Generate(prof, 2000, 123)
	rep := AnalyzeLog(ds.Name, ds.Entries, Options{})
	if rep.Total == 0 || rep.Valid == 0 || rep.Unique == 0 {
		t.Fatalf("empty pipeline result: %+v", rep)
	}
	// Validity rate should be near the profile's calibration.
	wantValid := float64(prof.PaperValid) / float64(prof.PaperTotal)
	gotValid := float64(rep.Valid) / float64(rep.Total)
	if gotValid < wantValid-0.05 || gotValid > wantValid+0.05 {
		t.Errorf("valid rate = %.3f, want ~%.3f", gotValid, wantValid)
	}
	// Most queries must be Select.
	if rep.Keywords["Select"] < rep.Unique*7/10 {
		t.Errorf("select keyword count %d of %d seems low", rep.Keywords["Select"], rep.Unique)
	}
	// The CQ-like hierarchy must be populated and ordered.
	if !(rep.CQ <= rep.CQF && rep.CQF <= rep.CQOF+rep.WideInterface+10 && rep.AOF <= rep.SelectAsk) {
		t.Errorf("fragment ordering violated: CQ=%d CQF=%d CQOF=%d AOF=%d SA=%d",
			rep.CQ, rep.CQF, rep.CQOF, rep.AOF, rep.SelectAsk)
	}
	// Shape tables are cumulative: every classified query is a flower set
	// or wider.
	if rep.ShapeCQ.Total > 0 && rep.ShapeCQ.FlowerSet < rep.ShapeCQ.Forest {
		t.Errorf("flower set (%d) must cover forests (%d)", rep.ShapeCQ.FlowerSet, rep.ShapeCQ.Forest)
	}
}

func TestWikiDataProfileThroughPipeline(t *testing.T) {
	profs := loggen.Profiles()
	wd := profs[len(profs)-1]
	if wd.Name != "WikiData17" {
		t.Fatal("profile order changed")
	}
	ds := loggen.Generate(wd, 309, 5)
	rep := AnalyzeLog(ds.Name, ds.Entries, Options{})
	// WikiData17 has distinctive rates: paths and subqueries well above
	// the endpoint logs.
	if rep.Paths.Total+rep.Paths.TrivialNeg+rep.Paths.TrivialInv == 0 {
		t.Error("WikiData17 should contain property paths")
	}
	if rep.Subqueries == 0 {
		t.Error("WikiData17 should contain subqueries")
	}
}
