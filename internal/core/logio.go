package core

import (
	"bufio"
	"io"
	"strings"
)

// Log formats. Real endpoint logs arrive in several shapes: plain text
// (one query per line), TSV exports (query in some column), and Apache
// access logs whose GET /sparql?query=... lines carry URL-encoded
// queries — the USEWOD shape the paper's Section 2 cleaning handles.
type LogFormat int

// Supported log formats.
const (
	// FormatAuto sniffs the format per line: Apache-style lines are
	// detected by the "?query=" parameter, otherwise the raw line is the
	// query.
	FormatAuto LogFormat = iota
	// FormatPlain treats every line as one query.
	FormatPlain
	// FormatApache extracts and URL-decodes the query= parameter from
	// request lines; lines without one are kept verbatim (and will be
	// dropped by cleaning if they are not queries).
	FormatApache
)

// EntryScanner streams decoded log entries from a reader one at a time,
// so corpus-scale logs never have to be materialized as a []string. Blank
// lines are skipped; lines longer than 16 MiB are rejected.
type EntryScanner struct {
	sc     *bufio.Scanner
	format LogFormat
	entry  string
}

// NewEntryScanner returns a scanner over r in the given format.
func NewEntryScanner(r io.Reader, format LogFormat) *EntryScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	return &EntryScanner{sc: sc, format: format}
}

// Scan advances to the next non-blank entry, reporting false at EOF or on
// a read error (see Err).
func (s *EntryScanner) Scan() bool {
	for s.sc.Scan() {
		line := strings.TrimSpace(s.sc.Text())
		if line == "" {
			continue
		}
		s.entry = DecodeEntry(line, s.format)
		return true
	}
	return false
}

// Entry returns the entry read by the last successful Scan.
func (s *EntryScanner) Entry() string { return s.entry }

// Err returns the first read error, if any.
func (s *EntryScanner) Err() error { return s.sc.Err() }

// ReadLog reads all log entries from r in the given format. Prefer
// EntryScanner (or StreamAnalyzer) for logs too large to hold in memory.
func ReadLog(r io.Reader, format LogFormat) ([]string, error) {
	sc := NewEntryScanner(r, format)
	var out []string
	for sc.Scan() {
		out = append(out, sc.Entry())
	}
	return out, sc.Err()
}

// DecodeEntry normalizes one raw log line into query text per the format.
func DecodeEntry(line string, format LogFormat) string {
	switch format {
	case FormatPlain:
		return line
	case FormatApache:
		if q, ok := extractQueryParam(line); ok {
			return q
		}
		return line
	default: // FormatAuto
		if strings.Contains(line, "query=") {
			if q, ok := extractQueryParam(line); ok {
				return q
			}
		}
		return line
	}
}

// extractQueryParam pulls the query= URL parameter out of a request line
// and percent-decodes it.
func extractQueryParam(line string) (string, bool) {
	i := strings.Index(line, "query=")
	if i < 0 {
		return "", false
	}
	// Parameter boundaries: & ends the parameter; a space ends the URL
	// (Apache log format: "GET /sparql?query=... HTTP/1.1").
	rest := line[i+len("query="):]
	if j := strings.IndexAny(rest, "& \""); j >= 0 {
		rest = rest[:j]
	}
	decoded, ok := urlDecode(rest)
	if !ok {
		return "", false
	}
	return decoded, true
}

// urlDecode percent-decodes s, treating '+' as space (query strings).
// It reports ok=false for malformed escapes.
func urlDecode(s string) (string, bool) {
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '+':
			sb.WriteByte(' ')
		case '%':
			if i+2 >= len(s) {
				return "", false
			}
			hi, ok1 := unhex(s[i+1])
			lo, ok2 := unhex(s[i+2])
			if !ok1 || !ok2 {
				return "", false
			}
			sb.WriteByte(hi<<4 | lo)
			i += 2
		default:
			sb.WriteByte(c)
		}
	}
	return sb.String(), true
}

func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
