package plan

import (
	"fmt"
	"strings"

	"sparqlog/internal/rdf"
)

// Explained pairs a plan with per-step actual row counts measured during
// an instrumented execution, the EXPLAIN ANALYZE view of a query: the
// chosen order and, per step, the estimated vs. observed intermediate
// result size.
type Explained struct {
	// Atoms are the query's atoms in their original order; Plan.Order
	// indexes into them.
	Atoms []Atom
	Plan  *Plan
	// Actual[k] is the number of rows that survived step k (bindings
	// passed to step k+1). Nil when the execution was not instrumented.
	Actual []int64
	// Batches[k] is the number of columnar batches operator k emitted.
	// Nil when the execution was not batched (ASK short-circuit search).
	Batches []int64
	// CacheHit reports whether the plan came out of a Cache.
	CacheHit bool
}

// Format renders the explanation as an aligned table. term resolves
// constant IDs to their text; varName names variable indexes (either may
// be nil for positional fallbacks).
func (ex *Explained) Format(term func(rdf.ID) string, varName func(int) string) string {
	if varName == nil {
		varName = func(i int) string { return fmt.Sprintf("?v%d", i) }
	}
	renderRef := func(r TermRef) string {
		if r.IsVar {
			return varName(r.Var)
		}
		if term != nil {
			if t := term(r.ID); t != "" {
				return "<" + t + ">"
			}
		}
		return fmt.Sprintf("#%d", r.ID)
	}
	renderAtom := func(a Atom) string {
		return renderRef(a.S) + " " + renderRef(a.P) + " " + renderRef(a.O)
	}

	// Slot count and per-step write sets derive from the atoms at hand,
	// not the (possibly cache-shared) plan: only Order transfers across
	// a shape key.
	slots := map[int]bool{}
	for _, a := range ex.Atoms {
		for _, r := range [3]TermRef{a.S, a.P, a.O} {
			if r.IsVar {
				slots[r.Var] = true
			}
		}
	}
	binds := ex.Plan.BindsFor(ex.Atoms)

	var b strings.Builder
	if ex.Plan.Key != "" {
		fmt.Fprintf(&b, "shape key: %s  [%d slots]", ex.Plan.Key, len(slots))
		if ex.CacheHit {
			b.WriteString("  (plan cache hit)")
		}
		b.WriteByte('\n')
	}
	header := []string{"step", "atom", "est rows", "actual rows"}
	if ex.Batches != nil {
		header = append(header, "batches")
	}
	header = append(header, "binds")
	nc := len(header)
	rows := make([][]string, 0, len(ex.Plan.Order))
	for k, ai := range ex.Plan.Order {
		actual := "-"
		if ex.Actual != nil {
			actual = fmt.Sprintf("%d", ex.Actual[k])
		}
		row := []string{
			fmt.Sprintf("%d", k+1),
			renderAtom(ex.Atoms[ai]),
			formatEst(ex.Plan.Rows[k]),
			actual,
		}
		if ex.Batches != nil {
			row = append(row, fmt.Sprintf("%d", ex.Batches[k]))
		}
		names := make([]string, 0, len(binds[k]))
		for _, slot := range binds[k] {
			names = append(names, varName(slot))
		}
		if len(names) == 0 {
			names = append(names, "-")
		}
		row = append(row, strings.Join(names, " "))
		rows = append(rows, row)
	}
	widths := make([]int, nc)
	for c := 0; c < nc; c++ {
		widths[c] = len(header[c])
		for _, r := range rows {
			if len(r[c]) > widths[c] {
				widths[c] = len(r[c])
			}
		}
	}
	writeRow := func(r []string) {
		for c := 0; c < nc; c++ {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(r[c])
			if c < nc-1 {
				b.WriteString(strings.Repeat(" ", widths[c]-len(r[c])))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// formatEst renders a cardinality estimate compactly.
func formatEst(v float64) string {
	switch {
	case v >= 100 || v == float64(int64(v)):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
