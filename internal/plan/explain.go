package plan

import (
	"fmt"
	"strings"

	"sparqlog/internal/rdf"
)

// Explained pairs a plan with per-step actual row counts measured during
// an instrumented execution, the EXPLAIN ANALYZE view of a query: the
// chosen order and, per step, the estimated vs. observed intermediate
// result size.
type Explained struct {
	// Atoms are the query's atoms in their original order; Plan.Order
	// indexes into them.
	Atoms []Atom
	Plan  *Plan
	// Actual[k] is the number of rows that survived step k (bindings
	// passed to step k+1). Nil when the execution was not instrumented.
	Actual []int64
	// CacheHit reports whether the plan came out of a Cache.
	CacheHit bool
}

// Format renders the explanation as an aligned table. term resolves
// constant IDs to their text; varName names variable indexes (either may
// be nil for positional fallbacks).
func (ex *Explained) Format(term func(rdf.ID) string, varName func(int) string) string {
	if varName == nil {
		varName = func(i int) string { return fmt.Sprintf("?v%d", i) }
	}
	renderRef := func(r TermRef) string {
		if r.IsVar {
			return varName(r.Var)
		}
		if term != nil {
			if t := term(r.ID); t != "" {
				return "<" + t + ">"
			}
		}
		return fmt.Sprintf("#%d", r.ID)
	}
	renderAtom := func(a Atom) string {
		return renderRef(a.S) + " " + renderRef(a.P) + " " + renderRef(a.O)
	}

	var b strings.Builder
	if ex.Plan.Key != "" {
		fmt.Fprintf(&b, "shape key: %s", ex.Plan.Key)
		if ex.CacheHit {
			b.WriteString("  (plan cache hit)")
		}
		b.WriteByte('\n')
	}
	rows := make([][4]string, 0, len(ex.Plan.Order))
	for k, ai := range ex.Plan.Order {
		actual := "-"
		if ex.Actual != nil {
			actual = fmt.Sprintf("%d", ex.Actual[k])
		}
		rows = append(rows, [4]string{
			fmt.Sprintf("%d", k+1),
			renderAtom(ex.Atoms[ai]),
			formatEst(ex.Plan.Rows[k]),
			actual,
		})
	}
	header := [4]string{"step", "atom", "est rows", "actual rows"}
	widths := [4]int{}
	for c := 0; c < 4; c++ {
		widths[c] = len(header[c])
		for _, r := range rows {
			if len(r[c]) > widths[c] {
				widths[c] = len(r[c])
			}
		}
	}
	writeRow := func(r [4]string) {
		for c := 0; c < 4; c++ {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(r[c])
			if c < 3 {
				b.WriteString(strings.Repeat(" ", widths[c]-len(r[c])))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// formatEst renders a cardinality estimate compactly.
func formatEst(v float64) string {
	switch {
	case v >= 100 || v == float64(int64(v)):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
