package plan

import (
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"sparqlog/internal/rdf"
)

// ShapeKey canonicalizes the atom structure of a conjunctive query into
// a cache key: variables are renumbered by first occurrence, subject and
// object constants collapse to an anonymous marker (their identity never
// enters the cost model), and constant predicates keep their ID (the
// per-predicate statistics do depend on it). Two queries with equal keys
// therefore receive identical plans, which is exactly when sharing a
// plan is sound.
func ShapeKey(atoms []Atom) string {
	var b strings.Builder
	b.Grow(len(atoms) * 12)
	varMap := map[int]int{}
	ref := func(r TermRef, predicate bool) {
		switch {
		case r.IsVar:
			canon, ok := varMap[r.Var]
			if !ok {
				canon = len(varMap)
				varMap[r.Var] = canon
			}
			b.WriteByte('?')
			b.WriteString(strconv.Itoa(canon))
		case predicate:
			b.WriteByte('p')
			b.WriteString(strconv.FormatUint(uint64(r.ID), 10))
		default:
			b.WriteByte('c')
		}
	}
	for _, a := range atoms {
		ref(a.S, false)
		b.WriteByte(' ')
		ref(a.P, true)
		b.WriteByte(' ')
		ref(a.O, false)
		b.WriteByte('.')
	}
	return b.String()
}

// DefaultMaxShapes bounds the cache's size. Real workloads concentrate
// on few shapes (the log study's central finding), so the bound only
// bites on adversarial shape churn; past it, new shapes plan uncached —
// the same degrade-to-correct fallback as a misrouted snapshot.
const DefaultMaxShapes = 4096

// Cache is a per-snapshot plan cache keyed by query shape. One Cache
// serves any number of goroutines: the service layer's worker pool
// shares a single Cache so the millions-of-users workload plans each
// query shape once. Plans are immutable, so a cached *Plan is handed out
// without copying.
type Cache struct {
	sn      *rdf.Snapshot
	planner Planner

	mu    sync.Mutex
	plans map[string]*Plan

	hits, misses atomic.Int64
}

// NewCache returns an empty plan cache bound to the snapshot whose
// statistics it plans with.
func NewCache(sn *rdf.Snapshot) *Cache {
	return &Cache{
		sn:      sn,
		planner: Planner{Stats: sn.Stats()},
		plans:   map[string]*Plan{},
	}
}

// Snapshot returns the snapshot the cache plans for.
func (c *Cache) Snapshot() *rdf.Snapshot { return c.sn }

// For returns the plan for the atoms, computing and caching it on first
// sight of the shape. A nil cache, or a snapshot other than the one the
// cache was built for, falls back to uncached planning — a misrouted
// cache degrades to correct-but-slower, never to a wrong plan.
func (c *Cache) For(sn *rdf.Snapshot, atoms []Atom, numVars int) *Plan {
	p, _ := c.Lookup(sn, atoms, numVars)
	return p
}

// Lookup is For plus whether THIS lookup was served from the cache (the
// per-call fact, safe under concurrency, unlike diffing the global
// Hits counter).
func (c *Cache) Lookup(sn *rdf.Snapshot, atoms []Atom, numVars int) (*Plan, bool) {
	if c == nil || sn != c.sn {
		return For(sn, atoms, numVars), false
	}
	key := ShapeKey(atoms)
	c.mu.Lock()
	if p, ok := c.plans[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return p, true
	}
	// Planning under the lock keeps miss counts exact (one per distinct
	// shape); plans are microseconds, so contention is immaterial next
	// to execution.
	p := c.planner.Plan(atoms, numVars)
	p.Key = key
	if len(c.plans) < DefaultMaxShapes {
		c.plans[key] = p
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return p, false
}

// Hits returns the number of cache hits so far.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of cache misses (= plans computed).
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Len returns the number of cached shapes.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.plans)
}
