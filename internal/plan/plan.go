// Package plan is the cost-based query planner shared by both engines
// and the SPARQL evaluator. It consumes the rdf.Stats block a Snapshot
// computes at Freeze time and orders the atoms of a conjunctive query by
// estimated cardinality: greedy minimum-selectivity with bound-variable
// propagation and a connected-subgraph preference (never take a cross
// product while a connected atom remains). The log study behind this
// repository found real workloads dominated by small star/chain/cycle
// conjunctive shapes, so plans are cached per query *shape* (constants
// abstracted, variables canonicalized) — see Cache.
//
// The planner owns the atom representation (TermRef, Atom); package
// engine aliases these types, so engine.Atom and plan.Atom are
// interchangeable.
package plan

import (
	"math"

	"sparqlog/internal/rdf"
)

// TermRef is one position of a query atom: either a variable (index
// into the query's variable table — which doubles as the columnar
// executor's slot index, so a plan over ID-resolved atoms executes
// with no name re-resolution, cache hit or not) or a constant store
// ID.
type TermRef struct {
	IsVar bool
	Var   int
	ID    rdf.ID
}

// V constructs a variable reference.
func V(i int) TermRef { return TermRef{IsVar: true, Var: i} }

// C constructs a constant reference.
func C(id rdf.ID) TermRef { return TermRef{ID: id} }

// Atom is one triple pattern of a conjunctive query.
type Atom struct {
	S, P, O TermRef
}

// Plan is an execution order for a set of atoms with the estimates that
// justified it. Plans are immutable once built and safe to share across
// goroutines (the cache hands one *Plan to every worker).
type Plan struct {
	// Order holds atom indexes in execution order; it is a permutation
	// of [0, len(atoms)).
	Order []int
	// Est[k] is the estimated number of matches of atom Order[k] per row
	// of the intermediate result before it (its estimated fan-out).
	Est []float64
	// Rows[k] is the estimated intermediate result size after executing
	// atoms Order[0..k] (the running product of Est).
	Rows []float64
	// Key is the shape key the plan was cached under; empty for plans
	// built outside a cache.
	Key string
}

// BindsFor computes the per-step slot write set of executing atoms in
// the plan's order: Binds[k] lists the variable slots atom Order[k]
// binds first. Derived from the caller's atoms rather than cached with
// the plan, because shape-mates sharing a cached plan may number their
// variables differently — only Order transfers across a shape key.
func (p *Plan) BindsFor(atoms []Atom) [][]int {
	bound := map[int]bool{}
	out := make([][]int, len(p.Order))
	for k, ai := range p.Order {
		var step []int
		for _, r := range [3]TermRef{atoms[ai].S, atoms[ai].P, atoms[ai].O} {
			if r.IsVar && !bound[r.Var] {
				bound[r.Var] = true
				step = append(step, r.Var)
			}
		}
		out[k] = step
	}
	return out
}

// Planner orders atoms using a snapshot's statistics.
type Planner struct {
	Stats *rdf.Stats
}

// For plans the atoms against a snapshot's Freeze-time statistics,
// without caching. Use a Cache to amortize planning across calls.
func For(sn *rdf.Snapshot, atoms []Atom, numVars int) *Plan {
	return Planner{Stats: sn.Stats()}.Plan(atoms, numVars)
}

// Plan orders the atoms with no variables initially bound.
func (pl Planner) Plan(atoms []Atom, numVars int) *Plan {
	return pl.PlanBound(atoms, numVars, nil)
}

// PlanBound orders the atoms given a set of variables already bound by
// the surrounding context (the evaluator's case: a BGP run inside a
// group whose earlier elements bound some variables).
func (pl Planner) PlanBound(atoms []Atom, numVars int, bound []bool) *Plan {
	n := len(atoms)
	bv := make([]bool, numVars)
	copy(bv, bound)
	used := make([]bool, n)
	p := &Plan{
		Order: make([]int, 0, n),
		Est:   make([]float64, 0, n),
		Rows:  make([]float64, 0, n),
	}
	rows := 1.0
	for step := 0; step < n; step++ {
		best, bestEst, bestConn := -1, 0.0, false
		for i := range atoms {
			if used[i] {
				continue
			}
			conn := connected(atoms[i], bv)
			est := pl.estimate(atoms[i], bv)
			switch {
			case best == -1:
			case conn && !bestConn:
			case conn == bestConn && est < bestEst:
			default:
				continue
			}
			best, bestEst, bestConn = i, est, conn
		}
		used[best] = true
		bindVars(atoms[best], bv)
		p.Order = append(p.Order, best)
		p.Est = append(p.Est, bestEst)
		rows *= bestEst
		p.Rows = append(p.Rows, rows)
	}
	return p
}

// connected reports whether the atom joins the already-bound subgraph: it
// shares a bound variable, or has no variables at all (a pure existence
// check that can never grow the intermediate result).
func connected(a Atom, bound []bool) bool {
	hasVar := false
	for _, r := range [3]TermRef{a.S, a.P, a.O} {
		if !r.IsVar {
			continue
		}
		hasVar = true
		if bound[r.Var] {
			return true
		}
	}
	return !hasVar
}

// bindVars marks the atom's variables bound.
func bindVars(a Atom, bound []bool) {
	for _, r := range [3]TermRef{a.S, a.P, a.O} {
		if r.IsVar {
			bound[r.Var] = true
		}
	}
}

// estimate predicts how many triples match the atom per row of the
// current intermediate result, treating bound variables like constants
// (their value is fixed at runtime, so average-degree statistics apply).
//
// With a constant predicate the per-predicate summary drives the
// estimate; with a variable predicate the global distinct counts stand
// in, assuming independence of the three positions. Constants in subject
// or object position deliberately contribute only their *position*, not
// their identity — that is what makes plans reusable across queries of
// the same shape (see Cache).
func (pl Planner) estimate(a Atom, bound []bool) float64 {
	st := pl.Stats
	fixed := func(r TermRef) bool { return !r.IsVar || bound[r.Var] }
	sb, ob := fixed(a.S), fixed(a.O)

	var card, subjects, objects float64
	if !a.P.IsVar {
		ps := st.Predicate(a.P.ID)
		if ps.Card == 0 {
			return 0 // predicate absent: the atom cannot match
		}
		card = float64(ps.Card)
		subjects = float64(ps.Subjects)
		objects = float64(ps.Objects)
	} else {
		card = float64(st.Triples)
		subjects = math.Max(1, float64(st.DistinctSubjects))
		objects = math.Max(1, float64(st.DistinctObjects))
		if bound[a.P.Var] {
			card /= math.Max(1, float64(st.DistinctPredicates))
		}
	}
	est := card
	if sb {
		est /= subjects
	}
	if ob {
		est /= objects
	}
	// A repeated unbound variable inside the atom (e.g. ?x p ?x) only
	// matches self-loops; scale by the chance a random edge is one.
	if a.S.IsVar && a.O.IsVar && !sb && !ob && a.S.Var == a.O.Var {
		est /= math.Max(subjects, objects)
	}
	return est
}
