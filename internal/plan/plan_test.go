package plan

import (
	"math/rand"
	"sort"
	"testing"

	"sparqlog/internal/rdf"
)

// testGraph builds a small skewed store: a high-cardinality predicate
// "big" (fan-out 10 from every hub) and a selective predicate "rare"
// with a handful of triples.
func testGraph(t testing.TB) (*rdf.Snapshot, map[string]rdf.ID) {
	t.Helper()
	st := rdf.NewStore()
	for h := 0; h < 20; h++ {
		hub := "hub" + itoa(h)
		for k := 0; k < 10; k++ {
			st.Add(hub, "big", "leaf"+itoa(h)+"_"+itoa(k))
		}
	}
	for i := 0; i < 3; i++ {
		st.Add("hub"+itoa(i), "rare", "gold")
	}
	// Each hub has one distinct colour: an object-bound colour atom is
	// maximally selective (card/objects = 1).
	for h := 0; h < 20; h++ {
		st.Add("hub"+itoa(h), "colour", "c"+itoa(h))
	}
	sn := st.Freeze()
	ids := map[string]rdf.ID{}
	for _, term := range []string{"big", "rare", "colour", "c5", "gold", "hub0"} {
		id, ok := sn.Lookup(term)
		if !ok {
			t.Fatalf("term %q missing", term)
		}
		ids[term] = id
	}
	return sn, ids
}

func itoa(v int) string {
	if v >= 10 {
		return string(rune('0'+v/10)) + string(rune('0'+v%10))
	}
	return string(rune('0' + v))
}

// TestGreedyPicksSelectiveFirst: with ?x rare gold written last, the
// planner must move it first and keep the connected big-atom after it.
func TestGreedyPicksSelectiveFirst(t *testing.T) {
	sn, ids := testGraph(t)
	atoms := []Atom{
		{S: V(0), P: C(ids["big"]), O: V(1)},            // ~200 triples
		{S: V(0), P: C(ids["rare"]), O: C(ids["gold"])}, // 3 triples, object const
	}
	p := For(sn, atoms, 2)
	if p.Order[0] != 1 || p.Order[1] != 0 {
		t.Fatalf("order = %v, want [1 0]", p.Order)
	}
	// After ?x is bound, the big atom estimate is its average fan-out.
	if p.Est[1] < 5 || p.Est[1] > 15 {
		t.Errorf("bound big-atom estimate = %v, want ~10", p.Est[1])
	}
	if p.Est[0] > float64(3) {
		t.Errorf("rare-atom estimate = %v, want <= 3", p.Est[0])
	}
}

// TestConnectedPreference: the planner must not take a cross product
// while an atom connected to the bound subgraph remains, even when the
// disconnected atom has a smaller estimate.
func TestConnectedPreference(t *testing.T) {
	sn, ids := testGraph(t)
	atoms := []Atom{
		{S: V(0), P: C(ids["rare"]), O: V(1)},           // est 3, disconnected from v2/v3
		{S: V(2), P: C(ids["big"]), O: V(3)},            // est 10 once v2 is bound
		{S: V(2), P: C(ids["colour"]), O: C(ids["c5"])}, // est 1: the anchor
	}
	p := For(sn, atoms, 4)
	// The anchor is cheapest, then the planner must take the connected
	// big atom (est 10) over the cheaper disconnected rare atom (est 3).
	want := []int{2, 1, 0}
	for i, ai := range want {
		if p.Order[i] != ai {
			t.Fatalf("order = %v, want %v (connected-subgraph preference)", p.Order, want)
		}
	}
}

// TestAbsentPredicateOrdersFirst: a constant predicate with no triples
// has estimate 0 and must be evaluated first so execution dies instantly.
func TestAbsentPredicateOrdersFirst(t *testing.T) {
	sn, ids := testGraph(t)
	gold := ids["gold"] // interned but never used as a predicate
	atoms := []Atom{
		{S: V(0), P: C(ids["big"]), O: V(1)},
		{S: V(0), P: C(gold), O: V(1)},
	}
	p := For(sn, atoms, 2)
	if p.Order[0] != 1 {
		t.Fatalf("order = %v, want the dead atom first", p.Order)
	}
	if p.Est[0] != 0 {
		t.Fatalf("dead atom estimate = %v, want 0", p.Est[0])
	}
}

// TestPlanIsPermutation fuzzes random atom sets: every plan must be a
// permutation of the atom indexes, with Est/Rows aligned.
func TestPlanIsPermutation(t *testing.T) {
	sn, ids := testGraph(t)
	rng := rand.New(rand.NewSource(5))
	preds := []rdf.ID{ids["big"], ids["rare"]}
	for trial := 0; trial < 200; trial++ {
		nAtoms := 1 + rng.Intn(6)
		nVars := 1 + rng.Intn(5)
		ref := func() TermRef {
			if rng.Float64() < 0.7 {
				return V(rng.Intn(nVars))
			}
			return C(ids["gold"])
		}
		var atoms []Atom
		for i := 0; i < nAtoms; i++ {
			pr := TermRef(C(preds[rng.Intn(2)]))
			if rng.Float64() < 0.2 {
				pr = V(rng.Intn(nVars))
			}
			atoms = append(atoms, Atom{S: ref(), P: pr, O: ref()})
		}
		p := For(sn, atoms, nVars)
		if len(p.Order) != nAtoms || len(p.Est) != nAtoms || len(p.Rows) != nAtoms {
			t.Fatalf("trial %d: ragged plan %+v", trial, p)
		}
		sorted := append([]int(nil), p.Order...)
		sort.Ints(sorted)
		for i, v := range sorted {
			if v != i {
				t.Fatalf("trial %d: order %v is not a permutation", trial, p.Order)
			}
		}
	}
}

// TestShapeKeyCanonicalization: variable names and subject/object
// constant identities must not distinguish shapes; predicate constants
// and structure must.
func TestShapeKeyCanonicalization(t *testing.T) {
	sn, ids := testGraph(t)
	_ = sn
	big, rare, gold := ids["big"], ids["rare"], ids["gold"]
	hub0 := ids["hub0"]

	a := []Atom{{S: V(3), P: C(big), O: V(7)}, {S: V(7), P: C(rare), O: C(gold)}}
	b := []Atom{{S: V(0), P: C(big), O: V(1)}, {S: V(1), P: C(rare), O: C(hub0)}}
	if ShapeKey(a) != ShapeKey(b) {
		t.Errorf("renamed vars / different constants changed the key:\n%s\n%s", ShapeKey(a), ShapeKey(b))
	}

	c := []Atom{{S: V(0), P: C(rare), O: V(1)}, {S: V(1), P: C(big), O: C(gold)}}
	if ShapeKey(a) == ShapeKey(c) {
		t.Error("different predicate placement produced equal keys")
	}

	d := []Atom{{S: V(0), P: C(big), O: V(1)}, {S: V(0), P: C(rare), O: C(gold)}}
	if ShapeKey(a) == ShapeKey(d) {
		t.Error("different join structure (chain vs star) produced equal keys")
	}

	e := []Atom{{S: V(0), P: V(2), O: V(1)}, {S: V(1), P: C(rare), O: C(gold)}}
	if ShapeKey(a) == ShapeKey(e) {
		t.Error("variable predicate vs constant predicate produced equal keys")
	}
}

// TestCacheHitsAndBypass verifies counting and the foreign-snapshot
// bypass.
func TestCacheHitsAndBypass(t *testing.T) {
	sn, ids := testGraph(t)
	cache := NewCache(sn)
	atomsA := []Atom{{S: V(0), P: C(ids["big"]), O: V(1)}}
	atomsB := []Atom{{S: V(0), P: C(ids["rare"]), O: C(ids["gold"])}}

	p1 := cache.For(sn, atomsA, 2)
	p2 := cache.For(sn, atomsA, 2)
	if p1 != p2 {
		t.Error("same shape did not return the cached plan")
	}
	cache.For(sn, atomsB, 2)
	if cache.Hits() != 1 || cache.Misses() != 2 || cache.Len() != 2 {
		t.Errorf("hits/misses/len = %d/%d/%d, want 1/2/2", cache.Hits(), cache.Misses(), cache.Len())
	}
	if p1.Key == "" {
		t.Error("cached plan has no shape key")
	}

	// A different snapshot must bypass the cache, not poison it.
	other := rdf.NewStore()
	other.Add("a", "b", "c")
	osn := other.Freeze()
	cache.For(osn, atomsA, 2)
	if cache.Hits() != 1 || cache.Misses() != 2 {
		t.Error("foreign snapshot touched the cache counters")
	}

	// A nil cache plans without caching.
	var nilCache *Cache
	if p := nilCache.For(sn, atomsA, 2); len(p.Order) != 1 {
		t.Error("nil cache did not plan")
	}
}

// TestPlanSlotAssignments: BindsFor derives each step's slot write set
// from the caller's atoms and the plan's order — every variable slot
// is bound exactly once across the steps, in execution order, even
// with repeated variables — so explain output stays correct for
// shape-mates that number their variables differently than the query
// whose plan is cached.
func TestPlanSlotAssignments(t *testing.T) {
	sn, ids := testGraph(t)
	atoms := []Atom{
		{S: V(0), P: C(ids["big"]), O: V(1)},
		{S: V(1), P: C(ids["rare"]), O: V(2)},
		{S: V(2), P: C(ids["big"]), O: V(2)}, // repeated variable binds once
	}
	p := For(sn, atoms, 3)
	binds := p.BindsFor(atoms)
	if len(binds) != len(atoms) {
		t.Fatalf("binds = %v", binds)
	}
	seen := map[int]bool{}
	for k, step := range binds {
		for _, slot := range step {
			if seen[slot] {
				t.Fatalf("slot %d bound twice (step %d, binds %v)", slot, k, binds)
			}
			seen[slot] = true
		}
	}
	for v := 0; v < 3; v++ {
		if !seen[v] {
			t.Fatalf("slot %d never bound: %v", v, binds)
		}
	}

	// A shape-mate with different variable numbering gets ITS slots
	// back, not the cached query's.
	mate := []Atom{
		{S: V(5), P: C(ids["big"]), O: V(3)},
		{S: V(3), P: C(ids["rare"]), O: V(1)},
		{S: V(1), P: C(ids["big"]), O: V(1)},
	}
	for _, step := range p.BindsFor(mate) {
		for _, slot := range step {
			if slot != 5 && slot != 3 && slot != 1 {
				t.Fatalf("foreign slot %d in shape-mate binds %v", slot, p.BindsFor(mate))
			}
		}
	}
}
