// Package loggen generates synthetic SPARQL query logs calibrated to the
// published per-dataset marginals of the paper (Tables 1-3, Figure 1),
// standing in for the proprietary USEWOD / OpenLink / LSQ logs that cannot
// be redistributed. Queries are synthesized as ASTs, serialized to text,
// and re-enter the analyzer through the same lexer and parser used for
// real logs; noise entries and malformed queries model the cleaning and
// validity split of Section 2.
package loggen

// Profile calibrates one dataset's generator to the paper's published
// marginals. Rates are probabilities in [0, 1].
type Profile struct {
	Name string
	// PaperTotal is the log size reported in Table 1; generation scales
	// it by the corpus Scale factor.
	PaperTotal int
	// PaperValid and PaperUnique calibrate the invalid and duplicate
	// rates.
	PaperValid  int
	PaperUnique int
	// NoiseRate is the fraction of log entries that are not queries at
	// all (HTTP requests etc., removed by cleaning).
	NoiseRate float64

	// Query type mix (must sum to <= 1; remainder goes to Select).
	AskRate       float64
	DescribeRate  float64
	ConstructRate float64
	// BodylessDescribe is the fraction of Describe queries without a
	// WHERE clause (97% corpus-wide).
	BodylessDescribe float64

	// Solution modifier rates.
	DistinctRate float64
	LimitRate    float64
	OffsetRate   float64
	OrderByRate  float64

	// Triple-count distribution for Select/Ask queries: probability of
	// 0,1,...,11 triples; remainder is 12+ (Figure 1).
	TripleDist [12]float64

	// Body operator rates for Select/Ask queries.
	FilterRate float64
	OptRate    float64
	UnionRate  float64
	GraphRate  float64
	// ComplexFilterRate: among filters, fraction that are not simple
	// (two-variable comparisons), driving the CQF gap.
	ComplexFilterRate float64
	// EqualityFilterRate: among filters, fraction of exact ?x = ?y.
	EqualityFilterRate float64
	// NotWellDesignedRate: among OPT queries, fraction violating
	// Definition 5.3 (the corpus-wide figure is 1.47% of AOF).
	NotWellDesignedRate float64
	// WideInterfaceRate: among well-designed OPT queries, fraction with
	// interface width 2 (310 queries corpus-wide, i.e. tiny).
	WideInterfaceRate float64

	// VarPredicateRate: fraction of triples using a variable predicate.
	VarPredicateRate float64
	// ConstantObjectRate: fraction of leaf objects that are constants.
	ConstantObjectRate float64

	// Shape mix for multi-triple Select/Ask bodies (normalized
	// internally): chains, stars, trees, flowers (cyclic), cycles.
	ShapeChain, ShapeStar, ShapeTree, ShapeFlower, ShapeCycle float64

	// Rare features.
	SubqueryRate  float64
	PathRate      float64 // property-path patterns
	AggregateRate float64 // COUNT etc. with GROUP BY sometimes
	GroupByRate   float64
	ServiceRate   float64
	BindRate      float64
	MinusRate     float64
	NotExistsRate float64

	// ComboRate: fraction of multi-triple queries decorated with the
	// full And/Opt/Union/Filter combination at once, modelling the
	// correlated operator usage behind Table 3's "A, O, U, F" row.
	ComboRate float64

	// Streakiness: probability that the next query is a modification of
	// a recent one (drives Table 6; only meaningful for DBpedia logs).
	StreakRate float64
	// StreakContinue is the chance a streak keeps going after each step.
	StreakContinue float64
}

// Profiles returns the 13 dataset profiles of Table 1 in paper order.
// Calibration sources: Table 1 (sizes), Section 4.1 (type and modifier
// mixes), Figure 1 (triple distributions, S/A shares), Section 4.3
// (operator rates), Sections 4.4-7 (subqueries, projection, paths).
func Profiles() []Profile {
	// dbpediaTriples approximates the DBpedia triple-count mix of
	// Figure 1: heavy 0-2, visible tail, ~2-4 average.
	dbpediaTriples := [12]float64{0.02, 0.55, 0.13, 0.08, 0.05, 0.04, 0.03, 0.02, 0.02, 0.01, 0.01, 0.01}
	smallTriples := [12]float64{0.01, 0.84, 0.10, 0.03, 0.01, 0.005, 0.002, 0.001, 0.001, 0, 0, 0}
	bigTriples := [12]float64{0.0, 0.18, 0.13, 0.12, 0.11, 0.10, 0.08, 0.06, 0.05, 0.04, 0.03, 0.03}

	return []Profile{
		{
			Name: "DBpedia9/12", PaperTotal: 28534301, PaperValid: 27097467, PaperUnique: 13437966,
			AskRate: 0.004, DescribeRate: 0.004, ConstructRate: 0.0005,
			DistinctRate: 0.18, LimitRate: 0.15, OffsetRate: 0.05, OrderByRate: 0.02,
			TripleDist: dbpediaTriples,
			FilterRate: 0.45, OptRate: 0.18, UnionRate: 0.20, GraphRate: 0.002,
			ComplexFilterRate: 0.15, EqualityFilterRate: 0.05,
			NotWellDesignedRate: 0.015, WideInterfaceRate: 0.0001,
			VarPredicateRate: 0.10, ConstantObjectRate: 0.55,
			ShapeChain: 0.45, ShapeStar: 0.35, ShapeTree: 0.17, ShapeFlower: 0.02, ShapeCycle: 0.01,
			SubqueryRate: 0.003, PathRate: 0.002, AggregateRate: 0.004, GroupByRate: 0.002,
			BindRate: 0.004, MinusRate: 0.002, NotExistsRate: 0.004,
			ComboRate: 0.18, StreakRate: 0.35, StreakContinue: 0.80,
		},
		{
			Name: "DBpedia13", PaperTotal: 5243853, PaperValid: 4819837, PaperUnique: 2628005,
			AskRate: 0.04, DescribeRate: 0.03, ConstructRate: 0.01,
			DistinctRate: 0.08, LimitRate: 0.14, OffsetRate: 0.12, OrderByRate: 0.02,
			TripleDist: [12]float64{0.01, 0.42, 0.12, 0.08, 0.06, 0.05, 0.04, 0.03, 0.02, 0.02, 0.02, 0.02},
			FilterRate: 0.42, OptRate: 0.20, UnionRate: 0.22, GraphRate: 0.002,
			ComplexFilterRate: 0.15, EqualityFilterRate: 0.05,
			NotWellDesignedRate: 0.015, WideInterfaceRate: 0.0001,
			VarPredicateRate: 0.10, ConstantObjectRate: 0.55,
			ShapeChain: 0.42, ShapeStar: 0.36, ShapeTree: 0.18, ShapeFlower: 0.03, ShapeCycle: 0.01,
			SubqueryRate: 0.004, PathRate: 0.003, AggregateRate: 0.005, GroupByRate: 0.003,
			BindRate: 0.005, MinusRate: 0.002, NotExistsRate: 0.005,
			ComboRate: 0.18, StreakRate: 0.35, StreakContinue: 0.80,
		},
		{
			Name: "DBpedia14", PaperTotal: 37219788, PaperValid: 33996480, PaperUnique: 17217448,
			AskRate: 0.03, DescribeRate: 0.015, ConstructRate: 0.005,
			DistinctRate: 0.11, LimitRate: 0.16, OffsetRate: 0.06, OrderByRate: 0.02,
			TripleDist: dbpediaTriples,
			FilterRate: 0.40, OptRate: 0.17, UnionRate: 0.18, GraphRate: 0.002,
			ComplexFilterRate: 0.15, EqualityFilterRate: 0.05,
			NotWellDesignedRate: 0.015, WideInterfaceRate: 0.0001,
			VarPredicateRate: 0.10, ConstantObjectRate: 0.55,
			ShapeChain: 0.45, ShapeStar: 0.35, ShapeTree: 0.17, ShapeFlower: 0.02, ShapeCycle: 0.01,
			SubqueryRate: 0.004, PathRate: 0.003, AggregateRate: 0.004, GroupByRate: 0.002,
			BindRate: 0.005, MinusRate: 0.002, NotExistsRate: 0.004,
			ComboRate: 0.18, StreakRate: 0.38, StreakContinue: 0.82,
		},
		{
			Name: "DBpedia15", PaperTotal: 43478986, PaperValid: 42709778, PaperUnique: 13253845,
			AskRate: 0.115, DescribeRate: 0.025, ConstructRate: 0.01,
			DistinctRate: 0.38, LimitRate: 0.18, OffsetRate: 0.07, OrderByRate: 0.025,
			TripleDist: [12]float64{0.01, 0.50, 0.12, 0.08, 0.06, 0.05, 0.04, 0.03, 0.02, 0.02, 0.01, 0.01},
			FilterRate: 0.42, OptRate: 0.17, UnionRate: 0.19, GraphRate: 0.002,
			ComplexFilterRate: 0.15, EqualityFilterRate: 0.05,
			NotWellDesignedRate: 0.015, WideInterfaceRate: 0.0001,
			VarPredicateRate: 0.11, ConstantObjectRate: 0.55,
			ShapeChain: 0.44, ShapeStar: 0.35, ShapeTree: 0.18, ShapeFlower: 0.02, ShapeCycle: 0.01,
			SubqueryRate: 0.005, PathRate: 0.004, AggregateRate: 0.005, GroupByRate: 0.003,
			BindRate: 0.006, MinusRate: 0.003, NotExistsRate: 0.005,
			ComboRate: 0.18, StreakRate: 0.40, StreakContinue: 0.83,
		},
		{
			Name: "DBpedia16", PaperTotal: 15098176, PaperValid: 14687869, PaperUnique: 4369781,
			AskRate: 0.02, DescribeRate: 0.34, ConstructRate: 0.02,
			DistinctRate: 0.08, LimitRate: 0.14, OffsetRate: 0.05, OrderByRate: 0.02,
			TripleDist: [12]float64{0.01, 0.44, 0.12, 0.08, 0.06, 0.05, 0.05, 0.04, 0.03, 0.02, 0.02, 0.02},
			FilterRate: 0.40, OptRate: 0.18, UnionRate: 0.18, GraphRate: 0.002,
			ComplexFilterRate: 0.15, EqualityFilterRate: 0.05,
			NotWellDesignedRate: 0.015, WideInterfaceRate: 0.0001,
			VarPredicateRate: 0.11, ConstantObjectRate: 0.55,
			ShapeChain: 0.44, ShapeStar: 0.35, ShapeTree: 0.18, ShapeFlower: 0.02, ShapeCycle: 0.01,
			SubqueryRate: 0.005, PathRate: 0.005, AggregateRate: 0.006, GroupByRate: 0.003,
			BindRate: 0.006, MinusRate: 0.003, NotExistsRate: 0.005,
			ComboRate: 0.18, StreakRate: 0.45, StreakContinue: 0.85,
		},
		{
			Name: "LGD13", PaperTotal: 1841880, PaperValid: 1513868, PaperUnique: 357842,
			AskRate: 0.005, DescribeRate: 0.005, ConstructRate: 0.71,
			DistinctRate: 0.10, LimitRate: 0.22, OffsetRate: 0.13, OrderByRate: 0.01,
			TripleDist: [12]float64{0.01, 0.40, 0.20, 0.12, 0.08, 0.05, 0.04, 0.03, 0.02, 0.02, 0.01, 0.01},
			FilterRate: 0.45, OptRate: 0.12, UnionRate: 0.10, GraphRate: 0.001,
			ComplexFilterRate: 0.20, EqualityFilterRate: 0.04,
			NotWellDesignedRate: 0.01, WideInterfaceRate: 0.0001,
			VarPredicateRate: 0.06, ConstantObjectRate: 0.50,
			ShapeChain: 0.40, ShapeStar: 0.40, ShapeTree: 0.17, ShapeFlower: 0.02, ShapeCycle: 0.01,
			SubqueryRate: 0.001, PathRate: 0.001, AggregateRate: 0.01, GroupByRate: 0.004,
			BindRate: 0.002, MinusRate: 0.001, NotExistsRate: 0.002,
		},
		{
			Name: "LGD14", PaperTotal: 1999961, PaperValid: 1929130, PaperUnique: 628640,
			AskRate: 0.01, DescribeRate: 0.01, ConstructRate: 0.005,
			DistinctRate: 0.12, LimitRate: 0.41, OffsetRate: 0.38, OrderByRate: 0.01,
			TripleDist: [12]float64{0.005, 0.38, 0.22, 0.13, 0.08, 0.06, 0.04, 0.03, 0.02, 0.02, 0.01, 0.01},
			FilterRate: 0.61, OptRate: 0.10, UnionRate: 0.08, GraphRate: 0.001,
			ComplexFilterRate: 0.22, EqualityFilterRate: 0.04,
			NotWellDesignedRate: 0.01, WideInterfaceRate: 0.0001,
			VarPredicateRate: 0.05, ConstantObjectRate: 0.50,
			ShapeChain: 0.40, ShapeStar: 0.40, ShapeTree: 0.17, ShapeFlower: 0.02, ShapeCycle: 0.01,
			SubqueryRate: 0.002, PathRate: 0.001, AggregateRate: 0.31, GroupByRate: 0.05,
			BindRate: 0.002, MinusRate: 0.001, NotExistsRate: 0.002,
		},
		{
			Name: "BioP13", PaperTotal: 4627271, PaperValid: 4624430, PaperUnique: 687773,
			AskRate: 0.0, DescribeRate: 0.0, ConstructRate: 0.0,
			DistinctRate: 0.82, LimitRate: 0.10, OffsetRate: 0.03, OrderByRate: 0.005,
			TripleDist: smallTriples,
			FilterRate: 0.03, OptRate: 0.03, UnionRate: 0.02, GraphRate: 0.80,
			ComplexFilterRate: 0.10, EqualityFilterRate: 0.03,
			NotWellDesignedRate: 0.005, WideInterfaceRate: 0,
			VarPredicateRate: 0.25, ConstantObjectRate: 0.60,
			ShapeChain: 0.70, ShapeStar: 0.20, ShapeTree: 0.09, ShapeFlower: 0.007, ShapeCycle: 0.003,
			SubqueryRate: 0.0005, PathRate: 0.0002, AggregateRate: 0.002, GroupByRate: 0.001,
		},
		{
			Name: "BioP14", PaperTotal: 26438933, PaperValid: 26404710, PaperUnique: 2191152,
			AskRate: 0.002, DescribeRate: 0.0005, ConstructRate: 0.0005,
			DistinctRate: 0.69, LimitRate: 0.12, OffsetRate: 0.04, OrderByRate: 0.005,
			TripleDist: [12]float64{0.005, 0.70, 0.18, 0.06, 0.02, 0.01, 0.005, 0.002, 0.001, 0, 0, 0},
			FilterRate: 0.05, OptRate: 0.04, UnionRate: 0.03, GraphRate: 0.40,
			ComplexFilterRate: 0.10, EqualityFilterRate: 0.03,
			NotWellDesignedRate: 0.005, WideInterfaceRate: 0,
			VarPredicateRate: 0.22, ConstantObjectRate: 0.60,
			ShapeChain: 0.68, ShapeStar: 0.22, ShapeTree: 0.09, ShapeFlower: 0.007, ShapeCycle: 0.003,
			SubqueryRate: 0.0005, PathRate: 0.0005, AggregateRate: 0.002, GroupByRate: 0.001,
		},
		{
			Name: "BioMed13", PaperTotal: 883374, PaperValid: 882809, PaperUnique: 27030,
			AskRate: 0.002, DescribeRate: 0.8471, ConstructRate: 0.0242,
			DistinctRate: 0.05, LimitRate: 0.08, OffsetRate: 0.02, OrderByRate: 0.005,
			TripleDist: [12]float64{0.01, 0.45, 0.15, 0.10, 0.07, 0.05, 0.04, 0.03, 0.02, 0.02, 0.01, 0.01},
			FilterRate: 0.03, OptRate: 0.08, UnionRate: 0.06, GraphRate: 0.01,
			ComplexFilterRate: 0.10, EqualityFilterRate: 0.03,
			NotWellDesignedRate: 0.01, WideInterfaceRate: 0,
			VarPredicateRate: 0.12, ConstantObjectRate: 0.55,
			ShapeChain: 0.50, ShapeStar: 0.30, ShapeTree: 0.17, ShapeFlower: 0.02, ShapeCycle: 0.01,
			SubqueryRate: 0.001, PathRate: 0.0005, AggregateRate: 0.003, GroupByRate: 0.001,
		},
		{
			Name: "SWDF13", PaperTotal: 13762797, PaperValid: 13618017, PaperUnique: 1229759,
			AskRate: 0.01, DescribeRate: 0.02, ConstructRate: 0.008,
			DistinctRate: 0.30, LimitRate: 0.47, OffsetRate: 0.08, OrderByRate: 0.03,
			TripleDist: [12]float64{0.005, 0.73, 0.14, 0.06, 0.03, 0.01, 0.008, 0.004, 0.002, 0.001, 0, 0},
			FilterRate: 0.15, OptRate: 0.25, UnionRate: 0.22, GraphRate: 0.005,
			ComplexFilterRate: 0.12, EqualityFilterRate: 0.04,
			NotWellDesignedRate: 0.02, WideInterfaceRate: 0.0001,
			VarPredicateRate: 0.12, ConstantObjectRate: 0.55,
			ShapeChain: 0.55, ShapeStar: 0.28, ShapeTree: 0.14, ShapeFlower: 0.02, ShapeCycle: 0.01,
			SubqueryRate: 0.002, PathRate: 0.001, AggregateRate: 0.005, GroupByRate: 0.002,
			BindRate: 0.003, MinusRate: 0.001, NotExistsRate: 0.003,
		},
		{
			Name: "BritM14", PaperTotal: 1523827, PaperValid: 1513534, PaperUnique: 135112,
			AskRate: 0.005, DescribeRate: 0.005, ConstructRate: 0.004,
			DistinctRate: 0.97, LimitRate: 0.25, OffsetRate: 0.06, OrderByRate: 0.02,
			TripleDist: bigTriples,
			FilterRate: 0.30, OptRate: 0.20, UnionRate: 0.15, GraphRate: 0.002,
			ComplexFilterRate: 0.12, EqualityFilterRate: 0.05,
			NotWellDesignedRate: 0.01, WideInterfaceRate: 0.0001,
			VarPredicateRate: 0.08, ConstantObjectRate: 0.60,
			ShapeChain: 0.25, ShapeStar: 0.45, ShapeTree: 0.26, ShapeFlower: 0.03, ShapeCycle: 0.01,
			SubqueryRate: 0.002, PathRate: 0.001, AggregateRate: 0.01, GroupByRate: 0.004,
		},
		{
			Name: "WikiData17", PaperTotal: 309, PaperValid: 308, PaperUnique: 308,
			AskRate: 0.002, DescribeRate: 0.001, ConstructRate: 0.001,
			DistinctRate: 0.25, LimitRate: 0.30, OffsetRate: 0.02, OrderByRate: 0.42,
			TripleDist: [12]float64{0.0, 0.22, 0.18, 0.15, 0.12, 0.09, 0.07, 0.05, 0.04, 0.03, 0.02, 0.01},
			FilterRate: 0.30, OptRate: 0.40, UnionRate: 0.15, GraphRate: 0.001,
			ComplexFilterRate: 0.15, EqualityFilterRate: 0.05,
			NotWellDesignedRate: 0.01, WideInterfaceRate: 0.003,
			VarPredicateRate: 0.05, ConstantObjectRate: 0.55,
			ShapeChain: 0.30, ShapeStar: 0.40, ShapeTree: 0.26, ShapeFlower: 0.03, ShapeCycle: 0.01,
			SubqueryRate: 0.0974, PathRate: 0.2987, AggregateRate: 0.20, GroupByRate: 0.30,
			ServiceRate: 0.10, BindRate: 0.05, MinusRate: 0.02, NotExistsRate: 0.03,
		},
	}
}
