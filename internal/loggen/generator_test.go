package loggen

import (
	"strings"
	"testing"

	"sparqlog/internal/sparql"
)

func TestGenerateDeterministic(t *testing.T) {
	p := Profiles()[0]
	a := Generate(p, 200, 7)
	b := Generate(p, 200, 7)
	if len(a.Entries) != len(b.Entries) {
		t.Fatal("lengths differ")
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatalf("entry %d differs between same-seed runs", i)
		}
	}
	c := Generate(p, 200, 8)
	same := 0
	for i := range c.Entries {
		if c.Entries[i] == a.Entries[i] {
			same++
		}
	}
	if same == len(a.Entries) {
		t.Error("different seeds produced identical logs")
	}
}

func TestGeneratedQueriesMostlyParse(t *testing.T) {
	for _, p := range Profiles()[:3] {
		ds := Generate(p, 400, 99)
		parser := &sparql.Parser{}
		var parsed, failed, noise int
		for _, e := range ds.Entries {
			up := strings.ToUpper(e)
			isQuery := false
			for _, kw := range []string{"SELECT", "ASK", "CONSTRUCT", "DESCRIBE"} {
				if strings.Contains(up, kw) {
					isQuery = true
					break
				}
			}
			if !isQuery {
				noise++
				continue
			}
			if _, err := parser.Parse(e); err != nil {
				failed++
			} else {
				parsed++
			}
		}
		total := parsed + failed
		if total == 0 {
			t.Fatalf("%s: no queries generated", p.Name)
		}
		wantValid := float64(p.PaperValid) / float64(p.PaperTotal)
		gotValid := float64(parsed) / float64(total)
		if gotValid < wantValid-0.06 || gotValid > wantValid+0.06 {
			t.Errorf("%s: parse rate %.3f, want ~%.3f", p.Name, gotValid, wantValid)
		}
	}
}

func TestDuplicateRateCalibration(t *testing.T) {
	// BioMed13 has an extreme duplicate rate (27k unique of 880k valid).
	var biomed Profile
	for _, p := range Profiles() {
		if p.Name == "BioMed13" {
			biomed = p
		}
	}
	ds := Generate(biomed, 3000, 3)
	uniq := map[string]bool{}
	valid := 0
	parser := &sparql.Parser{}
	for _, e := range ds.Entries {
		if _, err := parser.Parse(e); err == nil {
			valid++
			uniq[e] = true
		}
	}
	gotDup := 1 - float64(len(uniq))/float64(valid)
	wantDup := 1 - float64(biomed.PaperUnique)/float64(biomed.PaperValid)
	if gotDup < wantDup-0.15 {
		t.Errorf("duplicate rate %.2f too low, want near %.2f", gotDup, wantDup)
	}
}

func TestGenerateCorpusShape(t *testing.T) {
	corpus := GenerateCorpus(0.00002, 1)
	if len(corpus) != 13 {
		t.Fatalf("datasets = %d, want 13", len(corpus))
	}
	names := map[string]bool{}
	for _, ds := range corpus {
		names[ds.Name] = true
		if len(ds.Entries) == 0 {
			t.Errorf("%s: empty log", ds.Name)
		}
	}
	for _, want := range []string{"DBpedia9/12", "WikiData17", "BioP14", "BritM14"} {
		if !names[want] {
			t.Errorf("missing dataset %s", want)
		}
	}
	// WikiData17 keeps its full (tiny) size.
	for _, ds := range corpus {
		if ds.Name == "WikiData17" && len(ds.Entries) != 309 {
			t.Errorf("WikiData17 size = %d, want 309", len(ds.Entries))
		}
	}
}

func TestMutatePreservesParseability(t *testing.T) {
	p := Profiles()[0]
	g := newGenerator(p, 21)
	parser := &sparql.Parser{}
	for i := 0; i < 50; i++ {
		q := g.query()
		m := g.mutate(q)
		if m == q {
			t.Error("mutation should change the query")
		}
		if _, err := parser.Parse(m); err != nil {
			t.Fatalf("mutated query unparseable: %v\nbefore: %s\nafter: %s", err, q, m)
		}
	}
}

func TestStreaksPresentInDBpediaLogs(t *testing.T) {
	p := Profiles()[2] // DBpedia14
	ds := Generate(p, 1500, 77)
	// Count adjacent near-duplicates as a cheap streak proxy: at least
	// some consecutive entries should be small modifications.
	close := 0
	for i := 1; i < len(ds.Entries); i++ {
		a, b := ds.Entries[i-1], ds.Entries[i]
		if a == b || len(a) == 0 || len(b) == 0 {
			continue
		}
		dl := len(a) - len(b)
		if dl < 0 {
			dl = -dl
		}
		if dl <= 12 && a[:min(10, len(a))] == b[:min(10, len(b))] {
			close++
		}
	}
	if close < 50 {
		t.Errorf("expected streaky log, found only %d adjacent near-duplicates", close)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
