package loggen

import (
	"testing"

	"sparqlog/internal/sparql"
)

// rateOf measures how many valid unique queries of a generated log
// satisfy pred.
func rateOf(t *testing.T, p Profile, n int, seed int64, pred func(*sparql.Query) bool) float64 {
	t.Helper()
	ds := Generate(p, n, seed)
	parser := &sparql.Parser{}
	seen := map[string]bool{}
	var total, hits int
	for _, e := range ds.Entries {
		if seen[e] {
			continue
		}
		q, err := parser.Parse(e)
		if err != nil {
			continue
		}
		seen[e] = true
		total++
		if pred(q) {
			hits++
		}
	}
	if total == 0 {
		t.Fatalf("%s: no valid queries", p.Name)
	}
	return float64(hits) / float64(total)
}

func profileByName(t *testing.T, name string) Profile {
	t.Helper()
	for _, p := range Profiles() {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("no profile %s", name)
	return Profile{}
}

// The paper's Section 4.1 singles out several per-dataset rates; the
// generator must reproduce them within tolerance.
func TestPerDatasetCalibration(t *testing.T) {
	tests := []struct {
		profile string
		label   string
		paper   float64
		tol     float64
		pred    func(*sparql.Query) bool
	}{
		// "Almost all (97%) of BritM14 queries use Distinct."
		{"BritM14", "distinct", 0.97, 0.08, func(q *sparql.Query) bool { return q.Distinct }},
		// "in BioP13 (82%)" distinct.
		{"BioP13", "distinct", 0.82, 0.10, func(q *sparql.Query) bool { return q.Distinct }},
		// "In these logs, 80% ... of the queries use Graph" (BioP13).
		{"BioP13", "graph", 0.80, 0.10, func(q *sparql.Query) bool {
			found := false
			sparql.Walk(q.Where, func(p sparql.Pattern) bool {
				if _, ok := p.(*sparql.GraphGraph); ok {
					found = true
				}
				return !found
			})
			return found
		}},
		// "Limit is used most widely in SWDF13 (47%)".
		{"SWDF13", "limit", 0.47, 0.12, func(q *sparql.Query) bool { return q.Mods.HasLimit }},
		// "The use of Filter ranges from 61% (LGD14)".
		{"LGD14", "filter", 0.61, 0.15, func(q *sparql.Query) bool {
			found := false
			sparql.Walk(q.Where, func(p sparql.Pattern) bool {
				if _, ok := p.(*sparql.Filter); ok {
					found = true
				}
				return !found
			})
			return found
		}},
		// "Order By is used by far the most in WikiData (42%)".
		{"WikiData17", "orderBy", 0.42, 0.15, func(q *sparql.Query) bool { return len(q.Mods.OrderBy) > 0 }},
	}
	for _, tc := range tests {
		p := profileByName(t, tc.profile)
		got := rateOf(t, p, 800, 99, tc.pred)
		if got < tc.paper-tc.tol || got > tc.paper+tc.tol {
			t.Errorf("%s %s rate = %.2f, paper %.2f (±%.2f)", tc.profile, tc.label, got, tc.paper, tc.tol)
		}
	}
}

// BioMed13 is dominated by Describe queries (84.71% per Section 4.2).
func TestBioMedDescribeDominance(t *testing.T) {
	p := profileByName(t, "BioMed13")
	got := rateOf(t, p, 800, 11, func(q *sparql.Query) bool { return q.Type == sparql.DescribeQuery })
	if got < 0.75 || got > 0.95 {
		t.Errorf("BioMed13 describe rate = %.2f, paper 0.85", got)
	}
}

// LGD13 is dominated by Construct queries (71%).
func TestLGDConstructDominance(t *testing.T) {
	p := profileByName(t, "LGD13")
	got := rateOf(t, p, 800, 12, func(q *sparql.Query) bool { return q.Type == sparql.ConstructQuery })
	if got < 0.60 || got > 0.82 {
		t.Errorf("LGD13 construct rate = %.2f, paper 0.71", got)
	}
}
