package loggen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"sparqlog/internal/sparql"
)

// Dataset is one generated query log.
type Dataset struct {
	Name    string
	Profile Profile
	// Entries are raw log lines: mostly SPARQL text, plus noise and
	// malformed queries per the profile.
	Entries []string
}

// CorpusSpec sizes and seeds one log of the calibrated corpus.
type CorpusSpec struct {
	Profile Profile
	N       int
	Seed    int64
}

// CorpusSpecs returns the per-log generation parameters for the corpus at
// the given scale (fraction of the paper's log sizes; 0.0001 yields a
// ~18k-query corpus). Small logs (WikiData17) are kept at full size so
// their distinctive statistics survive scaling.
func CorpusSpecs(scale float64, seed int64) []CorpusSpec {
	profs := Profiles()
	out := make([]CorpusSpec, 0, len(profs))
	for i, p := range profs {
		n := int(float64(p.PaperTotal) * scale)
		if p.PaperTotal < 1000 {
			n = p.PaperTotal
		}
		if n < 50 {
			n = 50
		}
		out = append(out, CorpusSpec{Profile: p, N: n, Seed: seed + int64(i)*7919})
	}
	return out
}

// GenerateCorpus generates all 13 logs at the given scale, materialized
// in memory. To avoid materializing the logs, iterate CorpusSpecs and
// use GenerateStream instead (its duplicate pool still grows with the
// distinct-query count).
func GenerateCorpus(scale float64, seed int64) []Dataset {
	specs := CorpusSpecs(scale, seed)
	out := make([]Dataset, 0, len(specs))
	for _, s := range specs {
		out = append(out, Generate(s.Profile, s.N, s.Seed))
	}
	return out
}

// Generate produces one log of n entries under the profile, materialized
// in memory. It emits the exact sequence GenerateStream does for the same
// arguments.
func Generate(p Profile, n int, seed int64) Dataset {
	ds := Dataset{Name: p.Name, Profile: p}
	ds.Entries = make([]string, 0, n)
	GenerateStream(p, n, seed, func(e string) bool {
		ds.Entries = append(ds.Entries, e)
		return true
	})
	return ds
}

// GenerateStream produces one log of n entries under the profile,
// delivering each entry to emit as it is generated instead of holding the
// log in memory; emit returning false stops generation early (e.g. on a
// write error). (The duplicate-emission pool still retains one copy of
// each distinct valid query, the same floor the analyzer's dedup pays.)
func GenerateStream(p Profile, n int, seed int64, emit func(string) bool) {
	g := newGenerator(p, seed)
	emitted := 0
	stopped := false
	send := func(e string) {
		if !emit(e) {
			stopped = true
		}
		emitted++
	}
	invalidRate := 0.0
	if p.PaperTotal > 0 {
		invalidRate = 1 - float64(p.PaperValid)/float64(p.PaperTotal)
	}
	dupRate := 0.0
	if p.PaperValid > 0 {
		dupRate = 1 - float64(p.PaperUnique)/float64(p.PaperValid)
	}
	var valid []string // pool for duplicate re-emission
	var streakBase string
	streakLive := false
	for emitted < n && !stopped {
		r := g.rng.Float64()
		switch {
		case r < p.NoiseRate:
			send(g.noiseEntry())
			continue
		case r < p.NoiseRate+invalidRate:
			send(g.invalidEntry())
			continue
		}
		if streakLive && g.rng.Float64() < p.StreakContinue {
			streakBase = g.mutate(streakBase)
			send(streakBase)
			valid = append(valid, streakBase)
			continue
		}
		streakLive = false
		if len(valid) > 0 && g.rng.Float64() < dupRate {
			send(valid[g.rng.Intn(len(valid))])
			continue
		}
		q := g.query()
		send(q)
		valid = append(valid, q)
		if g.rng.Float64() < p.StreakRate {
			streakBase = q
			streakLive = true
		}
	}
}

// WriteLog streams one generated log to w, one entry per line, through an
// internal buffer. Generation stops at the first write error, which is
// returned.
func WriteLog(w io.Writer, p Profile, n int, seed int64) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var err error
	GenerateStream(p, n, seed, func(e string) bool {
		if _, err = bw.WriteString(e); err != nil {
			return false
		}
		err = bw.WriteByte('\n')
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// generator synthesizes individual queries.
type generator struct {
	p    Profile
	rng  *rand.Rand
	seq  int
	pred []string
}

var basePredicates = []string{
	"dbo:birthPlace", "dbo:deathPlace", "dbo:nationality", "dbo:genre",
	"dbo:author", "dbo:starring", "dbo:director", "dbo:location",
	"foaf:name", "foaf:mbox", "foaf:homepage", "foaf:knows",
	"rdfs:label", "rdfs:comment", "dc:title", "dc:creator",
	"dbo:populationTotal", "dbo:areaTotal", "dbo:capital", "dbo:country",
	"skos:broader", "skos:subject", "owl:sameAs", "dbo:abstract",
}

var prefixDecls = []sparql.PrefixDecl{
	{Name: "dbo", IRI: "http://dbpedia.org/ontology/"},
	{Name: "dbr", IRI: "http://dbpedia.org/resource/"},
	{Name: "foaf", IRI: "http://xmlns.com/foaf/0.1/"},
	{Name: "rdfs", IRI: "http://www.w3.org/2000/01/rdf-schema#"},
	{Name: "dc", IRI: "http://purl.org/dc/elements/1.1/"},
	{Name: "skos", IRI: "http://www.w3.org/2004/02/skos/core#"},
	{Name: "owl", IRI: "http://www.w3.org/2002/07/owl#"},
}

func newGenerator(p Profile, seed int64) *generator {
	return &generator{p: p, rng: rand.New(rand.NewSource(seed)), pred: basePredicates}
}

func (g *generator) noiseEntry() string {
	forms := []string{
		"GET /resource/Entity%d HTTP/1.1",
		"POST /sparql HTTP/1.1 400 Bad Request",
		"# comment line %d in log",
		"{\"event\":\"ping\",\"id\":%d}",
	}
	g.seq++
	return fmt.Sprintf(forms[g.rng.Intn(len(forms))], g.seq)
}

func (g *generator) invalidEntry() string {
	// A truncated query: contains a query-form keyword (so cleaning keeps
	// it) but fails to parse.
	q := g.query()
	if len(q) > 4 {
		cut := len(q) - 1 - g.rng.Intn(3)
		return q[:cut]
	}
	return "SELECT * WHERE {"
}

// mutate performs a small edit preserving >= 75% similarity: incrementing
// a digit run, swapping one predicate, or (rarely) adjusting a LIMIT. The
// result stays parseable.
func (g *generator) mutate(q string) string {
	incDigit := func() (string, bool) {
		for i := len(q) - 1; i >= 0; i-- {
			if q[i] >= '0' && q[i] <= '8' {
				return q[:i] + string(q[i]+1) + q[i+1:], true
			}
		}
		return q, false
	}
	swapPred := func() (string, bool) {
		for _, from := range g.pred {
			if strings.Contains(q, from+" ") {
				to := g.pred[g.rng.Intn(len(g.pred))]
				if to != from {
					return strings.Replace(q, from+" ", to+" ", 1), true
				}
			}
		}
		return q, false
	}
	switch g.rng.Intn(10) {
	case 0:
		// Occasionally refine an existing LIMIT (mirrors a user paging
		// or widening a result window).
		if strings.Contains(q, " LIMIT ") {
			return strings.Replace(q, " LIMIT ", " LIMIT 1", 1)
		}
		if m, ok := incDigit(); ok {
			return m
		}
	case 1, 2, 3:
		if m, ok := swapPred(); ok {
			return m
		}
		if m, ok := incDigit(); ok {
			return m
		}
	default:
		if m, ok := incDigit(); ok {
			return m
		}
		if m, ok := swapPred(); ok {
			return m
		}
	}
	return q + " LIMIT 10"
}

func (g *generator) entity() sparql.Term {
	g.seq++
	return sparql.Term{Kind: sparql.TermIRI, Value: fmt.Sprintf("dbr:Entity%d", g.seq), PrefixedForm: true}
}

func (g *generator) predicate() sparql.Term {
	return sparql.Term{Kind: sparql.TermIRI, Value: g.pred[g.rng.Intn(len(g.pred))], PrefixedForm: true}
}

func (g *generator) chance(p float64) bool { return g.rng.Float64() < p }

// query synthesizes one full query and serializes it.
func (g *generator) query() string {
	q := g.buildQuery()
	return q.String()
}

func (g *generator) buildQuery() *sparql.Query {
	p := g.p
	q := &sparql.Query{Mods: sparql.Modifiers{Limit: -1, Offset: -1}}
	q.Prologue.Prefixes = g.usedPrefixes()
	r := g.rng.Float64()
	switch {
	case r < p.AskRate:
		q.Type = sparql.AskQuery
	case r < p.AskRate+p.DescribeRate:
		q.Type = sparql.DescribeQuery
	case r < p.AskRate+p.DescribeRate+p.ConstructRate:
		q.Type = sparql.ConstructQuery
	default:
		q.Type = sparql.SelectQuery
	}
	if q.Type == sparql.DescribeQuery {
		q.DescribeTerms = []sparql.Term{g.entity()}
		if !g.chance(p.BodylessDescribe) && g.chance(0.1) {
			body, _ := g.body(1 + g.rng.Intn(2))
			q.Where = body
		}
		g.modifiers(q)
		return q
	}
	nTriples := g.tripleCount()
	body, vars := g.body(nTriples)
	q.Where = body
	if q.Type == sparql.ConstructQuery {
		q.Template = collectTriples(body)
		if len(q.Template) == 0 {
			q.Template = []*sparql.TriplePattern{{
				S: sparql.Variable("s"), P: g.predicate(), O: sparql.Variable("o"),
			}}
			q.Where = &sparql.Group{Elems: []sparql.Pattern{q.Template[0]}}
		}
		g.modifiers(q)
		return q
	}
	// ASK queries over concrete triples (no variables) are common: the
	// paper notes most ASK queries do not use variables.
	if q.Type == sparql.AskQuery && g.chance(0.6) {
		q.Where = &sparql.Group{Elems: []sparql.Pattern{
			&sparql.TriplePattern{S: g.entity(), P: g.predicate(), O: g.entity()},
		}}
		g.modifiers(q)
		return q
	}
	// Projection and SELECT clause.
	if q.Type == sparql.SelectQuery {
		g.selectClause(q, vars)
	}
	g.modifiers(q)
	return q
}

func (g *generator) usedPrefixes() []sparql.PrefixDecl {
	// Most queries declare the prefixes they use; a fraction declares the
	// full boilerplate block (typical of endpoint UIs).
	if g.chance(0.5) {
		return append([]sparql.PrefixDecl{}, prefixDecls...)
	}
	return []sparql.PrefixDecl{prefixDecls[0], prefixDecls[1]}
}

func (g *generator) tripleCount() int {
	r := g.rng.Float64()
	acc := 0.0
	for i, p := range g.p.TripleDist {
		acc += p
		if r < acc {
			return i
		}
	}
	// Tail beyond 11: geometric.
	n := 12
	for g.chance(0.7) && n < 200 {
		n += 1 + g.rng.Intn(8)
	}
	return n
}

// body builds the WHERE group: a shaped set of triples plus operator
// decorations. It returns the group and the variables introduced.
func (g *generator) body(nTriples int) (*sparql.Group, []string) {
	grp := &sparql.Group{}
	var vars []string
	newVar := func() string {
		v := fmt.Sprintf("v%d", len(vars))
		vars = append(vars, v)
		return v
	}
	if nTriples == 0 {
		return grp, vars
	}
	triples := g.shapedTriples(nTriples, newVar)
	// Decide operator decorations.
	p := g.p
	useOpt := g.chance(p.OptRate) && len(triples) >= 2
	useUnion := g.chance(p.UnionRate) && len(triples) >= 2
	useGraph := g.chance(p.GraphRate)
	useFilter := g.chance(p.FilterRate) && len(vars) > 0
	if len(triples) >= 3 && g.chance(p.ComboRate) {
		// Correlated complex queries: the "A, O, U, F" row of Table 3.
		useOpt, useUnion, useFilter = true, true, true
	}
	usePath := g.chance(p.PathRate)
	useSub := g.chance(p.SubqueryRate) && len(triples) >= 2
	useService := g.chance(p.ServiceRate)
	useBind := g.chance(p.BindRate) && len(vars) > 0
	useMinus := g.chance(p.MinusRate)
	useNotExists := g.chance(p.NotExistsRate) && len(vars) > 0

	if usePath && len(triples) > 0 {
		// Replace the first triple with a property-path pattern.
		t := triples[0]
		pp := &sparql.PathPattern{S: t.S, Path: g.pathExpr(), O: t.O}
		grp.Elems = append(grp.Elems, pp)
		triples = triples[1:]
	}
	var main []*sparql.TriplePattern
	var optPart []*sparql.TriplePattern
	var unionPart []*sparql.TriplePattern
	rest := triples
	if useOpt {
		cut := 1 + g.rng.Intn(len(rest)/2+1)
		optPart = rest[len(rest)-cut:]
		rest = rest[:len(rest)-cut]
	}
	if useUnion && len(rest) >= 2 {
		unionPart = rest[len(rest)-1:]
		rest = rest[:len(rest)-1]
	}
	main = rest
	for _, t := range main {
		grp.Elems = append(grp.Elems, t)
	}
	if useSub && len(main) > 0 {
		// Wrap an extra fresh triple in a subquery sharing one variable.
		v := vars[g.rng.Intn(len(vars))]
		sub := &sparql.Query{
			Type:   sparql.SelectQuery,
			Mods:   sparql.Modifiers{Limit: 10, HasLimit: true, Offset: -1},
			Select: []sparql.SelectItem{{Var: sparql.Variable(v)}},
			Where: &sparql.Group{Elems: []sparql.Pattern{
				&sparql.TriplePattern{S: sparql.Variable(v), P: g.predicate(), O: g.entity()},
			}},
		}
		grp.Elems = append(grp.Elems, &sparql.SubSelect{Query: sub})
	}
	if len(unionPart) > 0 {
		left := &sparql.Group{Elems: []sparql.Pattern{unionPart[0]}}
		altTriple := &sparql.TriplePattern{S: unionPart[0].S, P: g.predicate(), O: unionPart[0].O}
		right := &sparql.Group{Elems: []sparql.Pattern{altTriple}}
		grp.Elems = append(grp.Elems, &sparql.Union{Left: left, Right: right})
	}
	if len(optPart) > 0 {
		inner := &sparql.Group{}
		for _, t := range optPart {
			inner.Elems = append(inner.Elems, t)
		}
		if g.chance(g.p.NotWellDesignedRate) && len(main) > 0 {
			// Violate Definition 5.3: the OPTIONAL introduces a variable
			// that also occurs after the OPTIONAL block.
			leak := newVar()
			inner.Elems = append(inner.Elems, &sparql.TriplePattern{
				S: optPart[0].S, P: g.predicate(), O: sparql.Variable(leak),
			})
			grp.Elems = append(grp.Elems, &sparql.Optional{Inner: inner})
			grp.Elems = append(grp.Elems, &sparql.TriplePattern{
				S: main[0].S, P: g.predicate(), O: sparql.Variable(leak),
			})
		} else if g.chance(g.p.WideInterfaceRate) && len(main) > 0 && len(optPart) > 0 {
			// Interface width 2: the OPTIONAL repeats two main variables.
			inner2 := &sparql.Group{Elems: []sparql.Pattern{
				&sparql.TriplePattern{S: main[0].S, P: g.predicate(), O: main[0].O},
			}}
			grp.Elems = append(grp.Elems, &sparql.Optional{Inner: inner2})
		} else {
			grp.Elems = append(grp.Elems, &sparql.Optional{Inner: inner})
		}
	}
	if useFilter {
		grp.Elems = append(grp.Elems, &sparql.Filter{Constraint: g.filterExpr(vars)})
	}
	if useBind {
		v := vars[g.rng.Intn(len(vars))]
		grp.Elems = append(grp.Elems, &sparql.Bind{
			Expr: &sparql.FuncCall{Name: "STR", Args: []sparql.Expr{&sparql.TermExpr{Term: sparql.Variable(v)}}},
			Var:  sparql.Variable(newVar()),
		})
	}
	if useMinus && len(vars) > 0 {
		v := vars[0]
		grp.Elems = append(grp.Elems, &sparql.MinusGraph{Inner: &sparql.Group{Elems: []sparql.Pattern{
			&sparql.TriplePattern{S: sparql.Variable(v), P: g.predicate(), O: g.entity()},
		}}})
	}
	if useNotExists {
		v := vars[g.rng.Intn(len(vars))]
		// A small share of EXISTS constraints is positive (Table 2 finds
		// plain Exists two orders of magnitude rarer than Not Exists).
		grp.Elems = append(grp.Elems, &sparql.Filter{Constraint: &sparql.ExistsExpr{
			Not: !g.chance(0.05),
			Pattern: &sparql.Group{Elems: []sparql.Pattern{
				&sparql.TriplePattern{S: sparql.Variable(v), P: g.predicate(), O: g.entity()},
			}},
		}})
	}
	if useService {
		inner := &sparql.Group{Elems: []sparql.Pattern{
			&sparql.TriplePattern{S: sparql.Variable("svc"), P: g.predicate(), O: sparql.Variable("svcv")},
		}}
		grp.Elems = append(grp.Elems, &sparql.ServiceGraph{
			Name:  sparql.IRI("http://example.org/sparql"),
			Inner: inner,
		})
	}
	if useGraph {
		inner := grp
		outer := &sparql.Group{Elems: []sparql.Pattern{
			&sparql.GraphGraph{Name: sparql.IRI("http://graphs.example.org/g1"), Inner: inner},
		}}
		return outer, vars
	}
	return grp, vars
}

// shapedTriples builds n triples whose canonical graph follows the
// profile's shape mix.
func (g *generator) shapedTriples(n int, newVar func() string) []*sparql.TriplePattern {
	p := g.p
	termFor := func(v string) sparql.Term { return sparql.Variable(v) }
	leafTerm := func() sparql.Term {
		if g.chance(p.ConstantObjectRate) {
			if g.chance(0.3) {
				g.seq++
				return sparql.Term{Kind: sparql.TermLiteral, Value: fmt.Sprintf("value %d", g.seq)}
			}
			return g.entity()
		}
		return sparql.Variable(newVar())
	}
	predTerm := func() sparql.Term {
		if g.chance(p.VarPredicateRate) {
			return sparql.Variable(newVar())
		}
		return g.predicate()
	}
	var out []*sparql.TriplePattern
	if n == 1 {
		s := sparql.Variable(newVar())
		out = append(out, &sparql.TriplePattern{S: s, P: predTerm(), O: leafTerm()})
		return out
	}
	total := p.ShapeChain + p.ShapeStar + p.ShapeTree + p.ShapeFlower + p.ShapeCycle
	if total <= 0 {
		total = 1
	}
	r := g.rng.Float64() * total
	switch {
	case r < p.ShapeChain:
		cur := newVar()
		for i := 0; i < n; i++ {
			next := newVar()
			o := termFor(next)
			if i == n-1 && g.chance(p.ConstantObjectRate) {
				o = leafTerm()
			}
			out = append(out, &sparql.TriplePattern{S: termFor(cur), P: predTerm(), O: o})
			cur = next
		}
	case r < p.ShapeChain+p.ShapeStar:
		center := newVar()
		for i := 0; i < n; i++ {
			out = append(out, &sparql.TriplePattern{S: termFor(center), P: predTerm(), O: leafTerm()})
		}
	case r < p.ShapeChain+p.ShapeStar+p.ShapeTree:
		nodes := []string{newVar()}
		for i := 0; i < n; i++ {
			parent := nodes[g.rng.Intn(len(nodes))]
			child := newVar()
			nodes = append(nodes, child)
			out = append(out, &sparql.TriplePattern{S: termFor(parent), P: predTerm(), O: termFor(child)})
		}
	case r < p.ShapeChain+p.ShapeStar+p.ShapeTree+p.ShapeFlower && n >= 4:
		// Flower: a petal (two 2-paths center..target) plus stamens.
		center, mid1, mid2, target := newVar(), newVar(), newVar(), newVar()
		out = append(out,
			&sparql.TriplePattern{S: termFor(center), P: g.predicate(), O: termFor(mid1)},
			&sparql.TriplePattern{S: termFor(mid1), P: g.predicate(), O: termFor(target)},
			&sparql.TriplePattern{S: termFor(center), P: g.predicate(), O: termFor(mid2)},
			&sparql.TriplePattern{S: termFor(mid2), P: g.predicate(), O: termFor(target)},
		)
		for len(out) < n {
			out = append(out, &sparql.TriplePattern{S: termFor(center), P: g.predicate(), O: leafTerm()})
		}
	default:
		if n < 3 {
			// Too small for a cycle: fall back to a chain.
			cur := newVar()
			for i := 0; i < n; i++ {
				next := newVar()
				out = append(out, &sparql.TriplePattern{S: termFor(cur), P: predTerm(), O: termFor(next)})
				cur = next
			}
			return out
		}
		first := newVar()
		cur := first
		for i := 0; i < n-1; i++ {
			next := newVar()
			out = append(out, &sparql.TriplePattern{S: termFor(cur), P: g.predicate(), O: termFor(next)})
			cur = next
		}
		out = append(out, &sparql.TriplePattern{S: termFor(cur), P: g.predicate(), O: termFor(first)})
	}
	return out
}

func (g *generator) filterExpr(vars []string) sparql.Expr {
	v := sparql.Variable(vars[g.rng.Intn(len(vars))])
	r := g.rng.Float64()
	switch {
	case r < g.p.EqualityFilterRate && len(vars) >= 2:
		w := sparql.Variable(vars[g.rng.Intn(len(vars))])
		return &sparql.BinaryExpr{Op: "=", L: &sparql.TermExpr{Term: v}, R: &sparql.TermExpr{Term: w}}
	case r < g.p.EqualityFilterRate+g.p.ComplexFilterRate && len(vars) >= 2:
		w := sparql.Variable(vars[(g.rng.Intn(len(vars)))])
		return &sparql.BinaryExpr{Op: ">", L: &sparql.TermExpr{Term: v}, R: &sparql.TermExpr{Term: w}}
	case g.chance(0.5):
		// lang(?v) = "en"
		return &sparql.BinaryExpr{
			Op: "=",
			L:  &sparql.FuncCall{Name: "LANG", Args: []sparql.Expr{&sparql.TermExpr{Term: v}}},
			R:  &sparql.TermExpr{Term: sparql.Literal("en")},
		}
	default:
		g.seq++
		num := sparql.Term{Kind: sparql.TermLiteral, Value: fmt.Sprintf("%d", 1900+g.seq%120),
			Datatype: "http://www.w3.org/2001/XMLSchema#integer"}
		return &sparql.BinaryExpr{Op: ">", L: &sparql.TermExpr{Term: v}, R: &sparql.TermExpr{Term: num}}
	}
}

// pathExpr samples a navigational property path approximating the Table 5
// mix (plus the trivial forms at their corpus rates).
func (g *generator) pathExpr() sparql.PathExpr {
	lit := func() sparql.PathExpr {
		return &sparql.PathIRI{IRI: g.pred[g.rng.Intn(len(g.pred))]}
	}
	r := g.rng.Float64()
	switch {
	case r < 0.255:
		return &sparql.PathNeg{Set: []sparql.PathExpr{lit()}} // !a (trivial)
	case r < 0.256:
		return &sparql.PathInverse{X: lit()} // ^a (trivial)
	case r < 0.55:
		k := 2 + g.rng.Intn(3)
		parts := make([]sparql.PathExpr, k)
		for i := range parts {
			parts[i] = lit()
		}
		return &sparql.PathMod{X: &sparql.PathAlt{Parts: parts}, Mod: '*'}
	case r < 0.74:
		return &sparql.PathMod{X: lit(), Mod: '*'}
	case r < 0.83:
		k := 2 + g.rng.Intn(5)
		parts := make([]sparql.PathExpr, k)
		for i := range parts {
			parts[i] = lit()
		}
		return &sparql.PathSeq{Parts: parts}
	case r < 0.90:
		return &sparql.PathSeq{Parts: []sparql.PathExpr{&sparql.PathMod{X: lit(), Mod: '*'}, lit()}}
	case r < 0.96:
		k := 2 + g.rng.Intn(5)
		parts := make([]sparql.PathExpr, k)
		for i := range parts {
			parts[i] = lit()
		}
		return &sparql.PathAlt{Parts: parts}
	case r < 0.98:
		return &sparql.PathMod{X: lit(), Mod: '+'}
	case r < 0.995:
		k := 1 + g.rng.Intn(5)
		parts := make([]sparql.PathExpr, k)
		for i := range parts {
			parts[i] = &sparql.PathMod{X: lit(), Mod: '?'}
		}
		if k == 1 {
			return parts[0]
		}
		return &sparql.PathSeq{Parts: parts}
	default:
		// The rare non-Ctract expression (a/b)*.
		return &sparql.PathMod{X: &sparql.PathSeq{Parts: []sparql.PathExpr{lit(), lit()}}, Mod: '*'}
	}
}

func (g *generator) selectClause(q *sparql.Query, vars []string) {
	p := g.p
	if g.chance(p.AggregateRate) {
		// COUNT dominates real logs (Table 2: Count 0.57% vs Max 0.01%);
		// the remaining aggregates appear with small weights.
		var agg *sparql.AggregateExpr
		switch r := g.rng.Float64(); {
		case r < 0.80:
			agg = &sparql.AggregateExpr{Name: "COUNT", Star: true}
		case r < 0.86 && len(vars) > 0:
			agg = &sparql.AggregateExpr{Name: "MAX", Arg: &sparql.TermExpr{Term: sparql.Variable(vars[0])}}
		case r < 0.92 && len(vars) > 0:
			agg = &sparql.AggregateExpr{Name: "MIN", Arg: &sparql.TermExpr{Term: sparql.Variable(vars[0])}}
		case r < 0.95 && len(vars) > 0:
			agg = &sparql.AggregateExpr{Name: "AVG", Arg: &sparql.TermExpr{Term: sparql.Variable(vars[0])}}
		case r < 0.97 && len(vars) > 0:
			agg = &sparql.AggregateExpr{Name: "SUM", Arg: &sparql.TermExpr{Term: sparql.Variable(vars[0])}}
		default:
			agg = &sparql.AggregateExpr{Name: "COUNT", Star: true}
		}
		q.Select = []sparql.SelectItem{{Var: sparql.Variable("agg"), Expr: agg}}
		if g.chance(p.GroupByRate*3) && len(vars) > 0 {
			q.Mods.GroupBy = []sparql.GroupKey{{Expr: &sparql.TermExpr{Term: sparql.Variable(vars[0])}}}
			q.Select = append([]sparql.SelectItem{{Var: sparql.Variable(vars[0])}}, q.Select...)
			if g.chance(0.08) {
				q.Mods.Having = []sparql.Expr{&sparql.BinaryExpr{
					Op: ">",
					L:  &sparql.AggregateExpr{Name: "COUNT", Star: true},
					R:  &sparql.TermExpr{Term: sparql.Term{Kind: sparql.TermLiteral, Value: "1", Datatype: "http://www.w3.org/2001/XMLSchema#integer"}},
				}}
			}
		}
		return
	}
	if len(vars) == 0 || g.chance(0.45) {
		q.SelectStar = true
		return
	}
	// Explicit variable list; a strict subset drives the projection rate.
	k := len(vars)
	if g.chance(0.35) && k > 1 {
		k = 1 + g.rng.Intn(k-1)
	}
	for i := 0; i < k; i++ {
		q.Select = append(q.Select, sparql.SelectItem{Var: sparql.Variable(vars[i])})
	}
}

func (g *generator) modifiers(q *sparql.Query) {
	p := g.p
	if g.chance(p.DistinctRate) && q.Type == sparql.SelectQuery {
		q.Distinct = true
	}
	if g.chance(p.LimitRate) {
		q.Mods.Limit = int64(10 * (1 + g.rng.Intn(10)))
		q.Mods.HasLimit = true
	}
	if g.chance(p.OffsetRate) {
		q.Mods.Offset = int64(10 * g.rng.Intn(20))
		q.Mods.HasOffset = true
	}
	if g.chance(p.OrderByRate) && q.Type == sparql.SelectQuery && len(q.Select) > 0 && q.Select[0].Expr == nil {
		q.Mods.OrderBy = []sparql.OrderKey{{Expr: &sparql.TermExpr{Term: q.Select[0].Var}}}
	}
}

func collectTriples(p sparql.Pattern) []*sparql.TriplePattern {
	var out []*sparql.TriplePattern
	sparql.Walk(p, func(n sparql.Pattern) bool {
		if t, ok := n.(*sparql.TriplePattern); ok {
			out = append(out, t)
		}
		return true
	})
	return out
}
