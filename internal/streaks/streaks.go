// Package streaks implements the query-evolution analysis of Section 8 of
// the paper: detecting streaks, i.e. sequences of queries that appear as
// subsequent modifications of a seed query within a sliding window.
//
// Two queries are similar when their normalized Levenshtein distance —
// measured after stripping namespace prefixes — is at most a threshold
// (the paper uses 25%). Query qj matches qi (i < j) when they are similar
// and no intermediate query is similar to qi. A streak with window size w
// is a chain q_{i1}, ..., q_{ik} where consecutive elements match and are
// at most w positions apart.
package streaks

import "strings"

// DefaultThreshold is the paper's similarity bound: normalized Levenshtein
// distance at most 25%.
const DefaultThreshold = 0.25

// DefaultWindow is the paper's window size.
const DefaultWindow = 30

// Normalize strips everything before the first query-form keyword
// (SELECT, ASK, CONSTRUCT, DESCRIBE), removing BASE and PREFIX
// declarations that would introduce superficial similarity.
func Normalize(query string) string {
	upper := strings.ToUpper(query)
	best := -1
	for _, kw := range []string{"SELECT", "ASK", "CONSTRUCT", "DESCRIBE"} {
		if i := strings.Index(upper, kw); i >= 0 && (best == -1 || i < best) {
			best = i
		}
	}
	if best <= 0 {
		return query
	}
	return query[best:]
}

// Levenshtein computes the edit distance between a and b with unit costs.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if d := prev[j] + 1; d < m {
				m = d
			}
			if d := cur[j-1] + 1; d < m {
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

// LevenshteinWithin reports whether the edit distance between a and b is
// at most maxDist, using a banded dynamic program that abandons rows whose
// minimum already exceeds the bound. This is the hot path of streak
// detection: most query pairs are dissimilar and exit after a few rows.
func LevenshteinWithin(a, b string, maxDist int) bool {
	la, lb := len(a), len(b)
	if la-lb > maxDist || lb-la > maxDist {
		return false
	}
	if a == b {
		return true
	}
	if la == 0 || lb == 0 {
		// Distance is the other string's length; the prefilter above
		// already verified it fits the bound.
		return true
	}
	const inf = 1 << 30
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		if j <= maxDist {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= la; i++ {
		lo := i - maxDist
		if lo < 1 {
			lo = 1
		}
		hi := i + maxDist
		if hi > lb {
			hi = lb
		}
		if lo == 1 {
			if i <= maxDist {
				cur[0] = i
			} else {
				cur[0] = inf
			}
		}
		if lo > 1 {
			cur[lo-1] = inf
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if d := prev[j] + 1; d < m {
				m = d
			}
			if d := cur[j-1] + 1; d < m {
				m = d
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if hi < lb {
			cur[hi+1] = inf
		}
		if rowMin > maxDist {
			return false
		}
		prev, cur = cur, prev
	}
	return prev[lb] <= maxDist
}

// Similar reports whether two (already normalized) queries are within the
// threshold: Levenshtein distance divided by the longer length.
func Similar(a, b string, threshold float64) bool {
	longer := len(a)
	if len(b) > longer {
		longer = len(b)
	}
	if longer == 0 {
		return true
	}
	maxDist := int(threshold * float64(longer))
	return LevenshteinWithin(a, b, maxDist)
}

// Streak is one detected chain of gradually modified queries.
type Streak struct {
	// Indices of the member queries in the input log, ascending.
	Indices []int
}

// Len returns the number of queries in the streak.
func (s Streak) Len() int { return len(s.Indices) }

// Options configures streak detection.
type Options struct {
	Window    int     // max gap between consecutive streak members
	Threshold float64 // normalized Levenshtein similarity bound
	// PreNormalized indicates the inputs already had prefixes stripped.
	PreNormalized bool
}

// Find detects all maximal streaks in the query log, following the
// definition of Section 8. A query with no match forms a length-one
// streak. A query may belong to multiple streaks when it matches several
// earlier seeds.
func Find(log []string, opts Options) []Streak {
	if opts.Window <= 0 {
		opts.Window = DefaultWindow
	}
	if opts.Threshold <= 0 {
		opts.Threshold = DefaultThreshold
	}
	norm := log
	if !opts.PreNormalized {
		norm = make([]string, len(log))
		for i, q := range log {
			norm[i] = Normalize(q)
		}
	}
	n := len(norm)
	// next[i] = index of the query matching qi (first similar successor
	// within the window), or -1. Per the definition, the match is the
	// first similar query after i; it extends a streak only if the gap is
	// at most the window size.
	next := make([]int, n)
	hasPred := make([]bool, n)
	for i := 0; i < n; i++ {
		next[i] = -1
		for j := i + 1; j <= i+opts.Window && j < n; j++ {
			if Similar(norm[i], norm[j], opts.Threshold) {
				next[i] = j
				hasPred[j] = true
				break
			}
		}
	}
	var out []Streak
	for i := 0; i < n; i++ {
		if hasPred[i] {
			continue // not a streak head
		}
		s := Streak{Indices: []int{i}}
		for j := next[i]; j != -1; j = next[j] {
			s.Indices = append(s.Indices, j)
		}
		out = append(out, s)
	}
	return out
}

// Histogram buckets streak lengths the way Table 6 does: 1–10, 11–20, ...,
// 91–100, >100.
type Histogram struct {
	Buckets [11]int
	Longest int
}

// BucketLabel names bucket i.
func BucketLabel(i int) string {
	if i == 10 {
		return ">100"
	}
	lo := i*10 + 1
	hi := (i + 1) * 10
	return itoa(lo) + "-" + itoa(hi)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Metrics refines the streak analysis with the intra-streak similarity
// measures the paper names as future work in Section 8: how similar
// consecutive members are on average, and how far the final query
// drifted from the seed.
type Metrics struct {
	// AvgAdjacentSimilarity is the mean normalized similarity (1 -
	// distance/longer) between consecutive streak members.
	AvgAdjacentSimilarity float64
	// SeedDrift is the normalized Levenshtein distance between the first
	// and last member: how far the query evolved in total.
	SeedDrift float64
}

// MetricsOf computes refinement metrics for one streak over the
// (normalized) log it was found in.
func MetricsOf(log []string, s Streak) Metrics {
	var m Metrics
	if s.Len() < 2 {
		m.AvgAdjacentSimilarity = 1
		return m
	}
	sum := 0.0
	for i := 1; i < len(s.Indices); i++ {
		a := Normalize(log[s.Indices[i-1]])
		b := Normalize(log[s.Indices[i]])
		sum += 1 - normDistance(a, b)
	}
	m.AvgAdjacentSimilarity = sum / float64(len(s.Indices)-1)
	first := Normalize(log[s.Indices[0]])
	last := Normalize(log[s.Indices[len(s.Indices)-1]])
	m.SeedDrift = normDistance(first, last)
	return m
}

// normDistance is the Levenshtein distance divided by the longer length.
func normDistance(a, b string) float64 {
	longer := len(a)
	if len(b) > longer {
		longer = len(b)
	}
	if longer == 0 {
		return 0
	}
	return float64(Levenshtein(a, b)) / float64(longer)
}

// HistogramOf aggregates streak lengths.
func HistogramOf(streaks []Streak) Histogram {
	var h Histogram
	for _, s := range streaks {
		l := s.Len()
		if l > h.Longest {
			h.Longest = l
		}
		b := (l - 1) / 10
		if b > 10 {
			b = 10
		}
		h.Buckets[b]++
	}
	return h
}
