package streaks

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinBasics(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "xyz", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abd", 1},
	}
	for _, tc := range tests {
		if got := Levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

// Property: the banded LevenshteinWithin agrees with the full DP.
func TestBandedAgreesWithFull(t *testing.T) {
	alphabet := "abQ "
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() string {
			n := rng.Intn(24)
			var sb strings.Builder
			for i := 0; i < n; i++ {
				sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
			}
			return sb.String()
		}
		a, b := mk(), mk()
		maxDist := rng.Intn(10)
		return LevenshteinWithin(a, b, maxDist) == (Levenshtein(a, b) <= maxDist)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNormalizeStripsPrefixes(t *testing.T) {
	q := "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\nSELECT ?x WHERE { ?x foaf:name ?n }"
	got := Normalize(q)
	if !strings.HasPrefix(got, "SELECT") {
		t.Errorf("Normalize = %q", got)
	}
	// Lowercase keyword still found.
	q2 := "prefix a: <http://x/> select * where { ?s ?p ?o }"
	if !strings.HasPrefix(Normalize(q2), "select") {
		t.Errorf("Normalize lowercase = %q", Normalize(q2))
	}
	// Query without keyword unchanged.
	if Normalize("garbage") != "garbage" {
		t.Error("no-keyword input should pass through")
	}
}

func TestSimilarThreshold(t *testing.T) {
	a := "SELECT ?x WHERE { ?x <p> <o1> }"
	b := "SELECT ?x WHERE { ?x <p> <o2> }"
	if !Similar(a, b, 0.25) {
		t.Error("one-character change should be similar")
	}
	c := "CONSTRUCT { ?a <q> ?b } WHERE { ?a <completely> ?different }"
	if Similar(a, c, 0.25) {
		t.Error("different queries should not be similar")
	}
	if !Similar("", "", 0.25) {
		t.Error("empty strings are similar")
	}
}

func TestFindSimpleStreak(t *testing.T) {
	log := []string{
		"SELECT ?x WHERE { ?x <p> <o1> }",
		"SELECT ?x WHERE { ?x <p> <o2> }",
		"SELECT ?x WHERE { ?x <p> <o3> . }",
		"CONSTRUCT { ?a <zzz> ?b } WHERE { ?a <unrelated> ?b }",
	}
	streaks := Find(log, Options{Window: 30, Threshold: 0.25})
	// One streak of length 3 (the gradually modified query) and one
	// singleton.
	if len(streaks) != 2 {
		t.Fatalf("streaks = %d, want 2", len(streaks))
	}
	if streaks[0].Len() != 3 {
		t.Errorf("first streak length = %d, want 3", streaks[0].Len())
	}
	if streaks[1].Len() != 1 {
		t.Errorf("second streak length = %d, want 1", streaks[1].Len())
	}
}

func TestFindWindowLimits(t *testing.T) {
	// Similar queries 3 positions apart with window 2: no chain.
	filler1 := "CONSTRUCT { ?z <aaaa> ?w } WHERE { ?z <aaaa> ?w }"
	filler2 := "DESCRIBE <http://example.org/completely-unrelated-resource>"
	log := []string{
		"SELECT ?x WHERE { ?x <p> <o1> }",
		filler1,
		filler2,
		"SELECT ?x WHERE { ?x <p> <o2> }",
	}
	streaks := Find(log, Options{Window: 2, Threshold: 0.25})
	for _, s := range streaks {
		if s.Len() != 1 {
			t.Errorf("window 2 should keep all streaks singleton, got %v", s.Indices)
		}
	}
	// Window 3 chains them.
	streaks2 := Find(log, Options{Window: 3, Threshold: 0.25})
	found := false
	for _, s := range streaks2 {
		if s.Len() == 2 {
			found = true
		}
	}
	if !found {
		t.Error("window 3 should produce a length-2 streak")
	}
}

func TestMatchIsFirstSimilar(t *testing.T) {
	// q0 similar to both q1 and q2; the match must be q1 (the first), and
	// the streak continues from q1.
	log := []string{
		"SELECT ?x WHERE { ?x <p> <o1> }",
		"SELECT ?x WHERE { ?x <p> <o2> }",
		"SELECT ?x WHERE { ?x <p> <o3> }",
	}
	streaks := Find(log, Options{Window: 30, Threshold: 0.25})
	if len(streaks) != 1 || streaks[0].Len() != 3 {
		t.Fatalf("streaks = %+v, want single chain 0-1-2", streaks)
	}
	want := []int{0, 1, 2}
	for i, idx := range streaks[0].Indices {
		if idx != want[i] {
			t.Errorf("indices = %v, want %v", streaks[0].Indices, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	mk := func(l int) Streak {
		s := Streak{}
		for i := 0; i < l; i++ {
			s.Indices = append(s.Indices, i)
		}
		return s
	}
	h := HistogramOf([]Streak{mk(1), mk(10), mk(11), mk(55), mk(101), mk(169)})
	if h.Buckets[0] != 2 {
		t.Errorf("bucket 1-10 = %d, want 2", h.Buckets[0])
	}
	if h.Buckets[1] != 1 || h.Buckets[5] != 1 || h.Buckets[10] != 2 {
		t.Errorf("buckets = %v", h.Buckets)
	}
	if h.Longest != 169 {
		t.Errorf("longest = %d, want 169", h.Longest)
	}
	if BucketLabel(0) != "1-10" || BucketLabel(10) != ">100" || BucketLabel(5) != "51-60" {
		t.Errorf("labels wrong: %s %s %s", BucketLabel(0), BucketLabel(10), BucketLabel(5))
	}
}

func TestStreakMetrics(t *testing.T) {
	log := []string{
		"SELECT ?x WHERE { ?x <p> <o1> }",
		"SELECT ?x WHERE { ?x <p> <o2> }",
		"SELECT ?x WHERE { ?x <p> <o3> . }",
	}
	streaks := Find(log, Options{Window: 30, Threshold: 0.25})
	if len(streaks) != 1 {
		t.Fatalf("streaks = %d", len(streaks))
	}
	m := MetricsOf(log, streaks[0])
	if m.AvgAdjacentSimilarity < 0.9 {
		t.Errorf("adjacent similarity = %.2f, want high", m.AvgAdjacentSimilarity)
	}
	if m.SeedDrift <= 0 || m.SeedDrift > 0.25 {
		t.Errorf("seed drift = %.2f, want small positive", m.SeedDrift)
	}
	// Singleton streak: perfect similarity, zero drift.
	single := Streak{Indices: []int{0}}
	sm := MetricsOf(log, single)
	if sm.AvgAdjacentSimilarity != 1 || sm.SeedDrift != 0 {
		t.Errorf("singleton metrics = %+v", sm)
	}
}

func TestPrefixStrippingAffectsSimilarity(t *testing.T) {
	// Long shared prefix block would make dissimilar queries pass; the
	// normalization must remove it.
	prefix := "PREFIX dbo: <http://dbpedia.org/ontology/> PREFIX foaf: <http://xmlns.com/foaf/0.1/> PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> "
	a := prefix + "SELECT ?x WHERE { ?x dbo:birthPlace ?y }"
	b := prefix + "ASK { ?q foaf:name \"Z\" }"
	if Similar(Normalize(a), Normalize(b), 0.25) {
		t.Error("queries differing in body must be dissimilar after normalization")
	}
}
