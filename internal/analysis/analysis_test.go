package analysis

import (
	"testing"

	"sparqlog/internal/sparql"
)

func parse(t *testing.T, src string) *sparql.Query {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

func TestKeywordsBasic(t *testing.T) {
	q := parse(t, `SELECT DISTINCT ?s WHERE {
		?s <p> ?o .
		OPTIONAL { ?s <q> ?x }
		FILTER (?o > 1)
		{ ?s <a> ?b } UNION { ?s <c> ?d }
		GRAPH <g> { ?s <e> ?f }
	} ORDER BY ?s LIMIT 10 OFFSET 5`)
	k := QueryKeywords(q)
	if !k.Select || k.Ask {
		t.Error("query type flags wrong")
	}
	for name, got := range map[string]bool{
		"Distinct": k.Distinct, "Limit": k.Limit, "Offset": k.Offset,
		"OrderBy": k.OrderBy, "Filter": k.Filter, "And": k.And,
		"Union": k.Union, "Opt": k.Opt, "Graph": k.Graph,
	} {
		if !got {
			t.Errorf("keyword %s not detected", name)
		}
	}
	if k.Minus || k.NotExists || k.GroupBy {
		t.Error("false positives in keyword scan")
	}
}

func TestKeywordsAndSemantics(t *testing.T) {
	// A single triple has no And.
	if QueryKeywords(parse(t, "SELECT * WHERE { ?s <p> ?o }")).And {
		t.Error("single triple must not set And")
	}
	// Two triples have And.
	if !QueryKeywords(parse(t, "SELECT * WHERE { ?s <p> ?o . ?o <q> ?z }")).And {
		t.Error("two triples must set And")
	}
	// Triple + FILTER does not create And.
	if QueryKeywords(parse(t, "SELECT * WHERE { ?s <p> ?o FILTER(?o > 1) }")).And {
		t.Error("triple+filter must not set And")
	}
	// Triple + OPTIONAL does not create And.
	if QueryKeywords(parse(t, "SELECT * WHERE { ?s <p> ?o OPTIONAL { ?s <q> ?x } }")).And {
		t.Error("triple+optional must not set And")
	}
}

func TestKeywordsAggregatesAndNegation(t *testing.T) {
	q := parse(t, `SELECT (COUNT(*) AS ?n) (MAX(?v) AS ?m) WHERE {
		?s <p> ?v FILTER NOT EXISTS { ?s <bad> ?x }
		MINUS { ?s <worse> ?y }
	} GROUP BY ?s HAVING (SUM(?v) > 10)`)
	k := QueryKeywords(q)
	if !k.Count || !k.Max || !k.Sum || !k.GroupBy || !k.Having {
		t.Errorf("aggregate flags = %+v", k)
	}
	if !k.NotExists || !k.Minus {
		t.Error("negation flags missing")
	}
	if k.Exists {
		t.Error("plain EXISTS should not be set for NOT EXISTS")
	}
}

func TestKeywordsSubquery(t *testing.T) {
	q := parse(t, `SELECT ?s WHERE { { SELECT DISTINCT ?s WHERE { ?s <p> ?o } LIMIT 3 } }`)
	k := QueryKeywords(q)
	if !k.SubQuery || !k.Distinct || !k.Limit {
		t.Errorf("subquery keyword merge failed: %+v", k)
	}
	if k.Ask {
		t.Error("inner select must not set outer type flags")
	}
}

func TestTripleCount(t *testing.T) {
	tests := []struct {
		src  string
		want int
	}{
		{"SELECT * WHERE { ?s ?p ?o }", 1},
		{"SELECT * WHERE { ?s <p> ?o . ?o <q> ?z . ?z <r> ?w }", 3},
		{"ASK { ?x <a>/<b>* ?y }", 1}, // property path counts as one
		{"DESCRIBE <x>", 0},
		{"SELECT * WHERE { ?s <p> ?o OPTIONAL { ?o <q> ?z . ?z <r> ?w } }", 3},
	}
	for _, tc := range tests {
		if got := TripleCount(parse(t, tc.src)); got != tc.want {
			t.Errorf("TripleCount(%q) = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestOperatorSets(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"SELECT * WHERE { ?s ?p ?o }", "none"},
		{"SELECT * WHERE { ?s ?p ?o . ?o ?q ?z }", "A"},
		{"SELECT * WHERE { ?s ?p ?o FILTER(?o > 1) }", "F"},
		{"SELECT * WHERE { ?s ?p ?o . ?o ?q ?z FILTER(?o > 1) }", "A, F"},
		{"SELECT * WHERE { ?s ?p ?o OPTIONAL { ?s <q> ?x } }", "O"},
		{"SELECT * WHERE { { ?s <a> ?o } UNION { ?s <b> ?o } }", "U"},
		{"SELECT * WHERE { GRAPH <g> { ?s ?p ?o } }", "G"},
		{"SELECT * WHERE { ?s <p> ?o . ?o <q> ?z OPTIONAL { ?s <r> ?w } FILTER(?z != 1) }", "A, O, F"},
		{"SELECT * WHERE { ?s <p> ?o BIND(?o AS ?b) }", "other"},
		{"SELECT * WHERE { ?s <p>* ?o }", "other"},
		{"SELECT * WHERE { ?s <p> ?o MINUS { ?s <q> ?o } }", "other"},
		{"SELECT * WHERE { ?s <p> ?o FILTER EXISTS { ?s <q> ?x } }", "other"},
		{"DESCRIBE <x>", "none"},
	}
	for _, tc := range tests {
		if got := Operators(parse(t, tc.src)).Key(); got != tc.want {
			t.Errorf("Operators(%q) = %s, want %s", tc.src, got, tc.want)
		}
	}
}

func TestDistributionSubtotals(t *testing.T) {
	d := NewDistribution()
	for _, src := range []string{
		"SELECT * WHERE { ?s ?p ?o }",                          // none
		"SELECT * WHERE { ?s ?p ?o FILTER(?o>1) }",             // F
		"SELECT * WHERE { ?s ?p ?o . ?o ?q ?z }",               // A
		"SELECT * WHERE { ?s ?p ?o OPTIONAL { ?s <q> ?x } }",   // O
		"SELECT * WHERE { { ?s <a> ?o } UNION { ?s <b> ?o } }", // U
		"SELECT * WHERE { GRAPH <g> { ?s ?p ?o } }",            // G
	} {
		d.Add(Operators(parse(t, src)))
	}
	if got := d.CPFSubtotal(); got != 3 {
		t.Errorf("CPF subtotal = %d, want 3", got)
	}
	if d.PlusOpt() != 1 || d.PlusUnion() != 1 || d.PlusGraph() != 1 {
		t.Errorf("plus counts = %d/%d/%d", d.PlusOpt(), d.PlusUnion(), d.PlusGraph())
	}
}

func TestProjection(t *testing.T) {
	tests := []struct {
		src  string
		want ProjectionVerdict
	}{
		{"SELECT * WHERE { ?s ?p ?o }", NoProjection},
		{"SELECT ?s ?p ?o WHERE { ?s ?p ?o }", NoProjection},
		{"SELECT ?s WHERE { ?s ?p ?o }", UsesProjection},
		{"ASK { <s> <p> <o> }", NoProjection},
		{"ASK { ?s <p> <o> }", UsesProjection},
		// Variables only inside a FILTER are not in scope.
		{"SELECT ?s WHERE { ?s <p> <o> FILTER(?x > 1) }", NoProjection},
		// MINUS does not bind outer variables.
		{"SELECT ?s WHERE { ?s <p> <o> MINUS { ?s <q> ?hidden } }", NoProjection},
		// BIND-only unprojected variable: indeterminate.
		{"SELECT ?s WHERE { ?s <p> ?o BIND(str(?o) AS ?b) }", UsesProjection},
		{"SELECT ?s ?o WHERE { ?s <p> ?o BIND(str(?o) AS ?b) }", Indeterminate},
		// Subquery exposes only its projection.
		{"SELECT ?s WHERE { { SELECT ?s WHERE { ?s <p> ?inner } } }", NoProjection},
		{"SELECT ?s WHERE { ?s <p> ?o . { SELECT ?o WHERE { ?o <q> ?z } } }", UsesProjection},
		// Describe/Construct are not classified.
		{"DESCRIBE ?x WHERE { ?x <p> ?y }", NoProjection},
	}
	for _, tc := range tests {
		if got := Projection(parse(t, tc.src)); got != tc.want {
			t.Errorf("Projection(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestUsesSubqueries(t *testing.T) {
	if UsesSubqueries(parse(t, "SELECT * WHERE { ?s ?p ?o }")) {
		t.Error("false positive")
	}
	if !UsesSubqueries(parse(t, "SELECT ?s WHERE { { SELECT ?s WHERE { ?s <p> ?o } } }")) {
		t.Error("subquery not detected")
	}
}

func TestFragmentsCQ(t *testing.T) {
	f := ClassifyFragments(parse(t, "SELECT * WHERE { ?s <p> ?o . ?o <q> ?z }"))
	if !f.AOF || !f.CQ || !f.CPF || !f.CQF || !f.WellDesigned || !f.CQOF {
		t.Errorf("fragments = %+v, want all CQ-like flags", f)
	}
	if f.HasVarPredicate {
		t.Error("no variable predicates here")
	}
}

func TestFragmentsCPFAndCQF(t *testing.T) {
	// Simple filter (one variable): CQF.
	f := ClassifyFragments(parse(t, "SELECT * WHERE { ?s <p> ?o FILTER(?o > 1) }"))
	if !f.CPF || !f.CQF || f.CQ {
		t.Errorf("simple filter: %+v", f)
	}
	// Equality of two variables: still CQF.
	f2 := ClassifyFragments(parse(t, "SELECT * WHERE { ?s <p> ?o . ?s <q> ?z FILTER(?o = ?z) }"))
	if !f2.CQF {
		t.Errorf("?x=?y filter should be simple: %+v", f2)
	}
	// Two-variable non-equality filter: CPF but not CQF.
	f3 := ClassifyFragments(parse(t, "SELECT * WHERE { ?s <p> ?o . ?s <q> ?z FILTER(?o > ?z) }"))
	if !f3.CPF || f3.CQF {
		t.Errorf("complex filter: %+v", f3)
	}
}

func TestFragmentsAOF(t *testing.T) {
	f := ClassifyFragments(parse(t, "SELECT * WHERE { ?s <p> ?o OPTIONAL { ?s <q> ?x } }"))
	if !f.AOF || f.CQ || f.CPF {
		t.Errorf("AOF with OPT: %+v", f)
	}
	// UNION leaves AOF.
	f2 := ClassifyFragments(parse(t, "SELECT * WHERE { { ?s <a> ?o } UNION { ?s <b> ?o } }"))
	if f2.AOF {
		t.Errorf("union must not be AOF: %+v", f2)
	}
	// Property path leaves AOF.
	f3 := ClassifyFragments(parse(t, "SELECT * WHERE { ?s <a>* ?o }"))
	if f3.AOF {
		t.Errorf("path must not be AOF: %+v", f3)
	}
	// CONSTRUCT is never AOF.
	f4 := ClassifyFragments(parse(t, "CONSTRUCT { ?s <p> ?o } WHERE { ?s <p> ?o }"))
	if f4.AOF {
		t.Error("construct must not be AOF")
	}
}

func TestWellDesignedPaperExamples(t *testing.T) {
	// P1 and P2 from Example 5.4 are well-designed with interface width 1.
	p1 := `SELECT * WHERE { { ?A <name> ?N OPTIONAL { ?A <email> ?E } } OPTIONAL { ?A <webPage> ?W } }`
	f1 := ClassifyFragments(parse(t, p1))
	if !f1.WellDesigned || f1.InterfaceWidth != 1 || !f1.CQOF {
		t.Errorf("P1: %+v", f1)
	}
	p2 := `SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?E OPTIONAL { ?A <webPage> ?W } } }`
	f2 := ClassifyFragments(parse(t, p2))
	if !f2.WellDesigned || f2.InterfaceWidth != 1 || !f2.CQOF {
		t.Errorf("P2: %+v", f2)
	}
}

func TestNotWellDesigned(t *testing.T) {
	// ?x appears in the OPTIONAL (not in its left side) and outside it.
	src := `SELECT * WHERE { ?a <p> ?b OPTIONAL { ?b <q> ?x } ?c <r> ?x }`
	f := ClassifyFragments(parse(t, src))
	if !f.AOF {
		t.Fatal("should be AOF")
	}
	if f.WellDesigned {
		t.Error("pattern must not be well-designed")
	}
	if f.CQOF {
		t.Error("not CQOF when not well-designed")
	}
}

func TestInterfaceWidthTwo(t *testing.T) {
	// Root shares two variables with the OPTIONAL child.
	src := `SELECT * WHERE { ?A <knows> ?B OPTIONAL { ?A <worksWith> ?B } }`
	f := ClassifyFragments(parse(t, src))
	if !f.WellDesigned {
		t.Fatal("well-designed expected")
	}
	if f.InterfaceWidth != 2 {
		t.Errorf("interface width = %d, want 2", f.InterfaceWidth)
	}
	if f.CQOF {
		t.Error("interface width 2 is not CQOF")
	}
}

func TestEqualityCollapses(t *testing.T) {
	q := parse(t, "SELECT * WHERE { ?a <p> ?b . ?c <q> ?d FILTER(?b = ?c) FILTER(?a > 1) }")
	pairs := EqualityCollapses(q)
	if len(pairs) != 1 || pairs[0] != [2]string{"b", "c"} {
		t.Errorf("pairs = %v", pairs)
	}
}

func TestVarPredicateFlag(t *testing.T) {
	f := ClassifyFragments(parse(t, "ASK { ?x ?p ?y . ?y ?p ?z }"))
	if !f.HasVarPredicate || !f.CQ {
		t.Errorf("var predicate CQ: %+v", f)
	}
}

func TestPatternTreeShape(t *testing.T) {
	q := parse(t, `SELECT * WHERE { ?A <name> ?N OPTIONAL { ?A <email> ?E } OPTIONAL { ?A <web> ?W } }`)
	pt := buildPatternTree(q.Where)
	if len(pt.Triples) != 1 || len(pt.Children) != 2 {
		t.Fatalf("pattern tree root: %d triples, %d children", len(pt.Triples), len(pt.Children))
	}
	if pt.Size() != 3 {
		t.Errorf("size = %d, want 3", pt.Size())
	}
}

func TestBodylessQueryFragments(t *testing.T) {
	f := ClassifyFragments(parse(t, "DESCRIBE <x>"))
	if f.AOF || f.CQ {
		t.Error("bodyless describe must not be classified")
	}
}

func TestDistributionMerge(t *testing.T) {
	a := NewDistribution()
	b := NewDistribution()
	for _, src := range []string{
		"SELECT * WHERE { ?x <p> ?y . ?y <q> ?z }",
		"SELECT * WHERE { ?x <p> ?y FILTER(?y > 1) }",
	} {
		a.Add(Operators(parse(t, src)))
	}
	b.Add(Operators(parse(t, "SELECT * WHERE { ?x <p> ?y FILTER(?y > 1) }")))
	a.Merge(b)
	if a.Total != 3 {
		t.Errorf("merged total = %d, want 3", a.Total)
	}
	if a.Counts["F"] != 2 || a.Counts["A"] != 1 {
		t.Errorf("merged counts = %v", a.Counts)
	}
	// Merging an empty distribution is the identity.
	before := a.Total
	a.Merge(NewDistribution())
	if a.Total != before {
		t.Error("empty merge changed total")
	}
}
