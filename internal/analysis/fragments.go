package analysis

import "sparqlog/internal/sparql"

// Fragments classifies a query into the fragment hierarchy of Section 5.2.
// All flags refer to the query body; AOF and its subclasses are only
// defined for Select and Ask queries.
type Fragments struct {
	// AOF: triple patterns with And, Opt, Filter only (Section 5).
	AOF bool
	// CQ: triple patterns and And only (Definition 3.1).
	CQ bool
	// CPF: triples, And, Filter (Definition 4.1).
	CPF bool
	// CQF: CPF with only simple filters (Definition 5.2).
	CQF bool
	// WellDesigned: Definition 5.3, checked on the binary fold of the
	// pattern. Only meaningful when AOF.
	WellDesigned bool
	// CQOF: well-designed with a pattern tree of interface width <= 1
	// (Definition 5.5). Only meaningful when AOF.
	CQOF bool
	// InterfaceWidth of the pattern tree; 0 for patterns without Opt.
	// Valid when WellDesigned.
	InterfaceWidth int
	// HasVarPredicate: some triple uses a variable in predicate position,
	// requiring hypergraph analysis (Section 6.2).
	HasVarPredicate bool
}

// ClassifyFragments computes the fragment membership of one query.
func ClassifyFragments(q *sparql.Query) Fragments {
	var f Fragments
	if q.Type != sparql.SelectQuery && q.Type != sparql.AskQuery {
		return f
	}
	if q.Where == nil {
		return f
	}
	feats := scanFeatures(q.Where)
	for _, t := range q.Triples() {
		if t.P.IsVar() {
			f.HasVarPredicate = true
			break
		}
	}
	f.AOF = !feats.beyondAOF
	f.CQ = f.AOF && !feats.opt && !feats.filter
	f.CPF = f.AOF && !feats.opt
	f.CQF = f.CPF && feats.allFiltersSimple
	if !f.AOF {
		return f
	}
	bt := foldBinary(q.Where)
	f.WellDesigned = wellDesigned(bt)
	if f.WellDesigned {
		pt := buildPatternTree(q.Where)
		f.InterfaceWidth = interfaceWidth(pt)
		f.CQOF = f.InterfaceWidth <= 1
	}
	return f
}

// WellDesigned reports whether an AOF pattern is well-designed
// (Definition 5.3), checked on the binary And/Opt fold of the pattern.
// The verdict is only meaningful for AOF patterns (triples, And, Opt,
// Filter); callers should gate on ClassifyFragments(...).AOF first.
func WellDesigned(p sparql.Pattern) bool {
	return wellDesigned(foldBinary(p))
}

// bodyFeatures summarizes the feature scan used by the fragment tests.
type bodyFeatures struct {
	opt              bool
	filter           bool
	allFiltersSimple bool
	beyondAOF        bool
}

func scanFeatures(p sparql.Pattern) bodyFeatures {
	f := bodyFeatures{allFiltersSimple: true}
	sparql.Walk(p, func(n sparql.Pattern) bool {
		switch t := n.(type) {
		case *sparql.Group, *sparql.TriplePattern:
		case *sparql.Optional:
			f.opt = true
		case *sparql.Filter:
			f.filter = true
			if !SimpleFilter(t.Constraint) {
				f.allFiltersSimple = false
			}
			// EXISTS embeds patterns, leaving the AOF fragment.
			sparql.WalkExpr(t.Constraint, func(x sparql.Expr) bool {
				if _, ok := x.(*sparql.ExistsExpr); ok {
					f.beyondAOF = true
				}
				return true
			})
		default:
			f.beyondAOF = true
			return false
		}
		return true
	})
	return f
}

// SimpleFilter implements Definition 5.2's filter condition: the constraint
// has at most one variable, or is exactly of the form ?x = ?y.
func SimpleFilter(e sparql.Expr) bool {
	if len(sparql.ExprVars(e)) <= 1 {
		return true
	}
	_, _, ok := equalityVars(e)
	return ok
}

// equalityVars matches constraints of the exact form ?x = ?y.
func equalityVars(e sparql.Expr) (string, string, bool) {
	be, ok := e.(*sparql.BinaryExpr)
	if !ok || be.Op != "=" {
		return "", "", false
	}
	l, lok := be.L.(*sparql.TermExpr)
	r, rok := be.R.(*sparql.TermExpr)
	if !lok || !rok || l.Term.Kind != sparql.TermVar || r.Term.Kind != sparql.TermVar {
		return "", "", false
	}
	return l.Term.Value, r.Term.Value, true
}

// EqualityCollapses extracts the ?x = ?y filter pairs used to collapse
// canonical-graph nodes (footnote 20 of the paper).
func EqualityCollapses(q *sparql.Query) [][2]string {
	var out [][2]string
	sparql.Walk(q.Where, func(p sparql.Pattern) bool {
		if f, ok := p.(*sparql.Filter); ok {
			if x, y, ok := equalityVars(f.Constraint); ok {
				out = append(out, [2]string{x, y})
			}
		}
		return true
	})
	return out
}

// ---------- Binary algebra fold and well-designedness ----------

// binNode is the binary And/Opt algebra tree of an AOF pattern. Leaves are
// triple patterns or filter constraints (filters contribute variable
// occurrences per the paper's variable condition).
type binNode struct {
	kind   byte // 't' triple, 'f' filter, 'a' And, 'o' Opt
	triple *sparql.TriplePattern
	filter sparql.Expr
	l, r   *binNode
}

// foldBinary converts a group-structured AOF pattern into the binary
// algebra: elements fold left-to-right, OPTIONAL elements become Opt nodes
// whose left operand is the accumulated prefix.
func foldBinary(p sparql.Pattern) *binNode {
	switch n := p.(type) {
	case nil:
		return nil
	case *sparql.TriplePattern:
		return &binNode{kind: 't', triple: n}
	case *sparql.Filter:
		return &binNode{kind: 'f', filter: n.Constraint}
	case *sparql.Optional:
		return &binNode{kind: 'o', r: foldBinary(n.Inner)}
	case *sparql.Group:
		var acc *binNode
		for _, el := range n.Elems {
			child := foldBinary(el)
			if child == nil {
				continue
			}
			if child.kind == 'o' && child.l == nil {
				// OPTIONAL folds against the accumulated prefix (possibly
				// empty, representing the unit pattern).
				child.l = acc
				acc = child
				continue
			}
			if acc == nil {
				acc = child
			} else {
				acc = &binNode{kind: 'a', l: acc, r: child}
			}
		}
		return acc
	}
	return nil
}

func binVars(n *binNode, out map[string]int) {
	if n == nil {
		return
	}
	switch n.kind {
	case 't':
		for _, t := range []sparql.Term{n.triple.S, n.triple.P, n.triple.O} {
			if t.Kind == sparql.TermVar {
				out[t.Value]++
			}
		}
	case 'f':
		for v := range sparql.ExprVars(n.filter) {
			out[v]++
		}
	default:
		binVars(n.l, out)
		binVars(n.r, out)
	}
}

// wellDesigned checks Definition 5.3 on the binary tree: for every Opt
// node (L Opt R), each variable of R that does not occur in L must occur
// nowhere outside this Opt node.
func wellDesigned(root *binNode) bool {
	if root == nil {
		return true
	}
	total := map[string]int{}
	binVars(root, total)
	ok := true
	var visit func(n *binNode)
	visit = func(n *binNode) {
		if n == nil || !ok {
			return
		}
		if n.kind == 'o' {
			lv := map[string]int{}
			binVars(n.l, lv)
			rv := map[string]int{}
			binVars(n.r, rv)
			self := map[string]int{}
			binVars(n, self)
			for v := range rv {
				if lv[v] > 0 {
					continue
				}
				// v must occur only inside this Opt occurrence.
				if total[v] != self[v] {
					ok = false
					return
				}
			}
		}
		visit(n.l)
		visit(n.r)
	}
	visit(root)
	return ok
}

// ---------- Pattern trees and interface width ----------

// PatternTree is the Currying-based tree encoding of Example 5.4: each
// node holds the conjunctive part at its level; each OPTIONAL becomes a
// child subtree.
type PatternTree struct {
	Triples  []*sparql.TriplePattern
	Filters  []sparql.Expr
	Children []*PatternTree
}

// buildPatternTree constructs the pattern tree of a well-designed AOF
// pattern directly from the group structure (the Opt-normal-form
// transformation is semantics-preserving exactly for well-designed
// patterns, which is the only case this function is used in).
func buildPatternTree(p sparql.Pattern) *PatternTree {
	node := &PatternTree{}
	var absorb func(q sparql.Pattern)
	absorb = func(q sparql.Pattern) {
		switch n := q.(type) {
		case nil:
		case *sparql.TriplePattern:
			node.Triples = append(node.Triples, n)
		case *sparql.Filter:
			node.Filters = append(node.Filters, n.Constraint)
		case *sparql.Optional:
			node.Children = append(node.Children, buildPatternTree(n.Inner))
		case *sparql.Group:
			for _, el := range n.Elems {
				absorb(el)
			}
		}
	}
	absorb(p)
	return node
}

// NodeVars returns the variables of the node's own conjunctive part.
func (t *PatternTree) NodeVars() map[string]bool {
	out := make(map[string]bool)
	for _, tr := range t.Triples {
		for _, term := range []sparql.Term{tr.S, tr.P, tr.O} {
			if term.Kind == sparql.TermVar {
				out[term.Value] = true
			}
		}
	}
	for _, f := range t.Filters {
		for v := range sparql.ExprVars(f) {
			out[v] = true
		}
	}
	return out
}

// SubtreeVars returns the variables of the whole subtree.
func (t *PatternTree) SubtreeVars() map[string]bool {
	out := t.NodeVars()
	for _, c := range t.Children {
		for v := range c.SubtreeVars() {
			out[v] = true
		}
	}
	return out
}

// Size returns the number of nodes in the pattern tree.
func (t *PatternTree) Size() int {
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// interfaceWidth computes the maximum number of variables shared between a
// node's conjunctive part and any child subtree (Example 5.4).
func interfaceWidth(t *PatternTree) int {
	if t == nil {
		return 0
	}
	width := 0
	nv := t.NodeVars()
	for _, c := range t.Children {
		shared := 0
		for v := range c.SubtreeVars() {
			if nv[v] {
				shared++
			}
		}
		if shared > width {
			width = shared
		}
		if w := interfaceWidth(c); w > width {
			width = w
		}
	}
	return width
}
